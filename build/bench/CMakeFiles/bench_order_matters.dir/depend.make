# Empty dependencies file for bench_order_matters.
# This may be replaced when dependencies are built.
