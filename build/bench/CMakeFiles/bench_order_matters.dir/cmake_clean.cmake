file(REMOVE_RECURSE
  "CMakeFiles/bench_order_matters.dir/bench_order_matters.cpp.o"
  "CMakeFiles/bench_order_matters.dir/bench_order_matters.cpp.o.d"
  "bench_order_matters"
  "bench_order_matters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_matters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
