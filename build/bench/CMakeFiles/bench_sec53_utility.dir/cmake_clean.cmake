file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_utility.dir/bench_sec53_utility.cpp.o"
  "CMakeFiles/bench_sec53_utility.dir/bench_sec53_utility.cpp.o.d"
  "bench_sec53_utility"
  "bench_sec53_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
