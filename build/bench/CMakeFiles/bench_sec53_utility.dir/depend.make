# Empty dependencies file for bench_sec53_utility.
# This may be replaced when dependencies are built.
