file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ditl.dir/bench_fig12_ditl.cpp.o"
  "CMakeFiles/bench_fig12_ditl.dir/bench_fig12_ditl.cpp.o.d"
  "bench_fig12_ditl"
  "bench_fig12_ditl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ditl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
