# Empty compiler generated dependencies file for bench_fig12_ditl.
# This may be replaced when dependencies are built.
