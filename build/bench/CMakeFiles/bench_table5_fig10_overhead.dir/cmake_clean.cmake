file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fig10_overhead.dir/bench_table5_fig10_overhead.cpp.o"
  "CMakeFiles/bench_table5_fig10_overhead.dir/bench_table5_fig10_overhead.cpp.o.d"
  "bench_table5_fig10_overhead"
  "bench_table5_fig10_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fig10_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
