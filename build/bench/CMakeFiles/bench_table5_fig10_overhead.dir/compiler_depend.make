# Empty compiler generated dependencies file for bench_table5_fig10_overhead.
# This may be replaced when dependencies are built.
