# Empty dependencies file for bench_ablation_nsec.
# This may be replaced when dependencies are built.
