file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nsec.dir/bench_ablation_nsec.cpp.o"
  "CMakeFiles/bench_ablation_nsec.dir/bench_ablation_nsec.cpp.o.d"
  "bench_ablation_nsec"
  "bench_ablation_nsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
