# Empty dependencies file for bench_dictionary_attack.
# This may be replaced when dependencies are built.
