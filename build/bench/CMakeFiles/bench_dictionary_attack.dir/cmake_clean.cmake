file(REMOVE_RECURSE
  "CMakeFiles/bench_dictionary_attack.dir/bench_dictionary_attack.cpp.o"
  "CMakeFiles/bench_dictionary_attack.dir/bench_dictionary_attack.cpp.o.d"
  "bench_dictionary_attack"
  "bench_dictionary_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dictionary_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
