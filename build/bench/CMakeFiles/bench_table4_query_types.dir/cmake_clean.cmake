file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_query_types.dir/bench_table4_query_types.cpp.o"
  "CMakeFiles/bench_table4_query_types.dir/bench_table4_query_types.cpp.o.d"
  "bench_table4_query_types"
  "bench_table4_query_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_query_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
