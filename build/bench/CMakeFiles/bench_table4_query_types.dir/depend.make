# Empty dependencies file for bench_table4_query_types.
# This may be replaced when dependencies are built.
