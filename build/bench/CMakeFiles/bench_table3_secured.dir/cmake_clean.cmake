file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_secured.dir/bench_table3_secured.cpp.o"
  "CMakeFiles/bench_table3_secured.dir/bench_table3_secured.cpp.o.d"
  "bench_table3_secured"
  "bench_table3_secured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_secured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
