# Empty dependencies file for bench_table3_secured.
# This may be replaced when dependencies are built.
