file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_09_leakage.dir/bench_fig08_09_leakage.cpp.o"
  "CMakeFiles/bench_fig08_09_leakage.dir/bench_fig08_09_leakage.cpp.o.d"
  "bench_fig08_09_leakage"
  "bench_fig08_09_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_09_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
