# Empty compiler generated dependencies file for bench_fig08_09_leakage.
# This may be replaced when dependencies are built.
