file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_configs.dir/bench_table2_configs.cpp.o"
  "CMakeFiles/bench_table2_configs.dir/bench_table2_configs.cpp.o.d"
  "bench_table2_configs"
  "bench_table2_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
