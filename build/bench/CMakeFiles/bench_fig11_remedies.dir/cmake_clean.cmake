file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_remedies.dir/bench_fig11_remedies.cpp.o"
  "CMakeFiles/bench_fig11_remedies.dir/bench_fig11_remedies.cpp.o.d"
  "bench_fig11_remedies"
  "bench_fig11_remedies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_remedies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
