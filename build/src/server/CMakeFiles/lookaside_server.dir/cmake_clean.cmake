file(REMOVE_RECURSE
  "CMakeFiles/lookaside_server.dir/directory.cpp.o"
  "CMakeFiles/lookaside_server.dir/directory.cpp.o.d"
  "CMakeFiles/lookaside_server.dir/testbed.cpp.o"
  "CMakeFiles/lookaside_server.dir/testbed.cpp.o.d"
  "CMakeFiles/lookaside_server.dir/zone_authority.cpp.o"
  "CMakeFiles/lookaside_server.dir/zone_authority.cpp.o.d"
  "liblookaside_server.a"
  "liblookaside_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
