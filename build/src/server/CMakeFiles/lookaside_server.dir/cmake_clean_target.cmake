file(REMOVE_RECURSE
  "liblookaside_server.a"
)
