# Empty compiler generated dependencies file for lookaside_server.
# This may be replaced when dependencies are built.
