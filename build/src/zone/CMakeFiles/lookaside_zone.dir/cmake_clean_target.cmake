file(REMOVE_RECURSE
  "liblookaside_zone.a"
)
