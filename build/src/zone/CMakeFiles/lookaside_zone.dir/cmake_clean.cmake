file(REMOVE_RECURSE
  "CMakeFiles/lookaside_zone.dir/keys.cpp.o"
  "CMakeFiles/lookaside_zone.dir/keys.cpp.o.d"
  "CMakeFiles/lookaside_zone.dir/signed_zone.cpp.o"
  "CMakeFiles/lookaside_zone.dir/signed_zone.cpp.o.d"
  "CMakeFiles/lookaside_zone.dir/zone.cpp.o"
  "CMakeFiles/lookaside_zone.dir/zone.cpp.o.d"
  "CMakeFiles/lookaside_zone.dir/zonefile.cpp.o"
  "CMakeFiles/lookaside_zone.dir/zonefile.cpp.o.d"
  "liblookaside_zone.a"
  "liblookaside_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
