# Empty dependencies file for lookaside_zone.
# This may be replaced when dependencies are built.
