
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zone/keys.cpp" "src/zone/CMakeFiles/lookaside_zone.dir/keys.cpp.o" "gcc" "src/zone/CMakeFiles/lookaside_zone.dir/keys.cpp.o.d"
  "/root/repo/src/zone/signed_zone.cpp" "src/zone/CMakeFiles/lookaside_zone.dir/signed_zone.cpp.o" "gcc" "src/zone/CMakeFiles/lookaside_zone.dir/signed_zone.cpp.o.d"
  "/root/repo/src/zone/zone.cpp" "src/zone/CMakeFiles/lookaside_zone.dir/zone.cpp.o" "gcc" "src/zone/CMakeFiles/lookaside_zone.dir/zone.cpp.o.d"
  "/root/repo/src/zone/zonefile.cpp" "src/zone/CMakeFiles/lookaside_zone.dir/zonefile.cpp.o" "gcc" "src/zone/CMakeFiles/lookaside_zone.dir/zonefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/lookaside_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lookaside_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
