# CMake generated Testfile for 
# Source directory: /root/repo/src/zone
# Build directory: /root/repo/build/src/zone
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
