file(REMOVE_RECURSE
  "liblookaside_sim.a"
)
