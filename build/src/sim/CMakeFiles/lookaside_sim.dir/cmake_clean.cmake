file(REMOVE_RECURSE
  "CMakeFiles/lookaside_sim.dir/latency.cpp.o"
  "CMakeFiles/lookaside_sim.dir/latency.cpp.o.d"
  "CMakeFiles/lookaside_sim.dir/network.cpp.o"
  "CMakeFiles/lookaside_sim.dir/network.cpp.o.d"
  "liblookaside_sim.a"
  "liblookaside_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
