# Empty compiler generated dependencies file for lookaside_sim.
# This may be replaced when dependencies are built.
