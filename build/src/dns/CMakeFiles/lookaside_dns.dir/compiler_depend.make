# Empty compiler generated dependencies file for lookaside_dns.
# This may be replaced when dependencies are built.
