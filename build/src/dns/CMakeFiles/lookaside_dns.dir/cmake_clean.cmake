file(REMOVE_RECURSE
  "CMakeFiles/lookaside_dns.dir/codec.cpp.o"
  "CMakeFiles/lookaside_dns.dir/codec.cpp.o.d"
  "CMakeFiles/lookaside_dns.dir/message.cpp.o"
  "CMakeFiles/lookaside_dns.dir/message.cpp.o.d"
  "CMakeFiles/lookaside_dns.dir/name.cpp.o"
  "CMakeFiles/lookaside_dns.dir/name.cpp.o.d"
  "CMakeFiles/lookaside_dns.dir/rdata.cpp.o"
  "CMakeFiles/lookaside_dns.dir/rdata.cpp.o.d"
  "CMakeFiles/lookaside_dns.dir/record.cpp.o"
  "CMakeFiles/lookaside_dns.dir/record.cpp.o.d"
  "CMakeFiles/lookaside_dns.dir/rr_type.cpp.o"
  "CMakeFiles/lookaside_dns.dir/rr_type.cpp.o.d"
  "liblookaside_dns.a"
  "liblookaside_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
