file(REMOVE_RECURSE
  "liblookaside_dns.a"
)
