
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/codec.cpp" "src/dns/CMakeFiles/lookaside_dns.dir/codec.cpp.o" "gcc" "src/dns/CMakeFiles/lookaside_dns.dir/codec.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/dns/CMakeFiles/lookaside_dns.dir/message.cpp.o" "gcc" "src/dns/CMakeFiles/lookaside_dns.dir/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/dns/CMakeFiles/lookaside_dns.dir/name.cpp.o" "gcc" "src/dns/CMakeFiles/lookaside_dns.dir/name.cpp.o.d"
  "/root/repo/src/dns/rdata.cpp" "src/dns/CMakeFiles/lookaside_dns.dir/rdata.cpp.o" "gcc" "src/dns/CMakeFiles/lookaside_dns.dir/rdata.cpp.o.d"
  "/root/repo/src/dns/record.cpp" "src/dns/CMakeFiles/lookaside_dns.dir/record.cpp.o" "gcc" "src/dns/CMakeFiles/lookaside_dns.dir/record.cpp.o.d"
  "/root/repo/src/dns/rr_type.cpp" "src/dns/CMakeFiles/lookaside_dns.dir/rr_type.cpp.o" "gcc" "src/dns/CMakeFiles/lookaside_dns.dir/rr_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/lookaside_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
