
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/counters.cpp" "src/metrics/CMakeFiles/lookaside_metrics.dir/counters.cpp.o" "gcc" "src/metrics/CMakeFiles/lookaside_metrics.dir/counters.cpp.o.d"
  "/root/repo/src/metrics/csv.cpp" "src/metrics/CMakeFiles/lookaside_metrics.dir/csv.cpp.o" "gcc" "src/metrics/CMakeFiles/lookaside_metrics.dir/csv.cpp.o.d"
  "/root/repo/src/metrics/histogram.cpp" "src/metrics/CMakeFiles/lookaside_metrics.dir/histogram.cpp.o" "gcc" "src/metrics/CMakeFiles/lookaside_metrics.dir/histogram.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "src/metrics/CMakeFiles/lookaside_metrics.dir/table.cpp.o" "gcc" "src/metrics/CMakeFiles/lookaside_metrics.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
