file(REMOVE_RECURSE
  "liblookaside_metrics.a"
)
