file(REMOVE_RECURSE
  "CMakeFiles/lookaside_metrics.dir/counters.cpp.o"
  "CMakeFiles/lookaside_metrics.dir/counters.cpp.o.d"
  "CMakeFiles/lookaside_metrics.dir/csv.cpp.o"
  "CMakeFiles/lookaside_metrics.dir/csv.cpp.o.d"
  "CMakeFiles/lookaside_metrics.dir/histogram.cpp.o"
  "CMakeFiles/lookaside_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/lookaside_metrics.dir/table.cpp.o"
  "CMakeFiles/lookaside_metrics.dir/table.cpp.o.d"
  "liblookaside_metrics.a"
  "liblookaside_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
