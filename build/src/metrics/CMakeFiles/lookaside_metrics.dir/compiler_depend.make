# Empty compiler generated dependencies file for lookaside_metrics.
# This may be replaced when dependencies are built.
