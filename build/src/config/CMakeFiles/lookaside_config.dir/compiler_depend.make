# Empty compiler generated dependencies file for lookaside_config.
# This may be replaced when dependencies are built.
