file(REMOVE_RECURSE
  "CMakeFiles/lookaside_config.dir/conf_file.cpp.o"
  "CMakeFiles/lookaside_config.dir/conf_file.cpp.o.d"
  "CMakeFiles/lookaside_config.dir/install_matrix.cpp.o"
  "CMakeFiles/lookaside_config.dir/install_matrix.cpp.o.d"
  "liblookaside_config.a"
  "liblookaside_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
