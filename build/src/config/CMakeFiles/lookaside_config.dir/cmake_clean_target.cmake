file(REMOVE_RECURSE
  "liblookaside_config.a"
)
