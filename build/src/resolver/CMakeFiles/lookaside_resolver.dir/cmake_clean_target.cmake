file(REMOVE_RECURSE
  "liblookaside_resolver.a"
)
