# Empty dependencies file for lookaside_resolver.
# This may be replaced when dependencies are built.
