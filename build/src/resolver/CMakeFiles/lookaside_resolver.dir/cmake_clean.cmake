file(REMOVE_RECURSE
  "CMakeFiles/lookaside_resolver.dir/cache.cpp.o"
  "CMakeFiles/lookaside_resolver.dir/cache.cpp.o.d"
  "CMakeFiles/lookaside_resolver.dir/config.cpp.o"
  "CMakeFiles/lookaside_resolver.dir/config.cpp.o.d"
  "CMakeFiles/lookaside_resolver.dir/resolver.cpp.o"
  "CMakeFiles/lookaside_resolver.dir/resolver.cpp.o.d"
  "CMakeFiles/lookaside_resolver.dir/validator.cpp.o"
  "CMakeFiles/lookaside_resolver.dir/validator.cpp.o.d"
  "liblookaside_resolver.a"
  "liblookaside_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
