# Empty dependencies file for lookaside_core.
# This may be replaced when dependencies are built.
