file(REMOVE_RECURSE
  "CMakeFiles/lookaside_core.dir/dictionary.cpp.o"
  "CMakeFiles/lookaside_core.dir/dictionary.cpp.o.d"
  "CMakeFiles/lookaside_core.dir/ditl_overhead.cpp.o"
  "CMakeFiles/lookaside_core.dir/ditl_overhead.cpp.o.d"
  "CMakeFiles/lookaside_core.dir/experiment.cpp.o"
  "CMakeFiles/lookaside_core.dir/experiment.cpp.o.d"
  "CMakeFiles/lookaside_core.dir/leakage.cpp.o"
  "CMakeFiles/lookaside_core.dir/leakage.cpp.o.d"
  "CMakeFiles/lookaside_core.dir/overhead.cpp.o"
  "CMakeFiles/lookaside_core.dir/overhead.cpp.o.d"
  "CMakeFiles/lookaside_core.dir/survey.cpp.o"
  "CMakeFiles/lookaside_core.dir/survey.cpp.o.d"
  "liblookaside_core.a"
  "liblookaside_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
