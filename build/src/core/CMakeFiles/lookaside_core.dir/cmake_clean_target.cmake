file(REMOVE_RECURSE
  "liblookaside_core.a"
)
