# Empty dependencies file for lookaside_workload.
# This may be replaced when dependencies are built.
