file(REMOVE_RECURSE
  "liblookaside_workload.a"
)
