file(REMOVE_RECURSE
  "CMakeFiles/lookaside_workload.dir/ditl.cpp.o"
  "CMakeFiles/lookaside_workload.dir/ditl.cpp.o.d"
  "CMakeFiles/lookaside_workload.dir/secured45.cpp.o"
  "CMakeFiles/lookaside_workload.dir/secured45.cpp.o.d"
  "CMakeFiles/lookaside_workload.dir/stub.cpp.o"
  "CMakeFiles/lookaside_workload.dir/stub.cpp.o.d"
  "CMakeFiles/lookaside_workload.dir/universe.cpp.o"
  "CMakeFiles/lookaside_workload.dir/universe.cpp.o.d"
  "CMakeFiles/lookaside_workload.dir/universe_world.cpp.o"
  "CMakeFiles/lookaside_workload.dir/universe_world.cpp.o.d"
  "liblookaside_workload.a"
  "liblookaside_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
