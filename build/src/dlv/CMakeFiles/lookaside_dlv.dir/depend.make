# Empty dependencies file for lookaside_dlv.
# This may be replaced when dependencies are built.
