file(REMOVE_RECURSE
  "liblookaside_dlv.a"
)
