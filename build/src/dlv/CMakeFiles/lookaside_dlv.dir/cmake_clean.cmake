file(REMOVE_RECURSE
  "CMakeFiles/lookaside_dlv.dir/registry.cpp.o"
  "CMakeFiles/lookaside_dlv.dir/registry.cpp.o.d"
  "liblookaside_dlv.a"
  "liblookaside_dlv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_dlv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
