file(REMOVE_RECURSE
  "CMakeFiles/lookaside_crypto.dir/bigint.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/bytes.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/dnssec_algo.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/dnssec_algo.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/hmac.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/rng.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/rng.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/rsa.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/sha1.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/lookaside_crypto.dir/sha256.cpp.o"
  "CMakeFiles/lookaside_crypto.dir/sha256.cpp.o.d"
  "liblookaside_crypto.a"
  "liblookaside_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookaside_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
