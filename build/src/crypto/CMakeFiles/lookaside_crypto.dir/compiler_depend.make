# Empty compiler generated dependencies file for lookaside_crypto.
# This may be replaced when dependencies are built.
