
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/bytes.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/bytes.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/bytes.cpp.o.d"
  "/root/repo/src/crypto/dnssec_algo.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/dnssec_algo.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/dnssec_algo.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/rng.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/rng.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/rng.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/lookaside_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/lookaside_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
