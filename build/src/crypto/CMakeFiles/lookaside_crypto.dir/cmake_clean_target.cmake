file(REMOVE_RECURSE
  "liblookaside_crypto.a"
)
