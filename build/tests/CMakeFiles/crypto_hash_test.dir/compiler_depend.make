# Empty compiler generated dependencies file for crypto_hash_test.
# This may be replaced when dependencies are built.
