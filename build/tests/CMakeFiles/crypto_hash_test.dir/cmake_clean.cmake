file(REMOVE_RECURSE
  "CMakeFiles/crypto_hash_test.dir/crypto_hash_test.cpp.o"
  "CMakeFiles/crypto_hash_test.dir/crypto_hash_test.cpp.o.d"
  "crypto_hash_test"
  "crypto_hash_test.pdb"
  "crypto_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
