file(REMOVE_RECURSE
  "CMakeFiles/multi_dlv_test.dir/multi_dlv_test.cpp.o"
  "CMakeFiles/multi_dlv_test.dir/multi_dlv_test.cpp.o.d"
  "multi_dlv_test"
  "multi_dlv_test.pdb"
  "multi_dlv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_dlv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
