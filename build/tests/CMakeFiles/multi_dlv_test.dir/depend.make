# Empty dependencies file for multi_dlv_test.
# This may be replaced when dependencies are built.
