# Empty dependencies file for conf_file_test.
# This may be replaced when dependencies are built.
