# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for conf_file_test.
