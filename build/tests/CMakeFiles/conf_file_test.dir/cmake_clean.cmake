file(REMOVE_RECURSE
  "CMakeFiles/conf_file_test.dir/conf_file_test.cpp.o"
  "CMakeFiles/conf_file_test.dir/conf_file_test.cpp.o.d"
  "conf_file_test"
  "conf_file_test.pdb"
  "conf_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conf_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
