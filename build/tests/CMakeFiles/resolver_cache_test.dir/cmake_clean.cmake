file(REMOVE_RECURSE
  "CMakeFiles/resolver_cache_test.dir/resolver_cache_test.cpp.o"
  "CMakeFiles/resolver_cache_test.dir/resolver_cache_test.cpp.o.d"
  "resolver_cache_test"
  "resolver_cache_test.pdb"
  "resolver_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
