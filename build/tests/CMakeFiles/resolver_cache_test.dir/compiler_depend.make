# Empty compiler generated dependencies file for resolver_cache_test.
# This may be replaced when dependencies are built.
