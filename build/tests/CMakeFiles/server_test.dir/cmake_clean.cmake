file(REMOVE_RECURSE
  "CMakeFiles/server_test.dir/server_test.cpp.o"
  "CMakeFiles/server_test.dir/server_test.cpp.o.d"
  "server_test"
  "server_test.pdb"
  "server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
