file(REMOVE_RECURSE
  "CMakeFiles/qname_minimization_test.dir/qname_minimization_test.cpp.o"
  "CMakeFiles/qname_minimization_test.dir/qname_minimization_test.cpp.o.d"
  "qname_minimization_test"
  "qname_minimization_test.pdb"
  "qname_minimization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qname_minimization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
