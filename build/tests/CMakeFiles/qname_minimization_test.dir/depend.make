# Empty dependencies file for qname_minimization_test.
# This may be replaced when dependencies are built.
