# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qname_minimization_test.
