file(REMOVE_RECURSE
  "CMakeFiles/dns_codec_test.dir/dns_codec_test.cpp.o"
  "CMakeFiles/dns_codec_test.dir/dns_codec_test.cpp.o.d"
  "dns_codec_test"
  "dns_codec_test.pdb"
  "dns_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
