# Empty compiler generated dependencies file for zonefile_test.
# This may be replaced when dependencies are built.
