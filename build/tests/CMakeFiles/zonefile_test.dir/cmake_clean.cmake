file(REMOVE_RECURSE
  "CMakeFiles/zonefile_test.dir/zonefile_test.cpp.o"
  "CMakeFiles/zonefile_test.dir/zonefile_test.cpp.o.d"
  "zonefile_test"
  "zonefile_test.pdb"
  "zonefile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonefile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
