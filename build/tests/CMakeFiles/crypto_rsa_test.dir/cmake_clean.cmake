file(REMOVE_RECURSE
  "CMakeFiles/crypto_rsa_test.dir/crypto_rsa_test.cpp.o"
  "CMakeFiles/crypto_rsa_test.dir/crypto_rsa_test.cpp.o.d"
  "crypto_rsa_test"
  "crypto_rsa_test.pdb"
  "crypto_rsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_rsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
