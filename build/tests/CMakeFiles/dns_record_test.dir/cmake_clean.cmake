file(REMOVE_RECURSE
  "CMakeFiles/dns_record_test.dir/dns_record_test.cpp.o"
  "CMakeFiles/dns_record_test.dir/dns_record_test.cpp.o.d"
  "dns_record_test"
  "dns_record_test.pdb"
  "dns_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
