
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/resolver_integration_test.cpp" "tests/CMakeFiles/resolver_integration_test.dir/resolver_integration_test.cpp.o" "gcc" "tests/CMakeFiles/resolver_integration_test.dir/resolver_integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resolver/CMakeFiles/lookaside_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dlv/CMakeFiles/lookaside_dlv.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/lookaside_server.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/lookaside_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lookaside_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/lookaside_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lookaside_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lookaside_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
