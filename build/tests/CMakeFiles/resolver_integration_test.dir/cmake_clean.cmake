file(REMOVE_RECURSE
  "CMakeFiles/resolver_integration_test.dir/resolver_integration_test.cpp.o"
  "CMakeFiles/resolver_integration_test.dir/resolver_integration_test.cpp.o.d"
  "resolver_integration_test"
  "resolver_integration_test.pdb"
  "resolver_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
