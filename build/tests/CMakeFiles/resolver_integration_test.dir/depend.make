# Empty dependencies file for resolver_integration_test.
# This may be replaced when dependencies are built.
