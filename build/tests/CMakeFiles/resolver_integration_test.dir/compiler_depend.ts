# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for resolver_integration_test.
