file(REMOVE_RECURSE
  "CMakeFiles/resolver_validator_test.dir/resolver_validator_test.cpp.o"
  "CMakeFiles/resolver_validator_test.dir/resolver_validator_test.cpp.o.d"
  "resolver_validator_test"
  "resolver_validator_test.pdb"
  "resolver_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
