# Empty compiler generated dependencies file for resolver_validator_test.
# This may be replaced when dependencies are built.
