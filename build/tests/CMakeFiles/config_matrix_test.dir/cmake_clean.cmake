file(REMOVE_RECURSE
  "CMakeFiles/config_matrix_test.dir/config_matrix_test.cpp.o"
  "CMakeFiles/config_matrix_test.dir/config_matrix_test.cpp.o.d"
  "config_matrix_test"
  "config_matrix_test.pdb"
  "config_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
