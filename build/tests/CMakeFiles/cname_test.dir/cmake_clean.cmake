file(REMOVE_RECURSE
  "CMakeFiles/cname_test.dir/cname_test.cpp.o"
  "CMakeFiles/cname_test.dir/cname_test.cpp.o.d"
  "cname_test"
  "cname_test.pdb"
  "cname_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cname_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
