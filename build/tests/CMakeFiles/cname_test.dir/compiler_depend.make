# Empty compiler generated dependencies file for cname_test.
# This may be replaced when dependencies are built.
