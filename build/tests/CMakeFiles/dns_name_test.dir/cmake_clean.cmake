file(REMOVE_RECURSE
  "CMakeFiles/dns_name_test.dir/dns_name_test.cpp.o"
  "CMakeFiles/dns_name_test.dir/dns_name_test.cpp.o.d"
  "dns_name_test"
  "dns_name_test.pdb"
  "dns_name_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_name_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
