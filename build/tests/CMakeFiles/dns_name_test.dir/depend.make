# Empty dependencies file for dns_name_test.
# This may be replaced when dependencies are built.
