# Empty compiler generated dependencies file for dlv_registry_test.
# This may be replaced when dependencies are built.
