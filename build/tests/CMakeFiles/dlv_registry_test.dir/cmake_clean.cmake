file(REMOVE_RECURSE
  "CMakeFiles/dlv_registry_test.dir/dlv_registry_test.cpp.o"
  "CMakeFiles/dlv_registry_test.dir/dlv_registry_test.cpp.o.d"
  "dlv_registry_test"
  "dlv_registry_test.pdb"
  "dlv_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlv_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
