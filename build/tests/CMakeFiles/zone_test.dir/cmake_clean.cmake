file(REMOVE_RECURSE
  "CMakeFiles/zone_test.dir/zone_test.cpp.o"
  "CMakeFiles/zone_test.dir/zone_test.cpp.o.d"
  "zone_test"
  "zone_test.pdb"
  "zone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
