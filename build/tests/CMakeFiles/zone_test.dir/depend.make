# Empty dependencies file for zone_test.
# This may be replaced when dependencies are built.
