file(REMOVE_RECURSE
  "CMakeFiles/crypto_bigint_test.dir/crypto_bigint_test.cpp.o"
  "CMakeFiles/crypto_bigint_test.dir/crypto_bigint_test.cpp.o.d"
  "crypto_bigint_test"
  "crypto_bigint_test.pdb"
  "crypto_bigint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
