# Empty dependencies file for crypto_bigint_test.
# This may be replaced when dependencies are built.
