# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_hash_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_bigint_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_rsa_test[1]_include.cmake")
include("/root/repo/build/tests/dns_name_test[1]_include.cmake")
include("/root/repo/build/tests/dns_codec_test[1]_include.cmake")
include("/root/repo/build/tests/dns_record_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/config_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/zone_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/dlv_registry_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_cache_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_validator_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/conf_file_test[1]_include.cmake")
include("/root/repo/build/tests/zonefile_test[1]_include.cmake")
include("/root/repo/build/tests/qname_minimization_test[1]_include.cmake")
include("/root/repo/build/tests/multi_dlv_test[1]_include.cmake")
include("/root/repo/build/tests/cname_test[1]_include.cmake")
