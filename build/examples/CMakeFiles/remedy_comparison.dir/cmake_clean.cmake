file(REMOVE_RECURSE
  "CMakeFiles/remedy_comparison.dir/remedy_comparison.cpp.o"
  "CMakeFiles/remedy_comparison.dir/remedy_comparison.cpp.o.d"
  "remedy_comparison"
  "remedy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remedy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
