
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/remedy_comparison.cpp" "examples/CMakeFiles/remedy_comparison.dir/remedy_comparison.cpp.o" "gcc" "examples/CMakeFiles/remedy_comparison.dir/remedy_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lookaside_core.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/lookaside_config.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lookaside_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/lookaside_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dlv/CMakeFiles/lookaside_dlv.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/lookaside_server.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/lookaside_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lookaside_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/lookaside_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/lookaside_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lookaside_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
