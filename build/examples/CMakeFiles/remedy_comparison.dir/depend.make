# Empty dependencies file for remedy_comparison.
# This may be replaced when dependencies are built.
