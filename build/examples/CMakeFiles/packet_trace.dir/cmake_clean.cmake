file(REMOVE_RECURSE
  "CMakeFiles/packet_trace.dir/packet_trace.cpp.o"
  "CMakeFiles/packet_trace.dir/packet_trace.cpp.o.d"
  "packet_trace"
  "packet_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
