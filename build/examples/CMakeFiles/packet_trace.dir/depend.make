# Empty dependencies file for packet_trace.
# This may be replaced when dependencies are built.
