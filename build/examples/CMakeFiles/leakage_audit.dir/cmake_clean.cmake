file(REMOVE_RECURSE
  "CMakeFiles/leakage_audit.dir/leakage_audit.cpp.o"
  "CMakeFiles/leakage_audit.dir/leakage_audit.cpp.o.d"
  "leakage_audit"
  "leakage_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
