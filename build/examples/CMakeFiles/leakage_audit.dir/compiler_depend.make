# Empty compiler generated dependencies file for leakage_audit.
# This may be replaced when dependencies are built.
