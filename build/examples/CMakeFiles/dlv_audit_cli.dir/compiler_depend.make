# Empty compiler generated dependencies file for dlv_audit_cli.
# This may be replaced when dependencies are built.
