file(REMOVE_RECURSE
  "CMakeFiles/dlv_audit_cli.dir/dlv_audit_cli.cpp.o"
  "CMakeFiles/dlv_audit_cli.dir/dlv_audit_cli.cpp.o.d"
  "dlv_audit_cli"
  "dlv_audit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlv_audit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
