// Tests for the observability layer: event model, sinks, tracer, span
// timeline reconstruction, JSONL round-trip, metrics sink mapping, and the
// end-to-end invariants the bench drivers rely on (metric stream == leakage
// analyzer counts; capture bytes == counter bytes; hop latencies sum to the
// resolution's reported response time).
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.h"
#include "obs/event.h"
#include "obs/metrics_registry.h"
#include "obs/metrics_sink.h"
#include "obs/span_timeline.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "sim/network.h"

namespace lookaside::obs {
namespace {

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

TEST(EventKindTest, NamesRoundTrip) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const auto kind = static_cast<EventKind>(i);
    EventKind parsed{};
    ASSERT_TRUE(event_kind_from_name(event_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  EventKind parsed{};
  EXPECT_FALSE(event_kind_from_name("no_such_kind", &parsed));
  EXPECT_FALSE(event_kind_from_name("", &parsed));
}

TEST(EventTest, JsonlGolden) {
  Event event;
  event.time_us = 42;
  event.span_id = 7;
  event.parent_span_id = 6;
  event.query_id = (5ULL << 32) | 9;
  event.client = 5;
  event.kind = EventKind::kUpstreamQuery;
  event.name = "example.com.";
  event.server = "tld:com";
  event.qtype = dns::RRType::kDlv;
  event.rcode = dns::RCode::kNxDomain;
  event.bytes = 53;
  event.latency_us = 80000;
  event.detail = "x";
  EXPECT_EQ(to_jsonl(event),
            "{\"time_us\":42,\"span\":7,\"parent\":6,\"query\":21474836489,"
            "\"client\":5,\"kind\":\"upstream_query\","
            "\"name\":\"example.com.\",\"server\":\"tld:com\",\"qtype\":32769,"
            "\"rcode\":3,\"bytes\":53,\"latency_us\":80000,\"detail\":\"x\"}");
}

TEST(EventTest, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(EventTest, ServerClassification) {
  EXPECT_EQ(server_class("root"), "root");
  EXPECT_EQ(server_class("tld:com"), "tld");
  EXPECT_EQ(server_class("auth:universe"), "sld");
  EXPECT_EQ(server_class("auth:example.com"), "sld");
  EXPECT_EQ(server_class("dlv:dlv.isc.org"), "dlv");
  EXPECT_EQ(server_class("arpa"), "arpa");
  EXPECT_EQ(server_class("recursive"), "recursive");
  EXPECT_EQ(server_class("stub"), "stub");
  EXPECT_EQ(server_class("mystery"), "other");
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

Event numbered_event(std::uint64_t i) {
  Event event;
  event.time_us = i;
  event.kind = EventKind::kUpstreamQuery;
  event.name = "n" + std::to_string(i) + ".";
  return event;
}

TEST(RingBufferSinkTest, BoundsMemoryAndKeepsNewest) {
  RingBufferSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.on_event(numbered_event(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_seen(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<Event> events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first ordering of the surviving (newest) events.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].time_us, 6 + i);
  }
}

TEST(RingBufferSinkTest, PartialFillPreservesOrder) {
  RingBufferSink ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) ring.on_event(numbered_event(i));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<Event> events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().time_us, 0u);
  EXPECT_EQ(events.back().time_us, 2u);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_seen(), 0u);
}

TEST(SummarySinkTest, CountsKindsAndServers) {
  SummarySink summary;
  Event query = numbered_event(1);
  query.server = "dlv:dlv.isc.org";
  query.bytes = 50;
  summary.on_event(query);
  Event response = query;
  response.kind = EventKind::kResponse;
  response.bytes = 200;
  response.latency_us = 80000;
  summary.on_event(response);
  EXPECT_EQ(summary.count(EventKind::kUpstreamQuery), 1u);
  EXPECT_EQ(summary.count(EventKind::kResponse), 1u);
  EXPECT_EQ(summary.count(EventKind::kValidation), 0u);
  std::ostringstream out;
  summary.print(out);
  EXPECT_NE(out.str().find("dlv"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, StampsClockAndSpan) {
  sim::SimClock clock;
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(16);
  tracer.add_sink(ring);
  tracer.attach_clock(clock);

  clock.advance_us(500);
  const std::uint64_t span = tracer.begin_span();
  EXPECT_EQ(tracer.current_span(), span);
  tracer.emit(Event{});  // zero time/span: stamped by the tracer
  tracer.end_span(span);
  EXPECT_EQ(tracer.current_span(), 0u);
  tracer.emit(Event{});  // outside any span

  const std::vector<Event> events = ring->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time_us, 500u);
  EXPECT_EQ(events[0].span_id, span);
  EXPECT_EQ(events[1].span_id, 0u);
  EXPECT_EQ(tracer.events_emitted(), 2u);
}

TEST(TracerTest, NoSinksMeansNoWork) {
  Tracer tracer;
  EXPECT_FALSE(tracer.has_sinks());
  tracer.emit(Event{});
  EXPECT_EQ(tracer.events_emitted(), 0u);
}

TEST(TracerTest, SpansNestLikeAStack) {
  Tracer tracer;
  tracer.add_sink(std::make_shared<RingBufferSink>(4));
  const std::uint64_t outer = tracer.begin_span();
  const std::uint64_t inner = tracer.begin_span();
  EXPECT_EQ(tracer.current_span(), inner);
  tracer.end_span(inner);
  EXPECT_EQ(tracer.current_span(), outer);
  tracer.end_span(outer);
  EXPECT_EQ(tracer.current_span(), 0u);
}

TEST(TracerTest, StampsParentSpanAndQueryContext) {
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(8);
  tracer.add_sink(ring);

  tracer.push_query(/*query_id=*/0x42, /*client=*/3);
  EXPECT_TRUE(tracer.in_query());
  EXPECT_EQ(tracer.current_query_id(), 0x42u);
  const std::uint64_t outer = tracer.begin_span();
  const std::uint64_t inner = tracer.begin_span();
  tracer.emit(Event{});  // all-zero context: stamped from the stacks
  tracer.end_span(inner);
  tracer.end_span(outer);
  tracer.pop_query();
  EXPECT_FALSE(tracer.in_query());
  tracer.emit(Event{});  // outside any query: untagged

  const std::vector<Event> events = ring->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span_id, inner);
  EXPECT_EQ(events[0].parent_span_id, outer);
  EXPECT_EQ(events[0].query_id, 0x42u);
  EXPECT_EQ(events[0].client, 3u);
  EXPECT_EQ(events[1].parent_span_id, 0u);
  EXPECT_EQ(events[1].query_id, 0u);
  EXPECT_EQ(events[1].client, 0u);
}

TEST(JsonlFileSinkTest, WriteFailuresAreCountedAsDropped) {
  // Events emitted after the stream dies must be accounted, not silently
  // lost: ObsSession surfaces this as obs_trace_dropped{sink="jsonl"}.
  JsonlFileSink sink("/nonexistent-dir/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.on_event(Event{});
  sink.on_event(Event{});
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.events_written(), 0u);
}

// ---------------------------------------------------------------------------
// Network bridge (satellite: single accounting path)
// ---------------------------------------------------------------------------

class EchoServer : public sim::Endpoint {
 public:
  explicit EchoServer(std::string id) : id_(std::move(id)) {}
  [[nodiscard]] std::string endpoint_id() const override { return id_; }
  [[nodiscard]] dns::Message handle_query(
      const dns::Message& query) override {
    return dns::Message::make_response(query);
  }

 private:
  std::string id_;
};

dns::Message query_for(const std::string& name) {
  return dns::Message::make_query(1, dns::Name::parse(name), dns::RRType::kA,
                                  false, false);
}

TEST(NetworkBridgeTest, ConvertsUpstreamExchangesOnly) {
  sim::SimClock clock;
  sim::Network network(clock);
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(16);
  tracer.add_sink(ring);
  tracer.attach_clock(clock);
  tracer.attach_network(network);

  EchoServer root("root");
  EchoServer recursive("recursive");
  // Stub-side exchange: must not appear in the trace.
  (void)network.exchange("stub", recursive, query_for("example.com"));
  // Upstream exchange: one query + one response event.
  (void)network.exchange("recursive", root, query_for("example.com"));

  const std::vector<Event> events = ring->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kUpstreamQuery);
  EXPECT_EQ(events[0].server, "root");
  EXPECT_EQ(events[0].name, "example.com.");
  EXPECT_GT(events[0].bytes, 0u);
  EXPECT_EQ(events[1].kind, EventKind::kResponse);
  EXPECT_EQ(events[1].server, "root");
  // The latency model gives root a 30 ms one-way hop.
  EXPECT_EQ(events[1].latency_us, 60'000u);
  EXPECT_EQ(events[1].time_us, events[0].time_us + events[1].latency_us);
}

TEST(NetworkBridgeTest, ObserverAndCaptureAgreeOnBytes) {
  // Regression for the unified Network::record() path: the byte totals
  // derived from the observer stream, the stored capture and the counters
  // must be identical.
  sim::SimClock clock;
  sim::Network network(clock);
  network.set_capture_enabled(true);
  std::uint64_t observed_bytes = 0;
  network.add_observer([&observed_bytes](const sim::PacketRecord& packet) {
    observed_bytes += packet.bytes;
  });

  EchoServer root("root");
  EchoServer tld("tld:com");
  (void)network.exchange("recursive", root, query_for("example.com"));
  (void)network.exchange("recursive", tld, query_for("www.example.com"));

  std::uint64_t captured_bytes = 0;
  for (const sim::PacketRecord& packet : network.capture()) {
    captured_bytes += packet.bytes;
  }
  EXPECT_EQ(network.counters().value("bytes.total"), observed_bytes);
  EXPECT_EQ(captured_bytes, observed_bytes);
  EXPECT_GT(observed_bytes, 0u);
}

// ---------------------------------------------------------------------------
// JSONL round trip
// ---------------------------------------------------------------------------

TEST(TraceReaderTest, ParsesWhatToJsonlWrites) {
  Event original;
  original.time_us = 123456;
  original.span_id = 9;
  original.kind = EventKind::kDlvObservation;
  original.name = "leaky.com.";
  original.server = "dlv:dlv.isc.org";
  original.qtype = dns::RRType::kDlv;
  original.rcode = dns::RCode::kNxDomain;
  original.bytes = 99;
  original.latency_us = 80000;
  original.detail = "2";

  Event parsed;
  ASSERT_TRUE(parse_jsonl_event(to_jsonl(original), &parsed));
  EXPECT_EQ(parsed.time_us, original.time_us);
  EXPECT_EQ(parsed.span_id, original.span_id);
  EXPECT_EQ(parsed.kind, original.kind);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.server, original.server);
  EXPECT_EQ(parsed.qtype, original.qtype);
  EXPECT_EQ(parsed.rcode, original.rcode);
  EXPECT_EQ(parsed.bytes, original.bytes);
  EXPECT_EQ(parsed.latency_us, original.latency_us);
  EXPECT_EQ(parsed.detail, original.detail);
}

TEST(TraceReaderTest, EscapedStringsRoundTrip) {
  Event original;
  original.kind = EventKind::kValidation;
  original.name = "we\"ird\\name\n.";
  Event parsed;
  ASSERT_TRUE(parse_jsonl_event(to_jsonl(original), &parsed));
  EXPECT_EQ(parsed.name, original.name);
}

TEST(TraceReaderTest, CountsMalformedLines) {
  std::istringstream in(
      to_jsonl(numbered_event(1)) + "\n" +
      "not json at all\n" +
      "{\"kind\":\"unknown_kind\"}\n" +
      "\n" +  // blank lines are skipped, not malformed
      to_jsonl(numbered_event(2)) + "\n");
  std::size_t malformed = 0;
  const std::vector<Event> events = read_jsonl_events(in, &malformed);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(malformed, 2u);
}

TEST(TraceReaderTest, TruncatedTrailingRecordIsSkippedAndCounted) {
  // A crashed or killed writer leaves the file's last record cut mid-JSON
  // with no trailing newline. The reader must keep every complete record,
  // count the fragment as malformed, and flag the truncation.
  const std::string full = to_jsonl(numbered_event(1)) + "\n" +
                           to_jsonl(numbered_event(2)) + "\n";
  const std::string tail = to_jsonl(numbered_event(3));
  std::istringstream in(full + tail.substr(0, tail.size() / 2));

  TraceReadStats stats;
  const std::vector<Event> events = read_jsonl_events(in, &stats);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_TRUE(stats.truncated_tail);
}

TEST(TraceReaderTest, CompleteFinalLineWithoutNewlineIsNotTruncation) {
  // A final record that parses is fine even if the newline is missing —
  // truncation means the *record* is cut, not the file.
  std::istringstream in(to_jsonl(numbered_event(1)) + "\n" +
                        to_jsonl(numbered_event(2)));
  TraceReadStats stats;
  const std::vector<Event> events = read_jsonl_events(in, &stats);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(TraceReaderTest, TraceContextFieldsRoundTrip) {
  Event original = numbered_event(7);
  original.span_id = 40;
  original.parent_span_id = 39;
  original.query_id = (5ULL << 32) | 11;
  original.client = 5;
  Event parsed;
  ASSERT_TRUE(parse_jsonl_event(to_jsonl(original), &parsed));
  EXPECT_EQ(parsed.parent_span_id, original.parent_span_id);
  EXPECT_EQ(parsed.query_id, original.query_id);
  EXPECT_EQ(parsed.client, original.client);
}

// ---------------------------------------------------------------------------
// Span timeline
// ---------------------------------------------------------------------------

std::vector<Event> synthetic_resolution() {
  std::vector<Event> events;
  Event stub;
  stub.time_us = 1000;
  stub.span_id = 1;
  stub.kind = EventKind::kStubQuery;
  stub.name = "example.com.";
  events.push_back(stub);

  const struct {
    const char* server;
    std::uint64_t rtt;
  } hops[] = {{"root", 60000}, {"tld:com", 50000}, {"dlv:dlv.isc.org", 80000}};
  std::uint64_t now = 1000;
  for (const auto& hop : hops) {
    Event query;
    query.time_us = now;
    query.span_id = 1;
    query.kind = EventKind::kUpstreamQuery;
    query.name = "example.com.";
    query.server = hop.server;
    query.bytes = 40;
    events.push_back(query);
    now += hop.rtt;
    Event response = query;
    response.kind = EventKind::kResponse;
    response.time_us = now;
    response.bytes = 150;
    response.latency_us = hop.rtt;
    events.push_back(response);
  }

  Event validation;
  validation.time_us = now;
  validation.span_id = 1;
  validation.kind = EventKind::kValidation;
  validation.name = "example.com.";
  validation.detail = "insecure";
  events.push_back(validation);

  Event done;
  done.time_us = now;
  done.span_id = 1;
  done.kind = EventKind::kResponse;
  done.name = "example.com.";
  done.server = "recursive";
  done.latency_us = now - 1000;
  done.detail = "insecure";
  events.push_back(done);
  return events;
}

TEST(SpanTimelineTest, ReconstructsHopsAndCloses) {
  const SpanTimeline timeline =
      SpanTimeline::from_events(synthetic_resolution());
  ASSERT_EQ(timeline.spans().size(), 1u);
  const ResolutionSpan& span = timeline.spans().front();
  EXPECT_TRUE(span.closed);
  EXPECT_EQ(span.name, "example.com.");
  EXPECT_EQ(span.status, "insecure");
  ASSERT_EQ(span.hops.size(), 3u);
  EXPECT_EQ(span.hops[0].server, "root");
  EXPECT_EQ(span.hops[2].server, "dlv:dlv.isc.org");
  EXPECT_TRUE(span.hops[2].answered);
  EXPECT_EQ(span.hops[0].query_bytes, 40u);
  EXPECT_EQ(span.hops[0].response_bytes, 150u);
}

TEST(SpanTimelineTest, HopLatenciesSumToReported) {
  const SpanTimeline timeline =
      SpanTimeline::from_events(synthetic_resolution());
  const ResolutionSpan& span = timeline.spans().front();
  EXPECT_EQ(span.hop_latency_total_us(), 190'000u);
  EXPECT_EQ(span.reported_latency_us, 190'000u);
  const auto phases = span.phase_durations_us();
  EXPECT_EQ(phases.at("root"), 60'000u);
  EXPECT_EQ(phases.at("tld"), 50'000u);
  EXPECT_EQ(phases.at("dlv"), 80'000u);
}

TEST(SpanTimelineTest, FindByNameToleratesMissingDot) {
  const SpanTimeline timeline =
      SpanTimeline::from_events(synthetic_resolution());
  EXPECT_EQ(timeline.find_by_name("example.com").size(), 1u);
  EXPECT_EQ(timeline.find_by_name("example.com.").size(), 1u);
  EXPECT_TRUE(timeline.find_by_name("other.com").empty());
}

TEST(SpanTimelineTest, PrintReportsConsistency) {
  const SpanTimeline timeline =
      SpanTimeline::from_events(synthetic_resolution());
  std::ostringstream out;
  SpanTimeline::print(out, timeline.spans().front());
  EXPECT_NE(out.str().find("[consistent]"), std::string::npos);
  EXPECT_EQ(out.str().find("[MISMATCH]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry export goldens
// ---------------------------------------------------------------------------

TEST(MetricsRegistryExportTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.add("upstream_queries", {{"server", "dlv"}}, 791);
  registry.add("upstream_queries", {{"server", "root"}}, 31);
  registry.add("resolutions", {}, 1000);
  EXPECT_EQ(registry.prometheus_text(),
            "# TYPE resolutions counter\n"
            "resolutions 1000\n"
            "# TYPE upstream_queries counter\n"
            "upstream_queries{server=\"dlv\"} 791\n"
            "upstream_queries{server=\"root\"} 31\n");
}

TEST(MetricsRegistryExportTest, PrometheusSummaryFromHistogram) {
  MetricsRegistry registry;
  for (int i = 1; i <= 4; ++i) {
    registry.observe("latency_seconds", {{"server", "dlv"}}, i * 0.1);
  }
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE latency_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds{server=\"dlv\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum{server=\"dlv\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count{server=\"dlv\"} 4\n"),
            std::string::npos);
}

TEST(MetricsRegistryExportTest, JsonGolden) {
  MetricsRegistry registry;
  registry.add("dlv_observations", {{"case", "2"}}, 688);
  EXPECT_EQ(registry.json(),
            "{\"counters\":[{\"name\":\"dlv_observations\","
            "\"labels\":{\"case\":\"2\"},\"value\":688}],"
            "\"histograms\":[]}");
}

TEST(MetricsRegistryExportTest, CsvHasHeaderAndRows) {
  MetricsRegistry registry;
  registry.add("queries", {{"server", "root"}}, 5);
  std::ostringstream out;
  registry.write_csv(out);
  EXPECT_NE(out.str().find("name,labels,value"), std::string::npos);
  EXPECT_NE(out.str().find("5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics sink mapping
// ---------------------------------------------------------------------------

TEST(MetricsSinkTest, MapsEventKindsToInstruments) {
  MetricsRegistry registry;
  MetricsSink sink(registry);

  Event stub;
  stub.kind = EventKind::kStubQuery;
  stub.qtype = dns::RRType::kA;
  sink.on_event(stub);

  Event upstream;
  upstream.kind = EventKind::kUpstreamQuery;
  upstream.server = "dlv:dlv.isc.org";
  upstream.name = "example.com.dlv.isc.org.";
  upstream.bytes = 53;
  sink.on_event(upstream);

  // A DNSKEY fetch for the registry apex is infrastructure, not a DLV
  // observation candidate: it lands in "dlv-apex".
  Event apex = upstream;
  apex.name = "dlv.isc.org.";
  sink.on_event(apex);

  Event observation;
  observation.kind = EventKind::kDlvObservation;
  observation.detail = "2";
  sink.on_event(observation);

  Event done;
  done.kind = EventKind::kResponse;
  done.server = "recursive";
  done.detail = "insecure";
  done.latency_us = 190000;
  sink.on_event(done);

  EXPECT_EQ(registry.value("resolutions", {{"qtype", "A"}}), 1u);
  EXPECT_EQ(registry.value("upstream_queries", {{"server", "dlv"}}), 1u);
  EXPECT_EQ(registry.value("upstream_queries", {{"server", "dlv-apex"}}), 1u);
  EXPECT_EQ(registry.value("dlv_observations", {{"case", "2"}}), 1u);
  EXPECT_EQ(registry.value("resolutions_completed",
                           {{"status", "insecure"}, {"rcode", "NOERROR"}}),
            1u);
  const metrics::Histogram* latency =
      registry.histogram("resolution_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
}

// ---------------------------------------------------------------------------
// End to end through a universe experiment
// ---------------------------------------------------------------------------

TEST(ObsEndToEndTest, MetricStreamMatchesLeakageAnalyzer) {
  core::UniverseExperiment::Options options;
  options.universe_size = 2'000;
  MetricsRegistry registry;
  Tracer tracer;
  auto metrics_sink = std::make_shared<MetricsSink>(registry);
  auto ring = std::make_shared<RingBufferSink>(1 << 14);
  tracer.add_sink(metrics_sink);
  tracer.add_sink(ring);
  options.tracer = &tracer;

  core::UniverseExperiment experiment(options);
  const core::LeakageReport report = experiment.run_topn(40);

  // The acceptance invariant: the metric stream's per-server counter equals
  // the leakage analyzer's count, measured through independent paths.
  EXPECT_EQ(registry.value("upstream_queries", {{"server", "dlv"}}),
            report.dlv_queries);
  EXPECT_EQ(registry.value("dlv_observations", {{"case", "1"}}),
            report.case1_queries);
  EXPECT_EQ(registry.total("dlv_observations"), report.dlv_queries);
  EXPECT_GT(report.dlv_queries, 0u);

  // Every resolution produced exactly one validation and one completion.
  EXPECT_EQ(registry.total("validations"),
            registry.total("resolutions_completed"));
  EXPECT_EQ(registry.total("resolutions"),
            registry.total("resolutions_completed"));
}

TEST(ObsEndToEndTest, SpanHopLatenciesSumToResponseTime) {
  core::UniverseExperiment::Options options;
  options.universe_size = 2'000;
  Tracer tracer;
  auto ring = std::make_shared<RingBufferSink>(1 << 14);
  tracer.add_sink(ring);
  options.tracer = &tracer;

  core::UniverseExperiment experiment(options);
  (void)experiment.run_topn(25);

  const SpanTimeline timeline = SpanTimeline::from_events(ring->events());
  ASSERT_GT(timeline.spans().size(), 0u);
  std::size_t closed = 0;
  for (const ResolutionSpan& span : timeline.spans()) {
    if (!span.closed) continue;
    ++closed;
    // The simulated clock only advances inside network exchanges, so the
    // hop round trips must sum exactly to the reported response time.
    EXPECT_EQ(span.hop_latency_total_us(), span.reported_latency_us)
        << "span " << span.span_id << " (" << span.name << ")";
    EXPECT_EQ(span.end_us - span.start_us, span.reported_latency_us);
  }
  EXPECT_GT(closed, 0u);
}

TEST(ObsEndToEndTest, TraceBytesMatchNetworkCounters) {
  core::UniverseExperiment::Options options;
  options.universe_size = 2'000;
  MetricsRegistry registry;
  Tracer tracer;
  auto metrics_sink = std::make_shared<MetricsSink>(registry);
  tracer.add_sink(metrics_sink);
  options.tracer = &tracer;

  core::UniverseExperiment experiment(options);
  (void)experiment.run_topn(20);

  // The trace covers every packet except the stub<->recursive leg (the
  // bridge deliberately skips stub-side packets), so the traced byte totals
  // are bounded by — and track — the network's own counters.
  const metrics::CounterSet& counters = experiment.network().counters();
  std::uint64_t traced_query_bytes = 0;
  std::uint64_t traced_response_bytes = 0;
  for (const char* cls :
       {"root", "tld", "sld", "dlv", "dlv-apex", "arpa", "other"}) {
    traced_query_bytes +=
        registry.value("upstream_bytes", {{"server", cls}, {"dir", "query"}});
    traced_response_bytes += registry.value(
        "upstream_bytes", {{"server", cls}, {"dir", "response"}});
  }
  EXPECT_GT(traced_query_bytes, 0u);
  EXPECT_LT(traced_query_bytes, counters.value("bytes.query"));
  EXPECT_LT(traced_response_bytes, counters.value("bytes.response"));
  // Upstream query count matches the counter view of the same packets:
  // every destination except the resolver itself was queried by it.
  std::uint64_t upstream_dest_queries = 0;
  for (const auto& [name, value] : counters.entries()) {
    if (name.rfind("dest.", 0) == 0 && name != "dest.recursive.queries") {
      upstream_dest_queries += value;
    }
  }
  EXPECT_EQ(registry.total("upstream_queries"), upstream_dest_queries);
}

}  // namespace
}  // namespace lookaside::obs
