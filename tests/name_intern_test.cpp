// Interned-name arena, root-hash de-aliasing, sweep-cursor rehash safety,
// byte-accounting truthfulness, and batched-verification dedupe (§4k).
//
// The `intern` label runs this suite under ASan and TSan in CI: the arena
// and the batch memo sit on the resolver's hottest paths, so lifetime and
// data-race bugs here corrupt every experiment downstream.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <malloc.h>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "dns/name.h"
#include "dns/name_arena.h"
#include "dns/name_map.h"
#include "resolver/cache.h"
#include "resolver/config.h"
#include "sim/clock.h"

// ---------------------------------------------------------------------------
// Heap shim for the byte-accounting test: tracks the process's live heap via
// malloc_usable_size so a test can measure the net footprint a cache
// populate phase actually allocated. Counting is always on (the counter is
// process-wide); tests read deltas around the phase they care about.
namespace {
std::atomic<long long> g_live_heap_bytes{0};

long long live_heap() { return g_live_heap_bytes.load(); }

void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  g_live_heap_bytes += static_cast<long long>(malloc_usable_size(p));
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live_heap_bytes -= static_cast<long long>(malloc_usable_size(p));
  std::free(p);
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace lookaside {
namespace {

// ---------------------------------------------------------------------------
// NameArena

TEST(NameArena, InternIsIdempotentAndDerefsToCanonicalName) {
  dns::NameArena arena;
  const dns::Name a = dns::Name::parse("www.example.com");
  const dns::Name b = dns::Name::parse("mail.example.com");

  const dns::NameId id_a = arena.intern(a);
  const dns::NameId id_b = arena.intern(b);
  EXPECT_NE(id_a, id_b);
  EXPECT_EQ(arena.intern(a), id_a);
  EXPECT_EQ(arena.intern(dns::Name::parse("www.example.com")), id_a);
  EXPECT_EQ(arena.size(), 2u);

  EXPECT_EQ(arena.name(id_a), a);
  EXPECT_EQ(arena.name(id_b), b);
  EXPECT_EQ(arena.find(a), id_a);
  EXPECT_EQ(arena.find(dns::Name::parse("absent.example.com")),
            dns::kInvalidNameId);
}

TEST(NameArena, IdsAndReferencesStayStableAcrossGrowth) {
  dns::NameArena arena;
  std::vector<std::pair<dns::NameId, dns::Name>> interned;
  for (int i = 0; i < 5000; ++i) {
    dns::Name name =
        dns::Name::parse("host" + std::to_string(i) + ".example.com");
    interned.emplace_back(arena.intern(name), std::move(name));
  }
  // The index rehashed many times on the way to 5000 entries; every id
  // assigned before any of those rehashes must still deref to its name.
  for (const auto& [id, name] : interned) {
    EXPECT_EQ(arena.name(id), name);
    EXPECT_EQ(arena.find(name), id);
  }
  EXPECT_EQ(arena.size(), interned.size());
}

TEST(NameArena, BytesTracksFootprintAndClearResets) {
  dns::NameArena arena;
  const std::uint64_t empty_bytes = arena.bytes();
  for (int i = 0; i < 256; ++i) {
    arena.intern(dns::Name::parse("n" + std::to_string(i) + ".example.com"));
  }
  EXPECT_GT(arena.bytes(), empty_bytes);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_LE(arena.bytes(), empty_bytes);
  // Ids restart from zero after clear (dense id contract).
  EXPECT_EQ(arena.intern(dns::Name::parse("fresh.example.com")), 0u);
}

TEST(SharedNameArena, ConcurrentInternConvergesToOneIdPerName) {
  dns::SharedNameArena arena;
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<dns::NameId>> ids(
      kThreads, std::vector<dns::NameId>(kNames, dns::kInvalidNameId));

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&arena, &ids, t] {
      for (int i = 0; i < kNames; ++i) {
        // Every thread interns the same name set (contended dedupe) and
        // immediately derefs through the shared lock.
        const dns::Name name =
            dns::Name::parse("shared" + std::to_string(i) + ".example.com");
        const dns::NameId id = arena.intern(name);
        ids[t][i] = id;
        EXPECT_EQ(arena.name(id), name);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(arena.size(), static_cast<std::size_t>(kNames));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
}

// ---------------------------------------------------------------------------
// Root-hash de-aliasing (§4k audit finding #1)

TEST(NameHash, RootIsDistinctFromEmptyFnvBasis) {
  constexpr std::size_t kFnvBasis = 14695981039346656037ULL;
  EXPECT_EQ(dns::Name::root().hash(), dns::Name::kRootHash);
  EXPECT_NE(dns::Name::root().hash(), kFnvBasis);
  // Default-constructed and parsed roots agree.
  EXPECT_EQ(dns::Name{}.hash(), dns::Name::kRootHash);
  EXPECT_EQ(dns::Name::parse(".").hash(), dns::Name::kRootHash);
  EXPECT_EQ(dns::Name::parse("").hash(), dns::Name::kRootHash);

  // The de-aliasing constant differs from the basis only in bits the table
  // never consumes: slot indexes come from low bits, control fragments from
  // the top 7. Pinning both halves here keeps future "improvements" from
  // silently moving every root-keyed entry (eviction order is a published
  // observable; see NameMapSweepCursor).
  EXPECT_EQ(dns::Name::kRootHash & ((1ULL << 45) - 1),
            kFnvBasis & ((1ULL << 45) - 1));
  EXPECT_EQ(dns::Name::kRootHash >> 57, kFnvBasis >> 57);
}

TEST(NameHash, RootKeyedEntriesResolveInNameHashMap) {
  dns::NameHashMap<int> map;
  map.get_or_insert(dns::Name::root()) = 1;
  map.get_or_insert(dns::Name::parse("com")) = 2;
  map.get_or_insert(dns::Name::parse("example.com")) = 3;
  ASSERT_NE(map.find(dns::Name::root()), nullptr);
  EXPECT_EQ(*map.find(dns::Name::root()), 1);
  EXPECT_EQ(*map.find(dns::Name::parse("com")), 2);
  // A default-constructed Name is the root; it must alias the same entry.
  ASSERT_NE(map.find(dns::Name{}), nullptr);
  EXPECT_EQ(*map.find(dns::Name{}), 1);
}

// ---------------------------------------------------------------------------
// Sweep-cursor rehash safety (§4k audit finding #2)

TEST(NameMapSweep, FullLapVisitsEveryEntryExactlyOnceWithinGeneration) {
  dns::NameHashMap<int> map;
  std::set<std::string> live;
  for (int i = 0; i < 100; ++i) {
    const std::string label = "entry" + std::to_string(i) + ".test";
    map.get_or_insert(dns::Name::parse(label)) = i;
    live.insert(label);
  }

  // One full lap in ragged chunks: every live entry exactly once.
  dns::NameMapSweepCursor cursor;
  std::multiset<std::string> visited;
  std::size_t steps_left = map.slot_count();
  while (steps_left > 0) {
    const std::size_t chunk = std::min<std::size_t>(7, steps_left);
    map.sweep(&cursor, chunk, [&](const dns::Name& key, int) {
      visited.insert(key.internal_text());
      return false;
    });
    steps_left -= chunk;
  }
  EXPECT_EQ(std::set<std::string>(visited.begin(), visited.end()), live);
  EXPECT_EQ(visited.size(), live.size()) << "an entry was visited twice";
}

TEST(NameMapSweep, CursorSurvivesRehashBetweenChunks) {
  dns::NameHashMap<int> map;
  std::map<std::string, int> model;
  auto insert = [&](int i) {
    const std::string label = "key" + std::to_string(i) + ".test";
    map.get_or_insert(dns::Name::parse(label)) = i;
    model[label] = i;
  };
  for (int i = 0; i < 20; ++i) insert(i);

  // Start a sweep, then force rehashes mid-lap by inserting past the load
  // factor. The stale cursor must re-anchor into the new slot ordering (in
  // bounds, generation refreshed) and keep making progress; with the old
  // unmasked cursor this walk indexed out of the live table's range.
  dns::NameMapSweepCursor cursor;
  std::set<std::string> visited;
  const std::uint64_t gen_before = map.generation();
  map.sweep(&cursor, 5, [&](const dns::Name& key, int) {
    visited.insert(key.internal_text());
    return false;
  });
  for (int i = 20; i < 400; ++i) insert(i);  // multiple grow() rehashes
  ASSERT_GT(map.generation(), gen_before);

  // A full post-rehash lap still reaches every entry (re-anchored cursor
  // walks the whole current table; earlier partial visits may repeat, which
  // is the documented cross-generation allowance).
  std::size_t steps_left = map.slot_count();
  while (steps_left > 0) {
    const std::size_t chunk = std::min<std::size_t>(13, steps_left);
    map.sweep(&cursor, chunk, [&](const dns::Name& key, int) {
      visited.insert(key.internal_text());
      return false;
    });
    steps_left -= chunk;
  }
  EXPECT_EQ(cursor.generation, map.generation());
  for (const auto& [label, value] : model) {
    EXPECT_TRUE(visited.count(label) > 0) << label;
  }
}

TEST(NameMapSweep, InterleavedInsertsAndErasingSweepsMatchModel) {
  dns::NameHashMap<int> map;
  std::map<std::string, int> model;
  dns::NameMapSweepCursor cursor;
  int next = 0;

  // Alternate insert bursts (rehash pressure) with erasing sweeps (drop
  // odd values), checking the map against the model after every phase.
  for (int phase = 0; phase < 12; ++phase) {
    for (int i = 0; i < 37; ++i, ++next) {
      const std::string label = "n" + std::to_string(next) + ".test";
      map.get_or_insert(dns::Name::parse(label)) = next;
      model[label] = next;
    }
    std::size_t erased = map.sweep(&cursor, map.slot_count() / 2,
                                   [](const dns::Name&, int value) {
                                     return value % 2 == 1;
                                   });
    // Mirror: one model pass can't know which half of the table the hand
    // covered, so re-check membership entry by entry instead.
    std::size_t gone = 0;
    for (auto it = model.begin(); it != model.end();) {
      const dns::Name key = dns::Name::parse(it->first);
      const int* found = map.find(key);
      if (found == nullptr) {
        ASSERT_EQ(it->second % 2, 1) << "sweep erased an even value";
        it = model.erase(it);
        ++gone;
      } else {
        ASSERT_EQ(*found, it->second);
        ++it;
      }
    }
    ASSERT_EQ(gone, erased);
    ASSERT_EQ(map.size(), model.size());
  }
}

// ---------------------------------------------------------------------------
// Byte-accounting truthfulness (§4f/§4k)

TEST(CacheBytes, AccountingTracksRealHeapFootprint) {
  sim::SimClock clock;
  auto cache = std::make_unique<resolver::ResolverCache>(clock);

  const long long heap_before = live_heap();
  for (int i = 0; i < 400; ++i) {
    const std::string owner = "name" + std::to_string(i) + ".com.dlv.isc.org";
    const std::string next = "name" + std::to_string(i + 1) + ".com.dlv.isc.org";
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse(next);
    nsec.types = {dns::RRType::kA, dns::RRType::kRrsig, dns::RRType::kNsec};
    cache->store_nsec(dns::Name::parse("dlv.isc.org"),
                      dns::ResourceRecord::make(dns::Name::parse(owner), 3600,
                                                dns::Rdata{nsec}));

    dns::RRset rrset(dns::Name::parse("host" + std::to_string(i) + ".com"),
                     dns::RRType::kA);
    rrset.add(dns::ResourceRecord::make(rrset.name(), 3600,
                                        dns::ARdata{0x0A000001u + i}));
    cache->store(rrset, /*validated=*/false);
  }
  const long long heap_delta = live_heap() - heap_before;
  ASSERT_GT(heap_delta, 0);

  // bytes() is a model, not a malloc ledger: it must stay the same order of
  // magnitude as the real allocation delta — an accounting that drifts to a
  // fraction of (or a multiple of) the true footprint makes the byte cap
  // meaningless. The arena is part of the advertised footprint.
  const double billed = static_cast<double>(cache->bytes());
  const double actual = static_cast<double>(heap_delta);
  EXPECT_GT(cache->arena_bytes(), 0u);
  EXPECT_GE(billed, actual * 0.25)
      << "bytes()=" << billed << " vs heap delta " << actual;
  EXPECT_LE(billed, actual * 4.0)
      << "bytes()=" << billed << " vs heap delta " << actual;

  // Destruction returns the footprint: the cache doesn't leak heap that
  // bytes() never billed.
  cache.reset();
  const long long heap_after_destroy = live_heap() - heap_before;
  EXPECT_LT(static_cast<double>(heap_after_destroy), actual * 0.1);
}

TEST(CacheBytes, EvictionOrderUnchangedByInterning) {
  // The cap-sweep Case-2 count is a direct observable of clock-eviction
  // order. This replicates bench_cache_churn's smoke cell (synthesis off,
  // 16 KiB cap) and pins its Case-2 volume to the committed baseline
  // (bench/baselines/BENCH_cache.smoke.json): interning the cache's names
  // must not move a single eviction.
  core::UniverseExperiment::Options options;
  options.universe_size = 10'000;
  options.resolver_config = resolver::ResolverConfig::bind_yum();
  options.resolver_config.max_cache_bytes = 16 * 1024;
  options.resolver_config.ns_fetch_probability = 0.0;
  core::UniverseExperiment experiment(options);
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t rank = 1; rank <= 250; ++rank) {
      (void)experiment.stub().visit(
          experiment.world().universe().domain_at(rank));
    }
    if (round + 1 < 3) experiment.clock().advance_seconds(2'100.0);
  }
  EXPECT_EQ(experiment.analyzer().report().case2_queries, 461u);
}

// ---------------------------------------------------------------------------
// Batched verification (§4k)

TEST(VerifyBatch, DedupesRepeatVerificationWithinOneResolution) {
  // A validated NXDOMAIN from a signed TLD verifies its authority NSECs
  // twice in one resolution: once for the denial proof, once when the spans
  // are cached for aggressive reuse. With the verdict cache off (bind_yum
  // default) the batch memo is the only thing standing between those and
  // two full RSA verifications.
  core::UniverseExperiment::Options options;
  options.universe_size = 10'000;
  options.resolver_config = resolver::ResolverConfig::bind_yum();
  options.resolver_config.ns_fetch_probability = 0.0;
  core::UniverseExperiment experiment(options);

  const dns::Name tld = experiment.world().universe().domain_at(1).parent();
  (void)experiment.stub().visit(tld.with_prefix_label("definitely-not-there"));

  const auto& counters = experiment.resolver().validator().counters();
  EXPECT_GE(counters.value("verify.batch_deduped"), 1u);
  EXPECT_GT(counters.value("verify.batch_unique"), 0u);
  // Verdict cache is off in this configuration: the dedupe above is the
  // within-resolution batch alone.
  EXPECT_EQ(counters.value("verdict.rsa_skipped"), 0u);
}

}  // namespace
}  // namespace lookaside
