// Tests for the synthetic universe model, the universe world authorities,
// the stub driver, the 45-domain dataset and the DITL trace generator.
#include <gtest/gtest.h>

#include <set>

#include "resolver/resolver.h"
#include "workload/ditl.h"
#include "workload/secured45.h"
#include "workload/stub.h"
#include "workload/universe_world.h"

namespace lookaside::workload {
namespace {

UniverseOptions small_universe(std::uint64_t size = 10'000) {
  UniverseOptions options;
  options.size = size;
  return options;
}

TEST(UniverseTest, DeterministicNames) {
  const Universe a(small_universe());
  const Universe b(small_universe());
  for (std::uint64_t rank : {1ull, 5ull, 99ull, 9999ull}) {
    EXPECT_EQ(a.domain_at(rank), b.domain_at(rank));
  }
}

TEST(UniverseTest, RankRoundTrip) {
  const Universe universe(small_universe());
  for (std::uint64_t rank = 1; rank <= 2000; ++rank) {
    const dns::Name name = universe.domain_at(rank);
    const auto recovered = universe.rank_of(name);
    ASSERT_TRUE(recovered.has_value()) << name.to_text();
    EXPECT_EQ(*recovered, rank);
    // Subdomains also resolve to the owning rank.
    EXPECT_EQ(universe.rank_of(name.with_prefix_label("www")), rank);
  }
}

TEST(UniverseTest, ForeignNamesRejected) {
  const Universe universe(small_universe());
  EXPECT_FALSE(universe.rank_of(dns::Name::parse("example.com")).has_value());
  EXPECT_FALSE(universe.rank_of(dns::Name::parse("com")).has_value());
  EXPECT_FALSE(
      universe.rank_of(dns::Name::parse("site-zzzzzzz-xx.com")).has_value());
}

TEST(UniverseTest, RankBoundsEnforced) {
  const Universe universe(small_universe(100));
  EXPECT_THROW((void)universe.domain_at(0), std::invalid_argument);
  EXPECT_THROW((void)universe.domain_at(101), std::invalid_argument);
}

TEST(UniverseTest, DeploymentRatesInCalibratedBands) {
  const Universe universe(small_universe(50'000));
  std::uint64_t signed_count = 0, chained = 0, deposited = 0, glue = 0;
  for (std::uint64_t rank = 1; rank <= universe.size(); ++rank) {
    const DomainInfo info = universe.info(rank);
    signed_count += info.dnssec_signed;
    chained += info.ds_in_parent;
    deposited += info.dlv_deposited;
    glue += info.glue;
    if (info.ds_in_parent) EXPECT_TRUE(info.dnssec_signed);
    if (info.dlv_deposited) {
      EXPECT_TRUE(info.dnssec_signed);
      EXPECT_FALSE(info.ds_in_parent);  // deposits are islands
    }
  }
  const double n = static_cast<double>(universe.size());
  EXPECT_NEAR(static_cast<double>(chained) / n, 0.02, 0.005);
  // Deposits sit between the bottom and (multiplier-inflated) top rates.
  EXPECT_GT(static_cast<double>(deposited) / n, 0.03);
  EXPECT_LT(static_cast<double>(deposited) / n, 0.25);
  EXPECT_NEAR(static_cast<double>(glue) / n, 0.40, 0.02);
}

TEST(UniverseTest, DepositRateDecreasesWithRank) {
  const Universe universe(small_universe(1'000'000));
  auto deposit_rate = [&](std::uint64_t from, std::uint64_t to) {
    std::uint64_t count = 0;
    for (std::uint64_t rank = from; rank < to; ++rank) {
      count += universe.info(rank).dlv_deposited;
    }
    return static_cast<double>(count) / static_cast<double>(to - from);
  };
  const double top = deposit_rate(1, 5'000);
  const double bottom = deposit_rate(900'000, 905'000);
  EXPECT_GT(top, bottom);
}

TEST(UniverseTest, ProviderHostsRoundTrip) {
  const Universe universe(small_universe());
  const dns::Name host = universe.provider_ns_host(123);
  const auto provider = universe.provider_of(host);
  ASSERT_TRUE(provider.has_value());
  EXPECT_EQ(*provider, 123u);
  EXPECT_FALSE(universe.provider_of(dns::Name::parse("ns1.other.net")));
}

TEST(Secured45Test, StructureMatchesPaper) {
  const auto specs = secured_45_specs();
  ASSERT_EQ(specs.size(), kSecuredDomainCount);
  std::size_t islands = 0;
  std::set<std::string> names;
  for (const auto& spec : specs) {
    EXPECT_TRUE(spec.dnssec_signed);
    if (!spec.ds_in_parent) ++islands;
    names.insert(spec.name);
  }
  EXPECT_EQ(islands, kSecuredIslandCount);
  EXPECT_EQ(names.size(), kSecuredDomainCount);  // all distinct
  EXPECT_EQ(secured_45_island_names().size(), kSecuredIslandCount);
}

TEST(DitlTest, RatesWithinEnvelopeAndTotalExact) {
  DitlOptions options;
  const auto rates = ditl_per_minute_rates(options);
  ASSERT_EQ(rates.size(), options.minutes);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    total += rates[i];
    if (i + 1 < rates.size()) {  // last minute absorbs rounding
      EXPECT_GE(rates[i], options.min_rate * 95 / 100);
      EXPECT_LE(rates[i], options.max_rate * 105 / 100);
    }
  }
  EXPECT_EQ(total, options.total_queries);
}

TEST(DitlTest, Deterministic) {
  DitlOptions options;
  EXPECT_EQ(ditl_per_minute_rates(options), ditl_per_minute_rates(options));
}

// --- Universe world end-to-end -------------------------------------------

class WorldFixture {
 public:
  explicit WorldFixture(std::uint64_t universe_size = 5'000,
                        resolver::ResolverConfig config =
                            resolver::ResolverConfig::bind_manual_correct())
      : network_(clock_) {
    WorldOptions options;
    options.universe.size = universe_size;
    world_ = std::make_unique<UniverseWorld>(options);
    world_->registry().attach_clock(clock_);
    resolver_ = std::make_unique<resolver::RecursiveResolver>(
        network_, world_->directory(), std::move(config));
    resolver_->set_root_trust_anchor(world_->root_trust_anchor());
    resolver_->set_dlv_trust_anchor(world_->registry().trust_anchor());
    stub_ = std::make_unique<StubClient>(network_, *resolver_);
  }

  sim::SimClock clock_;
  sim::Network network_;
  std::unique_ptr<UniverseWorld> world_;
  std::unique_ptr<resolver::RecursiveResolver> resolver_;
  std::unique_ptr<StubClient> stub_;
};

TEST(UniverseWorldTest, ResolvesEveryDeploymentFlavor) {
  WorldFixture fixture;
  const Universe& universe = fixture.world_->universe();

  std::uint64_t chained_rank = 0, deposited_rank = 0, unsigned_rank = 0;
  for (std::uint64_t rank = 1; rank <= universe.size(); ++rank) {
    const DomainInfo info = universe.info(rank);
    if (chained_rank == 0 && info.ds_in_parent) chained_rank = rank;
    if (deposited_rank == 0 && info.dlv_deposited) deposited_rank = rank;
    if (unsigned_rank == 0 && !info.dnssec_signed && info.glue) {
      unsigned_rank = rank;
    }
    if (chained_rank && deposited_rank && unsigned_rank) break;
  }
  ASSERT_NE(chained_rank, 0u);
  ASSERT_NE(deposited_rank, 0u);
  ASSERT_NE(unsigned_rank, 0u);

  // Chained: secure without DLV.
  auto chained = fixture.resolver_->resolve({universe.domain_at(chained_rank), dns::RRType::kA});
  EXPECT_EQ(chained.status, resolver::ValidationStatus::kSecure);
  EXPECT_FALSE(chained.dlv.used);

  // Deposited island: secure via DLV.
  auto deposited = fixture.resolver_->resolve({universe.domain_at(deposited_rank), dns::RRType::kA});
  EXPECT_EQ(deposited.status, resolver::ValidationStatus::kSecure);
  EXPECT_TRUE(deposited.dlv.secured);

  // Unsigned: insecure, leaks to DLV (Case-2).
  auto plain = fixture.resolver_->resolve({universe.domain_at(unsigned_rank), dns::RRType::kA});
  EXPECT_EQ(plain.status, resolver::ValidationStatus::kInsecure);
  EXPECT_TRUE(plain.dlv.used || plain.dlv.suppressed_by_nsec);
}

TEST(UniverseWorldTest, OutOfBailiwickNsForcesExtraALookups) {
  WorldFixture fixture;
  const Universe& universe = fixture.world_->universe();
  std::uint64_t no_glue_rank = 0;
  for (std::uint64_t rank = 1; rank <= universe.size(); ++rank) {
    const DomainInfo info = universe.info(rank);
    if (!info.glue && !info.dnssec_signed) {
      no_glue_rank = rank;
      break;
    }
  }
  ASSERT_NE(no_glue_rank, 0u);
  const auto before = fixture.network_.counters();
  (void)fixture.resolver_->resolve({universe.domain_at(no_glue_rank), dns::RRType::kA});
  const auto delta = fixture.network_.counters().delta_since(before);
  // Resolving the provider NS host costs extra A queries beyond the chain.
  EXPECT_GE(delta.value("query.A"), 3u);
}

TEST(UniverseWorldTest, StubVisitIssuesAAndAaaa) {
  WorldFixture fixture;
  const auto before = fixture.network_.counters();
  const VisitOutcome outcome =
      fixture.stub_->visit(fixture.world_->universe().domain_at(42));
  EXPECT_TRUE(outcome.got_address);
  const auto delta = fixture.network_.counters().delta_since(before);
  EXPECT_GE(delta.value("query.A"), 2u);  // stub + iterative legs
  EXPECT_GE(delta.value("query.AAAA"), 1u);
}

TEST(UniverseWorldTest, LeakRateIsHighForSmallSamples) {
  // The paper's headline: ~84% of the top-100 domains leak to the DLV
  // server. Calibration lives in the bench; here we assert the mechanism:
  // a large majority of fresh domains produce DLV queries.
  WorldFixture fixture(20'000);
  std::set<std::string> leaked;
  fixture.world_->registry().set_store_observations(false);
  fixture.world_->registry().set_observer([&](const dlv::Observation& obs) {
    if (!obs.had_record && !obs.domain.is_root()) {
      leaked.insert(obs.domain.internal_text());
    }
  });
  for (std::uint64_t rank = 1; rank <= 100; ++rank) {
    (void)fixture.stub_->visit(fixture.world_->universe().domain_at(rank));
  }
  EXPECT_GT(leaked.size(), 60u);
  EXPECT_LE(leaked.size(), 100u);
}

TEST(UniverseWorldTest, TxtSignalingWorldSuppressesLeaks) {
  WorldOptions options;
  options.universe.size = 5'000;
  options.txt_signaling = true;
  sim::SimClock clock;
  sim::Network network(clock);
  UniverseWorld world(options);
  resolver::ResolverConfig config =
      resolver::ResolverConfig::bind_manual_correct();
  config.honor_txt_dlv_signal = true;
  resolver::RecursiveResolver resolver(network, world.directory(), config);
  resolver.set_root_trust_anchor(world.root_trust_anchor());
  resolver.set_dlv_trust_anchor(world.registry().trust_anchor());

  std::uint64_t unsigned_rank = 0;
  for (std::uint64_t rank = 1; rank <= 5'000; ++rank) {
    if (!world.universe().info(rank).dnssec_signed) {
      unsigned_rank = rank;
      break;
    }
  }
  const auto result = resolver.resolve({world.universe().domain_at(unsigned_rank), dns::RRType::kA});
  EXPECT_FALSE(result.dlv.used);
  EXPECT_TRUE(result.dlv.suppressed_by_signal);
  EXPECT_EQ(world.registry().total_queries(), 0u);
}

TEST(UniverseWorldTest, ZBitSignalingWorldSuppressesLeaks) {
  WorldOptions options;
  options.universe.size = 5'000;
  options.z_bit_signaling = true;
  sim::SimClock clock;
  sim::Network network(clock);
  UniverseWorld world(options);
  resolver::ResolverConfig config =
      resolver::ResolverConfig::bind_manual_correct();
  config.honor_z_bit_signal = true;
  resolver::RecursiveResolver resolver(network, world.directory(), config);
  resolver.set_root_trust_anchor(world.root_trust_anchor());
  resolver.set_dlv_trust_anchor(world.registry().trust_anchor());

  std::uint64_t unsigned_rank = 0, deposited_rank = 0;
  for (std::uint64_t rank = 1; rank <= 5'000; ++rank) {
    const DomainInfo info = world.universe().info(rank);
    if (unsigned_rank == 0 && !info.dnssec_signed) unsigned_rank = rank;
    if (deposited_rank == 0 && info.dlv_deposited) deposited_rank = rank;
    if (unsigned_rank && deposited_rank) break;
  }
  const auto blocked = resolver.resolve({world.universe().domain_at(unsigned_rank), dns::RRType::kA});
  EXPECT_FALSE(blocked.dlv.used);
  EXPECT_TRUE(blocked.dlv.suppressed_by_signal);

  const auto allowed = resolver.resolve({world.universe().domain_at(deposited_rank), dns::RRType::kA});
  EXPECT_TRUE(allowed.dlv.secured);
}

TEST(UniverseWorldTest, PtrLookupsAnswered) {
  WorldFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("34.113.0.203.in-addr.arpa"), dns::RRType::kPtr});
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  EXPECT_NE(result.response.first_answer(dns::RRType::kPtr), nullptr);
}

}  // namespace
}  // namespace lookaside::workload
