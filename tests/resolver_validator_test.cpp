// Unit tests for DNSSEC validation primitives: RRSIG verification outcomes,
// DS/DNSKEY matching and section grouping.
#include <gtest/gtest.h>

#include "crypto/dnssec_algo.h"
#include "resolver/validator.h"
#include "zone/keys.h"

namespace lookaside::resolver {
namespace {

class ValidatorTest : public ::testing::Test {
 protected:
  ValidatorTest() : validator_(clock_) {
    crypto::SplitMix64 rng(9);
    keys_ = zone::ZoneKeys::generate(256, rng);
    dnskeys_ = dns::RRset(owner_, dns::RRType::kDnskey);
    dnskeys_.add(
        dns::ResourceRecord::make(owner_, 3600, dns::Rdata{keys_->zsk_record()}));
    dnskeys_.add(
        dns::ResourceRecord::make(owner_, 3600, dns::Rdata{keys_->ksk_record()}));

    rrset_ = dns::RRset(owner_, dns::RRType::kA);
    rrset_.add(dns::ResourceRecord::make(owner_, 300, dns::ARdata{42}));
  }

  dns::ResourceRecord make_signature(std::uint32_t inception = 0,
                                     std::uint32_t expiration = 0x7FFFFFFF,
                                     std::uint8_t algorithm = 8) {
    dns::RrsigRdata sig;
    sig.type_covered = dns::RRType::kA;
    sig.algorithm = algorithm;
    sig.labels = 2;
    sig.original_ttl = 300;
    sig.inception = inception;
    sig.expiration = expiration;
    sig.key_tag = keys_->zsk_tag();
    sig.signer = owner_;
    sig.signature =
        crypto::sign_message(keys_->zsk_private(),
                             dns::rrsig_signed_data(sig, rrset_));
    return dns::ResourceRecord::make(owner_, 300, dns::Rdata{sig});
  }

  sim::SimClock clock_;
  Validator validator_;
  dns::Name owner_ = dns::Name::parse("example.com");
  std::optional<zone::ZoneKeys> keys_;
  dns::RRset dnskeys_;
  dns::RRset rrset_;
};

TEST_F(ValidatorTest, ValidSignatureAccepted) {
  EXPECT_EQ(validator_.verify_rrset(rrset_, {make_signature()}, dnskeys_),
            SigCheck::kValid);
}

TEST_F(ValidatorTest, MissingSignatureReported) {
  EXPECT_EQ(validator_.verify_rrset(rrset_, {}, dnskeys_),
            SigCheck::kNoSignature);
}

TEST_F(ValidatorTest, TamperedSignatureInvalid) {
  dns::ResourceRecord record = make_signature();
  std::get<dns::RrsigRdata>(record.rdata).signature[5] ^= 0x01;
  EXPECT_EQ(validator_.verify_rrset(rrset_, {record}, dnskeys_),
            SigCheck::kInvalid);
}

TEST_F(ValidatorTest, TamperedDataInvalid) {
  dns::RRset tampered(owner_, dns::RRType::kA);
  tampered.add(dns::ResourceRecord::make(owner_, 300, dns::ARdata{43}));
  EXPECT_EQ(validator_.verify_rrset(tampered, {make_signature()}, dnskeys_),
            SigCheck::kInvalid);
}

TEST_F(ValidatorTest, ExpiredSignatureRejected) {
  clock_.advance_seconds(1000);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {make_signature(0, 500)}, dnskeys_),
            SigCheck::kExpired);
  // Not-yet-valid signatures are "expired" too (outside the window).
  EXPECT_EQ(validator_.verify_rrset(rrset_, {make_signature(5000)}, dnskeys_),
            SigCheck::kExpired);
}

TEST_F(ValidatorTest, UnsupportedAlgorithmReported) {
  dns::ResourceRecord record = make_signature(0, 0x7FFFFFFF, /*algorithm=*/13);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {record}, dnskeys_),
            SigCheck::kUnsupported);
}

TEST_F(ValidatorTest, MissingKeyReported) {
  dns::ResourceRecord record = make_signature();
  std::get<dns::RrsigRdata>(record.rdata).key_tag ^= 0xFFFF;
  EXPECT_EQ(validator_.verify_rrset(rrset_, {record}, dnskeys_),
            SigCheck::kNoMatchingKey);
}

TEST_F(ValidatorTest, SignatureForOtherOwnerIgnored) {
  dns::ResourceRecord record = make_signature();
  record.name = dns::Name::parse("other.com");
  EXPECT_EQ(validator_.verify_rrset(rrset_, {record}, dnskeys_),
            SigCheck::kNoSignature);
}

TEST_F(ValidatorTest, OneValidAmongManyWins) {
  dns::ResourceRecord bad = make_signature();
  std::get<dns::RrsigRdata>(bad.rdata).signature[0] ^= 0xFF;
  EXPECT_EQ(validator_.verify_rrset(rrset_, {bad, make_signature()}, dnskeys_),
            SigCheck::kValid);
}

TEST_F(ValidatorTest, KeyMatchesDs) {
  const dns::DsRdata ds = zone::make_ds(owner_, keys_->ksk_record());
  EXPECT_TRUE(Validator::key_matches_ds(owner_, keys_->ksk_record(), ds));
  EXPECT_FALSE(Validator::key_matches_ds(owner_, keys_->zsk_record(), ds));
  EXPECT_FALSE(Validator::key_matches_ds(dns::Name::parse("evil.com"),
                                         keys_->ksk_record(), ds));
  dns::DsRdata sha1_ds = ds;
  sha1_ds.digest_type = 1;
  EXPECT_FALSE(Validator::key_matches_ds(owner_, keys_->ksk_record(), sha1_ds));
}

TEST_F(ValidatorTest, FindDsEndorsedKey) {
  const dns::DsRdata ds = zone::make_ds(owner_, keys_->ksk_record());
  const dns::DnskeyRdata* key =
      Validator::find_ds_endorsed_key(owner_, dnskeys_, ds);
  ASSERT_NE(key, nullptr);
  EXPECT_TRUE(key->is_ksk());
  dns::DsRdata bogus = ds;
  bogus.digest[0] ^= 0x01;
  EXPECT_EQ(Validator::find_ds_endorsed_key(owner_, dnskeys_, bogus), nullptr);
}

TEST_F(ValidatorTest, ParseKeyCachesAndRejectsGarbage) {
  const crypto::RsaPublicKey* first = validator_.parse_key(keys_->zsk_record());
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(validator_.parse_key(keys_->zsk_record()), first);  // same object
  dns::DnskeyRdata garbage{0x0100, 3, 8, {0x00}};
  EXPECT_EQ(validator_.parse_key(garbage), nullptr);
}

TEST(GroupSectionTest, GroupsByNameAndType) {
  const dns::Name a = dns::Name::parse("a.com");
  const dns::Name b = dns::Name::parse("b.com");
  std::vector<dns::ResourceRecord> section;
  section.push_back(dns::ResourceRecord::make(a, 60, dns::ARdata{1}));
  section.push_back(dns::ResourceRecord::make(b, 60, dns::ARdata{2}));
  section.push_back(dns::ResourceRecord::make(a, 60, dns::ARdata{3}));
  dns::RrsigRdata sig;
  sig.type_covered = dns::RRType::kA;
  sig.signer = a;
  section.push_back(dns::ResourceRecord::make(a, 60, dns::Rdata{sig}));

  const GroupedSection grouped = group_section(section);
  ASSERT_EQ(grouped.rrsets.size(), 2u);
  EXPECT_EQ(grouped.rrsets[0].size(), 2u);  // both a.com A records
  EXPECT_EQ(grouped.rrsigs.size(), 1u);
  EXPECT_NE(find_rrset(grouped, a, dns::RRType::kA), nullptr);
  EXPECT_NE(find_rrset(grouped, b, dns::RRType::kA), nullptr);
  EXPECT_EQ(find_rrset(grouped, a, dns::RRType::kMx), nullptr);
}

}  // namespace
}  // namespace lookaside::resolver
