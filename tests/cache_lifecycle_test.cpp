// Cache lifecycle subsystem tests (DESIGN.md §4f): byte accounting across
// all five stores, the incremental amortized expiry sweep, second-chance
// eviction under a byte cap, and the end-to-end contract that a capped
// resolver holds cache.bytes under the cap while leaking more (the
// cache-pressure leakage study's mechanism).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.h"
#include "resolver/cache.h"
#include "resolver/config.h"
#include "sim/clock.h"

namespace lookaside::resolver {
namespace {

// Legacy-shaped probe over the unified DenialProofSource API so the
// lifecycle assertions below keep their original vocabulary.
NegativeEntry find_negative(ResolverCache& cache, const dns::Name& name,
                            dns::RRType type) {
  const ProofResult proof =
      cache.find_denial(name, name, type, DenialSources::kNegative);
  if (!proof) return NegativeEntry::kNone;
  return proof.coverage == DenialKind::kNxDomain ? NegativeEntry::kNxDomain
                                                 : NegativeEntry::kNoData;
}

class CacheLifecycleTest : public ::testing::Test {
 protected:
  CacheLifecycleTest() : cache_(clock_) {}

  dns::RRset a_rrset(const std::string& name, std::uint32_t ttl,
                     std::uint32_t address = 1) {
    dns::RRset out(dns::Name::parse(name), dns::RRType::kA);
    out.add(dns::ResourceRecord::make(dns::Name::parse(name), ttl,
                                      dns::ARdata{address}));
    return out;
  }

  void store_nsec(const std::string& zone, const std::string& owner,
                  const std::string& next, std::uint32_t ttl) {
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse(next);
    nsec.types = {dns::RRType::kNs};
    cache_.store_nsec(dns::Name::parse(zone),
                      dns::ResourceRecord::make(dns::Name::parse(owner), ttl,
                                                dns::Rdata{nsec}));
  }

  /// Populates every store: `n` positives, negatives, NSEC entries, plus a
  /// SERVFAIL entry and a zone cut, all with TTL `ttl`.
  void populate(int n, std::uint32_t ttl) {
    for (int i = 0; i < n; ++i) {
      const std::string tag = std::to_string(i);
      cache_.store(a_rrset("p" + tag + ".example.com", ttl), false);
      cache_.store_negative(dns::Name::parse("n" + tag + ".example.com"),
                            dns::RRType::kA, ttl, /*nxdomain=*/true);
      store_nsec("dlv.isc.org", "d" + tag + ".com.dlv.isc.org",
                 "e" + tag + ".com.dlv.isc.org", ttl);
    }
    cache_.store_servfail(dns::Name::parse("sf.example.com"), dns::RRType::kA,
                          ttl);
    cache_.store_zone_cut(dns::Name::parse("example.com"), ttl);
  }

  /// Runs sweep ticks until a full rotation reclaims nothing.
  std::uint64_t sweep_to_fixpoint(std::size_t step = 64) {
    std::uint64_t total = 0;
    int idle_rounds = 0;
    while (idle_rounds < 16) {
      const std::size_t got = cache_.sweep_expired(step);
      total += got;
      idle_rounds = got == 0 ? idle_rounds + 1 : 0;
    }
    return total;
  }

  sim::SimClock clock_;
  ResolverCache cache_;
};

TEST_F(CacheLifecycleTest, BytesAccountAcrossAllStores) {
  EXPECT_EQ(cache_.bytes(), 0u);
  std::uint64_t last = 0;
  cache_.store(a_rrset("a.example.com", 300), true);
  EXPECT_GT(cache_.bytes(), last);
  last = cache_.bytes();
  cache_.store_negative(dns::Name::parse("b.example.com"), dns::RRType::kA,
                        300, true);
  EXPECT_GT(cache_.bytes(), last);
  last = cache_.bytes();
  cache_.store_servfail(dns::Name::parse("c.example.com"), dns::RRType::kA,
                        300);
  EXPECT_GT(cache_.bytes(), last);
  last = cache_.bytes();
  store_nsec("dlv.isc.org", "d.com.dlv.isc.org", "e.com.dlv.isc.org", 300);
  EXPECT_GT(cache_.bytes(), last);
  last = cache_.bytes();
  cache_.store_zone_cut(dns::Name::parse("example.com"), 300);
  EXPECT_GT(cache_.bytes(), last);
  EXPECT_EQ(cache_.peak_bytes(), cache_.bytes());
  cache_.clear();
  EXPECT_EQ(cache_.bytes(), 0u);
  EXPECT_EQ(cache_.peak_bytes(), 0u);
}

TEST_F(CacheLifecycleTest, OverwritesDoNotDoubleCharge) {
  cache_.store(a_rrset("a.example.com", 300), false);
  const std::uint64_t once = cache_.bytes();
  cache_.store(a_rrset("a.example.com", 300), false);
  EXPECT_EQ(cache_.bytes(), once);
  store_nsec("dlv.isc.org", "d.com.dlv.isc.org", "e.com.dlv.isc.org", 300);
  const std::uint64_t with_nsec = cache_.bytes();
  store_nsec("dlv.isc.org", "d.com.dlv.isc.org", "e.com.dlv.isc.org", 300);
  EXPECT_EQ(cache_.bytes(), with_nsec);
  cache_.store_negative(dns::Name::parse("n.example.com"), dns::RRType::kA,
                        300, true);
  const std::uint64_t with_negative = cache_.bytes();
  cache_.store_negative(dns::Name::parse("n.example.com"), dns::RRType::kA,
                        300, false);
  EXPECT_EQ(cache_.bytes(), with_negative);
}

TEST_F(CacheLifecycleTest, SweepReclaimsExpiredEverywhere) {
  populate(20, /*ttl=*/30);
  const std::uint64_t populated = cache_.bytes();
  ASSERT_GT(populated, 0u);
  ASSERT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 20u);

  clock_.advance_seconds(31);
  const std::uint64_t swept = sweep_to_fixpoint();
  // 20 positives + 20 negatives + 20 NSEC + 1 SERVFAIL + 1 zone cut.
  EXPECT_EQ(swept, 62u);
  EXPECT_EQ(cache_.counters().value("cache.expired_swept"), 62u);
  EXPECT_EQ(cache_.bytes(), 0u);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 0u);
}

TEST_F(CacheLifecycleTest, SweepLeavesLiveEntriesAlone) {
  populate(10, /*ttl=*/30);
  populate(10, /*ttl=*/3600);  // overwrites the same names with long TTLs
  clock_.advance_seconds(31);
  sweep_to_fixpoint();
  // The long-TTL generation survived: probes still hit.
  EXPECT_NE(cache_.find(dns::Name::parse("p3.example.com"), dns::RRType::kA),
            nullptr);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("n3.example.com"),
                                 dns::RRType::kA),
            NegativeEntry::kNxDomain);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 10u);
  EXPECT_GT(cache_.bytes(), 0u);
}

TEST_F(CacheLifecycleTest, SweepIsIncremental) {
  populate(50, /*ttl=*/30);
  clock_.advance_seconds(31);
  // A tiny budget cannot reclaim everything in one tick; repeated ticks
  // converge without any tick exceeding its slot budget.
  const std::size_t first = cache_.sweep_expired(4);
  EXPECT_LT(first, 50u);
  sweep_to_fixpoint(4);
  EXPECT_EQ(cache_.bytes(), 0u);
}

TEST_F(CacheLifecycleTest, TtlChurnSweepsAndShrinksNsec) {
  // The ISSUE's churn contract: rounds of stores + TTL expiry with
  // maintenance enabled reclaim expired generations (swept counter grows,
  // nsec_count shrinks after sweep) instead of accumulating forever.
  cache_.set_limits(CacheLimits{/*max_bytes=*/0, /*sweep_step=*/64});
  std::uint64_t peak_entries = 0;
  for (int round = 0; round < 4; ++round) {
    populate(30, /*ttl=*/300);
    peak_entries =
        std::max(peak_entries,
                 static_cast<std::uint64_t>(
                     cache_.nsec_count(dns::Name::parse("dlv.isc.org"))));
    clock_.advance_seconds(301);  // the whole generation expires
    const std::uint64_t before =
        cache_.nsec_count(dns::Name::parse("dlv.isc.org"));
    for (int tick = 0; tick < 200; ++tick) cache_.maintain();
    EXPECT_LT(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), before);
  }
  EXPECT_GT(cache_.counters().value("cache.expired_swept"), 0u);
  // After the final sweep rounds nothing lingers from older generations.
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 0u);
}

TEST_F(CacheLifecycleTest, MaintainEnforcesByteCap) {
  cache_.set_limits(CacheLimits{/*max_bytes=*/4096, /*sweep_step=*/32});
  populate(60, /*ttl=*/3600);  // nothing expired: pressure must evict
  ASSERT_GT(cache_.bytes(), 4096u);
  cache_.maintain();
  EXPECT_LE(cache_.bytes(), 4096u);
  EXPECT_GT(cache_.counters().value("cache.evicted"), 0u);
  // The per-store breakdown sums to the total.
  std::uint64_t breakdown = 0;
  for (const char* store :
       {"positive", "negative", "servfail", "nsec", "zone_cut"}) {
    breakdown +=
        cache_.counters().value(std::string("cache.evicted.") + store);
  }
  EXPECT_EQ(breakdown, cache_.counters().value("cache.evicted"));
}

TEST_F(CacheLifecycleTest, EvictionTerminatesWhenEverythingIsReferenced) {
  cache_.set_limits(CacheLimits{/*max_bytes=*/2048, /*sweep_step=*/16});
  populate(40, /*ttl=*/3600);
  // Touch everything so every second-chance bit is set; maintain must
  // still reach the cap (first pass spares, second pass evicts).
  for (int i = 0; i < 40; ++i) {
    const std::string tag = std::to_string(i);
    (void)cache_.find(dns::Name::parse("p" + tag + ".example.com"),
                      dns::RRType::kA);
    (void)find_negative(cache_, dns::Name::parse("n" + tag + ".example.com"),
                               dns::RRType::kA);
  }
  cache_.maintain();
  EXPECT_LE(cache_.bytes(), 2048u);
}

TEST_F(CacheLifecycleTest, CapSmallerThanAnyEntryDoesNotSpin) {
  cache_.set_limits(CacheLimits{/*max_bytes=*/1, /*sweep_step=*/8});
  populate(5, /*ttl=*/3600);
  cache_.maintain();  // guard must bound the loop even at an absurd cap
  EXPECT_EQ(cache_.bytes(), 0u);
}

TEST_F(CacheLifecycleTest, UnboundedCacheNeverEvicts) {
  cache_.set_limits(CacheLimits{/*max_bytes=*/0, /*sweep_step=*/32});
  populate(100, /*ttl=*/3600);
  for (int i = 0; i < 50; ++i) cache_.maintain();
  EXPECT_EQ(cache_.counters().value("cache.evicted"), 0u);
  EXPECT_NE(cache_.find(dns::Name::parse("p42.example.com"), dns::RRType::kA),
            nullptr);
}

// -- End-to-end: capped resolver under the universe workload -----------------

TEST(CacheLifecycleEndToEnd, CappedResolverHoldsBytesUnderCapAndLeaksMore) {
  core::UniverseExperiment::Options base;
  base.universe_size = 4'000;
  base.resolver_config = ResolverConfig::bind_yum();
  base.resolver_config.ns_fetch_probability = 0.0;

  // Unbounded control run.
  core::UniverseExperiment unbounded(base);
  const core::LeakageReport free_report = unbounded.run_topn(600);
  const std::uint64_t free_bytes = unbounded.resolver().cache().bytes();
  EXPECT_EQ(unbounded.resolver().cache().counters().value("cache.evicted"),
            0u);

  // Capped run at a fraction of the unbounded footprint.
  core::UniverseExperiment::Options capped_options = base;
  capped_options.resolver_config.max_cache_bytes = free_bytes / 8;
  core::UniverseExperiment capped(capped_options);
  const core::LeakageReport capped_report = capped.run_topn(600);
  const ResolverCache& cache = capped.resolver().cache();
  EXPECT_LE(cache.bytes(), capped_options.resolver_config.max_cache_bytes);
  EXPECT_GT(cache.counters().value("cache.evicted"), 0u);
  // Evicting aggressive-NSEC proofs re-opens the leakage channel: the
  // capped resolver can only do worse (more Case-2 queries), never better.
  EXPECT_GE(capped_report.case2_queries, free_report.case2_queries);
}

}  // namespace
}  // namespace lookaside::resolver
