// Unit tests for the resolver caches: positive TTLs, RFC 2308 negatives,
// the aggressive NSEC store (wraps, exact matches, type bitmaps, expiry),
// and zone-cut tracking.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "crypto/rng.h"
#include "resolver/cache.h"
#include "sim/clock.h"

namespace lookaside::resolver {
namespace {

// Legacy-shaped adapters over the unified find_denial API (DESIGN.md §4j):
// these suites assert denial *semantics*, not entry points — the deprecated
// shims get their own equivalence coverage in synthesis_test.cpp.
NegativeEntry find_negative(ResolverCache& cache, const dns::Name& name,
                            dns::RRType type) {
  const ProofResult proof =
      cache.find_denial(name, name, type, DenialSources::kNegative);
  if (!proof) return NegativeEntry::kNone;
  return proof.coverage == DenialKind::kNxDomain ? NegativeEntry::kNxDomain
                                                 : NegativeEntry::kNoData;
}

NsecCoverage nsec_check(ResolverCache& cache, const dns::Name& apex,
                        const dns::Name& qname, dns::RRType qtype) {
  const ProofResult proof =
      cache.find_denial(apex, qname, qtype, DenialSources::kSpans);
  if (!proof) return NsecCoverage::kNoProof;
  return proof.coverage == DenialKind::kNxDomain ? NsecCoverage::kNameCovered
                                                 : NsecCoverage::kTypeAbsent;
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : cache_(clock_) {}

  dns::RRset a_rrset(const std::string& name, std::uint32_t ttl,
                     std::uint32_t address = 1) {
    dns::RRset out(dns::Name::parse(name), dns::RRType::kA);
    out.add(dns::ResourceRecord::make(dns::Name::parse(name), ttl,
                                      dns::ARdata{address}));
    return out;
  }

  void store_nsec(const std::string& zone, const std::string& owner,
                  const std::string& next, std::uint32_t ttl,
                  std::vector<dns::RRType> types = {dns::RRType::kNs}) {
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse(next);
    nsec.types = std::move(types);
    cache_.store_nsec(dns::Name::parse(zone),
                      dns::ResourceRecord::make(dns::Name::parse(owner), ttl,
                                                dns::Rdata{nsec}));
  }

  sim::SimClock clock_;
  ResolverCache cache_;
};

TEST_F(CacheTest, PositiveHitAndTtlExpiry) {
  cache_.store(a_rrset("a.com", 10), /*validated=*/false);
  EXPECT_NE(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
  clock_.advance_seconds(9.0);
  EXPECT_NE(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
  clock_.advance_seconds(1.5);
  EXPECT_EQ(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
}

TEST_F(CacheTest, ValidatedFlagTracked) {
  cache_.store(a_rrset("v.com", 100), /*validated=*/true);
  cache_.store(a_rrset("u.com", 100), /*validated=*/false);
  EXPECT_NE(cache_.find_validated(dns::Name::parse("v.com"), dns::RRType::kA),
            nullptr);
  EXPECT_EQ(cache_.find_validated(dns::Name::parse("u.com"), dns::RRType::kA),
            nullptr);
  cache_.mark_validated(dns::Name::parse("u.com"), dns::RRType::kA);
  EXPECT_NE(cache_.find_validated(dns::Name::parse("u.com"), dns::RRType::kA),
            nullptr);
}

TEST_F(CacheTest, EntryKeepsRrsigs) {
  dns::RrsigRdata sig;
  sig.type_covered = dns::RRType::kA;
  sig.signer = dns::Name::parse("com");
  const auto rrsig_record = dns::ResourceRecord::make(
      dns::Name::parse("a.com"), 100, dns::Rdata{sig});
  cache_.store(a_rrset("a.com", 100), false, {rrsig_record});
  const auto entry = cache_.find_entry(dns::Name::parse("a.com"), dns::RRType::kA);
  ASSERT_TRUE(entry.has_value());
  ASSERT_EQ(entry->rrsigs->size(), 1u);
  EXPECT_EQ((*entry->rrsigs)[0].type, dns::RRType::kRrsig);
}

TEST_F(CacheTest, NegativeNoDataIsTypeScoped) {
  cache_.store_negative(dns::Name::parse("a.com"), dns::RRType::kMx, 60,
                        /*nxdomain=*/false);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("a.com"), dns::RRType::kMx),
            NegativeEntry::kNoData);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("a.com"), dns::RRType::kA),
            NegativeEntry::kNone);
}

TEST_F(CacheTest, NegativeNxdomainCoversAllTypes) {
  cache_.store_negative(dns::Name::parse("gone.com"), dns::RRType::kA, 60,
                        /*nxdomain=*/true);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("gone.com"), dns::RRType::kA),
            NegativeEntry::kNxDomain);
  EXPECT_EQ(
      find_negative(cache_, dns::Name::parse("gone.com"), dns::RRType::kDlv),
      NegativeEntry::kNxDomain);
}

TEST_F(CacheTest, NegativeExpires) {
  cache_.store_negative(dns::Name::parse("gone.com"), dns::RRType::kA, 30,
                        true);
  clock_.advance_seconds(31);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("gone.com"), dns::RRType::kA),
            NegativeEntry::kNone);
}

TEST_F(CacheTest, NsecCoversInteriorName) {
  store_nsec("dlv.isc.org", "alpha.com.dlv.isc.org", "omega.com.dlv.isc.org",
             300);
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("middle.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNameCovered);
  // Outside the range: no proof.
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("zz.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("aa.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
}

TEST_F(CacheTest, NsecWrapCoversTailOfZone) {
  // Last NSEC in a chain points back to the apex.
  store_nsec("dlv.isc.org", "zeta.com.dlv.isc.org", "dlv.isc.org", 300);
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("zz.net.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNameCovered);
}

TEST_F(CacheTest, NsecExactMatchChecksTypeBitmap) {
  store_nsec("dlv.isc.org", "exist.com.dlv.isc.org", "next.com.dlv.isc.org",
             300, {dns::RRType::kDlv});
  // DLV present at the name: no denial.
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("exist.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
  // TXT absent at the name: proven.
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("exist.com.dlv.isc.org"),
                              dns::RRType::kTxt),
            NsecCoverage::kTypeAbsent);
}

TEST_F(CacheTest, NsecRespectsZoneScope) {
  store_nsec("dlv.isc.org", "a.com.dlv.isc.org", "z.com.dlv.isc.org", 300);
  // Same shape of name in a different zone: no proof.
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("other.org"),
                              dns::Name::parse("m.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
  // Name outside the zone: no proof.
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("m.com"), dns::RRType::kDlv),
            NsecCoverage::kNoProof);
}

TEST_F(CacheTest, NsecExpires) {
  store_nsec("dlv.isc.org", "a.com.dlv.isc.org", "z.com.dlv.isc.org", 40);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 1u);
  clock_.advance_seconds(41);
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("m.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
}

TEST_F(CacheTest, NsecStaleCloserEntryDoesNotShadowLiveCoveringProof) {
  // Regression: a covering proof with a long TTL and a *closer* (greater,
  // still <= qname) entry with a short TTL. Once the closer entry expires,
  // the predecessor walk must step past it to the live covering proof —
  // the old code erased the expired entry and immediately gave up,
  // manufacturing a spurious Case-2 DLV query.
  store_nsec("dlv.isc.org", "b.com.dlv.isc.org", "z.com.dlv.isc.org", 3600);
  store_nsec("dlv.isc.org", "f.com.dlv.isc.org", "z.com.dlv.isc.org", 50);
  ASSERT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 2u);
  clock_.advance_seconds(51);  // f expires; b (3600s) is still live
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("m.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNameCovered);
  // The walk also reclaimed the expired closer entry.
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 1u);
}

TEST_F(CacheTest, NsecWalkReclaimsRunOfExpiredEntries) {
  // Several consecutive expired closer entries must all be skipped (and
  // reclaimed), not just the first.
  store_nsec("dlv.isc.org", "b.com.dlv.isc.org", "z.com.dlv.isc.org", 3600);
  store_nsec("dlv.isc.org", "d.com.dlv.isc.org", "z.com.dlv.isc.org", 40);
  store_nsec("dlv.isc.org", "f.com.dlv.isc.org", "z.com.dlv.isc.org", 50);
  clock_.advance_seconds(51);
  EXPECT_EQ(nsec_check(cache_, dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("m.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNameCovered);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 1u);
}

TEST_F(CacheTest, NegativeProbePurgesExpiredSlots) {
  // The negative path mirrors the positive cache's erase-on-probe: expired
  // slots encountered during the exact-type and any-type NXDOMAIN scans are
  // reclaimed (observable through the byte accounting).
  cache_.store_negative(dns::Name::parse("a.com"), dns::RRType::kMx, 10,
                        /*nxdomain=*/false);
  cache_.store_negative(dns::Name::parse("a.com"), dns::RRType::kTxt, 10,
                        /*nxdomain=*/false);
  cache_.store_negative(dns::Name::parse("a.com"), dns::RRType::kA, 100,
                        /*nxdomain=*/true);
  const std::uint64_t before = cache_.bytes();
  clock_.advance_seconds(11);
  // Exact probe for an expired type: the NXDOMAIN entry still answers, and
  // both expired slots are purged in the same pass.
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("a.com"), dns::RRType::kMx),
            NegativeEntry::kNxDomain);
  EXPECT_LT(cache_.bytes(), before);
  const std::uint64_t after_purge = cache_.bytes();
  // Probing again reclaims nothing further.
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("a.com"), dns::RRType::kTxt),
            NegativeEntry::kNxDomain);
  EXPECT_EQ(cache_.bytes(), after_purge);
}

TEST_F(CacheTest, NegativeProbeErasesFullyExpiredName) {
  cache_.store_negative(dns::Name::parse("gone.com"), dns::RRType::kA, 10,
                        /*nxdomain=*/true);
  clock_.advance_seconds(11);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("gone.com"), dns::RRType::kA),
            NegativeEntry::kNone);
  EXPECT_EQ(cache_.bytes(), 0u);
}

TEST_F(CacheTest, ZoneCutsDeepestWins) {
  cache_.store_zone_cut(dns::Name::parse("com"), 3600);
  cache_.store_zone_cut(dns::Name::parse("example.com"), 3600);
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("www.example.com")),
            dns::Name::parse("example.com"));
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("other.com")),
            dns::Name::parse("com"));
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("other.net")),
            dns::Name::root());
}

TEST_F(CacheTest, ZoneCutExpiry) {
  cache_.store_zone_cut(dns::Name::parse("com"), 10);
  clock_.advance_seconds(11);
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("a.com")),
            dns::Name::root());
}

TEST_F(CacheTest, ClearDropsEverything) {
  cache_.store(a_rrset("a.com", 100), true);
  cache_.store_negative(dns::Name::parse("b.com"), dns::RRType::kA, 100, true);
  store_nsec("z", "a.z", "b.z", 100);
  cache_.store_zone_cut(dns::Name::parse("com"), 100);
  cache_.clear();
  EXPECT_EQ(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
  EXPECT_EQ(find_negative(cache_, dns::Name::parse("b.com"), dns::RRType::kA),
            NegativeEntry::kNone);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("z")), 0u);
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("a.com")),
            dns::Name::root());
}

TEST_F(CacheTest, HitMissCountersTrack) {
  cache_.store(a_rrset("a.com", 100), false);
  (void)cache_.find(dns::Name::parse("a.com"), dns::RRType::kA);
  (void)cache_.find(dns::Name::parse("b.com"), dns::RRType::kA);
  EXPECT_EQ(cache_.counters().value("cache.hit"), 1u);
  EXPECT_EQ(cache_.counters().value("cache.miss"), 1u);
}

TEST_F(CacheTest, EntryPointersSurviveRehash) {
  // The hash-map migration must keep the std::map-era guarantee that
  // handed-out Entry pointers stay valid across later stores (positive
  // entries are boxed, so rehashes move only the box).
  cache_.store(a_rrset("stable.com", 10'000, 0xABCD), true);
  const auto entry =
      cache_.find_entry(dns::Name::parse("stable.com"), dns::RRType::kA);
  ASSERT_TRUE(entry.has_value());
  const dns::RRset* pinned = entry->rrset;
  // Force several rehashes of the positive table.
  for (int i = 0; i < 1'000; ++i) {
    cache_.store(a_rrset("filler" + std::to_string(i) + ".com", 10'000), false);
  }
  EXPECT_EQ(std::get<dns::ARdata>(pinned->records()[0].rdata).address, 0xABCDu);
  EXPECT_EQ(cache_.find(dns::Name::parse("stable.com"), dns::RRType::kA),
            pinned);
}

/// Reference model with the pre-hash-map std::map semantics, driven in
/// lockstep with the real cache on a randomized operation trace. Guards
/// the open-addressing migration: outcomes AND counters must match the
/// old ordered-map behavior exactly (including the RFC 2308 rule that an
/// unexpired NXDOMAIN for a name answers every type). Both the positive
/// and negative caches erase expired entries on probe; the model tolerates
/// that because expired entries never produce hits on either side.
class CacheModelTest : public CacheTest {
 protected:
  using Key = std::pair<std::string, dns::RRType>;
  struct ModelPositive {
    std::uint64_t expires_us = 0;
    std::uint32_t address = 0;
  };
  struct ModelNegative {
    std::uint64_t expires_us = 0;
    bool nxdomain = false;
  };

  [[nodiscard]] std::uint64_t deadline(std::uint32_t ttl) const {
    return clock_.now_us() + static_cast<std::uint64_t>(ttl) * 1'000'000ULL;
  }

  void model_find(const std::string& name, dns::RRType type) {
    const auto it = positive_.find({name, type});
    const dns::RRset* got = cache_.find(dns::Name::parse(name), type);
    if (it != positive_.end() && it->second.expires_us > clock_.now_us()) {
      ++hits_;
      ASSERT_NE(got, nullptr) << name;
      EXPECT_EQ(std::get<dns::ARdata>(got->records()[0].rdata).address,
                it->second.address);
    } else {
      ++misses_;
      if (it != positive_.end()) positive_.erase(it);
      EXPECT_EQ(got, nullptr) << name;
    }
  }

  void model_find_negative(const std::string& name, dns::RRType type) {
    NegativeEntry expected = NegativeEntry::kNone;
    const auto exact = negative_.find({name, type});
    if (exact != negative_.end() &&
        exact->second.expires_us > clock_.now_us()) {
      expected = exact->second.nxdomain ? NegativeEntry::kNxDomain
                                        : NegativeEntry::kNoData;
    } else {
      for (const auto& [key, record] : negative_) {
        if (key.first == name && record.nxdomain &&
            record.expires_us > clock_.now_us()) {
          expected = NegativeEntry::kNxDomain;
          break;
        }
      }
    }
    if (expected != NegativeEntry::kNone) ++negative_hits_;
    EXPECT_EQ(find_negative(cache_, dns::Name::parse(name), type), expected)
        << name;
  }

  void model_deepest_cut(const std::string& name) {
    dns::Name candidate = dns::Name::parse(name);
    for (;;) {
      const auto it = zone_cuts_.find(candidate.internal_text());
      if (it != zone_cuts_.end() && it->second > clock_.now_us()) break;
      if (candidate.is_root()) break;
      candidate = candidate.parent();
    }
    EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse(name)), candidate)
        << name;
  }

  std::map<Key, ModelPositive> positive_;
  std::map<Key, ModelNegative> negative_;
  std::map<Key, std::uint64_t> servfail_;
  std::map<std::string, std::uint64_t> zone_cuts_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t negative_hits_ = 0;
  std::uint64_t servfail_hits_ = 0;
};

TEST_F(CacheModelTest, RandomizedTraceMatchesOrderedMapModel) {
  crypto::SplitMix64 rng(0xCAFE);
  const dns::RRType types[] = {dns::RRType::kA, dns::RRType::kMx,
                               dns::RRType::kTxt};
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("h" + std::to_string(i) + ".example.com");
    names.push_back("h" + std::to_string(i) + ".sub.example.com");
  }
  names.push_back("example.com");
  names.push_back("sub.example.com");
  names.push_back("com");

  for (int step = 0; step < 6'000; ++step) {
    const std::string& name = names[rng.next_below(names.size())];
    const dns::RRType type = types[rng.next_below(3)];
    const std::uint32_t ttl = 1 + static_cast<std::uint32_t>(rng.next_below(30));
    switch (rng.next_below(10)) {
      case 0: {  // store positive (overwrite allowed)
        const auto address = static_cast<std::uint32_t>(rng.next_below(1000));
        dns::RRset rrset(dns::Name::parse(name), dns::RRType::kA);
        rrset.add(dns::ResourceRecord::make(dns::Name::parse(name), ttl,
                                            dns::ARdata{address}));
        cache_.store(rrset, rng.next_below(2) == 0);
        positive_[{name, dns::RRType::kA}] = {deadline(ttl), address};
        break;
      }
      case 1:
      case 2:
        model_find(name, dns::RRType::kA);
        break;
      case 3: {  // negative store: nodata <-> nxdomain overwrites included
        const bool nxdomain = rng.next_below(2) == 0;
        cache_.store_negative(dns::Name::parse(name), type, ttl, nxdomain);
        negative_[{name, type}] = {deadline(ttl), nxdomain};
        break;
      }
      case 4:
      case 5:
        model_find_negative(name, type);
        break;
      case 6: {  // servfail store + probe
        if (rng.next_below(2) == 0) {
          cache_.store_servfail(dns::Name::parse(name), type, ttl);
          servfail_[{name, type}] = deadline(ttl);
        } else {
          const auto it = servfail_.find({name, type});
          const bool expected =
              it != servfail_.end() && it->second > clock_.now_us();
          if (expected) ++servfail_hits_;
          EXPECT_EQ(cache_.find_servfail(dns::Name::parse(name), type),
                    expected);
        }
        break;
      }
      case 7: {  // zone cuts
        if (rng.next_below(2) == 0) {
          const std::string apex =
              rng.next_below(2) == 0 ? "example.com" : "sub.example.com";
          cache_.store_zone_cut(dns::Name::parse(apex), ttl);
          zone_cuts_[apex] = deadline(ttl);
        } else {
          model_deepest_cut(name);
        }
        break;
      }
      case 8:  // time passes; entries expire
        clock_.advance_seconds(static_cast<double>(rng.next_below(8)));
        break;
      case 9:
        if (rng.next_below(100) == 0) {  // rare full wipe
          cache_.clear();
          positive_.clear();
          negative_.clear();
          servfail_.clear();
          zone_cuts_.clear();
        }
        break;
    }
  }

  EXPECT_EQ(cache_.counters().value("cache.hit"), hits_);
  EXPECT_EQ(cache_.counters().value("cache.miss"), misses_);
  EXPECT_EQ(cache_.counters().value("cache.negative_hit"), negative_hits_);
  EXPECT_EQ(cache_.counters().value("cache.servfail_hit"), servfail_hits_);
}

}  // namespace
}  // namespace lookaside::resolver
