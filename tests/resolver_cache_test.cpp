// Unit tests for the resolver caches: positive TTLs, RFC 2308 negatives,
// the aggressive NSEC store (wraps, exact matches, type bitmaps, expiry),
// and zone-cut tracking.
#include <gtest/gtest.h>

#include "resolver/cache.h"
#include "sim/clock.h"

namespace lookaside::resolver {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : cache_(clock_) {}

  dns::RRset a_rrset(const std::string& name, std::uint32_t ttl,
                     std::uint32_t address = 1) {
    dns::RRset out(dns::Name::parse(name), dns::RRType::kA);
    out.add(dns::ResourceRecord::make(dns::Name::parse(name), ttl,
                                      dns::ARdata{address}));
    return out;
  }

  void store_nsec(const std::string& zone, const std::string& owner,
                  const std::string& next, std::uint32_t ttl,
                  std::vector<dns::RRType> types = {dns::RRType::kNs}) {
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse(next);
    nsec.types = std::move(types);
    cache_.store_nsec(dns::Name::parse(zone),
                      dns::ResourceRecord::make(dns::Name::parse(owner), ttl,
                                                dns::Rdata{nsec}));
  }

  sim::SimClock clock_;
  ResolverCache cache_;
};

TEST_F(CacheTest, PositiveHitAndTtlExpiry) {
  cache_.store(a_rrset("a.com", 10), /*validated=*/false);
  EXPECT_NE(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
  clock_.advance_seconds(9.0);
  EXPECT_NE(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
  clock_.advance_seconds(1.5);
  EXPECT_EQ(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
}

TEST_F(CacheTest, ValidatedFlagTracked) {
  cache_.store(a_rrset("v.com", 100), /*validated=*/true);
  cache_.store(a_rrset("u.com", 100), /*validated=*/false);
  EXPECT_NE(cache_.find_validated(dns::Name::parse("v.com"), dns::RRType::kA),
            nullptr);
  EXPECT_EQ(cache_.find_validated(dns::Name::parse("u.com"), dns::RRType::kA),
            nullptr);
  cache_.mark_validated(dns::Name::parse("u.com"), dns::RRType::kA);
  EXPECT_NE(cache_.find_validated(dns::Name::parse("u.com"), dns::RRType::kA),
            nullptr);
}

TEST_F(CacheTest, EntryKeepsRrsigs) {
  dns::RrsigRdata sig;
  sig.type_covered = dns::RRType::kA;
  sig.signer = dns::Name::parse("com");
  const auto rrsig_record = dns::ResourceRecord::make(
      dns::Name::parse("a.com"), 100, dns::Rdata{sig});
  cache_.store(a_rrset("a.com", 100), false, {rrsig_record});
  const auto entry = cache_.find_entry(dns::Name::parse("a.com"), dns::RRType::kA);
  ASSERT_TRUE(entry.has_value());
  ASSERT_EQ(entry->rrsigs->size(), 1u);
  EXPECT_EQ((*entry->rrsigs)[0].type, dns::RRType::kRrsig);
}

TEST_F(CacheTest, NegativeNoDataIsTypeScoped) {
  cache_.store_negative(dns::Name::parse("a.com"), dns::RRType::kMx, 60,
                        /*nxdomain=*/false);
  EXPECT_EQ(cache_.find_negative(dns::Name::parse("a.com"), dns::RRType::kMx),
            NegativeEntry::kNoData);
  EXPECT_EQ(cache_.find_negative(dns::Name::parse("a.com"), dns::RRType::kA),
            NegativeEntry::kNone);
}

TEST_F(CacheTest, NegativeNxdomainCoversAllTypes) {
  cache_.store_negative(dns::Name::parse("gone.com"), dns::RRType::kA, 60,
                        /*nxdomain=*/true);
  EXPECT_EQ(cache_.find_negative(dns::Name::parse("gone.com"), dns::RRType::kA),
            NegativeEntry::kNxDomain);
  EXPECT_EQ(
      cache_.find_negative(dns::Name::parse("gone.com"), dns::RRType::kDlv),
      NegativeEntry::kNxDomain);
}

TEST_F(CacheTest, NegativeExpires) {
  cache_.store_negative(dns::Name::parse("gone.com"), dns::RRType::kA, 30,
                        true);
  clock_.advance_seconds(31);
  EXPECT_EQ(cache_.find_negative(dns::Name::parse("gone.com"), dns::RRType::kA),
            NegativeEntry::kNone);
}

TEST_F(CacheTest, NsecCoversInteriorName) {
  store_nsec("dlv.isc.org", "alpha.com.dlv.isc.org", "omega.com.dlv.isc.org",
             300);
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("middle.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNameCovered);
  // Outside the range: no proof.
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("zz.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("aa.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
}

TEST_F(CacheTest, NsecWrapCoversTailOfZone) {
  // Last NSEC in a chain points back to the apex.
  store_nsec("dlv.isc.org", "zeta.com.dlv.isc.org", "dlv.isc.org", 300);
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("zz.net.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNameCovered);
}

TEST_F(CacheTest, NsecExactMatchChecksTypeBitmap) {
  store_nsec("dlv.isc.org", "exist.com.dlv.isc.org", "next.com.dlv.isc.org",
             300, {dns::RRType::kDlv});
  // DLV present at the name: no denial.
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("exist.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
  // TXT absent at the name: proven.
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("exist.com.dlv.isc.org"),
                              dns::RRType::kTxt),
            NsecCoverage::kTypeAbsent);
}

TEST_F(CacheTest, NsecRespectsZoneScope) {
  store_nsec("dlv.isc.org", "a.com.dlv.isc.org", "z.com.dlv.isc.org", 300);
  // Same shape of name in a different zone: no proof.
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("other.org"),
                              dns::Name::parse("m.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
  // Name outside the zone: no proof.
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("m.com"), dns::RRType::kDlv),
            NsecCoverage::kNoProof);
}

TEST_F(CacheTest, NsecExpires) {
  store_nsec("dlv.isc.org", "a.com.dlv.isc.org", "z.com.dlv.isc.org", 40);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("dlv.isc.org")), 1u);
  clock_.advance_seconds(41);
  EXPECT_EQ(cache_.nsec_check(dns::Name::parse("dlv.isc.org"),
                              dns::Name::parse("m.com.dlv.isc.org"),
                              dns::RRType::kDlv),
            NsecCoverage::kNoProof);
}

TEST_F(CacheTest, ZoneCutsDeepestWins) {
  cache_.store_zone_cut(dns::Name::parse("com"), 3600);
  cache_.store_zone_cut(dns::Name::parse("example.com"), 3600);
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("www.example.com")),
            dns::Name::parse("example.com"));
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("other.com")),
            dns::Name::parse("com"));
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("other.net")),
            dns::Name::root());
}

TEST_F(CacheTest, ZoneCutExpiry) {
  cache_.store_zone_cut(dns::Name::parse("com"), 10);
  clock_.advance_seconds(11);
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("a.com")),
            dns::Name::root());
}

TEST_F(CacheTest, ClearDropsEverything) {
  cache_.store(a_rrset("a.com", 100), true);
  cache_.store_negative(dns::Name::parse("b.com"), dns::RRType::kA, 100, true);
  store_nsec("z", "a.z", "b.z", 100);
  cache_.store_zone_cut(dns::Name::parse("com"), 100);
  cache_.clear();
  EXPECT_EQ(cache_.find(dns::Name::parse("a.com"), dns::RRType::kA), nullptr);
  EXPECT_EQ(cache_.find_negative(dns::Name::parse("b.com"), dns::RRType::kA),
            NegativeEntry::kNone);
  EXPECT_EQ(cache_.nsec_count(dns::Name::parse("z")), 0u);
  EXPECT_EQ(cache_.deepest_known_cut(dns::Name::parse("a.com")),
            dns::Name::root());
}

TEST_F(CacheTest, HitMissCountersTrack) {
  cache_.store(a_rrset("a.com", 100), false);
  (void)cache_.find(dns::Name::parse("a.com"), dns::RRType::kA);
  (void)cache_.find(dns::Name::parse("b.com"), dns::RRType::kA);
  EXPECT_EQ(cache_.counters().value("cache.hit"), 1u);
  EXPECT_EQ(cache_.counters().value("cache.miss"), 1u);
}

}  // namespace
}  // namespace lookaside::resolver
