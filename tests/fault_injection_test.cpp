// Resolver-level fault injection and resilience tests (§8.4): retry and
// backoff against lossy servers, DLV-registry outage semantics, dead-server
// holddown on the virtual clock, SERVFAIL caching, the closed-form outage
// latency bound and end-to-end trace determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dlv/registry.h"
#include "obs/tracer.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"
#include "sim/fault.h"

namespace lookaside {
namespace {

using resolver::RecursiveResolver;
using resolver::ResolveResult;
using resolver::ResolverConfig;
using resolver::RetryPolicy;
using resolver::ValidationStatus;

/// Full-stack fixture: testbed hierarchy + DLV registry + resolver, with
/// the network's fault injector reachable for chaos setup.
class FaultFixture {
 public:
  explicit FaultFixture(ResolverConfig config)
      : network_(clock_),
        testbed_(server::TestbedOptions{},
                 {
                     {"unsigned.com", false, false, false, {}},
                     {"plain.org", false, false, false, {}},
                     {"third.net", false, false, false, {}},
                     {"island.com", true, false, false, {}},
                 }),
        registry_(dlv::DlvRegistry::Options{}) {
    registry_.attach_clock(clock_);
    registry_.deposit(dns::Name::parse("island.com"),
                      testbed_.signed_sld("island.com")->ds_for_parent());
    testbed_.directory().register_zone(
        registry_.apex(),
        std::shared_ptr<sim::Endpoint>(&registry_, [](sim::Endpoint*) {}));
    resolver_ = std::make_unique<RecursiveResolver>(
        network_, testbed_.directory(), std::move(config));
    resolver_->set_root_trust_anchor(testbed_.root_trust_anchor());
    resolver_->set_dlv_trust_anchor(registry_.trust_anchor());
  }

  ResolveResult resolve(const std::string& name) {
    return resolver_->resolve({dns::Name::parse(name), dns::RRType::kA});
  }

  sim::SimClock clock_;
  sim::Network network_;
  server::Testbed testbed_;
  dlv::DlvRegistry registry_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST(RetryPolicyTest, ClosedFormMatchesPerAttemptSchedule) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_rto_us = 1'000'000;
  policy.backoff_factor = 2.0;
  policy.max_rto_us = 3'000'000;
  EXPECT_EQ(policy.rto_for_attempt(0), 1'000'000u);
  EXPECT_EQ(policy.rto_for_attempt(1), 2'000'000u);
  EXPECT_EQ(policy.rto_for_attempt(2), 3'000'000u);  // capped
  EXPECT_EQ(policy.rto_for_attempt(3), 3'000'000u);  // still capped
  EXPECT_EQ(policy.total_wait_us(), 9'000'000u);

  const RetryPolicy once = RetryPolicy::none();
  EXPECT_EQ(once.max_retries, 0);
  EXPECT_EQ(once.total_wait_us(), once.initial_rto_us);
}

TEST(FaultSpecTest, ParsesTheDocumentedGrammar) {
  const auto spec = sim::FaultSpec::parse(
      "dlv:dlv.isc.org loss=0.1 rloss=0.05 spike=0.2:150ms "
      "outage=1s..2s truncate=0.15 rcode=REFUSED:0.3 corrupt=0.25");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->endpoint, "dlv:dlv.isc.org");
  EXPECT_DOUBLE_EQ(spec->loss, 0.1);
  EXPECT_DOUBLE_EQ(spec->response_loss, 0.05);
  EXPECT_DOUBLE_EQ(spec->spike_probability, 0.2);
  EXPECT_EQ(spec->spike_us, 150'000u);
  EXPECT_EQ(spec->outage_start_us, 1'000'000u);
  EXPECT_EQ(spec->outage_end_us, 2'000'000u);
  EXPECT_DOUBLE_EQ(spec->truncate, 0.15);
  EXPECT_DOUBLE_EQ(spec->mangle, 0.3);
  EXPECT_EQ(spec->mangle_rcode, dns::RCode::kRefused);
  EXPECT_DOUBLE_EQ(spec->rrsig_corrupt, 0.25);
  EXPECT_FALSE(spec->all_zero());

  const auto wildcard = sim::FaultSpec::parse("* loss=1");
  ASSERT_TRUE(wildcard.has_value());
  EXPECT_EQ(wildcard->endpoint, "*");
  EXPECT_DOUBLE_EQ(wildcard->loss, 1.0);

  const auto bare = sim::FaultSpec::parse("root");
  ASSERT_TRUE(bare.has_value());
  EXPECT_TRUE(bare->all_zero());

  EXPECT_FALSE(sim::FaultSpec::parse("").has_value());
  EXPECT_FALSE(sim::FaultSpec::parse("root loss=1.5").has_value());
  EXPECT_FALSE(sim::FaultSpec::parse("root loss=x").has_value());
  EXPECT_FALSE(sim::FaultSpec::parse("root bogus=1").has_value());
  EXPECT_FALSE(sim::FaultSpec::parse("root rcode=NOPE:0.5").has_value());
  EXPECT_FALSE(sim::FaultSpec::parse("root outage=2s..1s").has_value());
}

TEST(ResolverRetryTest, RetryRecoversWhenOutageEndsMidSchedule) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.retry.max_retries = 2;
  config.retry.initial_rto_us = 800'000;
  FaultFixture fixture(config);
  // The root drops everything for the first 500 ms of virtual time. The
  // first attempt (t=0) is swallowed; its 800 ms RTO carries the clock past
  // the window, so the first retry succeeds — recovery is deterministic, no
  // randomness involved.
  sim::FaultPlan plan;
  sim::FaultSpec spec;
  spec.endpoint = "root";
  spec.outage_end_us = 500'000;
  plan.add(spec);
  fixture.network_.set_fault_plan(plan);

  const ResolveResult result = fixture.resolve("unsigned.com");
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  EXPECT_GE(fixture.resolver_->stats().value("retries"), 1u);
  EXPECT_EQ(fixture.network_.counters().value("retries"),
            fixture.resolver_->stats().value("retries"));
  EXPECT_GE(fixture.network_.counters().value("faults.dropped"), 1u);
  EXPECT_EQ(fixture.resolver_->stats().value("servers.marked_dead"), 0u);
}

TEST(ResolverRetryTest, DeadServerHolddownExpiresOnVirtualClock) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.server_holddown_us = 60'000'000;  // 1 min
  FaultFixture fixture(config);
  fixture.network_.set_unreachable(fixture.registry_.endpoint_id(), true);

  // First resolution exhausts the DLV retry budget and marks the registry
  // dead.
  (void)fixture.resolve("unsigned.com");
  EXPECT_EQ(fixture.resolver_->stats().value("servers.marked_dead"), 1u);

  // The registry comes back, but the holddown still stands: the next
  // resolution skips it without a single packet.
  fixture.network_.set_unreachable(fixture.registry_.endpoint_id(), false);
  const std::uint64_t queries_before = fixture.registry_.total_queries();
  (void)fixture.resolve("plain.org");
  EXPECT_EQ(fixture.registry_.total_queries(), queries_before);
  EXPECT_GE(fixture.resolver_->stats().value("servers.skipped_dead"), 1u);

  // Advance the virtual clock past the holddown: the server is probed
  // again and the look-aside query flows.
  fixture.clock_.advance_us(config.server_holddown_us);
  (void)fixture.resolve("third.net");
  EXPECT_GT(fixture.registry_.total_queries(), queries_before);
}

TEST(ResolverRetryTest, ServfailCacheShortCircuitsRepeatedFailures) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.retry = RetryPolicy::none();
  config.server_holddown_us = 0;  // isolate the SERVFAIL cache
  config.servfail_ttl = 1;
  FaultFixture fixture(config);
  fixture.network_.set_unreachable("root", true);

  const ResolveResult first = fixture.resolve("unsigned.com");
  EXPECT_EQ(first.response.header.rcode, dns::RCode::kServFail);
  EXPECT_EQ(fixture.resolver_->stats().value("servfail.cached"), 1u);

  // Within the TTL: answered from the SERVFAIL cache, zero network work.
  const std::uint64_t packets =
      fixture.network_.counters().value("packets.query");
  const ResolveResult second = fixture.resolve("unsigned.com");
  EXPECT_EQ(second.response.header.rcode, dns::RCode::kServFail);
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(fixture.resolver_->stats().value("servfail.cache_hit"), 1u);
  EXPECT_EQ(fixture.network_.counters().value("packets.query"), packets);

  // Past the TTL the entry lapses and the resolver tries the network again.
  fixture.clock_.advance_us(2'000'000);
  (void)fixture.resolve("unsigned.com");
  EXPECT_GT(fixture.network_.counters().value("packets.query"), packets);
}

TEST(ResolverRetryTest, DlvOutageLatencyMatchesClosedForm) {
  // §8.4 acceptance bound: the first resolution against a dead registry
  // costs exactly the DLV retry schedule's closed-form total, no more.
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.dlv_retry.max_retries = 2;
  config.dlv_retry.initial_rto_us = 500'000;
  config.dlv_retry.backoff_factor = 2.0;  // 0.5 + 1.0 + 2.0 = 3.5 s

  ResolverConfig baseline_config = config;
  baseline_config.dnssec_lookaside = false;
  baseline_config.dlv_trust_anchor_included = false;
  ASSERT_FALSE(baseline_config.dlv_enabled());

  FaultFixture outage(config);
  outage.network_.set_unreachable(outage.registry_.endpoint_id(), true);
  const ResolveResult result = outage.resolve("unsigned.com");
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(result.status, ValidationStatus::kInsecure);
  EXPECT_TRUE(result.dlv.timed_out);

  FaultFixture baseline(baseline_config);
  (void)baseline.resolve("unsigned.com");

  // Identical query paths except the look-aside leg; the candidate DLV
  // queries after the registry is marked dead are skipped for free.
  EXPECT_EQ(outage.clock_.now_us() - baseline.clock_.now_us(),
            config.dlv_retry.total_wait_us());
  EXPECT_GE(outage.resolver_->stats().value("dlv.timeout"), 1u);
}

TEST(ResolverRetryTest, MustBeSecureFailsClosedOnRegistryOutage) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.dlv_must_be_secure = true;
  FaultFixture fixture(config);
  fixture.network_.set_unreachable(fixture.registry_.endpoint_id(), true);
  const ResolveResult result = fixture.resolve("unsigned.com");
  EXPECT_TRUE(result.dlv.timed_out);
  EXPECT_EQ(result.status, ValidationStatus::kBogus);
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kServFail);

  // The permissive default on the same outage: insecure but answered
  // (IntegrationTest.DlvOutageIsToleratedAsInsecure covers it end to end).
  FaultFixture permissive(ResolverConfig::bind_manual_correct());
  permissive.network_.set_unreachable(permissive.registry_.endpoint_id(),
                                      true);
  EXPECT_EQ(permissive.resolve("unsigned.com").status,
            ValidationStatus::kInsecure);
}

TEST(ResolverRetryTest, DlvTimeoutCounterAndTraceDetailDistinguishOutcomes) {
  FaultFixture fixture(ResolverConfig::bind_manual_correct());
  auto ring = std::make_shared<obs::RingBufferSink>();
  obs::Tracer tracer;
  tracer.add_sink(ring);
  tracer.attach_clock(fixture.clock_);
  fixture.resolver_->set_tracer(&tracer);

  // Healthy registry, undeposited domain: the DLV answer is a definitive
  // NXDOMAIN, not a timeout.
  (void)fixture.resolve("unsigned.com");
  EXPECT_EQ(fixture.resolver_->stats().value("dlv.timeout"), 0u);
  bool saw_nxdomain = false;
  for (const obs::Event& event : ring->events()) {
    if (event.kind == obs::EventKind::kDlvLookup &&
        event.detail == "nxdomain") {
      saw_nxdomain = true;
    }
    EXPECT_NE(event.detail, "timeout");
  }
  EXPECT_TRUE(saw_nxdomain);

  // Dead registry on a fresh fixture (a warm cache would suppress the
  // candidate queries via validated NSECs before they reach the network):
  // the same lookup is reported as a timeout, not a definitive answer.
  FaultFixture dead(ResolverConfig::bind_manual_correct());
  auto dead_ring = std::make_shared<obs::RingBufferSink>();
  obs::Tracer dead_tracer;
  dead_tracer.add_sink(dead_ring);
  dead_tracer.attach_clock(dead.clock_);
  dead.resolver_->set_tracer(&dead_tracer);
  dead.network_.set_unreachable(dead.registry_.endpoint_id(), true);
  (void)dead.resolve("plain.org");
  EXPECT_GE(dead.resolver_->stats().value("dlv.timeout"), 1u);
  bool saw_timeout = false;
  for (const obs::Event& event : dead_ring->events()) {
    if (event.kind == obs::EventKind::kDlvLookup &&
        event.detail == "timeout") {
      saw_timeout = true;
    }
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(ResolverRetryTest, ZeroFaultsWithRetriesEnabledIsByteIdenticalToNone) {
  // Acceptance criterion: an all-zero FaultPlan plus retry/holddown/
  // SERVFAIL-cache machinery must not change a single counter, packet or
  // microsecond on a healthy network.
  const auto run = [](bool resilience) {
    ResolverConfig config = ResolverConfig::bind_manual_correct();
    if (resilience) {
      config.retry.max_retries = 5;
      config.dlv_retry.max_retries = 3;
    } else {
      config.retry = RetryPolicy::none();
      config.dlv_retry = RetryPolicy::none();
      config.server_holddown_us = 0;
      config.servfail_ttl = 0;
    }
    FaultFixture fixture(config);
    if (resilience) {
      sim::FaultPlan plan;  // all-zero: can never fire, never draws RNG
      sim::FaultSpec spec;
      plan.add(spec);
      fixture.network_.set_fault_plan(plan);
    }
    for (const char* name :
         {"unsigned.com", "island.com", "plain.org", "unsigned.com"}) {
      (void)fixture.resolve(name);
    }
    return std::make_pair(fixture.clock_.now_us(),
                          fixture.network_.counters().entries());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(ResolverRetryTest, IdenticalChaosRunsProduceIdenticalJsonlTraces) {
  // Full determinism: (seed, plan, workload) fixes the entire event
  // stream, byte for byte, fault events included.
  const auto run = [] {
    ResolverConfig config = ResolverConfig::bind_manual_correct();
    FaultFixture fixture(config);
    sim::FaultPlan plan;
    plan.seed = 1234;
    sim::FaultSpec spec;
    spec.endpoint = fixture.registry_.endpoint_id();
    spec.loss = 0.4;
    spec.spike_probability = 0.3;
    spec.spike_us = 20'000;
    plan.add(spec);
    fixture.network_.set_fault_plan(plan);

    auto ring = std::make_shared<obs::RingBufferSink>();
    obs::Tracer tracer;
    tracer.add_sink(ring);
    tracer.attach_clock(fixture.clock_);
    tracer.attach_network(fixture.network_);
    fixture.resolver_->set_tracer(&tracer);

    for (const char* name :
         {"unsigned.com", "island.com", "plain.org", "third.net"}) {
      (void)fixture.resolve(name);
    }
    std::string jsonl;
    for (const obs::Event& event : ring->events()) {
      jsonl += obs::to_jsonl(event);
      jsonl += '\n';
    }
    return jsonl;
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace lookaside
