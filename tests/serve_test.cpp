// Serving-frontend tests: query coalescing (two waiters, one upstream
// resolution), post-completion misses, fault-driven SERVFAIL fan-out,
// admission control, FORMERR handling, plain-stub stripping, the
// sim::Endpoint adapter, and the scenario-level identity between the
// coalescing frontend and the sequential reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <sstream>

#include "dlv/registry.h"
#include "obs/leak_ledger.h"
#include "obs/span_timeline.h"
#include "obs/tracer.h"
#include "resolver/resolver.h"
#include "serve/frontend.h"
#include "serve/scenario.h"
#include "server/testbed.h"
#include "sim/clock.h"

namespace lookaside {
namespace {

using resolver::RecursiveResolver;
using resolver::ResolverConfig;
using serve::FrontendOptions;
using serve::FrontendServer;
using serve::ScenarioOptions;
using serve::ScenarioSummary;
using serve::Served;
using serve::ServeScenario;
using serve::WireQuery;

dns::Bytes wire_query(const std::string& name, dns::RRType type,
                      std::uint16_t id, bool dnssec_ok = true) {
  return dns::encode_message(
      dns::Message::make_query(id, dns::Name::parse(name), type,
                               /*recursion_desired=*/true, dnssec_ok));
}

/// Full serving stack on the small integration testbed.
class ServeFixture {
 public:
  explicit ServeFixture(FrontendOptions options = {},
                        ResolverConfig config = ResolverConfig::bind_yum())
      : network_(clock_),
        testbed_(server::TestbedOptions{},
                 {
                     {"unsigned.com", false, false, false, {"www"}},
                     {"another.com", false, false, false, {}},
                     {"chained.com", true, true, false, {}},
                     {"island.com", true, false, false, {}},
                 }),
        registry_(dlv::DlvRegistry::Options{}) {
    registry_.attach_clock(clock_);
    registry_.deposit(dns::Name::parse("island.com"),
                      testbed_.signed_sld("island.com")->ds_for_parent());
    testbed_.directory().register_zone(
        registry_.apex(),
        std::shared_ptr<sim::Endpoint>(&registry_, [](sim::Endpoint*) {}));
    resolver_ = std::make_unique<RecursiveResolver>(
        network_, testbed_.directory(), std::move(config));
    resolver_->set_root_trust_anchor(testbed_.root_trust_anchor());
    resolver_->set_dlv_trust_anchor(registry_.trust_anchor());
    frontend_ =
        std::make_unique<FrontendServer>(network_, *resolver_, options);
    frontend_->set_registry(&registry_);
  }

  Served submit(std::uint64_t time_us, std::uint32_t client,
                const std::string& name,
                dns::RRType type = dns::RRType::kA) {
    const auto id = static_cast<std::uint16_t>(0x4000 + client);
    return frontend_->submit(
        {time_us, client, client, wire_query(name, type, id)});
  }

  sim::SimClock clock_;
  sim::Network network_;
  server::Testbed testbed_;
  dlv::DlvRegistry registry_;
  std::unique_ptr<RecursiveResolver> resolver_;
  std::unique_ptr<FrontendServer> frontend_;
};

TEST(ServeTest, TwoWaitersShareOneUpstreamResolution) {
  ServeFixture fixture;
  const Served first = fixture.submit(0, 0, "island.com");
  EXPECT_FALSE(first.coalesced);
  EXPECT_EQ(first.rcode, dns::RCode::kNoError);
  EXPECT_GT(first.completion_us, first.arrival_us);

  const std::uint64_t upstream_packets =
      fixture.network_.counters().value("packets.query");
  const std::uint64_t registry_queries = fixture.registry_.total_queries();

  // Second client asks the same name while the first resolution is still
  // logically in flight: it must join it, not resolve again.
  const Served second = fixture.submit(5'000, 1, "island.com");
  EXPECT_TRUE(second.coalesced);
  EXPECT_EQ(second.rcode, dns::RCode::kNoError);
  EXPECT_EQ(second.completion_us, first.completion_us);
  EXPECT_EQ(fixture.network_.counters().value("packets.query"),
            upstream_packets);
  EXPECT_EQ(fixture.registry_.total_queries(), registry_queries);
  EXPECT_EQ(fixture.frontend_->stats().value("serve.coalesce.hits"), 1u);
  EXPECT_EQ(fixture.frontend_->stats().value("serve.coalesce.misses"), 1u);
  EXPECT_EQ(fixture.frontend_->clients()[1].coalesce_hits, 1u);
  // Only the initiator is charged for the leak-side effects.
  EXPECT_EQ(fixture.frontend_->clients()[1].case2_leaks, 0u);
}

TEST(ServeTest, WaiterAfterCompletionMissesAndHitsTheCache) {
  ServeFixture fixture;
  const Served first = fixture.submit(0, 0, "island.com");
  // Arrives well after the fan-out instant: the in-flight entry is retired,
  // so this is a fresh (cache-served) resolution, not a coalesce hit.
  const Served late = fixture.submit(first.completion_us + 1'000'000, 1,
                                     "island.com");
  EXPECT_FALSE(late.coalesced);
  EXPECT_TRUE(late.from_cache);
  EXPECT_EQ(late.rcode, dns::RCode::kNoError);
  EXPECT_EQ(fixture.frontend_->stats().value("serve.coalesce.hits"), 0u);
  EXPECT_EQ(fixture.frontend_->stats().value("serve.coalesce.misses"), 2u);
}

TEST(ServeTest, UpstreamTimeoutFansServfailToAllWaiters) {
  ServeFixture fixture;
  fixture.network_.set_unreachable("root", true);
  const Served first = fixture.submit(0, 0, "unsigned.com");
  const Served second = fixture.submit(2'000, 1, "unsigned.com");
  EXPECT_EQ(first.rcode, dns::RCode::kServFail);
  EXPECT_TRUE(second.coalesced);
  EXPECT_EQ(second.rcode, dns::RCode::kServFail);
  EXPECT_EQ(second.completion_us, first.completion_us);
}

TEST(ServeTest, AdmissionControlShedsWithServfail) {
  ServeFixture fixture(FrontendOptions{.max_pending = 1});
  const Served first = fixture.submit(0, 0, "island.com");
  EXPECT_FALSE(first.overload_drop);
  // A different name cannot coalesce and the queue is full: shed.
  const Served shed = fixture.submit(1'000, 1, "unsigned.com");
  EXPECT_TRUE(shed.overload_drop);
  EXPECT_EQ(shed.rcode, dns::RCode::kServFail);
  EXPECT_EQ(shed.completion_us, shed.arrival_us);
  EXPECT_EQ(fixture.frontend_->stats().value("serve.overload.drops"), 1u);
  EXPECT_EQ(fixture.frontend_->clients()[1].overload_drops, 1u);
  // An identical query still coalesces even at the admission limit — it
  // consumes no new upstream work.
  const Served joined = fixture.submit(1'500, 2, "island.com");
  EXPECT_TRUE(joined.coalesced);
  // After the fan-out instant the queue drains and admission reopens.
  const Served after =
      fixture.submit(first.completion_us + 1, 1, "unsigned.com");
  EXPECT_FALSE(after.overload_drop);
  EXPECT_EQ(after.rcode, dns::RCode::kNoError);
  EXPECT_EQ(fixture.frontend_->max_queue_depth(), 2u);
}

TEST(ServeTest, MalformedWireGetsFormerr) {
  ServeFixture fixture;
  const Served garbage =
      fixture.frontend_->submit({0, 0, 0, dns::Bytes{0xde, 0xad, 0xbe}});
  EXPECT_TRUE(garbage.formerr);
  EXPECT_EQ(garbage.rcode, dns::RCode::kFormErr);
  // The FORMERR response echoes the two id bytes that did arrive.
  const dns::Message response = dns::decode_message(garbage.response_wire);
  EXPECT_EQ(response.header.id, 0xdead);
  EXPECT_TRUE(response.header.qr);

  // A structurally valid message without a question is equally unusable.
  dns::Message empty;
  empty.header.id = 7;
  const Served no_question =
      fixture.frontend_->submit({10, 1, 0, dns::encode_message(empty)});
  EXPECT_TRUE(no_question.formerr);
  EXPECT_EQ(fixture.frontend_->stats().value("serve.formerr"), 2u);
}

TEST(ServeTest, PlainStubResponsesAreStripped) {
  ServeFixture fixture;
  const Served plain = fixture.frontend_->submit(
      {0, 0, 0, wire_query("chained.com", dns::RRType::kA, 1,
                           /*dnssec_ok=*/false)});
  const dns::Message response = dns::decode_message(plain.response_wire);
  EXPECT_FALSE(response.header.ad);
  EXPECT_FALSE(response.dnssec_ok);
  for (const dns::ResourceRecord& record : response.answers) {
    EXPECT_NE(record.type, dns::RRType::kRrsig);
  }

  // A DO=1 stub coalescing onto the same (cached) data keeps signatures.
  const Served aware = fixture.frontend_->submit(
      {10'000'000, 1, 0, wire_query("chained.com", dns::RRType::kA, 2)});
  const dns::Message full = dns::decode_message(aware.response_wire);
  EXPECT_TRUE(full.header.ad);
  EXPECT_NE(full.first_answer(dns::RRType::kRrsig), nullptr);
}

TEST(ServeTest, EndpointAdapterServesOverTheNetwork) {
  ServeFixture fixture;
  const dns::Message query = dns::Message::make_query(
      0xbeef, dns::Name::parse("island.com"), dns::RRType::kA, true, true);
  const auto response =
      fixture.network_.exchange("stub", *fixture.frontend_, query);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.id, 0xbeef);
  EXPECT_EQ(response->header.rcode, dns::RCode::kNoError);
  EXPECT_NE(response->first_answer(dns::RRType::kA), nullptr);
}

ScenarioOptions small_scenario() {
  ScenarioOptions options;
  options.universe_size = 2'000;
  options.seed = 11;
  options.mix.clients = 6;
  options.mix.queries_per_client = 25;
  options.mix.zipf_support = 300;  // heavy head overlap across clients
  // Keep offered load below capacity (Little's law: depth ~ rate x ~200 ms
  // resolution occupancy). The identity contract below only covers
  // drop-free schedules — a shed query resolves in the reference model but
  // never upstream in the frontend.
  options.mix.mean_gap_us = 150'000;
  options.mix.seed = 23;
  return options;
}

TEST(ServeScenarioTest, CoalescedRunLeaksExactlyWhatSequentialWould) {
  ScenarioSummary coalesced = ServeScenario(small_scenario()).run();
  ScenarioSummary reference =
      ServeScenario(small_scenario()).run_sequential_reference();

  // The overlapping Zipf head must actually produce sharing, or this test
  // proves nothing — and nothing may be shed, or the comparison is void.
  EXPECT_GT(coalesced.coalesce_hits, 0u);
  EXPECT_GT(coalesced.coalesce_rate(), 0.0);
  EXPECT_EQ(coalesced.overload_drops, 0u);

  // Coalescing must not change what reaches the DLV registry: same Case-2
  // totals, same leaked-domain identity.
  EXPECT_EQ(coalesced.case2_total, reference.case2_total);
  EXPECT_EQ(coalesced.distinct_leaked, reference.distinct_leaked);
  EXPECT_EQ(coalesced.leaked_domains, reference.leaked_domains);

  // Per-client attribution is complete: every registry-observed Case-2
  // query is charged to exactly one client.
  const std::uint64_t attributed =
      std::accumulate(coalesced.case2_per_client.begin(),
                      coalesced.case2_per_client.end(), std::uint64_t{0});
  EXPECT_EQ(attributed, coalesced.case2_total);
}

TEST(ServeTest, BoundedSharedCacheStaysUnderCapAcrossClients) {
  // Every client behind the frontend populates one shared resolver cache;
  // a configured cap must hold its footprint down (evicting under
  // pressure) without breaking service.
  ResolverConfig config = ResolverConfig::bind_yum();
  config.max_cache_bytes = 2 * 1024;
  ServeFixture fixture(FrontendOptions{}, config);
  std::uint64_t t = 0;
  const char* names[] = {"island.com", "unsigned.com", "another.com",
                         "chained.com", "www.unsigned.com"};
  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t client = 0; client < 4; ++client) {
      const Served served = fixture.submit(
          t, client, names[(round + client) % 5],
          round % 2 == 0 ? dns::RRType::kA : dns::RRType::kTxt);
      t = served.completion_us + 400'000;
    }
  }
  const resolver::ResolverCache& cache = fixture.resolver_->cache();
  EXPECT_LE(cache.bytes(), config.max_cache_bytes);
  EXPECT_GT(cache.peak_bytes(), 0u);
}

TEST(ServeTraceTest, CoalescedResolutionRecordsEveryWaiterAsParent) {
  // N identical concurrent queries -> one resolver span whose recorded
  // parentage names all N frontend spans: the initiator via the stub_query
  // parent stamp, each waiter via its coalesce_join event.
  ServeFixture fixture;
  obs::Tracer tracer;
  tracer.attach_clock(fixture.clock_);
  tracer.attach_network(fixture.network_);
  auto timeline = std::make_shared<obs::TimelineSink>();
  tracer.add_sink(timeline);
  fixture.resolver_->set_tracer(&tracer);
  fixture.frontend_->set_tracer(&tracer);
  fixture.registry_.set_tracer(&tracer);

  const Served first = fixture.submit(0, 0, "island.com");
  ASSERT_FALSE(first.coalesced);
  const Served second = fixture.submit(2'000, 1, "island.com");
  const Served third = fixture.submit(4'000, 2, "island.com");
  ASSERT_TRUE(second.coalesced);
  ASSERT_TRUE(third.coalesced);

  ASSERT_EQ(timeline->timeline().spans().size(), 1u);
  const obs::ResolutionSpan& span = timeline->timeline().spans().front();
  ASSERT_EQ(timeline->timeline().client_spans().size(), 3u);
  ASSERT_EQ(span.parent_span_ids.size(), 3u);
  for (const obs::ClientQuerySpan& client : timeline->timeline().client_spans()) {
    EXPECT_TRUE(client.closed);
    EXPECT_EQ(client.resolver_span_id, span.span_id);
    EXPECT_EQ(std::count(span.parent_span_ids.begin(),
                         span.parent_span_ids.end(), client.span_id),
              1);
  }
  // Trace context survives the whole chain: the span carries the
  // initiator's query_id and the 1-based client tag.
  EXPECT_EQ(span.query_id, serve::FrontendServer::make_query_id(0, 0));
  EXPECT_EQ(span.client, 1u);
}

TEST(ServeTraceTest, LedgerAgreesWithScenarioCase2Accounting) {
  obs::Tracer tracer;
  auto ledger = std::make_shared<obs::LeakLedger>();
  auto timeline = std::make_shared<obs::TimelineSink>();
  tracer.add_sink(ledger);
  tracer.add_sink(timeline);

  ScenarioOptions options = small_scenario();
  options.tracer = &tracer;
  const ScenarioSummary summary = ServeScenario(std::move(options)).run();

  EXPECT_GT(summary.case2_total, 0u);
  EXPECT_EQ(ledger->case2_total(), summary.case2_total);
  // Every ledger record chains query -> frontend span -> resolver span ->
  // a hop that actually reached the DLV registry vantage it names.
  EXPECT_EQ(obs::broken_leak_chains(timeline->timeline(), ledger->records()),
            0u);
  // Per-client attribution agrees record-by-record with the frontend's
  // own accounting (records carry 1-based client tags).
  std::vector<std::uint64_t> per_client(summary.case2_per_client.size(), 0);
  for (const obs::LeakRecord& record : ledger->records()) {
    ASSERT_GT(record.client, 0u);
    ASSERT_LE(record.client, per_client.size());
    per_client[record.client - 1] += 1;
  }
  EXPECT_EQ(per_client, summary.case2_per_client);
}

TEST(ServeTraceTest, ProfilesAndLedgerAreRunToRunIdentical) {
  // The per-query profile and ledger JSONL must be pure functions of the
  // schedule — byte-identical across independent runs (the cross---jobs
  // byte-identity in the bench drivers reduces to exactly this plus
  // in-order shard merging).
  const auto capture = [] {
    obs::Tracer tracer;
    auto ledger = std::make_shared<obs::LeakLedger>();
    auto timeline = std::make_shared<obs::TimelineSink>();
    tracer.add_sink(ledger);
    tracer.add_sink(timeline);
    ScenarioOptions options = small_scenario();
    options.tracer = &tracer;
    (void)ServeScenario(std::move(options)).run();

    std::string blob;
    for (const obs::QueryProfile& profile :
         timeline->timeline().query_profiles()) {
      blob += obs::profile_jsonl(profile);
      blob += "\n";
    }
    std::ostringstream records;
    ledger->write_jsonl(records);
    blob += records.str();
    return blob;
  };
  const std::string first = capture();
  const std::string second = capture();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ServeScenarioTest, RunsAreDeterministic) {
  const ScenarioSummary a = ServeScenario(small_scenario()).run();
  const ScenarioSummary b = ServeScenario(small_scenario()).run();
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.coalesce_hits, b.coalesce_hits);
  EXPECT_EQ(a.coalesce_misses, b.coalesce_misses);
  EXPECT_EQ(a.case2_total, b.case2_total);
  EXPECT_EQ(a.case2_per_client, b.case2_per_client);
  EXPECT_EQ(a.leaked_domains, b.leaked_domains);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.qps, b.qps);
}

}  // namespace
}  // namespace lookaside
