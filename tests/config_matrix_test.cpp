// Tests for the 16-environment install matrix (Table 1), Table 2's default
// configurations, and the ARM-compliance checker.
#include <gtest/gtest.h>

#include "config/install_matrix.h"

namespace lookaside::config {
namespace {

TEST(InstallMatrixTest, SixteenPackageEnvironments) {
  const auto package_only = install_matrix(/*include_manual=*/false);
  EXPECT_EQ(package_only.size(), 16u);  // 8 OSes x 2 resolvers
  const auto with_manual = install_matrix(/*include_manual=*/true);
  EXPECT_EQ(with_manual.size(), 32u);
}

TEST(InstallMatrixTest, Table1Versions) {
  Environment env{OperatingSystem::kDebian7, ResolverSoftware::kBind,
                  InstallMethod::kPackage};
  EXPECT_EQ(env.resolver_version(), "9.8.4");
  env.method = InstallMethod::kManual;
  EXPECT_EQ(env.resolver_version(), "9.10.3");
  env = {OperatingSystem::kFedora22, ResolverSoftware::kBind,
         InstallMethod::kPackage};
  EXPECT_EQ(env.resolver_version(), "9.10.2");
  env = {OperatingSystem::kUbuntu1204, ResolverSoftware::kUnbound,
         InstallMethod::kPackage};
  EXPECT_EQ(env.resolver_version(), "1.4.16");
  env.method = InstallMethod::kManual;
  EXPECT_EQ(env.resolver_version(), "1.5.7");
}

TEST(InstallMatrixTest, InstallerNames) {
  Environment debian{OperatingSystem::kDebian8, ResolverSoftware::kBind,
                     InstallMethod::kPackage};
  EXPECT_EQ(debian.installer_name(), "apt-get");
  Environment centos{OperatingSystem::kCentOs71, ResolverSoftware::kBind,
                     InstallMethod::kPackage};
  EXPECT_EQ(centos.installer_name(), "yum");
  centos.method = InstallMethod::kManual;
  EXPECT_EQ(centos.installer_name(), "manual");
}

TEST(InstallMatrixTest, DefaultConfigsMatchPaper) {
  // apt-get: validation auto, no DLV (Fig. 4).
  const auto apt = Environment{OperatingSystem::kUbuntu1404,
                               ResolverSoftware::kBind,
                               InstallMethod::kPackage}
                       .default_config();
  EXPECT_EQ(apt.dnssec_validation, resolver::ValidationMode::kAuto);
  EXPECT_FALSE(apt.dlv_enabled());
  EXPECT_TRUE(apt.root_anchor_available());  // auto ships the anchor

  // yum: validation yes + anchors + lookaside auto (Fig. 5).
  const auto yum = Environment{OperatingSystem::kFedora21,
                               ResolverSoftware::kBind,
                               InstallMethod::kPackage}
                       .default_config();
  EXPECT_EQ(yum.dnssec_validation, resolver::ValidationMode::kYes);
  EXPECT_TRUE(yum.dlv_enabled());
  EXPECT_TRUE(yum.root_anchor_available());

  // BIND manual: DLV on, anchor missing -> the catastrophic leak config.
  const auto manual = Environment{OperatingSystem::kDebian8,
                                  ResolverSoftware::kBind,
                                  InstallMethod::kManual}
                          .default_config();
  EXPECT_TRUE(manual.dlv_enabled());
  EXPECT_FALSE(manual.root_anchor_available());

  // Unbound package: validation on via anchor file, no DLV.
  const auto unbound = Environment{OperatingSystem::kCentOs67,
                                   ResolverSoftware::kUnbound,
                                   InstallMethod::kPackage}
                           .default_config();
  EXPECT_TRUE(unbound.root_anchor_available());
  EXPECT_FALSE(unbound.dlv_enabled());

  // Unbound manual: nothing enabled until the user uncomments.
  const auto unbound_manual = Environment{OperatingSystem::kCentOs67,
                                          ResolverSoftware::kUnbound,
                                          InstallMethod::kManual}
                                  .default_config();
  EXPECT_FALSE(unbound_manual.validation_enabled());
  EXPECT_FALSE(unbound_manual.dlv_enabled());
}

TEST(InstallMatrixTest, Table2RowsReproduced) {
  const auto rows = table2_rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].installer, "apt-get");
  EXPECT_EQ(rows[0].validation, "Auto");
  EXPECT_FALSE(rows[0].arm_compliant);
  EXPECT_EQ(rows[1].installer, "yum");
  EXPECT_EQ(rows[1].dlv, "Auto");
  EXPECT_FALSE(rows[1].arm_compliant);
  EXPECT_EQ(rows[2].installer, "manual");
  EXPECT_TRUE(rows[2].arm_compliant);
}

TEST(ComplianceTest, FlagsAptGetAndYumDeviations) {
  const auto apt_issues =
      check_arm_compliance(resolver::ResolverConfig::bind_apt_get());
  ASSERT_EQ(apt_issues.size(), 1u);
  EXPECT_EQ(apt_issues[0].option, "dnssec-validation");
  EXPECT_EQ(apt_issues[0].shipped, "auto");
  EXPECT_EQ(apt_issues[0].documented, "yes");

  const auto yum_issues =
      check_arm_compliance(resolver::ResolverConfig::bind_yum());
  ASSERT_EQ(yum_issues.size(), 1u);
  EXPECT_EQ(yum_issues[0].option, "dnssec-lookaside");

  // A config matching the ARM exactly has no issues.
  resolver::ResolverConfig arm;
  arm.dnssec_validation = resolver::ValidationMode::kYes;
  arm.dnssec_lookaside = false;
  EXPECT_TRUE(check_arm_compliance(arm).empty());
}

}  // namespace
}  // namespace lookaside::config
