// Tests for the parallel sweep engine's determinism contract: seed
// derivation, index-order merging, exception propagation, and end-to-end
// byte-identical experiment sweeps for any job count (ctest -L engine;
// CI also runs this suite under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "engine/sweep.h"
#include "obs/metrics_registry.h"

namespace lookaside::engine {
namespace {

TEST(ShardSeedTest, DeterministicAndDistinct) {
  EXPECT_EQ(shard_seed(7, 0), shard_seed(7, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 1000; ++shard) {
    seeds.insert(shard_seed(7, shard));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across a realistic grid
  // Different base seeds give unrelated streams.
  EXPECT_NE(shard_seed(7, 0), shard_seed(8, 0));
  // Adjacent shards do not share low bits (avalanche check).
  EXPECT_NE(shard_seed(7, 1) & 0xFFFF, shard_seed(7, 2) & 0xFFFF);
}

TEST(ParseJobsTest, ParsesBothSpellings) {
  const char* argv1[] = {"bench", "--jobs", "4"};
  EXPECT_EQ(parse_jobs(3, const_cast<char**>(argv1)), 4u);
  const char* argv2[] = {"bench", "--jobs=8"};
  EXPECT_EQ(parse_jobs(2, const_cast<char**>(argv2)), 8u);
  const char* argv3[] = {"bench", "--smoke"};
  EXPECT_EQ(parse_jobs(2, const_cast<char**>(argv3)), default_jobs());
  const char* argv4[] = {"bench", "--jobs=0"};
  EXPECT_EQ(parse_jobs(2, const_cast<char**>(argv4)), default_jobs());
}

TEST(RunShardedTest, ResultsArriveInIndexOrderForAnyJobCount) {
  for (const unsigned jobs : {1u, 2u, 8u}) {
    const std::vector<std::uint64_t> out = run_sharded(
        100, jobs, [](std::size_t i) { return shard_seed(42, i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], shard_seed(42, i)) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(RunShardedTest, MergedStringOutputIsByteIdentical) {
  const auto render = [](unsigned jobs) {
    const std::vector<std::string> parts = run_sharded(
        37, jobs, [](std::size_t i) {
          return "row " + std::to_string(i) + " seed " +
                 std::to_string(shard_seed(9, i)) + "\n";
        });
    std::string merged;
    for (const std::string& part : parts) merged += part;
    return merged;
  };
  const std::string reference = render(1);
  EXPECT_EQ(render(2), reference);
  EXPECT_EQ(render(8), reference);
}

TEST(RunShardedTest, EdgeCounts) {
  EXPECT_TRUE(run_sharded(0, 8, [](std::size_t i) { return i; }).empty());
  // More workers than items: every item still runs exactly once.
  std::atomic<int> calls{0};
  const std::vector<std::size_t> out = run_sharded(3, 16, [&](std::size_t i) {
    calls.fetch_add(1);
    return i;
  });
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RunShardedTest, FirstExceptionPropagates) {
  for (const unsigned jobs : {1u, 4u}) {
    EXPECT_THROW(
        (void)run_sharded(16, jobs,
                          [](std::size_t i) -> int {
                            if (i == 5) throw std::runtime_error("shard 5");
                            return 0;
                          }),
        std::runtime_error)
        << "jobs " << jobs;
  }
}

/// Serializes the fields a bench driver would print, so sweeps can be
/// compared byte-for-byte.
std::string serialize_report(const core::LeakageReport& report) {
  std::ostringstream out;
  out << report.dlv_queries << "/" << report.distinct_case1_domains << "/"
      << report.distinct_leaked_domains << "/" << report.leaked_proportion();
  return out.str();
}

TEST(RunShardedTest, ExperimentGridIsScheduleIndependent) {
  // A miniature version of the bench drivers' grids: each shard owns a
  // private experiment; seeds derive from the shard index.
  const auto sweep = [](unsigned jobs) {
    const std::vector<std::string> rows = run_sharded(
        4, jobs, [](std::size_t i) {
          core::UniverseExperiment::Options options;
          options.universe_size = 10'000;
          options.seed = shard_seed(7, i);
          core::UniverseExperiment experiment(options);
          return serialize_report(experiment.run_topn(50 + 25 * i));
        });
    std::string merged;
    for (const std::string& row : rows) merged += row + "\n";
    return merged;
  };
  const std::string reference = sweep(1);
  EXPECT_EQ(sweep(3), reference);
}

TEST(MetricsMergeTest, ShardOrderReductionIsDeterministic) {
  // merge_from in canonical shard order must not depend on how work was
  // scheduled; counters add and histogram samples append.
  const auto shard_registry = [](std::uint64_t shard) {
    obs::MetricsRegistry r;
    r.add("upstream_queries", {{"server", "dlv"}}, 10 + shard);
    r.add("upstream_queries", {{"server", "root"}}, shard);
    r.observe("latency", {}, static_cast<double>(shard));
    return r;
  };
  obs::MetricsRegistry merged;
  for (std::uint64_t shard = 0; shard < 4; ++shard) {
    const obs::MetricsRegistry r = shard_registry(shard);
    merged.merge_from(r);
  }
  EXPECT_EQ(merged.value("upstream_queries", {{"server", "dlv"}}), 46u);
  EXPECT_EQ(merged.value("upstream_queries", {{"server", "root"}}), 6u);
  ASSERT_NE(merged.histogram("latency"), nullptr);
  EXPECT_EQ(merged.histogram("latency")->count(), 4u);
  EXPECT_DOUBLE_EQ(merged.histogram("latency")->sum(), 6.0);

  // Merging the same shards pre-reduced pairwise gives the same totals
  // (associativity of the reduction).
  obs::MetricsRegistry left;
  left.merge_from(shard_registry(0));
  left.merge_from(shard_registry(1));
  obs::MetricsRegistry right;
  right.merge_from(shard_registry(2));
  right.merge_from(shard_registry(3));
  left.merge_from(right);
  EXPECT_EQ(left.json(), merged.json());
}

}  // namespace
}  // namespace lookaside::engine
