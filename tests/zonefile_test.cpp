// Tests for the RFC 1035 master-file parser and renderer.
#include <gtest/gtest.h>

#include "zone/signed_zone.h"
#include "zone/zonefile.h"

namespace lookaside::zone {
namespace {

constexpr const char* kSampleZone = R"($ORIGIN example.com.
$TTL 3600
@   IN SOA ns1 hostmaster 2026070501 7200 3600 1209600 900
    IN NS  ns1
ns1 IN A   203.0.113.10
www 300 IN A 203.0.113.11
    IN AAAA 2001:db8::11
mail IN MX 10 mx.example.com.
txt IN TXT "dlv=1" "second"
alias IN CNAME www
sub IN NS ns1.sub
ns1.sub IN A 203.0.113.12
sub IN DS 12345 8 2 a1b2c3d4e5f60718293a4b5c6d7e8f901122334455667788990011223344aabb
)";

TEST(ZoneFileTest, ParsesSampleZone) {
  const ZoneFileResult result = parse_zone_file(kSampleZone);
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? "no zone"
                                   : result.errors[0].message);
  const Zone& zone = *result.zone;
  EXPECT_EQ(zone.apex(), dns::Name::parse("example.com"));
  EXPECT_EQ(zone.soa().serial, 2026070501u);
  EXPECT_EQ(zone.negative_ttl(), 900u);

  // Relative and absolute names resolved against $ORIGIN.
  const dns::RRset* www = zone.find(dns::Name::parse("www.example.com"),
                                    dns::RRType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->ttl(), 300u);  // explicit TTL beats $TTL
  EXPECT_EQ(std::get<dns::ARdata>(www->records()[0].rdata).to_text(),
            "203.0.113.11");

  // Blank-owner continuation attaches AAAA to www.
  EXPECT_NE(zone.find(dns::Name::parse("www.example.com"), dns::RRType::kAaaa),
            nullptr);

  const dns::RRset* mx =
      zone.find(dns::Name::parse("mail.example.com"), dns::RRType::kMx);
  ASSERT_NE(mx, nullptr);
  EXPECT_EQ(std::get<dns::MxRdata>(mx->records()[0].rdata).preference, 10);

  const dns::RRset* txt =
      zone.find(dns::Name::parse("txt.example.com"), dns::RRType::kTxt);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(std::get<dns::TxtRdata>(txt->records()[0].rdata).strings,
            (std::vector<std::string>{"dlv=1", "second"}));

  const dns::RRset* ds =
      zone.find(dns::Name::parse("sub.example.com"), dns::RRType::kDs);
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(std::get<dns::DsRdata>(ds->records()[0].rdata).key_tag, 12345);

  // Delegation semantics work on the parsed zone.
  EXPECT_EQ(zone.lookup(dns::Name::parse("host.sub.example.com"),
                        dns::RRType::kA)
                .kind,
            LookupKind::kReferral);
}

TEST(ZoneFileTest, ParsesIpv6Forms) {
  const char* text = R"($ORIGIN v6.test.
@ IN SOA ns1 admin 1 2 3 4 5
full IN AAAA 2001:0db8:0000:0000:0000:0000:0000:0001
compressed IN AAAA 2001:db8::1
loopback IN AAAA ::1
)";
  const ZoneFileResult result = parse_zone_file(text);
  ASSERT_TRUE(result.ok());
  const auto* full = result.zone->find(dns::Name::parse("full.v6.test"),
                                       dns::RRType::kAaaa);
  const auto* compressed = result.zone->find(
      dns::Name::parse("compressed.v6.test"), dns::RRType::kAaaa);
  ASSERT_NE(full, nullptr);
  ASSERT_NE(compressed, nullptr);
  EXPECT_EQ(std::get<dns::AaaaRdata>(full->records()[0].rdata),
            std::get<dns::AaaaRdata>(compressed->records()[0].rdata));
}

TEST(ZoneFileTest, ReportsErrorsWithLineNumbers) {
  const char* text = R"($ORIGIN e.test.
@ IN SOA ns1 admin 1 2 3 4 5
bad IN A 999.1.2.3
worse IN AAAA zz::1
unknown IN SPF "x"
)";
  const ZoneFileResult result = parse_zone_file(text);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 3u);
  EXPECT_EQ(result.errors[0].line, 3);
  EXPECT_EQ(result.errors[1].line, 4);
  EXPECT_EQ(result.errors[2].line, 5);
}

TEST(ZoneFileTest, RequiresSoa) {
  const ZoneFileResult result =
      parse_zone_file("$ORIGIN x.test.\nwww IN A 1.2.3.4\n");
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.zone.has_value());
}

TEST(ZoneFileTest, RejectsDuplicateSoaAndOutOfZone) {
  const char* text = R"($ORIGIN z.test.
@ IN SOA ns1 admin 1 2 3 4 5
@ IN SOA ns1 admin 2 2 3 4 5
other.example. IN A 1.2.3.4
)";
  const ZoneFileResult result = parse_zone_file(text);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors.size(), 2u);
}

TEST(ZoneFileTest, CommentsAndBlankLinesIgnored)
{
  const char* text = R"(
; leading comment
$ORIGIN c.test.

@ IN SOA ns1 admin 1 2 3 4 5 ; inline comment
www IN A 1.2.3.4 ; trailing
)";
  const ZoneFileResult result = parse_zone_file(text);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.zone->find(dns::Name::parse("www.c.test"), dns::RRType::kA),
            nullptr);
}

TEST(ZoneFileTest, RenderParseRoundTrip) {
  const ZoneFileResult first = parse_zone_file(kSampleZone);
  ASSERT_TRUE(first.ok());
  const std::string rendered = render_zone_file(*first.zone);
  const ZoneFileResult second = parse_zone_file(rendered);
  ASSERT_TRUE(second.ok()) << (second.errors.empty()
                                   ? "?"
                                   : second.errors[0].message);
  EXPECT_EQ(second.zone->name_count(), first.zone->name_count());
  EXPECT_EQ(second.zone->soa().serial, first.zone->soa().serial);
  // Spot-check a record surviving the round trip.
  const auto* www = second.zone->find(dns::Name::parse("www.example.com"),
                                      dns::RRType::kA);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(std::get<dns::ARdata>(www->records()[0].rdata).to_text(),
            "203.0.113.11");
}

TEST(ZoneFileTest, ParsedZoneSignsAndServes) {
  // End-to-end: parse -> sign -> NSEC proof still holds.
  ZoneFileResult result = parse_zone_file(kSampleZone);
  ASSERT_TRUE(result.ok());
  crypto::SplitMix64 rng(21);
  SignedZone signed_zone(std::move(*result.zone),
                         ZoneKeys::generate(256, rng));
  const NsecProof proof =
      signed_zone.nxdomain_proof(dns::Name::parse("nothere.example.com"));
  EXPECT_LT(proof.nsec.name.canonical_compare(
                dns::Name::parse("nothere.example.com")),
            0);
}

}  // namespace
}  // namespace lookaside::zone
