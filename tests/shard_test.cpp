// Multi-core sharded serving tests (DESIGN.md §4i): consistent-hash
// routing (balance, determinism, stability under shard-count growth),
// striped SharedProofStore semantics (coverage, type bitmaps, wraparound,
// expiry, sibling accounting), correctness under real thread contention
// (the CI TSan target), shard-private cache isolation with shared-NSEC
// crossing, and the scenario-level contracts: the shared-store sharded run
// must leak exactly the sequential reference's Case-2 set for every shard
// count, while the shard-private run re-leaks and the store strictly
// reduces it.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "resolver/cache.h"
#include "resolver/shared_store.h"
#include "serve/sharded.h"
#include "sim/clock.h"

namespace lookaside {
namespace {

using resolver::NsecCoverage;
using resolver::ResolverCache;
using resolver::SharedProofStore;
using serve::ShardedOptions;
using serve::ShardedServeScenario;
using serve::ShardedSummary;
using serve::ShardRoute;
using serve::ShardRouter;

dns::Name name_of(const std::string& text) { return dns::Name::parse(text); }

// Legacy-shaped probe over the unified DenialProofSource API.
NsecCoverage nsec_check(ResolverCache& cache, const dns::Name& apex,
                        const dns::Name& qname, dns::RRType qtype) {
  const resolver::ProofResult proof =
      cache.find_denial(apex, qname, qtype, resolver::DenialSources::kSpans);
  if (!proof) return NsecCoverage::kNoProof;
  return proof.coverage == resolver::DenialKind::kNxDomain
             ? NsecCoverage::kNameCovered
             : NsecCoverage::kTypeAbsent;
}

dns::ResourceRecord nsec_span(const std::string& owner,
                              const std::string& next,
                              std::uint32_t ttl = 3600) {
  return dns::ResourceRecord::make(
      name_of(owner), ttl, dns::NsecRdata{name_of(next), {dns::RRType::kA}});
}

// -- ShardRouter --------------------------------------------------------------

TEST(ShardRouter, RoutesEveryClientAndBalancesRoughly) {
  const ShardRouter router(4, ShardRoute::kClient);
  std::map<std::uint32_t, int> population;
  for (std::uint32_t client = 0; client < 4000; ++client) {
    const std::uint32_t shard = router.shard_for_client(client);
    ASSERT_LT(shard, 4u);
    ++population[shard];
  }
  ASSERT_EQ(population.size(), 4u);  // nobody starves
  for (const auto& [shard, count] : population) {
    // 64 vnodes/shard keeps imbalance well under 2x of the fair share.
    EXPECT_GT(count, 400) << "shard " << shard;
    EXPECT_LT(count, 2000) << "shard " << shard;
  }
}

TEST(ShardRouter, DeterministicAcrossInstances) {
  const ShardRouter a(8, ShardRoute::kClient);
  const ShardRouter b(8, ShardRoute::kClient);
  for (std::uint32_t client = 0; client < 1000; ++client) {
    EXPECT_EQ(a.shard_for_client(client), b.shard_for_client(client));
  }
}

TEST(ShardRouter, ConsistentHashMovesFewKeysWhenShardsGrow) {
  const ShardRouter four(4, ShardRoute::kClient);
  const ShardRouter five(5, ShardRoute::kClient);
  int moved = 0;
  const int keys = 5000;
  for (std::uint32_t client = 0; client < keys; ++client) {
    if (four.shard_for_client(client) != five.shard_for_client(client)) {
      ++moved;
    }
  }
  // A consistent hash moves ~1/5 of the keys when a fifth shard joins;
  // modulo hashing would move ~4/5. Allow generous slack over the ideal.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, keys * 2 / 5);
}

TEST(ShardRouter, QnameRouteKeysOnNameNotClient) {
  const ShardRouter router(4, ShardRoute::kQname);
  const dns::Name name = name_of("www.example.com");
  workload::ClientQuery a{0, 1, 0, name, dns::RRType::kA};
  workload::ClientQuery b{0, 999, 3, name, dns::RRType::kA};
  EXPECT_EQ(router.shard_for(a), router.shard_for(b));
  EXPECT_EQ(router.shard_for(a), router.shard_for_name(name));
}

TEST(ShardRouter, SingleShardRoutesEverythingToZero) {
  const ShardRouter router(1, ShardRoute::kClient);
  for (std::uint32_t client = 0; client < 100; ++client) {
    EXPECT_EQ(router.shard_for_client(client), 0u);
  }
}

// -- SharedProofStore ---------------------------------------------------------

TEST(SharedProofStore, CoversNamesBetweenSpanEndpoints) {
  SharedProofStore store;
  const dns::Name zone = name_of("example.com");
  store.store_nsec(zone, name_of("alpha.example.com"),
                   {name_of("delta.example.com"),
                    {dns::RRType::kA},
                    1'000'000'000,
                    /*shard=*/0});
  EXPECT_EQ(store.check_nsec(zone, name_of("bravo.example.com"),
                             dns::RRType::kA, 0, 0),
            NsecCoverage::kNameCovered);
  EXPECT_EQ(store.check_nsec(zone, name_of("zulu.example.com"),
                             dns::RRType::kA, 0, 0),
            NsecCoverage::kNoProof);
  EXPECT_EQ(store.nsec_count(zone), 1u);
}

TEST(SharedProofStore, ExactNameProvesTypeAbsentOnly) {
  SharedProofStore store;
  const dns::Name zone = name_of("example.com");
  store.store_nsec(zone, name_of("alpha.example.com"),
                   {name_of("delta.example.com"),
                    {dns::RRType::kA},
                    1'000'000'000,
                    0});
  EXPECT_EQ(store.check_nsec(zone, name_of("alpha.example.com"),
                             dns::RRType::kAaaa, 0, 0),
            NsecCoverage::kTypeAbsent);
  EXPECT_EQ(store.check_nsec(zone, name_of("alpha.example.com"),
                             dns::RRType::kA, 0, 0),
            NsecCoverage::kNoProof);
}

TEST(SharedProofStore, WraparoundSpanCoversPastLastOwner) {
  SharedProofStore store;
  const dns::Name zone = name_of("example.com");
  // Last NSEC in a chain points back to the apex: covers everything after
  // the owner.
  store.store_nsec(zone, name_of("zebra.example.com"),
                   {zone, {dns::RRType::kA}, 1'000'000'000, 0});
  EXPECT_EQ(store.check_nsec(zone, name_of("zzz.example.com"),
                             dns::RRType::kA, 0, 0),
            NsecCoverage::kNameCovered);
}

TEST(SharedProofStore, ExpiredProofsAreSkippedNotServed) {
  SharedProofStore store;
  const dns::Name zone = name_of("example.com");
  store.store_nsec(zone, name_of("alpha.example.com"),
                   {name_of("omega.example.com"), {}, /*expires_us=*/100, 0});
  EXPECT_EQ(store.check_nsec(zone, name_of("bravo.example.com"),
                             dns::RRType::kA, /*now_us=*/50, 0),
            NsecCoverage::kNameCovered);
  EXPECT_EQ(store.check_nsec(zone, name_of("bravo.example.com"),
                             dns::RRType::kA, /*now_us=*/200, 0),
            NsecCoverage::kNoProof);
  // The read path never reclaims (shared lock); purge does.
  EXPECT_EQ(store.nsec_count(zone), 1u);
  EXPECT_EQ(store.purge_expired(200), 1u);
  EXPECT_EQ(store.nsec_count(zone), 0u);
}

TEST(SharedProofStore, SiblingHitsAreAttributedCrossShard) {
  SharedProofStore store;
  const dns::Name zone = name_of("example.com");
  store.store_nsec(zone, name_of("alpha.example.com"),
                   {name_of("omega.example.com"),
                    {},
                    1'000'000'000,
                    /*shard=*/2});
  bool cross_shard = false;
  EXPECT_EQ(store.check_nsec(zone, name_of("m.example.com"), dns::RRType::kA,
                             0, /*probing_shard=*/2, nullptr, &cross_shard),
            NsecCoverage::kNameCovered);
  EXPECT_FALSE(cross_shard);
  EXPECT_EQ(store.check_nsec(zone, name_of("m.example.com"), dns::RRType::kA,
                             0, /*probing_shard=*/0, nullptr, &cross_shard),
            NsecCoverage::kNameCovered);
  EXPECT_TRUE(cross_shard);

  store.store_zone_cut(name_of("sub.example.com"), 1'000'000'000, /*shard=*/1);
  EXPECT_TRUE(store.has_zone_cut(name_of("sub.example.com"), 0, 1));
  EXPECT_TRUE(store.has_zone_cut(name_of("sub.example.com"), 0, 3));
  EXPECT_FALSE(store.has_zone_cut(name_of("other.example.com"), 0, 3));

  const SharedProofStore::Stats stats = store.stats();
  EXPECT_EQ(stats.nsec_hits, 2u);
  EXPECT_EQ(stats.nsec_sibling_hits, 1u);
  EXPECT_EQ(stats.cut_hits, 2u);
  EXPECT_EQ(stats.cut_sibling_hits, 1u);
}

TEST(SharedProofStore, StripeCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SharedProofStore({1}).stripe_count(), 1u);
  EXPECT_EQ(SharedProofStore({3}).stripe_count(), 4u);
  EXPECT_EQ(SharedProofStore({16}).stripe_count(), 16u);
  EXPECT_EQ(SharedProofStore({17}).stripe_count(), 32u);
}

// The TSan target: hammer one store from many threads, spanning every
// stripe, with concurrent readers on the same zones the writers mutate.
TEST(SharedProofStore, SurvivesConcurrentStoreAndCheck) {
  SharedProofStore store({4});
  constexpr int kThreads = 8;
  constexpr int kZonesPerThread = 16;
  constexpr int kRounds = 50;
  std::atomic<std::uint64_t> covered{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &covered, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int z = 0; z < kZonesPerThread; ++z) {
          // Writers and readers collide on the shared zone set; each
          // thread also owns a private zone so both contended and
          // uncontended paths run.
          const std::string zone_text =
              "zone" + std::to_string(z) + ".example";
          const dns::Name zone = name_of(zone_text);
          store.store_nsec(zone, name_of("a." + zone_text),
                           {name_of("m." + zone_text),
                            {dns::RRType::kA},
                            1'000'000'000,
                            static_cast<std::uint32_t>(t)});
          store.store_zone_cut(zone, 1'000'000'000,
                               static_cast<std::uint32_t>(t));
          if (store.check_nsec(zone, name_of("b." + zone_text),
                               dns::RRType::kA, 0,
                               static_cast<std::uint32_t>(t)) ==
              NsecCoverage::kNameCovered) {
            covered.fetch_add(1, std::memory_order_relaxed);
          }
          (void)store.has_zone_cut(zone, 0, static_cast<std::uint32_t>(t));
          (void)store.nsec_count(zone);
          // Verdict entries share the same stripes: writers and readers
          // collide on a small key set spanning every stripe.
          const std::uint64_t vkey =
              static_cast<std::uint64_t>(z) * 7919u + 13u;
          store.store_verdict(vkey, /*valid=*/(z & 1) == 0, 1'000'000'000,
                              static_cast<std::uint32_t>(t));
          (void)store.check_verdict(vkey, 0, static_cast<std::uint32_t>(t));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every check after the first store of its zone must have hit.
  EXPECT_GT(covered.load(), 0u);
  const SharedProofStore::Stats stats = store.stats();
  EXPECT_EQ(stats.nsec_stores,
            static_cast<std::uint64_t>(kThreads) * kZonesPerThread * kRounds);
  EXPECT_EQ(stats.nsec_hits, covered.load());
  for (int z = 0; z < kZonesPerThread; ++z) {
    EXPECT_EQ(store.nsec_count(name_of("zone" + std::to_string(z) +
                                       ".example")),
              1u);
  }
}

// -- ResolverCache + shared store ---------------------------------------------

TEST(ShardCache, PositiveCacheStaysPrivateButNsecCrossesShards) {
  sim::SimClock clock_a;
  sim::SimClock clock_b;
  ResolverCache cache_a(clock_a);
  ResolverCache cache_b(clock_b);
  SharedProofStore store;
  cache_a.attach_shared(&store, 0);
  cache_b.attach_shared(&store, 1);

  // Positive answers are shard-private: B never sees A's RRset.
  const dns::Name host = name_of("www.example.com");
  dns::RRset rrset(host, dns::RRType::kA);
  rrset.add(dns::ResourceRecord::make(host, 3600, dns::ARdata{0x7F000001}));
  cache_a.store(rrset, /*validated=*/true);
  EXPECT_NE(cache_a.find(host, dns::RRType::kA), nullptr);
  EXPECT_EQ(cache_b.find(host, dns::RRType::kA), nullptr);

  // Validated NSEC spans write through: B proves the denial A validated.
  const dns::Name zone = name_of("example.com");
  cache_a.store_nsec(zone, nsec_span("alpha.example.com",
                                     "omega.example.com"));
  EXPECT_EQ(nsec_check(cache_b, zone, name_of("m.example.com"),
                               dns::RRType::kA),
            NsecCoverage::kNameCovered);
  EXPECT_EQ(store.stats().nsec_sibling_hits, 1u);
  // Both shards report the shared chain size (attribution invariance).
  EXPECT_EQ(cache_a.nsec_count(zone), cache_b.nsec_count(zone));

  // Zone cuts write through too.
  cache_a.store_zone_cut(name_of("sub.example.com"), 3600);
  EXPECT_EQ(cache_b.deepest_known_cut(name_of("www.sub.example.com")),
            name_of("sub.example.com"));
}

TEST(ShardCache, DetachedCacheKeepsPrivateSemantics) {
  sim::SimClock clock;
  ResolverCache cache(clock);
  const dns::Name zone = name_of("example.com");
  cache.store_nsec(zone, nsec_span("alpha.example.com", "omega.example.com"));
  EXPECT_EQ(nsec_check(cache, zone, name_of("m.example.com"), dns::RRType::kA),
            NsecCoverage::kNameCovered);
  EXPECT_EQ(cache.nsec_count(zone), 1u);
}

// -- ShardedServeScenario -----------------------------------------------------

serve::ScenarioOptions small_mix() {
  serve::ScenarioOptions options;
  options.universe_size = 2'000;
  options.seed = 7;
  options.mix.clients = 4;
  options.mix.queries_per_client = 20;
  options.mix.seed = 23;
  options.mix.zipf_support = 300;
  options.mix.mean_gap_us = 25'000ULL * 4;
  return options;
}

serve::ScenarioSummary sequential_reference() {
  serve::ServeScenario reference(small_mix());
  return reference.run_sequential_reference();
}

ShardedSummary run_sharded(std::uint32_t shards, bool shared) {
  ShardedOptions options;
  options.base = small_mix();
  options.shards = shards;
  options.shared_store = shared;
  ShardedServeScenario scenario(std::move(options));
  return scenario.run();
}

TEST(ShardedServe, SharedStoreLeaksExactlyTheReferenceForAnyShardCount) {
  const serve::ScenarioSummary reference = sequential_reference();
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const ShardedSummary result = run_sharded(shards, /*shared=*/true);
    EXPECT_EQ(result.merged.case2_total, reference.case2_total)
        << "shards=" << shards;
    EXPECT_EQ(result.merged.leaked_domains, reference.leaked_domains)
        << "shards=" << shards;
    EXPECT_TRUE(result.sums_consistent) << "shards=" << shards;
    EXPECT_EQ(result.shards.size(), shards);
  }
}

TEST(ShardedServe, PrivateModeReLeaksAndSharedStoreStrictlyReduces) {
  const serve::ScenarioSummary reference = sequential_reference();
  const ShardedSummary priv = run_sharded(4, /*shared=*/false);
  const ShardedSummary shared = run_sharded(4, /*shared=*/true);

  // Shard-private caches must re-prove sibling spans: strictly more leaks.
  EXPECT_GT(priv.merged.case2_total, reference.case2_total);
  // And the striped store must win them back — all of them.
  EXPECT_LT(shared.merged.case2_total, priv.merged.case2_total);
  EXPECT_EQ(shared.merged.case2_total, reference.case2_total);
  // The suppression shows up as cross-shard hits in the store stats.
  EXPECT_GT(shared.store.nsec_sibling_hits + shared.store.cut_sibling_hits,
            0u);
  EXPECT_TRUE(priv.sums_consistent);
}

TEST(ShardedServe, MergedCountsTileAcrossShards) {
  const ShardedSummary result = run_sharded(4, /*shared=*/true);
  std::uint64_t served = 0;
  std::uint64_t case2 = 0;
  std::uint64_t routed_clients = 0;
  std::set<std::string> leaked_union;
  for (const serve::ShardReport& report : result.shards) {
    served += report.summary.served;
    case2 += report.summary.case2_total;
    routed_clients += report.clients_routed;
    leaked_union.insert(report.summary.leaked_domains.begin(),
                        report.summary.leaked_domains.end());
  }
  EXPECT_EQ(served, result.merged.served);
  EXPECT_EQ(case2, result.merged.case2_total);
  EXPECT_EQ(leaked_union, result.merged.leaked_domains);
  // Client routing partitions the population: each client on one shard.
  EXPECT_EQ(routed_clients, 4u);
  std::uint64_t per_client = 0;
  for (const std::uint64_t count : result.merged.case2_per_client) {
    per_client += count;
  }
  EXPECT_EQ(per_client, result.merged.case2_total);
}

TEST(ShardedServe, RunIsDeterministicAcrossWorkerCounts) {
  // Same shards, different worker-thread counts: identical virtual output.
  ShardedOptions serial;
  serial.base = small_mix();
  serial.shards = 4;
  serial.jobs = 1;
  ShardedServeScenario one(std::move(serial));
  const ShardedSummary a = one.run();

  ShardedOptions parallel;
  parallel.base = small_mix();
  parallel.shards = 4;
  parallel.jobs = 4;
  ShardedServeScenario four(std::move(parallel));
  const ShardedSummary b = four.run();

  EXPECT_EQ(a.merged.case2_total, b.merged.case2_total);
  EXPECT_EQ(a.merged.leaked_domains, b.merged.leaked_domains);
  EXPECT_EQ(a.merged.served, b.merged.served);
  EXPECT_EQ(a.merged.coalesce_hits, b.merged.coalesce_hits);
  EXPECT_DOUBLE_EQ(a.merged.qps, b.merged.qps);
  EXPECT_DOUBLE_EQ(a.merged.p99_ms, b.merged.p99_ms);
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].summary.case2_total, b.shards[s].summary.case2_total)
        << "shard " << s;
    EXPECT_EQ(a.shards[s].queries_routed, b.shards[s].queries_routed)
        << "shard " << s;
  }
}

TEST(ShardedServe, QnameRoutingPreservesSharedModeIdentityToo) {
  const serve::ScenarioSummary reference = sequential_reference();
  ShardedOptions options;
  options.base = small_mix();
  options.shards = 4;
  options.route = ShardRoute::kQname;
  options.shared_store = true;
  ShardedServeScenario scenario(std::move(options));
  const ShardedSummary result = scenario.run();
  EXPECT_EQ(result.merged.case2_total, reference.case2_total);
  EXPECT_EQ(result.merged.leaked_domains, reference.leaked_domains);
  EXPECT_TRUE(result.sums_consistent);
}

TEST(ShardedServe, ParseRouteRoundTrips) {
  EXPECT_EQ(serve::parse_route("client"), ShardRoute::kClient);
  EXPECT_EQ(serve::parse_route("qname"), ShardRoute::kQname);
  EXPECT_FALSE(serve::parse_route("bogus").has_value());
  EXPECT_STREQ(serve::route_name(ShardRoute::kClient), "client");
  EXPECT_STREQ(serve::route_name(ShardRoute::kQname), "qname");
}

}  // namespace
}  // namespace lookaside
