// LeakLedger tests: cause attribution for every way a Case-2 query can
// escape the resolver's negative cache (cold-miss, ttl-expiry, eviction,
// nsec-gap), the ledger==registry identity, chain completeness against the
// reconstructed span timeline, and the shard-merge determinism the bench
// drivers rely on.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "core/experiment.h"
#include "obs/leak_ledger.h"
#include "obs/metrics_registry.h"
#include "obs/span_timeline.h"
#include "obs/tracer.h"

namespace lookaside {
namespace {

/// A traced top-N experiment with a ledger and a timeline listening.
struct TracedRun {
  obs::Tracer tracer;
  std::shared_ptr<obs::LeakLedger> ledger;
  std::shared_ptr<obs::TimelineSink> timeline;
  std::unique_ptr<core::UniverseExperiment> experiment;

  explicit TracedRun(std::uint64_t cap_bytes = 0)
      : ledger(std::make_shared<obs::LeakLedger>()),
        timeline(std::make_shared<obs::TimelineSink>()) {
    tracer.add_sink(ledger);
    tracer.add_sink(timeline);
    core::UniverseExperiment::Options options;
    options.universe_size = 5'000;
    options.resolver_config.max_cache_bytes = cap_bytes;
    options.ns_fetch_probability = 0.0;
    options.tracer = &tracer;
    experiment = std::make_unique<core::UniverseExperiment>(options);
  }

  void visit_top(std::uint64_t n) {
    for (std::uint64_t rank = 1; rank <= n; ++rank) {
      (void)experiment->stub().visit(
          experiment->world().universe().domain_at(rank));
    }
  }
};

TEST(LeakLedgerTest, LedgerEqualsRegistryAndEveryRecordHasACause) {
  TracedRun run;
  run.visit_top(40);

  const core::LeakageReport report = run.experiment->analyzer().report();
  EXPECT_GT(report.case2_queries, 0u);
  EXPECT_EQ(run.ledger->case2_total(), report.case2_queries);

  const std::set<std::string> known = {"cold-miss", "ttl-expiry", "eviction",
                                       "nsec-gap"};
  std::uint64_t cause_sum = 0;
  for (const auto& [cause, count] : run.ledger->cause_totals()) {
    EXPECT_TRUE(known.count(cause) == 1) << "unknown cause " << cause;
    cause_sum += count;
  }
  EXPECT_EQ(cause_sum, run.ledger->case2_total());
  for (const obs::LeakRecord& record : run.ledger->records()) {
    EXPECT_NE(record.query_id, 0u);
    EXPECT_FALSE(record.domain.empty());
    EXPECT_EQ(record.vantage.rfind("dlv:", 0), 0u) << record.vantage;
  }
}

TEST(LeakLedgerTest, FirstContactIsColdMissLaterGapsAreNsecGaps) {
  TracedRun run;
  run.visit_top(10);
  ASSERT_FALSE(run.ledger->records().empty());
  // The very first Case-2 query hits an empty NSEC cache; once the apex
  // has any cached chain, an uncovered name is a gap, not a cold miss.
  EXPECT_EQ(run.ledger->records().front().cause, "cold-miss");
  const auto& causes = run.ledger->cause_totals();
  EXPECT_EQ(causes.at("cold-miss"), 1u);
  ASSERT_TRUE(causes.count("nsec-gap") == 1);
  EXPECT_GT(causes.at("nsec-gap"), 0u);
}

TEST(LeakLedgerTest, ExpiredDenialProofIsTaggedTtlExpiry) {
  TracedRun run;
  run.visit_top(5);
  const std::uint64_t before = run.ledger->case2_total();
  EXPECT_GT(before, 0u);
  ASSERT_EQ(run.ledger->cause_totals().count("ttl-expiry"), 0u);

  // Let every cached denial proof (3600 s registry TTL) age out, then
  // rebrowse: each re-leak must be attributed to the expiry, not to a gap.
  run.experiment->clock().advance_seconds(4'000);
  run.visit_top(5);
  EXPECT_GT(run.ledger->case2_total(), before);
  ASSERT_EQ(run.ledger->cause_totals().count("ttl-expiry"), 1u);
  EXPECT_GT(run.ledger->cause_totals().at("ttl-expiry"), 0u);
}

TEST(LeakLedgerTest, EvictedDenialProofIsTaggedEviction) {
  // A starved byte cap churns NSEC proofs out while their TTLs are still
  // live; the re-leak is the eviction's fault and must say so.
  TracedRun run(/*cap_bytes=*/8 * 1024);
  run.visit_top(60);
  run.visit_top(60);
  ASSERT_EQ(run.ledger->cause_totals().count("eviction"), 1u);
  EXPECT_GT(run.ledger->cause_totals().at("eviction"), 0u);
}

TEST(LeakLedgerTest, EveryRecordChainsToACompleteSpan) {
  TracedRun run;
  run.visit_top(25);
  EXPECT_GT(run.ledger->case2_total(), 0u);
  EXPECT_EQ(obs::broken_leak_chains(run.timeline->timeline(),
                                    run.ledger->records()),
            0u);
}

TEST(LeakLedgerTest, ShardMergeMatchesSequentialLedger) {
  // Two shards merged in index order must equal one ledger that saw both
  // event streams back to back — the cross-jobs determinism contract.
  TracedRun shard_a;
  shard_a.visit_top(12);
  TracedRun shard_b;
  shard_b.visit_top(12);

  obs::LeakLedger merged;
  merged.merge_from(*shard_a.ledger);
  merged.merge_from(*shard_b.ledger);
  EXPECT_EQ(merged.case2_total(),
            shard_a.ledger->case2_total() + shard_b.ledger->case2_total());
  EXPECT_EQ(merged.case1_total(),
            shard_a.ledger->case1_total() + shard_b.ledger->case1_total());

  std::ostringstream merged_jsonl;
  merged.write_jsonl(merged_jsonl);
  std::ostringstream sequential;
  shard_a.ledger->write_jsonl(sequential);
  shard_b.ledger->write_jsonl(sequential);
  EXPECT_EQ(merged_jsonl.str(), sequential.str());

  obs::MetricsRegistry registry;
  merged.export_to(registry);
  std::uint64_t exported_case2 = 0;
  for (const auto& [cause, count] : merged.cause_totals()) {
    exported_case2 +=
        static_cast<std::uint64_t>(registry.value("ledger_case2",
                                                  {{"cause", cause}}));
  }
  EXPECT_EQ(exported_case2, merged.case2_total());
}

}  // namespace
}  // namespace lookaside
