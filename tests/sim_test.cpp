// Unit tests for the simulation fabric: clock, latency model, network
// accounting, packet capture, failure injection and latency overrides.
#include <gtest/gtest.h>

#include "dns/codec.h"
#include "sim/network.h"

namespace lookaside::sim {
namespace {

/// Echo endpoint answering every query with an empty NOERROR response.
class EchoServer : public Endpoint {
 public:
  explicit EchoServer(std::string id, std::uint64_t latency_override = 0)
      : id_(std::move(id)), latency_override_(latency_override) {}

  [[nodiscard]] std::string endpoint_id() const override { return id_; }

  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override {
    ++handled_;
    return dns::Message::make_response(query);
  }

  [[nodiscard]] std::uint64_t latency_override_us(
      const dns::Message&) const override {
    return latency_override_;
  }

  int handled_ = 0;

 private:
  std::string id_;
  std::uint64_t latency_override_;
};

dns::Message sample_query(const std::string& name = "example.com",
                          dns::RRType type = dns::RRType::kA) {
  return dns::Message::make_query(1, dns::Name::parse(name), type, false,
                                  false);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.advance_us(1500);
  EXPECT_EQ(clock.now_us(), 1500u);
  clock.advance_seconds(2.5);
  EXPECT_EQ(clock.now_us(), 1500u + 2'500'000u);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 2.5015);
}

TEST(LatencyModelTest, WellKnownEndpoints) {
  LatencyModel model;
  EXPECT_EQ(model.one_way_us("root"), 30'000u);
  EXPECT_EQ(model.one_way_us("tld:com"), 25'000u);
  EXPECT_EQ(model.one_way_us("dlv:dlv.isc.org"), 40'000u);
  EXPECT_EQ(model.one_way_us("recursive"), 1'000u);
}

TEST(LatencyModelTest, HashedDefaultsInBand) {
  LatencyModel model;
  for (const char* id : {"auth:a.com", "auth:b.net", "auth:zzz.org"}) {
    const std::uint64_t latency = model.one_way_us(id);
    EXPECT_GE(latency, 10'000u);
    EXPECT_LE(latency, 80'000u);
    EXPECT_EQ(latency, model.one_way_us(id));  // deterministic
  }
}

TEST(LatencyModelTest, OverrideWins) {
  LatencyModel model;
  model.set_latency_us("root", 5'000);
  EXPECT_EQ(model.one_way_us("root"), 5'000u);
}

TEST(NetworkTest, ExchangeAdvancesClockByRoundTrip) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  const auto response = network.exchange("stub", server, sample_query());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(clock.now_us(), 60'000u);  // 2 x 30 ms
  EXPECT_EQ(server.handled_, 1);
}

TEST(NetworkTest, LatencyOverrideUsedWhenNonZero) {
  SimClock clock;
  Network network(clock);
  EchoServer server("anything", 7'000);
  (void)network.exchange("stub", server, sample_query());
  EXPECT_EQ(clock.now_us(), 14'000u);
}

TEST(NetworkTest, CountsQueriesBytesAndTypes) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  (void)network.exchange("stub", server, sample_query("a.com", dns::RRType::kA));
  (void)network.exchange("stub", server,
                         sample_query("b.com", dns::RRType::kDlv));
  const auto& counters = network.counters();
  EXPECT_EQ(counters.value("packets.query"), 2u);
  EXPECT_EQ(counters.value("packets.response"), 2u);
  EXPECT_EQ(counters.value("query.A"), 1u);
  EXPECT_EQ(counters.value("query.DLV"), 1u);
  EXPECT_EQ(counters.value("dest.root.queries"), 2u);
  EXPECT_EQ(counters.value("rcode.NOERROR"), 2u);
  EXPECT_GT(counters.value("bytes.query"), 0u);
  EXPECT_EQ(counters.value("bytes.total"),
            counters.value("bytes.query") + counters.value("bytes.response"));
}

TEST(NetworkTest, ByteAccountingMatchesWireSize) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  const dns::Message query = sample_query();
  (void)network.exchange("stub", server, query);
  EXPECT_EQ(network.counters().value("bytes.query"), dns::wire_size(query));
}

TEST(NetworkTest, CaptureRecordsBothDirections) {
  SimClock clock;
  Network network(clock);
  network.set_capture_enabled(true);
  EchoServer server("root");
  (void)network.exchange("stub", server, sample_query("x.org"));
  ASSERT_EQ(network.capture().size(), 2u);
  EXPECT_TRUE(network.capture()[0].is_query);
  EXPECT_EQ(network.capture()[0].from, "stub");
  EXPECT_EQ(network.capture()[0].to, "root");
  EXPECT_EQ(network.capture()[0].qname, dns::Name::parse("x.org"));
  EXPECT_FALSE(network.capture()[1].is_query);
  EXPECT_EQ(network.capture()[1].from, "root");
  network.clear_capture();
  EXPECT_TRUE(network.capture().empty());
}

TEST(NetworkTest, ObserverFiresWithoutCapture) {
  SimClock clock;
  Network network(clock);
  int observed = 0;
  network.set_observer([&observed](const PacketRecord&) { ++observed; });
  EchoServer server("root");
  (void)network.exchange("stub", server, sample_query());
  EXPECT_EQ(observed, 2);
  EXPECT_TRUE(network.capture().empty());  // storage stayed off
}

TEST(NetworkTest, UnreachableServerTimesOut) {
  SimClock clock;
  Network network(clock);
  network.set_timeout_us(2'000'000);
  EchoServer server("dead");
  network.set_unreachable("dead", true);
  const auto response = network.exchange("stub", server, sample_query());
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(clock.now_us(), 2'000'000u);
  EXPECT_EQ(network.counters().value("timeouts"), 1u);
  EXPECT_EQ(server.handled_, 0);

  network.set_unreachable("dead", false);
  EXPECT_TRUE(network.exchange("stub", server, sample_query()).has_value());
}

}  // namespace
}  // namespace lookaside::sim
