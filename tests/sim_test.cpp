// Unit tests for the simulation fabric: clock, latency model, network
// accounting, packet capture, failure injection and latency overrides.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "dns/codec.h"
#include "sim/network.h"

namespace lookaside::sim {
namespace {

/// Echo endpoint answering every query with an empty NOERROR response.
class EchoServer : public Endpoint {
 public:
  explicit EchoServer(std::string id, std::uint64_t latency_override = 0)
      : id_(std::move(id)), latency_override_(latency_override) {}

  [[nodiscard]] std::string endpoint_id() const override { return id_; }

  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override {
    ++handled_;
    return dns::Message::make_response(query);
  }

  [[nodiscard]] std::uint64_t latency_override_us(
      const dns::Message&) const override {
    return latency_override_;
  }

  int handled_ = 0;

 private:
  std::string id_;
  std::uint64_t latency_override_;
};

dns::Message sample_query(const std::string& name = "example.com",
                          dns::RRType type = dns::RRType::kA) {
  return dns::Message::make_query(1, dns::Name::parse(name), type, false,
                                  false);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_us(), 0u);
  clock.advance_us(1500);
  EXPECT_EQ(clock.now_us(), 1500u);
  clock.advance_seconds(2.5);
  EXPECT_EQ(clock.now_us(), 1500u + 2'500'000u);
  EXPECT_DOUBLE_EQ(clock.now_seconds(), 2.5015);
}

TEST(LatencyModelTest, WellKnownEndpoints) {
  LatencyModel model;
  EXPECT_EQ(model.one_way_us("root"), 30'000u);
  EXPECT_EQ(model.one_way_us("tld:com"), 25'000u);
  EXPECT_EQ(model.one_way_us("dlv:dlv.isc.org"), 40'000u);
  EXPECT_EQ(model.one_way_us("recursive"), 1'000u);
}

TEST(LatencyModelTest, HashedDefaultsInBand) {
  LatencyModel model;
  for (const char* id : {"auth:a.com", "auth:b.net", "auth:zzz.org"}) {
    const std::uint64_t latency = model.one_way_us(id);
    EXPECT_GE(latency, 10'000u);
    EXPECT_LE(latency, 80'000u);
    EXPECT_EQ(latency, model.one_way_us(id));  // deterministic
  }
}

TEST(LatencyModelTest, OverrideWins) {
  LatencyModel model;
  model.set_latency_us("root", 5'000);
  EXPECT_EQ(model.one_way_us("root"), 5'000u);
}

TEST(NetworkTest, ExchangeAdvancesClockByRoundTrip) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  const auto response = network.exchange("stub", server, sample_query());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(clock.now_us(), 60'000u);  // 2 x 30 ms
  EXPECT_EQ(server.handled_, 1);
}

TEST(NetworkTest, LatencyOverrideUsedWhenNonZero) {
  SimClock clock;
  Network network(clock);
  EchoServer server("anything", 7'000);
  (void)network.exchange("stub", server, sample_query());
  EXPECT_EQ(clock.now_us(), 14'000u);
}

TEST(NetworkTest, CountsQueriesBytesAndTypes) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  (void)network.exchange("stub", server, sample_query("a.com", dns::RRType::kA));
  (void)network.exchange("stub", server,
                         sample_query("b.com", dns::RRType::kDlv));
  const auto& counters = network.counters();
  EXPECT_EQ(counters.value("packets.query"), 2u);
  EXPECT_EQ(counters.value("packets.response"), 2u);
  EXPECT_EQ(counters.value("query.A"), 1u);
  EXPECT_EQ(counters.value("query.DLV"), 1u);
  EXPECT_EQ(counters.value("dest.root.queries"), 2u);
  EXPECT_EQ(counters.value("rcode.NOERROR"), 2u);
  EXPECT_GT(counters.value("bytes.query"), 0u);
  EXPECT_EQ(counters.value("bytes.total"),
            counters.value("bytes.query") + counters.value("bytes.response"));
}

TEST(NetworkTest, ByteAccountingMatchesWireSize) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  const dns::Message query = sample_query();
  (void)network.exchange("stub", server, query);
  EXPECT_EQ(network.counters().value("bytes.query"), dns::wire_size(query));
}

TEST(NetworkTest, CaptureRecordsBothDirections) {
  SimClock clock;
  Network network(clock);
  network.set_capture_enabled(true);
  EchoServer server("root");
  (void)network.exchange("stub", server, sample_query("x.org"));
  ASSERT_EQ(network.capture().size(), 2u);
  EXPECT_TRUE(network.capture()[0].is_query);
  EXPECT_EQ(network.capture()[0].from, "stub");
  EXPECT_EQ(network.capture()[0].to, "root");
  EXPECT_EQ(network.capture()[0].qname, dns::Name::parse("x.org"));
  EXPECT_FALSE(network.capture()[1].is_query);
  EXPECT_EQ(network.capture()[1].from, "root");
  network.clear_capture();
  EXPECT_TRUE(network.capture().empty());
}

TEST(NetworkTest, ObserverFiresWithoutCapture) {
  SimClock clock;
  Network network(clock);
  int observed = 0;
  network.set_observer([&observed](const PacketRecord&) { ++observed; });
  EchoServer server("root");
  (void)network.exchange("stub", server, sample_query());
  EXPECT_EQ(observed, 2);
  EXPECT_TRUE(network.capture().empty());  // storage stayed off
}

TEST(NetworkTest, UnreachableServerTimesOut) {
  SimClock clock;
  Network network(clock);
  network.set_timeout_us(2'000'000);
  EchoServer server("dead");
  network.set_unreachable("dead", true);
  const auto response = network.exchange("stub", server, sample_query());
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(clock.now_us(), 2'000'000u);
  EXPECT_EQ(network.counters().value("timeouts"), 1u);
  EXPECT_EQ(server.handled_, 0);

  network.set_unreachable("dead", false);
  EXPECT_TRUE(network.exchange("stub", server, sample_query()).has_value());
}

// ---------------------------------------------------------------------------
// Fault injection (§8.4 chaos layer)
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, UnreachableIsDegenerateFaultPlanEntry) {
  SimClock clock;
  Network network(clock);
  EchoServer server("dead");
  network.set_unreachable("dead", true);
  std::vector<std::string> causes;
  network.add_fault_observer(
      [&causes](const FaultNotice& notice) { causes.push_back(notice.cause); });
  EXPECT_FALSE(network.exchange("stub", server, sample_query()).has_value());
  // One failure path: the unreachable set feeds the same accounting as a
  // 100%-loss fault spec.
  EXPECT_EQ(network.counters().value("faults.dropped"), 1u);
  EXPECT_EQ(network.counters().value("timeouts"), 1u);
  EXPECT_EQ(network.counters().value("timeouts.partial"), 0u);
  ASSERT_EQ(causes.size(), 1u);
  EXPECT_EQ(causes[0], "unreachable");
  EXPECT_TRUE(network.fault_injector().is_unreachable("dead"));
}

TEST(FaultInjectionTest, PerCallTimeoutOverridesNetworkDefault) {
  SimClock clock;
  Network network(clock);
  EchoServer server("dead");
  network.set_unreachable("dead", true);
  const auto response =
      network.exchange("stub", server, sample_query(), 300'000);
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(clock.now_us(), 300'000u);  // caller's RTO, not the 5 s default
}

TEST(FaultInjectionTest, QueryLegLossNeverReachesServer) {
  SimClock clock;
  Network network(clock);
  EchoServer server("flaky");
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "flaky";
  spec.loss = 1.0;
  plan.add(spec);
  network.set_fault_plan(plan);
  EXPECT_FALSE(network.exchange("stub", server, sample_query()).has_value());
  EXPECT_EQ(server.handled_, 0);
  EXPECT_EQ(network.counters().value("faults.dropped"), 1u);
  EXPECT_EQ(network.counters().value("timeouts.partial"), 0u);
}

TEST(FaultInjectionTest, ResponseLegLossIsPartialTimeout) {
  SimClock clock;
  Network network(clock);
  EchoServer server("flaky");
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "flaky";
  spec.response_loss = 1.0;
  plan.add(spec);
  network.set_fault_plan(plan);
  EXPECT_FALSE(network.exchange("stub", server, sample_query()).has_value());
  // The server observed the query — the privacy leak still happened — but
  // the resolver sees only a timeout.
  EXPECT_EQ(server.handled_, 1);
  EXPECT_EQ(network.counters().value("timeouts"), 1u);
  EXPECT_EQ(network.counters().value("timeouts.partial"), 1u);
}

TEST(FaultInjectionTest, OutageWindowIsKeyedOnVirtualTime) {
  SimClock clock;
  Network network(clock);
  EchoServer server("windowed");
  network.latency().set_latency_us("windowed", 5'000);  // 10 ms round trip
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "windowed";
  spec.outage_start_us = 100'000;
  spec.outage_end_us = 200'000;
  plan.add(spec);
  network.set_fault_plan(plan);

  // Before the window: fine (no randomness involved at all).
  EXPECT_TRUE(network.exchange("stub", server, sample_query()).has_value());
  clock.advance_us(150'000 - clock.now_us());
  // Inside [start, end): dropped deterministically.
  EXPECT_FALSE(
      network.exchange("stub", server, sample_query(), 10'000).has_value());
  clock.advance_us(200'000 - clock.now_us());
  // At end: the window is half-open, so the exchange goes through.
  EXPECT_TRUE(network.exchange("stub", server, sample_query()).has_value());
}

TEST(FaultInjectionTest, MangleRewritesRcodeAndEmptiesSections) {
  SimClock clock;
  Network network(clock);
  EchoServer server("evil");
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "evil";
  spec.mangle = 1.0;
  spec.mangle_rcode = dns::RCode::kRefused;
  plan.add(spec);
  network.set_fault_plan(plan);
  const auto response = network.exchange("stub", server, sample_query());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.rcode, dns::RCode::kRefused);
  EXPECT_TRUE(response->answers.empty());
  EXPECT_EQ(network.counters().value("faults.mangled"), 1u);
  EXPECT_EQ(network.counters().value("rcode.REFUSED"), 1u);
}

TEST(FaultInjectionTest, TruncationSetsTcAndEmptiesSections) {
  SimClock clock;
  Network network(clock);
  EchoServer server("small");
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "small";
  spec.truncate = 1.0;
  plan.add(spec);
  network.set_fault_plan(plan);
  const auto response = network.exchange("stub", server, sample_query());
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->header.tc);
  EXPECT_TRUE(response->answers.empty());
  EXPECT_EQ(network.counters().value("faults.truncated"), 1u);
}

TEST(FaultInjectionTest, LatencySpikeAddsToRoundTrip) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");  // 2 x 30 ms base round trip
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "root";
  spec.spike_probability = 1.0;
  spec.spike_us = 10'000;
  plan.add(spec);
  network.set_fault_plan(plan);
  const auto response = network.exchange("stub", server, sample_query());
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(clock.now_us(), 70'000u);
  EXPECT_EQ(network.counters().value("faults.latency_spikes"), 1u);
}

TEST(FaultInjectionTest, SpikePastTimeoutBecomesPartialTimeout) {
  SimClock clock;
  Network network(clock);
  EchoServer server("root");
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "root";
  spec.spike_probability = 1.0;
  spec.spike_us = 10'000'000;  // way past the 5 s default timeout
  plan.add(spec);
  network.set_fault_plan(plan);
  EXPECT_FALSE(network.exchange("stub", server, sample_query()).has_value());
  EXPECT_EQ(server.handled_, 1);  // the server answered; the answer was late
  EXPECT_EQ(network.counters().value("timeouts.partial"), 1u);
}

TEST(FaultInjectionTest, RrsigCorruptionFlipsSignatureBytes) {
  class SignedServer : public Endpoint {
   public:
    [[nodiscard]] std::string endpoint_id() const override { return "signed"; }
    [[nodiscard]] dns::Message handle_query(
        const dns::Message& query) override {
      dns::Message response = dns::Message::make_response(query);
      dns::ResourceRecord sig;
      sig.name = query.question().name;
      sig.type = dns::RRType::kRrsig;
      dns::RrsigRdata rdata;
      rdata.signature = {0xAA, 0xBB};
      sig.rdata = rdata;
      response.answers.push_back(std::move(sig));
      return response;
    }
  };
  SimClock clock;
  Network network(clock);
  SignedServer server;
  FaultPlan plan;
  FaultSpec spec;
  spec.endpoint = "signed";
  spec.rrsig_corrupt = 1.0;
  plan.add(spec);
  network.set_fault_plan(plan);
  const auto response = network.exchange("stub", server, sample_query());
  ASSERT_TRUE(response.has_value());
  const auto* rrsig =
      std::get_if<dns::RrsigRdata>(&response->answers.front().rdata);
  ASSERT_NE(rrsig, nullptr);
  EXPECT_EQ(rrsig->signature[0], 0xAA ^ 0xFF);  // first byte flipped
  EXPECT_EQ(network.counters().value("faults.rrsig_corrupted"), 1u);
}

TEST(FaultInjectionTest, SeededLossIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    SimClock clock;
    Network network(clock);
    EchoServer server("flaky");
    FaultPlan plan;
    plan.seed = seed;
    FaultSpec spec;
    spec.endpoint = "flaky";
    spec.loss = 0.5;
    plan.add(spec);
    network.set_fault_plan(plan);
    std::vector<bool> fates;
    for (int i = 0; i < 64; ++i) {
      fates.push_back(
          network.exchange("stub", server, sample_query(), 100'000)
              .has_value());
    }
    return std::make_tuple(fates, clock.now_us(),
                           network.counters().entries());
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a, b);  // identical fates, virtual time and counters
  const auto c = run(43);
  EXPECT_NE(std::get<0>(a), std::get<0>(c));  // the seed matters
}

TEST(FaultInjectionTest, AllZeroPlanIsIdenticalToNoInjector) {
  const auto run = [](bool install_plan) {
    SimClock clock;
    Network network(clock);
    network.set_capture_enabled(true);
    if (install_plan) {
      FaultPlan plan;  // specs with every probability zero
      FaultSpec spec;
      plan.add(spec);
      FaultSpec targeted;
      targeted.endpoint = "root";
      plan.add(targeted);
      EXPECT_TRUE(plan.inert());
      network.set_fault_plan(plan);
    }
    EchoServer server("root");
    for (int i = 0; i < 16; ++i) {
      (void)network.exchange("stub", server, sample_query());
    }
    return std::make_tuple(clock.now_us(), network.counters().entries(),
                           network.capture().size());
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace lookaside::sim
