// Unit and property tests for BigUint and Montgomery arithmetic.
#include <gtest/gtest.h>

#include <cstdint>

#include "crypto/bigint.h"
#include "crypto/rng.h"

namespace lookaside::crypto {
namespace {

using U128 = unsigned __int128;

BigUint from_u128(U128 v) {
  Bytes be(16);
  for (int i = 0; i < 16; ++i) {
    be[15 - i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return BigUint::from_bytes_be(be);
}

U128 to_u128(const BigUint& v) {
  U128 out = 0;
  const Bytes be = v.to_bytes_be(16);
  EXPECT_LE(be.size(), 16u);
  for (std::uint8_t b : be) out = (out << 8) | b;
  return out;
}

TEST(BigUintTest, ZeroBasics) {
  BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_bytes_be(), Bytes{0});
  EXPECT_EQ(BigUint::from_bytes_be({}), zero);
  EXPECT_EQ(BigUint::from_bytes_be({0, 0, 0}), zero);
}

TEST(BigUintTest, ByteRoundTrip) {
  const Bytes bytes = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  const BigUint v = BigUint::from_bytes_be(bytes);
  EXPECT_EQ(v.to_bytes_be(), bytes);
  EXPECT_EQ(v.bit_length(), 65u);
}

TEST(BigUintTest, LeadingZerosStripped) {
  const BigUint a = BigUint::from_bytes_be({0x00, 0x00, 0x12, 0x34});
  const BigUint b = BigUint::from_bytes_be({0x12, 0x34});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_bytes_be(4), Bytes({0x00, 0x00, 0x12, 0x34}));
}

TEST(BigUintTest, CompareOrdering) {
  EXPECT_LT(BigUint(1), BigUint(2));
  EXPECT_LT(BigUint(0xFFFFFFFFULL), BigUint(0x100000000ULL));
  EXPECT_EQ(BigUint(42).compare(BigUint(42)), 0);
  EXPECT_GT(BigUint(0x100000000ULL), BigUint(5));
}

TEST(BigUintTest, SubUnderflowThrows) {
  EXPECT_THROW(BigUint::sub(BigUint(1), BigUint(2)), std::invalid_argument);
}

TEST(BigUintTest, DivisionByZeroThrows) {
  BigUint q, r;
  EXPECT_THROW(BigUint::divmod(BigUint(1), BigUint{}, q, r),
               std::invalid_argument);
}

TEST(BigUintPropertyTest, AddSubMulDivAgainstU128) {
  SplitMix64 rng(0xbeefcafe);
  for (int i = 0; i < 2000; ++i) {
    const U128 a = (static_cast<U128>(rng.next()) << 32) | rng.next() % 997;
    const U128 b = (static_cast<U128>(rng.next() % 0xFFFFFFFF) << 16) | 1;
    const BigUint big_a = from_u128(a);
    const BigUint big_b = from_u128(b);

    EXPECT_EQ(to_u128(BigUint::add(big_a, big_b)), a + b);
    if (a >= b) {
      EXPECT_EQ(to_u128(BigUint::sub(big_a, big_b)), a - b);
    }
    // Keep the product within 128 bits by masking the operands.
    const U128 small_a = a & 0xFFFFFFFFFFFFULL;
    const U128 small_b = b & 0xFFFFFFFFFFFFULL;
    EXPECT_EQ(to_u128(BigUint::mul(from_u128(small_a), from_u128(small_b))),
              small_a * small_b);

    BigUint q, r;
    BigUint::divmod(big_a, big_b, q, r);
    EXPECT_EQ(to_u128(q), a / b);
    EXPECT_EQ(to_u128(r), a % b);
    // a == q*b + r reconstruction.
    EXPECT_EQ(BigUint::add(BigUint::mul(q, big_b), r), big_a);
  }
}

TEST(BigUintPropertyTest, ShiftsMatchMultiplication) {
  SplitMix64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next();
    const std::size_t shift = rng.next_below(60);
    const BigUint big(v);
    EXPECT_EQ(big.shifted_left(shift),
              BigUint::mul(big, BigUint(1).shifted_left(shift)));
    EXPECT_EQ(big.shifted_left(shift).shifted_right(shift), big);
  }
}

TEST(BigUintTest, ModU32) {
  const BigUint v = BigUint::from_bytes_be(
      {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22});
  // Reference via divmod.
  for (std::uint32_t d : {3u, 7u, 65537u, 0xFFFFFFFFu}) {
    BigUint q, r;
    BigUint::divmod(v, BigUint(d), q, r);
    EXPECT_EQ(v.mod_u32(d), r.low_u64());
  }
}

TEST(BigUintTest, GcdKnownValues) {
  EXPECT_EQ(BigUint::gcd(BigUint(48), BigUint(18)), BigUint(6));
  EXPECT_EQ(BigUint::gcd(BigUint(17), BigUint(13)), BigUint(1));
  EXPECT_EQ(BigUint::gcd(BigUint(0), BigUint(5)), BigUint(5));
}

TEST(BigUintTest, ModInverseProperty) {
  SplitMix64 rng(99);
  const BigUint m(1000003);  // prime
  for (int i = 0; i < 100; ++i) {
    const BigUint a(1 + rng.next_below(1000002));
    const BigUint inv = BigUint::mod_inverse(a, m);
    EXPECT_EQ(BigUint::mod(BigUint::mul(a, inv), m), BigUint(1));
  }
}

TEST(BigUintTest, ModInverseNotCoprimeThrows) {
  EXPECT_THROW(BigUint::mod_inverse(BigUint(6), BigUint(9)), std::domain_error);
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigUint(10)), std::invalid_argument);
  EXPECT_THROW(Montgomery(BigUint(1)), std::invalid_argument);
}

TEST(MontgomeryTest, MulMatchesDivmod) {
  SplitMix64 rng(4242);
  const BigUint m(0xFFFFFFFFFFFFFFC5ULL);  // large odd (prime) modulus
  const Montgomery mont(m);
  for (int i = 0; i < 500; ++i) {
    const BigUint a(rng.next());
    const BigUint b(rng.next());
    EXPECT_EQ(mont.mul(a, b), BigUint::mod(BigUint::mul(a, b), m));
  }
}

TEST(MontgomeryTest, ExpMatchesRepeatedMul) {
  const BigUint m(1000003);
  const Montgomery mont(m);
  const BigUint base(7);
  BigUint expect(1);
  for (std::uint64_t e = 0; e < 50; ++e) {
    EXPECT_EQ(mont.exp(base, BigUint(e)), expect) << "e=" << e;
    expect = BigUint::mod(BigUint::mul(expect, base), m);
  }
}

TEST(MontgomeryTest, FermatLittleTheorem) {
  // a^(p-1) ≡ 1 mod p for prime p.
  const BigUint p(0xFFFFFFFFFFFFFFC5ULL);
  const Montgomery mont(p);
  SplitMix64 rng(31337);
  for (int i = 0; i < 20; ++i) {
    const BigUint a(2 + rng.next_below(1'000'000'000));
    EXPECT_EQ(mont.exp(a, BigUint::sub(p, BigUint(1))), BigUint(1));
  }
}

TEST(MontgomeryTest, MultiLimbModulus) {
  // 128-bit modulus; cross-check exp against square-and-multiply with divmod.
  const BigUint m = BigUint::from_bytes_be(from_hex(
      "f23ab61937c4ad1b00593dbd7d87ba15"));  // odd 128-bit number
  const Montgomery mont(m);
  SplitMix64 rng(555);
  for (int i = 0; i < 30; ++i) {
    const BigUint base(rng.next());
    const BigUint exponent(rng.next_below(1000));
    BigUint expect(1);
    for (std::uint64_t e = 0; e < exponent.low_u64(); ++e) {
      expect = BigUint::mod(BigUint::mul(expect, base), m);
    }
    EXPECT_EQ(mont.exp(base, exponent), expect);
  }
}

}  // namespace
}  // namespace lookaside::crypto
