// Tests for configuration-file rendering/parsing (the paper's Figs. 4-7 as
// literal file contents).
#include <gtest/gtest.h>

#include "config/conf_file.h"

namespace lookaside::config {
namespace {

TEST(RenderBindConfTest, Fig4AptGetShape) {
  const std::string text =
      render_bind_conf(resolver::ResolverConfig::bind_apt_get());
  EXPECT_NE(text.find("dnssec-validation auto;"), std::string::npos);
  EXPECT_EQ(text.find("dnssec-lookaside"), std::string::npos);
  EXPECT_EQ(text.find("bind.keys"), std::string::npos);
}

TEST(RenderBindConfTest, Fig5YumShape) {
  const std::string text = render_bind_conf(resolver::ResolverConfig::bind_yum());
  EXPECT_NE(text.find("dnssec-enable yes;"), std::string::npos);
  EXPECT_NE(text.find("dnssec-validation yes;"), std::string::npos);
  EXPECT_NE(text.find("dnssec-lookaside auto;"), std::string::npos);
  EXPECT_NE(text.find("include \"/etc/bind.keys\";"), std::string::npos);
}

TEST(RenderUnboundConfTest, Fig7CorrectShape) {
  const std::string text =
      render_unbound_conf(resolver::ResolverConfig::unbound_correct());
  EXPECT_NE(text.find("auto-trust-anchor-file:"), std::string::npos);
  EXPECT_NE(text.find("dlv-anchor-file:"), std::string::npos);
  EXPECT_EQ(text.find("# auto-trust"), std::string::npos);  // not commented
}

TEST(RenderUnboundConfTest, ManualInstallIsAllCommented) {
  const std::string text =
      render_unbound_conf(resolver::ResolverConfig::unbound_manual());
  EXPECT_NE(text.find("# auto-trust-anchor-file:"), std::string::npos);
  EXPECT_NE(text.find("# dlv-anchor-file:"), std::string::npos);
}

TEST(ParseBindConfTest, RoundTripsRenderedConfigs) {
  for (const auto& config :
       {resolver::ResolverConfig::bind_apt_get(),
        resolver::ResolverConfig::bind_yum(),
        resolver::ResolverConfig::bind_manual(),
        resolver::ResolverConfig::bind_manual_correct()}) {
    const auto parsed = parse_bind_conf(render_bind_conf(config));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->config.dnssec_enable, config.dnssec_enable);
    EXPECT_EQ(parsed->config.dnssec_validation, config.dnssec_validation);
    EXPECT_EQ(parsed->config.dnssec_lookaside, config.dnssec_lookaside);
    EXPECT_EQ(parsed->config.root_trust_anchor_included,
              config.root_trust_anchor_included);
  }
}

TEST(ParseBindConfTest, ParsesThePaperFig6Verbatim) {
  const char* fig6 = R"(
options{
        ...
        dnssec-enable yes;
        dnssec-validation yes;
        dnssec-lookaside auto;
};
include "/etc/bind.keys";
)";
  // "..." is not valid named.conf; strip it as real admins would.
  std::string text = fig6;
  const auto pos = text.find("        ...\n");
  text.erase(pos, 12);
  const auto parsed = parse_bind_conf(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->config.dnssec_enable);
  EXPECT_EQ(parsed->config.dnssec_validation, resolver::ValidationMode::kYes);
  EXPECT_TRUE(parsed->config.dnssec_lookaside);
  EXPECT_TRUE(parsed->config.root_trust_anchor_included);
  EXPECT_TRUE(parsed->config.dlv_enabled());
  EXPECT_TRUE(parsed->config.root_anchor_available());
}

TEST(ParseBindConfTest, HandlesCommentsEverywhere) {
  const char* text = R"(
// managed by config management
options {
    dnssec-enable yes;      # keep on
    /* the next line matters */
    dnssec-validation yes;
    dnssec-lookaside auto;  // ISC DLV
};
)";
  const auto parsed = parse_bind_conf(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->config.dnssec_lookaside);
  EXPECT_FALSE(parsed->config.root_trust_anchor_included);
}

TEST(ParseBindConfTest, WarnsAboutThePaperMisconfiguration) {
  // dnssec-validation yes + lookaside auto + no anchor include: the
  // configuration that leaks everything.
  const auto parsed = parse_bind_conf(
      "options { dnssec-validation yes; dnssec-lookaside auto; };");
  ASSERT_TRUE(parsed.has_value());
  bool warned = false;
  for (const auto& warning : parsed->warnings) {
    warned |= warning.find("DLV") != std::string::npos;
  }
  EXPECT_TRUE(warned);
  EXPECT_TRUE(parsed->config.dlv_enabled());
  EXPECT_FALSE(parsed->config.root_anchor_available());
}

TEST(ParseBindConfTest, RejectsSyntaxErrors) {
  EXPECT_FALSE(parse_bind_conf("options { dnssec-enable yes; ").has_value());
  EXPECT_FALSE(parse_bind_conf("options } {").has_value());
  EXPECT_FALSE(parse_bind_conf("dnssec-enable yes").has_value());  // no ';'
}

TEST(ParseBindConfTest, UnknownOptionsWarnNotFail) {
  const auto parsed =
      parse_bind_conf("options { recursion yes; dnssec-enable yes; };");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->warnings.empty());
  EXPECT_TRUE(parsed->config.dnssec_enable);
}

TEST(ParseUnboundConfTest, RoundTripsRenderedConfigs) {
  for (const auto& config : {resolver::ResolverConfig::unbound_correct(),
                             resolver::ResolverConfig::unbound_package(),
                             resolver::ResolverConfig::unbound_manual()}) {
    const auto parsed = parse_unbound_conf(render_unbound_conf(config));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->config.root_trust_anchor_included,
              config.root_trust_anchor_included && config.validation_enabled());
    EXPECT_EQ(parsed->config.dlv_trust_anchor_included,
              config.dlv_trust_anchor_included);
  }
}

TEST(ParseUnboundConfTest, CommentedLinesLeaveFeaturesOff) {
  const auto parsed = parse_unbound_conf(R"(
server:
    # auto-trust-anchor-file: "/usr/local/etc/unbound/root.key"
    # dlv-anchor-file: "dlv.isc.org.key"
)");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->config.validation_enabled());
  EXPECT_FALSE(parsed->config.dlv_enabled());
}

TEST(ParseUnboundConfTest, UncommentingEnables) {
  const auto parsed = parse_unbound_conf(R"(
server:
    auto-trust-anchor-file: "/usr/local/etc/unbound/root.key"
    dlv-anchor-file: "dlv.isc.org.key"
)");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->config.validation_enabled());
  EXPECT_TRUE(parsed->config.root_anchor_available());
  EXPECT_TRUE(parsed->config.dlv_enabled());
}

}  // namespace
}  // namespace lookaside::config
