// Tests for the shared bench helpers: the N ladder's exact-cap rung and the
// strict numeric flag parsing (malformed values must abort, not coerce).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"

namespace lookaside::bench {
namespace {

TEST(NLadder, DecadeCapKeepsClassicLadder) {
  EXPECT_EQ(n_ladder(100'000),
            (std::vector<std::uint64_t>{100, 1'000, 10'000, 100'000}));
}

TEST(NLadder, NonDecadeCapBecomesFinalRung) {
  // Regression: LOOKASIDE_SCALE=5000 used to run only {100, 1000},
  // silently dropping the requested cap.
  EXPECT_EQ(n_ladder(5'000), (std::vector<std::uint64_t>{100, 1'000, 5'000}));
  EXPECT_EQ(n_ladder(2'500'000),
            (std::vector<std::uint64_t>{100, 1'000, 10'000, 100'000,
                                        1'000'000, 2'500'000}));
}

TEST(NLadder, CapBelowFirstRungRunsJustTheCap) {
  EXPECT_EQ(n_ladder(50), (std::vector<std::uint64_t>{50}));
}

TEST(NLadder, ExactDecadeCapIsNotDuplicated) {
  EXPECT_EQ(n_ladder(1'000), (std::vector<std::uint64_t>{100, 1'000}));
  EXPECT_EQ(n_ladder(100), (std::vector<std::uint64_t>{100}));
}

TEST(ParseU64Flag, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64_flag("--n", "0"), 0u);
  EXPECT_EQ(parse_u64_flag("--n", "65536"), 65536u);
}

TEST(ParseU64FlagDeathTest, RejectsMalformedValues) {
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", "abc"),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", "12abc"),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", ""),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", "-3"),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
}

TEST(ArgParserNumeric, ParsesAndFallsBack) {
  const char* argv[] = {"bench", "--rounds=7", "--jobs=1"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.numeric("rounds", 4), 7u);
  EXPECT_EQ(args.numeric("caps", 9), 9u);  // absent flag -> fallback
}

TEST(ArgParserNumericDeathTest, MalformedValueAborts) {
  const char* argv[] = {"bench", "--rounds=many", "--jobs=1"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EXIT((void)args.numeric("rounds", 4), ::testing::ExitedWithCode(2),
              "--rounds expects");
}

TEST(ArgParserNumericDeathTest, EmptyValueAborts) {
  const char* argv[] = {"bench", "--rounds=", "--jobs=1"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EXIT((void)args.numeric("rounds", 4), ::testing::ExitedWithCode(2),
              "--rounds expects");
}

TEST(ParseObsArgsDeathTest, MalformedRingBufferAborts) {
  const char* argv[] = {"bench", "--ring-buffer=abc"};
  EXPECT_EXIT((void)parse_obs_args(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
}

TEST(ParseObsArgs, WellFormedRingBufferStillParses) {
  const char* argv[] = {"bench", "--ring-buffer=1024"};
  const ObsArgs obs = parse_obs_args(2, const_cast<char**>(argv));
  EXPECT_EQ(obs.ring_capacity, 1024u);
}

}  // namespace
}  // namespace lookaside::bench
