// Tests for the shared bench helpers: the N ladder's exact-cap rung and the
// strict numeric flag parsing (malformed values must abort, not coerce).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/bench_util.h"

namespace lookaside::bench {
namespace {

TEST(NLadder, DecadeCapKeepsClassicLadder) {
  EXPECT_EQ(n_ladder(100'000),
            (std::vector<std::uint64_t>{100, 1'000, 10'000, 100'000}));
}

TEST(NLadder, NonDecadeCapBecomesFinalRung) {
  // Regression: LOOKASIDE_SCALE=5000 used to run only {100, 1000},
  // silently dropping the requested cap.
  EXPECT_EQ(n_ladder(5'000), (std::vector<std::uint64_t>{100, 1'000, 5'000}));
  EXPECT_EQ(n_ladder(2'500'000),
            (std::vector<std::uint64_t>{100, 1'000, 10'000, 100'000,
                                        1'000'000, 2'500'000}));
}

TEST(NLadder, CapBelowFirstRungRunsJustTheCap) {
  EXPECT_EQ(n_ladder(50), (std::vector<std::uint64_t>{50}));
}

TEST(NLadder, ExactDecadeCapIsNotDuplicated) {
  EXPECT_EQ(n_ladder(1'000), (std::vector<std::uint64_t>{100, 1'000}));
  EXPECT_EQ(n_ladder(100), (std::vector<std::uint64_t>{100}));
}

TEST(ParseU64Flag, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64_flag("--n", "0"), 0u);
  EXPECT_EQ(parse_u64_flag("--n", "65536"), 65536u);
}

TEST(ParseU64FlagDeathTest, RejectsMalformedValues) {
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", "abc"),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", "12abc"),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", ""),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
  EXPECT_EXIT(parse_u64_flag("--ring-buffer", "-3"),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
}

TEST(ArgParserNumeric, ParsesAndFallsBack) {
  const char* argv[] = {"bench", "--rounds=7", "--jobs=1"};
  ArgParser args(3, const_cast<char**>(argv), {"rounds"});
  EXPECT_EQ(args.numeric("rounds", 4), 7u);
  EXPECT_EQ(args.numeric("caps", 9), 9u);  // absent flag -> fallback
}

TEST(ArgParserNumericDeathTest, MalformedValueAborts) {
  const char* argv[] = {"bench", "--rounds=many", "--jobs=1"};
  ArgParser args(3, const_cast<char**>(argv), {"rounds"});
  EXPECT_EXIT((void)args.numeric("rounds", 4), ::testing::ExitedWithCode(2),
              "--rounds expects");
}

TEST(ArgParserNumericDeathTest, EmptyValueAborts) {
  const char* argv[] = {"bench", "--rounds=", "--jobs=1"};
  ArgParser args(3, const_cast<char**>(argv), {"rounds"});
  EXPECT_EXIT((void)args.numeric("rounds", 4), ::testing::ExitedWithCode(2),
              "--rounds expects");
}

TEST(ArgParserUnknownFlagDeathTest, UnknownFlagAbortsAtConstruction) {
  // Regression: `--smke` / `--iteraitons` used to be silently ignored and
  // the bench ran with its defaults, producing a plausible-looking but
  // wrong JSON. Unknown flags must abort before any work happens.
  const char* argv[] = {"bench", "--smke"};
  EXPECT_EXIT(ArgParser(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "unknown flag '--smke'");
}

TEST(ArgParserUnknownFlagDeathTest, UndeclaredExtraAborts) {
  // "rounds" belongs to bench_cache_churn; a driver that did not declare
  // it must reject it even though some other driver accepts it.
  const char* argv[] = {"bench", "--rounds=7"};
  EXPECT_EXIT(ArgParser(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "unknown flag '--rounds'");
}

TEST(ArgParserUnknownFlag, BuiltinsExtrasAndJobsValueAreAccepted) {
  // `--jobs 4` is the one two-token builtin: the bare value token after it
  // must not be mistaken for a positional/unknown argument.
  const char* argv[] = {"bench", "--smoke", "--jobs",
                        "4",     "--top=8", "--out=/dev/null"};
  ArgParser args(6, const_cast<char**>(argv), {"top"});
  EXPECT_TRUE(args.smoke());
  EXPECT_EQ(args.numeric("top", 1), 8u);
}

TEST(ParseObsArgsDeathTest, MalformedRingBufferAborts) {
  const char* argv[] = {"bench", "--ring-buffer=abc"};
  EXPECT_EXIT((void)parse_obs_args(2, const_cast<char**>(argv)),
              ::testing::ExitedWithCode(2), "--ring-buffer expects");
}

TEST(ParseObsArgs, WellFormedRingBufferStillParses) {
  const char* argv[] = {"bench", "--ring-buffer=1024"};
  const ObsArgs obs = parse_obs_args(2, const_cast<char**>(argv));
  EXPECT_EQ(obs.ring_capacity, 1024u);
}

}  // namespace
}  // namespace lookaside::bench
