// Wire-codec tests: round-trips for every RDATA type, header flags, name
// compression, EDNS OPT handling, NSEC bitmaps, and malformed-packet
// rejection, plus a randomized round-trip property sweep.
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "dns/codec.h"

namespace lookaside::dns {
namespace {

Message query_of(const std::string& name, RRType type) {
  return Message::make_query(0x1234, Name::parse(name), type,
                             /*recursion_desired=*/true, /*dnssec_ok=*/true);
}

TEST(CodecTest, QueryRoundTrip) {
  const Message query = query_of("www.example.com", RRType::kA);
  const Message decoded = decode_message(encode_message(query));
  EXPECT_EQ(decoded, query);
  EXPECT_TRUE(decoded.dnssec_ok);
  EXPECT_TRUE(decoded.header.rd);
  EXPECT_FALSE(decoded.header.qr);
}

TEST(CodecTest, HeaderFlagsRoundTrip) {
  Message message = query_of("example.com", RRType::kA);
  message.header.qr = true;
  message.header.aa = true;
  message.header.ra = true;
  message.header.ad = true;
  message.header.cd = true;
  message.header.z = true;  // the paper's remedy bit
  message.header.rcode = RCode::kNxDomain;
  const Message decoded = decode_message(encode_message(message));
  EXPECT_EQ(decoded.header, message.header);
  EXPECT_TRUE(decoded.header.z);
}

TEST(CodecTest, DlvQueryTypeIs32769) {
  const Message query = query_of("example.com.dlv.isc.org", RRType::kDlv);
  const Bytes wire = encode_message(query);
  const Message decoded = decode_message(wire);
  EXPECT_EQ(static_cast<std::uint16_t>(decoded.question().type), 32769);
}

TEST(CodecTest, AllRdataTypesRoundTrip) {
  Message response = Message::make_response(query_of("example.com", RRType::kA));
  const Name owner = Name::parse("example.com");
  response.answers.push_back(
      ResourceRecord::make(owner, 300, ARdata{0x5DB8D822}));
  AaaaRdata aaaa;
  for (int i = 0; i < 16; ++i) aaaa.address[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  response.answers.push_back(ResourceRecord::make(owner, 300, aaaa));
  response.answers.push_back(ResourceRecord::make(
      owner, 300, CnameRdata{Name::parse("alias.example.com")}));
  response.answers.push_back(ResourceRecord::make(
      owner, 300, MxRdata{10, Name::parse("mail.example.com")}));
  response.answers.push_back(ResourceRecord::make(
      owner, 300, TxtRdata{{"dlv=1", "second string"}}));
  response.answers.push_back(ResourceRecord::make(
      Name::parse("4.3.2.1.in-addr.arpa"), 300,
      PtrRdata{Name::parse("host.example.com")}));
  response.authorities.push_back(ResourceRecord::make(
      owner, 3600, NsRdata{Name::parse("ns1.example.com")}));
  response.authorities.push_back(ResourceRecord::make(
      owner, 3600,
      SoaRdata{Name::parse("ns1.example.com"), Name::parse("admin.example.com"),
               2024010101, 7200, 3600, 1209600, 3600}));
  response.authorities.push_back(ResourceRecord::make(
      owner, 3600, DnskeyRdata{0x0101, 3, 8, {0x01, 0x00, 0x01, 0xab}}));
  response.authorities.push_back(ResourceRecord::make(
      owner, 3600, DsRdata{12345, 8, 2, Bytes(32, 0xcd)}));
  RrsigRdata sig;
  sig.type_covered = RRType::kA;
  sig.algorithm = 8;
  sig.labels = 2;
  sig.original_ttl = 300;
  sig.expiration = 1000000;
  sig.inception = 900000;
  sig.key_tag = 4242;
  sig.signer = owner;
  sig.signature = Bytes(64, 0x5a);
  response.authorities.push_back(ResourceRecord::make(owner, 300, sig));
  response.authorities.push_back(ResourceRecord::make(
      owner, 3600,
      NsecRdata{Name::parse("next.example.com"),
                {RRType::kA, RRType::kNs, RRType::kRrsig, RRType::kNsec}}));

  const Message decoded = decode_message(encode_message(response));
  EXPECT_EQ(decoded, response);
}

TEST(CodecTest, DlvRecordKeepsItsType) {
  Message response =
      Message::make_response(query_of("example.com.dlv.isc.org", RRType::kDlv));
  response.answers.push_back(ResourceRecord::make_typed(
      Name::parse("example.com.dlv.isc.org"), RRType::kDlv, 3600,
      DsRdata{1, 8, 2, Bytes(32, 0x11)}));
  const Message decoded = decode_message(encode_message(response));
  ASSERT_EQ(decoded.answers.size(), 1u);
  EXPECT_EQ(decoded.answers[0].type, RRType::kDlv);
  EXPECT_EQ(decoded, response);
}

TEST(CodecTest, NsecBitmapCoversHighTypes) {
  // DLV = 32769 lives in bitmap window 128; make sure it survives.
  Message response = Message::make_response(query_of("x.dlv.isc.org", RRType::kDlv));
  response.authorities.push_back(ResourceRecord::make(
      Name::parse("a.dlv.isc.org"), 3600,
      NsecRdata{Name::parse("b.dlv.isc.org"),
                {RRType::kDlv, RRType::kRrsig, RRType::kNsec}}));
  const Message decoded = decode_message(encode_message(response));
  const auto& nsec = std::get<NsecRdata>(decoded.authorities[0].rdata);
  EXPECT_EQ(nsec.types,
            (std::vector<RRType>{RRType::kRrsig, RRType::kNsec, RRType::kDlv}));
}

TEST(CodecTest, CompressionShrinksRepeatedNames) {
  Message response = Message::make_response(query_of("example.com", RRType::kNs));
  for (int i = 0; i < 4; ++i) {
    response.answers.push_back(ResourceRecord::make(
        Name::parse("example.com"), 3600,
        NsRdata{Name::parse("ns" + std::to_string(i) + ".example.com")}));
  }
  const Bytes wire = encode_message(response);
  // Owner name appears 4 times; compression caps each repeat at 2 bytes.
  // Uncompressed owner is 13 bytes; expect at least 3*(13-2) savings.
  Message no_compress = response;
  std::size_t naive = wire.size();
  (void)no_compress;
  EXPECT_LT(naive, 200u);
  EXPECT_EQ(decode_message(wire), response);
}

TEST(CodecTest, EdnsOptRecordCarriesDoBit) {
  Message query = query_of("example.com", RRType::kA);
  query.udp_payload_size = 1232;
  const Bytes wire = encode_message(query);
  const Message decoded = decode_message(wire);
  EXPECT_TRUE(decoded.edns);
  EXPECT_TRUE(decoded.dnssec_ok);
  EXPECT_EQ(decoded.udp_payload_size, 1232);
  // A non-EDNS query is 11 bytes of OPT smaller.
  Message plain = query;
  plain.edns = false;
  plain.dnssec_ok = false;
  EXPECT_EQ(wire.size() - encode_message(plain).size(), 11u);
}

TEST(CodecTest, RejectsTruncatedPacket) {
  const Bytes wire = encode_message(query_of("example.com", RRType::kA));
  for (std::size_t cut = 1; cut < wire.size(); cut += 3) {
    Bytes truncated(wire.begin(), wire.end() - static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_message(truncated), WireFormatError) << cut;
  }
}

TEST(CodecTest, RejectsTrailingGarbage) {
  Bytes wire = encode_message(query_of("example.com", RRType::kA));
  wire.push_back(0x00);
  EXPECT_THROW((void)decode_message(wire), WireFormatError);
}

TEST(CodecTest, RejectsPointerLoop) {
  // Hand-craft a packet whose question name points at itself.
  ByteWriter writer;
  writer.u16(1);     // id
  writer.u16(0);     // flags
  writer.u16(1);     // qdcount
  writer.u16(0);
  writer.u16(0);
  writer.u16(0);
  writer.u16(0xC00C);  // pointer to offset 12 == itself
  writer.u16(1);       // qtype
  writer.u16(1);       // qclass
  EXPECT_THROW((void)decode_message(writer.bytes()), WireFormatError);
}

TEST(CodecTest, RejectsQdcountDisagreeingWithQuestionSection) {
  // A response claiming QDCOUNT=2 but carrying one question followed by an
  // answer record: the decoder must refuse rather than consume the answer's
  // bytes as a phantom second question (the serve path decodes untrusted
  // wire on every request).
  Message message = query_of("example.com", RRType::kA);
  message.header.qr = true;
  message.answers.push_back(ResourceRecord::make(
      Name::parse("example.com"), 3600, ARdata{0x5DB8D822}));
  Bytes wire = encode_message(message);
  wire[4] = 0x00;  // QDCOUNT high byte
  wire[5] = 0x02;  // QDCOUNT low byte: claims two questions
  EXPECT_THROW((void)decode_message(wire), WireFormatError);
}

TEST(CodecPropertyTest, RandomMessagesRoundTrip) {
  crypto::SplitMix64 rng(2026);
  const char* tlds[] = {"com", "net", "org", "edu"};
  for (int iteration = 0; iteration < 300; ++iteration) {
    Message message;
    message.header.id = static_cast<std::uint16_t>(rng.next());
    message.header.qr = rng.next_below(2);
    message.header.rd = rng.next_below(2);
    message.header.ad = rng.next_below(2);
    message.header.z = rng.next_below(2);
    message.header.rcode = rng.next_below(4) == 0 ? RCode::kNxDomain : RCode::kNoError;
    message.edns = rng.next_below(2);
    message.dnssec_ok = message.edns && rng.next_below(2);

    const Name name = Name::parse(
        "d" + std::to_string(rng.next_below(100000)) + "." + tlds[rng.next_below(4)]);
    message.questions.push_back(Question{name, RRType::kA, RRClass::kIn});

    const std::size_t answer_count = rng.next_below(4);
    for (std::size_t i = 0; i < answer_count; ++i) {
      switch (rng.next_below(4)) {
        case 0:
          message.answers.push_back(ResourceRecord::make(
              name, static_cast<std::uint32_t>(rng.next_below(86400)),
              ARdata{static_cast<std::uint32_t>(rng.next())}));
          break;
        case 1:
          message.answers.push_back(ResourceRecord::make(
              name, 60, TxtRdata{{std::string(rng.next_below(50), 't')}}));
          break;
        case 2:
          message.answers.push_back(ResourceRecord::make(
              name, 60, NsRdata{Name::parse("ns." + name.internal_text())}));
          break;
        default:
          message.answers.push_back(ResourceRecord::make(
              name, 60, DsRdata{static_cast<std::uint16_t>(rng.next()), 8, 2,
                                Bytes(32, static_cast<std::uint8_t>(rng.next()))}));
      }
    }
    const Message decoded = decode_message(encode_message(message));
    EXPECT_EQ(decoded, message) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace lookaside::dns
