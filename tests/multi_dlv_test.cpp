// Tests for multiple DLV registries (paper §2.3 lists several public DLV
// servers; §7.3.2: "ISC is only one of many used in the wild"). Each
// registry consulted is an additional third party observing the query.
#include <gtest/gtest.h>

#include <memory>

#include "dlv/registry.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"

namespace lookaside::resolver {
namespace {

class MultiDlvFixture {
 public:
  MultiDlvFixture()
      : network_(clock_),
        testbed_(server::TestbedOptions{},
                 {{"unsigned.com", false, false, false, {}},
                  {"island1.com", true, false, false, {}},
                  {"island2.com", true, false, false, {}}}),
        isc_(make_registry("dlv.isc.org", 1)),
        cert_ru_(make_registry("dlv.cert.ru", 2)) {
    // island1 deposits at ISC, island2 only at the second registry.
    isc_->deposit(dns::Name::parse("island1.com"),
                  testbed_.signed_sld("island1.com")->ds_for_parent());
    cert_ru_->deposit(dns::Name::parse("island2.com"),
                      testbed_.signed_sld("island2.com")->ds_for_parent());
    register_endpoint(*isc_);
    register_endpoint(*cert_ru_);

    ResolverConfig config = ResolverConfig::bind_manual_correct();
    config.additional_dlv_domains.push_back(dns::Name::parse("dlv.cert.ru"));
    resolver_ = std::make_unique<RecursiveResolver>(
        network_, testbed_.directory(), config);
    resolver_->set_root_trust_anchor(testbed_.root_trust_anchor());
    resolver_->set_dlv_trust_anchor(isc_->trust_anchor());
    resolver_->set_dlv_trust_anchor(dns::Name::parse("dlv.cert.ru"),
                                    cert_ru_->trust_anchor());
  }

  static std::unique_ptr<dlv::DlvRegistry> make_registry(
      const std::string& apex, std::uint64_t seed) {
    dlv::DlvRegistry::Options options;
    options.apex = dns::Name::parse(apex);
    options.seed = seed;
    return std::make_unique<dlv::DlvRegistry>(options);
  }

  void register_endpoint(dlv::DlvRegistry& registry) {
    testbed_.directory().register_zone(
        registry.apex(),
        std::shared_ptr<sim::Endpoint>(&registry, [](sim::Endpoint*) {}));
  }

  sim::SimClock clock_;
  sim::Network network_;
  server::Testbed testbed_;
  std::unique_ptr<dlv::DlvRegistry> isc_;
  std::unique_ptr<dlv::DlvRegistry> cert_ru_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST(MultiDlvTest, PrimaryRegistryHitStopsTheSearch) {
  MultiDlvFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("island1.com"), dns::RRType::kA});
  EXPECT_TRUE(result.dlv.secured);
  EXPECT_EQ(fixture.isc_->total_queries(), 1u);
  EXPECT_EQ(fixture.cert_ru_->total_queries(), 0u);  // never consulted
}

TEST(MultiDlvTest, FallThroughFindsSecondRegistryButLeaksToFirst) {
  MultiDlvFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("island2.com"), dns::RRType::kA});
  EXPECT_TRUE(result.dlv.secured);
  // The first registry observed the domain without having any record for
  // it — the search itself leaks to every earlier third party.
  EXPECT_GE(fixture.isc_->total_queries(), 1u);
  EXPECT_EQ(fixture.isc_->queries_with_record(), 0u);
  EXPECT_EQ(fixture.cert_ru_->queries_with_record(), 1u);
}

TEST(MultiDlvTest, UnsignedDomainLeaksToEveryRegistry) {
  MultiDlvFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("unsigned.com"), dns::RRType::kA});
  EXPECT_EQ(result.status, ValidationStatus::kInsecure);
  // With N registries configured, the Case-2 leak is N-fold.
  EXPECT_GE(fixture.isc_->total_queries(), 1u);
  EXPECT_GE(fixture.cert_ru_->total_queries(), 1u);
  EXPECT_EQ(fixture.isc_->queries_with_record(), 0u);
  EXPECT_EQ(fixture.cert_ru_->queries_with_record(), 0u);
}

TEST(MultiDlvTest, DlvQueryNamesRecordBothApexes) {
  MultiDlvFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("unsigned.com"), dns::RRType::kA});
  bool saw_isc = false, saw_ru = false;
  for (const dns::Name& name : result.dlv.query_names) {
    saw_isc |= name.is_subdomain_of(dns::Name::parse("dlv.isc.org"));
    saw_ru |= name.is_subdomain_of(dns::Name::parse("dlv.cert.ru"));
  }
  EXPECT_TRUE(saw_isc);
  EXPECT_TRUE(saw_ru);
}

TEST(MultiDlvTest, AggressiveCachingWorksPerRegistry) {
  MultiDlvFixture fixture;
  (void)fixture.resolver_->resolve({dns::Name::parse("unsigned.com"), dns::RRType::kA});
  const auto isc_before = fixture.isc_->total_queries();
  const auto ru_before = fixture.cert_ru_->total_queries();
  // "zebra.com" sorts after both deposits' regions... it is covered by the
  // wrap NSEC cached from the unsigned.com denial at each registry.
  (void)fixture.resolver_->resolve({dns::Name::parse("unsigned.com"), dns::RRType::kA});  // cache hit, no queries
  EXPECT_EQ(fixture.isc_->total_queries(), isc_before);
  EXPECT_EQ(fixture.cert_ru_->total_queries(), ru_before);
}

}  // namespace
}  // namespace lookaside::resolver
