// Tests for RRsets, canonical RRset images and RRSIG signed-data assembly —
// the byte strings DNSSEC signatures actually cover.
#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "dns/record.h"

namespace lookaside::dns {
namespace {

TEST(RRsetTest, EnforcesNameTypeInvariant) {
  RRset rrset(Name::parse("example.com"), RRType::kA);
  rrset.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{1}));
  EXPECT_THROW(rrset.add(ResourceRecord::make(Name::parse("other.com"), 300,
                                              ARdata{2})),
               std::invalid_argument);
  EXPECT_THROW(rrset.add(ResourceRecord::make(Name::parse("example.com"), 300,
                                              NsRdata{Name::parse("ns.com")})),
               std::invalid_argument);
  EXPECT_EQ(rrset.size(), 1u);
  EXPECT_EQ(rrset.ttl(), 300u);
}

TEST(RRsetTest, DefaultConstructedAdoptsFirstRecord) {
  RRset rrset;
  rrset.add(ResourceRecord::make(Name::parse("a.com"), 60, ARdata{7}));
  EXPECT_EQ(rrset.name(), Name::parse("a.com"));
  EXPECT_EQ(rrset.type(), RRType::kA);
  EXPECT_THROW(
      rrset.add(ResourceRecord::make(Name::parse("b.com"), 60, ARdata{8})),
      std::invalid_argument);
}

TEST(CanonicalImageTest, SortsByRdata) {
  RRset rrset(Name::parse("example.com"), RRType::kA);
  rrset.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{9}));
  rrset.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{3}));

  RRset reversed(Name::parse("example.com"), RRType::kA);
  reversed.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{3}));
  reversed.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{9}));

  // Canonical image is order-insensitive.
  EXPECT_EQ(canonical_rrset_image(rrset, 300),
            canonical_rrset_image(reversed, 300));
}

TEST(CanonicalImageTest, TtlReplacedByOriginalTtl) {
  RRset a(Name::parse("example.com"), RRType::kA);
  a.add(ResourceRecord::make(Name::parse("example.com"), 17, ARdata{1}));
  RRset b(Name::parse("example.com"), RRType::kA);
  b.add(ResourceRecord::make(Name::parse("example.com"), 9999, ARdata{1}));
  // Differing live TTLs canonicalize identically under the RRSIG original TTL.
  EXPECT_EQ(canonical_rrset_image(a, 300), canonical_rrset_image(b, 300));
  EXPECT_NE(canonical_rrset_image(a, 300), canonical_rrset_image(a, 600));
}

TEST(RrsigSignedDataTest, SensitiveToEveryField) {
  RRset rrset(Name::parse("example.com"), RRType::kA);
  rrset.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{42}));

  RrsigRdata base;
  base.type_covered = RRType::kA;
  base.algorithm = 8;
  base.labels = 2;
  base.original_ttl = 300;
  base.expiration = 2000;
  base.inception = 1000;
  base.key_tag = 55;
  base.signer = Name::parse("example.com");

  const Bytes reference = rrsig_signed_data(base, rrset);

  RrsigRdata changed = base;
  changed.key_tag = 56;
  EXPECT_NE(rrsig_signed_data(changed, rrset), reference);

  changed = base;
  changed.expiration = 2001;
  EXPECT_NE(rrsig_signed_data(changed, rrset), reference);

  changed = base;
  changed.signer = Name::parse("evil.com");
  EXPECT_NE(rrsig_signed_data(changed, rrset), reference);

  RRset other(Name::parse("example.com"), RRType::kA);
  other.add(ResourceRecord::make(Name::parse("example.com"), 300, ARdata{43}));
  EXPECT_NE(rrsig_signed_data(base, other), reference);

  // The signature field itself is never part of the signed data.
  changed = base;
  changed.signature = Bytes(64, 0xFF);
  EXPECT_EQ(rrsig_signed_data(changed, rrset), reference);
}

TEST(RecordTextTest, RendersKeyFields) {
  const auto a =
      ResourceRecord::make(Name::parse("example.com"), 300, ARdata{0x01020304});
  EXPECT_EQ(a.to_text(), "example.com. 300 IN A 1.2.3.4");

  const auto dlv = ResourceRecord::make_typed(
      Name::parse("example.com.dlv.isc.org"), RRType::kDlv, 3600,
      DsRdata{7, 8, 2, {0xaa, 0xbb}});
  EXPECT_NE(dlv.to_text().find("DLV"), std::string::npos);
  EXPECT_NE(dlv.to_text().find("aabb"), std::string::npos);
}

TEST(DnskeyTest, KeyTagStableAndFlagSensitive) {
  DnskeyRdata zsk{0x0100, 3, 8, {1, 2, 3, 4}};
  DnskeyRdata ksk{0x0101, 3, 8, {1, 2, 3, 4}};
  EXPECT_FALSE(zsk.is_ksk());
  EXPECT_TRUE(ksk.is_ksk());
  EXPECT_NE(zsk.key_tag(), ksk.key_tag());
  const DnskeyRdata zsk_copy{0x0100, 3, 8, {1, 2, 3, 4}};
  EXPECT_EQ(zsk.key_tag(), zsk_copy.key_tag());
}

}  // namespace
}  // namespace lookaside::dns
