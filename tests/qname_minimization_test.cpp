// Tests for RFC 7816 qname minimization and its interaction with the DLV
// leak (paper threat model §3: minimization changes which on-path parties
// see full names — but not what the DLV server sees).
#include <gtest/gtest.h>

#include <memory>

#include "dlv/registry.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"

namespace lookaside::resolver {
namespace {

class QminFixture {
 public:
  explicit QminFixture(bool minimize) : network_(clock_),
        testbed_(server::TestbedOptions{},
                 {{"example.com", false, false, false, {"www", "deep"}}}),
        registry_(dlv::DlvRegistry::Options{}) {
    testbed_.directory().register_zone(
        registry_.apex(),
        std::shared_ptr<sim::Endpoint>(&registry_, [](sim::Endpoint*) {}));
    ResolverConfig config = ResolverConfig::bind_manual_correct();
    config.qname_minimization = minimize;
    resolver_ = std::make_unique<RecursiveResolver>(
        network_, testbed_.directory(), config);
    resolver_->set_root_trust_anchor(testbed_.root_trust_anchor());
    resolver_->set_dlv_trust_anchor(registry_.trust_anchor());
    network_.set_capture_enabled(true);
  }

  /// Longest qname sent to `endpoint` (by label count).
  std::size_t deepest_name_seen(const std::string& endpoint) const {
    std::size_t deepest = 0;
    for (const auto& packet : network_.capture()) {
      if (packet.is_query && packet.to == endpoint) {
        deepest = std::max(deepest, packet.qname.label_count());
      }
    }
    return deepest;
  }

  sim::SimClock clock_;
  sim::Network network_;
  server::Testbed testbed_;
  dlv::DlvRegistry registry_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST(QnameMinimizationTest, ResolutionStillSucceeds) {
  QminFixture fixture(true);
  const auto result = fixture.resolver_->resolve({dns::Name::parse("www.example.com"), dns::RRType::kA});
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  ASSERT_NE(result.response.first_answer(dns::RRType::kA), nullptr);
}

TEST(QnameMinimizationTest, RootAndTldSeeOnlyMinimalNames) {
  QminFixture fixture(true);
  (void)fixture.resolver_->resolve({dns::Name::parse("www.example.com"), dns::RRType::kA});
  // Root sees at most 1 label ("com"), the TLD at most 2 ("example.com").
  EXPECT_LE(fixture.deepest_name_seen("root"), 1u);
  EXPECT_LE(fixture.deepest_name_seen("tld:com"), 2u);
  // The authoritative server must still see the full name.
  EXPECT_EQ(fixture.deepest_name_seen("auth:example.com"), 3u);
}

TEST(QnameMinimizationTest, WithoutMinimizationFullNamesReachRoot) {
  QminFixture fixture(false);
  (void)fixture.resolver_->resolve({dns::Name::parse("www.example.com"), dns::RRType::kA});
  EXPECT_EQ(fixture.deepest_name_seen("root"), 3u);
}

TEST(QnameMinimizationTest, NodataAtIntermediateLabelWidensAndContinues) {
  // "deep.example.com" exists as a host; resolving a name below it exercises
  // the RFC 7816 NODATA-widening path ("deep" has no NS).
  QminFixture fixture(true);
  const auto result = fixture.resolver_->resolve({dns::Name::parse("x.deep.example.com"), dns::RRType::kA});
  // The name does not exist; what matters is that resolution terminated
  // with a definite answer (not SERVFAIL from a bogus NODATA shortcut).
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNxDomain);
}

TEST(QnameMinimizationTest, DlvLeakIsUnaffected) {
  // The paper's asymmetry: minimization hides names from root/TLD but the
  // DLV query still carries the full domain to the third party.
  QminFixture fixture(true);
  (void)fixture.resolver_->resolve({dns::Name::parse("www.example.com"), dns::RRType::kA});
  bool dlv_saw_full_domain = false;
  for (const auto& observation : fixture.registry_.observations()) {
    if (observation.domain ==
        dns::Name::parse("www.example.com")) {
      dlv_saw_full_domain = true;
    }
  }
  EXPECT_TRUE(dlv_saw_full_domain);
}

}  // namespace
}  // namespace lookaside::resolver
