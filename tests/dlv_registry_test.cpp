// Unit tests for the DLV registry: deposits, name mapping (clear and
// hashed), query answering, the observation log, and the ISC phase-out.
#include <gtest/gtest.h>

#include "dlv/registry.h"

namespace lookaside::dlv {
namespace {

dns::Message dlv_query(const std::string& name) {
  return dns::Message::make_query(7, dns::Name::parse(name), dns::RRType::kDlv,
                                  false, true);
}

dns::DsRdata sample_ds(std::uint8_t fill = 0x42) {
  return dns::DsRdata{1234, 8, 2, dns::Bytes(32, fill)};
}

TEST(DlvNameMappingTest, ClearMapping) {
  const dns::Name apex = dns::Name::parse("dlv.isc.org");
  EXPECT_EQ(clear_dlv_name(dns::Name::parse("example.com"), apex),
            dns::Name::parse("example.com.dlv.isc.org"));
  EXPECT_EQ(clear_dlv_name(dns::Name::parse("bbs.sub1.example.com"), apex)
                .to_text(),
            "bbs.sub1.example.com.dlv.isc.org.");
}

TEST(DlvNameMappingTest, HashedMappingIsOpaqueAndStable) {
  const dns::Name apex = dns::Name::parse("dlv.isc.org");
  const dns::Name hashed =
      hashed_dlv_name(dns::Name::parse("example.com"), apex);
  EXPECT_TRUE(hashed.is_subdomain_of(apex));
  EXPECT_EQ(hashed.label_count(), apex.label_count() + 1);
  EXPECT_EQ(hashed.label(0).size(), 32u);  // 128-bit hex label
  // Stable and collision-free for distinct names.
  EXPECT_EQ(hashed, hashed_dlv_name(dns::Name::parse("example.com"), apex));
  EXPECT_NE(hashed, hashed_dlv_name(dns::Name::parse("example.net"), apex));
  // The clear name must not be recoverable by inspection.
  EXPECT_EQ(hashed.internal_text().find("example"), std::string::npos);
}

TEST(DlvRegistryTest, DepositAndAnswer) {
  DlvRegistry registry(DlvRegistry::Options{});
  registry.deposit(dns::Name::parse("island.com"), sample_ds());
  EXPECT_TRUE(registry.has_record(dns::Name::parse("island.com")));
  EXPECT_FALSE(registry.has_record(dns::Name::parse("other.com")));
  EXPECT_EQ(registry.record_count(), 1u);

  const dns::Message hit =
      registry.handle_query(dlv_query("island.com.dlv.isc.org"));
  EXPECT_EQ(hit.header.rcode, dns::RCode::kNoError);  // "No error"
  ASSERT_EQ(hit.answers.size(), 2u);                  // DLV + RRSIG
  EXPECT_EQ(hit.answers[0].type, dns::RRType::kDlv);
  EXPECT_EQ(std::get<dns::DsRdata>(hit.answers[0].rdata), sample_ds());

  const dns::Message miss =
      registry.handle_query(dlv_query("other.com.dlv.isc.org"));
  EXPECT_EQ(miss.header.rcode, dns::RCode::kNxDomain);  // "No such name"
  // Denial carries SOA + NSEC (+RRSIGs) for aggressive caching.
  bool has_nsec = false;
  for (const auto& record : miss.authorities) {
    has_nsec |= record.type == dns::RRType::kNsec;
  }
  EXPECT_TRUE(has_nsec);
}

TEST(DlvRegistryTest, ObservationsClassifyCases) {
  DlvRegistry registry(DlvRegistry::Options{});
  registry.deposit(dns::Name::parse("island.com"), sample_ds());
  (void)registry.handle_query(dlv_query("island.com.dlv.isc.org"));
  (void)registry.handle_query(dlv_query("leak.com.dlv.isc.org"));
  ASSERT_EQ(registry.observations().size(), 2u);
  EXPECT_TRUE(registry.observations()[0].had_record);
  EXPECT_EQ(registry.observations()[0].domain, dns::Name::parse("island.com"));
  EXPECT_FALSE(registry.observations()[1].had_record);
  EXPECT_EQ(registry.observations()[1].domain, dns::Name::parse("leak.com"));
  EXPECT_EQ(registry.total_queries(), 2u);
  EXPECT_EQ(registry.queries_with_record(), 1u);
}

TEST(DlvRegistryTest, ApexInfrastructureNotObserved) {
  DlvRegistry registry(DlvRegistry::Options{});
  (void)registry.handle_query(dns::Message::make_query(
      1, dns::Name::parse("dlv.isc.org"), dns::RRType::kDnskey, false, true));
  (void)registry.handle_query(dns::Message::make_query(
      2, dns::Name::parse("dlv.isc.org"), dns::RRType::kSoa, false, true));
  EXPECT_TRUE(registry.observations().empty());
  EXPECT_EQ(registry.total_queries(), 0u);
}

TEST(DlvRegistryTest, StorageToggleKeepsTotals) {
  DlvRegistry registry(DlvRegistry::Options{});
  registry.set_store_observations(false);
  int streamed = 0;
  registry.set_observer([&streamed](const Observation&) { ++streamed; });
  (void)registry.handle_query(dlv_query("a.com.dlv.isc.org"));
  EXPECT_TRUE(registry.observations().empty());
  EXPECT_EQ(registry.total_queries(), 1u);
  EXPECT_EQ(streamed, 1);
}

TEST(DlvRegistryTest, HashedModeHidesDomains) {
  DlvRegistry::Options options;
  options.hashed_registration = true;
  DlvRegistry registry(options);
  registry.deposit(dns::Name::parse("island.com"), sample_ds());
  EXPECT_TRUE(registry.has_record(dns::Name::parse("island.com")));

  const dns::Name query_name =
      registry.dlv_name_for(dns::Name::parse("island.com"));
  const dns::Message hit = registry.handle_query(
      dns::Message::make_query(1, query_name, dns::RRType::kDlv, false, true));
  EXPECT_EQ(hit.header.rcode, dns::RCode::kNoError);
  ASSERT_EQ(registry.observations().size(), 1u);
  EXPECT_TRUE(registry.observations()[0].domain.is_root());  // unrecoverable
}

TEST(DlvRegistryTest, PhaseOutKeepsAnsweringEmptyZone) {
  DlvRegistry registry(DlvRegistry::Options{});
  registry.deposit(dns::Name::parse("island.com"), sample_ds());
  registry.remove_all_records();
  EXPECT_EQ(registry.record_count(), 0u);
  EXPECT_FALSE(registry.has_record(dns::Name::parse("island.com")));
  const dns::Message response =
      registry.handle_query(dlv_query("island.com.dlv.isc.org"));
  EXPECT_EQ(response.header.rcode, dns::RCode::kNxDomain);
  // The trust anchor stays stable across the phase-out (same keys).
  EXPECT_EQ(registry.trust_anchor().key_tag(), registry.trust_anchor().key_tag());
  // Queries are still observed — the paper's §7.3.2 point — and every one
  // of them is now Case-2 by construction.
  EXPECT_EQ(registry.total_queries(), 1u);
  EXPECT_EQ(registry.queries_with_record(), 0u);
}

TEST(DlvRegistryTest, CustomApex) {
  DlvRegistry::Options options;
  options.apex = dns::Name::parse("dlv.trusted-keys.de");
  DlvRegistry registry(options);
  EXPECT_EQ(registry.endpoint_id(), "dlv:dlv.trusted-keys.de");
  registry.deposit(dns::Name::parse("x.com"), sample_ds());
  EXPECT_EQ(registry.dlv_name_for(dns::Name::parse("x.com")).to_text(),
            "x.com.dlv.trusted-keys.de.");
}

}  // namespace
}  // namespace lookaside::dlv
