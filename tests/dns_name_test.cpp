// Unit and property tests for dns::Name: parsing, hierarchy ops, canonical
// ordering (RFC 4034 §6.1) and wire form.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "crypto/rng.h"
#include "dns/name.h"
#include "dns/name_map.h"

namespace lookaside::dns {
namespace {

TEST(NameTest, ParseBasics) {
  const Name name = Name::parse("www.Example.COM");
  EXPECT_EQ(name.to_text(), "www.example.com.");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.label(0), "www");
  EXPECT_EQ(name.label(1), "example");
  EXPECT_EQ(name.label(2), "com");
  EXPECT_FALSE(name.is_root());
}

TEST(NameTest, TrailingDotIgnored) {
  EXPECT_EQ(Name::parse("example.com."), Name::parse("example.com"));
}

TEST(NameTest, RootForms) {
  EXPECT_TRUE(Name::parse("").is_root());
  EXPECT_TRUE(Name::parse(".").is_root());
  EXPECT_EQ(Name::root().to_text(), ".");
  EXPECT_EQ(Name::root().label_count(), 0u);
}

TEST(NameTest, RejectsBadNames) {
  EXPECT_THROW(Name::parse("a..b"), std::invalid_argument);
  EXPECT_THROW(Name::parse(".a"), std::invalid_argument);
  EXPECT_THROW(Name::parse(std::string(64, 'x') + ".com"),
               std::invalid_argument);
  // Total wire length > 255.
  std::string long_name;
  for (int i = 0; i < 10; ++i) long_name += std::string(30, 'a') + ".";
  long_name += "com";
  EXPECT_THROW(Name::parse(long_name), std::invalid_argument);
}

TEST(NameTest, MaxLabelLengthAccepted) {
  EXPECT_NO_THROW(Name::parse(std::string(63, 'x') + ".com"));
}

TEST(NameTest, ParentChain) {
  Name name = Name::parse("a.b.c.example.com");
  name = name.parent();
  EXPECT_EQ(name.to_text(), "b.c.example.com.");
  EXPECT_EQ(name.parent().parent().to_text(), "example.com.");
  EXPECT_TRUE(Name::parse("com").parent().is_root());
  EXPECT_THROW(Name::root().parent(), std::logic_error);
}

TEST(NameTest, PrefixAndConcat) {
  const Name base = Name::parse("example.com");
  EXPECT_EQ(base.with_prefix_label("www").to_text(), "www.example.com.");
  EXPECT_EQ(Name::root().with_prefix_label("org").to_text(), "org.");

  const Name dlv = Name::parse("dlv.isc.org");
  EXPECT_EQ(base.concat(dlv).to_text(), "example.com.dlv.isc.org.");
  EXPECT_EQ(Name::root().concat(dlv), dlv);
  EXPECT_EQ(dlv.concat(Name::root()), dlv);
}

TEST(NameTest, SubdomainChecks) {
  const Name com = Name::parse("com");
  const Name example = Name::parse("example.com");
  EXPECT_TRUE(example.is_subdomain_of(com));
  EXPECT_TRUE(example.is_subdomain_of(example));
  EXPECT_TRUE(example.is_subdomain_of(Name::root()));
  EXPECT_FALSE(com.is_subdomain_of(example));
  // Label-boundary matters: notexample.com is not under example.com.
  EXPECT_FALSE(Name::parse("notexample.com").is_subdomain_of(example));
  EXPECT_TRUE(Name::parse("a.example.com").is_subdomain_of(example));
}

TEST(NameTest, WithoutSuffix) {
  const Name full = Name::parse("example.com.dlv.isc.org");
  const Name dlv = Name::parse("dlv.isc.org");
  EXPECT_EQ(full.without_suffix(dlv).to_text(), "example.com.");
  EXPECT_TRUE(dlv.without_suffix(dlv).is_root());
  EXPECT_EQ(full.without_suffix(Name::root()), full);
  EXPECT_THROW(Name::parse("a.com").without_suffix(Name::parse("b.org")),
               std::invalid_argument);
}

TEST(NameTest, CanonicalOrderingRfc4034Example) {
  // RFC 4034 §6.1 gives this exact sorted sequence.
  std::vector<Name> names = {
      Name::parse("example"),       Name::parse("a.example"),
      Name::parse("yljkjljk.a.example"), Name::parse("z.a.example"),
      Name::parse("zabc.a.example"), Name::parse("z.example"),
  };
  std::vector<Name> shuffled = {names[3], names[0], names[5],
                                names[2], names[4], names[1]};
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, names);
}

TEST(NameTest, CanonicalCompareRootFirst) {
  EXPECT_LT(Name::root().canonical_compare(Name::parse("com")), 0);
  EXPECT_EQ(Name::parse("a.com").canonical_compare(Name::parse("A.COM")), 0);
}

TEST(NameTest, CanonicalOrderClustersByTld) {
  // The paper's DLV clustering effect relies on this: all .com names sort
  // together under the DLV apex.
  const Name a = Name::parse("zzz.com.dlv.isc.org");
  const Name b = Name::parse("aaa.net.dlv.isc.org");
  const Name c = Name::parse("aaa.com.dlv.isc.org");
  EXPECT_LT(c.canonical_compare(a), 0);
  EXPECT_LT(a.canonical_compare(b), 0);  // all com.* before net.*
}

TEST(NameTest, WireForm) {
  const Name name = Name::parse("example.com");
  const Bytes wire = name.to_wire();
  const Bytes expected = {7, 'e', 'x', 'a', 'm', 'p', 'l', 'e',
                          3, 'c', 'o', 'm', 0};
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(wire.size(), name.wire_length());
  EXPECT_EQ(Name::root().to_wire(), Bytes{0});
  EXPECT_EQ(Name::root().wire_length(), 1u);
}

TEST(NamePropertyTest, CanonicalCompareIsTotalOrder) {
  crypto::SplitMix64 rng(123);
  std::vector<Name> names;
  const char* tlds[] = {"com", "net", "org"};
  for (int i = 0; i < 60; ++i) {
    std::string text = "d" + std::to_string(rng.next_below(30));
    if (rng.next_below(2) == 0) text = "sub" + std::to_string(i % 5) + "." + text;
    names.push_back(Name::parse(text + "." + tlds[rng.next_below(3)]));
  }
  for (const Name& a : names) {
    for (const Name& b : names) {
      const int ab = a.canonical_compare(b);
      const int ba = b.canonical_compare(a);
      EXPECT_EQ(ab, -ba);
      EXPECT_EQ(ab == 0, a == b || a.to_text() == b.to_text());
      for (const Name& c : names) {
        if (ab < 0 && b.canonical_compare(c) < 0) {
          EXPECT_LT(a.canonical_compare(c), 0);  // transitivity
        }
      }
    }
  }
}

TEST(NamePropertyTest, ParentIsPrefixInverse) {
  crypto::SplitMix64 rng(5);
  for (int i = 0; i < 100; ++i) {
    const Name base = Name::parse("x" + std::to_string(rng.next()) + ".com");
    const std::string label = "l" + std::to_string(rng.next_below(1000));
    EXPECT_EQ(base.with_prefix_label(label).parent(), base);
  }
}

TEST(NameHashTest, MemoizedHashMatchesCanonicalText) {
  // Every construction path must leave hash() consistent with the
  // lowercase text — hierarchy ops included, since cache keys are often
  // derived names (parent zones, DLV-translated names).
  const Name a = Name::parse("WWW.Example.COM");
  EXPECT_EQ(a.hash(), Name::parse("www.example.com").hash());
  EXPECT_EQ(a.parent().hash(), Name::parse("example.com").hash());
  EXPECT_EQ(a.parent().parent().hash(), Name::parse("com").hash());
  EXPECT_EQ(Name::root().hash(), Name{}.hash());
  EXPECT_EQ(a.with_prefix_label("Sub").hash(),
            Name::parse("sub.www.example.com").hash());
  const Name dlv = Name::parse("dlv.isc.org");
  EXPECT_EQ(Name::parse("example.com").concat(dlv).hash(),
            Name::parse("example.com.dlv.isc.org").hash());
  EXPECT_EQ(Name::parse("example.com.dlv.isc.org").without_suffix(dlv).hash(),
            Name::parse("example.com").hash());
  // Unequal names should essentially never collide in a small corpus.
  std::set<std::size_t> hashes;
  for (int i = 0; i < 1'000; ++i) {
    hashes.insert(Name::parse("d" + std::to_string(i) + ".com").hash());
  }
  EXPECT_EQ(hashes.size(), 1'000u);
}

TEST(NameHashMapTest, InsertFindEraseAcrossRehashes) {
  NameHashMap<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(Name::parse("absent.com")), nullptr);
  // Grow well past several doublings of the 16-slot initial table.
  for (int i = 0; i < 500; ++i) {
    map.get_or_insert(Name::parse("d" + std::to_string(i) + ".com")) = i;
  }
  EXPECT_EQ(map.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const int* value = map.find(Name::parse("d" + std::to_string(i) + ".com"));
    ASSERT_NE(value, nullptr) << i;
    EXPECT_EQ(*value, i);
  }
  // get_or_insert on a present key returns the existing value.
  map.get_or_insert(Name::parse("d7.com")) = 777;
  EXPECT_EQ(map.size(), 500u);
  EXPECT_EQ(*map.find(Name::parse("d7.com")), 777);
  // Erase half; the rest stay reachable through the tombstones.
  for (int i = 0; i < 500; i += 2) {
    EXPECT_TRUE(map.erase(Name::parse("d" + std::to_string(i) + ".com")));
  }
  EXPECT_FALSE(map.erase(Name::parse("d0.com")));  // already gone
  EXPECT_EQ(map.size(), 250u);
  for (int i = 1; i < 500; i += 2) {
    ASSERT_NE(map.find(Name::parse("d" + std::to_string(i) + ".com")), nullptr)
        << i;
  }
  EXPECT_EQ(map.find(Name::parse("d0.com")), nullptr);
}

TEST(NameHashMapTest, TombstoneSlotsAreReusedAndCompacted) {
  NameHashMap<int> map;
  // Churn far more insert/erase cycles than any capacity could hold
  // without tombstone compaction; the map must stay correct throughout.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      map.get_or_insert(
          Name::parse("r" + std::to_string(round) + "i" + std::to_string(i) +
                      ".com")) = round * 100 + i;
    }
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(map.erase(Name::parse("r" + std::to_string(round) + "i" +
                                        std::to_string(i) + ".com")));
    }
    EXPECT_TRUE(map.empty()) << round;
  }
  map.get_or_insert(Name::parse("survivor.com")) = 1;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_NE(map.find(Name::parse("survivor.com")), nullptr);
}

TEST(NameHashMapTest, ForEachVisitsLiveEntriesOnly) {
  NameHashMap<int> map;
  for (int i = 0; i < 20; ++i) {
    map.get_or_insert(Name::parse("d" + std::to_string(i) + ".com")) = i;
  }
  for (int i = 0; i < 20; i += 2) {
    map.erase(Name::parse("d" + std::to_string(i) + ".com"));
  }
  int sum = 0;
  int count = 0;
  map.for_each([&](const Name& key, int& value) {
    EXPECT_FALSE(key.is_root());
    sum += value;
    ++count;
  });
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sum, 1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19);
}

TEST(NameHashMapTest, RootNameIsAValidKey) {
  NameHashMap<int> map;
  map.get_or_insert(Name::root()) = 42;
  ASSERT_NE(map.find(Name::root()), nullptr);
  EXPECT_EQ(*map.find(Name::root()), 42);
  EXPECT_TRUE(map.erase(Name::root()));
  EXPECT_EQ(map.find(Name::root()), nullptr);
}

}  // namespace
}  // namespace lookaside::dns
