// Unit tests for zone data, lookup semantics, NSEC chains, signing and key
// material.
#include <gtest/gtest.h>

#include "crypto/dnssec_algo.h"
#include "zone/keys.h"
#include "zone/signed_zone.h"
#include "zone/zone.h"

namespace lookaside::zone {
namespace {

dns::SoaRdata test_soa(const dns::Name& apex) {
  dns::SoaRdata soa;
  soa.primary_ns = apex.with_prefix_label("ns1");
  soa.responsible = apex.with_prefix_label("admin");
  soa.minimum_ttl = 900;
  return soa;
}

Zone make_com_zone() {
  const dns::Name apex = dns::Name::parse("com");
  Zone zone(apex, test_soa(apex));
  // Delegations.
  zone.add(dns::ResourceRecord::make(
      dns::Name::parse("example.com"), 3600,
      dns::NsRdata{dns::Name::parse("ns1.example.com")}));
  zone.add(dns::ResourceRecord::make(dns::Name::parse("ns1.example.com"), 3600,
                                     dns::ARdata{0x01010101}));  // glue
  zone.add(dns::ResourceRecord::make(
      dns::Name::parse("signed.com"), 3600,
      dns::NsRdata{dns::Name::parse("ns1.signed.com")}));
  zone.add(dns::ResourceRecord::make(dns::Name::parse("signed.com"), 3600,
                                     dns::DsRdata{1, 8, 2, dns::Bytes(32, 9)}));
  // In-zone host.
  zone.add(dns::ResourceRecord::make(dns::Name::parse("direct.com"), 3600,
                                     dns::ARdata{0x02020202}));
  return zone;
}

TEST(ZoneTest, RejectsOutOfZoneRecords) {
  Zone zone(dns::Name::parse("com"), test_soa(dns::Name::parse("com")));
  EXPECT_THROW(zone.add(dns::ResourceRecord::make(dns::Name::parse("a.org"),
                                                  60, dns::ARdata{1})),
               std::invalid_argument);
}

TEST(ZoneTest, AnswerLookup) {
  const Zone zone = make_com_zone();
  const LookupResult result =
      zone.lookup(dns::Name::parse("direct.com"), dns::RRType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  ASSERT_NE(result.rrset, nullptr);
  EXPECT_EQ(result.rrset->type(), dns::RRType::kA);
}

TEST(ZoneTest, ReferralAtCut) {
  const Zone zone = make_com_zone();
  const LookupResult result =
      zone.lookup(dns::Name::parse("www.example.com"), dns::RRType::kA);
  EXPECT_EQ(result.kind, LookupKind::kReferral);
  EXPECT_EQ(result.cut, dns::Name::parse("example.com"));
  EXPECT_EQ(result.ds, nullptr);  // unsigned delegation

  const LookupResult signed_result =
      zone.lookup(dns::Name::parse("signed.com"), dns::RRType::kA);
  EXPECT_EQ(signed_result.kind, LookupKind::kReferral);
  ASSERT_NE(signed_result.ds, nullptr);
}

TEST(ZoneTest, DsQueryAtCutAnsweredByParent) {
  const Zone zone = make_com_zone();
  const LookupResult ds =
      zone.lookup(dns::Name::parse("signed.com"), dns::RRType::kDs);
  EXPECT_EQ(ds.kind, LookupKind::kAnswer);
  const LookupResult no_ds =
      zone.lookup(dns::Name::parse("example.com"), dns::RRType::kDs);
  EXPECT_EQ(no_ds.kind, LookupKind::kNoData);
}

TEST(ZoneTest, NoDataAndNxDomain) {
  const Zone zone = make_com_zone();
  EXPECT_EQ(zone.lookup(dns::Name::parse("direct.com"), dns::RRType::kMx).kind,
            LookupKind::kNoData);
  EXPECT_EQ(zone.lookup(dns::Name::parse("missing.com"), dns::RRType::kA).kind,
            LookupKind::kNxDomain);
  EXPECT_EQ(zone.lookup(dns::Name::parse("else.where"), dns::RRType::kA).kind,
            LookupKind::kNxDomain);
}

TEST(ZoneTest, CnameAnswersOtherTypes) {
  Zone zone = make_com_zone();
  zone.add(dns::ResourceRecord::make(
      dns::Name::parse("alias.com"), 3600,
      dns::CnameRdata{dns::Name::parse("direct.com")}));
  const LookupResult result =
      zone.lookup(dns::Name::parse("alias.com"), dns::RRType::kA);
  EXPECT_EQ(result.kind, LookupKind::kAnswer);
  EXPECT_EQ(result.rrset->type(), dns::RRType::kCname);
}

TEST(ZoneTest, CanonicalNeighborsAndWrap) {
  const Zone zone = make_com_zone();
  // Canonical order: com < direct.com < example.com < ns1.example.com <
  // signed.com.
  // "missing" sorts after the whole example.com subtree (including the
  // glue owner ns1.example.com) and before "signed".
  EXPECT_EQ(zone.canonical_predecessor(dns::Name::parse("missing.com")),
            dns::Name::parse("ns1.example.com"));
  EXPECT_EQ(zone.canonical_successor(dns::Name::parse("signed.com")),
            dns::Name::parse("com"));  // wraps to the apex
  EXPECT_EQ(zone.canonical_successor(dns::Name::parse("com")),
            dns::Name::parse("direct.com"));
}

TEST(ZoneTest, TypesAtName) {
  const Zone zone = make_com_zone();
  const auto types = zone.types_at(dns::Name::parse("signed.com"));
  EXPECT_EQ(types.size(), 2u);  // NS + DS
  EXPECT_TRUE(zone.types_at(dns::Name::parse("nothere.com")).empty());
}

TEST(ZoneKeysTest, RecordsAndTags) {
  crypto::SplitMix64 rng(3);
  const ZoneKeys keys = ZoneKeys::generate(256, rng);
  EXPECT_FALSE(keys.zsk_record().is_ksk());
  EXPECT_TRUE(keys.ksk_record().is_ksk());
  EXPECT_NE(keys.zsk_tag(), keys.ksk_tag());
  EXPECT_EQ(keys.zsk_record().algorithm, 8);
}

TEST(ZoneKeysTest, MakeDsBindsOwnerAndKey) {
  crypto::SplitMix64 rng(4);
  const ZoneKeys keys = ZoneKeys::generate(256, rng);
  const dns::DsRdata ds1 = make_ds(dns::Name::parse("a.com"), keys.ksk_record());
  const dns::DsRdata ds2 = make_ds(dns::Name::parse("b.com"), keys.ksk_record());
  EXPECT_EQ(ds1.key_tag, keys.ksk_tag());
  EXPECT_EQ(ds1.digest_type, 2);
  EXPECT_EQ(ds1.digest.size(), 32u);
  EXPECT_NE(ds1.digest, ds2.digest);  // owner name is part of the digest
}

TEST(KeyPoolTest, DeterministicAssignment) {
  const KeyPool pool_a(4, 256, 11);
  const KeyPool pool_b(4, 256, 11);
  EXPECT_EQ(pool_a.keys_for(17).ksk_tag(), pool_b.keys_for(17).ksk_tag());
  EXPECT_EQ(pool_a.keys_for(1).ksk_tag(), pool_a.keys_for(5).ksk_tag());  // mod 4
}

class SignedZoneTest : public ::testing::Test {
 protected:
  SignedZoneTest() {
    crypto::SplitMix64 rng(5);
    zone_ = std::make_unique<SignedZone>(make_com_zone(),
                                         ZoneKeys::generate(256, rng));
  }
  std::unique_ptr<SignedZone> zone_;
};

TEST_F(SignedZoneTest, RrsigVerifiesWithZsk) {
  const dns::RRset* rrset =
      zone_->zone().find(dns::Name::parse("direct.com"), dns::RRType::kA);
  ASSERT_NE(rrset, nullptr);
  const dns::ResourceRecord rrsig = zone_->rrsig_for(*rrset);
  const auto& sig = std::get<dns::RrsigRdata>(rrsig.rdata);
  EXPECT_EQ(sig.key_tag, zone_->keys().zsk_tag());
  EXPECT_EQ(sig.signer, dns::Name::parse("com"));

  const auto key =
      crypto::RsaPublicKey::from_wire(zone_->keys().zsk_record().public_key);
  ASSERT_TRUE(key.has_value());
  EXPECT_TRUE(crypto::verify_message(*key, dns::rrsig_signed_data(sig, *rrset),
                                     sig.signature));
}

TEST_F(SignedZoneTest, DnskeySignedWithKsk) {
  const dns::ResourceRecord rrsig = zone_->rrsig_for(zone_->dnskey_rrset());
  EXPECT_EQ(std::get<dns::RrsigRdata>(rrsig.rdata).key_tag,
            zone_->keys().ksk_tag());
}

TEST_F(SignedZoneTest, SignatureCacheReused) {
  const dns::RRset* rrset =
      zone_->zone().find(dns::Name::parse("direct.com"), dns::RRType::kA);
  (void)zone_->rrsig_for(*rrset);
  const std::size_t after_first = zone_->signatures_computed();
  (void)zone_->rrsig_for(*rrset);
  EXPECT_EQ(zone_->signatures_computed(), after_first);
}

TEST_F(SignedZoneTest, NxdomainProofCoversName) {
  const dns::Name missing = dns::Name::parse("missing.com");
  const NsecProof proof = zone_->nxdomain_proof(missing);
  const auto& nsec = std::get<dns::NsecRdata>(proof.nsec.rdata);
  // owner < missing < next (or wrap).
  EXPECT_LT(proof.nsec.name.canonical_compare(missing), 0);
  const bool wraps = nsec.next == dns::Name::parse("com");
  EXPECT_TRUE(wraps || missing.canonical_compare(nsec.next) < 0);
  // Proof signature verifies.
  const auto& sig = std::get<dns::RrsigRdata>(proof.rrsig.rdata);
  dns::RRset nsec_set(proof.nsec.name, dns::RRType::kNsec);
  nsec_set.add(proof.nsec);
  const auto key =
      crypto::RsaPublicKey::from_wire(zone_->keys().zsk_record().public_key);
  EXPECT_TRUE(crypto::verify_message(
      *key, dns::rrsig_signed_data(sig, nsec_set), sig.signature));
}

TEST_F(SignedZoneTest, NodataProofOmitsType) {
  const NsecProof proof = zone_->nodata_proof(dns::Name::parse("direct.com"));
  const auto& nsec = std::get<dns::NsecRdata>(proof.nsec.rdata);
  EXPECT_EQ(proof.nsec.name, dns::Name::parse("direct.com"));
  // A exists at direct.com; MX does not.
  EXPECT_NE(std::find(nsec.types.begin(), nsec.types.end(), dns::RRType::kA),
            nsec.types.end());
  EXPECT_EQ(std::find(nsec.types.begin(), nsec.types.end(), dns::RRType::kMx),
            nsec.types.end());
}

TEST_F(SignedZoneTest, CorruptionBreaksVerification) {
  zone_->set_corrupt_signatures(true);
  const dns::RRset* rrset =
      zone_->zone().find(dns::Name::parse("direct.com"), dns::RRType::kA);
  const dns::ResourceRecord rrsig = zone_->rrsig_for(*rrset);
  const auto& sig = std::get<dns::RrsigRdata>(rrsig.rdata);
  const auto key =
      crypto::RsaPublicKey::from_wire(zone_->keys().zsk_record().public_key);
  EXPECT_FALSE(crypto::verify_message(
      *key, dns::rrsig_signed_data(sig, *rrset), sig.signature));
  // Turning corruption off restores good signatures.
  zone_->set_corrupt_signatures(false);
  const dns::ResourceRecord good = zone_->rrsig_for(*rrset);
  const auto& good_sig = std::get<dns::RrsigRdata>(good.rdata);
  EXPECT_TRUE(crypto::verify_message(
      *key, dns::rrsig_signed_data(good_sig, *rrset), good_sig.signature));
}

TEST_F(SignedZoneTest, DsForParentMatchesKsk) {
  const dns::DsRdata ds = zone_->ds_for_parent();
  EXPECT_EQ(ds.key_tag, zone_->keys().ksk_tag());
  EXPECT_EQ(ds, make_ds(dns::Name::parse("com"), zone_->keys().ksk_record()));
}

}  // namespace
}  // namespace lookaside::zone
