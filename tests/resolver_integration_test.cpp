// End-to-end integration tests: testbed hierarchy + DLV registry + recursive
// resolver, exercising the paper's core scenarios (secure chain, island of
// security rescued by DLV, Case-2 leakage, aggressive negative caching,
// misconfiguration leakage, bogus data, remedies).
#include <gtest/gtest.h>

#include <memory>

#include "dlv/registry.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"

namespace lookaside {
namespace {

using resolver::RecursiveResolver;
using resolver::ResolveResult;
using resolver::ResolverConfig;
using resolver::ValidationStatus;

/// Shared fixture wiring the full stack.
class IntegrationFixture {
 public:
  explicit IntegrationFixture(ResolverConfig config,
                              bool deposit_island = true)
      : network_(clock_),
        testbed_(server::TestbedOptions{},
                 {
                     {"unsigned.com", false, false, false, {"www"}},
                     {"another.com", false, false, false, {}},
                     {"zebra.com", false, false, false, {}},
                     {"chained.com", true, true, false, {}},
                     {"island.com", true, false, false, {}},
                     {"island2.org", true, false, false, {}},
                     {"corrupt.com", true, true, true, {}},
                 }),
        registry_(dlv::DlvRegistry::Options{}) {
    registry_.attach_clock(clock_);
    if (deposit_island) {
      registry_.deposit(dns::Name::parse("island.com"),
                        testbed_.signed_sld("island.com")->ds_for_parent());
    }
    // The registry is reachable through the directory like any authority.
    testbed_.directory().register_zone(
        registry_.apex(),
        std::shared_ptr<sim::Endpoint>(&registry_, [](sim::Endpoint*) {}));

    resolver_ = std::make_unique<RecursiveResolver>(
        network_, testbed_.directory(), std::move(config));
    resolver_->set_root_trust_anchor(testbed_.root_trust_anchor());
    resolver_->set_dlv_trust_anchor(registry_.trust_anchor());
  }

  ResolveResult resolve(const std::string& name,
                        dns::RRType type = dns::RRType::kA) {
    return resolver_->resolve({dns::Name::parse(name), type});
  }

  sim::SimClock clock_;
  sim::Network network_;
  server::Testbed testbed_;
  dlv::DlvRegistry registry_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST(IntegrationTest, ChainedDomainValidatesSecurelyWithoutDlv) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const ResolveResult result = fixture.resolve("chained.com");
  EXPECT_EQ(result.status, ValidationStatus::kSecure);
  EXPECT_FALSE(result.dlv.secured);
  EXPECT_FALSE(result.dlv.used);
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  EXPECT_TRUE(result.response.header.ad);
  ASSERT_NE(result.response.first_answer(dns::RRType::kA), nullptr);
}

TEST(IntegrationTest, IslandOfSecurityValidatesViaDlv) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const ResolveResult result = fixture.resolve("island.com");
  EXPECT_EQ(result.status, ValidationStatus::kSecure);
  EXPECT_TRUE(result.dlv.secured);
  EXPECT_TRUE(result.dlv.used);
  EXPECT_TRUE(result.dlv.record_found);
  ASSERT_FALSE(result.dlv.query_names.empty());
  EXPECT_EQ(result.dlv.query_names.front().to_text(),
            "island.com.dlv.isc.org.");
  // The registry observed a Case-1 query (record deposited).
  ASSERT_FALSE(fixture.registry_.observations().empty());
  EXPECT_TRUE(fixture.registry_.observations().back().had_record);
}

TEST(IntegrationTest, UnsignedDomainLeaksToDlvAsCase2) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const ResolveResult result = fixture.resolve("unsigned.com");
  EXPECT_EQ(result.status, ValidationStatus::kInsecure);
  EXPECT_TRUE(result.dlv.used);           // the paper's privacy leak
  EXPECT_FALSE(result.dlv.record_found);
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  // The DLV operator observed the domain without providing any utility.
  bool saw_domain = false;
  for (const auto& observation : fixture.registry_.observations()) {
    if (observation.domain == dns::Name::parse("unsigned.com")) {
      saw_domain = true;
      EXPECT_FALSE(observation.had_record);
    }
  }
  EXPECT_TRUE(saw_domain);
}

TEST(IntegrationTest, UndepositedIslandStaysInsecure) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const ResolveResult result = fixture.resolve("island2.org");
  EXPECT_EQ(result.status, ValidationStatus::kInsecure);
  EXPECT_TRUE(result.dlv.used);
  EXPECT_FALSE(result.dlv.record_found);
  EXPECT_FALSE(result.response.header.ad);
}

TEST(IntegrationTest, CorruptedSignaturesAreBogusServfail) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const ResolveResult result = fixture.resolve("corrupt.com");
  EXPECT_EQ(result.status, ValidationStatus::kBogus);
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kServFail);
  EXPECT_TRUE(result.response.answers.empty());
}

TEST(IntegrationTest, SecondResolutionServedFromCacheWithoutLeak) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  (void)fixture.resolve("unsigned.com");
  const std::uint64_t dlv_queries_before = fixture.registry_.total_queries();
  const ResolveResult result = fixture.resolve("unsigned.com");
  EXPECT_TRUE(result.from_cache);
  EXPECT_FALSE(result.dlv.used);
  EXPECT_EQ(fixture.registry_.total_queries(), dlv_queries_before);
}

TEST(IntegrationTest, AggressiveNegativeCachingSuppressesSecondLeak) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  (void)fixture.resolve("unsigned.com");
  // unsigned.com's DLV NXDOMAIN cached the NSEC "island.com... -> apex
  // (wrap)", which also covers zebra.com's DLV name (canonically after
  // island.com). another.com sorts *before* island.com, so it is NOT
  // covered — exactly the order-dependence of §5.1 "Order Matters".
  const ResolveResult covered = fixture.resolve("zebra.com");
  EXPECT_EQ(covered.status, ValidationStatus::kInsecure);
  EXPECT_FALSE(covered.dlv.used);
  EXPECT_TRUE(covered.dlv.suppressed_by_nsec);
  const ResolveResult result = fixture.resolve("another.com");
  EXPECT_EQ(result.status, ValidationStatus::kInsecure);
  EXPECT_TRUE(result.dlv.used);  // not covered: a fresh NSEC range
  EXPECT_FALSE(result.dlv.suppressed_by_nsec);
}

TEST(IntegrationTest, NsecCachingOffSendsEveryQuery) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.aggressive_negative_caching = false;  // NSEC3/NSEC5 world (§7.3)
  IntegrationFixture fixture(config);
  (void)fixture.resolve("unsigned.com");
  const ResolveResult result = fixture.resolve("zebra.com");
  EXPECT_TRUE(result.dlv.used);
  EXPECT_FALSE(result.dlv.suppressed_by_nsec);
}

TEST(IntegrationTest, NxDomainProvenAndCached) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const ResolveResult first = fixture.resolve("nosuchname.com");
  EXPECT_EQ(first.response.header.rcode, dns::RCode::kNxDomain);
  EXPECT_EQ(first.status, ValidationStatus::kSecure);  // signed denial
  EXPECT_FALSE(first.dlv.used);  // negative answers are never sent to DLV
  const ResolveResult second = fixture.resolve("nosuchname.com");
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.response.header.rcode, dns::RCode::kNxDomain);
}

TEST(IntegrationTest, MissingTrustAnchorSendsEvenSecureDomainsToDlv) {
  // The paper's Table 3 "apt-get†"/"manual" case: validation yes, anchor
  // missing, DLV enabled -> every domain (even chained.com) leaks.
  IntegrationFixture fixture(ResolverConfig::bind_apt_get_dagger());
  const ResolveResult result = fixture.resolve("chained.com");
  EXPECT_TRUE(result.dlv.used);
  EXPECT_NE(result.status, ValidationStatus::kSecure);
}

TEST(IntegrationTest, AptGetDefaultNeverTouchesDlv) {
  IntegrationFixture fixture(ResolverConfig::bind_apt_get());
  (void)fixture.resolve("unsigned.com");
  (void)fixture.resolve("chained.com");
  (void)fixture.resolve("island.com");
  EXPECT_EQ(fixture.registry_.total_queries(), 0u);
}

TEST(IntegrationTest, YumDefaultValidatesAndOnlyIslandsTouchDlv) {
  IntegrationFixture fixture(ResolverConfig::bind_yum());
  EXPECT_EQ(fixture.resolve("chained.com").status, ValidationStatus::kSecure);
  EXPECT_FALSE(fixture.resolver_->last_result().dlv.used);
  const ResolveResult island = fixture.resolve("island.com");
  EXPECT_TRUE(island.dlv.used);
  EXPECT_TRUE(island.dlv.secured);
}

TEST(IntegrationTest, UnboundCorrectMatchesBindCorrect) {
  IntegrationFixture fixture(ResolverConfig::unbound_correct());
  EXPECT_EQ(fixture.resolve("chained.com").status, ValidationStatus::kSecure);
  EXPECT_TRUE(fixture.resolve("island.com").dlv.secured);
  EXPECT_TRUE(fixture.resolve("unsigned.com").dlv.used);
}

TEST(IntegrationTest, UnboundManualDoesNothingDnssec) {
  IntegrationFixture fixture(ResolverConfig::unbound_manual());
  const ResolveResult result = fixture.resolve("chained.com");
  EXPECT_EQ(result.status, ValidationStatus::kIndeterminate);
  EXPECT_FALSE(result.dlv.used);
  EXPECT_EQ(fixture.registry_.total_queries(), 0u);
}

TEST(IntegrationTest, TxtRemedySuppressesCase2Leak) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.honor_txt_dlv_signal = true;
  IntegrationFixture fixture(config);
  fixture.testbed_.set_txt_dlv_signal("unsigned.com", false);
  fixture.testbed_.set_txt_dlv_signal("island.com", true);

  const ResolveResult blocked = fixture.resolve("unsigned.com");
  EXPECT_FALSE(blocked.dlv.used);
  EXPECT_TRUE(blocked.dlv.suppressed_by_signal);

  const ResolveResult allowed = fixture.resolve("island.com");
  EXPECT_TRUE(allowed.dlv.used);
  EXPECT_TRUE(allowed.dlv.secured);
}

TEST(IntegrationTest, ZBitRemedySuppressesCase2Leak) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.honor_z_bit_signal = true;
  IntegrationFixture fixture(config);
  fixture.testbed_.authority("island.com")->set_z_bit_signal(true);

  const ResolveResult blocked = fixture.resolve("unsigned.com");
  EXPECT_FALSE(blocked.dlv.used);
  EXPECT_TRUE(blocked.dlv.suppressed_by_signal);

  const ResolveResult allowed = fixture.resolve("island.com");
  EXPECT_TRUE(allowed.dlv.used);
  EXPECT_TRUE(allowed.dlv.secured);
}

TEST(IntegrationTest, HashedDlvHidesDomainFromRegistry) {
  ResolverConfig config = ResolverConfig::bind_manual_correct();
  config.hashed_dlv_queries = true;
  dlv::DlvRegistry::Options registry_options;
  registry_options.hashed_registration = true;

  sim::SimClock clock;
  sim::Network network(clock);
  server::Testbed testbed(server::TestbedOptions{},
                          {{"island.com", true, false, false, {}},
                           {"unsigned.com", false, false, false, {}}});
  dlv::DlvRegistry registry(registry_options);
  registry.deposit(dns::Name::parse("island.com"),
                   testbed.signed_sld("island.com")->ds_for_parent());
  testbed.directory().register_zone(
      registry.apex(),
      std::shared_ptr<sim::Endpoint>(&registry, [](sim::Endpoint*) {}));
  RecursiveResolver resolver(network, testbed.directory(), config);
  resolver.set_root_trust_anchor(testbed.root_trust_anchor());
  resolver.set_dlv_trust_anchor(registry.trust_anchor());

  // Deposited domain still validates through the hash.
  const ResolveResult island = resolver.resolve({dns::Name::parse("island.com"), dns::RRType::kA});
  EXPECT_TRUE(island.dlv.secured);

  // Leaked domain: the registry sees only a hash, not the name.
  (void)resolver.resolve({dns::Name::parse("unsigned.com"), dns::RRType::kA});
  for (const auto& observation : registry.observations()) {
    EXPECT_TRUE(observation.domain.is_root())
        << "registry recovered a domain name in hashed mode: "
        << observation.domain.to_text();
  }
}

TEST(IntegrationTest, DlvOutageIsToleratedAsInsecure) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  fixture.network_.set_unreachable(fixture.registry_.endpoint_id(), true);
  const ResolveResult result = fixture.resolve("unsigned.com");
  // Lookup fails but resolution proceeds unvalidated.
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(result.status, ValidationStatus::kInsecure);
}

TEST(IntegrationTest, PhaseOutEmptyZoneStillObservesQueries) {
  // §7.3.2: ISC removed all zones but kept the service running — every
  // query is now Case-2 by construction.
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  fixture.registry_.remove_all_records();
  (void)fixture.resolve("island.com");
  EXPECT_GT(fixture.registry_.total_queries(), 0u);
  EXPECT_EQ(fixture.registry_.queries_with_record(), 0u);
}

TEST(IntegrationTest, ResponseTimeAdvancesVirtualClock) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const std::uint64_t before = fixture.clock_.now_us();
  (void)fixture.resolve("unsigned.com");
  const std::uint64_t elapsed = fixture.clock_.now_us() - before;
  // At least root + TLD + auth round trips: 2*(30+25+10)ms = 130 ms.
  EXPECT_GT(elapsed, 100'000u);
  EXPECT_LT(elapsed, 5'000'000u);
}

TEST(IntegrationTest, QueryTypeCountersAccumulate) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  (void)fixture.resolve("unsigned.com");
  const auto& counters = fixture.network_.counters();
  EXPECT_GT(counters.value("query.A"), 0u);
  EXPECT_GT(counters.value("query.DLV"), 0u);
  EXPECT_GT(counters.value("query.DNSKEY"), 0u);
  EXPECT_GT(counters.value("query.DS"), 0u);
  EXPECT_GT(counters.value("bytes.total"), 0u);
}

TEST(IntegrationTest, StubFacingHandleQueryStripsDnssecForPlainStub) {
  IntegrationFixture fixture(ResolverConfig::bind_manual_correct());
  const dns::Message stub_query = dns::Message::make_query(
      7, dns::Name::parse("chained.com"), dns::RRType::kA,
      /*recursion_desired=*/true, /*dnssec_ok=*/false);
  const dns::Message response = fixture.resolver_->handle_query(stub_query);
  EXPECT_EQ(response.header.id, 7);
  EXPECT_FALSE(response.header.ad);
  for (const auto& record : response.answers) {
    EXPECT_NE(record.type, dns::RRType::kRrsig);
  }

  const dns::Message do_query = dns::Message::make_query(
      8, dns::Name::parse("chained.com"), dns::RRType::kA, true, true);
  const dns::Message do_response = fixture.resolver_->handle_query(do_query);
  EXPECT_TRUE(do_response.header.ad);
}

}  // namespace
}  // namespace lookaside
