// Tests for the core analysis layer: leakage classification, the secured-45
// experiment (Table 3), overhead measurement, DITL aggregation, the
// dictionary attack, and the survey constants.
#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/ditl_overhead.h"
#include "core/experiment.h"
#include "core/leakage.h"
#include "core/overhead.h"
#include "core/survey.h"
#include "workload/secured45.h"

namespace lookaside::core {
namespace {

UniverseExperiment::Options small_options(std::uint64_t size = 3'000) {
  UniverseExperiment::Options options;
  options.universe_size = size;
  options.stub.ptr_probability = 0.02;
  return options;
}

TEST(LeakageAnalyzerTest, ClassifiesCase1AndCase2) {
  dlv::DlvRegistry registry(dlv::DlvRegistry::Options{});
  LeakageAnalyzer analyzer(registry);
  registry.deposit(dns::Name::parse("deposited.com"),
                   dns::DsRdata{1, 8, 2, dns::Bytes(32, 1)});

  auto query = [&](const std::string& name) {
    (void)registry.handle_query(dns::Message::make_query(
        1, dns::Name::parse(name + ".dlv.isc.org"), dns::RRType::kDlv, false,
        true));
  };
  query("deposited.com");
  query("leaky.com");
  query("leaky.com");   // repeat query, same domain
  query("other.net");

  const LeakageReport& report = analyzer.report();
  EXPECT_EQ(report.dlv_queries, 4u);
  EXPECT_EQ(report.case1_queries, 1u);
  EXPECT_EQ(report.case2_queries, 3u);
  EXPECT_EQ(report.distinct_case1_domains, 1u);
  EXPECT_EQ(report.distinct_leaked_domains, 2u);
  EXPECT_NEAR(report.utility_fraction(), 0.25, 1e-9);
}

TEST(LeakageAnalyzerTest, ResetClearsState) {
  dlv::DlvRegistry registry(dlv::DlvRegistry::Options{});
  LeakageAnalyzer analyzer(registry);
  (void)registry.handle_query(dns::Message::make_query(
      1, dns::Name::parse("x.com.dlv.isc.org"), dns::RRType::kDlv, false,
      true));
  EXPECT_EQ(analyzer.report().dlv_queries, 1u);
  analyzer.reset();
  EXPECT_EQ(analyzer.report().dlv_queries, 0u);
  EXPECT_EQ(analyzer.report().distinct_leaked_domains, 0u);
}

TEST(UniverseExperimentTest, TopNLeaksMajority) {
  UniverseExperiment experiment(small_options());
  const LeakageReport report = experiment.run_topn(60);
  EXPECT_EQ(report.domains_visited, 60u);
  EXPECT_GT(report.distinct_leaked_domains, 30u);
  EXPECT_LE(report.distinct_leaked_domains, 60u);
  const PhaseMetrics metrics = experiment.metrics();
  EXPECT_GT(metrics.response_seconds, 1.0);
  EXPECT_GT(metrics.megabytes, 0.01);
  EXPECT_GT(metrics.queries, 120u);
}

TEST(UniverseExperimentTest, ShuffleChangesWhoLeaksNotScale) {
  const std::uint64_t n = 80;
  UniverseExperiment ordered(small_options());
  const auto ordered_report = ordered.run_topn(n);

  UniverseExperiment shuffled(small_options());
  const auto shuffled_report = shuffled.run_topn_shuffled(n, 99);

  EXPECT_EQ(shuffled_report.domains_visited, n);
  // Same scale (within a modest band), possibly different counts (§5.1).
  const auto a = ordered_report.distinct_leaked_domains;
  const auto b = shuffled_report.distinct_leaked_domains;
  EXPECT_GT(b, a / 2);
  EXPECT_LT(b, a * 2 + 10);
}

TEST(SecuredExperimentTest, Table3Reproduced) {
  // yum (anchors present): only islands touch DLV; everything validates.
  const SecuredRunResult yum =
      run_secured_45(resolver::ResolverConfig::bind_yum(), "yum");
  EXPECT_EQ(yum.domains, 45u);
  EXPECT_EQ(yum.sent_to_dlv, workload::kSecuredIslandCount);
  EXPECT_EQ(yum.validated_secure, 45u);
  EXPECT_EQ(yum.validated_via_dlv, workload::kSecuredIslandCount);

  // apt-get default: DLV disabled -> zero DLV exposure ("No").
  const SecuredRunResult apt =
      run_secured_45(resolver::ResolverConfig::bind_apt_get(), "apt-get");
  EXPECT_EQ(apt.sent_to_dlv, 0u);

  // apt-get† (anchor missing): all 45 secured domains leak ("Yes").
  const SecuredRunResult dagger = run_secured_45(
      resolver::ResolverConfig::bind_apt_get_dagger(), "apt-get+");
  EXPECT_EQ(dagger.sent_to_dlv, 45u);

  // manual (anchor missing): all 45 leak ("Yes").
  const SecuredRunResult manual =
      run_secured_45(resolver::ResolverConfig::bind_manual(), "manual");
  EXPECT_EQ(manual.sent_to_dlv, 45u);

  // Unbound correct: like yum — only the islands.
  const SecuredRunResult unbound =
      run_secured_45(resolver::ResolverConfig::unbound_correct(), "unbound");
  EXPECT_EQ(unbound.sent_to_dlv, workload::kSecuredIslandCount);
}

TEST(OverheadTest, TxtRemedyCostsMoreThanBaseline) {
  const OverheadRow row = measure_overhead(50, RemedyMode::kTxt,
                                           small_options());
  EXPECT_GT(row.with_remedy.queries, row.baseline.queries);
  EXPECT_GT(row.with_remedy.response_seconds, row.baseline.response_seconds);
  EXPECT_GT(row.with_remedy.megabytes, row.baseline.megabytes);
  EXPECT_GT(row.query_ratio(), 0.0);
  EXPECT_LT(row.query_ratio(), 0.6);
  EXPECT_GT(row.time_ratio(), 0.0);
}

TEST(OverheadTest, ZBitRemedyIsEssentiallyFree) {
  const OverheadRow row = measure_overhead(50, RemedyMode::kZBit,
                                           small_options());
  // The Z bit rides existing responses; it *suppresses* DLV queries, so the
  // remedy side can only be cheaper or equal.
  EXPECT_LE(row.with_remedy.queries, row.baseline.queries);
  EXPECT_LE(row.with_remedy.megabytes, row.baseline.megabytes + 0.001);
}

TEST(OverheadTest, QueryTypeCountsExposeTable4Mix) {
  UniverseExperiment experiment(small_options());
  (void)experiment.run_topn(100);
  const auto counts = query_type_counts(experiment.network());
  EXPECT_GT(counts.at("A"), counts.at("AAAA"));
  EXPECT_GT(counts.at("AAAA"), 0u);
  EXPECT_GT(counts.at("DS"), 0u);
  EXPECT_GT(counts.at("DNSKEY"), 0u);
  EXPECT_GT(counts.count("DLV"), 0u);
}

TEST(DitlOverheadTest, SeriesAccumulatesMonotonically) {
  PerQueryCost cost;
  cost.baseline_bytes = 300.0;
  cost.txt_extra_bytes = 25.0;
  workload::DitlOptions trace;
  trace.minutes = 60;
  trace.total_queries = 10'000'000;
  const auto series = ditl_overhead_series(trace, cost);
  ASSERT_EQ(series.size(), 60u);
  EXPECT_EQ(series.back().cumulative_queries, trace.total_queries);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].cumulative_overhead_mb,
              series[i - 1].cumulative_overhead_mb);
    EXPECT_GT(series[i].cumulative_baseline_mb,
              series[i].cumulative_overhead_mb);
  }
  // Overhead magnitude: queries * extra bytes.
  EXPECT_NEAR(series.back().cumulative_overhead_mb,
              10'000'000 * 25.0 / (1024.0 * 1024.0), 1.0);
}

TEST(DitlOverheadTest, CalibrationProducesPositiveCosts) {
  const PerQueryCost cost = calibrate_per_query_cost(40, small_options());
  EXPECT_GT(cost.baseline_bytes, 50.0);
  EXPECT_GT(cost.txt_extra_bytes, 0.0);
  EXPECT_LT(cost.txt_extra_bytes, cost.baseline_bytes);
}

TEST(DictionaryAttackTest, RecoversOnlyDictionaryMembers) {
  const dns::Name apex = dns::Name::parse("dlv.isc.org");
  workload::UniverseOptions universe_options;
  universe_options.size = 1'000;
  const workload::Universe universe(universe_options);

  // Observations: hashed names of ranks 1..100.
  std::vector<dns::Name> observed;
  for (std::uint64_t rank = 1; rank <= 100; ++rank) {
    observed.push_back(
        dlv::hashed_dlv_name(universe.domain_at(rank), apex));
  }

  // Attacker knows ranks 1..50 only.
  DictionaryAttacker half(apex, universe_dictionary(universe, 50, false));
  const auto half_result = half.attack(observed);
  EXPECT_EQ(half_result.recovered, 50u);
  EXPECT_EQ(half_result.observed_hashes, 100u);
  EXPECT_NEAR(half_result.recovery_rate(), 0.5, 1e-9);
  EXPECT_EQ(half_result.hash_computations, 50u);

  // Attacker with a disjoint dictionary recovers nothing.
  std::vector<dns::Name> disjoint;
  for (std::uint64_t rank = 500; rank < 550; ++rank) {
    disjoint.push_back(universe.domain_at(rank));
  }
  DictionaryAttacker miss(apex, disjoint);
  EXPECT_EQ(miss.attack(observed).recovered, 0u);
}

TEST(DictionaryAttackTest, DnssecOnlyDictionaryShrinksWork) {
  workload::UniverseOptions universe_options;
  universe_options.size = 5'000;
  const workload::Universe universe(universe_options);
  const auto all = universe_dictionary(universe, 5'000, false);
  const auto dnssec = universe_dictionary(universe, 5'000, true);
  EXPECT_LT(dnssec.size(), all.size() / 3);
  EXPECT_GT(dnssec.size(), 0u);
}

TEST(SurveyTest, PaperNumbers) {
  EXPECT_EQ(survey_total_respondents(), 56u);
  const auto practice = survey_configuration_practice();
  ASSERT_EQ(practice.size(), 3u);
  EXPECT_EQ(practice[0].respondents, 17u);
  EXPECT_NEAR(practice[0].percent, 30.35, 0.1);
  EXPECT_EQ(practice[1].respondents, 5u);
  EXPECT_NEAR(practice[1].percent, 8.9, 0.1);
  EXPECT_EQ(practice[2].respondents, 34u);
  EXPECT_NEAR(practice[2].percent, 60.7, 0.1);
  const auto anchors = survey_dlv_anchor_use();
  EXPECT_EQ(anchors[0].respondents, 35u);
  EXPECT_NEAR(anchors[0].percent, 62.5, 0.1);
}

TEST(RemedyNameTest, AllNamed) {
  EXPECT_STREQ(remedy_name(RemedyMode::kNone), "dlv-baseline");
  EXPECT_STREQ(remedy_name(RemedyMode::kTxt), "txt-signaling");
  EXPECT_STREQ(remedy_name(RemedyMode::kZBit), "z-bit");
  EXPECT_STREQ(remedy_name(RemedyMode::kHashed), "hashed-dlv");
}

}  // namespace
}  // namespace lookaside::core
