// NSEC3 hashed denial: iterated-hash edge cases against the RFC 5155
// Appendix A vectors, base32hex round-trips, zone-side chain/proof
// construction, validator-side proof checking with metered hash cost, the
// RFC 9276 iteration-cap policy, and CPU-budget admission at the serving
// frontend (ctest -L nsec3).
#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/sha1.h"
#include "resolver/validator.h"
#include "serve/scenario.h"
#include "sim/clock.h"
#include "workload/client_mix.h"
#include "zone/keys.h"
#include "zone/nsec3.h"
#include "zone/signed_zone.h"
#include "zone/zone.h"

namespace lookaside {
namespace {

const crypto::Bytes kRfcSalt = {0xaa, 0xbb, 0xcc, 0xdd};

// ---- Iterated hash: RFC 5155 Appendix A vectors (salt aabbccdd, 12). ----

TEST(Nsec3HashTest, MatchesRfc5155AppendixA) {
  const auto owner_hash = [](const char* name) {
    return zone::base32hex_encode(
        zone::nsec3_hash(dns::Name::parse(name), kRfcSalt, 12));
  };
  EXPECT_EQ(owner_hash("example"), "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom");
  EXPECT_EQ(owner_hash("a.example"), "35mthgpgcu1qg68fab165klnsnk3dpvl");
  EXPECT_EQ(owner_hash("ai.example"), "gjeqe526plbf1g8mklp59enfd789njgi");
  EXPECT_EQ(owner_hash("x.y.w.example"), "2vptu5timamqttgl4luu9kg21e0aor3s");
  EXPECT_EQ(owner_hash("*.w.example"), "r53bq7cc2uvmubfu5ocmm6pers9tk9en");
}

TEST(Nsec3HashTest, ZeroIterationsIsOneHashOfNamePlusSalt) {
  const dns::Name name = dns::Name::parse("example.org");
  crypto::Bytes input = name.to_wire();
  input.insert(input.end(), kRfcSalt.begin(), kRfcSalt.end());
  EXPECT_EQ(zone::nsec3_hash(name, kRfcSalt, 0), crypto::Sha1::digest(input));
  EXPECT_EQ(zone::nsec3_hash_ops(0), 1u);
}

TEST(Nsec3HashTest, EmptySaltIsValid) {
  const dns::Name name = dns::Name::parse("example.org");
  const crypto::Bytes empty_salted = zone::nsec3_hash(name, {}, 3);
  EXPECT_EQ(empty_salted.size(), 20u);
  // The salt must actually participate: same name, different salt, new hash.
  EXPECT_NE(empty_salted, zone::nsec3_hash(name, kRfcSalt, 3));
  EXPECT_EQ(zone::nsec3_hash(name, {}, 0), crypto::Sha1::digest(name.to_wire()));
}

TEST(Nsec3HashTest, MaxCapIterationsTerminatesAndDiffers) {
  // The u16 ceiling: 65535 extra invocations — the worst bill a single
  // attacker-supplied NSEC3PARAM can demand.
  const dns::Name name = dns::Name::parse("example.org");
  const crypto::Bytes at_cap = zone::nsec3_hash(name, kRfcSalt, 65535);
  EXPECT_EQ(at_cap.size(), 20u);
  EXPECT_NE(at_cap, zone::nsec3_hash(name, kRfcSalt, 65534));
  EXPECT_EQ(zone::nsec3_hash_ops(65535), 65536u);
}

TEST(Nsec3HashTest, HashIsCaseInsensitive) {
  EXPECT_EQ(zone::nsec3_hash(dns::Name::parse("ExAmPlE.OrG"), kRfcSalt, 5),
            zone::nsec3_hash(dns::Name::parse("example.org"), kRfcSalt, 5));
}

// ---- base32hex (RFC 4648 §7). ----

TEST(Base32HexTest, RoundTripsTwentyByteDigests) {
  const crypto::Bytes digest =
      zone::nsec3_hash(dns::Name::parse("round.trip"), kRfcSalt, 7);
  const std::string encoded = zone::base32hex_encode(digest);
  EXPECT_EQ(encoded.size(), 32u);
  EXPECT_EQ(zone::base32hex_decode(encoded), digest);
}

TEST(Base32HexTest, DecodeAcceptsUpperCase) {
  EXPECT_EQ(zone::base32hex_decode("7S"), zone::base32hex_decode("7s"));
}

TEST(Base32HexTest, DecodeRejectsBadInput) {
  EXPECT_THROW((void)zone::base32hex_decode("wxyz"), std::invalid_argument);
  EXPECT_THROW((void)zone::base32hex_decode("0"), std::invalid_argument);
  // 10 bits -> one byte + two leftover bits that are not zero padding.
  EXPECT_THROW((void)zone::base32hex_decode("7v"), std::invalid_argument);
}

TEST(Base32HexTest, EncodingPreservesDigestOrder) {
  // NSEC3 chains sort hashed owner labels lexicographically; that only
  // denies correctly because base32hex keeps the numeric digest order.
  const crypto::Bytes lo(20, 0x10);
  const crypto::Bytes hi(20, 0x11);
  EXPECT_LT(zone::base32hex_encode(lo), zone::base32hex_encode(hi));
}

// ---- Zone-side chain + validator-side proof checking. ----

class Nsec3ZoneTest : public ::testing::Test {
 protected:
  Nsec3ZoneTest() {
    const dns::Name apex = dns::Name::parse("dlv.example");
    dns::SoaRdata soa;
    soa.primary_ns = apex.with_prefix_label("ns1");
    soa.responsible = apex.with_prefix_label("admin");
    soa.minimum_ttl = 900;
    zone::Zone zone(apex, soa);
    zone.add(dns::ResourceRecord::make(
        dns::Name::parse("alpha.dlv.example"), 3600, dns::ARdata{0x01010101}));
    zone.add(dns::ResourceRecord::make(
        dns::Name::parse("beta.dlv.example"), 3600, dns::ARdata{0x02020202}));
    crypto::SplitMix64 rng(5);
    zone_ = std::make_unique<zone::SignedZone>(std::move(zone),
                                               zone::ZoneKeys::generate(256, rng));
    zone_->enable_nsec3(zone::Nsec3Params{11, kRfcSalt});
  }

  /// Packs proofs into the shape the validator sees (an authority section).
  resolver::GroupedSection as_authority(
      const std::vector<zone::NsecProof>& proofs) {
    std::vector<dns::ResourceRecord> section;
    for (const zone::NsecProof& proof : proofs) {
      section.push_back(proof.nsec);
      section.push_back(proof.rrsig);
    }
    return resolver::group_section(section);
  }

  std::unique_ptr<zone::SignedZone> zone_;
  sim::SimClock clock_;
  resolver::Validator validator_{clock_};
};

TEST_F(Nsec3ZoneTest, ApexCarriesNsec3Param) {
  const dns::RRset* param = zone_->zone().find(
      dns::Name::parse("dlv.example"), dns::RRType::kNsec3Param);
  ASSERT_NE(param, nullptr);
  const auto& rdata =
      std::get<dns::Nsec3ParamRdata>(param->records().front().rdata);
  EXPECT_EQ(rdata.iterations, 11);
  EXPECT_EQ(rdata.salt, kRfcSalt);
}

TEST_F(Nsec3ZoneTest, NxdomainProofVerifiesWithMeteredCost) {
  const dns::Name missing = dns::Name::parse("gamma.dlv.example");
  const resolver::GroupedSection authority =
      as_authority(zone_->nsec3_nxdomain_proof(missing));
  const resolver::Nsec3Check check = validator_.check_nsec3_denial(
      authority, missing, dns::Name::parse("dlv.example"),
      zone_->dnskey_rrset());
  EXPECT_TRUE(check.proven);
  EXPECT_EQ(check.iterations, 11);
  // Closest-encloser discovery hashed at least qname, one ancestor and the
  // wildcard — each a full iterated chain.
  EXPECT_GE(check.hash_ops, 3 * zone::nsec3_hash_ops(11));
}

TEST_F(Nsec3ZoneTest, NodataProofVerifies) {
  const dns::Name present = dns::Name::parse("alpha.dlv.example");
  const resolver::GroupedSection authority =
      as_authority(zone_->nsec3_nodata_proof(present));
  const resolver::Nsec3Check check = validator_.check_nsec3_denial(
      authority, present, dns::Name::parse("dlv.example"),
      zone_->dnskey_rrset());
  EXPECT_TRUE(check.proven);
}

TEST_F(Nsec3ZoneTest, ProofWithoutClosestEncloserDoesNotVerify) {
  // Strip the NSEC3 that matches the closest encloser (the apex) from
  // gamma's proof: the §8.4 ancestor walk then never finds a match, so the
  // remaining covering spans alone must not convince the validator.
  const dns::Name apex = dns::Name::parse("dlv.example");
  const dns::Name missing = dns::Name::parse("gamma.dlv.example");
  const dns::Name apex_owner = zone::nsec3_owner(apex, apex, kRfcSalt, 11);
  std::vector<zone::NsecProof> proofs;
  for (zone::NsecProof& proof : zone_->nsec3_nxdomain_proof(missing)) {
    if (proof.nsec.name == apex_owner) continue;
    proofs.push_back(std::move(proof));
  }
  const resolver::Nsec3Check check = validator_.check_nsec3_denial(
      as_authority(proofs), missing, apex, zone_->dnskey_rrset());
  EXPECT_FALSE(check.proven);
}

TEST_F(Nsec3ZoneTest, QnameOutsideApexDoesNotVerify) {
  const resolver::GroupedSection authority = as_authority(
      zone_->nsec3_nxdomain_proof(dns::Name::parse("gamma.dlv.example")));
  const resolver::Nsec3Check check = validator_.check_nsec3_denial(
      authority, dns::Name::parse("gamma.other.example"),
      dns::Name::parse("dlv.example"), zone_->dnskey_rrset());
  EXPECT_FALSE(check.proven);
}

TEST_F(Nsec3ZoneTest, TamperedProofDoesNotVerify) {
  const dns::Name missing = dns::Name::parse("gamma.dlv.example");
  std::vector<zone::NsecProof> proofs = zone_->nsec3_nxdomain_proof(missing);
  auto& rdata = std::get<dns::Nsec3Rdata>(proofs.front().nsec.rdata);
  rdata.next_hashed[0] ^= 0x01;  // break the span (and the signature)
  const resolver::Nsec3Check check = validator_.check_nsec3_denial(
      as_authority(proofs), missing, dns::Name::parse("dlv.example"),
      zone_->dnskey_rrset());
  EXPECT_FALSE(check.proven);
}

// ---- Resolver policy + frontend admission, end to end. ----

serve::ScenarioOptions nsec3_scenario(std::uint16_t iterations) {
  serve::ScenarioOptions options;
  options.universe_size = 1'000;
  options.seed = 5;
  options.mix.clients = 4;
  options.mix.queries_per_client = 12;
  options.mix.zipf_support = 200;
  options.mix.mean_gap_us = 100'000;
  options.dlv.nsec3_enabled = true;
  options.dlv.nsec3_iterations = iterations;
  options.dlv.nsec3_salt = kRfcSalt;
  options.resolver_config = resolver::ResolverConfig::bind_yum();
  options.resolver_config.nsec3_hash_cost_ns = 2'000;
  return options;
}

TEST(Nsec3PolicyTest, UncappedResolverPaysPerIteration) {
  serve::ScenarioOptions cheap = nsec3_scenario(16);
  serve::ScenarioOptions dear = nsec3_scenario(800);
  const serve::ScenarioSummary cheap_run = serve::ServeScenario(cheap).run();
  const serve::ScenarioSummary dear_run = serve::ServeScenario(dear).run();
  EXPECT_GT(cheap_run.validation_cpu_us, 0u);
  // 50x the iterations must cost well over an order of magnitude more.
  EXPECT_GT(dear_run.validation_cpu_us, cheap_run.validation_cpu_us * 10);
}

TEST(Nsec3PolicyTest, Rfc9276CapSkipsOverCapHashing) {
  serve::ScenarioOptions options = nsec3_scenario(800);
  options.resolver_config.nsec3_iteration_cap = 150;  // downgrade-to-insecure
  const serve::ScenarioSummary capped = serve::ServeScenario(options).run();
  EXPECT_EQ(capped.validation_cpu_us, 0u);
  // The denials still resolve (downgraded, not SERVFAILed): leaks happen.
  EXPECT_GT(capped.case2_total, 0u);
}

TEST(Nsec3PolicyTest, CapUnderIterationsStillHashes) {
  serve::ScenarioOptions options = nsec3_scenario(100);
  options.resolver_config.nsec3_iteration_cap = 150;
  const serve::ScenarioSummary run = serve::ServeScenario(options).run();
  EXPECT_GT(run.validation_cpu_us, 0u);
}

TEST(Nsec3AdmissionTest, StarvedBudgetShedsWithServfail) {
  serve::ScenarioOptions options = nsec3_scenario(800);
  // A budget far below the workload's validation demand: after the burst
  // is spent, queries must shed instead of hashing.
  options.frontend.cpu_budget_us_per_s = 200;
  options.frontend.cpu_burst_us = 2'000;
  const serve::ScenarioSummary run = serve::ServeScenario(options).run();
  EXPECT_GT(run.cpu_drops, 0u);

  // Same world without the budget: nothing sheds.
  const serve::ScenarioSummary open =
      serve::ServeScenario(nsec3_scenario(800)).run();
  EXPECT_EQ(open.cpu_drops, 0u);
}

TEST(Nsec3AdmissionTest, GenerousBudgetNeverSheds) {
  serve::ScenarioOptions options = nsec3_scenario(800);
  options.frontend.cpu_budget_us_per_s = 10'000'000;
  options.frontend.cpu_burst_us = 10'000'000;
  const serve::ScenarioSummary run = serve::ServeScenario(options).run();
  EXPECT_EQ(run.cpu_drops, 0u);
  EXPECT_GT(run.validation_cpu_us, 0u);
}

// ---- Adversarial ClientMix. ----

TEST(Nsec3MixTest, AttackFractionSplitsThePopulation) {
  workload::ClientMixOptions options;
  options.clients = 8;
  options.attack_fraction = 0.5;
  EXPECT_EQ(workload::ClientMix(options).first_attacker(), 4u);
  options.attack_fraction = 0.0;
  EXPECT_EQ(workload::ClientMix(options).first_attacker(), 8u);
  options.attack_fraction = 1.0;
  EXPECT_EQ(workload::ClientMix(options).first_attacker(), 0u);
}

TEST(Nsec3MixTest, AttackersCacheBustWhileBenignShareAHead) {
  workload::Universe universe({.seed = 41, .size = 2'000});
  workload::ClientMixOptions options;
  options.clients = 4;
  options.queries_per_client = 40;
  options.zipf_support = 25;
  options.attack_fraction = 0.5;
  const workload::ClientMix mix(options);
  const std::vector<workload::ClientQuery> schedule = mix.generate(universe);

  std::set<std::string> benign_names;
  std::set<std::string> attacker_names;
  std::uint64_t attacker_queries = 0;
  for (const workload::ClientQuery& query : schedule) {
    if (query.type != dns::RRType::kA) continue;
    if (query.client < mix.first_attacker()) {
      benign_names.insert(query.name.to_text());
    } else {
      attacker_names.insert(query.name.to_text());
      ++attacker_queries;
    }
  }
  // The benign head is bounded by the Zipf support; the attackers draw
  // nearly distinct names across the whole universe.
  EXPECT_LE(benign_names.size(), 25u);
  EXPECT_GT(attacker_names.size(), attacker_queries * 9 / 10);

  // Determinism: the schedule is a pure function of its options.
  EXPECT_EQ(schedule.size(), mix.generate(universe).size());
}

}  // namespace
}  // namespace lookaside
