// Parameterized property tests (TEST_P sweeps) over the system's core
// invariants:
//   - NSEC chains provide a covering denial for every absent name;
//   - the wire codec round-trips arbitrary generated messages;
//   - chain validation succeeds for every supported key size;
//   - leakage accounting partitions the DLV observation stream;
//   - resolution outcomes are deterministic given a seed.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.h"
#include "crypto/dnssec_algo.h"
#include "crypto/rng.h"
#include "dns/codec.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "zone/signed_zone.h"

namespace lookaside {
namespace {

// ---------------------------------------------------------------------------
// NSEC chain coverage property.
// ---------------------------------------------------------------------------

class NsecChainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NsecChainProperty, EveryAbsentNameHasAValidCoveringProof) {
  const std::uint64_t seed = GetParam();
  crypto::SplitMix64 rng(seed);

  // Random zone under "org" with 5-40 names.
  const dns::Name apex = dns::Name::parse("org");
  dns::SoaRdata soa;
  soa.primary_ns = dns::Name::parse("ns1.org");
  soa.responsible = dns::Name::parse("admin.org");
  soa.minimum_ttl = 600;
  zone::Zone plain(apex, soa);
  const std::uint64_t count = 5 + rng.next_below(36);
  std::set<std::string> present;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string label = "n" + std::to_string(rng.next_below(500));
    present.insert(label);
    plain.add(dns::ResourceRecord::make(
        apex.with_prefix_label(label), 300,
        dns::ARdata{static_cast<std::uint32_t>(rng.next())}));
  }
  crypto::SplitMix64 key_rng(seed + 1000);
  zone::SignedZone zone(std::move(plain),
                        zone::ZoneKeys::generate(256, key_rng));
  const auto key = crypto::RsaPublicKey::from_wire(
      zone.keys().zsk_record().public_key);
  ASSERT_TRUE(key.has_value());

  // Every absent label must get a covering NSEC whose range contains it and
  // whose signature verifies against the zone key.
  for (std::uint64_t probe = 0; probe < 60; ++probe) {
    const std::string label = "n" + std::to_string(rng.next_below(1000));
    if (present.count(label) != 0) continue;
    const dns::Name missing = apex.with_prefix_label(label);
    const zone::NsecProof proof = zone.nxdomain_proof(missing);
    const auto& nsec = std::get<dns::NsecRdata>(proof.nsec.rdata);

    EXPECT_LE(proof.nsec.name.canonical_compare(missing), 0)
        << proof.nsec.name.to_text() << " !<= " << missing.to_text();
    const bool wraps = nsec.next == apex;
    EXPECT_TRUE(wraps || missing.canonical_compare(nsec.next) < 0)
        << missing.to_text() << " !< " << nsec.next.to_text();

    dns::RRset nsec_set(proof.nsec.name, dns::RRType::kNsec);
    nsec_set.add(proof.nsec);
    const auto& sig = std::get<dns::RrsigRdata>(proof.rrsig.rdata);
    EXPECT_TRUE(crypto::verify_message(
        *key, dns::rrsig_signed_data(sig, nsec_set), sig.signature));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomZones, NsecChainProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Codec round-trip property over message shapes.
// ---------------------------------------------------------------------------

struct CodecShape {
  int answers;
  int authorities;
  bool edns;
  bool nxdomain;
};

class CodecRoundTripProperty : public ::testing::TestWithParam<CodecShape> {};

TEST_P(CodecRoundTripProperty, EncodeDecodeIdentity) {
  const CodecShape shape = GetParam();
  crypto::SplitMix64 rng(static_cast<std::uint64_t>(shape.answers) * 131 +
                         static_cast<std::uint64_t>(shape.authorities) * 7 +
                         shape.edns + shape.nxdomain * 2);
  for (int iteration = 0; iteration < 40; ++iteration) {
    dns::Message message;
    message.header.id = static_cast<std::uint16_t>(rng.next());
    message.header.qr = true;
    message.header.aa = rng.next_below(2);
    message.header.z = rng.next_below(2);
    message.header.rcode =
        shape.nxdomain ? dns::RCode::kNxDomain : dns::RCode::kNoError;
    message.edns = shape.edns;
    message.dnssec_ok = shape.edns && rng.next_below(2);
    const dns::Name qname = dns::Name::parse(
        "q" + std::to_string(rng.next_below(10000)) + ".example.net");
    message.questions.push_back(
        dns::Question{qname, dns::RRType::kA, dns::RRClass::kIn});
    for (int i = 0; i < shape.answers; ++i) {
      message.answers.push_back(dns::ResourceRecord::make(
          qname, static_cast<std::uint32_t>(rng.next_below(7200)),
          dns::ARdata{static_cast<std::uint32_t>(rng.next())}));
    }
    for (int i = 0; i < shape.authorities; ++i) {
      dns::NsecRdata nsec;
      nsec.next = dns::Name::parse("x" + std::to_string(i) + ".example.net");
      nsec.types = {dns::RRType::kA, dns::RRType::kNsec, dns::RRType::kDlv};
      message.authorities.push_back(dns::ResourceRecord::make(
          dns::Name::parse("w" + std::to_string(i) + ".example.net"), 600,
          dns::Rdata{nsec}));
    }
    EXPECT_EQ(dns::decode_message(dns::encode_message(message)), message);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecRoundTripProperty,
    ::testing::Values(CodecShape{0, 0, false, false},
                      CodecShape{1, 0, true, false},
                      CodecShape{3, 2, true, false},
                      CodecShape{0, 4, true, true},
                      CodecShape{8, 8, false, false},
                      CodecShape{2, 1, false, true}));

// ---------------------------------------------------------------------------
// Chain validation across key sizes.
// ---------------------------------------------------------------------------

class KeySizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KeySizeProperty, FullChainValidatesAtEveryKeySize) {
  server::TestbedOptions options;
  options.key_bits = GetParam();
  server::Testbed testbed(options, {{"secure.com", true, true, false, {}},
                                    {"plain.com", false, false, false, {}}});
  sim::SimClock clock;
  sim::Network network(clock);
  resolver::RecursiveResolver resolver(
      network, testbed.directory(),
      resolver::ResolverConfig::unbound_package());
  resolver.set_root_trust_anchor(testbed.root_trust_anchor());

  EXPECT_EQ(resolver.resolve({dns::Name::parse("secure.com"), dns::RRType::kA})
                .status,
            resolver::ValidationStatus::kSecure);
  EXPECT_EQ(resolver.resolve({dns::Name::parse("plain.com"), dns::RRType::kA})
                .status,
            resolver::ValidationStatus::kInsecure);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, KeySizeProperty,
                         ::testing::Values(256, 384, 512, 768));

// ---------------------------------------------------------------------------
// Leakage accounting partition property across seeds.
// ---------------------------------------------------------------------------

class LeakagePartitionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LeakagePartitionProperty, ObservationsPartitionExactly) {
  core::UniverseExperiment::Options options;
  options.universe_size = 4'000;
  options.seed = GetParam();
  core::UniverseExperiment experiment(options);
  const core::LeakageReport report = experiment.run_topn(150);

  // Queries partition into Case-1 and Case-2.
  EXPECT_EQ(report.case1_queries + report.case2_queries, report.dlv_queries);
  // Distinct domains bound the query counts.
  EXPECT_LE(report.distinct_leaked_domains, report.case2_queries);
  EXPECT_LE(report.distinct_case1_domains, report.case1_queries);
  // No domain can leak that was not visited (strip queries stay above the
  // registrable cut in this workload).
  EXPECT_LE(report.distinct_leaked_domains + report.distinct_case1_domains,
            report.domains_visited);
  EXPECT_GT(report.distinct_leaked_domains, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeakagePartitionProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Determinism property: identical seeds -> identical outcomes.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, RunsAreExactlyReproducible) {
  auto run = [&] {
    core::UniverseExperiment::Options options;
    options.universe_size = 3'000;
    options.seed = GetParam();
    core::UniverseExperiment experiment(options);
    const core::LeakageReport report = experiment.run_topn(80);
    const core::PhaseMetrics metrics = experiment.metrics();
    return std::make_tuple(report.dlv_queries, report.distinct_leaked_domains,
                           metrics.queries, metrics.response_seconds,
                           metrics.megabytes);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(7, 99, 1234));

}  // namespace
}  // namespace lookaside
