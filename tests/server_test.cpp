// Unit tests for authoritative response assembly, the server directory and
// the testbed builder.
#include <gtest/gtest.h>

#include "server/directory.h"
#include "server/testbed.h"
#include "server/zone_authority.h"

namespace lookaside::server {
namespace {

dns::Message query(const std::string& name, dns::RRType type,
                   bool dnssec_ok = true) {
  return dns::Message::make_query(3, dns::Name::parse(name), type, false,
                                  dnssec_ok);
}

class ZoneAuthorityTest : public ::testing::Test {
 protected:
  ZoneAuthorityTest()
      : testbed_(TestbedOptions{},
                 {{"plain.com", false, false, false, {"www"}},
                  {"secure.com", true, true, false, {}}}) {}
  Testbed testbed_;
};

TEST_F(ZoneAuthorityTest, AuthoritativeAnswerSetsAa) {
  auto authority = testbed_.authority("plain.com");
  const dns::Message response =
      authority->handle_query(query("plain.com", dns::RRType::kA));
  EXPECT_TRUE(response.header.aa);
  EXPECT_EQ(response.header.rcode, dns::RCode::kNoError);
  ASSERT_NE(response.first_answer(dns::RRType::kA), nullptr);
}

TEST_F(ZoneAuthorityTest, UnsignedZoneHasNoDnssecRecords) {
  auto authority = testbed_.authority("plain.com");
  const dns::Message response =
      authority->handle_query(query("plain.com", dns::RRType::kA));
  for (const auto& record : response.answers) {
    EXPECT_NE(record.type, dns::RRType::kRrsig);
  }
  EXPECT_FALSE(authority->is_signed());
}

TEST_F(ZoneAuthorityTest, SignedZoneAttachesRrsigOnlyWhenDoSet) {
  auto authority = testbed_.authority("secure.com");
  EXPECT_TRUE(authority->is_signed());
  const dns::Message with_do =
      authority->handle_query(query("secure.com", dns::RRType::kA, true));
  bool has_rrsig = false;
  for (const auto& record : with_do.answers) {
    has_rrsig |= record.type == dns::RRType::kRrsig;
  }
  EXPECT_TRUE(has_rrsig);

  const dns::Message without_do =
      authority->handle_query(query("secure.com", dns::RRType::kA, false));
  for (const auto& record : without_do.answers) {
    EXPECT_NE(record.type, dns::RRType::kRrsig);
  }
}

TEST_F(ZoneAuthorityTest, TldReferralCarriesGlueAndDsOrDenial) {
  auto tld = testbed_.authority("com");
  const dns::Message secure_referral =
      tld->handle_query(query("secure.com", dns::RRType::kA));
  EXPECT_FALSE(secure_referral.header.aa);
  bool has_ns = false, has_ds = false, has_glue = false;
  for (const auto& record : secure_referral.authorities) {
    has_ns |= record.type == dns::RRType::kNs;
    has_ds |= record.type == dns::RRType::kDs;
  }
  for (const auto& record : secure_referral.additionals) {
    has_glue |= record.type == dns::RRType::kA;
  }
  EXPECT_TRUE(has_ns);
  EXPECT_TRUE(has_ds);
  EXPECT_TRUE(has_glue);

  const dns::Message plain_referral =
      tld->handle_query(query("plain.com", dns::RRType::kA));
  bool has_nsec = false;
  for (const auto& record : plain_referral.authorities) {
    EXPECT_NE(record.type, dns::RRType::kDs);
    has_nsec |= record.type == dns::RRType::kNsec;
  }
  EXPECT_TRUE(has_nsec);  // proof there is no DS
}

TEST_F(ZoneAuthorityTest, NxdomainFromSignedZoneHasSoaAndNsec) {
  auto tld = testbed_.authority("com");
  const dns::Message response =
      tld->handle_query(query("missing.com", dns::RRType::kA));
  EXPECT_EQ(response.header.rcode, dns::RCode::kNxDomain);
  bool has_soa = false, has_nsec = false;
  for (const auto& record : response.authorities) {
    has_soa |= record.type == dns::RRType::kSoa;
    has_nsec |= record.type == dns::RRType::kNsec;
  }
  EXPECT_TRUE(has_soa);
  EXPECT_TRUE(has_nsec);
}

TEST_F(ZoneAuthorityTest, ApexDnskeyServedFromSigningState) {
  auto authority = testbed_.authority("secure.com");
  const dns::Message response =
      authority->handle_query(query("secure.com", dns::RRType::kDnskey));
  int dnskeys = 0;
  for (const auto& record : response.answers) {
    dnskeys += record.type == dns::RRType::kDnskey;
  }
  EXPECT_EQ(dnskeys, 2);  // ZSK + KSK
}

TEST_F(ZoneAuthorityTest, ZBitSignalRidesAnswers) {
  auto authority = testbed_.authority("plain.com");
  EXPECT_FALSE(authority->handle_query(query("plain.com", dns::RRType::kA))
                   .header.z);
  authority->set_z_bit_signal(true);
  EXPECT_TRUE(authority->handle_query(query("plain.com", dns::RRType::kA))
                  .header.z);
}

TEST_F(ZoneAuthorityTest, TxtSignalInjection) {
  testbed_.set_txt_dlv_signal("plain.com", false);
  auto authority = testbed_.authority("plain.com");
  const dns::Message response =
      authority->handle_query(query("plain.com", dns::RRType::kTxt));
  const auto* txt_record = response.first_answer(dns::RRType::kTxt);
  ASSERT_NE(txt_record, nullptr);
  EXPECT_EQ(std::get<dns::TxtRdata>(txt_record->rdata).strings[0], "dlv=0");
  EXPECT_THROW(testbed_.set_txt_dlv_signal("nope.com", true),
               std::invalid_argument);
}

TEST(ServerDirectoryTest, DeepestMatchAndFallback) {
  ServerDirectory directory;

  class Dummy : public sim::Endpoint {
   public:
    explicit Dummy(std::string id) : id_(std::move(id)) {}
    [[nodiscard]] std::string endpoint_id() const override { return id_; }
    [[nodiscard]] dns::Message handle_query(const dns::Message& q) override {
      return dns::Message::make_response(q);
    }
   private:
    std::string id_;
  };

  auto root = std::make_shared<Dummy>("root");
  auto com = std::make_shared<Dummy>("tld:com");
  directory.register_zone(dns::Name::root(), root);
  directory.register_zone(dns::Name::parse("com"), com);

  EXPECT_EQ(directory.authority_for_zone(dns::Name::parse("com")), com.get());
  EXPECT_EQ(directory.authority_for_zone(dns::Name::parse("net")), nullptr);

  dns::Name matched;
  EXPECT_EQ(directory.deepest_authority(dns::Name::parse("a.b.com"), &matched),
            com.get());
  EXPECT_EQ(matched, dns::Name::parse("com"));
  EXPECT_EQ(directory.deepest_authority(dns::Name::parse("x.org"), &matched),
            root.get());
  EXPECT_EQ(matched, dns::Name::root());

  auto fallback = std::make_shared<Dummy>("auth:universe");
  directory.set_fallback(
      [&fallback](const dns::Name&) { return fallback.get(); });
  EXPECT_EQ(directory.authority_for_zone(dns::Name::parse("x.org")),
            fallback.get());
  // Registered zones still win over the fallback.
  EXPECT_EQ(directory.authority_for_zone(dns::Name::parse("com")), com.get());
}

TEST(TestbedTest, RejectsBareTldAsSld) {
  EXPECT_THROW(Testbed(TestbedOptions{}, {{"com", false, false, false, {}}}),
               std::invalid_argument);
}

TEST(TestbedTest, SignedSldAccessors) {
  Testbed testbed(TestbedOptions{}, {{"a.com", true, true, false, {}},
                                     {"b.com", false, false, false, {}}});
  EXPECT_NE(testbed.signed_sld("a.com"), nullptr);
  EXPECT_EQ(testbed.signed_sld("b.com"), nullptr);
  EXPECT_EQ(testbed.signed_sld("missing.com"), nullptr);
  EXPECT_NE(testbed.authority(""), nullptr);     // root
  EXPECT_NE(testbed.authority("com"), nullptr);  // TLD
  EXPECT_EQ(testbed.sld_names().size(), 2u);
}

}  // namespace
}  // namespace lookaside::server
