// CNAME-chasing tests: alias answers, chase depth limits, caching of
// aliases, and the NameHash utility.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "dlv/registry.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"

namespace lookaside::resolver {
namespace {

class CnameFixture {
 public:
  CnameFixture()
      : network_(clock_),
        testbed_(server::TestbedOptions{},
                 {{"target.com", false, false, false, {}},
                  {"aliases.com", false, false, false, {}}}),
        registry_(dlv::DlvRegistry::Options{}) {
    testbed_.directory().register_zone(
        registry_.apex(),
        std::shared_ptr<sim::Endpoint>(&registry_, [](sim::Endpoint*) {}));
    // alias -> target.com (cross-zone), loop1 -> loop2 -> loop1.
    auto zone = testbed_.authority("aliases.com")->plain_zone();
    zone->add(dns::ResourceRecord::make(
        dns::Name::parse("alias.aliases.com"), 3600,
        dns::CnameRdata{dns::Name::parse("target.com")}));
    zone->add(dns::ResourceRecord::make(
        dns::Name::parse("loop1.aliases.com"), 3600,
        dns::CnameRdata{dns::Name::parse("loop2.aliases.com")}));
    zone->add(dns::ResourceRecord::make(
        dns::Name::parse("loop2.aliases.com"), 3600,
        dns::CnameRdata{dns::Name::parse("loop1.aliases.com")}));

    resolver_ = std::make_unique<RecursiveResolver>(
        network_, testbed_.directory(),
        ResolverConfig::bind_manual_correct());
    resolver_->set_root_trust_anchor(testbed_.root_trust_anchor());
    resolver_->set_dlv_trust_anchor(registry_.trust_anchor());
  }

  sim::SimClock clock_;
  sim::Network network_;
  server::Testbed testbed_;
  dlv::DlvRegistry registry_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST(CnameTest, CrossZoneChaseDeliversAddress) {
  CnameFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("alias.aliases.com"), dns::RRType::kA});
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  // Answer carries both the CNAME and the chased A record.
  bool has_cname = false, has_a = false;
  for (const auto& record : result.response.answers) {
    has_cname |= record.type == dns::RRType::kCname;
    has_a |= record.type == dns::RRType::kA &&
             record.name == dns::Name::parse("target.com");
  }
  EXPECT_TRUE(has_cname);
  EXPECT_TRUE(has_a);
}

TEST(CnameTest, QueryForCnameTypeDoesNotChase) {
  CnameFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("alias.aliases.com"), dns::RRType::kCname});
  ASSERT_NE(result.response.first_answer(dns::RRType::kCname), nullptr);
  EXPECT_EQ(result.response.first_answer(dns::RRType::kA), nullptr);
}

TEST(CnameTest, LoopTerminatesWithServfail) {
  CnameFixture fixture;
  const auto result = fixture.resolver_->resolve({dns::Name::parse("loop1.aliases.com"), dns::RRType::kA});
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kServFail);
}

TEST(CnameTest, SecondChaseServedFromCache) {
  CnameFixture fixture;
  (void)fixture.resolver_->resolve({dns::Name::parse("alias.aliases.com"), dns::RRType::kA});
  const auto before = fixture.network_.counters().value("packets.query");
  const auto result = fixture.resolver_->resolve({dns::Name::parse("alias.aliases.com"), dns::RRType::kA});
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(fixture.network_.counters().value("packets.query"), before);
}

TEST(NameHashTest, WorksAsUnorderedMapKey) {
  std::unordered_map<dns::Name, int, dns::NameHash> map;
  map[dns::Name::parse("a.com")] = 1;
  map[dns::Name::parse("B.COM")] = 2;  // case-normalized
  map[dns::Name::parse("b.com")] = 3;  // overwrites
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map[dns::Name::parse("b.com")], 3);
}

}  // namespace
}  // namespace lookaside::resolver
