// RFC 8198 aggressive synthesis + vState verdict caching (DESIGN.md §4j):
// the unified DenialProofSource API (origin attribution, deprecated-shim
// equivalence), the sorted span index against a linear reference model,
// hash-gated NSEC3 synthesis from cached closest-encloser evidence, the
// validator's signature-verdict cache (hit / expiry / key rollover /
// epoch flush / cross-shard sharing), and the scenario-level contracts:
// synthesis-on serving leaks exactly the sequential reference for any
// shard count, and under a byte cap synthesis never leaks more than the
// paper-era configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "crypto/dnssec_algo.h"
#include "resolver/cache.h"
#include "resolver/shared_store.h"
#include "resolver/validator.h"
#include "serve/sharded.h"
#include "sim/clock.h"
#include "zone/keys.h"
#include "zone/nsec3.h"

namespace lookaside::resolver {
namespace {

dns::Name name_of(const std::string& text) { return dns::Name::parse(text); }

dns::ResourceRecord nsec_span(const std::string& owner,
                              const std::string& next,
                              std::uint32_t ttl = 3600) {
  dns::NsecRdata nsec;
  nsec.next = name_of(next);
  nsec.types = {dns::RRType::kNs};
  return dns::ResourceRecord::make(name_of(owner), ttl, dns::Rdata{nsec});
}

// -- Span index vs linear reference model -------------------------------------

TEST(SpanIndex, MatchesLinearReferenceWalkOverTheWholeChain) {
  sim::SimClock clock;
  ResolverCache cache(clock);
  const dns::Name apex = name_of("example.com");

  // Even-numbered owners chain to the next even number; odd probes fall in
  // the gaps. Fixed-width labels make lexicographic == canonical order.
  struct Span {
    dns::Name owner;
    dns::Name next;
  };
  std::vector<Span> spans;
  for (int i = 0; i < 40; ++i) {
    char owner[32];
    char next[32];
    std::snprintf(owner, sizeof owner, "n%03d.example.com", 2 * i);
    std::snprintf(next, sizeof next, "n%03d.example.com", 2 * i + 2);
    spans.push_back({name_of(owner), name_of(next)});
    cache.store_nsec(apex, nsec_span(owner, next));
  }

  // Reference model: a probe is covered iff some stored span strictly
  // brackets it in canonical order.
  const auto model_covers = [&spans](const dns::Name& probe) {
    for (const Span& span : spans) {
      if (span.owner.canonical_compare(probe) < 0 &&
          probe.canonical_compare(span.next) < 0) {
        return true;
      }
    }
    return false;
  };

  for (int k = 0; k < 81; ++k) {
    char text[32];
    std::snprintf(text, sizeof text, "n%03dx.example.com", k);
    const dns::Name probe = name_of(text);
    const ProofResult proof =
        cache.find_denial(apex, probe, dns::RRType::kA, DenialSources::kSpans);
    EXPECT_EQ(static_cast<bool>(proof), model_covers(probe)) << text;
    if (proof) {
      EXPECT_EQ(proof.coverage, DenialKind::kNxDomain) << text;
      EXPECT_EQ(proof.origin, ProofOrigin::kSynthesized) << text;
    }
  }
}

TEST(SpanIndex, SurvivesExpiryDrivenMutationOfTheChain) {
  sim::SimClock clock;
  ResolverCache cache(clock);
  const dns::Name apex = name_of("example.com");
  cache.store_nsec(apex, nsec_span("a.example.com", "c.example.com",
                                   /*ttl=*/10));
  cache.store_nsec(apex, nsec_span("m.example.com", "q.example.com",
                                   /*ttl=*/3600));

  EXPECT_TRUE(cache.find_denial(apex, name_of("b.example.com"),
                                dns::RRType::kA, DenialSources::kSpans));
  clock.advance_seconds(60);
  // The short span expired: probing it reclaims the entry (invalidating
  // the index), and the long span must still answer through the rebuilt
  // index afterwards.
  EXPECT_FALSE(cache.find_denial(apex, name_of("b.example.com"),
                                 dns::RRType::kA, DenialSources::kSpans));
  const ProofResult live =
      cache.find_denial(apex, name_of("n.example.com"), dns::RRType::kA,
                        DenialSources::kSpans);
  EXPECT_TRUE(live);
  EXPECT_EQ(live.coverage, DenialKind::kNxDomain);
  EXPECT_EQ(cache.nsec_count(apex), 1u);
}

// -- Unified find_denial origin attribution -----------------------------------

TEST(FindDenial, AttributesLocalSharedAndSynthesizedOrigins) {
  sim::SimClock clock_a;
  sim::SimClock clock_b;
  ResolverCache cache_a(clock_a);
  ResolverCache cache_b(clock_b);
  SharedProofStore store;
  cache_a.attach_shared(&store, 0);
  cache_b.attach_shared(&store, 1);
  const dns::Name apex = name_of("example.com");

  // Exact RFC 2308 entry: origin kLocal, kind follows the rcode.
  cache_a.store_negative(name_of("gone.example.com"), dns::RRType::kA, 300,
                         /*nxdomain=*/true);
  const ProofResult negative = cache_a.find_denial(
      apex, name_of("gone.example.com"), dns::RRType::kA);
  ASSERT_TRUE(negative);
  EXPECT_EQ(negative.coverage, DenialKind::kNxDomain);
  EXPECT_EQ(negative.origin, ProofOrigin::kLocal);
  EXPECT_GT(negative.expires_us, 0u);

  cache_a.store_negative(name_of("half.example.com"), dns::RRType::kAaaa, 300,
                         /*nxdomain=*/false);
  EXPECT_EQ(cache_a
                .find_denial(apex, name_of("half.example.com"),
                             dns::RRType::kAaaa)
                .coverage,
            DenialKind::kNoData);

  // A local span hit is RFC 8198 synthesis.
  cache_a.store_nsec(apex, nsec_span("alpha.example.com", "omega.example.com"));
  const ProofResult synthesized = cache_a.find_denial(
      apex, name_of("m.example.com"), dns::RRType::kA);
  ASSERT_TRUE(synthesized);
  EXPECT_EQ(synthesized.origin, ProofOrigin::kSynthesized);
  EXPECT_EQ(synthesized.hash_ops, 0u);

  // The sibling sees the same span through the store: origin kShared.
  const ProofResult shared = cache_b.find_denial(
      apex, name_of("m.example.com"), dns::RRType::kA);
  ASSERT_TRUE(shared);
  EXPECT_EQ(shared.coverage, DenialKind::kNxDomain);
  EXPECT_EQ(shared.origin, ProofOrigin::kShared);
  EXPECT_EQ(store.stats().nsec_sibling_hits, 1u);

  // Source masking: the span cannot answer through kNegative alone.
  EXPECT_FALSE(cache_a.find_denial(apex, name_of("m.example.com"),
                                   dns::RRType::kA, DenialSources::kNegative));
}

// -- Deprecated shims ---------------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(FindDenial, DeprecatedShimsMatchTheUnifiedApi) {
  sim::SimClock clock;
  ResolverCache cache(clock);
  const dns::Name apex = name_of("example.com");
  cache.store_negative(name_of("gone.example.com"), dns::RRType::kA, 300,
                       /*nxdomain=*/true);
  cache.store_negative(name_of("half.example.com"), dns::RRType::kAaaa, 300,
                       /*nxdomain=*/false);
  cache.store_nsec(apex, nsec_span("alpha.example.com", "omega.example.com"));

  const auto negative_of = [](const ProofResult& proof) {
    if (!proof) return NegativeEntry::kNone;
    return proof.coverage == DenialKind::kNxDomain ? NegativeEntry::kNxDomain
                                                   : NegativeEntry::kNoData;
  };
  const auto coverage_of = [](const ProofResult& proof) {
    if (!proof) return NsecCoverage::kNoProof;
    return proof.coverage == DenialKind::kNxDomain
               ? NsecCoverage::kNameCovered
               : NsecCoverage::kTypeAbsent;
  };

  for (const char* probe : {"gone.example.com", "half.example.com",
                            "m.example.com", "zz.example.com"}) {
    for (const dns::RRType qtype : {dns::RRType::kA, dns::RRType::kAaaa,
                                    dns::RRType::kNs}) {
      const dns::Name qname = name_of(probe);
      std::uint64_t shim_expiry = 0;
      std::uint64_t unified_expiry = 0;
      const NegativeEntry shim_negative =
          cache.find_negative(qname, qtype, &shim_expiry);
      const ProofResult unified_negative =
          cache.find_denial(qname, qname, qtype, DenialSources::kNegative);
      unified_expiry = unified_negative.expires_us;
      EXPECT_EQ(shim_negative, negative_of(unified_negative)) << probe;
      if (shim_negative != NegativeEntry::kNone) {
        EXPECT_EQ(shim_expiry, unified_expiry) << probe;
      }

      std::uint64_t shim_nsec_expiry = 0;
      const NsecCoverage shim_coverage =
          cache.nsec_check(apex, qname, qtype, &shim_nsec_expiry);
      const ProofResult unified_span =
          cache.find_denial(apex, qname, qtype, DenialSources::kSpans);
      EXPECT_EQ(shim_coverage, coverage_of(unified_span)) << probe;
      if (shim_coverage != NsecCoverage::kNoProof) {
        EXPECT_EQ(shim_nsec_expiry, unified_span.expires_us) << probe;
      }
    }
  }
}
#pragma GCC diagnostic pop

// -- NSEC3 hash-gated synthesis -----------------------------------------------

class Nsec3SynthTest : public ::testing::Test {
 protected:
  Nsec3SynthTest() : cache_(clock_) {}

  ResolverCache::Nsec3Evidence evidence(const std::string& encloser,
                                        std::uint16_t iterations = 5) {
    ResolverCache::Nsec3Evidence out;
    out.salt = {0xAB, 0xCD};
    out.iterations = iterations;
    out.closest_encloser = name_of(encloser);
    // One span covering the entire hash ring interior: any next-closer
    // hash lands inside it.
    out.spans.emplace_back(crypto::Bytes(20, 0x00), crypto::Bytes(20, 0xFF));
    out.expires_us = clock_.now_us() + 3'600'000'000ULL;
    return out;
  }

  sim::SimClock clock_;
  ResolverCache cache_;
  dns::Name apex_ = name_of("example.com");
};

TEST_F(Nsec3SynthTest, SynthesizesOnlyUnderACachedCloserEncloser) {
  cache_.store_nsec3_evidence(apex_, evidence("sub.example.com"));

  // Gated and covered: one iterated hash of the next closer, NXDOMAIN.
  const ProofResult hit = cache_.find_denial(
      apex_, name_of("gone.sub.example.com"), dns::RRType::kA,
      DenialSources::kNsec3);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.coverage, DenialKind::kNxDomain);
  EXPECT_EQ(hit.origin, ProofOrigin::kSynthesized);
  EXPECT_EQ(hit.hash_ops, zone::nsec3_hash_ops(5));

  // No cached encloser above this name: the gate closes before any
  // hashing happens.
  const ProofResult ungated = cache_.find_denial(
      apex_, name_of("gone.other.example.com"), dns::RRType::kA,
      DenialSources::kNsec3);
  EXPECT_FALSE(ungated);
  EXPECT_EQ(ungated.hash_ops, 0u);
}

TEST_F(Nsec3SynthTest, HashOutsideEverySpanStaysSilentButChargesTheHash) {
  ResolverCache::Nsec3Evidence narrow = evidence("sub.example.com");
  // Degenerate span [h, h): wraps and contains nothing.
  const crypto::Bytes digest = zone::nsec3_hash(
      name_of("gone.sub.example.com"), narrow.salt, narrow.iterations);
  narrow.spans.clear();
  narrow.spans.emplace_back(digest, digest);
  cache_.store_nsec3_evidence(apex_, narrow);

  const ProofResult miss = cache_.find_denial(
      apex_, name_of("gone.sub.example.com"), dns::RRType::kA,
      DenialSources::kNsec3);
  EXPECT_FALSE(miss);
  // The gate opened, so the hash was computed (and must be charged).
  EXPECT_EQ(miss.hash_ops, zone::nsec3_hash_ops(5));
}

TEST_F(Nsec3SynthTest, ExpiredEvidenceClosesTheGate) {
  ResolverCache::Nsec3Evidence brief = evidence("sub.example.com");
  brief.expires_us = clock_.now_us() + 1'000'000;
  cache_.store_nsec3_evidence(apex_, brief);
  clock_.advance_seconds(10);
  const ProofResult stale = cache_.find_denial(
      apex_, name_of("gone.sub.example.com"), dns::RRType::kA,
      DenialSources::kNsec3);
  EXPECT_FALSE(stale);
  EXPECT_EQ(stale.hash_ops, 0u);
}

TEST_F(Nsec3SynthTest, ParameterRolloverDropsOldSpans) {
  cache_.store_nsec3_evidence(apex_, evidence("sub.example.com"));
  EXPECT_EQ(cache_.nsec3_evidence_spans(apex_), 1u);

  ResolverCache::Nsec3Evidence rolled = evidence("sub.example.com");
  rolled.salt = {0x01};  // salt change: old hashes are garbage
  rolled.spans.clear();
  cache_.store_nsec3_evidence(apex_, rolled);
  EXPECT_EQ(cache_.nsec3_evidence_spans(apex_), 0u);
  EXPECT_FALSE(cache_.find_denial(apex_, name_of("gone.sub.example.com"),
                                  dns::RRType::kA, DenialSources::kNsec3));
}

// -- vState verdict cache -----------------------------------------------------

class VerdictCacheTest : public ::testing::Test {
 protected:
  VerdictCacheTest() : validator_(clock_) {
    crypto::SplitMix64 rng(9);
    keys_ = zone::ZoneKeys::generate(256, rng);
    dnskeys_ = dnskey_rrset(*keys_);
    rrset_ = dns::RRset(owner_, dns::RRType::kA);
    rrset_.add(dns::ResourceRecord::make(owner_, 300, dns::ARdata{42}));
    validator_.set_verdict_cache_entries(64);
  }

  dns::RRset dnskey_rrset(const zone::ZoneKeys& keys) const {
    dns::RRset out(owner_, dns::RRType::kDnskey);
    out.add(dns::ResourceRecord::make(owner_, 3600,
                                      dns::Rdata{keys.zsk_record()}));
    out.add(dns::ResourceRecord::make(owner_, 3600,
                                      dns::Rdata{keys.ksk_record()}));
    return out;
  }

  dns::ResourceRecord make_signature(const zone::ZoneKeys& keys,
                                     std::uint32_t expiration = 0x7FFFFFFF) {
    dns::RrsigRdata sig;
    sig.type_covered = dns::RRType::kA;
    sig.algorithm = 8;
    sig.labels = 2;
    sig.original_ttl = 300;
    sig.inception = 0;
    sig.expiration = expiration;
    sig.key_tag = keys.zsk_tag();
    sig.signer = owner_;
    sig.signature = crypto::sign_message(
        keys.zsk_private(), dns::rrsig_signed_data(sig, rrset_));
    return dns::ResourceRecord::make(owner_, 300, dns::Rdata{sig});
  }

  std::uint64_t counter(const char* name) const {
    return validator_.counters().value(name);
  }

  sim::SimClock clock_;
  Validator validator_;
  dns::Name owner_ = dns::Name::parse("example.com");
  std::optional<zone::ZoneKeys> keys_;
  dns::RRset dnskeys_;
  dns::RRset rrset_;
};

TEST_F(VerdictCacheTest, RepeatVerificationSkipsRsa) {
  const dns::ResourceRecord sig = make_signature(*keys_);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig}, dnskeys_),
            SigCheck::kValid);
  EXPECT_EQ(counter("verdict.miss"), 1u);
  EXPECT_EQ(counter("verdict.rsa_skipped"), 0u);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig}, dnskeys_),
            SigCheck::kValid);
  EXPECT_EQ(counter("verdict.rsa_skipped"), 1u);
  EXPECT_EQ(counter("verdict.miss"), 1u);
}

TEST_F(VerdictCacheTest, InvalidVerdictsAreMemoizedToo) {
  dns::ResourceRecord tampered = make_signature(*keys_);
  std::get<dns::RrsigRdata>(tampered.rdata).signature[5] ^= 0x01;
  EXPECT_EQ(validator_.verify_rrset(rrset_, {tampered}, dnskeys_),
            SigCheck::kInvalid);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {tampered}, dnskeys_),
            SigCheck::kInvalid);
  EXPECT_EQ(counter("verdict.rsa_skipped"), 1u);
}

TEST_F(VerdictCacheTest, SignatureWindowOutlivesAnyCachedVerdict) {
  const dns::ResourceRecord sig = make_signature(*keys_, /*expiration=*/500);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig}, dnskeys_),
            SigCheck::kValid);
  clock_.advance_seconds(1'000);
  // The window check precedes the probe: the memoized verdict can never
  // resurrect an expired signature.
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig}, dnskeys_),
            SigCheck::kExpired);
  EXPECT_EQ(counter("verdict.rsa_skipped"), 0u);
}

TEST_F(VerdictCacheTest, KeyRolloverChangesTheVerdictKey) {
  const dns::ResourceRecord sig = make_signature(*keys_);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig}, dnskeys_),
            SigCheck::kValid);

  // New key material: the verdict key covers the public key bytes and tag,
  // so the rolled zone can never hit the old entry.
  crypto::SplitMix64 rng(77);
  const zone::ZoneKeys rolled = zone::ZoneKeys::generate(256, rng);
  const dns::RRset rolled_keys = dnskey_rrset(rolled);

  const dns::Bytes signed_data = dns::rrsig_signed_data(
      std::get<dns::RrsigRdata>(make_signature(*keys_).rdata), rrset_);
  EXPECT_NE(Validator::verdict_key(signed_data, {0x01, 0x02},
                                   keys_->zsk_record()),
            Validator::verdict_key(signed_data, {0x01, 0x02},
                                   rolled.zsk_record()));

  dns::RrsigRdata sig_rdata;
  sig_rdata.type_covered = dns::RRType::kA;
  sig_rdata.algorithm = 8;
  sig_rdata.labels = 2;
  sig_rdata.original_ttl = 300;
  sig_rdata.inception = 0;
  sig_rdata.expiration = 0x7FFFFFFF;
  sig_rdata.key_tag = rolled.zsk_tag();
  sig_rdata.signer = owner_;
  sig_rdata.signature = crypto::sign_message(
      rolled.zsk_private(), dns::rrsig_signed_data(sig_rdata, rrset_));
  const dns::ResourceRecord rolled_sig =
      dns::ResourceRecord::make(owner_, 300, dns::Rdata{sig_rdata});
  EXPECT_EQ(validator_.verify_rrset(rrset_, {rolled_sig}, rolled_keys),
            SigCheck::kValid);
  EXPECT_EQ(counter("verdict.miss"), 2u);
  EXPECT_EQ(counter("verdict.rsa_skipped"), 0u);
}

TEST_F(VerdictCacheTest, EpochFlushBoundsTheTable) {
  validator_.set_verdict_cache_entries(1);
  const dns::ResourceRecord sig_a = make_signature(*keys_);
  dns::RRset other(owner_, dns::RRType::kA);
  other.add(dns::ResourceRecord::make(owner_, 300, dns::ARdata{43}));
  dns::RrsigRdata sig;
  sig.type_covered = dns::RRType::kA;
  sig.algorithm = 8;
  sig.labels = 2;
  sig.original_ttl = 300;
  sig.inception = 0;
  sig.expiration = 0x7FFFFFFF;
  sig.key_tag = keys_->zsk_tag();
  sig.signer = owner_;
  sig.signature = crypto::sign_message(keys_->zsk_private(),
                                       dns::rrsig_signed_data(sig, other));
  const dns::ResourceRecord sig_b =
      dns::ResourceRecord::make(owner_, 300, dns::Rdata{sig});

  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig_a}, dnskeys_),
            SigCheck::kValid);
  EXPECT_EQ(validator_.verify_rrset(other, {sig_b}, dnskeys_),
            SigCheck::kValid);
  EXPECT_GE(counter("verdict.flush"), 1u);
  // The first verdict was flushed: verifying it again is a miss, not a hit.
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig_a}, dnskeys_),
            SigCheck::kValid);
  EXPECT_EQ(counter("verdict.rsa_skipped"), 0u);
}

TEST_F(VerdictCacheTest, VerdictsCrossShardsThroughTheSharedStore) {
  SharedProofStore store;
  sim::SimClock clock_b;
  Validator sibling(clock_b);
  sibling.set_verdict_cache_entries(64);
  validator_.attach_shared(&store, 0);
  sibling.attach_shared(&store, 1);

  const dns::ResourceRecord sig = make_signature(*keys_);
  EXPECT_EQ(validator_.verify_rrset(rrset_, {sig}, dnskeys_),
            SigCheck::kValid);
  EXPECT_GE(store.verdict_count(), 1u);

  EXPECT_EQ(sibling.verify_rrset(rrset_, {sig}, dnskeys_), SigCheck::kValid);
  EXPECT_EQ(sibling.counters().value("verdict.rsa_skipped"), 1u);
  EXPECT_EQ(sibling.counters().value("verdict.shared_hit"), 1u);
  EXPECT_EQ(store.stats().verdict_sibling_hits, 1u);
}

// -- Scenario-level contracts -------------------------------------------------

serve::ScenarioOptions synth_mix(bool synthesis) {
  serve::ScenarioOptions options;
  options.universe_size = 2'000;
  options.seed = 7;
  options.mix.clients = 4;
  options.mix.queries_per_client = 20;
  options.mix.seed = 23;
  options.mix.zipf_support = 300;
  options.mix.mean_gap_us = 25'000ULL * 4;
  if (synthesis) {
    options.resolver_config.aggressive_synthesis = true;
    options.resolver_config.verdict_cache_entries =
        ResolverConfig::kDefaultVerdictCacheEntries;
  }
  return options;
}

TEST(SynthesisServe, ShardedMergedLeaksEqualTheSequentialReference) {
  serve::ServeScenario reference(synth_mix(/*synthesis=*/true));
  const serve::ScenarioSummary expected = reference.run_sequential_reference();

  for (const std::uint32_t shards : {1u, 4u}) {
    serve::ShardedOptions options;
    options.base = synth_mix(/*synthesis=*/true);
    options.shards = shards;
    options.shared_store = true;
    serve::ShardedServeScenario scenario(std::move(options));
    const serve::ShardedSummary result = scenario.run();
    EXPECT_EQ(result.merged.case2_total, expected.case2_total)
        << "shards=" << shards;
    EXPECT_EQ(result.merged.leaked_domains, expected.leaked_domains)
        << "shards=" << shards;
  }
}

TEST(SynthesisServe, SynthesisDoesNotChangeWhoLearnsWhatUncapped) {
  // With an unbounded cache the paper-era aggressive NSEC cache already
  // suppresses every repeat denial; full synthesis must not leak anything
  // new (it can only answer earlier, never query more).
  serve::ServeScenario off(synth_mix(/*synthesis=*/false));
  serve::ServeScenario on(synth_mix(/*synthesis=*/true));
  const serve::ScenarioSummary off_summary = off.run_sequential_reference();
  const serve::ScenarioSummary on_summary = on.run_sequential_reference();
  EXPECT_LE(on_summary.case2_total, off_summary.case2_total);
  for (const std::string& domain : on_summary.leaked_domains) {
    EXPECT_TRUE(off_summary.leaked_domains.count(domain) > 0) << domain;
  }
}

std::uint64_t capped_case2(bool synthesis, std::uint64_t cap_bytes) {
  core::UniverseExperiment::Options options;
  options.universe_size = 10'000;
  options.resolver_config = ResolverConfig::bind_yum();
  options.resolver_config.max_cache_bytes = cap_bytes;
  options.resolver_config.ns_fetch_probability = 0.0;
  if (synthesis) {
    options.resolver_config.aggressive_synthesis = true;
    options.resolver_config.verdict_cache_entries =
        ResolverConfig::kDefaultVerdictCacheEntries;
  }
  core::UniverseExperiment experiment(options);
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t rank = 1; rank <= 120; ++rank) {
      (void)experiment.stub().visit(
          experiment.world().universe().domain_at(rank));
    }
    experiment.clock().advance_seconds(2'100.0);
  }
  return experiment.analyzer().report().case2_queries;
}

TEST(SynthesisServe, SynthesisBendsTheCappedLeakCurveDown) {
  // Under byte-cap pressure the elision of redundant exact negatives (the
  // covering span already proves the denial) shrinks the footprint, so
  // fewer NSEC proofs are evicted and fewer Case-2 queries re-leak.
  const std::uint64_t off = capped_case2(/*synthesis=*/false, 16 * 1024);
  const std::uint64_t on = capped_case2(/*synthesis=*/true, 16 * 1024);
  EXPECT_LE(on, off);
  // Unbounded, the two configurations suppress identically.
  EXPECT_EQ(capped_case2(/*synthesis=*/true, 0),
            capped_case2(/*synthesis=*/false, 0));
}

}  // namespace
}  // namespace lookaside::resolver
