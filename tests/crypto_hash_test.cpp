// Unit tests for SHA-256, SHA-1 and HMAC-SHA256 against published vectors.
#include <gtest/gtest.h>

#include <string>

#include "crypto/bytes.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace lookaside::crypto {
namespace {

TEST(Sha256Test, EmptyMessage) {
  EXPECT_EQ(to_hex(Sha256::digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string message =
      "the quick brown fox jumps over the lazy dog 0123456789";
  for (std::size_t split = 0; split <= message.size(); ++split) {
    Sha256 ctx;
    ctx.update(std::string_view(message).substr(0, split));
    ctx.update(std::string_view(message).substr(split));
    EXPECT_EQ(ctx.finish(), Sha256::digest(message)) << "split=" << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaryLengths) {
  // 55/56/63/64/65 bytes cross the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(msg);
    Sha256 b;
    for (char c : msg) b.update(std::string_view(&c, 1));
    EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
  }
}

TEST(Sha1Test, EmptyMessage) {
  EXPECT_EQ(to_hex(Sha1::digest("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(to_hex(Sha1::digest("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha1::digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HexTest, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(HexTest, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace lookaside::crypto
