// Unit tests for RSA keygen/sign/verify and the DNSSEC algorithm façade.
#include <gtest/gtest.h>

#include "crypto/dnssec_algo.h"
#include "crypto/rng.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace lookaside::crypto {
namespace {

RsaKeyPair test_keypair(std::size_t bits = 512, std::uint64_t seed = 1) {
  SplitMix64 rng(seed);
  return generate_rsa_keypair(bits, rng);
}

TEST(MillerRabinTest, KnownPrimesAndComposites) {
  SplitMix64 rng(2);
  EXPECT_TRUE(is_probable_prime(BigUint(2), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(3), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(65537), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(1000003), rng));
  EXPECT_TRUE(is_probable_prime(BigUint(0xFFFFFFFFFFFFFFC5ULL), rng));
  EXPECT_FALSE(is_probable_prime(BigUint(1), rng));
  EXPECT_FALSE(is_probable_prime(BigUint(4), rng));
  EXPECT_FALSE(is_probable_prime(BigUint(1000001), rng));  // 101*9901
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(is_probable_prime(BigUint(561), rng));
}

TEST(RsaTest, SignVerifyRoundTrip) {
  const RsaKeyPair kp = test_keypair();
  const Bytes digest = Sha256::digest("hello dnssec");
  const Bytes sig = kp.private_key.sign_digest(digest);
  EXPECT_EQ(sig.size(), kp.public_key.modulus_bytes());
  EXPECT_TRUE(kp.public_key.verify_digest(digest, sig));
}

TEST(RsaTest, TamperedSignatureFails) {
  const RsaKeyPair kp = test_keypair();
  const Bytes digest = Sha256::digest("hello dnssec");
  Bytes sig = kp.private_key.sign_digest(digest);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(kp.public_key.verify_digest(digest, sig));
}

TEST(RsaTest, TamperedDigestFails) {
  const RsaKeyPair kp = test_keypair();
  const Bytes sig = kp.private_key.sign_digest(Sha256::digest("message A"));
  EXPECT_FALSE(kp.public_key.verify_digest(Sha256::digest("message B"), sig));
}

TEST(RsaTest, WrongKeyFails) {
  const RsaKeyPair kp1 = test_keypair(512, 10);
  const RsaKeyPair kp2 = test_keypair(512, 11);
  const Bytes digest = Sha256::digest("cross-key");
  const Bytes sig = kp1.private_key.sign_digest(digest);
  EXPECT_FALSE(kp2.public_key.verify_digest(digest, sig));
}

TEST(RsaTest, WrongLengthSignatureFails) {
  const RsaKeyPair kp = test_keypair();
  const Bytes digest = Sha256::digest("short");
  Bytes sig = kp.private_key.sign_digest(digest);
  sig.pop_back();
  EXPECT_FALSE(kp.public_key.verify_digest(digest, sig));
}

TEST(RsaTest, SmallKeySignVerify) {
  // 256-bit keys are the fast-simulation configuration.
  const RsaKeyPair kp = test_keypair(256, 3);
  const Bytes digest = Sha256::digest("fast path");
  EXPECT_TRUE(
      kp.public_key.verify_digest(digest, kp.private_key.sign_digest(digest)));
}

TEST(RsaTest, DeterministicFromSeed) {
  const RsaKeyPair a = test_keypair(256, 77);
  const RsaKeyPair b = test_keypair(256, 77);
  EXPECT_EQ(a.public_key.modulus(), b.public_key.modulus());
}

TEST(RsaTest, PublicKeyWireRoundTrip) {
  const RsaKeyPair kp = test_keypair(512, 5);
  const Bytes wire = kp.public_key.to_wire();
  const auto parsed = RsaPublicKey::from_wire(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->modulus(), kp.public_key.modulus());
  EXPECT_EQ(parsed->exponent(), kp.public_key.exponent());

  const Bytes digest = Sha256::digest("wire");
  EXPECT_TRUE(
      parsed->verify_digest(digest, kp.private_key.sign_digest(digest)));
}

TEST(RsaTest, FromWireRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::from_wire({}).has_value());
  EXPECT_FALSE(RsaPublicKey::from_wire({0x00}).has_value());
  EXPECT_FALSE(RsaPublicKey::from_wire({0x05, 0x01}).has_value());
}

TEST(RsaTest, KeygenValidatesParameters) {
  SplitMix64 rng(1);
  EXPECT_THROW(generate_rsa_keypair(128, rng), std::invalid_argument);
  EXPECT_THROW(generate_rsa_keypair(300, rng), std::invalid_argument);
}

TEST(EmsaPadTest, FullPaddingLayout) {
  const Bytes digest = Sha256::digest("x");
  const Bytes em = emsa_pad(digest, 64);
  EXPECT_EQ(em.size(), 64u);
  EXPECT_EQ(em[0], 0x00);
  EXPECT_EQ(em[1], 0x01);
  EXPECT_EQ(em[64 - 33], 0x00);
  for (std::size_t i = 2; i < 64 - 33; ++i) EXPECT_EQ(em[i], 0xFF);
  EXPECT_TRUE(std::equal(digest.begin(), digest.end(), em.end() - 32));
}

TEST(EmsaPadTest, TruncatesForSmallModulus) {
  const Bytes digest = Sha256::digest("x");
  const Bytes em = emsa_pad(digest, 32);  // 256-bit key
  EXPECT_EQ(em.size(), 32u);
  // 21 digest bytes fit; 8 FF bytes of padding remain.
  EXPECT_TRUE(std::equal(digest.begin(), digest.begin() + 21, em.end() - 21));
}

TEST(DnssecAlgoTest, SupportedAlgorithms) {
  EXPECT_TRUE(algorithm_supported(8));
  EXPECT_FALSE(algorithm_supported(5));
  EXPECT_FALSE(algorithm_supported(13));
  EXPECT_FALSE(algorithm_supported(0));
}

TEST(DnssecAlgoTest, SignVerifyMessage) {
  const RsaKeyPair kp = test_keypair(512, 9);
  const Bytes message = bytes_of("canonical rrset image");
  const Bytes sig = sign_message(kp.private_key, message);
  EXPECT_TRUE(verify_message(kp.public_key, message, sig));
  EXPECT_FALSE(verify_message(kp.public_key, bytes_of("different"), sig));
}

TEST(KeyTagTest, MatchesReferenceAlgorithm) {
  // Reference computation from RFC 4034 Appendix B applied to a fixed RDATA.
  const Bytes rdata = {0x01, 0x01, 0x03, 0x08, 0x03, 0x01, 0x00, 0x01};
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < rdata.size(); ++i) {
    acc += (i & 1) ? rdata[i] : static_cast<std::uint32_t>(rdata[i]) << 8;
  }
  acc += (acc >> 16) & 0xFFFF;
  EXPECT_EQ(key_tag(rdata), acc & 0xFFFF);
  // Odd-length RDATA exercises the trailing byte path.
  const Bytes odd = {0xAB, 0xCD, 0xEF};
  EXPECT_EQ(key_tag(odd), ((0xAB00u + 0xCDu + 0xEF00u +
                            (((0xAB00u + 0xCDu + 0xEF00u) >> 16) & 0xFFFF)) &
                           0xFFFF));
}

TEST(RngTest, DeterministicStreams) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, NextBelowInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

TEST(RngTest, DerivedSeedsDiffer) {
  EXPECT_NE(derive_seed(1, 1), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 1), derive_seed(2, 1));
  EXPECT_EQ(derive_seed(9, 9), derive_seed(9, 9));
}

}  // namespace
}  // namespace lookaside::crypto
