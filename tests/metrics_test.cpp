// Unit tests for counters, histogram, table formatting and CSV escaping.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/counters.h"
#include "metrics/csv.h"
#include "metrics/histogram.h"
#include "metrics/table.h"
#include "obs/metrics_registry.h"

namespace lookaside::metrics {
namespace {

TEST(CounterSetTest, AddAndRead) {
  CounterSet counters;
  EXPECT_EQ(counters.value("queries.a"), 0u);
  counters.add("queries.a");
  counters.add("queries.a", 4);
  EXPECT_EQ(counters.value("queries.a"), 5u);
}

TEST(CounterSetTest, PrefixTotals) {
  CounterSet counters;
  counters.add("queries.a", 3);
  counters.add("queries.aaaa", 2);
  counters.add("queries.ds", 7);
  counters.add("bytes.total", 100);
  EXPECT_EQ(counters.total_with_prefix("queries."), 12u);
  EXPECT_EQ(counters.total_with_prefix("queries.a"), 5u);
  EXPECT_EQ(counters.total_with_prefix("nothing."), 0u);
}

TEST(CounterSetTest, PrefixTotalEdgeCases) {
  CounterSet counters;
  counters.add("a", 1);
  counters.add("ab", 2);
  counters.add("b", 4);
  // The empty prefix matches every counter.
  EXPECT_EQ(counters.total_with_prefix(""), 7u);
  // An exact counter name is its own prefix.
  EXPECT_EQ(counters.total_with_prefix("ab"), 2u);
  // A prefix longer than any name matches nothing.
  EXPECT_EQ(counters.total_with_prefix("abc"), 0u);
  // A prefix lexicographically past every name matches nothing.
  EXPECT_EQ(counters.total_with_prefix("z"), 0u);
  EXPECT_EQ(CounterSet{}.total_with_prefix("a"), 0u);
}

TEST(CounterSetTest, DeltaSince) {
  CounterSet before;
  before.add("x", 10);
  CounterSet after = before;
  after.add("x", 5);
  after.add("y", 2);
  const CounterSet delta = after.delta_since(before);
  EXPECT_EQ(delta.value("x"), 5u);
  EXPECT_EQ(delta.value("y"), 2u);
  EXPECT_EQ(delta.value(CounterSet::kUnderflowCounter), 0u);
}

TEST(CounterSetTest, DeltaSinceFlagsUnderflow) {
  CounterSet before;
  before.add("x", 10);
  before.add("gone", 4);
  CounterSet after;
  after.add("x", 7);  // went backwards by 3
  const CounterSet delta = after.delta_since(before);
  // Still clamped to zero rather than wrapping...
  EXPECT_EQ(delta.value("x"), 0u);
  // ...but the clamped magnitude (3 from x, 4 from the vanished counter)
  // is surfaced instead of silently discarded.
  EXPECT_EQ(delta.value(CounterSet::kUnderflowCounter), 7u);
}

TEST(CounterSetTest, MergeAdds) {
  CounterSet a;
  a.add("x", 1);
  CounterSet b;
  b.add("x", 2);
  b.add("y", 3);
  a.merge(b);
  EXPECT_EQ(a.value("x"), 3u);
  EXPECT_EQ(a.value("y"), 3u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 4.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(TableTest, CommaFormatting) {
  EXPECT_EQ(Table::with_commas(0), "0");
  EXPECT_EQ(Table::with_commas(999), "999");
  EXPECT_EQ(Table::with_commas(1000), "1,000");
  EXPECT_EQ(Table::with_commas(67838), "67,838");
  EXPECT_EQ(Table::with_commas(92705013), "92,705,013");
}

TEST(TableTest, RendersAlignedRows) {
  Table table({"#Domains", "Leaked"});
  table.row().cell(std::uint64_t{100}).cell(std::uint64_t{84});
  table.row().cell(std::uint64_t{1000000}).cell(std::uint64_t{67838});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("1,000,000"), std::string::npos);
  EXPECT_NE(text.find("67,838"), std::string::npos);
  EXPECT_NE(text.find("#Domains"), std::string::npos);
}

TEST(TableTest, PercentCell) {
  Table table({"ratio"});
  table.row().percent_cell(0.1868);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("18.68%"), std::string::npos);
}

TEST(MetricsRegistryTest, LabeledCountersAreIndependentSeries) {
  obs::MetricsRegistry registry;
  registry.add("upstream_queries", {{"server", "dlv"}}, 3);
  registry.add("upstream_queries", {{"server", "root"}});
  registry.add("upstream_queries");  // unlabeled series
  EXPECT_EQ(registry.value("upstream_queries", {{"server", "dlv"}}), 3u);
  EXPECT_EQ(registry.value("upstream_queries", {{"server", "root"}}), 1u);
  EXPECT_EQ(registry.value("upstream_queries"), 1u);
  EXPECT_EQ(registry.value("upstream_queries", {{"server", "tld"}}), 0u);
  EXPECT_EQ(registry.total("upstream_queries"), 5u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry registry;
  registry.add("m", {{"a", "1"}, {"b", "2"}}, 1);
  registry.add("m", {{"b", "2"}, {"a", "1"}}, 1);
  EXPECT_EQ(registry.value("m", {{"a", "1"}, {"b", "2"}}), 2u);
}

TEST(MetricsRegistryTest, ImportsCounterSetWithSanitizedNames) {
  CounterSet counters;
  counters.add("bytes.total", 42);
  counters.add("dest.tld-com.queries", 7);
  obs::MetricsRegistry registry;
  registry.import_counters(counters, "net_");
  EXPECT_EQ(registry.value("net_bytes_total"), 42u);
  EXPECT_EQ(registry.value("net_dest_tld_com_queries"), 7u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv({"name", "value"});
  csv.add_row({"plain", "1"});
  csv.add_row({"with,comma", "with\"quote"});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(),
            "name,value\nplain,1\n\"with,comma\",\"with\"\"quote\"\n");
}

}  // namespace
}  // namespace lookaside::metrics
