// Unit tests for counters, histogram, table formatting and CSV escaping.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/counters.h"
#include "metrics/csv.h"
#include "metrics/histogram.h"
#include "metrics/table.h"

namespace lookaside::metrics {
namespace {

TEST(CounterSetTest, AddAndRead) {
  CounterSet counters;
  EXPECT_EQ(counters.value("queries.a"), 0u);
  counters.add("queries.a");
  counters.add("queries.a", 4);
  EXPECT_EQ(counters.value("queries.a"), 5u);
}

TEST(CounterSetTest, PrefixTotals) {
  CounterSet counters;
  counters.add("queries.a", 3);
  counters.add("queries.aaaa", 2);
  counters.add("queries.ds", 7);
  counters.add("bytes.total", 100);
  EXPECT_EQ(counters.total_with_prefix("queries."), 12u);
  EXPECT_EQ(counters.total_with_prefix("queries.a"), 5u);
  EXPECT_EQ(counters.total_with_prefix("nothing."), 0u);
}

TEST(CounterSetTest, DeltaSince) {
  CounterSet before;
  before.add("x", 10);
  CounterSet after = before;
  after.add("x", 5);
  after.add("y", 2);
  const CounterSet delta = after.delta_since(before);
  EXPECT_EQ(delta.value("x"), 5u);
  EXPECT_EQ(delta.value("y"), 2u);
}

TEST(CounterSetTest, MergeAdds) {
  CounterSet a;
  a.add("x", 1);
  CounterSet b;
  b.add("x", 2);
  b.add("y", 3);
  a.merge(b);
  EXPECT_EQ(a.value("x"), 3u);
  EXPECT_EQ(a.value("y"), 3u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 4.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(TableTest, CommaFormatting) {
  EXPECT_EQ(Table::with_commas(0), "0");
  EXPECT_EQ(Table::with_commas(999), "999");
  EXPECT_EQ(Table::with_commas(1000), "1,000");
  EXPECT_EQ(Table::with_commas(67838), "67,838");
  EXPECT_EQ(Table::with_commas(92705013), "92,705,013");
}

TEST(TableTest, RendersAlignedRows) {
  Table table({"#Domains", "Leaked"});
  table.row().cell(std::uint64_t{100}).cell(std::uint64_t{84});
  table.row().cell(std::uint64_t{1000000}).cell(std::uint64_t{67838});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("1,000,000"), std::string::npos);
  EXPECT_NE(text.find("67,838"), std::string::npos);
  EXPECT_NE(text.find("#Domains"), std::string::npos);
}

TEST(TableTest, PercentCell) {
  Table table({"ratio"});
  table.row().percent_cell(0.1868);
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("18.68%"), std::string::npos);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv({"name", "value"});
  csv.add_row({"plain", "1"});
  csv.add_row({"with,comma", "with\"quote"});
  std::ostringstream out;
  csv.write(out);
  EXPECT_EQ(out.str(),
            "name,value\nplain,1\n\"with,comma\",\"with\"\"quote\"\n");
}

}  // namespace
}  // namespace lookaside::metrics
