// Packet-level walkthrough of one DLV resolution — the paper's Fig. 3
// workflow, reproduced as an annotated capture.
//
//   ./build/examples/packet_trace
#include <iomanip>
#include <iostream>

#include "dlv/registry.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"

int main() {
  using namespace lookaside;

  server::Testbed testbed(
      server::TestbedOptions{},
      {{"example.com", /*signed=*/true, /*ds_in_parent=*/false, false, {}}});
  dlv::DlvRegistry registry(dlv::DlvRegistry::Options{});
  registry.deposit(dns::Name::parse("example.com"),
                   testbed.signed_sld("example.com")->ds_for_parent());
  testbed.directory().register_zone(
      registry.apex(),
      std::shared_ptr<sim::Endpoint>(&registry, [](sim::Endpoint*) {}));

  sim::SimClock clock;
  sim::Network network(clock);
  network.set_capture_enabled(true);
  resolver::RecursiveResolver resolver(
      network, testbed.directory(),
      resolver::ResolverConfig::bind_manual_correct());
  resolver.set_root_trust_anchor(testbed.root_trust_anchor());
  resolver.set_dlv_trust_anchor(registry.trust_anchor());

  std::cout << "Resolving example.com (signed island of security, DLV record\n"
               "deposited) — the paper's Fig. 3 workflow:\n\n";
  const auto result =
      resolver.resolve({dns::Name::parse("example.com"), dns::RRType::kA});

  std::cout << std::left << std::setw(10) << "time(ms)" << std::setw(24)
            << "from -> to" << std::setw(7) << "bytes"
            << "what\n";
  for (const sim::PacketRecord& packet : network.capture()) {
    std::string what = packet.is_query
                           ? "query  " + packet.qname.to_text() + " " +
                                 dns::rr_type_name(packet.qtype)
                           : "reply  " + dns::rcode_name(packet.rcode);
    std::cout << std::left << std::setw(10)
              << packet.time_us / 1000 << std::setw(24)
              << (packet.from + " -> " + packet.to) << std::setw(7)
              << packet.bytes << what << "\n";
  }

  std::cout << "\nOutcome: status=" << resolver::status_name(result.status)
            << (result.dlv.secured ? " via DLV" : "") << ", "
            << result.upstream_exchanges << " upstream exchanges, "
            << clock.now_us() / 1000 << " ms simulated response time.\n"
            << "\nNote the final leg: the full domain name rides to the DLV\n"
               "server as <domain>.dlv.isc.org with query type 32769 — the\n"
               "observation channel the paper measures.\n";
  return 0;
}
