// trace_inspect: reconstructs resolution span timelines from a JSONL trace.
//
// Usage:
//   trace_inspect <trace.jsonl>              # overview of every span
//   trace_inspect <trace.jsonl> <domain>     # full timeline for one domain
//   trace_inspect <trace.jsonl> --tree       # per-query causal trees
//   trace_inspect <trace.jsonl> --profile    # critical-path table per query
//
// Produce a trace with any instrumented bench, e.g.:
//   LOOKASIDE_SCALE=10000 bench_fig08_09_leakage --trace-out=t.jsonl
//   bench_serve_throughput --smoke --trace-out=t.jsonl
//
// The domain mode prints every upstream hop (server, qname, rcode, bytes,
// round trip), the resolver-internal annotations (cache hits, NSEC
// suppressions, DLV lookups), the per-phase latency breakdown, and the
// consistency check that the hop round trips sum to the resolution's
// reported response time. --tree walks the causal chain instead: each
// frontend client query, the resolver span it initiated or joined (with
// every recorded parent — a coalesced span lists all N waiters), and that
// span's hops. --profile condenses the same data into one attribution row
// per query (queue wait / network / internal split).
#include <iostream>
#include <string>

#include "metrics/table.h"
#include "obs/span_timeline.h"
#include "obs/trace_reader.h"

int main(int argc, char** argv) {
  using namespace lookaside;

  if (argc < 2 || argc > 3) {
    std::cerr << "usage: trace_inspect <trace.jsonl> [domain|--tree|--profile]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::string mode = argc == 3 ? argv[2] : "";

  obs::TraceReadStats stats;
  const std::vector<obs::Event> events = obs::read_jsonl_file(path, &stats);
  if (events.empty()) {
    std::cerr << "trace_inspect: no events read from " << path << "\n";
    return 1;
  }
  const obs::SpanTimeline timeline = obs::SpanTimeline::from_events(events);

  std::cout << path << ": " << stats.events << " events, "
            << timeline.spans().size() << " resolution spans";
  if (!timeline.client_spans().empty()) {
    std::cout << ", " << timeline.client_spans().size() << " client queries";
  }
  if (stats.malformed > 0) {
    std::cout << ", " << stats.malformed << " malformed lines skipped";
    if (stats.truncated_tail) std::cout << " (file ends mid-record)";
  }
  std::cout << "\n\n";

  if (mode == "--tree") {
    if (timeline.client_spans().empty()) {
      // Direct-resolution traces have no frontend layer; the span print is
      // the whole tree.
      for (const obs::ResolutionSpan& span : timeline.spans()) {
        obs::SpanTimeline::print(std::cout, span);
        std::cout << "\n";
      }
      return 0;
    }
    for (const obs::ClientQuerySpan& query : timeline.client_spans()) {
      timeline.print_query_tree(std::cout, query);
      std::cout << "\n";
    }
    return 0;
  }

  if (mode == "--profile") {
    metrics::Table table({"Query", "Client", "Domain", "Total ms", "Queue ms",
                          "Net ms", "Internal ms", "Coalesced", "DLV",
                          "Verify"});
    for (const obs::QueryProfile& profile : timeline.query_profiles()) {
      table.row()
          .cell(profile.query_id)
          .cell(profile.client == 0 ? std::string("direct")
                                    : std::to_string(profile.client - 1))
          .cell(profile.name)
          .cell(static_cast<double>(profile.total_us) / 1000.0, 2)
          .cell(static_cast<double>(profile.queue_wait_us) / 1000.0, 2)
          .cell(static_cast<double>(profile.network_us) / 1000.0, 2)
          .cell(static_cast<double>(profile.internal_us) / 1000.0, 2)
          .cell(profile.coalesced ? "yes" : "no")
          .cell(profile.dlv_lookups)
          .cell(profile.crypto_verifies);
    }
    table.print(std::cout);
    return 0;
  }

  if (!mode.empty()) {
    const auto matches = timeline.find_by_name(mode);
    if (matches.empty()) {
      std::cerr << "trace_inspect: no span for domain " << mode << "\n";
      return 1;
    }
    for (const obs::ResolutionSpan* span : matches) {
      obs::SpanTimeline::print(std::cout, *span);
      std::cout << "\n";
    }
    return 0;
  }

  // No argument: one overview row per span.
  metrics::Table table(
      {"Span", "Domain", "Hops", "Latency (ms)", "Status", "DLV hops"});
  for (const obs::ResolutionSpan& span : timeline.spans()) {
    std::uint64_t dlv_hops = 0;
    for (const obs::SpanHop& hop : span.hops) {
      if (obs::server_class(hop.server) == "dlv") ++dlv_hops;
    }
    table.row()
        .cell(span.span_id)
        .cell(span.name)
        .cell(span.hops.size())
        .cell(static_cast<double>(span.reported_latency_us) / 1000.0, 2)
        .cell(span.status.empty() ? "?" : span.status)
        .cell(dlv_hops);
  }
  table.print(std::cout);
  std::cout << "\nRun with a domain for the hop timeline, --tree for causal\n"
               "query trees, or --profile for the per-query attribution "
               "table.\n";
  return 0;
}
