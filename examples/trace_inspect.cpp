// trace_inspect: reconstructs resolution span timelines from a JSONL trace.
//
// Usage:
//   trace_inspect <trace.jsonl>            # overview of every span
//   trace_inspect <trace.jsonl> <domain>   # full timeline for one domain
//
// Produce a trace with any instrumented bench, e.g.:
//   LOOKASIDE_SCALE=10000 bench_fig08_09_leakage --trace-out=t.jsonl
//
// For each matching span the tool prints every upstream hop (server, qname,
// rcode, bytes, round trip), the resolver-internal annotations (cache hits,
// NSEC suppressions, DLV lookups), the per-phase latency breakdown, and the
// consistency check that the hop round trips sum to the resolution's
// reported response time.
#include <iostream>
#include <string>

#include "metrics/table.h"
#include "obs/span_timeline.h"
#include "obs/trace_reader.h"

int main(int argc, char** argv) {
  using namespace lookaside;

  if (argc < 2 || argc > 3) {
    std::cerr << "usage: trace_inspect <trace.jsonl> [domain]\n";
    return 2;
  }
  const std::string path = argv[1];

  std::size_t malformed = 0;
  const std::vector<obs::Event> events =
      obs::read_jsonl_file(path, &malformed);
  if (events.empty()) {
    std::cerr << "trace_inspect: no events read from " << path << "\n";
    return 1;
  }
  const obs::SpanTimeline timeline = obs::SpanTimeline::from_events(events);

  std::cout << path << ": " << events.size() << " events, "
            << timeline.spans().size() << " resolution spans";
  if (malformed > 0) std::cout << ", " << malformed << " malformed lines";
  std::cout << "\n\n";

  if (argc == 3) {
    const auto matches = timeline.find_by_name(argv[2]);
    if (matches.empty()) {
      std::cerr << "trace_inspect: no span for domain " << argv[2] << "\n";
      return 1;
    }
    for (const obs::ResolutionSpan* span : matches) {
      obs::SpanTimeline::print(std::cout, *span);
      std::cout << "\n";
    }
    return 0;
  }

  // No domain given: one overview row per span.
  metrics::Table table(
      {"Span", "Domain", "Hops", "Latency (ms)", "Status", "DLV hops"});
  for (const obs::ResolutionSpan& span : timeline.spans()) {
    std::uint64_t dlv_hops = 0;
    for (const obs::SpanHop& hop : span.hops) {
      if (obs::server_class(hop.server) == "dlv") ++dlv_hops;
    }
    table.row()
        .cell(span.span_id)
        .cell(span.name)
        .cell(span.hops.size())
        .cell(static_cast<double>(span.reported_latency_us) / 1000.0, 2)
        .cell(span.status.empty() ? "?" : span.status)
        .cell(dlv_hops);
  }
  table.print(std::cout);
  std::cout << "\nRun with a domain argument for the full hop timeline.\n";
  return 0;
}
