// Quickstart: build a tiny DNS world, resolve a few domains through a
// validating DLV-enabled recursive resolver, and watch what the DLV
// registry — a third party — learns about the user's browsing.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "dlv/registry.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"

int main() {
  using namespace lookaside;

  // 1. Server side: a root zone, TLD zones and three SLDs —
  //    one unsigned, one fully chained to the root, and one "island of
  //    security" (signed, but no DS record in .com).
  server::Testbed testbed(server::TestbedOptions{},
                          {
                              {"shoes.com", /*signed=*/false, false, false, {}},
                              {"bank.com", /*signed=*/true, /*ds=*/true, false, {}},
                              {"island.com", /*signed=*/true, /*ds=*/false, false, {}},
                          });

  // 2. The DLV registry (the paper's dlv.isc.org stand-in). The island
  //    deposits its key there — that is what DLV is for.
  dlv::DlvRegistry registry(dlv::DlvRegistry::Options{});
  registry.deposit(dns::Name::parse("island.com"),
                   testbed.signed_sld("island.com")->ds_for_parent());
  testbed.directory().register_zone(
      registry.apex(),
      std::shared_ptr<sim::Endpoint>(&registry, [](sim::Endpoint*) {}));

  // 3. A recursive resolver configured the way CentOS's yum package ships
  //    BIND: validation on, trust anchors present, dnssec-lookaside auto.
  sim::SimClock clock;
  sim::Network network(clock);
  registry.attach_clock(clock);
  resolver::RecursiveResolver resolver(network, testbed.directory(),
                                       resolver::ResolverConfig::bind_yum());
  resolver.set_root_trust_anchor(testbed.root_trust_anchor());
  resolver.set_dlv_trust_anchor(registry.trust_anchor());

  // 4. Resolve. Watch the validation status and the DLV traffic.
  for (const char* name : {"bank.com", "island.com", "shoes.com"}) {
    const auto result =
        resolver.resolve({dns::Name::parse(name), dns::RRType::kA});
    std::cout << name << ": rcode=" << dns::rcode_name(result.response.header.rcode)
              << " status=" << resolver::status_name(result.status)
              << (result.dlv.secured ? " (via DLV)" : "")
              << " dlv_queries=" << result.dlv.query_names.size() << "\n";
    if (const auto* a = result.response.first_answer(dns::RRType::kA)) {
      std::cout << "    " << a->to_text() << "\n";
    }
  }

  // 5. The privacy story: what did the third party see?
  std::cout << "\nThe DLV registry observed:\n";
  for (const auto& observation : registry.observations()) {
    std::cout << "    " << observation.query_name.to_text()
              << (observation.had_record
                      ? "  [Case-1: record deposited, legitimate]"
                      : "  [Case-2: NO record -> pure privacy leakage]")
              << "\n";
  }
  std::cout << "\nshoes.com never asked for DLV's help — it is not even\n"
               "DNSSEC-signed — yet the registry now knows it was visited.\n"
               "That is the paper's finding in one run.\n";
  return 0;
}
