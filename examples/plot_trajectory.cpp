// plot_trajectory: renders the perf trajectory JSONL kept by ci_perf_gate.
//
// Usage:
//   plot_trajectory <trajectory.jsonl>           # one summary row per metric
//   plot_trajectory <trajectory.jsonl> <path>    # run-by-run view of metrics
//                                                # whose path contains <path>
//
// Produce a trajectory by passing --trajectory=PATH to ci_perf_gate; each
// gate run appends one record per compared metric, so over successive
// commits the file accumulates a per-metric time series:
//   {"baseline": "...", "schema": "...", "sha": "...", "path": "cache.probe_hit_ns",
//    "base": 25.87, "fresh": 26.36, "rule": "lower_better",
//    "tolerance": 1.5, "ok": true}
//
// The summary view prints, per metric, how many runs recorded it, the
// pinned baseline value, the latest measurement, the observed range, and a
// sparkline of the run-by-run values so a slow drift is visible even when
// every individual run stayed inside tolerance. The detail view lists every
// run for the selected metrics with its sha and pass/fail verdict.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "metrics/table.h"

namespace {

struct TrajectoryRecord {
  std::string baseline;
  std::string schema;
  std::string sha;
  std::string path;
  std::string rule;
  double base = 0.0;
  double fresh = 0.0;
  bool missing = false;  // "fresh": null — metric absent from the fresh run
  double tolerance = 0.0;
  bool ok = false;
};

/// Extracts `"key": "value"` from a flat single-line JSON object. The
/// trajectory writer emits one flat object per line with a fixed key set,
/// so positional scanning is enough — no nesting, no escapes in practice.
bool find_string(const std::string& line, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  const auto start = at + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool find_number(const std::string& line, const std::string& key, double* out,
                 bool* is_null = nullptr) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  const auto start = at + needle.size();
  if (line.compare(start, 4, "null") == 0) {
    if (is_null != nullptr) *is_null = true;
    *out = 0.0;
    return true;
  }
  if (is_null != nullptr) *is_null = false;
  try {
    *out = std::stod(line.substr(start));
  } catch (...) {
    return false;
  }
  return true;
}

bool parse_record(const std::string& line, TrajectoryRecord* out) {
  if (!find_string(line, "path", &out->path)) return false;
  if (!find_number(line, "base", &out->base)) return false;
  if (!find_number(line, "fresh", &out->fresh, &out->missing)) return false;
  find_string(line, "baseline", &out->baseline);
  find_string(line, "schema", &out->schema);
  find_string(line, "sha", &out->sha);
  find_string(line, "rule", &out->rule);
  find_number(line, "tolerance", &out->tolerance);
  const auto ok_at = line.find("\"ok\": ");
  out->ok = ok_at != std::string::npos &&
            line.compare(ok_at + 6, 4, "true") == 0;
  return true;
}

/// Seven-level unicode sparkline of the run-by-run fresh values, scaled to
/// the metric's own observed range (a flat series renders as all-middle).
std::string sparkline(const std::vector<TrajectoryRecord>& runs) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇"};
  double lo = 0.0;
  double hi = 0.0;
  bool seeded = false;
  for (const TrajectoryRecord& r : runs) {
    if (r.missing) continue;
    if (!seeded || r.fresh < lo) lo = seeded ? std::min(lo, r.fresh) : r.fresh;
    if (!seeded || r.fresh > hi) hi = seeded ? std::max(hi, r.fresh) : r.fresh;
    seeded = true;
  }
  std::string out;
  for (const TrajectoryRecord& r : runs) {
    if (r.missing) {
      out += "·";
      continue;
    }
    const double span = hi - lo;
    const double frac = span <= 0.0 ? 0.5 : (r.fresh - lo) / span;
    const int level =
        std::min(6, std::max(0, static_cast<int>(std::lround(frac * 6.0))));
    out += kLevels[level];
  }
  return out;
}

std::string short_sha(const std::string& sha) {
  return sha.size() > 8 ? sha.substr(0, 8) : sha;
}

}  // namespace

int main(int argc, char** argv) {
  using lookaside::metrics::Table;

  if (argc < 2 || argc > 3) {
    std::cerr << "usage: plot_trajectory <trajectory.jsonl> [path-filter]\n";
    return 2;
  }
  const std::string path = argv[1];
  const std::string filter = argc == 3 ? argv[2] : "";

  std::ifstream in(path);
  if (!in) {
    std::cerr << "plot_trajectory: cannot open " << path << "\n";
    return 1;
  }

  // Records append in gate-invocation order, so per (baseline, metric) key
  // the file order IS the run order; a std::map keys the series while each
  // vector preserves that order.
  std::map<std::pair<std::string, std::string>, std::vector<TrajectoryRecord>>
      series;
  std::size_t lines = 0;
  std::size_t malformed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    TrajectoryRecord record;
    if (!parse_record(line, &record)) {
      ++malformed;
      continue;
    }
    series[{record.baseline, record.path}].push_back(std::move(record));
  }
  if (series.empty()) {
    std::cerr << "plot_trajectory: no trajectory records in " << path << "\n";
    return 1;
  }

  std::cout << path << ": " << lines << " records, " << series.size()
            << " metric series";
  if (malformed > 0) std::cout << ", " << malformed << " malformed skipped";
  std::cout << "\n\n";

  if (filter.empty()) {
    // Summary: one row per metric across all runs.
    std::string last_baseline;
    Table table({"metric", "runs", "base", "latest", "min", "max", "rule",
                 "fail", "trend"});
    for (const auto& [key, runs] : series) {
      if (key.first != last_baseline) {
        last_baseline = key.first;
        std::cout << "baseline " << last_baseline << " ("
                  << runs.front().schema << ")\n";
      }
      double lo = 0.0;
      double hi = 0.0;
      bool seeded = false;
      std::uint64_t failures = 0;
      for (const TrajectoryRecord& r : runs) {
        if (!r.ok) ++failures;
        if (r.missing) continue;
        lo = seeded ? std::min(lo, r.fresh) : r.fresh;
        hi = seeded ? std::max(hi, r.fresh) : r.fresh;
        seeded = true;
      }
      const TrajectoryRecord& last = runs.back();
      table.row()
          .cell(key.second)
          .cell(static_cast<std::uint64_t>(runs.size()))
          .cell(last.base, 3)
          .cell(last.missing ? std::string("-") : Table::fixed(last.fresh, 3))
          .cell(seeded ? Table::fixed(lo, 3) : std::string("-"))
          .cell(seeded ? Table::fixed(hi, 3) : std::string("-"))
          .cell(last.rule)
          .cell(failures)
          .cell(sparkline(runs));
    }
    table.print(std::cout);
    return 0;
  }

  // Detail: every run of every metric whose path contains the filter.
  bool matched = false;
  for (const auto& [key, runs] : series) {
    if (key.second.find(filter) == std::string::npos) continue;
    matched = true;
    std::cout << key.second << "  (" << key.first << ", "
              << runs.front().schema << ")\n";
    Table table({"run", "sha", "base", "fresh", "delta%", "rule", "tol", "ok"});
    std::uint64_t run_index = 0;
    for (const TrajectoryRecord& r : runs) {
      Table& row = table.row().cell(++run_index).cell(
          r.sha.empty() ? std::string("-") : short_sha(r.sha));
      row.cell(r.base, 3);
      if (r.missing) {
        row.cell(std::string("-")).cell(std::string("-"));
      } else {
        row.cell(r.fresh, 3);
        if (r.base != 0.0) {
          row.percent_cell((r.fresh - r.base) / r.base);
        } else {
          row.cell(std::string("-"));
        }
      }
      row.cell(r.rule)
          .cell(r.tolerance, 2)
          .cell(std::string(r.ok ? "yes" : "NO"));
    }
    table.print(std::cout);
    std::cout << "trend: " << sparkline(runs) << "\n\n";
  }
  if (!matched) {
    std::cerr << "plot_trajectory: no metric path contains '" << filter
              << "'\n";
    return 1;
  }
  return 0;
}
