// dlv_audit_cli — a command-line auditor built on the public API.
//
// Three subcommands:
//   config <file>           audit a named.conf/unbound.conf for the paper's
//                           misconfigurations (auto-detects the format)
//   simulate [options]      run a browsing workload and report leakage
//   zone <file>             parse a master file and print what a DLV
//                           validator would learn from its denial ranges
//
//   ./build/examples/dlv_audit_cli simulate --preset yum --domains 200
//   ./build/examples/dlv_audit_cli simulate --preset manual --remedy txt
//   ./build/examples/dlv_audit_cli config /etc/bind/named.conf.options
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "config/conf_file.h"
#include "config/install_matrix.h"
#include "core/experiment.h"
#include "metrics/table.h"
#include "zone/zonefile.h"

namespace {

using namespace lookaside;

int usage() {
  std::cout <<
      R"(usage: dlv_audit_cli <command> [options]

commands:
  config <file>        audit a resolver configuration file
  simulate [options]   simulate browsing and measure DLV leakage
      --preset NAME    apt-get | apt-get+ | yum | manual | manual-correct |
                       unbound | unbound-correct       (default: yum)
      --domains N      how many popular domains to visit (default: 200)
      --remedy NAME    none | txt | zbit | hash        (default: none)
      --seed N         universe seed                    (default: 7)
  zone <file>          parse a master file, show DLV-relevant structure
)";
  return 2;
}

resolver::ResolverConfig preset_config(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "apt-get") return resolver::ResolverConfig::bind_apt_get();
  if (name == "apt-get+") return resolver::ResolverConfig::bind_apt_get_dagger();
  if (name == "yum") return resolver::ResolverConfig::bind_yum();
  if (name == "manual") return resolver::ResolverConfig::bind_manual();
  if (name == "manual-correct") {
    return resolver::ResolverConfig::bind_manual_correct();
  }
  if (name == "unbound") return resolver::ResolverConfig::unbound_package();
  if (name == "unbound-correct") {
    return resolver::ResolverConfig::unbound_correct();
  }
  *ok = false;
  return {};
}

int audit_config(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  // Auto-detect: unbound files use "key: value" lines, BIND uses braces.
  const bool looks_unbound = text.find("server:") != std::string::npos ||
                             text.find("anchor-file:") != std::string::npos;
  const auto parsed = looks_unbound ? config::parse_unbound_conf(text)
                                    : config::parse_bind_conf(text);
  if (!parsed.has_value()) {
    std::cerr << "syntax error in " << path << "\n";
    return 1;
  }
  const resolver::ResolverConfig& cfg = parsed->config;
  std::cout << "parsed " << (looks_unbound ? "unbound" : "BIND")
            << " configuration: " << cfg.summary() << "\n\n";
  for (const std::string& warning : parsed->warnings) {
    std::cout << "  warning: " << warning << "\n";
  }
  if (!looks_unbound) {
    for (const auto& issue : config::check_arm_compliance(cfg)) {
      std::cout << "  ARM deviation: " << issue.option << " is '"
                << issue.shipped << "', manual documents '" << issue.documented
                << "'\n";
    }
  }
  std::cout << "\nverdict: ";
  if (!cfg.dlv_enabled()) {
    std::cout << "no DLV traffic will be generated.\n";
  } else if (!cfg.root_anchor_available()) {
    std::cout << "SEVERE - DLV enabled without a usable root trust anchor:\n"
                 "every query (even DNSSEC-secured domains) will be sent to\n"
                 "the DLV server (paper Table 3, apt-get+/manual row).\n";
  } else {
    std::cout << "DLV enabled: unsigned domains will leak to the DLV server\n"
                 "as Case-2 queries (paper Sec. 5.1).\n";
  }
  return 0;
}

int simulate(int argc, char** argv) {
  std::string preset = "yum";
  std::uint64_t domains = 200;
  std::string remedy = "none";
  std::uint64_t seed = 7;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string();
    };
    if (arg == "--preset") preset = next();
    else if (arg == "--domains") domains = std::stoull(next());
    else if (arg == "--remedy") remedy = next();
    else if (arg == "--seed") seed = std::stoull(next());
    else return usage();
  }

  bool ok = false;
  core::UniverseExperiment::Options options;
  options.resolver_config = preset_config(preset, &ok);
  if (!ok) return usage();
  options.seed = seed;
  if (remedy == "txt") options.remedy = core::RemedyMode::kTxt;
  else if (remedy == "zbit") options.remedy = core::RemedyMode::kZBit;
  else if (remedy == "hash") options.remedy = core::RemedyMode::kHashed;
  else if (remedy != "none") return usage();

  std::cout << "simulating " << domains << " domain visits, preset=" << preset
            << ", remedy=" << remedy << ", seed=" << seed << " ...\n\n";
  core::UniverseExperiment experiment(options);
  const core::LeakageReport report = experiment.run_topn(domains);
  const core::PhaseMetrics metrics = experiment.metrics();

  metrics::Table table({"Metric", "Value"});
  table.row().cell("domains visited").cell(report.domains_visited);
  table.row().cell("DLV queries observed").cell(report.dlv_queries);
  table.row().cell("Case-1 (record deposited)").cell(report.case1_queries);
  table.row().cell("Case-2 leaked domains").cell(report.distinct_leaked_domains);
  table.row().cell("leak proportion").cell(
      metrics::Table::fixed(report.leaked_proportion() * 100, 2) + "%");
  table.row().cell("response time (s)").cell(metrics.response_seconds, 2);
  table.row().cell("traffic (MB)").cell(metrics.megabytes, 2);
  table.row().cell("queries issued").cell(metrics.queries);
  table.print(std::cout);
  return 0;
}

int audit_zone(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const zone::ZoneFileResult result = zone::parse_zone_file(buffer.str());
  for (const auto& error : result.errors) {
    std::cout << path << ":" << error.line << ": " << error.message << "\n";
  }
  if (!result.zone.has_value()) return 1;
  const zone::Zone& z = *result.zone;
  std::cout << "zone " << z.apex().to_text() << ": " << z.name_count()
            << " owner names\n\nCanonical NSEC chain (what a DLV-style\n"
               "registry exposes to aggressive caching):\n";
  for (const dns::Name& owner : z.owner_names()) {
    std::cout << "  " << owner.to_text() << " -> "
              << z.canonical_successor(owner).to_text() << "\n";
  }
  return result.errors.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "config" && argc >= 3) return audit_config(argv[2]);
  if (command == "simulate") return simulate(argc, argv);
  if (command == "zone" && argc >= 3) return audit_zone(argv[2]);
  return usage();
}
