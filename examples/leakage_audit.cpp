// Leakage audit across installer defaults — the paper's §4/§5 measurement
// campaign as a runnable scenario.
//
// Simulates a user browsing 200 popular domains behind a recursive
// resolver installed each of the ways the paper studied, and reports how
// much of the browsing history the DLV operator could reconstruct.
//
//   ./build/examples/leakage_audit
#include <iostream>

#include "config/install_matrix.h"
#include "core/experiment.h"
#include "metrics/table.h"

int main() {
  using namespace lookaside;

  std::cout << "Browsing 200 popular domains under each installer default\n"
               "(universe: 1M-domain Alexa-like model, DLV registry\n"
               "populated from the deposit model).\n\n";

  struct Scenario {
    std::string label;
    resolver::ResolverConfig config;
  };
  std::vector<Scenario> scenarios = {
      {"BIND via apt-get (Debian/Ubuntu default)",
       resolver::ResolverConfig::bind_apt_get()},
      {"BIND via yum (CentOS/Fedora default)",
       resolver::ResolverConfig::bind_yum()},
      {"BIND apt-get, user enabled validation+DLV (apt-get+)",
       resolver::ResolverConfig::bind_apt_get_dagger()},
      {"BIND manual install, fresh config",
       resolver::ResolverConfig::bind_manual()},
      {"BIND manual, correct config (Fig. 6)",
       resolver::ResolverConfig::bind_manual_correct()},
      {"Unbound package default", resolver::ResolverConfig::unbound_package()},
      {"Unbound correct config (Fig. 7)",
       resolver::ResolverConfig::unbound_correct()},
  };

  metrics::Table table({"Resolver setup", "DLV on", "Visited",
                        "History leaked", "Leak %"});
  for (const Scenario& scenario : scenarios) {
    core::UniverseExperiment::Options options;
    options.universe_size = 1'000'000;
    options.resolver_config = scenario.config;
    core::UniverseExperiment experiment(options);
    const core::LeakageReport report = experiment.run_topn(200);
    table.row()
        .cell(scenario.label)
        .cell(scenario.config.dlv_enabled() ? "yes" : "no")
        .cell(report.domains_visited)
        .cell(report.distinct_leaked_domains)
        .percent_cell(report.leaked_proportion());
  }
  table.print(std::cout);

  std::cout
      << "\nHow to read this:\n"
         "  - apt-get / Unbound-package defaults never contact DLV: no leak.\n"
         "  - yum's default (and any correct DLV setup) leaks most unsigned\n"
         "    domains as Case-2 queries — the paper's core finding.\n"
         "  - The apt-get+/manual configs (trust anchor missing) are worse:\n"
         "    every domain, even fully DNSSEC-secured ones, goes to DLV.\n";
  return 0;
}
