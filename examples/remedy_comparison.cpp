// Remedy comparison — the paper's §6.2 fixes, side by side, on the same
// browsing workload: what each remedy costs and how much privacy it buys.
//
//   ./build/examples/remedy_comparison
#include <iostream>

#include "core/experiment.h"
#include "core/leakage.h"
#include "metrics/table.h"

namespace {

struct Outcome {
  lookaside::core::LeakageReport leakage;
  lookaside::core::PhaseMetrics cost;
  std::string what_registry_sees;
};

Outcome run(lookaside::core::RemedyMode remedy, std::uint64_t n) {
  lookaside::core::UniverseExperiment::Options options;
  options.remedy = remedy;
  options.remedy_deployed_at_authorities = true;  // fixes fully deployed
  lookaside::core::UniverseExperiment experiment(options);
  Outcome out;
  out.leakage = experiment.run_topn(n);
  out.cost = experiment.metrics();
  switch (remedy) {
    case lookaside::core::RemedyMode::kNone:
      out.what_registry_sees = "every unsigned domain, in the clear";
      break;
    case lookaside::core::RemedyMode::kTxt:
    case lookaside::core::RemedyMode::kZBit:
      out.what_registry_sees = "only domains with deposited records";
      break;
    case lookaside::core::RemedyMode::kHashed:
      out.what_registry_sees = "opaque hashes (dictionary attack needed)";
      break;
  }
  return out;
}

}  // namespace

int main() {
  using namespace lookaside;

  const std::uint64_t n = 300;
  std::cout << "Browsing " << n << " popular domains under a correct\n"
               "DLV-enabled resolver, with each remedy fully deployed.\n\n";

  metrics::Table table({"Remedy", "Leaked domains", "Leak %", "Time (s)",
                        "Traffic (MB)", "Queries", "Registry sees"});
  for (const core::RemedyMode remedy :
       {core::RemedyMode::kNone, core::RemedyMode::kTxt,
        core::RemedyMode::kZBit, core::RemedyMode::kHashed}) {
    const Outcome outcome = run(remedy, n);
    table.row()
        .cell(core::remedy_name(remedy))
        .cell(outcome.leakage.distinct_leaked_domains)
        .percent_cell(outcome.leakage.leaked_proportion())
        .cell(outcome.cost.response_seconds, 1)
        .cell(outcome.cost.megabytes, 2)
        .cell(outcome.cost.queries)
        .cell(outcome.what_registry_sees);
  }
  table.print(std::cout);

  std::cout
      << "\nNotes:\n"
         "  - txt-signaling & z-bit drop Case-2 queries to zero when\n"
         "    deployed; TXT pays an extra lookup per domain, Z rides along\n"
         "    free (paper Fig. 11).\n"
         "  - hashed-dlv sends the same number of queries but the operator\n"
         "    sees hashes; its 'leaked' column counts distinct opaque\n"
         "    identifiers, which only a dictionary attack can name\n"
         "    (see bench_dictionary_attack).\n";
  return 0;
}
