#include "config/install_matrix.h"

namespace lookaside::config {

namespace {

struct VersionEntry {
  OperatingSystem os;
  const char* os_name;
  const char* bind_package;
  const char* bind_manual;
  const char* unbound_package;
  const char* unbound_manual;
  bool apt;
};

// Paper Table 1.
constexpr VersionEntry kVersions[] = {
    {OperatingSystem::kCentOs67, "CentOS 6.7", "9.9.4", "9.10.3", "1.4.20",
     "1.5.7", false},
    {OperatingSystem::kCentOs71, "CentOS 7.1", "9.9.4", "9.10.3", "1.4.29",
     "1.5.7", false},
    {OperatingSystem::kDebian7, "Debian 7", "9.8.4", "9.10.3", "1.4.17",
     "1.5.7", true},
    {OperatingSystem::kDebian8, "Debian 8", "9.9.5", "9.10.3", "1.4.22",
     "1.5.7", true},
    {OperatingSystem::kFedora21, "Fedora 21", "9.9.6", "9.10.3", "1.5.7",
     "1.5.7", false},
    {OperatingSystem::kFedora22, "Fedora 22", "9.10.2", "9.10.3", "1.5.7",
     "1.5.7", false},
    {OperatingSystem::kUbuntu1204, "Ubuntu 12.04", "9.9.5", "9.10.3", "1.4.16",
     "1.5.7", true},
    {OperatingSystem::kUbuntu1404, "Ubuntu 14.04", "9.9.5", "9.10.3", "1.4.22",
     "1.5.7", true},
};

const VersionEntry& entry_for(OperatingSystem os) {
  for (const VersionEntry& entry : kVersions) {
    if (entry.os == os) return entry;
  }
  return kVersions[0];
}

}  // namespace

std::string Environment::os_name() const { return entry_for(os).os_name; }

bool Environment::uses_apt() const { return entry_for(os).apt; }

std::string Environment::resolver_version() const {
  const VersionEntry& entry = entry_for(os);
  if (software == ResolverSoftware::kBind) {
    return method == InstallMethod::kPackage ? entry.bind_package
                                             : entry.bind_manual;
  }
  return method == InstallMethod::kPackage ? entry.unbound_package
                                           : entry.unbound_manual;
}

std::string Environment::installer_name() const {
  if (method == InstallMethod::kManual) return "manual";
  return uses_apt() ? "apt-get" : "yum";
}

resolver::ResolverConfig Environment::default_config() const {
  if (software == ResolverSoftware::kUnbound) {
    return method == InstallMethod::kPackage
               ? resolver::ResolverConfig::unbound_package()
               : resolver::ResolverConfig::unbound_manual();
  }
  if (method == InstallMethod::kManual) {
    return resolver::ResolverConfig::bind_manual();
  }
  return uses_apt() ? resolver::ResolverConfig::bind_apt_get()
                    : resolver::ResolverConfig::bind_yum();
}

resolver::ResolverConfig Environment::production_config() const {
  resolver::ResolverConfig config = default_config();
  if (software == ResolverSoftware::kUnbound) {
    config.max_cache_bytes = resolver::ResolverConfig::kUnboundDefaultCacheBytes;
  }
  // BIND's paper-era max-cache-size default is unlimited: leave 0.
  // Modern resolvers ship RFC 8198 aggressive use of DNSSEC-validated
  // caches and memoized validation state on by default (DESIGN.md §4j);
  // the paper-era default_config() keeps both off.
  config.aggressive_synthesis = true;
  config.verdict_cache_entries =
      resolver::ResolverConfig::kDefaultVerdictCacheEntries;
  return config;
}

std::vector<Environment> install_matrix(bool include_manual) {
  std::vector<Environment> out;
  for (const VersionEntry& entry : kVersions) {
    for (ResolverSoftware software :
         {ResolverSoftware::kBind, ResolverSoftware::kUnbound}) {
      out.push_back(Environment{entry.os, software, InstallMethod::kPackage});
      if (include_manual) {
        out.push_back(Environment{entry.os, software, InstallMethod::kManual});
      }
    }
  }
  return out;
}

std::vector<ConfigurationRow> table2_rows() {
  // Paper Table 2 verbatim. apt-get ships validation "auto" (ARM documents
  // "yes"); yum ships lookaside "auto" (ARM documents "no").
  return {
      {"apt-get", "Yes", "Auto", "N/A", "N/A", /*arm_compliant=*/false},
      {"yum", "Yes", "Yes", "Auto", "Yes", /*arm_compliant=*/false},
      {"manual", "N/A", "N/A", "N/A", "N/A", /*arm_compliant=*/true},
  };
}

std::vector<ComplianceIssue> check_arm_compliance(
    const resolver::ResolverConfig& config) {
  std::vector<ComplianceIssue> issues;
  // ARM-documented defaults: dnssec-enable yes; dnssec-validation yes;
  // dnssec-lookaside no.
  if (!config.dnssec_enable) {
    issues.push_back({"dnssec-enable", "no", "yes"});
  }
  if (config.dnssec_validation == resolver::ValidationMode::kAuto) {
    issues.push_back({"dnssec-validation", "auto", "yes"});
  } else if (config.dnssec_validation == resolver::ValidationMode::kNo) {
    issues.push_back({"dnssec-validation", "no", "yes"});
  }
  if (config.dnssec_lookaside) {
    issues.push_back({"dnssec-lookaside", "auto", "no"});
  }
  return issues;
}

}  // namespace lookaside::config
