// The paper's 16-environment installation matrix (Table 1) and the
// per-installer default configurations (Table 2 / Figs. 4-7), including the
// documented non-compliances with BIND's administrator reference manual.
#pragma once

#include <string>
#include <vector>

#include "resolver/config.h"

namespace lookaside::config {

enum class OperatingSystem {
  kCentOs67,
  kCentOs71,
  kDebian7,
  kDebian8,
  kFedora21,
  kFedora22,
  kUbuntu1204,
  kUbuntu1404,
};

enum class ResolverSoftware { kBind, kUnbound };
enum class InstallMethod { kPackage, kManual };

/// One of the 16 (OS x resolver x install-method) environments.
struct Environment {
  OperatingSystem os = OperatingSystem::kCentOs67;
  ResolverSoftware software = ResolverSoftware::kBind;
  InstallMethod method = InstallMethod::kPackage;

  [[nodiscard]] std::string os_name() const;
  /// Resolver version string per the paper's Table 1.
  [[nodiscard]] std::string resolver_version() const;
  /// "apt-get", "yum" or "manual".
  [[nodiscard]] std::string installer_name() const;
  /// The default ResolverConfig this environment ships (Figs. 4-7).
  [[nodiscard]] resolver::ResolverConfig default_config() const;
  /// default_config() plus each resolver's shipped cache bound: Unbound
  /// caps at msg-cache-size + rrset-cache-size (4 MiB + 4 MiB); paper-era
  /// BIND ships max-cache-size unlimited. Opt-in — the Table 2 / Figs. 8-9
  /// reproductions keep using default_config() so their outputs are
  /// untouched by the lifecycle subsystem.
  [[nodiscard]] resolver::ResolverConfig production_config() const;
  /// Whether this OS's package manager is apt-get (Debian family).
  [[nodiscard]] bool uses_apt() const;
};

/// All 16 environments of Table 1 (8 OSes x 2 resolvers, package install),
/// plus the manual variants when `include_manual`.
[[nodiscard]] std::vector<Environment> install_matrix(
    bool include_manual = true);

/// One Table 2 row: default configuration by installer.
struct ConfigurationRow {
  std::string installer;     // apt-get / yum / manual
  std::string dnssec;        // dnssec-enable
  std::string validation;    // dnssec-validation
  std::string dlv;           // dnssec-lookaside
  std::string trust_anchor;  // included?
  bool arm_compliant = true; // matches BIND's documented defaults
};
[[nodiscard]] std::vector<ConfigurationRow> table2_rows();

/// A mismatch between an environment's defaults and the BIND ARM.
struct ComplianceIssue {
  std::string option;
  std::string shipped;
  std::string documented;
};

/// Checks a BIND configuration against the ARM's documented defaults
/// (dnssec-validation default "yes"; dnssec-lookaside default "no").
[[nodiscard]] std::vector<ComplianceIssue> check_arm_compliance(
    const resolver::ResolverConfig& config);

}  // namespace lookaside::config
