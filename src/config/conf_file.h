// Rendering and parsing of resolver configuration files — the literal
// artifacts of the paper's Figs. 4-7.
//
// The paper's root cause is that *files on disk* (named.conf.options,
// unbound.conf) differ between installers and from the documentation. This
// module round-trips ResolverConfig through those file formats: render the
// exact snippets the paper shows, and parse a named.conf/unbound.conf
// subset back into a ResolverConfig so misconfigurations can be audited
// from their source.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "resolver/config.h"

namespace lookaside::config {

/// Renders a named.conf.options in the style of the paper's Figs. 4-6.
/// Only emits options that are explicitly set (matching how installers
/// write minimal files); includes `include "/etc/bind.keys";` when the
/// trust anchors are configured.
[[nodiscard]] std::string render_bind_conf(
    const resolver::ResolverConfig& config);

/// Renders an unbound.conf in the style of the paper's Fig. 7. Unbound's
/// implicit model: features are enabled by anchor-file lines; disabled
/// features appear as commented-out lines (a fresh manual install).
[[nodiscard]] std::string render_unbound_conf(
    const resolver::ResolverConfig& config);

/// Parse outcome: the configuration plus any diagnostics.
struct ParseResult {
  resolver::ResolverConfig config;
  std::vector<std::string> warnings;  // unknown options, suspicious values
};

/// Parses a named.conf.options subset: the three dnssec-* options and the
/// bind.keys include, tolerating comments and flexible whitespace.
/// Returns nullopt on syntax errors (unterminated blocks, missing ';').
[[nodiscard]] std::optional<ParseResult> parse_bind_conf(
    std::string_view text);

/// Parses an unbound.conf subset: auto-trust-anchor-file and
/// dlv-anchor-file lines; commented lines leave the feature off.
[[nodiscard]] std::optional<ParseResult> parse_unbound_conf(
    std::string_view text);

}  // namespace lookaside::config
