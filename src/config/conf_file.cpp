#include "config/conf_file.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace lookaside::config {

namespace {

const char* mode_text(resolver::ValidationMode mode) {
  switch (mode) {
    case resolver::ValidationMode::kNo: return "no";
    case resolver::ValidationMode::kYes: return "yes";
    case resolver::ValidationMode::kAuto: return "auto";
  }
  return "no";
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

/// Strips //, # and /* ... */ comments (BIND accepts all three).
std::string strip_comments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_block = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (in_block) {
      if (text.substr(i, 2) == "*/") {
        in_block = false;
        ++i;
      }
      continue;
    }
    if (text.substr(i, 2) == "/*") {
      in_block = true;
      ++i;
      continue;
    }
    if (text.substr(i, 2) == "//" || text[i] == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      if (i < text.size()) out.push_back('\n');
      continue;
    }
    out.push_back(text[i]);
  }
  return out;
}

}  // namespace

std::string render_bind_conf(const resolver::ResolverConfig& config) {
  std::ostringstream out;
  out << "options {\n";
  out << "        dnssec-enable " << (config.dnssec_enable ? "yes" : "no")
      << ";\n";
  out << "        dnssec-validation " << mode_text(config.dnssec_validation)
      << ";\n";
  if (config.dnssec_lookaside) {
    out << "        dnssec-lookaside auto;\n";
  }
  out << "};\n";
  if (config.root_trust_anchor_included || config.dlv_trust_anchor_included) {
    out << "include \"/etc/bind.keys\";\n";
  }
  return out.str();
}

std::string render_unbound_conf(const resolver::ResolverConfig& config) {
  std::ostringstream out;
  out << "server:\n";
  const bool validation =
      config.validation_enabled() && config.root_trust_anchor_included;
  out << (validation ? "        " : "        # ")
      << "auto-trust-anchor-file: \"/usr/local/etc/unbound/root.key\"\n";
  out << (config.dlv_trust_anchor_included ? "        " : "        # ")
      << "dlv-anchor-file: \"dlv.isc.org.key\"\n";
  return out.str();
}

std::optional<ParseResult> parse_bind_conf(std::string_view text) {
  ParseResult result;
  resolver::ResolverConfig& config = result.config;
  // Fresh-file semantics: nothing configured until stated.
  config.dnssec_enable = true;  // BIND default
  config.dnssec_validation = resolver::ValidationMode::kYes;  // ARM default
  config.dnssec_lookaside = false;
  config.root_trust_anchor_included = false;
  config.dlv_trust_anchor_included = false;

  const std::string cleaned = strip_comments(text);

  // Statements are ';'-separated; blocks use braces. We only need the
  // options statements and top-level includes, so tokenize on ';'.
  int brace_depth = 0;
  std::string statement;
  std::vector<std::string> statements;
  for (char c : cleaned) {
    if (c == '{') {
      // Block headers ("options {") end a statement without a ';'.
      ++brace_depth;
      statements.push_back(trim(statement));
      statement.clear();
      continue;
    }
    if (c == '}') {
      --brace_depth;
      if (brace_depth < 0) return std::nullopt;
      continue;
    }
    if (c == ';') {
      statements.push_back(trim(statement));
      statement.clear();
      continue;
    }
    statement.push_back(c);
  }
  if (brace_depth != 0) return std::nullopt;
  if (!trim(statement).empty()) return std::nullopt;  // missing ';'

  for (const std::string& raw : statements) {
    if (raw.empty() || raw == "options") continue;
    std::istringstream words(raw);
    std::string key, value;
    words >> key >> value;
    if (key == "dnssec-enable") {
      config.dnssec_enable = value == "yes";
      if (value != "yes" && value != "no") {
        result.warnings.push_back("dnssec-enable has unknown value: " + value);
      }
    } else if (key == "dnssec-validation") {
      if (value == "yes") {
        config.dnssec_validation = resolver::ValidationMode::kYes;
      } else if (value == "auto") {
        config.dnssec_validation = resolver::ValidationMode::kAuto;
      } else if (value == "no") {
        config.dnssec_validation = resolver::ValidationMode::kNo;
      } else {
        result.warnings.push_back("dnssec-validation has unknown value: " +
                                  value);
      }
    } else if (key == "dnssec-lookaside") {
      config.dnssec_lookaside = value == "auto";
      if (value != "auto" && value != "no") {
        result.warnings.push_back("dnssec-lookaside has unknown value: " +
                                  value);
      }
    } else if (key == "include") {
      if (raw.find("bind.keys") != std::string::npos) {
        config.root_trust_anchor_included = true;
        config.dlv_trust_anchor_included = true;
      } else {
        result.warnings.push_back("unrecognized include: " + raw);
      }
    } else {
      result.warnings.push_back("ignored option: " + key);
    }
  }

  // The paper's headline misconfiguration, surfaced at parse time.
  if (config.dnssec_validation == resolver::ValidationMode::kYes &&
      !config.root_trust_anchor_included) {
    result.warnings.push_back(
        "dnssec-validation yes without a trust-anchor include: validation "
        "cannot succeed; with dnssec-lookaside every query will go to the "
        "DLV server");
  }
  return result;
}

std::optional<ParseResult> parse_unbound_conf(std::string_view text) {
  ParseResult result;
  resolver::ResolverConfig& config = result.config;
  config.dnssec_validation = resolver::ValidationMode::kNo;
  config.dnssec_lookaside = false;
  config.root_trust_anchor_included = false;
  config.dlv_trust_anchor_included = false;

  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;  // comments = off
    if (stripped.rfind("auto-trust-anchor-file:", 0) == 0 ||
        stripped.rfind("trust-anchor-file:", 0) == 0) {
      config.dnssec_validation = resolver::ValidationMode::kYes;
      config.root_trust_anchor_included = true;
    } else if (stripped.rfind("dlv-anchor-file:", 0) == 0) {
      config.dnssec_validation = resolver::ValidationMode::kYes;
      config.dlv_trust_anchor_included = true;
    } else if (stripped == "server:") {
      continue;
    } else {
      result.warnings.push_back("ignored line: " + stripped);
    }
  }
  return result;
}

}  // namespace lookaside::config
