// Parallel sweep engine: shards an embarrassingly parallel work grid across
// a std::thread pool under a strict determinism contract.
//
// The simulator has no shared mutable state — every experiment owns its
// clock, network, world and resolver — so a (config, domain-list, seed) grid
// parallelizes by giving each shard a private experiment instance. The
// engine guarantees:
//   1. Work item i is a pure function of its index: the engine never feeds
//      scheduling information into a shard.
//   2. Per-shard RNG seeds derive from (base_seed, shard_id) via
//      shard_seed(), independent of thread count and completion order.
//   3. Results merge in canonical index order, so driver output is
//      byte-identical for any --jobs value, including --jobs 1.
// See DESIGN.md §4d for the full contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace lookaside::engine {

/// Deterministic per-shard seed: SplitMix64-style mix of (base_seed,
/// shard_id). Stable across platforms, thread counts and scheduling.
[[nodiscard]] std::uint64_t shard_seed(std::uint64_t base_seed,
                                       std::uint64_t shard_id);

/// std::thread::hardware_concurrency() clamped to at least 1.
[[nodiscard]] unsigned default_jobs();

/// Parses `--jobs N` / `--jobs=N` from argv; absent or zero means
/// default_jobs(). Unknown arguments are ignored (bench drivers keep their
/// own flags).
[[nodiscard]] unsigned parse_jobs(int argc, char** argv);

/// Runs body(i) for every i in [0, count) on up to `jobs` worker threads.
/// Indices are claimed dynamically (fast shards steal remaining work), which
/// is safe because each item depends only on its index. Exceptions thrown by
/// `body` are captured and the first one (by completion, not index) is
/// rethrown on the calling thread after all workers join. jobs <= 1 runs
/// inline, in index order, with no threads.
void for_each_shard(std::size_t count, unsigned jobs,
                    const std::function<void(std::size_t)>& body);

/// Maps fn over [0, count) with for_each_shard and returns the results in
/// index order — the deterministic merge. `fn` must be invocable from
/// multiple threads on distinct indices.
template <typename Fn>
[[nodiscard]] auto run_sharded(std::size_t count, unsigned jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<Result> results(count);
  for_each_shard(count, jobs,
                 [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace lookaside::engine
