#include "engine/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace lookaside::engine {

std::uint64_t shard_seed(std::uint64_t base_seed, std::uint64_t shard_id) {
  // One SplitMix64 step over a mix of the inputs. The golden-ratio odd
  // constant decorrelates adjacent shard ids; the final xorshift cascade
  // avalanches low bits so shard 0 and shard 1 share no stream prefix.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (shard_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

unsigned default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

unsigned parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (arg.rfind("--jobs=", 0) == 0) {
      value = std::string(arg.substr(7));
    } else if (arg == "--jobs" && i + 1 < argc) {
      value = argv[i + 1];
    } else {
      continue;
    }
    // Strict parse: --jobs=abc must be an error, not a silent fall-back to
    // hardware concurrency (matching bench::parse_u64_flag's contract).
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0') {
      std::cerr << "error: --jobs expects an unsigned integer, got '" << value
                << "'\n";
      std::exit(2);
    }
    return parsed == 0 ? default_jobs() : static_cast<unsigned>(parsed);
  }
  return default_jobs();
}

void for_each_shard(std::size_t count, unsigned jobs,
                    const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs == 0 ? 1 : jobs, count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lookaside::engine
