#include "serve/sharded.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "engine/sweep.h"

namespace lookaside::serve {

namespace {

using WallClock = std::chrono::steady_clock;

double ms_since(WallClock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - start)
      .count();
}

// Ring-point / key domains are separated by fixed tags so a client key can
// never collide with a ring point by construction.
constexpr std::uint64_t kRingTag = 0xC0115157ULL;    // ring points
constexpr std::uint64_t kClientTag = 0xC11E57ULL;    // client keys
constexpr std::uint64_t kNameTag = 0x9A3EBA5EULL;    // qname keys

}  // namespace

const char* route_name(ShardRoute route) {
  return route == ShardRoute::kClient ? "client" : "qname";
}

std::optional<ShardRoute> parse_route(std::string_view text) {
  if (text == "client") return ShardRoute::kClient;
  if (text == "qname") return ShardRoute::kQname;
  return std::nullopt;
}

// -- ShardRouter --------------------------------------------------------------

ShardRouter::ShardRouter(std::uint32_t shards, ShardRoute route,
                         std::uint32_t virtual_nodes)
    : shards_(std::max<std::uint32_t>(shards, 1)), route_(route) {
  ring_.reserve(static_cast<std::size_t>(shards_) * virtual_nodes);
  for (std::uint32_t shard = 0; shard < shards_; ++shard) {
    const std::uint64_t shard_base = engine::shard_seed(kRingTag, shard);
    for (std::uint32_t vnode = 0; vnode < virtual_nodes; ++vnode) {
      ring_.emplace_back(engine::shard_seed(shard_base, vnode), shard);
    }
  }
  // Ties (astronomically unlikely) break by shard id so the ring is a pure
  // function of (shards, virtual_nodes) regardless of insertion order.
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t ShardRouter::lookup(std::uint64_t point) const {
  if (shards_ == 1) return 0;
  // First ring point clockwise of the key; wrap past the last point.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, std::uint32_t{0}));
  return it == ring_.end() ? ring_.front().second : it->second;
}

std::uint32_t ShardRouter::shard_for_client(std::uint32_t client) const {
  return lookup(engine::shard_seed(kClientTag, client));
}

std::uint32_t ShardRouter::shard_for_name(const dns::Name& name) const {
  return lookup(engine::shard_seed(kNameTag, name.hash()));
}

std::uint32_t ShardRouter::shard_for(
    const workload::ClientQuery& query) const {
  return route_ == ShardRoute::kClient ? shard_for_client(query.client)
                                       : shard_for_name(query.name);
}

// -- ShardedServeScenario -----------------------------------------------------

ShardedServeScenario::ShardedServeScenario(ShardedOptions options)
    : options_(std::move(options)),
      router_(options_.shards, options_.route) {
  const std::uint32_t shards = router_.shards();
  if (!options_.shard_tracers.empty() &&
      options_.shard_tracers.size() != shards) {
    throw std::invalid_argument("shard_tracers must be empty or per-shard");
  }
  if (!options_.shard_metrics.empty() &&
      options_.shard_metrics.size() != shards) {
    throw std::invalid_argument("shard_metrics must be empty or per-shard");
  }
  if (options_.shared_store) {
    store_ = std::make_unique<resolver::SharedProofStore>(
        resolver::SharedProofStore::Options{options_.store_stripes});
  }
  // World builds dominate setup cost and are shared-nothing, so build the
  // shard stacks on worker threads (write-through into the shared store
  // cannot happen yet — nothing has resolved).
  stacks_.resize(shards);
  const unsigned jobs = options_.jobs == 0 ? shards : options_.jobs;
  engine::for_each_shard(shards, jobs, [&](std::size_t s) {
    obs::Tracer* tracer = options_.shard_tracers.empty()
                              ? nullptr
                              : options_.shard_tracers[s];
    obs::MetricsRegistry* metrics = options_.shard_metrics.empty()
                                        ? nullptr
                                        : options_.shard_metrics[s];
    stacks_[s] = std::make_unique<ServeStack>(
        options_.base, tracer, metrics, store_.get(),
        static_cast<std::uint32_t>(s), std::to_string(s));
  });
}

ShardedServeScenario::~ShardedServeScenario() = default;

ShardedSummary ShardedServeScenario::run() {
  if (used_) throw std::logic_error("ShardedServeScenario is single-shot");
  used_ = true;

  const std::uint32_t shards = router_.shards();
  const workload::ClientMix mix(options_.base.mix);
  const std::vector<workload::ClientQuery> schedule =
      mix.generate(stacks_[0]->world->universe());
  const std::uint32_t attack_start = mix.first_attacker();

  // Route every arrival. The global schedule is (time, client, seq)-sorted,
  // so each shard's subsequence is too — submit()'s ordering contract holds
  // in both modes without re-sorting.
  std::vector<std::uint32_t> assignment(schedule.size());
  std::vector<std::vector<workload::ClientQuery>> parts(shards);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const std::uint32_t shard = router_.shard_for(schedule[i]);
    assignment[i] = shard;
    parts[shard].push_back(schedule[i]);
  }

  ShardedSummary out;
  out.shards.resize(shards);
  std::vector<std::vector<Served>> served(shards);
  const auto serve_start = WallClock::now();
  if (store_ != nullptr) {
    // Deterministic global-arrival-order dispatch: proofs published by an
    // earlier arrival are visible to every later one, independent of which
    // shard serves it (see the header's mode contract).
    const std::vector<WireQuery> wire = encode_schedule(schedule);
    for (std::size_t i = 0; i < wire.size(); ++i) {
      served[assignment[i]].push_back(
          stacks_[assignment[i]]->frontend->submit(wire[i]));
    }
  } else {
    // Shard-private parallel serving: one worker per shard, shared nothing.
    const unsigned jobs = options_.jobs == 0 ? shards : options_.jobs;
    engine::for_each_shard(shards, jobs, [&](std::size_t s) {
      const auto shard_start = WallClock::now();
      served[s] = stacks_[s]->frontend->run(encode_schedule(parts[s]));
      out.shards[s].wall_ms = ms_since(shard_start);
    });
  }
  out.serve_wall_ms = ms_since(serve_start);

  // Per-shard reports + pooled latency sample, merged in shard-index order.
  std::vector<std::uint64_t> pooled;
  std::vector<std::uint64_t> pooled_benign;
  std::uint64_t first_arrival = 0;
  std::uint64_t last_completion = 0;
  out.merged.case2_per_client.assign(options_.base.mix.clients, 0);
  for (std::uint32_t s = 0; s < shards; ++s) {
    ShardReport& report = out.shards[s];
    report.shard = s;
    report.queries_routed = parts[s].size();
    std::vector<bool> seen(options_.base.mix.clients, false);
    for (const workload::ClientQuery& query : parts[s]) {
      if (query.client < seen.size() && !seen[query.client]) {
        seen[query.client] = true;
        ++report.clients_routed;
      }
    }
    std::vector<std::uint64_t> latencies;
    report.summary = summarize_served(served[s], *stacks_[s]->frontend,
                                      options_.base.mix.clients, attack_start,
                                      &latencies);
    stacks_[s]->fill_registry_side(report.summary);

    for (const Served& one : served[s]) {
      if (one.overload_drop || one.cpu_drop || one.formerr) continue;
      pooled.push_back(one.latency_us());
      if (one.client < attack_start) pooled_benign.push_back(one.latency_us());
      if (first_arrival == 0 || one.arrival_us < first_arrival) {
        first_arrival = one.arrival_us;
      }
      last_completion = std::max(last_completion, one.completion_us);
    }

    ScenarioSummary& merged = out.merged;
    merged.served += report.summary.served;
    merged.coalesce_hits += report.summary.coalesce_hits;
    merged.coalesce_misses += report.summary.coalesce_misses;
    merged.overload_drops += report.summary.overload_drops;
    merged.cpu_drops += report.summary.cpu_drops;
    merged.validation_cpu_us += report.summary.validation_cpu_us;
    merged.max_queue_depth =
        std::max(merged.max_queue_depth, report.summary.max_queue_depth);
    merged.case2_total += report.summary.case2_total;
    merged.leaked_domains.insert(report.summary.leaked_domains.begin(),
                                 report.summary.leaked_domains.end());
    for (std::size_t c = 0; c < merged.case2_per_client.size(); ++c) {
      merged.case2_per_client[c] += report.summary.case2_per_client[c];
    }
  }
  out.merged.distinct_leaked = out.merged.leaked_domains.size();
  std::sort(pooled.begin(), pooled.end());
  std::sort(pooled_benign.begin(), pooled_benign.end());
  out.merged.p50_ms = quantile_ms(pooled, 0.50);
  out.merged.p99_ms = quantile_ms(pooled, 0.99);
  out.merged.benign_p99_ms = quantile_ms(pooled_benign, 0.99);
  const std::uint64_t makespan_us = last_completion - first_arrival;
  out.merged.qps = makespan_us == 0
                       ? 0.0
                       : static_cast<double>(out.merged.served) /
                             (static_cast<double>(makespan_us) / 1e6);

  // Structural acceptance: shard accounting must tile the merged totals.
  std::uint64_t served_sum = 0;
  std::uint64_t routed_sum = 0;
  std::uint64_t per_client_sum = 0;
  for (const ShardReport& report : out.shards) {
    served_sum += report.summary.served;
    routed_sum += report.queries_routed;
  }
  for (const std::uint64_t count : out.merged.case2_per_client) {
    per_client_sum += count;
  }
  out.sums_consistent = served_sum == out.merged.served &&
                        routed_sum == schedule.size() &&
                        served_sum == schedule.size() &&
                        per_client_sum == out.merged.case2_total;

  if (store_ != nullptr) out.store = store_->stats();
  return out;
}

}  // namespace lookaside::serve
