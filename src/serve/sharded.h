// Multi-core sharded serving (DESIGN.md §4i): N thread-per-resolver shards
// behind one consistent-hash router, following PowerDNS recursor's
// thread-per-resolver model.
//
// Each shard is a complete, shared-nothing ServeStack — its own virtual
// clock, network, signed world, validating resolver, bounded private cache
// and coalescing frontend — so shards never contend on the serving hot
// path. Clients (default) or qnames are routed to shards via a consistent
// hash ring, so adding a shard moves ~1/N of the keys instead of reshuffling
// everything.
//
// Two execution modes:
//
//   Shard-private (shared_store = false). Shards run genuinely in parallel,
//   one worker thread per shard (engine::for_each_shard); nothing is shared,
//   so the run is deterministic *and* wall-clock scalable — this is the mode
//   the QPS scaling study measures. The privacy cost: shards independently
//   re-prove (and re-leak to the DLV registry) denial spans their siblings
//   already proved, so merged Case-2 exceeds the single-resolver count.
//
//   Striped shared proof store (shared_store = true). Shards attach one
//   SharedProofStore: validated NSEC spans and zone cuts are written
//   through, so a shard skips the registry round trip for any span a
//   sibling already proved. Whether shard B sees shard A's proof depends on
//   execution order, so this mode dispatches arrivals in global
//   (time, client, seq) order on one thread — the deterministic schedule a
//   conservative parallel discrete-event simulation would also produce.
//   Proofs then become visible in exactly arrival order, which restores the
//   single-resolver Case-2 profile: the merged leak output is invariant
//   across shard counts (byte-identical canonical merge), and equals the
//   sequential reference.
//
// The merged summary is assembled in canonical shard-index order (the
// engine idiom from DESIGN.md §4d), so all virtual-time outputs are
// byte-identical for any worker-thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "resolver/shared_store.h"
#include "serve/scenario.h"

namespace lookaside::serve {

/// What the router hashes to pick a shard.
enum class ShardRoute {
  kClient,  // per-client affinity (PowerDNS pdns-distributes-queries style)
  kQname,   // per-name affinity (maximizes cross-client cache sharing)
};

[[nodiscard]] const char* route_name(ShardRoute route);
[[nodiscard]] std::optional<ShardRoute> parse_route(std::string_view text);

/// Consistent-hash router: `virtual_nodes` ring points per shard, keyed by
/// SplitMix64-derived hashes, lookup = first ring point clockwise of the
/// key's hash. Deterministic across platforms and runs.
class ShardRouter {
 public:
  ShardRouter(std::uint32_t shards, ShardRoute route,
              std::uint32_t virtual_nodes = 64);

  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  [[nodiscard]] ShardRoute route() const { return route_; }

  [[nodiscard]] std::uint32_t shard_for(
      const workload::ClientQuery& query) const;
  [[nodiscard]] std::uint32_t shard_for_client(std::uint32_t client) const;
  [[nodiscard]] std::uint32_t shard_for_name(const dns::Name& name) const;

 private:
  [[nodiscard]] std::uint32_t lookup(std::uint64_t point) const;

  std::uint32_t shards_;
  ShardRoute route_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // sorted
};

/// Options for one sharded serving run.
struct ShardedOptions {
  /// Per-shard stack shape (universe, mix, frontend, resolver config). The
  /// mix describes the *whole* client population; the router partitions it.
  /// base.tracer/base.metrics are ignored — per-shard tracers/metrics come
  /// from the vectors below (worker threads must never share a sink).
  ScenarioOptions base;
  std::uint32_t shards = 1;
  ShardRoute route = ShardRoute::kClient;
  /// Attach one striped SharedProofStore across all shards (and switch to
  /// the deterministic global-order dispatch described above).
  bool shared_store = false;
  std::size_t store_stripes = 16;
  /// Worker threads for shard-private parallel serving; 0 = one per shard.
  unsigned jobs = 0;
  /// Optional per-shard observability (empty, or exactly `shards` entries).
  std::vector<obs::Tracer*> shard_tracers;
  std::vector<obs::MetricsRegistry*> shard_metrics;
};

/// Per-shard view of one run.
struct ShardReport {
  ScenarioSummary summary;             // registry side = this shard's world
  std::uint32_t shard = 0;
  std::uint32_t clients_routed = 0;    // distinct clients this shard served
  std::uint64_t queries_routed = 0;
  double wall_ms = 0.0;                // host time serving this shard
};

/// Merged + per-shard results of one sharded run.
struct ShardedSummary {
  /// Canonical merge: sums for counts, union for leaked domains,
  /// percentiles over the pooled latency sample, QPS over the global
  /// virtual makespan, max of per-shard queue depths.
  ScenarioSummary merged;
  std::vector<ShardReport> shards;
  double serve_wall_ms = 0.0;  // host time for the whole serving phase
  resolver::SharedProofStore::Stats store;  // zeros in private mode
  /// Structural acceptance: per-shard counts sum to the merged totals
  /// (served, coalesce, drops, Case-2, per-client attribution).
  bool sums_consistent = true;
};

/// Owns N ServeStacks and runs one sharded serving experiment
/// (single-shot, like ServeScenario).
class ShardedServeScenario {
 public:
  explicit ShardedServeScenario(ShardedOptions options);
  ~ShardedServeScenario();

  [[nodiscard]] ShardedSummary run();

  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(stacks_.size());
  }
  [[nodiscard]] ServeStack& stack(std::uint32_t shard) {
    return *stacks_[shard];
  }
  /// Null in shard-private mode.
  [[nodiscard]] resolver::SharedProofStore* shared_store() {
    return store_.get();
  }

 private:
  ShardedOptions options_;
  ShardRouter router_;
  std::unique_ptr<resolver::SharedProofStore> store_;
  std::vector<std::unique_ptr<ServeStack>> stacks_;
  bool used_ = false;
};

}  // namespace lookaside::serve
