#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "dlv/registry.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace lookaside::serve {

namespace {

/// Case-2 observations so far: registry queries that found no record
/// (paper §5.2 — the pure-leak class).
std::uint64_t case2_count(const dlv::DlvRegistry* registry) {
  if (registry == nullptr) return 0;
  return registry->total_queries() - registry->queries_with_record();
}

/// Appends {shard=<label>} to a metric's labels when the frontend carries a
/// shard label; leaves single-resolver series untouched otherwise.
obs::Labels with_shard(const std::string& shard, obs::Labels labels = {}) {
  if (!shard.empty()) labels.emplace_back("shard", shard);
  return labels;
}

/// Plain-stub view (DO=0): no DNSSEC records, never an AD claim. Mirrors
/// the resolver's own stub-facing strip so both paths agree byte-for-byte.
void strip_for_plain_stub(dns::Message& response) {
  response.header.ad = false;
  std::erase_if(response.answers, [](const dns::ResourceRecord& record) {
    return record.type == dns::RRType::kRrsig ||
           record.type == dns::RRType::kNsec ||
           record.type == dns::RRType::kNsec3 ||
           record.type == dns::RRType::kNsec3Param;
  });
}

}  // namespace

FrontendServer::FrontendServer(sim::Network& network,
                               resolver::RecursiveResolver& resolver,
                               FrontendOptions options)
    : network_(&network), resolver_(&resolver), options_(options) {}

ClientAccount& FrontendServer::account(std::uint32_t client) {
  if (clients_.size() <= client) clients_.resize(client + 1);
  return clients_[client];
}

void FrontendServer::note_depth() {
  max_depth_ = std::max(max_depth_, depth_);
  if (metrics_ != nullptr) {
    metrics_->observe("serve_queue_depth", with_shard(shard_label_),
                      static_cast<double>(depth_));
  }
}

void FrontendServer::expire(std::uint64_t now_us) {
  std::erase_if(inflight_, [&](const auto& item) {
    if (item.second.completion_us > now_us) return false;
    depth_ -= item.second.waiters;
    return true;
  });
}

Served FrontendServer::make_formerr(const WireQuery& query) {
  Served served;
  served.arrival_us = query.time_us;
  served.completion_us = query.time_us;  // shed immediately, no upstream work
  served.client = query.client;
  served.formerr = true;
  served.rcode = dns::RCode::kFormErr;

  dns::Message response;
  // The id is the first two bytes; echo it when that much survived.
  if (query.wire.size() >= 2) {
    response.header.id = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(query.wire[0]) << 8) | query.wire[1]);
  }
  response.header.qr = true;
  response.header.rcode = dns::RCode::kFormErr;
  served.response_wire = dns::encode_message(response);
  served.response_bytes = served.response_wire.size();

  stats_.add("serve.formerr");
  stats_.add("serve.bytes.response", served.response_bytes);
  if (metrics_ != nullptr) {
    metrics_->add("serve_formerr", with_shard(shard_label_));
  }
  account(query.client).formerr += 1;
  return served;
}

Served FrontendServer::make_shed(const WireQuery& query,
                                 const dns::Message& message, Served served) {
  served.completion_us = query.time_us;  // shed immediately, no upstream work
  dns::Message response = dns::Message::make_response(message);
  response.header.rcode = dns::RCode::kServFail;
  response.edns = message.edns;
  response.dnssec_ok = message.dnssec_ok;
  served.rcode = dns::RCode::kServFail;
  served.response_wire = dns::encode_message(response);
  served.response_bytes = served.response_wire.size();
  stats_.add("serve.bytes.response", served.response_bytes);
  return served;
}

bool FrontendServer::cpu_admit(std::uint32_t client, std::uint64_t now_us) {
  if (options_.cpu_budget_us_per_s == 0) return true;
  if (cpu_buckets_.size() <= client) cpu_buckets_.resize(client + 1);
  CpuBucket& bucket = cpu_buckets_[client];
  if (!bucket.initialized) {
    bucket.initialized = true;
    bucket.tokens_us = static_cast<std::int64_t>(options_.cpu_burst_us);
    bucket.last_refill_us = now_us;
  } else if (now_us > bucket.last_refill_us) {
    // Integer refill keeps the bucket a pure function of the schedule.
    const std::uint64_t earned = (now_us - bucket.last_refill_us) *
                                 options_.cpu_budget_us_per_s / 1'000'000ULL;
    bucket.tokens_us =
        std::min(static_cast<std::int64_t>(options_.cpu_burst_us),
                 bucket.tokens_us + static_cast<std::int64_t>(earned));
    bucket.last_refill_us = now_us;
  }
  return bucket.tokens_us > 0;
}

void FrontendServer::cpu_charge(std::uint32_t client, std::uint64_t cost_us) {
  account(client).cpu_spent_us += cost_us;
  if (options_.cpu_budget_us_per_s == 0) return;
  if (cpu_buckets_.size() <= client) cpu_buckets_.resize(client + 1);
  // Post-paid debt: the full bill lands even when it overdraws, so a
  // sustained expensive stream stays shed until the refill repays it.
  cpu_buckets_[client].tokens_us -= static_cast<std::int64_t>(cost_us);
}

void FrontendServer::finish(Served& served, const dns::Message& request,
                            const resolver::ResolveResult& result) {
  dns::Message response = result.response;
  response.header.id = request.header.id;
  response.header.rd = request.header.rd;
  response.header.cd = request.header.cd;
  response.edns = request.edns;
  response.dnssec_ok = request.dnssec_ok;
  if (!request.dnssec_ok) strip_for_plain_stub(response);

  served.rcode = response.header.rcode;
  served.response_wire = dns::encode_message(response);
  served.response_bytes = served.response_wire.size();
  stats_.add("serve.answered");
  stats_.add("serve.bytes.response", served.response_bytes);

  ClientAccount& acct = account(served.client);
  acct.answered += 1;
  acct.latency_sum_us += served.latency_us();
}

Served FrontendServer::serve_decoded(const WireQuery& query,
                                     const dns::Message& message) {
  Served served;
  served.arrival_us = query.time_us;
  served.client = query.client;
  served.has_question = true;
  served.qname = message.question().name;
  served.qtype = message.question().type;

  const Key key{served.qname, served.qtype};
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    // Coalesce: join the outstanding resolution and share its fan-out
    // instant. No upstream traffic, no extra leak — that is the point.
    InFlight& entry = it->second;
    entry.waiters += 1;
    depth_ += 1;
    note_depth();
    served.coalesced = true;
    served.completion_us = entry.completion_us;
    if (tracer_ != nullptr && entry.result.trace_span_id != 0) {
      // Coalesce lineage: the shared (already closed) resolver span gains
      // this waiter's frontend span as one more parent.
      obs::Event join;
      join.kind = obs::EventKind::kCoalesceJoin;
      join.time_us = query.time_us;
      join.span_id = entry.result.trace_span_id;
      join.parent_span_id = tracer_->current_span();
      join.name = served.qname.to_text();
      join.qtype = served.qtype;
      tracer_->emit(std::move(join));
    }
    stats_.add("serve.coalesce.hits");
    if (metrics_ != nullptr) {
      metrics_->add("serve_coalesce",
                    with_shard(shard_label_, {{"result", "hit"}}));
    }
    account(query.client).coalesce_hits += 1;
    finish(served, message, entry.result);
    return served;
  }

  if (depth_ >= options_.max_pending) {
    // Admission control: shed with SERVFAIL immediately and charge the
    // client that pushed the frontend over its quota.
    served.overload_drop = true;
    stats_.add("serve.overload.drops");
    if (metrics_ != nullptr) {
      metrics_->add("serve_overload_drops", with_shard(shard_label_));
    }
    account(query.client).overload_drops += 1;
    return make_shed(query, message, served);
  }

  if (!cpu_admit(query.client, query.time_us)) {
    // CPU-budget admission: this client has burned through its validation
    // budget (NSEC3 iteration flood); shed before any upstream work so the
    // attacker can no longer rent the resolver's hash loop.
    served.cpu_drop = true;
    stats_.add("serve.cpu.drops");
    if (metrics_ != nullptr) {
      metrics_->add("serve_cpu_drops", with_shard(shard_label_));
    }
    account(query.client).cpu_drops += 1;
    return make_shed(query, message, served);
  }

  // Cache-facing resolution is always the full DNSSEC-aware one (DO set,
  // validation on); per-client DO views are derived at fan-out in finish().
  // Stub CD pass-through is a resolver-API concern, not a frontend one:
  // honoring it here would make the shared in-flight entry depend on which
  // client got there first.
  const std::uint64_t case2_before = case2_count(registry_);
  const std::uint64_t work_start_us = network_->clock().now_us();
  const resolver::ResolveResult result =
      resolver_->resolve({served.qname, served.qtype});
  const std::uint64_t cost_us = network_->clock().now_us() - work_start_us;
  const std::uint64_t leaked = case2_count(registry_) - case2_before;

  served.completion_us = query.time_us + cost_us;
  served.from_cache = result.from_cache;
  served.case2_leaks = leaked;
  stats_.add("serve.coalesce.misses");
  stats_.add("serve.case2.leaks", leaked);
  if (metrics_ != nullptr) {
    metrics_->add("serve_coalesce",
                  with_shard(shard_label_, {{"result", "miss"}}));
    if (leaked > 0) {
      metrics_->add("serve_case2_leaks", with_shard(shard_label_), leaked);
    }
    // High-water footprint of the shared resolver cache every client
    // behind this frontend populates; under a configured cap this is the
    // number the eviction clock holds down.
    metrics_->set_gauge("resolver_cache_bytes", with_shard(shard_label_),
                        resolver_->cache().bytes());
  }
  ClientAccount& acct = account(query.client);
  acct.case2_leaks += leaked;
  cpu_charge(query.client, result.validation_cost_us);

  finish(served, message, result);
  inflight_.emplace(key, InFlight{served.completion_us, 1, result});
  depth_ += 1;
  note_depth();
  return served;
}

Served FrontendServer::submit(const WireQuery& query) {
  // The schedule is processed in arrival order; a clock that ran backwards
  // would corrupt the in-flight table, so clamp defensively.
  WireQuery arrival = query;
  arrival.time_us = std::max(arrival.time_us, last_arrival_us_);
  last_arrival_us_ = arrival.time_us;

  expire(arrival.time_us);
  stats_.add("serve.queries");
  stats_.add("serve.bytes.query", arrival.wire.size());
  account(arrival.client).queries += 1;

  dns::Message message;
  bool decoded = true;
  try {
    message = dns::decode_message(arrival.wire);
  } catch (const dns::WireFormatError&) {
    decoded = false;
  }
  if (decoded && (message.questions.size() != 1 || message.header.qr)) {
    decoded = false;
  }

  if (tracer_ == nullptr) {
    return decoded ? serve_decoded(arrival, message) : make_formerr(arrival);
  }

  // Trace context for the whole intake..response window: every event the
  // resolution emits downstream (resolver, cache, network bridge, DLV
  // registry) inherits this query_id and client tag.
  const std::uint64_t query_id = make_query_id(arrival.client, arrival.seq);
  tracer_->push_query(query_id, arrival.client + 1);
  const std::uint64_t frontend_span = tracer_->begin_span();
  {
    obs::Event intake;
    intake.kind = obs::EventKind::kClientQuery;
    intake.time_us = arrival.time_us;
    intake.span_id = frontend_span;
    if (decoded) {
      intake.name = message.question().name.to_text();
      intake.qtype = message.question().type;
    }
    intake.bytes = arrival.wire.size();
    tracer_->emit(std::move(intake));
  }

  const Served served =
      decoded ? serve_decoded(arrival, message) : make_formerr(arrival);

  obs::Event done;
  done.kind = obs::EventKind::kClientResponse;
  done.time_us = served.completion_us;
  done.span_id = frontend_span;
  if (served.has_question) {
    done.name = served.qname.to_text();
    done.qtype = served.qtype;
  }
  done.rcode = served.rcode;
  done.bytes = served.response_bytes;
  done.latency_us = served.latency_us();
  done.detail = served.overload_drop ? "overload"
                : served.cpu_drop    ? "cpu-overload"
                : served.formerr     ? "formerr"
                : served.coalesced   ? "coalesced"
                : served.from_cache  ? "cache"
                                     : "resolved";
  tracer_->emit(std::move(done));
  tracer_->end_span(frontend_span);
  tracer_->pop_query();
  return served;
}

std::vector<Served> FrontendServer::run(std::vector<WireQuery> arrivals) {
  std::sort(arrivals.begin(), arrivals.end(),
            [](const WireQuery& a, const WireQuery& b) {
              if (a.time_us != b.time_us) return a.time_us < b.time_us;
              if (a.client != b.client) return a.client < b.client;
              return a.seq < b.seq;
            });
  std::vector<Served> served;
  served.reserve(arrivals.size());
  for (const WireQuery& arrival : arrivals) {
    served.push_back(submit(arrival));
  }
  return served;
}

dns::Message FrontendServer::handle_query(const dns::Message& query) {
  const WireQuery wire{network_->clock().now_us(), 0, 0,
                       dns::encode_message(query)};
  const Served served = submit(wire);
  return dns::decode_message(served.response_wire);
}

}  // namespace lookaside::serve
