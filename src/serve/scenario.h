// One-stop wiring for multi-client serving experiments: clock, network,
// UniverseWorld, validating resolver, LeakageAnalyzer, FrontendServer and a
// ClientMix schedule, plus the sequential reference model the frontend's
// leak totals are checked against.
//
// The reference model is the falsifier for coalescing: it replays the exact
// same arrival-ordered schedule through a fresh identical world with one
// resolve() per query and no in-flight sharing. Coalescing must not change
// *what leaks* — a coalesced duplicate would have been a resolver cache hit
// in the sequential world, and neither path reaches the DLV registry — so
// the Case-2 totals and the leaked-domain sets of the two runs must be
// identical. bench_serve_throughput exits nonzero when they are not.
//
// The stack itself (ServeStack) is a standalone building block so the
// sharded runner (serve/sharded.h) can own N of them — one per resolver
// shard — without duplicating the wiring.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/leakage.h"
#include "dlv/registry.h"
#include "resolver/config.h"
#include "serve/frontend.h"
#include "workload/client_mix.h"
#include "workload/universe_world.h"

namespace lookaside::obs {
class Tracer;
class MetricsRegistry;
}
namespace lookaside::resolver {
class SharedProofStore;
}

namespace lookaside::serve {

/// Everything that defines one serving run.
struct ScenarioOptions {
  std::uint64_t universe_size = 100'000;
  std::uint64_t seed = 7;
  workload::ClientMixOptions mix;
  FrontendOptions frontend;
  /// DLV registry options (NSEC3 mode, salt, iteration count) passed
  /// through to the UniverseWorld's registry.
  dlv::DlvRegistry::Options dlv;
  resolver::ResolverConfig resolver_config =
      resolver::ResolverConfig::bind_yum();
  obs::Tracer* tracer = nullptr;            // nullable
  obs::MetricsRegistry* metrics = nullptr;  // nullable
};

/// Aggregates one run of a scenario (frontend or sequential reference).
struct ScenarioSummary {
  std::uint64_t served = 0;
  std::uint64_t coalesce_hits = 0;
  std::uint64_t coalesce_misses = 0;
  std::uint64_t overload_drops = 0;
  std::uint64_t cpu_drops = 0;          // shed by the per-client CPU budget
  std::uint64_t max_queue_depth = 0;
  std::uint64_t validation_cpu_us = 0;  // modeled validator CPU billed
  double qps = 0.0;      // served / virtual makespan
  double p50_ms = 0.0;   // client-observed virtual latency
  double p99_ms = 0.0;
  double benign_p99_ms = 0.0;  // p99 over non-attacker clients' answers
  std::uint64_t case2_total = 0;            // registry-side Case-2 queries
  std::uint64_t distinct_leaked = 0;
  std::set<std::string> leaked_domains;     // identity check vs reference
  std::vector<std::uint64_t> case2_per_client;

  [[nodiscard]] double coalesce_rate() const {
    const std::uint64_t resolved = coalesce_hits + coalesce_misses;
    return resolved == 0 ? 0.0
                         : static_cast<double>(coalesce_hits) /
                               static_cast<double>(resolved);
  }
};

/// Deterministic quantile over sorted virtual latencies (nearest-rank;
/// integer inputs, so no float-order sensitivity). Exposed so the sharded
/// runner computes merged percentiles with the same estimator.
[[nodiscard]] double quantile_ms(const std::vector<std::uint64_t>& sorted,
                                 double q);

/// Encodes an arrival schedule to wire queries with the deterministic
/// per-query id contract ((client << 10) ^ seq ^ 0x5117).
[[nodiscard]] std::vector<WireQuery> encode_schedule(
    const std::vector<workload::ClientQuery>& schedule);

/// One full serving stack: private clock, network, world, analyzer,
/// resolver and frontend. ServeScenario owns exactly one; the sharded
/// runner owns one per shard (shared-nothing except the optional
/// SharedProofStore attached to the resolver cache).
struct ServeStack {
  /// `shard_id`/`shard_label` feed the shared store's sibling accounting
  /// and the frontend's per-shard metric labels; `shared_store` (nullable)
  /// attaches the cross-shard proof store to this stack's resolver cache.
  ServeStack(const ScenarioOptions& options, obs::Tracer* tracer,
             obs::MetricsRegistry* metrics,
             resolver::SharedProofStore* shared_store,
             std::uint32_t shard_id, const std::string& shard_label);
  ~ServeStack();

  ServeStack(const ServeStack&) = delete;
  ServeStack& operator=(const ServeStack&) = delete;

  /// Registry-side Case-2 count so far (total minus deposited).
  [[nodiscard]] std::uint64_t case2() const;
  /// Copies the registry-side leak fields into `summary`.
  void fill_registry_side(ScenarioSummary& summary) const;

  sim::SimClock clock;
  sim::Network network;
  std::unique_ptr<workload::UniverseWorld> world;
  std::unique_ptr<core::LeakageAnalyzer> analyzer;
  std::unique_ptr<resolver::RecursiveResolver> resolver;
  std::unique_ptr<FrontendServer> frontend;
};

/// Builds the frontend-side summary fields from one run's Served records.
/// Shed queries (SERVFAIL at arrival, zero latency) are excluded from the
/// latency sample — they would otherwise make an overloaded run look fast.
/// When non-null, `latencies_out` receives the sorted answered-query
/// latencies and `first_arrival_out`/`last_completion_out` the run's span
/// endpoints, so the sharded runner can merge percentiles and makespans
/// canonically. Registry-side fields are NOT filled here.
[[nodiscard]] ScenarioSummary summarize_served(
    const std::vector<Served>& served, const FrontendServer& frontend,
    std::uint32_t clients, std::uint32_t attack_start,
    std::vector<std::uint64_t>* latencies_out = nullptr,
    std::uint64_t* first_arrival_out = nullptr,
    std::uint64_t* last_completion_out = nullptr);

/// Owns one full serving stack for one run (single-shot: build, run, read).
class ServeScenario {
 public:
  explicit ServeScenario(ScenarioOptions options);
  ~ServeScenario();

  /// Generates the ClientMix schedule, encodes it to wire, and serves it
  /// through the coalescing frontend.
  [[nodiscard]] ScenarioSummary run();

  /// Serves the identical schedule with one resolve() per query and no
  /// coalescing, on this scenario's (fresh) stack. Build a separate
  /// ServeScenario from the same options to compare against run().
  [[nodiscard]] ScenarioSummary run_sequential_reference();

  [[nodiscard]] FrontendServer& frontend() { return *stack_.frontend; }
  [[nodiscard]] workload::UniverseWorld& world() { return *stack_.world; }
  [[nodiscard]] sim::Network& network() { return stack_.network; }

 private:
  ScenarioOptions options_;
  ServeStack stack_;
  bool used_ = false;
};

}  // namespace lookaside::serve
