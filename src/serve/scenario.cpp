#include "serve/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/rng.h"
#include "obs/tracer.h"

namespace lookaside::serve {

namespace {

/// Deterministic quantile over virtual latencies (nearest-rank on the
/// sorted sample; integer inputs, so no float-order sensitivity).
double quantile_ms(std::vector<std::uint64_t> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[index]) / 1000.0;
}

std::uint64_t case2_count(const dlv::DlvRegistry& registry) {
  return registry.total_queries() - registry.queries_with_record();
}

}  // namespace

ServeScenario::ServeScenario(ScenarioOptions options)
    : options_(std::move(options)), network_(clock_) {
  workload::WorldOptions world_options;
  world_options.universe.size = options_.universe_size;
  world_options.universe.seed = options_.seed;
  world_options.seed = crypto::derive_seed(options_.seed, 0x0F0F);
  world_options.dlv = options_.dlv;
  // Deposits beyond the sampled head never get queried; capping the scan
  // keeps small scenario builds fast without changing any observable.
  world_options.deposit_scan_limit = options_.universe_size;

  world_ = std::make_unique<workload::UniverseWorld>(world_options);
  world_->registry().attach_clock(clock_);
  world_->registry().set_store_observations(false);
  analyzer_ = std::make_unique<core::LeakageAnalyzer>(world_->registry());

  resolver_ = std::make_unique<resolver::RecursiveResolver>(
      network_, world_->directory(), options_.resolver_config);
  resolver_->set_root_trust_anchor(world_->root_trust_anchor());
  resolver_->set_dlv_trust_anchor(world_->registry().trust_anchor());

  frontend_ = std::make_unique<FrontendServer>(network_, *resolver_,
                                               options_.frontend);
  frontend_->set_registry(&world_->registry());
  frontend_->set_metrics(options_.metrics);

  if (options_.tracer != nullptr) {
    options_.tracer->attach_clock(clock_);
    options_.tracer->attach_network(network_);
    world_->set_tracer(options_.tracer);
    resolver_->set_tracer(options_.tracer);
    frontend_->set_tracer(options_.tracer);
  }
}

ServeScenario::~ServeScenario() = default;

std::vector<WireQuery> ServeScenario::encode_schedule(
    const std::vector<workload::ClientQuery>& schedule) const {
  std::vector<WireQuery> wire;
  wire.reserve(schedule.size());
  for (const workload::ClientQuery& query : schedule) {
    // Deterministic per-query id: the stub side of the determinism contract.
    const auto id = static_cast<std::uint16_t>(
        (query.client << 10) ^ query.seq ^ 0x5117);
    wire.push_back({query.time_us, query.client, query.seq,
                    dns::encode_message(dns::Message::make_query(
                        id, query.name, query.type,
                        /*recursion_desired=*/true, /*dnssec_ok=*/true))});
  }
  return wire;
}

void ServeScenario::fill_registry_side(ScenarioSummary& summary) const {
  const core::LeakageReport& report = analyzer_->report();
  summary.case2_total = report.case2_queries;
  summary.distinct_leaked = report.distinct_leaked_domains;
  summary.leaked_domains = analyzer_->leaked_domains();
}

ScenarioSummary ServeScenario::run() {
  if (used_) throw std::logic_error("ServeScenario is single-shot");
  used_ = true;

  const workload::ClientMix mix(options_.mix);
  const std::vector<Served> served =
      frontend_->run(encode_schedule(mix.generate(world_->universe())));

  ScenarioSummary summary;
  summary.served = served.size();
  summary.coalesce_hits = frontend_->stats().value("serve.coalesce.hits");
  summary.coalesce_misses = frontend_->stats().value("serve.coalesce.misses");
  summary.overload_drops = frontend_->stats().value("serve.overload.drops");
  summary.cpu_drops = frontend_->stats().value("serve.cpu.drops");
  summary.max_queue_depth = frontend_->max_queue_depth();

  // Shed queries (SERVFAIL at arrival, zero latency) are excluded from the
  // latency sample — they would otherwise make an overloaded run look fast.
  const std::uint32_t attack_start = mix.first_attacker();
  std::vector<std::uint64_t> latencies;
  std::vector<std::uint64_t> benign_latencies;
  latencies.reserve(served.size());
  std::uint64_t first_arrival = 0;
  std::uint64_t last_completion = 0;
  for (const Served& one : served) {
    if (one.overload_drop || one.cpu_drop || one.formerr) continue;
    latencies.push_back(one.latency_us());
    if (one.client < attack_start) benign_latencies.push_back(one.latency_us());
    if (first_arrival == 0 || one.arrival_us < first_arrival) {
      first_arrival = one.arrival_us;
    }
    last_completion = std::max(last_completion, one.completion_us);
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(benign_latencies.begin(), benign_latencies.end());
  summary.p50_ms = quantile_ms(latencies, 0.50);
  summary.p99_ms = quantile_ms(latencies, 0.99);
  summary.benign_p99_ms = quantile_ms(benign_latencies, 0.99);
  const std::uint64_t makespan_us = last_completion - first_arrival;
  summary.qps = makespan_us == 0
                    ? 0.0
                    : static_cast<double>(summary.served) /
                          (static_cast<double>(makespan_us) / 1e6);

  summary.case2_per_client.assign(options_.mix.clients, 0);
  const std::vector<ClientAccount>& accounts = frontend_->clients();
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    if (i < summary.case2_per_client.size()) {
      summary.case2_per_client[i] = accounts[i].case2_leaks;
    }
    summary.validation_cpu_us += accounts[i].cpu_spent_us;
  }
  fill_registry_side(summary);
  return summary;
}

ScenarioSummary ServeScenario::run_sequential_reference() {
  if (used_) throw std::logic_error("ServeScenario is single-shot");
  used_ = true;

  const workload::ClientMix mix(options_.mix);
  const std::vector<workload::ClientQuery> schedule =
      mix.generate(world_->universe());

  ScenarioSummary summary;
  summary.served = schedule.size();
  summary.case2_per_client.assign(options_.mix.clients, 0);

  std::vector<std::uint64_t> latencies;
  latencies.reserve(schedule.size());
  std::uint64_t last_completion = 0;
  for (const workload::ClientQuery& query : schedule) {
    const std::uint64_t before = case2_count(world_->registry());
    const std::uint64_t start_us = clock_.now_us();
    const resolver::ResolveResult result =
        resolver_->resolve({query.name, query.type});
    (void)result;
    const std::uint64_t cost_us = clock_.now_us() - start_us;
    latencies.push_back(cost_us);
    last_completion = std::max(last_completion, query.time_us + cost_us);
    if (query.client < summary.case2_per_client.size()) {
      summary.case2_per_client[query.client] +=
          case2_count(world_->registry()) - before;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  summary.p50_ms = quantile_ms(latencies, 0.50);
  summary.p99_ms = quantile_ms(latencies, 0.99);
  const std::uint64_t first_arrival =
      schedule.empty() ? 0 : schedule.front().time_us;
  const std::uint64_t makespan_us =
      last_completion > first_arrival ? last_completion - first_arrival : 0;
  summary.qps = makespan_us == 0
                    ? 0.0
                    : static_cast<double>(summary.served) /
                          (static_cast<double>(makespan_us) / 1e6);
  fill_registry_side(summary);
  return summary;
}

}  // namespace lookaside::serve
