#include "serve/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/rng.h"
#include "obs/tracer.h"
#include "resolver/shared_store.h"

namespace lookaside::serve {

double quantile_ms(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[index]) / 1000.0;
}

std::vector<WireQuery> encode_schedule(
    const std::vector<workload::ClientQuery>& schedule) {
  std::vector<WireQuery> wire;
  wire.reserve(schedule.size());
  for (const workload::ClientQuery& query : schedule) {
    // Deterministic per-query id: the stub side of the determinism contract.
    const auto id = static_cast<std::uint16_t>(
        (query.client << 10) ^ query.seq ^ 0x5117);
    wire.push_back({query.time_us, query.client, query.seq,
                    dns::encode_message(dns::Message::make_query(
                        id, query.name, query.type,
                        /*recursion_desired=*/true, /*dnssec_ok=*/true))});
  }
  return wire;
}

// -- ServeStack ---------------------------------------------------------------

ServeStack::ServeStack(const ScenarioOptions& options, obs::Tracer* tracer,
                       obs::MetricsRegistry* metrics,
                       resolver::SharedProofStore* shared_store,
                       std::uint32_t shard_id, const std::string& shard_label)
    : network(clock) {
  workload::WorldOptions world_options;
  world_options.universe.size = options.universe_size;
  world_options.universe.seed = options.seed;
  world_options.seed = crypto::derive_seed(options.seed, 0x0F0F);
  world_options.dlv = options.dlv;
  // Deposits beyond the sampled head never get queried; capping the scan
  // keeps small scenario builds fast without changing any observable.
  world_options.deposit_scan_limit = options.universe_size;

  world = std::make_unique<workload::UniverseWorld>(world_options);
  world->registry().attach_clock(clock);
  world->registry().set_store_observations(false);
  analyzer = std::make_unique<core::LeakageAnalyzer>(world->registry());

  resolver = std::make_unique<resolver::RecursiveResolver>(
      network, world->directory(), options.resolver_config);
  resolver->set_root_trust_anchor(world->root_trust_anchor());
  resolver->set_dlv_trust_anchor(world->registry().trust_anchor());
  if (shared_store != nullptr) {
    resolver->attach_shared(shared_store, shard_id);
  }

  frontend = std::make_unique<FrontendServer>(network, *resolver,
                                              options.frontend);
  frontend->set_registry(&world->registry());
  frontend->set_metrics(metrics);
  frontend->set_shard_label(shard_label);

  if (tracer != nullptr) {
    tracer->attach_clock(clock);
    tracer->attach_network(network);
    world->set_tracer(tracer);
    resolver->set_tracer(tracer);
    frontend->set_tracer(tracer);
  }
}

ServeStack::~ServeStack() = default;

std::uint64_t ServeStack::case2() const {
  return world->registry().total_queries() -
         world->registry().queries_with_record();
}

void ServeStack::fill_registry_side(ScenarioSummary& summary) const {
  const core::LeakageReport& report = analyzer->report();
  summary.case2_total = report.case2_queries;
  summary.distinct_leaked = report.distinct_leaked_domains;
  summary.leaked_domains = analyzer->leaked_domains();
}

// -- Summaries ----------------------------------------------------------------

ScenarioSummary summarize_served(const std::vector<Served>& served,
                                 const FrontendServer& frontend,
                                 std::uint32_t clients,
                                 std::uint32_t attack_start,
                                 std::vector<std::uint64_t>* latencies_out,
                                 std::uint64_t* first_arrival_out,
                                 std::uint64_t* last_completion_out) {
  ScenarioSummary summary;
  summary.served = served.size();
  summary.coalesce_hits = frontend.stats().value("serve.coalesce.hits");
  summary.coalesce_misses = frontend.stats().value("serve.coalesce.misses");
  summary.overload_drops = frontend.stats().value("serve.overload.drops");
  summary.cpu_drops = frontend.stats().value("serve.cpu.drops");
  summary.max_queue_depth = frontend.max_queue_depth();

  std::vector<std::uint64_t> latencies;
  std::vector<std::uint64_t> benign_latencies;
  latencies.reserve(served.size());
  std::uint64_t first_arrival = 0;
  std::uint64_t last_completion = 0;
  for (const Served& one : served) {
    if (one.overload_drop || one.cpu_drop || one.formerr) continue;
    latencies.push_back(one.latency_us());
    if (one.client < attack_start) benign_latencies.push_back(one.latency_us());
    if (first_arrival == 0 || one.arrival_us < first_arrival) {
      first_arrival = one.arrival_us;
    }
    last_completion = std::max(last_completion, one.completion_us);
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(benign_latencies.begin(), benign_latencies.end());
  summary.p50_ms = quantile_ms(latencies, 0.50);
  summary.p99_ms = quantile_ms(latencies, 0.99);
  summary.benign_p99_ms = quantile_ms(benign_latencies, 0.99);
  const std::uint64_t makespan_us = last_completion - first_arrival;
  summary.qps = makespan_us == 0
                    ? 0.0
                    : static_cast<double>(summary.served) /
                          (static_cast<double>(makespan_us) / 1e6);

  summary.case2_per_client.assign(clients, 0);
  const std::vector<ClientAccount>& accounts = frontend.clients();
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    if (i < summary.case2_per_client.size()) {
      summary.case2_per_client[i] = accounts[i].case2_leaks;
    }
    summary.validation_cpu_us += accounts[i].cpu_spent_us;
  }
  if (latencies_out != nullptr) *latencies_out = std::move(latencies);
  if (first_arrival_out != nullptr) *first_arrival_out = first_arrival;
  if (last_completion_out != nullptr) *last_completion_out = last_completion;
  return summary;
}

// -- ServeScenario ------------------------------------------------------------

ServeScenario::ServeScenario(ScenarioOptions options)
    : options_(std::move(options)),
      stack_(options_, options_.tracer, options_.metrics,
             /*shared_store=*/nullptr, /*shard_id=*/0, /*shard_label=*/{}) {}

ServeScenario::~ServeScenario() = default;

ScenarioSummary ServeScenario::run() {
  if (used_) throw std::logic_error("ServeScenario is single-shot");
  used_ = true;

  const workload::ClientMix mix(options_.mix);
  const std::vector<Served> served =
      stack_.frontend->run(encode_schedule(mix.generate(stack_.world->universe())));

  ScenarioSummary summary = summarize_served(
      served, *stack_.frontend, options_.mix.clients, mix.first_attacker());
  stack_.fill_registry_side(summary);
  return summary;
}

ScenarioSummary ServeScenario::run_sequential_reference() {
  if (used_) throw std::logic_error("ServeScenario is single-shot");
  used_ = true;

  const workload::ClientMix mix(options_.mix);
  const std::vector<workload::ClientQuery> schedule =
      mix.generate(stack_.world->universe());

  ScenarioSummary summary;
  summary.served = schedule.size();
  summary.case2_per_client.assign(options_.mix.clients, 0);

  std::vector<std::uint64_t> latencies;
  latencies.reserve(schedule.size());
  std::uint64_t last_completion = 0;
  for (const workload::ClientQuery& query : schedule) {
    const std::uint64_t before = stack_.case2();
    const std::uint64_t start_us = stack_.clock.now_us();
    const resolver::ResolveResult result =
        stack_.resolver->resolve({query.name, query.type});
    (void)result;
    const std::uint64_t cost_us = stack_.clock.now_us() - start_us;
    latencies.push_back(cost_us);
    last_completion = std::max(last_completion, query.time_us + cost_us);
    if (query.client < summary.case2_per_client.size()) {
      summary.case2_per_client[query.client] += stack_.case2() - before;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  summary.p50_ms = quantile_ms(latencies, 0.50);
  summary.p99_ms = quantile_ms(latencies, 0.99);
  const std::uint64_t first_arrival =
      schedule.empty() ? 0 : schedule.front().time_us;
  const std::uint64_t makespan_us =
      last_completion > first_arrival ? last_completion - first_arrival : 0;
  summary.qps = makespan_us == 0
                    ? 0.0
                    : static_cast<double>(summary.served) /
                          (static_cast<double>(makespan_us) / 1e6);
  stack_.fill_registry_side(summary);
  return summary;
}

}  // namespace lookaside::serve
