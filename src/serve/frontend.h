// The concurrent serving frontend: wire-format queries in, coalesced
// resolutions out.
//
// This is the piece that turns the single-stub resolver into a *shared*
// resolver — the deployment shape the paper's privacy argument is about
// (one campus/ISP recursive aggregating many users against the DLV
// registry). The frontend:
//
//   - decodes untrusted wire bytes with dns/codec (FORMERR on garbage);
//   - keeps an in-flight table keyed by (qname, qtype): a query that
//     arrives while an identical resolution is still outstanding joins it
//     as a waiter and receives the same answer at the same fan-out time,
//     without any upstream traffic (BIND's recursing-clients table /
//     Unbound's mesh, reduced to its privacy-relevant essence);
//   - applies admission control: when outstanding client queries reach
//     max_pending, new work is shed with SERVFAIL (paper §8.4's overload
//     behavior) and charged to the offending client;
//   - attributes Case-2 DLV leaks to the client whose query initiated the
//     resolution, by snapshotting the registry's counters around it.
//
// Concurrency under a synchronous resolver. RecursiveResolver::resolve()
// runs to completion on the shared virtual clock, so the frontend models
// overlap with *logical* time: each resolution's cost is the clock delta it
// consumed, and its fan-out instant is arrival + cost. A later arrival
// coalesces iff it lands before that instant. Arrivals are processed in
// (time, client, seq) order, which makes every output — answers, counters,
// per-client attribution — a pure function of the input schedule,
// independent of host, thread count, or --jobs sharding. The one
// approximation: cache TTLs run on the resolver's work clock, which
// excludes idle gaps between arrivals; at simulated TTLs (>= 1 h) versus
// schedule spans (<< 1 min of virtual time) the difference is unobservable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/codec.h"
#include "metrics/counters.h"
#include "resolver/resolver.h"
#include "sim/network.h"

namespace lookaside::dlv {
class DlvRegistry;
}
namespace lookaside::obs {
class MetricsRegistry;
class Tracer;
}

namespace lookaside::serve {

/// Frontend tuning knobs.
struct FrontendOptions {
  /// Outstanding client queries (initiators + coalesced waiters) admitted
  /// at once; the next arrival beyond this is shed with SERVFAIL.
  std::size_t max_pending = 128;

  /// Per-client validator-CPU budget: a token bucket refilled at this many
  /// µs of modeled validation CPU per second of virtual time. A client
  /// whose bucket is empty at arrival is shed with SERVFAIL before any
  /// upstream work — the graceful-degradation defense against
  /// proof-of-nonexistence CPU exhaustion (NSEC3 iteration floods). 0
  /// disables the budget.
  std::uint64_t cpu_budget_us_per_s = 0;

  /// Bucket capacity (burst allowance) for the CPU budget.
  std::uint64_t cpu_burst_us = 50'000;
};

/// One wire-format query arriving from a stub client at a virtual instant.
struct WireQuery {
  std::uint64_t time_us = 0;
  std::uint32_t client = 0;
  std::uint32_t seq = 0;  // per-client sequence (deterministic tie-break)
  dns::Bytes wire;
};

/// What the frontend did with one query: the response bytes plus the
/// bookkeeping the bench and tests read back.
struct Served {
  std::uint64_t arrival_us = 0;
  std::uint64_t completion_us = 0;  // when the response leaves the frontend
  std::uint32_t client = 0;
  bool has_question = false;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;
  dns::RCode rcode = dns::RCode::kNoError;
  bool coalesced = false;      // joined an in-flight resolution
  bool from_cache = false;     // initiator answered from the resolver cache
  bool overload_drop = false;  // shed by admission control (queue depth)
  bool cpu_drop = false;       // shed by the per-client CPU budget
  bool formerr = false;        // undecodable or question-less wire
  std::uint64_t case2_leaks = 0;  // Case-2 DLV queries this query caused
  std::size_t response_bytes = 0;
  dns::Bytes response_wire;

  [[nodiscard]] std::uint64_t latency_us() const {
    return completion_us - arrival_us;
  }
};

/// Per-client accounting (indexed by client id).
struct ClientAccount {
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t coalesce_hits = 0;
  std::uint64_t overload_drops = 0;
  std::uint64_t cpu_drops = 0;        // shed by the CPU budget
  std::uint64_t formerr = 0;
  std::uint64_t case2_leaks = 0;  // leaks attributed to this client
  std::uint64_t latency_sum_us = 0;
  std::uint64_t cpu_spent_us = 0;     // validation CPU billed to this client
};

/// The serving frontend. Also a sim::Endpoint ("frontend") so a single
/// interactive stub can reach it through Network::exchange; the multi-client
/// path is run()/submit().
class FrontendServer : public sim::Endpoint {
 public:
  FrontendServer(sim::Network& network, resolver::RecursiveResolver& resolver,
                 FrontendOptions options = {});

  /// Attaches the DLV registry whose counters attribute Case-2 leaks to
  /// initiating clients (nullable; null disables attribution).
  void set_registry(const dlv::DlvRegistry* registry) { registry_ = registry; }

  /// Mirrors the frontend's counters into a labeled registry as they
  /// happen: serve_coalesce{result=hit|miss}, serve_overload_drops,
  /// serve_formerr, and a serve_queue_depth histogram sampled per arrival
  /// (the queue-depth gauge). Nullable.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Tags every emitted metric with {shard=<label>} when non-empty, so a
  /// sharded run's merged registry keeps per-shard serving series apart
  /// (serve_coalesce{result=hit,shard=2}, ...). Empty (the default)
  /// preserves the single-resolver series names byte for byte.
  void set_shard_label(std::string label) { shard_label_ = std::move(label); }

  /// Attaches a structured tracer (nullable). The frontend then opens one
  /// span per client query (client_query .. client_response), pushes the
  /// trace context (query_id, client) so every downstream resolver / cache
  /// / registry event carries it, and emits coalesce_join lineage events
  /// when a query joins an in-flight resolution — N coalesced queries give
  /// the shared resolver span N recorded parents.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Deterministic, client-recoverable trace id for one wire query.
  [[nodiscard]] static std::uint64_t make_query_id(std::uint32_t client,
                                                   std::uint32_t seq) {
    return ((static_cast<std::uint64_t>(client) + 1) << 32) | seq;
  }

  /// Serves one query. Arrivals must be submitted in nondecreasing
  /// (time, client, seq) order — run() sorts for you.
  Served submit(const WireQuery& query);

  /// Sorts `arrivals` into the canonical order and serves them all.
  std::vector<Served> run(std::vector<WireQuery> arrivals);

  /// Counters: "serve.queries", "serve.answered", "serve.coalesce.hits",
  /// "serve.coalesce.misses", "serve.overload.drops", "serve.cpu.drops",
  /// "serve.formerr", "serve.bytes.query", "serve.bytes.response",
  /// "serve.case2.leaks".
  [[nodiscard]] const metrics::CounterSet& stats() const { return stats_; }

  [[nodiscard]] const std::vector<ClientAccount>& clients() const {
    return clients_;
  }

  /// High-water mark of outstanding client queries.
  [[nodiscard]] std::size_t max_queue_depth() const { return max_depth_; }

  /// Outstanding client queries right now (live in-flight waiters).
  [[nodiscard]] std::size_t queue_depth() const { return depth_; }

  // -- sim::Endpoint (single-stub convenience path) -------------------------

  [[nodiscard]] std::string endpoint_id() const override { return "frontend"; }
  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override;

 private:
  /// One upstream resolution shared by every coalesced waiter.
  struct InFlight {
    std::uint64_t completion_us = 0;  // logical fan-out instant
    std::uint32_t waiters = 1;        // initiator included
    resolver::ResolveResult result;
  };
  struct Key {
    dns::Name name;
    dns::RRType type;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return key.name.hash() ^
             (static_cast<std::size_t>(key.type) * 0x9e3779b97f4a7c15ULL);
    }
  };

  /// Retires every in-flight entry whose fan-out instant is <= now.
  void expire(std::uint64_t now_us);

  Served serve_decoded(const WireQuery& query, const dns::Message& message);
  Served make_formerr(const WireQuery& query);
  /// SERVFAIL shed shared by the queue-depth and CPU-budget admission paths.
  Served make_shed(const WireQuery& query, const dns::Message& message,
                   Served served);
  /// Refills `client`'s CPU bucket up to `now_us` and reports whether it
  /// still has tokens (always true when the budget is disabled).
  bool cpu_admit(std::uint32_t client, std::uint64_t now_us);
  /// Bills `cost_us` of validation CPU against `client`'s bucket.
  void cpu_charge(std::uint32_t client, std::uint64_t cost_us);
  void finish(Served& served, const dns::Message& request,
              const resolver::ResolveResult& result);
  ClientAccount& account(std::uint32_t client);
  void note_depth();

  sim::Network* network_;
  resolver::RecursiveResolver* resolver_;
  FrontendOptions options_;
  std::string shard_label_;
  const dlv::DlvRegistry* registry_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  /// Token bucket for one client's validation-CPU budget. Charges are
  /// post-paid and may drive the balance negative (debt): the client is
  /// then shed until the refill repays it, so one expensive proof denies
  /// the *next* queries, never retroactively the one that incurred it.
  struct CpuBucket {
    std::int64_t tokens_us = 0;
    std::uint64_t last_refill_us = 0;
    bool initialized = false;
  };

  std::unordered_map<Key, InFlight, KeyHash> inflight_;
  std::vector<CpuBucket> cpu_buckets_;
  std::size_t depth_ = 0;      // outstanding client queries across entries
  std::size_t max_depth_ = 0;
  metrics::CounterSet stats_;
  std::vector<ClientAccount> clients_;
  std::uint64_t last_arrival_us_ = 0;
};

}  // namespace lookaside::serve
