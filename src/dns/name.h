// Domain names: parsing, hierarchy operations, RFC 4034 canonical ordering,
// and wire-format serialization.
//
// Names are normalized to lower case at construction (DNS comparison is
// case-insensitive; 0x20 case randomization is out of scope, see DESIGN.md).
// Internally a name is one contiguous string plus label offsets, which keeps
// million-domain simulations allocation-light.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bytes.h"

namespace lookaside::dns {

using crypto::Bytes;

/// An absolute domain name ("example.com."). Value-semantic and immutable.
class Name {
 public:
  /// The root name ".".
  Name() = default;

  /// Parses dotted text; a trailing dot is accepted and ignored ("a.b" and
  /// "a.b." are the same absolute name). Throws std::invalid_argument for
  /// empty labels, labels > 63 octets, or wire length > 255.
  static Name parse(std::string_view text);

  /// The root name; equivalent to Name{}.
  static Name root() { return Name{}; }

  [[nodiscard]] bool is_root() const { return text_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return label_starts_.size(); }

  /// Label `i` counted from the leftmost (most specific) label.
  [[nodiscard]] std::string_view label(std::size_t i) const;

  /// Name with the leftmost label removed; parent of root throws
  /// std::logic_error. ("www.example.com" -> "example.com").
  [[nodiscard]] Name parent() const;

  /// Prepends one label ("www" + "example.com" -> "www.example.com").
  [[nodiscard]] Name with_prefix_label(std::string_view label) const;

  /// Concatenation: this name's labels followed by `suffix`'s labels
  /// ("example.com" + "dlv.isc.org" -> "example.com.dlv.isc.org").
  [[nodiscard]] Name concat(const Name& suffix) const;

  /// True when this name equals `ancestor` or lies beneath it.
  [[nodiscard]] bool is_subdomain_of(const Name& ancestor) const;

  /// Strips `ancestor`'s labels from the right; requires is_subdomain_of.
  /// ("example.com.dlv.isc.org" minus "dlv.isc.org" -> "example.com").
  [[nodiscard]] Name without_suffix(const Name& ancestor) const;

  /// RFC 4034 §6.1 canonical ordering: -1 / 0 / +1.
  [[nodiscard]] int canonical_compare(const Name& other) const;

  /// Dotted text with trailing dot; root renders as ".".
  [[nodiscard]] std::string to_text() const;

  /// Uncompressed wire form: length-prefixed labels + root octet.
  [[nodiscard]] Bytes to_wire() const;

  /// Octets to_wire() would produce.
  [[nodiscard]] std::size_t wire_length() const;

  friend bool operator==(const Name& a, const Name& b) {
    return a.hash_ == b.hash_ && a.text_ == b.text_;
  }
  friend bool operator!=(const Name& a, const Name& b) { return !(a == b); }
  /// operator< is canonical order so Name sorts the way NSEC chains need.
  friend bool operator<(const Name& a, const Name& b) {
    return a.canonical_compare(b) < 0;
  }

  /// The normalized internal text (no trailing dot; empty for root).
  [[nodiscard]] const std::string& internal_text() const { return text_; }

  /// Canonical-form hash (FNV-1a 64 over the lowercase text), computed once
  /// at construction so cache probes and hash-map keys never re-hash.
  [[nodiscard]] std::size_t hash() const { return hash_; }

  /// Canonical hash of the root name. Distinct from the raw FNV offset
  /// basis (the hash of zero input bytes), so hash-first comparisons and
  /// the NameHashMap control-byte prefilter can never confuse "nothing
  /// hashed yet" with "the root name". The value deliberately differs from
  /// the basis only in bits 45–51: NameHashMap derives the slot index from
  /// the hash's low bits (a table would need 2^45 slots before bit 45
  /// matters) and the control-byte fragment from the top 7 bits, so
  /// de-aliasing the root does not move any existing table placement —
  /// eviction order under max_cache_bytes is a pinned observable and must
  /// not shift underneath a hash-constant fix.
  static constexpr std::size_t kRootHash =
      14695981039346656037ULL ^ (0x7FULL << 45);

 private:
  // FNV-1a 64-bit offset basis: the hash of zero input bytes.
  static constexpr std::size_t kEmptyHash = 14695981039346656037ULL;

  [[nodiscard]] static std::size_t hash_text(std::string_view text);

  std::string text_;                         // lowercase, no trailing dot
  std::vector<std::uint16_t> label_starts_;  // index of each label's start
  std::size_t hash_ = kRootHash;
};

/// Hash functor so Name can key unordered containers; reuses the memoized
/// canonical hash.
struct NameHash {
  std::size_t operator()(const Name& name) const { return name.hash(); }
};

}  // namespace lookaside::dns
