#include "dns/record.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/bytes.h"

namespace lookaside::dns {

ResourceRecord ResourceRecord::make(Name name, std::uint32_t ttl, Rdata rdata) {
  ResourceRecord out;
  out.name = std::move(name);
  out.type = rdata_type(rdata);
  out.ttl = ttl;
  out.rdata = std::move(rdata);
  return out;
}

ResourceRecord ResourceRecord::make_typed(Name name, RRType type,
                                          std::uint32_t ttl, Rdata rdata) {
  ResourceRecord out;
  out.name = std::move(name);
  out.type = type;
  out.ttl = ttl;
  out.rdata = std::move(rdata);
  return out;
}

std::string ResourceRecord::to_text() const {
  std::string out = name.to_text() + " " + std::to_string(ttl) + " IN " +
                    rr_type_name(type);
  if (const auto* a = std::get_if<ARdata>(&rdata)) {
    out += " " + a->to_text();
  } else if (const auto* aaaa = std::get_if<AaaaRdata>(&rdata)) {
    out += " " + aaaa->to_text();
  } else if (const auto* ns = std::get_if<NsRdata>(&rdata)) {
    out += " " + ns->nameserver.to_text();
  } else if (const auto* cname = std::get_if<CnameRdata>(&rdata)) {
    out += " " + cname->target.to_text();
  } else if (const auto* ptr = std::get_if<PtrRdata>(&rdata)) {
    out += " " + ptr->target.to_text();
  } else if (const auto* mx = std::get_if<MxRdata>(&rdata)) {
    out += " " + std::to_string(mx->preference) + " " + mx->exchanger.to_text();
  } else if (const auto* txt = std::get_if<TxtRdata>(&rdata)) {
    for (const auto& s : txt->strings) out += " \"" + s + "\"";
  } else if (const auto* nsec = std::get_if<NsecRdata>(&rdata)) {
    out += " " + nsec->next.to_text();
    for (RRType t : nsec->types) out += " " + rr_type_name(t);
  } else if (const auto* ds = std::get_if<DsRdata>(&rdata)) {
    out += " " + std::to_string(ds->key_tag) + " " +
           std::to_string(ds->algorithm) + " " +
           std::to_string(ds->digest_type) + " " + crypto::to_hex(ds->digest);
  } else if (const auto* sig = std::get_if<RrsigRdata>(&rdata)) {
    out += " covers=" + rr_type_name(sig->type_covered) +
           " signer=" + sig->signer.to_text() +
           " tag=" + std::to_string(sig->key_tag);
  } else if (const auto* key = std::get_if<DnskeyRdata>(&rdata)) {
    out += " flags=" + std::to_string(key->flags) +
           " alg=" + std::to_string(key->algorithm) +
           " tag=" + std::to_string(key->key_tag());
  }
  return out;
}

void RRset::add(ResourceRecord record) {
  if (!has_identity_) {
    // Default-constructed set adopts the first record's identity.
    name_ = record.name;
    type_ = record.type;
    has_identity_ = true;
  }
  if (record.name != name_ || record.type != type_) {
    throw std::invalid_argument("RRset member (name, type) mismatch");
  }
  records_.push_back(std::move(record));
}

Bytes canonical_rrset_image(const RRset& rrset, std::uint32_t original_ttl) {
  // Encode each record's RDATA once, then sort the encodings (RFC 4034
  // canonical RR ordering is by RDATA as a left-justified octet sequence).
  std::vector<Bytes> rdata_images;
  rdata_images.reserve(rrset.size());
  for (const ResourceRecord& record : rrset.records()) {
    ByteWriter writer;
    encode_rdata(record.rdata, writer);
    rdata_images.push_back(writer.take());
  }
  std::sort(rdata_images.begin(), rdata_images.end());

  ByteWriter out;
  const Bytes owner_wire = rrset.name().to_wire();
  for (const Bytes& image : rdata_images) {
    out.raw(owner_wire);
    out.u16(static_cast<std::uint16_t>(rrset.type()));
    out.u16(static_cast<std::uint16_t>(RRClass::kIn));
    out.u32(original_ttl);
    out.u16(static_cast<std::uint16_t>(image.size()));
    out.raw(image);
  }
  return out.take();
}

Bytes rrsig_signed_data(const RrsigRdata& rrsig_fields, const RRset& rrset) {
  ByteWriter out;
  out.u16(static_cast<std::uint16_t>(rrsig_fields.type_covered));
  out.u8(rrsig_fields.algorithm);
  out.u8(rrsig_fields.labels);
  out.u32(rrsig_fields.original_ttl);
  out.u32(rrsig_fields.expiration);
  out.u32(rrsig_fields.inception);
  out.u16(rrsig_fields.key_tag);
  out.raw(rrsig_fields.signer.to_wire());
  out.raw(canonical_rrset_image(rrset, rrsig_fields.original_ttl));
  return out.take();
}

}  // namespace lookaside::dns
