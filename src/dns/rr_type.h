// Resource-record types, classes and response codes used by the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace lookaside::dns {

/// RR TYPE values (IANA registry subset). DLV is 32769 per RFC 5074 and the
/// paper ("The type bit is set to DLV as 32769 in the DNS query").
enum class RRType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,
  kDs = 43,
  kRrsig = 46,
  kNsec = 47,
  kDnskey = 48,
  kNsec3 = 50,
  kNsec3Param = 51,
  kDlv = 32769,
};

/// RR CLASS values; everything in this library is IN.
enum class RRClass : std::uint16_t {
  kIn = 1,
};

/// Response codes (RFC 1035 §4.1.1 plus the paper's vocabulary:
/// "No error" == kNoError, "No such name" == kNxDomain).
enum class RCode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// Mnemonic text for an RR type ("A", "DLV", "TYPE123" for unknowns).
[[nodiscard]] std::string rr_type_name(RRType type);

/// Mnemonic text for a response code.
[[nodiscard]] std::string rcode_name(RCode rcode);

}  // namespace lookaside::dns
