// Full DNS message wire codec (RFC 1035 §4) with owner-name compression.
//
// The simulator's traffic-volume metrics (paper Tables 4-5, Figs 10-12) are
// computed from these encodings, so sizes track real packets: compression
// pointers, EDNS OPT records, and NSEC type bitmaps are all encoded
// faithfully.
#pragma once

#include "dns/message.h"
#include "dns/wire_io.h"

namespace lookaside::dns {

/// Encodes a message to wire format. Owner names and question names are
/// compressed; names inside RDATA are not (RFC 3597 rules).
[[nodiscard]] Bytes encode_message(const Message& message);

/// Decodes a wire-format message; throws WireFormatError on malformed input
/// (truncation, pointer loops, bad bitmaps, unknown RR types).
[[nodiscard]] Message decode_message(const Bytes& wire);

/// Encoded size in octets without materializing a copy for the caller.
[[nodiscard]] std::size_t wire_size(const Message& message);

}  // namespace lookaside::dns
