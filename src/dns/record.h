// Resource records, RRsets, and the RFC 4034 canonical forms used when
// signing and validating.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/rr_type.h"

namespace lookaside::dns {

/// One resource record. `type` is authoritative (a DLV record carries
/// DS-shaped RDATA but type kDlv).
struct ResourceRecord {
  Name name;
  RRType type = RRType::kA;
  RRClass rr_class = RRClass::kIn;
  std::uint32_t ttl = 0;
  Rdata rdata;

  /// Builds a record, inferring `type` from the payload.
  static ResourceRecord make(Name name, std::uint32_t ttl, Rdata rdata);

  /// Builds a record with an explicit type (for DLV and test edge cases).
  static ResourceRecord make_typed(Name name, RRType type, std::uint32_t ttl,
                                   Rdata rdata);

  /// One-line presentation ("example.com. 3600 IN A 93.184.216.34"-ish).
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

/// An RRset: every record shares (name, type, class). Thin wrapper that
/// maintains the invariant on insertion.
class RRset {
 public:
  RRset() = default;
  RRset(Name name, RRType type)
      : name_(std::move(name)), type_(type), has_identity_(true) {}

  /// Adds a record; throws std::invalid_argument if (name, type) mismatch.
  void add(ResourceRecord record);

  [[nodiscard]] const Name& name() const { return name_; }
  [[nodiscard]] RRType type() const { return type_; }
  [[nodiscard]] const std::vector<ResourceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint32_t ttl() const {
    return records_.empty() ? 0 : records_.front().ttl;
  }

 private:
  Name name_;
  RRType type_ = RRType::kA;
  bool has_identity_ = false;  // default-constructed sets adopt first record
  std::vector<ResourceRecord> records_;
};

/// RFC 4034 §6: the canonical wire image of an RRset for signing —
/// records sorted by canonical RDATA order, names lowercase/uncompressed,
/// TTLs replaced by the RRSIG original TTL.
[[nodiscard]] Bytes canonical_rrset_image(const RRset& rrset,
                                          std::uint32_t original_ttl);

/// The exact byte string an RRSIG signature covers: RRSIG RDATA fields
/// through the signer name, followed by the canonical RRset image.
[[nodiscard]] Bytes rrsig_signed_data(const RrsigRdata& rrsig_fields,
                                      const RRset& rrset);

}  // namespace lookaside::dns
