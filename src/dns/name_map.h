// Open-addressing hash map keyed by dns::Name.
//
// Probes reuse the canonical-form hash memoized on the Name at construction
// (Name::hash()), so a lookup is one mask, a linear scan over a contiguous
// slot array, and hash-first key rejection — no re-hashing, no node chasing,
// no key copies. This is the resolver cache's hot path container: NSEC-heavy
// negative caching does millions of probes per simulated top-1M run.
//
// Linear probing over a power-of-two slot array with tombstone deletion.
// Rehash keeps the live load factor below 3/4 (tombstones count toward the
// trigger so heavily-churned tables compact instead of degrading).
//
// Pointer contract: pointers to mapped values are invalidated by any insert
// (rehash moves slots). Callers that hand out long-lived interior pointers
// must add their own indirection — see ResolverCache, which boxes positive
// entries in unique_ptr to keep std::map-era pointer stability.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "dns/name.h"

namespace lookaside::dns {

template <typename Value>
class NameHashMap {
 public:
  /// Mapped value for `key`, or nullptr. Never allocates.
  [[nodiscard]] Value* find(const Name& key) {
    if (size_ == 0) return nullptr;
    std::size_t i = key.hash() & mask();
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) return nullptr;
      if (slot.state == State::kFull && keys_equal(slot, key)) {
        return &slot.value;
      }
      i = (i + 1) & mask();
    }
  }
  [[nodiscard]] const Value* find(const Name& key) const {
    return const_cast<NameHashMap*>(this)->find(key);
  }

  /// Mapped value for `key`, default-constructed and inserted when absent.
  Value& get_or_insert(const Name& key) {
    if ((size_ + dead_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = key.hash() & mask();
    std::size_t reuse = kNoSlot;
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.state == State::kFull && keys_equal(slot, key)) {
        return slot.value;
      }
      if (slot.state == State::kDead && reuse == kNoSlot) reuse = i;
      if (slot.state == State::kEmpty) {
        Slot& target = reuse == kNoSlot ? slot : slots_[reuse];
        if (target.state == State::kDead) --dead_;
        target.key = key;
        target.value = Value{};
        target.state = State::kFull;
        ++size_;
        return target.value;
      }
      i = (i + 1) & mask();
    }
  }

  /// Removes `key`; returns whether it was present.
  bool erase(const Name& key) {
    if (size_ == 0) return false;
    std::size_t i = key.hash() & mask();
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) return false;
      if (slot.state == State::kFull && keys_equal(slot, key)) {
        slot.key = Name{};
        slot.value = Value{};
        slot.state = State::kDead;
        --size_;
        ++dead_;
        return true;
      }
      i = (i + 1) & mask();
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
    dead_ = 0;
  }

  /// Unordered visitation: fn(const Name&, Value&). Do not mutate the map
  /// inside fn.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.state == State::kFull) fn(slot.key, slot.value);
    }
  }

  /// Number of physical slots (power of two; 0 before first insert). The
  /// sweep cursor space: cursors index slots, not entries.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Incremental slot walk for sweepers and clock-eviction hands: visits up
  /// to `max_steps` consecutive slots starting at `*cursor` (wrapping),
  /// calling fn(key, value) on each full slot; returning true erases that
  /// entry in place (tombstone, no rehash). `*cursor` advances past the
  /// visited slots so repeated calls cover the whole table. A cursor from
  /// before a rehash is clamped by the mask — the walk restarts at an
  /// arbitrary but valid slot, which clock algorithms tolerate by design.
  /// Returns the number of entries erased. fn must not touch the map.
  template <typename Fn>
  std::size_t sweep(std::size_t* cursor, std::size_t max_steps, Fn&& fn) {
    if (slots_.empty() || max_steps == 0) return 0;
    std::size_t erased = 0;
    std::size_t i = *cursor & mask();
    for (std::size_t step = 0; step < max_steps; ++step) {
      Slot& slot = slots_[i];
      if (slot.state == State::kFull && fn(slot.key, slot.value)) {
        slot.key = Name{};
        slot.value = Value{};
        slot.state = State::kDead;
        --size_;
        ++dead_;
        ++erased;
      }
      i = (i + 1) & mask();
    }
    *cursor = i;
    return erased;
  }

 private:
  enum class State : unsigned char { kEmpty, kFull, kDead };
  struct Slot {
    Name key;
    Value value{};
    State state = State::kEmpty;
  };
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kInitialCapacity = 16;

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }

  [[nodiscard]] static bool keys_equal(const Slot& slot, const Name& key) {
    // Hash-first rejection: the memoized hashes differ for almost every
    // unequal pair, so the byte compare rarely runs.
    return slot.key.hash() == key.hash() && slot.key == key;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    // Double only when live entries need it; a tombstone-heavy table
    // rehashes at the same capacity, which drops the tombstones.
    std::size_t capacity = old.empty() ? kInitialCapacity : old.size();
    while ((size_ + 1) * 4 >= capacity * 3) capacity *= 2;
    // resize (not assign): value-initializing fresh slots keeps Value
    // move-only friendly (the positive cache maps to unique_ptr slots).
    slots_.clear();
    slots_.resize(capacity);
    size_ = 0;
    dead_ = 0;
    for (Slot& slot : old) {
      if (slot.state != State::kFull) continue;
      std::size_t i = slot.key.hash() & mask();
      while (slots_[i].state == State::kFull) i = (i + 1) & mask();
      slots_[i].key = std::move(slot.key);
      slots_[i].value = std::move(slot.value);
      slots_[i].state = State::kFull;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t dead_ = 0;  // tombstones
};

}  // namespace lookaside::dns
