// Open-addressing hash map keyed by dns::Name.
//
// Probes reuse the canonical-form hash memoized on the Name at construction
// (Name::hash()), so a lookup is one mask, a linear scan over a contiguous
// control-byte array, and hash-first key rejection — no re-hashing, no node
// chasing, no key copies. This is the resolver cache's hot path container:
// NSEC-heavy negative caching does millions of probes per simulated top-1M
// run.
//
// Slot layout is SoA (DESIGN.md §4k): a dense byte array of control bytes
// (empty/tombstone sentinels, or 0x80 | a 7-bit fragment of the key's hash)
// is probed first, and the wide Slot payload (Name + Value) is only touched
// when the fragment matches. A probe chain therefore walks one cache line of
// metadata per ~64 slots instead of one line per slot, and mismatched keys
// are rejected without ever loading their Name.
//
// Linear probing over a power-of-two slot array with tombstone deletion.
// Rehash keeps the live load factor below 3/4 (tombstones count toward the
// trigger so heavily-churned tables compact instead of degrading).
//
// Pointer contract: pointers to mapped values are invalidated by any insert
// (rehash moves slots). Callers that hand out long-lived interior pointers
// must add their own indirection — see ResolverCache, which boxes positive
// entries in unique_ptr to keep std::map-era pointer stability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "dns/name.h"

namespace lookaside::dns {

/// Resume state for NameHashMap::sweep(): a slot position plus the table
/// generation it was taken under. Rehashes (grow, tombstone compaction,
/// clear) bump the generation; a cursor from an older generation indexes
/// the *previous* slot ordering, so sweep() detects the mismatch and
/// re-anchors the cursor into the current table (masked to the new slot
/// range) instead of silently aliasing a stale index. The hand keeps its
/// numeric phase rather than rewinding to slot 0: second-chance clocks
/// depend on the hand's position for their eviction schedule, and the
/// cap-sweep Case-2 series (DESIGN §4f, pinned by cache_lifecycle tests)
/// is an observable of that schedule — a rewind-to-zero policy restarts
/// every scan at the low slots after each growth and measurably shifts
/// which entries are reclaimed. Entries the rehash moved across the hand
/// are picked up on the next lap, which clock algorithms tolerate by
/// design; within one generation a lap visits every slot exactly once
/// (the model-trace test in name_map intern suite pins both properties).
/// Namespace-level (not nested) so one cursor array can serve maps of
/// different mapped types — see ResolverCache's per-section cursors.
struct NameMapSweepCursor {
  std::size_t slot = 0;
  std::uint64_t generation = 0;
};

template <typename Value>
class NameHashMap {
 public:
  using SweepCursor = NameMapSweepCursor;

  /// Mapped value for `key`, or nullptr. Never allocates.
  [[nodiscard]] Value* find(const Name& key) {
    if (size_ == 0) return nullptr;
    const std::size_t hash = key.hash();
    const std::uint8_t want = ctrl_of(hash);
    std::size_t i = hash & mask();
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == kCtrlEmpty) return nullptr;
      if (c == want) {
        Slot& slot = slots_[i];
        if (keys_equal(slot, key)) return &slot.value;
      }
      i = (i + 1) & mask();
    }
  }
  [[nodiscard]] const Value* find(const Name& key) const {
    return const_cast<NameHashMap*>(this)->find(key);
  }

  /// Mapped value for `key`, default-constructed and inserted when absent.
  Value& get_or_insert(const Name& key) {
    if ((size_ + dead_ + 1) * 4 >= slots_.size() * 3) grow();
    const std::size_t hash = key.hash();
    const std::uint8_t want = ctrl_of(hash);
    std::size_t i = hash & mask();
    std::size_t reuse = kNoSlot;
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == want && keys_equal(slots_[i], key)) return slots_[i].value;
      if (c == kCtrlDead && reuse == kNoSlot) reuse = i;
      if (c == kCtrlEmpty) {
        const std::size_t target = reuse == kNoSlot ? i : reuse;
        if (ctrl_[target] == kCtrlDead) --dead_;
        Slot& slot = slots_[target];
        slot.key = key;
        slot.value = Value{};
        ctrl_[target] = want;
        ++size_;
        return slot.value;
      }
      i = (i + 1) & mask();
    }
  }

  /// Removes `key`; returns whether it was present.
  bool erase(const Name& key) {
    if (size_ == 0) return false;
    const std::size_t hash = key.hash();
    const std::uint8_t want = ctrl_of(hash);
    std::size_t i = hash & mask();
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == kCtrlEmpty) return false;
      if (c == want && keys_equal(slots_[i], key)) {
        slots_[i].key = Name{};
        slots_[i].value = Value{};
        ctrl_[i] = kCtrlDead;
        --size_;
        ++dead_;
        return true;
      }
      i = (i + 1) & mask();
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    ctrl_.clear();
    size_ = 0;
    dead_ = 0;
    ++generation_;
  }

  /// Unordered visitation: fn(const Name&, Value&). Do not mutate the map
  /// inside fn.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (is_full(ctrl_[i])) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Number of physical slots (power of two; 0 before first insert). The
  /// sweep cursor space: cursors index slots, not entries.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  /// Rehash epoch: bumped by every slot-reordering event (grow, tombstone
  /// compaction, clear). SweepCursor snapshots it; tests assert against it.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Incremental slot walk for sweepers and clock-eviction hands: visits up
  /// to `max_steps` consecutive slots starting at `cursor->slot` (wrapping),
  /// calling fn(key, value) on each full slot; returning true erases that
  /// entry in place (tombstone, no rehash). The cursor advances past the
  /// visited slots so repeated calls cover the whole table. A cursor whose
  /// snapshotted generation predates a rehash indexed the *old* slot
  /// ordering — sweep() re-anchors it into the current table (masked, phase
  /// preserved; see NameMapSweepCursor for why not slot 0) so the walk is
  /// always a defined position in the live ordering, and within one
  /// generation never skips or double-visits an entry per lap. Returns the
  /// number of entries erased. fn must not touch the map.
  template <typename Fn>
  std::size_t sweep(SweepCursor* cursor, std::size_t max_steps, Fn&& fn) {
    if (slots_.empty() || max_steps == 0) return 0;
    if (cursor->generation != generation_) {
      cursor->slot &= mask();
      cursor->generation = generation_;
    }
    std::size_t erased = 0;
    std::size_t i = cursor->slot & mask();
    for (std::size_t step = 0; step < max_steps; ++step) {
      if (is_full(ctrl_[i])) {
        Slot& slot = slots_[i];
        if (fn(slot.key, slot.value)) {
          slot.key = Name{};
          slot.value = Value{};
          ctrl_[i] = kCtrlDead;
          --size_;
          ++dead_;
          ++erased;
        }
      }
      i = (i + 1) & mask();
    }
    cursor->slot = i;
    return erased;
  }

 private:
  // Control bytes: one per slot. kCtrlEmpty / kCtrlDead are sentinels; a
  // full slot stores 0x80 | the top 7 bits of the key's hash. The slot
  // index comes from the hash's *low* bits, so the fragment is nearly
  // independent of the probe position and rejects ~127/128 of mismatched
  // keys without touching the Slot array.
  static constexpr std::uint8_t kCtrlEmpty = 0;
  static constexpr std::uint8_t kCtrlDead = 1;
  [[nodiscard]] static std::uint8_t ctrl_of(std::size_t hash) {
    return static_cast<std::uint8_t>(0x80u | (hash >> 57));
  }
  [[nodiscard]] static bool is_full(std::uint8_t c) {
    return (c & 0x80u) != 0;
  }

  struct Slot {
    Name key;
    Value value{};
  };
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  static constexpr std::size_t kInitialCapacity = 16;

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }

  [[nodiscard]] static bool keys_equal(const Slot& slot, const Name& key) {
    // Hash-first rejection: the memoized hashes differ for almost every
    // unequal pair that survives the control-byte fragment, so the byte
    // compare rarely runs on mismatches.
    return slot.key.hash() == key.hash() && slot.key == key;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    // Double only when live entries need it; a tombstone-heavy table
    // rehashes at the same capacity, which drops the tombstones.
    std::size_t capacity = old.empty() ? kInitialCapacity : old.size();
    while ((size_ + 1) * 4 >= capacity * 3) capacity *= 2;
    // resize (not assign): value-initializing fresh slots keeps Value
    // move-only friendly (the positive cache maps to unique_ptr slots).
    slots_.clear();
    slots_.resize(capacity);
    ctrl_.assign(capacity, kCtrlEmpty);
    size_ = 0;
    dead_ = 0;
    ++generation_;
    for (std::size_t s = 0; s < old.size(); ++s) {
      if (!is_full(old_ctrl[s])) continue;
      Slot& slot = old[s];
      const std::size_t hash = slot.key.hash();
      std::size_t i = hash & mask();
      while (ctrl_[i] != kCtrlEmpty) i = (i + 1) & mask();
      slots_[i].key = std::move(slot.key);
      slots_[i].value = std::move(slot.value);
      ctrl_[i] = ctrl_of(hash);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> ctrl_;  // SoA control bytes, one per slot
  std::size_t size_ = 0;
  std::size_t dead_ = 0;       // tombstones
  std::uint64_t generation_ = 1;  // rehash epoch (see SweepCursor)
};

}  // namespace lookaside::dns
