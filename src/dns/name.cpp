#include "dns/name.h"

#include <algorithm>
#include <stdexcept>

namespace lookaside::dns {

namespace {

char lower(char c) {
  // DNS names are ASCII; branchless A-Z fold beats locale-aware tolower on
  // the million-name construction path.
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c | 0x20) : c;
}

void validate_label(std::string_view label) {
  if (label.empty()) throw std::invalid_argument("empty DNS label");
  if (label.size() > 63) throw std::invalid_argument("DNS label > 63 octets");
}

}  // namespace

Name Name::parse(std::string_view text) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  Name out;
  if (text.empty()) return out;  // root
  out.label_starts_.push_back(0);
  std::size_t label_start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      validate_label(text.substr(label_start, i - label_start));
      if (i != text.size()) {
        out.label_starts_.push_back(static_cast<std::uint16_t>(i + 1));
        label_start = i + 1;
      }
    }
  }
  // One allocation + in-place transform; dots survive lower() unchanged.
  out.text_.assign(text);
  for (char& c : out.text_) c = lower(c);
  out.hash_ = hash_text(out.text_);
  if (out.wire_length() > 255) {
    throw std::invalid_argument("DNS name > 255 octets");
  }
  return out;
}

std::size_t Name::hash_text(std::string_view text) {
  // Empty internal text is the root; it must hash to kRootHash no matter
  // which construction path produced it (see kRootHash in name.h).
  if (text.empty()) return kRootHash;
  // FNV-1a 64.
  std::size_t h = kEmptyHash;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string_view Name::label(std::size_t i) const {
  const std::size_t start = label_starts_[i];
  const std::size_t end =
      i + 1 < label_starts_.size() ? label_starts_[i + 1] - 1 : text_.size();
  return std::string_view(text_).substr(start, end - start);
}

Name Name::parent() const {
  if (is_root()) throw std::logic_error("root name has no parent");
  if (label_count() == 1) return root();
  Name out;
  const std::size_t cut = label_starts_[1];
  out.text_ = text_.substr(cut);
  out.hash_ = hash_text(out.text_);
  out.label_starts_.reserve(label_starts_.size() - 1);
  for (std::size_t i = 1; i < label_starts_.size(); ++i) {
    out.label_starts_.push_back(
        static_cast<std::uint16_t>(label_starts_[i] - cut));
  }
  return out;
}

Name Name::with_prefix_label(std::string_view label) const {
  validate_label(label);
  std::string text(label);
  if (!is_root()) {
    text.push_back('.');
    text += text_;
  }
  return parse(text);
}

Name Name::concat(const Name& suffix) const {
  if (is_root()) return suffix;
  if (suffix.is_root()) return *this;
  return parse(text_ + "." + suffix.text_);
}

bool Name::is_subdomain_of(const Name& ancestor) const {
  if (ancestor.is_root()) return true;
  if (ancestor.text_.size() > text_.size()) return false;
  if (ancestor.text_.size() == text_.size()) return text_ == ancestor.text_;
  // Must match a label boundary: "...<dot>ancestor".
  const std::size_t offset = text_.size() - ancestor.text_.size();
  return text_[offset - 1] == '.' &&
         text_.compare(offset, std::string::npos, ancestor.text_) == 0;
}

Name Name::without_suffix(const Name& ancestor) const {
  if (!is_subdomain_of(ancestor)) {
    throw std::invalid_argument("without_suffix: not a subdomain");
  }
  if (ancestor.is_root()) return *this;
  if (text_.size() == ancestor.text_.size()) return root();
  return parse(text_.substr(0, text_.size() - ancestor.text_.size() - 1));
}

int Name::canonical_compare(const Name& other) const {
  // Fast path: equal names compare equal without walking labels. The cached
  // hash rejects almost all unequal pairs before the byte compare.
  if (hash_ == other.hash_ && text_ == other.text_) return 0;
  // RFC 4034 §6.1: compare label sequences right to left; each label
  // byte-wise (we are already lowercase); absent labels sort first.
  const std::size_t n1 = label_count();
  const std::size_t n2 = other.label_count();
  const std::size_t common = std::min(n1, n2);
  for (std::size_t i = 1; i <= common; ++i) {
    const std::string_view l1 = label(n1 - i);
    const std::string_view l2 = other.label(n2 - i);
    const int cmp = l1.compare(l2);
    if (cmp != 0) return cmp < 0 ? -1 : 1;
  }
  if (n1 != n2) return n1 < n2 ? -1 : 1;
  return 0;
}

std::string Name::to_text() const {
  if (is_root()) return ".";
  return text_ + ".";
}

Bytes Name::to_wire() const {
  Bytes out;
  out.reserve(wire_length());
  for (std::size_t i = 0; i < label_count(); ++i) {
    const std::string_view l = label(i);
    out.push_back(static_cast<std::uint8_t>(l.size()));
    out.insert(out.end(), l.begin(), l.end());
  }
  out.push_back(0);
  return out;
}

std::size_t Name::wire_length() const {
  // One length octet per label + label bytes + terminating root octet.
  return is_root() ? 1 : text_.size() + 2;
}

}  // namespace lookaside::dns
