#include "dns/name_arena.h"

#include <mutex>
#include <stdexcept>

namespace lookaside::dns {

namespace {

// Heap bytes one canonical Name pins beyond its own object: text storage
// past the SSO buffer plus the label-offset vector.
std::uint64_t name_heap_bytes(const Name& name) {
  const std::string& text = name.internal_text();
  std::uint64_t bytes = 0;
  if (text.capacity() > sizeof(std::string)) bytes += text.capacity();
  bytes += name.label_count() * sizeof(std::uint16_t);
  return bytes;
}

}  // namespace

NameId NameArena::intern(const Name& name) {
  if (names_.size() >= kInvalidNameId) {
    throw std::length_error("NameArena: id space exhausted");
  }
  NameId& slot = index_.get_or_insert(name);
  // get_or_insert value-initializes absent slots; id 0 is a real id, so an
  // absent slot is detected by comparing against the current size instead
  // of a sentinel: a fresh slot can only hold a stale zero.
  if (slot < names_.size() && names_[slot] == name) return slot;
  slot = static_cast<NameId>(names_.size());
  names_.push_back(name);
  heap_bytes_ += name_heap_bytes(names_.back());
  return slot;
}

NameId NameArena::find(const Name& name) const {
  const NameId* slot = index_.find(name);
  return slot == nullptr ? kInvalidNameId : *slot;
}

std::uint64_t NameArena::bytes() const {
  return static_cast<std::uint64_t>(names_.size()) * sizeof(Name) +
         heap_bytes_ +
         static_cast<std::uint64_t>(index_.slot_count()) *
             (sizeof(Name) + sizeof(NameId) + 1);
}

void NameArena::clear() {
  names_.clear();
  index_.clear();
  heap_bytes_ = 0;
}

NameId SharedNameArena::intern(const Name& name) {
  std::unique_lock lock(mutex_);
  return arena_.intern(name);
}

const Name& SharedNameArena::name(NameId id) const {
  // The lock covers only the deque indexing: push_back never moves existing
  // elements, and interned Names are immutable after the inserting thread
  // releases the exclusive lock, so the reference outlives the lock.
  std::shared_lock lock(mutex_);
  return arena_.name(id);
}

std::size_t SharedNameArena::size() const {
  std::shared_lock lock(mutex_);
  return arena_.size();
}

std::uint64_t SharedNameArena::bytes() const {
  std::shared_lock lock(mutex_);
  return arena_.bytes();
}

}  // namespace lookaside::dns
