#include "dns/rr_type.h"

namespace lookaside::dns {

std::string rr_type_name(RRType type) {
  switch (type) {
    case RRType::kA: return "A";
    case RRType::kNs: return "NS";
    case RRType::kCname: return "CNAME";
    case RRType::kSoa: return "SOA";
    case RRType::kPtr: return "PTR";
    case RRType::kMx: return "MX";
    case RRType::kTxt: return "TXT";
    case RRType::kAaaa: return "AAAA";
    case RRType::kOpt: return "OPT";
    case RRType::kDs: return "DS";
    case RRType::kRrsig: return "RRSIG";
    case RRType::kNsec: return "NSEC";
    case RRType::kDnskey: return "DNSKEY";
    case RRType::kNsec3: return "NSEC3";
    case RRType::kNsec3Param: return "NSEC3PARAM";
    case RRType::kDlv: return "DLV";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(type));
}

std::string rcode_name(RCode rcode) {
  switch (rcode) {
    case RCode::kNoError: return "NOERROR";
    case RCode::kFormErr: return "FORMERR";
    case RCode::kServFail: return "SERVFAIL";
    case RCode::kNxDomain: return "NXDOMAIN";
    case RCode::kNotImp: return "NOTIMP";
    case RCode::kRefused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<std::uint8_t>(rcode));
}

}  // namespace lookaside::dns
