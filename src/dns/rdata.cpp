#include "dns/rdata.h"

#include <algorithm>

#include "crypto/dnssec_algo.h"

namespace lookaside::dns {

namespace {

void encode_name(const Name& name, ByteWriter& writer) {
  writer.raw(name.to_wire());
}

/// Encodes the RFC 4034 §4.1.2 type bitmap for NSEC records.
void encode_type_bitmap(const std::vector<RRType>& types, ByteWriter& writer) {
  std::vector<std::uint16_t> values;
  values.reserve(types.size());
  for (RRType t : types) values.push_back(static_cast<std::uint16_t>(t));
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  std::size_t i = 0;
  while (i < values.size()) {
    const std::uint8_t window = static_cast<std::uint8_t>(values[i] >> 8);
    std::array<std::uint8_t, 32> bitmap{};
    std::size_t max_byte = 0;
    while (i < values.size() && (values[i] >> 8) == window) {
      const std::uint8_t low = static_cast<std::uint8_t>(values[i]);
      const std::size_t byte_index = low / 8;
      bitmap[byte_index] |= static_cast<std::uint8_t>(0x80 >> (low % 8));
      max_byte = std::max(max_byte, byte_index);
      ++i;
    }
    writer.u8(window);
    writer.u8(static_cast<std::uint8_t>(max_byte + 1));
    writer.raw(bitmap.data(), max_byte + 1);
  }
}

std::vector<RRType> decode_type_bitmap(ByteReader& reader, std::size_t end) {
  std::vector<RRType> types;
  while (reader.position() < end) {
    const std::uint8_t window = reader.u8();
    const std::uint8_t length = reader.u8();
    if (length == 0 || length > 32) throw WireFormatError("bad NSEC bitmap");
    const Bytes bitmap = reader.raw(length);
    for (std::size_t byte = 0; byte < bitmap.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        if (bitmap[byte] & (0x80 >> bit)) {
          types.push_back(static_cast<RRType>(
              (static_cast<std::uint16_t>(window) << 8) | (byte * 8 + bit)));
        }
      }
    }
  }
  if (reader.position() != end) throw WireFormatError("NSEC bitmap overrun");
  return types;
}

}  // namespace

std::string ARdata::to_text() const {
  return std::to_string(address >> 24) + "." +
         std::to_string((address >> 16) & 0xFF) + "." +
         std::to_string((address >> 8) & 0xFF) + "." +
         std::to_string(address & 0xFF);
}

std::string AaaaRdata::to_text() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < 16; i += 2) {
    if (i != 0) out.push_back(':');
    out.push_back(kHex[address[i] >> 4]);
    out.push_back(kHex[address[i] & 0xF]);
    out.push_back(kHex[address[i + 1] >> 4]);
    out.push_back(kHex[address[i + 1] & 0xF]);
  }
  return out;
}

std::uint16_t DnskeyRdata::key_tag() const {
  ByteWriter writer;
  writer.u16(flags);
  writer.u8(protocol);
  writer.u8(algorithm);
  writer.raw(public_key);
  return crypto::key_tag(writer.bytes());
}

RRType rdata_type(const Rdata& rdata) {
  return std::visit(
      [](const auto& value) -> RRType {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) return RRType::kA;
        else if constexpr (std::is_same_v<T, AaaaRdata>) return RRType::kAaaa;
        else if constexpr (std::is_same_v<T, NsRdata>) return RRType::kNs;
        else if constexpr (std::is_same_v<T, CnameRdata>) return RRType::kCname;
        else if constexpr (std::is_same_v<T, PtrRdata>) return RRType::kPtr;
        else if constexpr (std::is_same_v<T, MxRdata>) return RRType::kMx;
        else if constexpr (std::is_same_v<T, SoaRdata>) return RRType::kSoa;
        else if constexpr (std::is_same_v<T, TxtRdata>) return RRType::kTxt;
        else if constexpr (std::is_same_v<T, DnskeyRdata>) return RRType::kDnskey;
        else if constexpr (std::is_same_v<T, DsRdata>) return RRType::kDs;
        else if constexpr (std::is_same_v<T, RrsigRdata>) return RRType::kRrsig;
        else if constexpr (std::is_same_v<T, NsecRdata>) return RRType::kNsec;
        else if constexpr (std::is_same_v<T, Nsec3Rdata>) return RRType::kNsec3;
        else if constexpr (std::is_same_v<T, Nsec3ParamRdata>)
          return RRType::kNsec3Param;
        else return RRType::kOpt;
      },
      rdata);
}

void encode_rdata(const Rdata& rdata, ByteWriter& writer) {
  std::visit(
      [&writer](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          writer.u32(value.address);
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          writer.raw(value.address.data(), value.address.size());
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          encode_name(value.nameserver, writer);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          encode_name(value.target, writer);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          encode_name(value.target, writer);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          writer.u16(value.preference);
          encode_name(value.exchanger, writer);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          encode_name(value.primary_ns, writer);
          encode_name(value.responsible, writer);
          writer.u32(value.serial);
          writer.u32(value.refresh);
          writer.u32(value.retry);
          writer.u32(value.expire);
          writer.u32(value.minimum_ttl);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const std::string& s : value.strings) {
            if (s.size() > 255) throw WireFormatError("TXT string too long");
            writer.u8(static_cast<std::uint8_t>(s.size()));
            writer.raw(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size());
          }
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          writer.u16(value.flags);
          writer.u8(value.protocol);
          writer.u8(value.algorithm);
          writer.raw(value.public_key);
        } else if constexpr (std::is_same_v<T, DsRdata>) {
          writer.u16(value.key_tag);
          writer.u8(value.algorithm);
          writer.u8(value.digest_type);
          writer.raw(value.digest);
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          writer.u16(static_cast<std::uint16_t>(value.type_covered));
          writer.u8(value.algorithm);
          writer.u8(value.labels);
          writer.u32(value.original_ttl);
          writer.u32(value.expiration);
          writer.u32(value.inception);
          writer.u16(value.key_tag);
          encode_name(value.signer, writer);
          writer.raw(value.signature);
        } else if constexpr (std::is_same_v<T, NsecRdata>) {
          encode_name(value.next, writer);
          encode_type_bitmap(value.types, writer);
        } else if constexpr (std::is_same_v<T, Nsec3Rdata>) {
          if (value.salt.size() > 255)
            throw WireFormatError("NSEC3 salt too long");
          if (value.next_hashed.size() > 255)
            throw WireFormatError("NSEC3 hash too long");
          writer.u8(value.hash_algorithm);
          writer.u8(value.flags);
          writer.u16(value.iterations);
          writer.u8(static_cast<std::uint8_t>(value.salt.size()));
          writer.raw(value.salt);
          writer.u8(static_cast<std::uint8_t>(value.next_hashed.size()));
          writer.raw(value.next_hashed);
          encode_type_bitmap(value.types, writer);
        } else if constexpr (std::is_same_v<T, Nsec3ParamRdata>) {
          if (value.salt.size() > 255)
            throw WireFormatError("NSEC3PARAM salt too long");
          writer.u8(value.hash_algorithm);
          writer.u8(value.flags);
          writer.u16(value.iterations);
          writer.u8(static_cast<std::uint8_t>(value.salt.size()));
          writer.raw(value.salt);
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          // OPT carries its fields in CLASS/TTL; RDATA itself is empty here.
        }
      },
      rdata);
}

std::size_t rdata_wire_length(const Rdata& rdata) {
  ByteWriter writer;
  encode_rdata(rdata, writer);
  return writer.size();
}

Name decode_uncompressed_name(ByteReader& reader) {
  std::string text;
  for (;;) {
    const std::uint8_t len = reader.u8();
    if (len == 0) break;
    if (len > 63) throw WireFormatError("compressed label in RDATA name");
    const Bytes label = reader.raw(len);
    if (!text.empty()) text.push_back('.');
    text.append(label.begin(), label.end());
  }
  return Name::parse(text);
}

Rdata decode_rdata(RRType type, std::size_t rdlength, ByteReader& reader) {
  const std::size_t end = reader.position() + rdlength;
  auto check_consumed = [&](Rdata value) {
    if (reader.position() != end) throw WireFormatError("RDATA length mismatch");
    return value;
  };
  switch (type) {
    case RRType::kA: {
      if (rdlength != 4) throw WireFormatError("A RDATA must be 4 octets");
      return check_consumed(ARdata{reader.u32()});
    }
    case RRType::kAaaa: {
      if (rdlength != 16) throw WireFormatError("AAAA RDATA must be 16 octets");
      const Bytes raw = reader.raw(16);
      AaaaRdata out;
      std::copy(raw.begin(), raw.end(), out.address.begin());
      return check_consumed(out);
    }
    case RRType::kNs:
      return check_consumed(NsRdata{decode_uncompressed_name(reader)});
    case RRType::kCname:
      return check_consumed(CnameRdata{decode_uncompressed_name(reader)});
    case RRType::kPtr:
      return check_consumed(PtrRdata{decode_uncompressed_name(reader)});
    case RRType::kMx: {
      MxRdata out;
      out.preference = reader.u16();
      out.exchanger = decode_uncompressed_name(reader);
      return check_consumed(out);
    }
    case RRType::kSoa: {
      SoaRdata out;
      out.primary_ns = decode_uncompressed_name(reader);
      out.responsible = decode_uncompressed_name(reader);
      out.serial = reader.u32();
      out.refresh = reader.u32();
      out.retry = reader.u32();
      out.expire = reader.u32();
      out.minimum_ttl = reader.u32();
      return check_consumed(out);
    }
    case RRType::kTxt: {
      TxtRdata out;
      while (reader.position() < end) {
        const std::uint8_t len = reader.u8();
        const Bytes raw = reader.raw(len);
        out.strings.emplace_back(raw.begin(), raw.end());
      }
      return check_consumed(out);
    }
    case RRType::kDnskey: {
      DnskeyRdata out;
      out.flags = reader.u16();
      out.protocol = reader.u8();
      out.algorithm = reader.u8();
      if (end < reader.position()) throw WireFormatError("bad DNSKEY length");
      out.public_key = reader.raw(end - reader.position());
      return check_consumed(out);
    }
    case RRType::kDs:
    case RRType::kDlv: {
      DsRdata out;
      out.key_tag = reader.u16();
      out.algorithm = reader.u8();
      out.digest_type = reader.u8();
      if (end < reader.position()) throw WireFormatError("bad DS length");
      out.digest = reader.raw(end - reader.position());
      return check_consumed(out);
    }
    case RRType::kRrsig: {
      RrsigRdata out;
      out.type_covered = static_cast<RRType>(reader.u16());
      out.algorithm = reader.u8();
      out.labels = reader.u8();
      out.original_ttl = reader.u32();
      out.expiration = reader.u32();
      out.inception = reader.u32();
      out.key_tag = reader.u16();
      out.signer = decode_uncompressed_name(reader);
      if (end < reader.position()) throw WireFormatError("bad RRSIG length");
      out.signature = reader.raw(end - reader.position());
      return check_consumed(out);
    }
    case RRType::kNsec: {
      NsecRdata out;
      out.next = decode_uncompressed_name(reader);
      out.types = decode_type_bitmap(reader, end);
      return check_consumed(out);
    }
    case RRType::kNsec3: {
      Nsec3Rdata out;
      out.hash_algorithm = reader.u8();
      out.flags = reader.u8();
      out.iterations = reader.u16();
      out.salt = reader.raw(reader.u8());
      out.next_hashed = reader.raw(reader.u8());
      out.types = decode_type_bitmap(reader, end);
      return check_consumed(out);
    }
    case RRType::kNsec3Param: {
      Nsec3ParamRdata out;
      out.hash_algorithm = reader.u8();
      out.flags = reader.u8();
      out.iterations = reader.u16();
      out.salt = reader.raw(reader.u8());
      return check_consumed(out);
    }
    case RRType::kOpt: {
      // Option TLVs are skipped; the codec reconstructs CLASS/TTL fields.
      (void)reader.raw(rdlength);
      return check_consumed(OptRdata{});
    }
  }
  throw WireFormatError("unsupported RR type " +
                        std::to_string(static_cast<std::uint16_t>(type)));
}

}  // namespace lookaside::dns
