// DNS messages: header flags (including DO, AD, CD and the spare Z bit the
// paper's remedy uses), question and record sections, and EDNS0 metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/record.h"
#include "dns/rr_type.h"

namespace lookaside::dns {

/// Parsed DNS header. The Z bit is RFC 5395's reserved bit, which the paper
/// proposes repurposing to signal "a DLV record exists for this name".
struct Header {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  bool z = false;   // spare bit -> the paper's DLV-existence signal
  bool ad = false;  // authenticated data (DNSSEC validation result)
  bool cd = false;  // checking disabled
  RCode rcode = RCode::kNoError;

  friend bool operator==(const Header&, const Header&) = default;
};

/// One question-section entry.
struct Question {
  Name name;
  RRType type = RRType::kA;
  RRClass rr_class = RRClass::kIn;

  friend bool operator==(const Question&, const Question&) = default;
};

/// A full DNS message. EDNS0 is modeled as the three fields below and
/// rendered as an OPT record in the additional section on the wire.
struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  bool edns = false;
  std::uint16_t udp_payload_size = 4096;
  bool dnssec_ok = false;  // the DO bit

  /// Builds a recursive query for (name, type) with DO set per
  /// `dnssec_ok` — the shape a stub or recursive resolver sends.
  static Message make_query(std::uint16_t id, Name name, RRType type,
                            bool recursion_desired, bool dnssec_ok);

  /// Starts a response to `query`: copies id/question/rd, sets qr.
  static Message make_response(const Message& query);

  [[nodiscard]] const Question& question() const { return questions.front(); }

  /// First answer record of `type`, if any.
  [[nodiscard]] const ResourceRecord* first_answer(RRType type) const;

  /// Multi-line presentation for logs and examples.
  [[nodiscard]] std::string to_text() const;

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace lookaside::dns
