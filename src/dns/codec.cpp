#include "dns/codec.h"

#include <string>
#include <unordered_map>

namespace lookaside::dns {

namespace {

constexpr std::uint16_t kPointerMask = 0xC000;
constexpr std::size_t kMaxPointerOffset = 0x3FFF;
constexpr std::size_t kMaxPointerJumps = 64;  // loop guard when decoding

/// Writes `name` with compression against previously written names.
/// `offsets` maps a name's internal text to the packet offset where that
/// suffix was first written.
void encode_compressed_name(
    const Name& name, ByteWriter& writer,
    std::unordered_map<std::string, std::size_t>& offsets) {
  Name current = name;
  for (;;) {
    if (current.is_root()) {
      writer.u8(0);
      return;
    }
    const auto it = offsets.find(current.internal_text());
    if (it != offsets.end()) {
      writer.u16(static_cast<std::uint16_t>(kPointerMask | it->second));
      return;
    }
    if (writer.size() <= kMaxPointerOffset) {
      offsets.emplace(current.internal_text(), writer.size());
    }
    const std::string_view label = current.label(0);
    writer.u8(static_cast<std::uint8_t>(label.size()));
    writer.raw(reinterpret_cast<const std::uint8_t*>(label.data()),
               label.size());
    current = current.parent();
  }
}

void encode_record(const ResourceRecord& record, ByteWriter& writer,
                   std::unordered_map<std::string, std::size_t>& offsets) {
  encode_compressed_name(record.name, writer, offsets);
  writer.u16(static_cast<std::uint16_t>(record.type));
  if (const auto* opt = std::get_if<OptRdata>(&record.rdata)) {
    // OPT smuggles its fields into CLASS and TTL (RFC 6891).
    writer.u16(opt->udp_payload_size);
    writer.u32(opt->dnssec_ok ? 0x00008000u : 0u);
    writer.u16(0);  // empty RDATA
    return;
  }
  writer.u16(static_cast<std::uint16_t>(record.rr_class));
  writer.u32(record.ttl);
  const std::size_t rdlength_offset = writer.size();
  writer.u16(0);  // patched below
  encode_rdata(record.rdata, writer);
  writer.patch_u16(rdlength_offset, static_cast<std::uint16_t>(
                                        writer.size() - rdlength_offset - 2));
}

Name decode_compressed_name(ByteReader& reader) {
  std::string text;
  std::size_t jumps = 0;
  std::size_t return_position = 0;
  bool jumped = false;
  for (;;) {
    const std::uint8_t len = reader.u8();
    if (len == 0) break;
    if ((len & 0xC0) == 0xC0) {
      if (++jumps > kMaxPointerJumps) {
        throw WireFormatError("compression pointer loop");
      }
      const std::size_t offset =
          (static_cast<std::size_t>(len & 0x3F) << 8) | reader.u8();
      if (!jumped) {
        return_position = reader.position();
        jumped = true;
      }
      if (offset >= reader.position()) {
        throw WireFormatError("forward compression pointer");
      }
      reader.seek(offset);
      continue;
    }
    if (len > 63) throw WireFormatError("bad label length");
    const Bytes label = reader.raw(len);
    if (!text.empty()) text.push_back('.');
    text.append(label.begin(), label.end());
  }
  if (jumped) reader.seek(return_position);
  return Name::parse(text);
}

ResourceRecord decode_record(ByteReader& reader, Message& message) {
  ResourceRecord record;
  record.name = decode_compressed_name(reader);
  record.type = static_cast<RRType>(reader.u16());
  if (record.type == RRType::kOpt) {
    OptRdata opt;
    opt.udp_payload_size = reader.u16();
    const std::uint32_t ttl = reader.u32();
    opt.dnssec_ok = (ttl & 0x8000u) != 0;
    const std::uint16_t rdlength = reader.u16();
    (void)reader.raw(rdlength);
    record.rr_class = RRClass::kIn;
    record.ttl = ttl;
    record.rdata = opt;
    message.edns = true;
    message.udp_payload_size = opt.udp_payload_size;
    message.dnssec_ok = opt.dnssec_ok;
    return record;
  }
  record.rr_class = static_cast<RRClass>(reader.u16());
  record.ttl = reader.u32();
  const std::uint16_t rdlength = reader.u16();
  record.rdata = decode_rdata(record.type, rdlength, reader);
  return record;
}

}  // namespace

Bytes encode_message(const Message& message) {
  ByteWriter writer;
  std::unordered_map<std::string, std::size_t> offsets;

  writer.u16(message.header.id);
  std::uint16_t flags = 0;
  if (message.header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((message.header.opcode & 0x0F) << 11);
  if (message.header.aa) flags |= 0x0400;
  if (message.header.tc) flags |= 0x0200;
  if (message.header.rd) flags |= 0x0100;
  if (message.header.ra) flags |= 0x0080;
  if (message.header.z) flags |= 0x0040;
  if (message.header.ad) flags |= 0x0020;
  if (message.header.cd) flags |= 0x0010;
  flags |= static_cast<std::uint16_t>(message.header.rcode) & 0x0F;
  writer.u16(flags);

  writer.u16(static_cast<std::uint16_t>(message.questions.size()));
  writer.u16(static_cast<std::uint16_t>(message.answers.size()));
  writer.u16(static_cast<std::uint16_t>(message.authorities.size()));
  const std::size_t additional_count =
      message.additionals.size() + (message.edns ? 1 : 0);
  writer.u16(static_cast<std::uint16_t>(additional_count));

  for (const Question& question : message.questions) {
    encode_compressed_name(question.name, writer, offsets);
    writer.u16(static_cast<std::uint16_t>(question.type));
    writer.u16(static_cast<std::uint16_t>(question.rr_class));
  }
  for (const ResourceRecord& record : message.answers) {
    encode_record(record, writer, offsets);
  }
  for (const ResourceRecord& record : message.authorities) {
    encode_record(record, writer, offsets);
  }
  for (const ResourceRecord& record : message.additionals) {
    encode_record(record, writer, offsets);
  }
  if (message.edns) {
    ResourceRecord opt;
    opt.name = Name::root();
    opt.type = RRType::kOpt;
    opt.rdata = OptRdata{message.udp_payload_size, message.dnssec_ok};
    encode_record(opt, writer, offsets);
  }
  return writer.take();
}

Message decode_message(const Bytes& wire) {
  ByteReader reader(wire);
  Message message;

  message.header.id = reader.u16();
  const std::uint16_t flags = reader.u16();
  message.header.qr = flags & 0x8000;
  message.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  message.header.aa = flags & 0x0400;
  message.header.tc = flags & 0x0200;
  message.header.rd = flags & 0x0100;
  message.header.ra = flags & 0x0080;
  message.header.z = flags & 0x0040;
  message.header.ad = flags & 0x0020;
  message.header.cd = flags & 0x0010;
  message.header.rcode = static_cast<RCode>(flags & 0x0F);

  const std::uint16_t qdcount = reader.u16();
  const std::uint16_t ancount = reader.u16();
  const std::uint16_t nscount = reader.u16();
  const std::uint16_t arcount = reader.u16();

  // Real DNS messages carry zero or one question. A forged QDCOUNT above
  // that would make the loop below consume record bytes as phantom
  // questions — reading past the actual question section — so reject it
  // before touching the sections (the serving frontend decodes untrusted
  // wire bytes on every request).
  if (qdcount > 1) {
    throw WireFormatError("QDCOUNT disagrees with question section");
  }

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    Question question;
    question.name = decode_compressed_name(reader);
    question.type = static_cast<RRType>(reader.u16());
    question.rr_class = static_cast<RRClass>(reader.u16());
    message.questions.push_back(std::move(question));
  }
  for (std::uint16_t i = 0; i < ancount; ++i) {
    message.answers.push_back(decode_record(reader, message));
  }
  for (std::uint16_t i = 0; i < nscount; ++i) {
    message.authorities.push_back(decode_record(reader, message));
  }
  for (std::uint16_t i = 0; i < arcount; ++i) {
    ResourceRecord record = decode_record(reader, message);
    if (record.type != RRType::kOpt) {
      message.additionals.push_back(std::move(record));
    }
  }
  if (!reader.done()) throw WireFormatError("trailing bytes after message");
  return message;
}

std::size_t wire_size(const Message& message) {
  return encode_message(message).size();
}

}  // namespace lookaside::dns
