// Name interning arena (DESIGN.md §4k): one canonical lowercase byte string
// per distinct name, addressed by a stable 32-bit id.
//
// The resolver cache, the shared proof store, and the signed zone's
// signature table all hold names that repeat heavily — an NSEC chain stores
// every owner a second time as its predecessor's "next" pointer, and a
// signature cache keys thousands of RRsets under a few hot owners. Interning
// collapses each distinct name to a single canonical Name plus a NameId
// where it is referenced, so the duplicate copies become pointer-width and
// compares against an interned name reuse the memoized canonical hash.
//
// Id contract: ids are dense indices, assigned in intern order, and remain
// valid until clear() — the arena never evicts or reorders (interned names
// for cache entries outlive the entries; the arena's footprint is bounded
// by the distinct-name working set, which the byte-capped caches already
// bound). bytes() reports the arena's true footprint for the
// truth-in-advertising accounting tests.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>

#include "dns/name.h"
#include "dns/name_map.h"

namespace lookaside::dns {

/// A 32-bit handle into a NameArena / SharedNameArena.
using NameId = std::uint32_t;
inline constexpr NameId kInvalidNameId = 0xFFFFFFFFu;

/// Single-threaded interning arena. Use SharedNameArena for cross-shard
/// structures.
class NameArena {
 public:
  /// Id for `name`, interning it on first sight. Idempotent: the same
  /// canonical name always returns the same id.
  NameId intern(const Name& name);

  /// The canonical Name behind `id`. The reference is stable until clear().
  [[nodiscard]] const Name& name(NameId id) const { return names_[id]; }

  /// Id for `name` if already interned, else kInvalidNameId. Never inserts.
  [[nodiscard]] NameId find(const Name& name) const;

  /// Distinct names interned.
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  /// Approximate true footprint in bytes: canonical Name objects (including
  /// heap text and label offsets) plus the id index. This is the number the
  /// malloc-shim accounting test compares against.
  [[nodiscard]] std::uint64_t bytes() const;

  /// Drops every interned name. All outstanding ids become invalid.
  void clear();

 private:
  std::deque<Name> names_;      // id -> canonical name; never reordered
  NameHashMap<NameId> index_;   // canonical name -> id
  std::uint64_t heap_bytes_ = 0;
};

/// Mutex-guarded arena for structures shared across resolver shards (the
/// striped SharedProofStore). intern() takes the exclusive lock; name()
/// takes the shared lock only for the deque indexing — the returned
/// reference stays valid for the arena's lifetime because interned names
/// are never moved or dropped (there is deliberately no clear()).
class SharedNameArena {
 public:
  NameId intern(const Name& name);
  [[nodiscard]] const Name& name(NameId id) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t bytes() const;

 private:
  mutable std::shared_mutex mutex_;
  NameArena arena_;
};

}  // namespace lookaside::dns
