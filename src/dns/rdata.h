// RDATA payloads for every record type the simulator speaks.
//
// Each payload is a small value type with encode/decode to RFC wire format;
// `Rdata` is the closed variant over them. Names embedded in RDATA are never
// compressed (matching RFC 3597 rules for modern types).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/rr_type.h"
#include "dns/wire_io.h"

namespace lookaside::dns {

/// IPv4 address record.
struct ARdata {
  std::uint32_t address = 0;  // host byte order

  [[nodiscard]] std::string to_text() const;
  friend bool operator==(const ARdata&, const ARdata&) = default;
};

/// IPv6 address record.
struct AaaaRdata {
  std::array<std::uint8_t, 16> address{};

  [[nodiscard]] std::string to_text() const;
  friend bool operator==(const AaaaRdata&, const AaaaRdata&) = default;
};

/// Delegation: authoritative name server for a zone.
struct NsRdata {
  Name nameserver;

  friend bool operator==(const NsRdata&, const NsRdata&) = default;
};

/// Alias record.
struct CnameRdata {
  Name target;

  friend bool operator==(const CnameRdata&, const CnameRdata&) = default;
};

/// Reverse-lookup pointer.
struct PtrRdata {
  Name target;

  friend bool operator==(const PtrRdata&, const PtrRdata&) = default;
};

/// Mail exchanger.
struct MxRdata {
  std::uint16_t preference = 0;
  Name exchanger;

  friend bool operator==(const MxRdata&, const MxRdata&) = default;
};

/// Start of authority.
struct SoaRdata {
  Name primary_ns;
  Name responsible;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum_ttl = 0;  // negative-caching TTL (RFC 2308)

  friend bool operator==(const SoaRdata&, const SoaRdata&) = default;
};

/// Free-form text; carries the paper's "dlv=1"/"dlv=0" signaling remedy.
struct TxtRdata {
  std::vector<std::string> strings;

  friend bool operator==(const TxtRdata&, const TxtRdata&) = default;
};

/// DNSSEC public key (RFC 4034 §2).
struct DnskeyRdata {
  static constexpr std::uint16_t kFlagZoneKey = 0x0100;  // ZSK and KSK both
  static constexpr std::uint16_t kFlagSep = 0x0001;      // KSK marker

  std::uint16_t flags = kFlagZoneKey;
  std::uint8_t protocol = 3;  // always 3 per RFC 4034
  std::uint8_t algorithm = 8; // RSA/SHA-256
  Bytes public_key;           // RFC 3110 exponent|modulus form

  [[nodiscard]] bool is_ksk() const { return flags & kFlagSep; }
  /// RFC 4034 Appendix B key tag over this RDATA's wire image.
  [[nodiscard]] std::uint16_t key_tag() const;

  friend bool operator==(const DnskeyRdata&, const DnskeyRdata&) = default;
};

/// Delegation signer (RFC 4034 §5); also the RDATA of DLV records
/// (RFC 4431: "DLV uses the same wire format as DS").
struct DsRdata {
  std::uint16_t key_tag = 0;
  std::uint8_t algorithm = 8;
  std::uint8_t digest_type = 2;  // SHA-256
  Bytes digest;

  friend bool operator==(const DsRdata&, const DsRdata&) = default;
};

/// Signature over an RRset (RFC 4034 §3).
struct RrsigRdata {
  RRType type_covered = RRType::kA;
  std::uint8_t algorithm = 8;
  std::uint8_t labels = 0;
  std::uint32_t original_ttl = 0;
  std::uint32_t expiration = 0;  // absolute sim-seconds
  std::uint32_t inception = 0;
  std::uint16_t key_tag = 0;
  Name signer;
  Bytes signature;

  friend bool operator==(const RrsigRdata&, const RrsigRdata&) = default;
};

/// Authenticated denial of existence (RFC 4034 §4). The `next` name closes
/// the zone's canonical chain; `types` lists types present at the owner.
struct NsecRdata {
  Name next;
  std::vector<RRType> types;

  friend bool operator==(const NsecRdata&, const NsecRdata&) = default;
};

/// Hashed authenticated denial of existence (RFC 5155 §3). The owner name of
/// an NSEC3 record is the base32hex hash of the original owner; `next_hashed`
/// closes the hashed chain and `types` lists types present at the original
/// owner. Hash algorithm 1 is SHA-1 — the only value IANA ever registered.
struct Nsec3Rdata {
  std::uint8_t hash_algorithm = 1;  // SHA-1
  std::uint8_t flags = 0;           // opt-out unsupported in the simulator
  std::uint16_t iterations = 0;
  Bytes salt;
  Bytes next_hashed;  // raw 20-byte digest, not base32hex
  std::vector<RRType> types;

  friend bool operator==(const Nsec3Rdata&, const Nsec3Rdata&) = default;
};

/// NSEC3 parameters advertised at the zone apex (RFC 5155 §4); validators use
/// it to learn the salt/iteration knobs before hashing query names.
struct Nsec3ParamRdata {
  std::uint8_t hash_algorithm = 1;
  std::uint8_t flags = 0;
  std::uint16_t iterations = 0;
  Bytes salt;

  friend bool operator==(const Nsec3ParamRdata&, const Nsec3ParamRdata&) =
      default;
};

/// EDNS0 OPT pseudo-record payload; we only model the DO bit and UDP size,
/// which is what the byte accounting needs.
struct OptRdata {
  std::uint16_t udp_payload_size = 4096;
  bool dnssec_ok = false;

  friend bool operator==(const OptRdata&, const OptRdata&) = default;
};

/// Closed sum of every supported RDATA.
using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           MxRdata, SoaRdata, TxtRdata, DnskeyRdata, DsRdata,
                           RrsigRdata, NsecRdata, Nsec3Rdata, Nsec3ParamRdata,
                           OptRdata>;

/// The RR type a given payload belongs with. DS-shaped payloads default to
/// kDs; records module overrides to kDlv where needed.
[[nodiscard]] RRType rdata_type(const Rdata& rdata);

/// Encodes `rdata` (without the RDLENGTH prefix) to `writer`.
void encode_rdata(const Rdata& rdata, ByteWriter& writer);

/// Decodes RDATA of `type` from exactly `rdlength` bytes of `reader`.
/// Throws WireFormatError on malformed input.
[[nodiscard]] Rdata decode_rdata(RRType type, std::size_t rdlength,
                                 ByteReader& reader);

/// Encoded size of `rdata` in octets.
[[nodiscard]] std::size_t rdata_wire_length(const Rdata& rdata);

/// Reads an uncompressed name from `reader` (helper shared with the codec).
[[nodiscard]] Name decode_uncompressed_name(ByteReader& reader);

}  // namespace lookaside::dns
