// Low-level big-endian wire readers/writers shared by the codecs.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "crypto/bytes.h"

namespace lookaside::dns {

using crypto::Bytes;

/// Thrown when decoding runs off the end of a packet or meets bad structure.
class WireFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends big-endian integers and raw bytes to a growing buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(value); }
  void u16(std::uint16_t value) {
    out_.push_back(static_cast<std::uint8_t>(value >> 8));
    out_.push_back(static_cast<std::uint8_t>(value));
  }
  void u32(std::uint32_t value) {
    u16(static_cast<std::uint16_t>(value >> 16));
    u16(static_cast<std::uint16_t>(value));
  }
  void raw(const Bytes& data) { out_.insert(out_.end(), data.begin(), data.end()); }
  void raw(const std::uint8_t* data, std::size_t len) {
    out_.insert(out_.end(), data, data + len);
  }

  /// Overwrites a previously written 16-bit field at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t value) {
    out_.at(offset) = static_cast<std::uint8_t>(value >> 8);
    out_.at(offset + 1) = static_cast<std::uint8_t>(value);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] const Bytes& bytes() const { return out_; }
  [[nodiscard]] Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Reads big-endian integers and raw bytes; throws WireFormatError on
/// truncation.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                            data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  [[nodiscard]] Bytes raw(std::size_t len) {
    require(len);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  void seek(std::size_t pos) {
    if (pos > data_.size()) throw WireFormatError("seek past end");
    pos_ = pos;
  }

  [[nodiscard]] const Bytes& data() const { return data_; }

 private:
  void require(std::size_t len) const {
    if (pos_ + len > data_.size()) throw WireFormatError("truncated packet");
  }

  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace lookaside::dns
