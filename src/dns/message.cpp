#include "dns/message.h"

namespace lookaside::dns {

Message Message::make_query(std::uint16_t id, Name name, RRType type,
                            bool recursion_desired, bool dnssec_ok) {
  Message out;
  out.header.id = id;
  out.header.rd = recursion_desired;
  out.questions.push_back(Question{std::move(name), type, RRClass::kIn});
  out.edns = dnssec_ok;  // DO requires EDNS0
  out.dnssec_ok = dnssec_ok;
  return out;
}

Message Message::make_response(const Message& query) {
  Message out;
  out.header.id = query.header.id;
  out.header.qr = true;
  out.header.rd = query.header.rd;
  out.header.cd = query.header.cd;
  out.questions = query.questions;
  out.edns = query.edns;
  out.dnssec_ok = query.dnssec_ok;
  return out;
}

const ResourceRecord* Message::first_answer(RRType type) const {
  for (const ResourceRecord& record : answers) {
    if (record.type == type) return &record;
  }
  return nullptr;
}

std::string Message::to_text() const {
  std::string out;
  out += ";; " + std::string(header.qr ? "response" : "query") +
         " id=" + std::to_string(header.id) + " " + rcode_name(header.rcode);
  if (header.aa) out += " aa";
  if (header.tc) out += " tc";
  if (header.rd) out += " rd";
  if (header.ra) out += " ra";
  if (header.ad) out += " ad";
  if (header.cd) out += " cd";
  if (header.z) out += " Z";
  if (edns) out += dnssec_ok ? " do" : " edns";
  out += "\n";
  for (const Question& q : questions) {
    out += ";; question: " + q.name.to_text() + " " + rr_type_name(q.type) +
           "\n";
  }
  auto section = [&out](const char* label,
                        const std::vector<ResourceRecord>& records) {
    for (const ResourceRecord& record : records) {
      out += std::string(label) + ": " + record.to_text() + "\n";
    }
  };
  section(";; answer", answers);
  section(";; authority", authorities);
  section(";; additional", additionals);
  return out;
}

}  // namespace lookaside::dns
