#include "obs/trace_sink.h"

#include <algorithm>
#include <ostream>

#include "metrics/table.h"

namespace lookaside::obs {

// ---------------------------------------------------------------------------
// RingBufferSink
// ---------------------------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void RingBufferSink::on_event(const Event& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity_] = event;
  }
  ++total_;
}

std::vector<Event> RingBufferSink::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    const std::size_t head = total_ % capacity_;  // oldest element
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

std::size_t RingBufferSink::size() const { return ring_.size(); }

std::uint64_t RingBufferSink::dropped() const {
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void RingBufferSink::clear() {
  ring_.clear();
  total_ = 0;
}

// ---------------------------------------------------------------------------
// JsonlFileSink
// ---------------------------------------------------------------------------

JsonlFileSink::JsonlFileSink(const std::string& path) : out_(path) {}

void JsonlFileSink::on_event(const Event& event) {
  if (!out_.good()) {
    ++dropped_;
    return;
  }
  out_ << to_jsonl(event) << '\n';
  ++written_;
}

void JsonlFileSink::flush() { out_.flush(); }

// ---------------------------------------------------------------------------
// SummarySink
// ---------------------------------------------------------------------------

void SummarySink::on_event(const Event& event) {
  ++kind_counts_[static_cast<std::size_t>(event.kind)];
  switch (event.kind) {
    case EventKind::kUpstreamQuery: {
      ServerStats& stats = per_server_[server_class(event.server)];
      ++stats.queries;
      stats.query_bytes += event.bytes;
      break;
    }
    case EventKind::kResponse: {
      const std::string cls = server_class(event.server);
      if (cls == "recursive") break;  // stub-facing; not an upstream hop
      ServerStats& stats = per_server_[cls];
      stats.response_bytes += event.bytes;
      stats.rtt_ms.add(static_cast<double>(event.latency_us) / 1000.0);
      break;
    }
    case EventKind::kValidation:
      ++validations_[event.detail];
      break;
    default:
      break;
  }
}

std::uint64_t SummarySink::count(EventKind kind) const {
  return kind_counts_[static_cast<std::size_t>(kind)];
}

void SummarySink::print(std::ostream& out) const {
  out << "\nPer-server traffic (from trace events):\n";
  metrics::Table servers(
      {"Server", "Queries", "Query bytes", "Response bytes", "Mean RTT (ms)"});
  for (const auto& [cls, stats] : per_server_) {
    servers.row()
        .cell(cls)
        .cell(stats.queries)
        .cell(stats.query_bytes)
        .cell(stats.response_bytes)
        .cell(stats.rtt_ms.mean(), 1);
  }
  servers.print(out);

  out << "\nEvent kinds:\n";
  metrics::Table kinds({"Kind", "Count"});
  for (int i = 0; i < kEventKindCount; ++i) {
    if (kind_counts_[static_cast<std::size_t>(i)] == 0) continue;
    kinds.row()
        .cell(event_kind_name(static_cast<EventKind>(i)))
        .cell(kind_counts_[static_cast<std::size_t>(i)]);
  }
  kinds.print(out);

  if (!validations_.empty()) {
    out << "\nValidation outcomes:\n";
    metrics::Table statuses({"Status", "Resolutions"});
    for (const auto& [status, count] : validations_) {
      statuses.row().cell(status).cell(count);
    }
    statuses.print(out);
  }
}

}  // namespace lookaside::obs
