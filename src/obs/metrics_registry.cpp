#include "obs/metrics_registry.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "metrics/csv.h"
#include "obs/event.h"  // json_escape

namespace lookaside::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Merges an extra label into an already-rendered label string
/// ("" + quantile -> {quantile="0.5"}; {a="b"} -> {a="b",quantile="0.5"}).
std::string with_extra_label(const std::string& rendered,
                             const std::string& key,
                             const std::string& value) {
  const std::string extra = key + "=\"" + json_escape(value) + "\"";
  if (rendered.empty()) return "{" + extra + "}";
  std::string out = rendered;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

std::string format_double(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::label_string(const Labels& labels) {
  if (labels.empty()) return "";
  const Labels sorted = sorted_labels(labels);
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ",";
    out += sorted[i].first + "=\"" + json_escape(sorted[i].second) + "\"";
  }
  out += "}";
  return out;
}

void MetricsRegistry::add(std::string_view name, const Labels& labels,
                          std::uint64_t delta) {
  const std::string key = label_string(labels);
  auto& series = counters_[std::string(name)][key];
  if (series.value == 0 && series.labels.empty()) {
    series.labels = sorted_labels(labels);
  }
  series.value += delta;
}

void MetricsRegistry::observe(std::string_view name, const Labels& labels,
                              double sample) {
  const std::string key = label_string(labels);
  auto& series = histograms_[std::string(name)][key];
  if (series.histogram.count() == 0 && series.labels.empty()) {
    series.labels = sorted_labels(labels);
  }
  series.histogram.add(sample);
}

void MetricsRegistry::set_gauge(std::string_view name, const Labels& labels,
                                std::uint64_t value) {
  const std::string key = label_string(labels);
  auto& series = gauges_[std::string(name)][key];
  if (series.labels.empty()) series.labels = sorted_labels(labels);
  if (value > series.value) series.value = value;
}

std::uint64_t MetricsRegistry::gauge(std::string_view name,
                                     const Labels& labels) const {
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return 0;
  const auto series = it->second.find(label_string(labels));
  return series == it->second.end() ? 0 : series->second.value;
}

std::uint64_t MetricsRegistry::value(std::string_view name,
                                     const Labels& labels) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  const auto series = it->second.find(label_string(labels));
  return series == it->second.end() ? 0 : series->second.value;
}

std::uint64_t MetricsRegistry::total(std::string_view name) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  std::uint64_t sum = 0;
  for (const auto& [key, series] : it->second) sum += series.value;
  return sum;
}

const metrics::Histogram* MetricsRegistry::histogram(
    std::string_view name, const Labels& labels) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return nullptr;
  const auto series = it->second.find(label_string(labels));
  return series == it->second.end() ? nullptr : &series->second.histogram;
}

void MetricsRegistry::import_counters(const metrics::CounterSet& counters,
                                      std::string_view prefix) {
  for (const auto& [name, value] : counters.entries()) {
    add(std::string(prefix) + sanitize_metric_name(name), {}, value);
  }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, series_map] : other.counters_) {
    for (const auto& [key, series] : series_map) {
      auto& mine = counters_[name][key];
      if (mine.value == 0 && mine.labels.empty()) mine.labels = series.labels;
      mine.value += series.value;
    }
  }
  for (const auto& [name, series_map] : other.histograms_) {
    for (const auto& [key, series] : series_map) {
      auto& mine = histograms_[name][key];
      if (mine.histogram.count() == 0 && mine.labels.empty()) {
        mine.labels = series.labels;
      }
      mine.histogram.merge(series.histogram);
    }
  }
  // Gauges merge by max: each shard reports its own instantaneous state
  // (e.g. its resolver's cache.bytes), and the high-water mark across
  // shards is both the useful aggregate and independent of merge order.
  for (const auto& [name, series_map] : other.gauges_) {
    for (const auto& [key, series] : series_map) {
      auto& mine = gauges_[name][key];
      if (mine.labels.empty()) mine.labels = series.labels;
      if (series.value > mine.value) mine.value = series.value;
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  for (const auto& [name, series_map] : counters_) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " counter\n";
    for (const auto& [key, series] : series_map) {
      out += metric + key + " " + std::to_string(series.value) + "\n";
    }
  }
  for (const auto& [name, series_map] : gauges_) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " gauge\n";
    for (const auto& [key, series] : series_map) {
      out += metric + key + " " + std::to_string(series.value) + "\n";
    }
  }
  for (const auto& [name, series_map] : histograms_) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " summary\n";
    for (const auto& [key, series] : series_map) {
      for (const double q : {0.5, 0.9, 0.99}) {
        out += metric +
               with_extra_label(key, "quantile", format_double(q)) + " " +
               format_double(series.histogram.percentile(q * 100)) + "\n";
      }
      out += metric + "_sum" + key + " " +
             format_double(series.histogram.sum()) + "\n";
      out += metric + "_count" + key + " " +
             std::to_string(series.histogram.count()) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [name, series_map] : counters_) {
    for (const auto& [key, series] : series_map) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + json_escape(name) + "\",\"labels\":" +
             labels_json(series.labels) +
             ",\"value\":" + std::to_string(series.value) + "}";
    }
  }
  // The gauges section only appears when a gauge was set, so pre-gauge
  // producers keep emitting the exact historical document.
  if (!gauges_.empty()) {
    out += "],\"gauges\":[";
    first = true;
    for (const auto& [name, series_map] : gauges_) {
      for (const auto& [key, series] : series_map) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + json_escape(name) + "\",\"labels\":" +
               labels_json(series.labels) +
               ",\"value\":" + std::to_string(series.value) + "}";
      }
    }
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [name, series_map] : histograms_) {
    for (const auto& [key, series] : series_map) {
      if (!first) out += ",";
      first = false;
      const metrics::Histogram& h = series.histogram;
      out += "{\"name\":\"" + json_escape(name) + "\",\"labels\":" +
             labels_json(series.labels) +
             ",\"count\":" + std::to_string(h.count()) +
             ",\"sum\":" + format_double(h.sum()) +
             ",\"min\":" + format_double(h.min()) +
             ",\"max\":" + format_double(h.max()) +
             ",\"p50\":" + format_double(h.percentile(50)) +
             ",\"p90\":" + format_double(h.percentile(90)) +
             ",\"p99\":" + format_double(h.percentile(99)) + "}";
    }
  }
  out += "]}";
  return out;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  metrics::CsvWriter csv({"name", "labels", "value"});
  for (const auto& [name, series_map] : counters_) {
    for (const auto& [key, series] : series_map) {
      csv.add_row({name, key, std::to_string(series.value)});
    }
  }
  for (const auto& [name, series_map] : gauges_) {
    for (const auto& [key, series] : series_map) {
      csv.add_row({name, key, std::to_string(series.value)});
    }
  }
  for (const auto& [name, series_map] : histograms_) {
    for (const auto& [key, series] : series_map) {
      const metrics::Histogram& h = series.histogram;
      csv.add_row({name + "_count", key, std::to_string(h.count())});
      csv.add_row({name + "_sum", key, format_double(h.sum())});
      csv.add_row({name + "_mean", key, format_double(h.mean())});
      csv.add_row({name + "_p99", key, format_double(h.percentile(99))});
    }
  }
  csv.write(out);
}

bool MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  const auto ends_with = [&path](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  if (ends_with(".json")) {
    out << json() << "\n";
  } else if (ends_with(".csv")) {
    write_csv(out);
  } else {
    out << prometheus_text();
  }
  return out.good();
}

void MetricsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
  gauges_.clear();
}

}  // namespace lookaside::obs
