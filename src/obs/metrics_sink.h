// MetricsSink: turns the event stream into registry instruments.
//
// The mapping is the contract between the trace and the exported metrics —
// each paper figure reads from a small set of instruments (see DESIGN.md's
// Observability section):
//   upstream_queries{server=...}          per-hop query counts (Table 4/5)
//   upstream_bytes{server=...,dir=...}    traffic volume (Table 5)
//   exchange_latency_seconds{server=...}  per-hop RTT summary (Fig. 10)
//   resolution_latency_seconds            stub-observed latency
//   resolutions_completed{status=...}     validator outcomes (§2.2)
//   dlv_observations{case="1"|"2"}        the leakage split (Fig. 8/9)
//   cache_hits / nsec_suppressions        aggressive-NSEC effectiveness
//   authority_outcomes{server=...,outcome=...}  answer/referral/NXDOMAIN mix
// Queries for the DLV zone's own infrastructure (apex DNSKEY/SOA) are
// labeled server="dlv-apex" so upstream_queries{server="dlv"} equals the
// registry's observation count exactly.
#pragma once

#include "obs/metrics_registry.h"
#include "obs/trace_sink.h"

namespace lookaside::obs {

class MetricsSink : public TraceSink {
 public:
  explicit MetricsSink(MetricsRegistry& registry) : registry_(&registry) {}

  void on_event(const Event& event) override;

  [[nodiscard]] MetricsRegistry& registry() { return *registry_; }

 private:
  MetricsRegistry* registry_;
};

}  // namespace lookaside::obs
