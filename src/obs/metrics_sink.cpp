#include "obs/metrics_sink.h"

namespace lookaside::obs {

namespace {

/// server_class, with the DLV zone's own infrastructure split out: a query
/// for the apex itself (DNSKEY fetch for the trust anchor) is "dlv-apex",
/// so server="dlv" counts exactly the queries the registry observes.
std::string classify(const Event& event) {
  std::string cls = server_class(event.server);
  if (cls == "dlv" && event.server.size() > 4) {
    const std::string apex_text =
        event.server.substr(4).empty() ? "."
                                       : event.server.substr(4) + ".";
    if (event.name == apex_text) cls = "dlv-apex";
  }
  return cls;
}

}  // namespace

void MetricsSink::on_event(const Event& event) {
  MetricsRegistry& reg = *registry_;
  switch (event.kind) {
    case EventKind::kStubQuery:
      reg.add("resolutions", {{"qtype", dns::rr_type_name(event.qtype)}});
      break;
    case EventKind::kUpstreamQuery: {
      const std::string cls = classify(event);
      reg.add("upstream_queries", {{"server", cls}});
      reg.add("upstream_bytes", {{"server", cls}, {"dir", "query"}},
              event.bytes);
      break;
    }
    case EventKind::kResponse: {
      const std::string cls = classify(event);
      if (cls == "recursive") {
        // Stub-facing response emitted by the resolver: the span summary.
        reg.observe("resolution_latency_seconds", {},
                    static_cast<double>(event.latency_us) / 1e6);
        reg.add("resolutions_completed",
                {{"status", event.detail},
                 {"rcode", dns::rcode_name(event.rcode)}});
      } else {
        reg.add("upstream_bytes", {{"server", cls}, {"dir", "response"}},
                event.bytes);
        reg.add("upstream_responses",
                {{"server", cls}, {"rcode", dns::rcode_name(event.rcode)}});
        reg.observe("exchange_latency_seconds", {{"server", cls}},
                    static_cast<double>(event.latency_us) / 1e6);
      }
      break;
    }
    case EventKind::kCacheHit:
      reg.add("cache_hits", {{"kind", event.detail}});
      break;
    case EventKind::kNsecSuppression:
      reg.add("nsec_suppressions", {{"kind", event.detail}});
      break;
    case EventKind::kValidation:
      reg.add("validations", {{"status", event.detail}});
      break;
    case EventKind::kDlvLookup:
      reg.add("dlv_lookups", {{"outcome", event.detail}});
      break;
    case EventKind::kDlvObservation:
      reg.add("dlv_observations", {{"case", event.detail}});
      break;
    case EventKind::kAuthority:
      reg.add("authority_outcomes",
              {{"server", classify(event)}, {"outcome", event.detail}});
      break;
    case EventKind::kRetry:
      reg.add("retries", {{"server", classify(event)}});
      break;
    case EventKind::kFaultInjected:
      reg.add("faults_injected",
              {{"server", classify(event)}, {"cause", event.detail}});
      break;
    case EventKind::kServerMarkedDead:
      reg.add("servers_marked_dead", {{"server", classify(event)}});
      break;
    case EventKind::kClientQuery:
      reg.add("client_queries", {});
      break;
    case EventKind::kClientResponse:
      reg.add("client_responses", {{"result", event.detail}});
      break;
    case EventKind::kCoalesceJoin:
      reg.add("coalesce_joins", {});
      break;
    case EventKind::kLeakCause:
      reg.add("leak_causes", {{"cause", event.detail}});
      break;
    case EventKind::kCacheEvicted:
      reg.add("cache_evictions", {{"section", event.detail}});
      break;
  }
}

}  // namespace lookaside::obs
