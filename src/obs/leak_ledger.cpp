#include "obs/leak_ledger.h"

#include <fstream>
#include <ostream>

#include "obs/metrics_registry.h"
#include "obs/span_timeline.h"

namespace lookaside::obs {

void LeakLedger::on_event(const Event& event) {
  switch (event.kind) {
    case EventKind::kClientQuery:
      // The frontend is the recursive vantage for served clients.
      ++observations_["recursive"][event.client];
      break;
    case EventKind::kStubQuery:
      // Direct stub resolutions (no frontend): the recursive vantage sees
      // the query without a client tag. Served queries are already counted
      // at intake, so only the untagged ones count here.
      if (event.client == 0) ++observations_["recursive"][0];
      break;
    case EventKind::kUpstreamQuery: {
      const std::string cls = server_class(event.server);
      // The registry's own view comes from its observation events (which
      // carry the Case-1/Case-2 verdict); everything else is an authority
      // vantage on the resolution path.
      if (cls == "root" || cls == "tld" || cls == "sld" || cls == "arpa") {
        ++observations_[cls][event.client];
      }
      break;
    }
    case EventKind::kLeakCause:
      // Emitted by the resolver immediately before a DLV exchange; the
      // registry's observation of that exchange follows in stream order.
      pending_cause_[event.query_id] = event.detail;
      break;
    case EventKind::kDlvObservation: {
      ++observations_["dlv"][event.client];
      const auto pending = pending_cause_.find(event.query_id);
      if (event.detail == "2") {
        LeakRecord record;
        record.time_us = event.time_us;
        record.query_id = event.query_id;
        record.client = event.client;
        record.domain = event.name;
        record.vantage = event.server;
        record.cause = pending == pending_cause_.end() ? "unattributed"
                                                       : pending->second;
        ++cause_totals_[record.cause];
        records_.push_back(std::move(record));
      } else {
        ++case1_;
      }
      if (pending != pending_cause_.end()) pending_cause_.erase(pending);
      break;
    }
    default:
      break;
  }
}

void LeakLedger::merge_from(const LeakLedger& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  case1_ += other.case1_;
  for (const auto& [cause, count] : other.cause_totals_) {
    cause_totals_[cause] += count;
  }
  for (const auto& [vantage, per_client] : other.observations_) {
    for (const auto& [client, count] : per_client) {
      observations_[vantage][client] += count;
    }
  }
}

void LeakLedger::export_to(MetricsRegistry& registry) const {
  for (const auto& [vantage, per_client] : observations_) {
    for (const auto& [client, count] : per_client) {
      registry.add("ledger_observations",
                   {{"vantage", vantage},
                    {"client", client == 0 ? "direct"
                                           : std::to_string(client - 1)}},
                   count);
    }
  }
  for (const auto& [cause, count] : cause_totals_) {
    registry.add("ledger_case2", {{"cause", cause}}, count);
  }
  if (case1_ != 0) registry.add("ledger_case1", {}, case1_);
}

std::string LeakLedger::record_jsonl(const LeakRecord& record) {
  std::string out;
  out.reserve(160);
  out += "{\"time_us\":";
  out += std::to_string(record.time_us);
  out += ",\"query\":";
  out += std::to_string(record.query_id);
  out += ",\"client\":";
  out += std::to_string(record.client);
  out += ",\"domain\":\"";
  out += json_escape(record.domain);
  out += "\",\"vantage\":\"";
  out += json_escape(record.vantage);
  out += "\",\"cause\":\"";
  out += record.cause;
  out += "\"}";
  return out;
}

void LeakLedger::write_jsonl(std::ostream& out) const {
  for (const LeakRecord& record : records_) {
    out << record_jsonl(record) << '\n';
  }
}

bool LeakLedger::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  write_jsonl(out);
  out.flush();
  return out.good();
}

std::size_t broken_leak_chains(const SpanTimeline& timeline,
                               const std::vector<LeakRecord>& records) {
  std::size_t broken = 0;
  for (const LeakRecord& record : records) {
    if (record.cause == "unattributed" || record.query_id == 0) {
      ++broken;
      continue;
    }
    // Walk intake -> resolver span. A coalesced leak is attributed to the
    // initiator, so the initiating query's chain is the one to check.
    const ResolutionSpan* span = nullptr;
    if (const ClientQuerySpan* client =
            timeline.client_span_by_query(record.query_id)) {
      span = timeline.span_by_id(client->resolver_span_id);
    } else {
      span = timeline.span_by_query(record.query_id);
    }
    if (span == nullptr) {
      ++broken;
      continue;
    }
    // The resolver span must show the DLV exchange this record came from:
    // a hop against the registry endpoint.
    bool reached_dlv = false;
    for (const SpanHop& hop : span->hops) {
      if (hop.server == record.vantage) {
        reached_dlv = true;
        break;
      }
    }
    if (!reached_dlv) ++broken;
  }
  return broken;
}

}  // namespace lookaside::obs
