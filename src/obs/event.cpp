#include "obs/event.h"

#include <array>
#include <cstdio>

namespace lookaside::obs {

namespace {

constexpr std::array<const char*, kEventKindCount> kKindNames = {
    "stub_query",  "upstream_query",  "response",
    "cache_hit",   "nsec_suppression", "validation",
    "dlv_lookup",  "dlv_observation", "authority",
    "retry",       "fault_injected",  "server_marked_dead",
    "client_query", "client_response", "coalesce_join",
    "leak_cause",  "cache_evicted",
};

}  // namespace

const char* event_kind_name(EventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "?";
}

bool event_kind_from_name(std::string_view name, EventKind* out) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_jsonl(const Event& event) {
  std::string out;
  out.reserve(160);
  out += "{\"time_us\":";
  out += std::to_string(event.time_us);
  out += ",\"span\":";
  out += std::to_string(event.span_id);
  out += ",\"parent\":";
  out += std::to_string(event.parent_span_id);
  out += ",\"query\":";
  out += std::to_string(event.query_id);
  out += ",\"client\":";
  out += std::to_string(event.client);
  out += ",\"kind\":\"";
  out += event_kind_name(event.kind);
  out += "\",\"name\":\"";
  out += json_escape(event.name);
  out += "\",\"server\":\"";
  out += json_escape(event.server);
  out += "\",\"qtype\":";
  out += std::to_string(static_cast<std::uint16_t>(event.qtype));
  out += ",\"rcode\":";
  out += std::to_string(static_cast<int>(event.rcode));
  out += ",\"bytes\":";
  out += std::to_string(event.bytes);
  out += ",\"latency_us\":";
  out += std::to_string(event.latency_us);
  out += ",\"detail\":\"";
  out += json_escape(event.detail);
  out += "\"}";
  return out;
}

std::string server_class(std::string_view endpoint_id) {
  if (endpoint_id == "recursive") return "recursive";
  if (endpoint_id == "root") return "root";
  if (endpoint_id == "stub") return "stub";
  if (endpoint_id == "arpa") return "arpa";
  if (endpoint_id.rfind("tld:", 0) == 0) return "tld";
  if (endpoint_id.rfind("dlv:", 0) == 0) return "dlv";
  if (endpoint_id.rfind("auth:", 0) == 0) return "sld";
  return "other";
}

}  // namespace lookaside::obs
