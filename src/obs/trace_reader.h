// JSONL trace reader: the inverse of to_jsonl(), used by
// examples/trace_inspect and the round-trip tests.
//
// The parser accepts flat JSON objects with string and unsigned-integer
// values — exactly the schema JsonlFileSink writes — and tolerates unknown
// keys so the schema can grow without breaking old inspectors.
#pragma once

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace lookaside::obs {

/// Parses one JSONL line. Returns false on malformed input or an unknown
/// event kind.
[[nodiscard]] bool parse_jsonl_event(std::string_view line, Event* out);

/// Reads every well-formed event line from `in`; malformed lines are
/// skipped and counted into `*malformed` when provided.
[[nodiscard]] std::vector<Event> read_jsonl_events(
    std::istream& in, std::size_t* malformed = nullptr);

/// Convenience: opens `path` and reads it. Empty result on open failure.
[[nodiscard]] std::vector<Event> read_jsonl_file(
    const std::string& path, std::size_t* malformed = nullptr);

}  // namespace lookaside::obs
