// JSONL trace reader: the inverse of to_jsonl(), used by
// examples/trace_inspect and the round-trip tests.
//
// The parser accepts flat JSON objects with string and unsigned-integer
// values — exactly the schema JsonlFileSink writes — and tolerates unknown
// keys so the schema can grow without breaking old inspectors.
#pragma once

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace lookaside::obs {

/// Parses one JSONL line. Returns false on malformed input or an unknown
/// event kind.
[[nodiscard]] bool parse_jsonl_event(std::string_view line, Event* out);

/// What one read pass saw: parsed events, malformed lines skipped, and
/// whether the final line was cut off mid-record (no trailing newline and
/// unparseable — the signature of a truncated write / crashed producer).
struct TraceReadStats {
  std::size_t events = 0;
  std::size_t malformed = 0;
  bool truncated_tail = false;
};

/// Reads every well-formed event line from `in`; never aborts on a bad
/// line — malformed lines (including a truncated trailing record) are
/// skipped and counted into `*stats` when provided.
[[nodiscard]] std::vector<Event> read_jsonl_events(
    std::istream& in, TraceReadStats* stats = nullptr);

/// Back-compat overload counting only malformed lines.
[[nodiscard]] std::vector<Event> read_jsonl_events(std::istream& in,
                                                   std::size_t* malformed);

/// Convenience: opens `path` and reads it. Empty result on open failure.
[[nodiscard]] std::vector<Event> read_jsonl_file(
    const std::string& path, TraceReadStats* stats = nullptr);

[[nodiscard]] std::vector<Event> read_jsonl_file(const std::string& path,
                                                 std::size_t* malformed);

}  // namespace lookaside::obs
