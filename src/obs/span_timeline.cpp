#include "obs/span_timeline.h"

#include <ostream>

namespace lookaside::obs {

std::uint64_t ResolutionSpan::hop_latency_total_us() const {
  std::uint64_t total = 0;
  for (const SpanHop& hop : hops) total += hop.latency_us;
  return total;
}

std::map<std::string, std::uint64_t> ResolutionSpan::phase_durations_us()
    const {
  std::map<std::string, std::uint64_t> out;
  for (const SpanHop& hop : hops) {
    out[server_class(hop.server)] += hop.latency_us;
  }
  return out;
}

ResolutionSpan* SpanTimeline::span_for(std::uint64_t span_id) {
  if (span_id == 0) return nullptr;
  const auto it = index_by_id_.find(span_id);
  if (it == index_by_id_.end()) return nullptr;
  return &spans_[it->second];
}

void SpanTimeline::add(const Event& event) {
  switch (event.kind) {
    case EventKind::kStubQuery: {
      ResolutionSpan span;
      span.span_id = event.span_id;
      span.name = event.name;
      span.qtype = event.qtype;
      span.start_us = event.time_us;
      index_by_id_[event.span_id] = spans_.size();
      spans_.push_back(std::move(span));
      break;
    }
    case EventKind::kUpstreamQuery: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span == nullptr) break;
      SpanHop hop;
      hop.time_us = event.time_us;
      hop.server = event.server;
      hop.name = event.name;
      hop.qtype = event.qtype;
      hop.query_bytes = event.bytes;
      span->hops.push_back(std::move(hop));
      break;
    }
    case EventKind::kResponse: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span == nullptr) break;
      if (server_class(event.server) == "recursive") {
        // Stub-facing response: the span closes.
        span->end_us = event.time_us;
        span->reported_latency_us = event.latency_us;
        span->rcode = event.rcode;
        if (!event.detail.empty()) span->status = event.detail;
        span->closed = true;
        break;
      }
      // Match the most recent unanswered hop to this server. Exchanges are
      // synchronous, so it is the innermost outstanding one.
      for (auto it = span->hops.rbegin(); it != span->hops.rend(); ++it) {
        if (!it->answered && it->server == event.server) {
          it->answered = true;
          it->response_bytes = event.bytes;
          it->latency_us = event.latency_us;
          it->rcode = event.rcode;
          break;
        }
      }
      break;
    }
    case EventKind::kValidation: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span == nullptr) break;
      span->status = event.detail;
      span->annotations.push_back(event);
      break;
    }
    case EventKind::kCacheHit:
    case EventKind::kNsecSuppression:
    case EventKind::kDlvLookup:
    case EventKind::kDlvObservation:
    case EventKind::kRetry:
    case EventKind::kFaultInjected:
    case EventKind::kServerMarkedDead: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span != nullptr) span->annotations.push_back(event);
      break;
    }
    case EventKind::kAuthority:
      break;  // server-side aggregate; not part of the span tree
  }
}

SpanTimeline SpanTimeline::from_events(const std::vector<Event>& events) {
  SpanTimeline timeline;
  for (const Event& event : events) timeline.add(event);
  return timeline;
}

std::vector<const ResolutionSpan*> SpanTimeline::find_by_name(
    std::string_view name) const {
  std::string wanted(name);
  if (wanted.empty() || wanted.back() != '.') wanted += '.';
  std::vector<const ResolutionSpan*> out;
  for (const ResolutionSpan& span : spans_) {
    if (span.name == wanted) out.push_back(&span);
  }
  return out;
}

void SpanTimeline::print(std::ostream& out, const ResolutionSpan& span) {
  out << "span " << span.span_id << ": " << span.name << " "
      << dns::rr_type_name(span.qtype) << "  start=" << span.start_us
      << "us";
  if (span.closed) {
    out << "  duration=" << span.reported_latency_us << "us  rcode="
        << dns::rcode_name(span.rcode);
    if (!span.status.empty()) out << "  status=" << span.status;
  } else {
    out << "  (unclosed)";
  }
  out << "\n";

  for (const SpanHop& hop : span.hops) {
    out << "  +" << (hop.time_us - span.start_us) << "us  "
        << server_class(hop.server) << " (" << hop.server << ")  "
        << hop.name << " " << dns::rr_type_name(hop.qtype) << "  q="
        << hop.query_bytes << "B";
    if (hop.answered) {
      out << " r=" << hop.response_bytes << "B  rtt=" << hop.latency_us
          << "us  " << dns::rcode_name(hop.rcode);
    } else {
      out << "  (no response)";
    }
    out << "\n";
  }

  for (const Event& note : span.annotations) {
    out << "  *  " << event_kind_name(note.kind);
    if (!note.detail.empty()) out << " [" << note.detail << "]";
    if (!note.name.empty()) out << " " << note.name;
    out << "\n";
  }

  const auto phases = span.phase_durations_us();
  if (!phases.empty()) {
    out << "  per-phase latency:";
    for (const auto& [cls, us] : phases) {
      out << "  " << cls << "=" << us << "us";
    }
    out << "\n";
  }
  if (span.closed) {
    const std::uint64_t hop_sum = span.hop_latency_total_us();
    out << "  hop latency sum = " << hop_sum << "us, reported = "
        << span.reported_latency_us << "us"
        << (hop_sum == span.reported_latency_us ? "  [consistent]"
                                                : "  [MISMATCH]")
        << "\n";
  }
}

}  // namespace lookaside::obs
