#include "obs/span_timeline.h"

#include <ostream>

namespace lookaside::obs {

std::uint64_t ResolutionSpan::hop_latency_total_us() const {
  std::uint64_t total = 0;
  for (const SpanHop& hop : hops) total += hop.latency_us;
  return total;
}

std::map<std::string, std::uint64_t> ResolutionSpan::phase_durations_us()
    const {
  std::map<std::string, std::uint64_t> out;
  for (const SpanHop& hop : hops) {
    out[server_class(hop.server)] += hop.latency_us;
  }
  return out;
}

ResolutionSpan* SpanTimeline::span_for(std::uint64_t span_id) {
  if (span_id == 0) return nullptr;
  const auto it = index_by_id_.find(span_id);
  if (it == index_by_id_.end()) return nullptr;
  return &spans_[it->second];
}

ClientQuerySpan* SpanTimeline::client_span_for(std::uint64_t span_id) {
  if (span_id == 0) return nullptr;
  const auto it = client_index_by_span_.find(span_id);
  if (it == client_index_by_span_.end()) return nullptr;
  return &client_spans_[it->second];
}

void SpanTimeline::add(const Event& event) {
  switch (event.kind) {
    case EventKind::kStubQuery: {
      ResolutionSpan span;
      span.span_id = event.span_id;
      span.query_id = event.query_id;
      span.client = event.client;
      span.name = event.name;
      span.qtype = event.qtype;
      span.start_us = event.time_us;
      if (event.parent_span_id != 0) {
        span.parent_span_ids.push_back(event.parent_span_id);
        if (ClientQuerySpan* parent = client_span_for(event.parent_span_id)) {
          parent->resolver_span_id = event.span_id;
        }
      }
      index_by_id_[event.span_id] = spans_.size();
      spans_.push_back(std::move(span));
      break;
    }
    case EventKind::kClientQuery: {
      ClientQuerySpan span;
      span.span_id = event.span_id;
      span.query_id = event.query_id;
      span.client = event.client;
      span.name = event.name;
      span.qtype = event.qtype;
      span.arrival_us = event.time_us;
      client_index_by_span_[event.span_id] = client_spans_.size();
      client_spans_.push_back(std::move(span));
      break;
    }
    case EventKind::kClientResponse: {
      ClientQuerySpan* span = client_span_for(event.span_id);
      if (span == nullptr) break;
      span->completion_us = event.time_us;
      span->latency_us = event.latency_us;
      span->rcode = event.rcode;
      span->result = event.detail;
      span->closed = true;
      break;
    }
    case EventKind::kCoalesceJoin: {
      // span_id = the shared resolver span; parent = the waiter's frontend
      // span. The resolver span gains one more parent; the waiter's client
      // span links to the shared resolution.
      if (ResolutionSpan* span = span_for(event.span_id)) {
        span->parent_span_ids.push_back(event.parent_span_id);
      }
      if (ClientQuerySpan* waiter = client_span_for(event.parent_span_id)) {
        waiter->resolver_span_id = event.span_id;
      }
      break;
    }
    case EventKind::kUpstreamQuery: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span == nullptr) break;
      SpanHop hop;
      hop.time_us = event.time_us;
      hop.server = event.server;
      hop.name = event.name;
      hop.qtype = event.qtype;
      hop.query_bytes = event.bytes;
      span->hops.push_back(std::move(hop));
      break;
    }
    case EventKind::kResponse: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span == nullptr) break;
      if (server_class(event.server) == "recursive") {
        // Stub-facing response: the span closes.
        span->end_us = event.time_us;
        span->reported_latency_us = event.latency_us;
        span->rcode = event.rcode;
        if (!event.detail.empty()) span->status = event.detail;
        span->closed = true;
        break;
      }
      // Match the most recent unanswered hop to this server. Exchanges are
      // synchronous, so it is the innermost outstanding one.
      for (auto it = span->hops.rbegin(); it != span->hops.rend(); ++it) {
        if (!it->answered && it->server == event.server) {
          it->answered = true;
          it->response_bytes = event.bytes;
          it->latency_us = event.latency_us;
          it->rcode = event.rcode;
          break;
        }
      }
      break;
    }
    case EventKind::kValidation: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span == nullptr) break;
      span->status = event.detail;
      span->annotations.push_back(event);
      break;
    }
    case EventKind::kCacheHit:
    case EventKind::kNsecSuppression:
    case EventKind::kDlvLookup:
    case EventKind::kDlvObservation:
    case EventKind::kLeakCause:
    case EventKind::kCacheEvicted:
    case EventKind::kRetry:
    case EventKind::kFaultInjected:
    case EventKind::kServerMarkedDead: {
      ResolutionSpan* span = span_for(event.span_id);
      if (span != nullptr) span->annotations.push_back(event);
      break;
    }
    case EventKind::kAuthority:
      break;  // server-side aggregate; not part of the span tree
  }
}

SpanTimeline SpanTimeline::from_events(const std::vector<Event>& events) {
  SpanTimeline timeline;
  for (const Event& event : events) timeline.add(event);
  return timeline;
}

std::vector<const ResolutionSpan*> SpanTimeline::find_by_name(
    std::string_view name) const {
  std::string wanted(name);
  if (wanted.empty() || wanted.back() != '.') wanted += '.';
  std::vector<const ResolutionSpan*> out;
  for (const ResolutionSpan& span : spans_) {
    if (span.name == wanted) out.push_back(&span);
  }
  return out;
}

const ResolutionSpan* SpanTimeline::span_by_id(std::uint64_t span_id) const {
  const auto it = index_by_id_.find(span_id);
  return it == index_by_id_.end() ? nullptr : &spans_[it->second];
}

const ClientQuerySpan* SpanTimeline::client_span_by_query(
    std::uint64_t query_id) const {
  for (const ClientQuerySpan& span : client_spans_) {
    if (span.query_id == query_id) return &span;
  }
  return nullptr;
}

const ResolutionSpan* SpanTimeline::span_by_query(
    std::uint64_t query_id) const {
  for (const ResolutionSpan& span : spans_) {
    if (span.query_id == query_id) return &span;
  }
  return nullptr;
}

namespace {

void count_annotations(const ResolutionSpan& span, QueryProfile* profile) {
  for (const Event& note : span.annotations) {
    switch (note.kind) {
      case EventKind::kCacheHit: ++profile->cache_probes; break;
      case EventKind::kNsecSuppression: ++profile->nsec_suppressions; break;
      case EventKind::kDlvLookup: ++profile->dlv_lookups; break;
      case EventKind::kValidation: ++profile->crypto_verifies; break;
      default: break;
    }
  }
}

}  // namespace

std::vector<QueryProfile> SpanTimeline::query_profiles() const {
  std::vector<QueryProfile> out;
  if (client_spans_.empty()) {
    // Direct stub traces: one profile per resolver span.
    out.reserve(spans_.size());
    for (const ResolutionSpan& span : spans_) {
      QueryProfile profile;
      profile.query_id = span.query_id;
      profile.client = span.client;
      profile.span_id = span.span_id;
      profile.name = span.name;
      profile.qtype = span.qtype;
      profile.total_us = span.reported_latency_us;
      profile.network_us = span.hop_latency_total_us();
      profile.network_by_class = span.phase_durations_us();
      profile.internal_us = profile.total_us > profile.network_us
                                ? profile.total_us - profile.network_us
                                : 0;
      count_annotations(span, &profile);
      out.push_back(std::move(profile));
    }
    return out;
  }
  out.reserve(client_spans_.size());
  for (const ClientQuerySpan& query : client_spans_) {
    QueryProfile profile;
    profile.query_id = query.query_id;
    profile.client = query.client;
    profile.span_id = query.span_id;
    profile.name = query.name;
    profile.qtype = query.qtype;
    profile.coalesced = query.result == "coalesced";
    profile.total_us = query.latency_us;
    if (profile.coalesced) {
      // A waiter does no work of its own: its whole latency is time spent
      // queued on the initiator's in-flight resolution.
      profile.queue_wait_us = query.latency_us;
    } else if (const ResolutionSpan* span = span_by_id(query.resolver_span_id)) {
      profile.network_us = span->hop_latency_total_us();
      profile.network_by_class = span->phase_durations_us();
      count_annotations(*span, &profile);
    }
    const std::uint64_t accounted = profile.queue_wait_us + profile.network_us;
    profile.internal_us =
        profile.total_us > accounted ? profile.total_us - accounted : 0;
    out.push_back(std::move(profile));
  }
  return out;
}

std::string profile_jsonl(const QueryProfile& profile) {
  std::string out;
  out.reserve(256);
  out += "{\"query\":";
  out += std::to_string(profile.query_id);
  out += ",\"client\":";
  out += std::to_string(profile.client);
  out += ",\"span\":";
  out += std::to_string(profile.span_id);
  out += ",\"name\":\"";
  out += json_escape(profile.name);
  out += "\",\"qtype\":";
  out += std::to_string(static_cast<std::uint16_t>(profile.qtype));
  out += ",\"coalesced\":";
  out += profile.coalesced ? "true" : "false";
  out += ",\"total_us\":";
  out += std::to_string(profile.total_us);
  out += ",\"queue_wait_us\":";
  out += std::to_string(profile.queue_wait_us);
  out += ",\"network_us\":";
  out += std::to_string(profile.network_us);
  out += ",\"internal_us\":";
  out += std::to_string(profile.internal_us);
  out += ",\"network\":{";
  bool first = true;
  for (const auto& [cls, us] : profile.network_by_class) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(cls);
    out += "\":";
    out += std::to_string(us);
  }
  out += "},\"cache_probes\":";
  out += std::to_string(profile.cache_probes);
  out += ",\"nsec_suppressions\":";
  out += std::to_string(profile.nsec_suppressions);
  out += ",\"dlv_lookups\":";
  out += std::to_string(profile.dlv_lookups);
  out += ",\"crypto_verifies\":";
  out += std::to_string(profile.crypto_verifies);
  out += "}";
  return out;
}

void SpanTimeline::print(std::ostream& out, const ResolutionSpan& span) {
  out << "span " << span.span_id << ": " << span.name << " "
      << dns::rr_type_name(span.qtype) << "  start=" << span.start_us
      << "us";
  if (span.closed) {
    out << "  duration=" << span.reported_latency_us << "us  rcode="
        << dns::rcode_name(span.rcode);
    if (!span.status.empty()) out << "  status=" << span.status;
  } else {
    out << "  (unclosed)";
  }
  out << "\n";

  for (const SpanHop& hop : span.hops) {
    out << "  +" << (hop.time_us - span.start_us) << "us  "
        << server_class(hop.server) << " (" << hop.server << ")  "
        << hop.name << " " << dns::rr_type_name(hop.qtype) << "  q="
        << hop.query_bytes << "B";
    if (hop.answered) {
      out << " r=" << hop.response_bytes << "B  rtt=" << hop.latency_us
          << "us  " << dns::rcode_name(hop.rcode);
    } else {
      out << "  (no response)";
    }
    out << "\n";
  }

  for (const Event& note : span.annotations) {
    out << "  *  " << event_kind_name(note.kind);
    if (!note.detail.empty()) out << " [" << note.detail << "]";
    if (!note.name.empty()) out << " " << note.name;
    out << "\n";
  }

  const auto phases = span.phase_durations_us();
  if (!phases.empty()) {
    out << "  per-phase latency:";
    for (const auto& [cls, us] : phases) {
      out << "  " << cls << "=" << us << "us";
    }
    out << "\n";
  }
  if (span.closed) {
    const std::uint64_t hop_sum = span.hop_latency_total_us();
    out << "  hop latency sum = " << hop_sum << "us, reported = "
        << span.reported_latency_us << "us"
        << (hop_sum == span.reported_latency_us ? "  [consistent]"
                                                : "  [MISMATCH]")
        << "\n";
  }
}

void SpanTimeline::print_query_tree(std::ostream& out,
                                    const ClientQuerySpan& query) const {
  out << "query " << query.query_id << "  client=" << query.client
      << "  span=" << query.span_id << ": " << query.name << " "
      << dns::rr_type_name(query.qtype) << "  arrival=" << query.arrival_us
      << "us";
  if (query.closed) {
    out << "  latency=" << query.latency_us << "us  rcode="
        << dns::rcode_name(query.rcode) << "  [" << query.result << "]";
  } else {
    out << "  (unclosed)";
  }
  out << "\n";

  const ResolutionSpan* span = span_by_id(query.resolver_span_id);
  if (span == nullptr) {
    out << "  (no resolver span: answered without upstream work)\n";
    return;
  }
  out << "  resolver span " << span->span_id << "  parents=[";
  for (std::size_t i = 0; i < span->parent_span_ids.size(); ++i) {
    if (i != 0) out << ",";
    out << span->parent_span_ids[i];
  }
  out << "]";
  const bool shared = span->parent_span_ids.size() > 1;
  if (shared) {
    out << "  (shared by " << span->parent_span_ids.size() << " queries)";
  }
  out << "\n";
  for (const SpanHop& hop : span->hops) {
    out << "    +" << (hop.time_us - span->start_us) << "us  "
        << server_class(hop.server) << " (" << hop.server << ")  " << hop.name
        << " " << dns::rr_type_name(hop.qtype);
    if (hop.answered) {
      out << "  rtt=" << hop.latency_us << "us  "
          << dns::rcode_name(hop.rcode);
    } else {
      out << "  (no response)";
    }
    out << "\n";
  }
  for (const Event& note : span->annotations) {
    out << "    *  " << event_kind_name(note.kind);
    if (!note.detail.empty()) out << " [" << note.detail << "]";
    if (!note.name.empty()) out << " " << note.name;
    out << "\n";
  }
}

}  // namespace lookaside::obs
