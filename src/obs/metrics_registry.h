// Labeled-instrument metrics registry with Prometheus/JSON/CSV export.
//
// Unifies the repository's two primitive accumulators (metrics::CounterSet
// and metrics::Histogram) behind named instruments with label support —
// `upstream_queries{server="dlv"}` — the way production resolvers expose
// DNSSEC state counters (cf. PowerDNS's dnssecResults[state]++ pattern).
// Export formats:
//   prometheus_text()  — text exposition (counters + summary quantiles);
//   json()             — one object with "counters" and "histograms";
//   write_csv()        — name,labels,value rows via the existing CsvWriter.
// write_file() picks the format from the file extension so bench drivers
// can offer a single --metrics-out= flag.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/counters.h"
#include "metrics/histogram.h"

namespace lookaside::obs {

using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

class MetricsRegistry {
 public:
  /// Increments counter `name{labels}` by `delta`.
  void add(std::string_view name, const Labels& labels = {},
           std::uint64_t delta = 1);

  /// Records `sample` into histogram `name{labels}`.
  void observe(std::string_view name, const Labels& labels, double sample);

  /// Raises gauge `name{labels}` to `value` if higher. Registry gauges are
  /// high-water marks, not last-write instantaneous values, because the
  /// sweep engine's byte-identity contract needs a reduction that is
  /// independent of cell-to-shard partitioning — max is; "latest" is not.
  void set_gauge(std::string_view name, const Labels& labels,
                 std::uint64_t value);

  /// Value of gauge `name{labels}` (0 when absent).
  [[nodiscard]] std::uint64_t gauge(std::string_view name,
                                    const Labels& labels = {}) const;

  /// Value of the exact series `name{labels}` (0 when absent).
  [[nodiscard]] std::uint64_t value(std::string_view name,
                                    const Labels& labels = {}) const;

  /// Sum over every label combination of counter `name`.
  [[nodiscard]] std::uint64_t total(std::string_view name) const;

  /// Histogram for `name{labels}`, or nullptr when absent.
  [[nodiscard]] const metrics::Histogram* histogram(
      std::string_view name, const Labels& labels = {}) const;

  /// Imports a flat CounterSet as unlabeled counters. Dots and dashes in
  /// names become underscores ("bytes.total" -> "bytes_total"); `prefix`
  /// is prepended verbatim.
  void import_counters(const metrics::CounterSet& counters,
                       std::string_view prefix = "");

  /// Folds another registry into this one: counters add, histogram samples
  /// append. Used by the sweep engine to reduce per-shard registries into
  /// one post-run export; merging shards in canonical order keeps the
  /// result independent of thread scheduling.
  void merge_from(const MetricsRegistry& other);

  /// Prometheus text exposition. Counters get `# TYPE ... counter` lines;
  /// histograms are exported as summaries (quantiles 0.5/0.9/0.99 plus
  /// _sum and _count).
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON document: {"counters":[...],"histograms":[...]}, plus a
  /// "gauges":[...] section when any gauge was set.
  [[nodiscard]] std::string json() const;

  /// CSV rows: name,labels,value (histograms export count/sum/mean/p99).
  void write_csv(std::ostream& out) const;

  /// Writes the registry to `path`; format by extension (.json / .csv /
  /// anything else -> Prometheus text). Returns false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

  /// Canonical label rendering: `{a="b",c="d"}` with keys sorted; empty
  /// labels render as "".
  [[nodiscard]] static std::string label_string(const Labels& labels);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && histograms_.empty() && gauges_.empty();
  }

  void clear();

 private:
  struct CounterSeries {
    Labels labels;
    std::uint64_t value = 0;
  };
  struct HistogramSeries {
    Labels labels;
    metrics::Histogram histogram;
  };

  // instrument name -> (canonical label string -> series)
  std::map<std::string, std::map<std::string, CounterSeries>, std::less<>>
      counters_;
  std::map<std::string, std::map<std::string, HistogramSeries>, std::less<>>
      histograms_;
  // Gauges reuse CounterSeries storage; only the write semantics differ
  // (set vs add, max vs sum on merge). Exports emit a gauges section only
  // when one was set, so registries that never touch a gauge render
  // byte-identically to the pre-gauge format.
  std::map<std::string, std::map<std::string, CounterSeries>, std::less<>>
      gauges_;
};

}  // namespace lookaside::obs
