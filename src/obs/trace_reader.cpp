#include "obs/trace_reader.h"

#include <cstdint>
#include <fstream>

namespace lookaside::obs {

namespace {

/// Cursor over one line; the helpers consume whitespace-free JSON as
/// emitted by to_jsonl but skip blanks defensively.
struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : text[pos]; }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }
};

bool parse_string(Cursor& cursor, std::string* out) {
  if (!cursor.consume('"')) return false;
  out->clear();
  while (!cursor.done()) {
    const char c = cursor.text[cursor.pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cursor.done()) return false;
      const char escaped = cursor.text[cursor.pos++];
      switch (escaped) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (cursor.pos + 4 > cursor.text.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = cursor.text[cursor.pos++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Control characters only (that is all the writer emits).
          *out += static_cast<char>(value & 0xFF);
          break;
        }
        default: return false;
      }
    } else {
      *out += c;
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& cursor, std::uint64_t* out) {
  cursor.skip_ws();
  if (cursor.done()) return false;
  std::uint64_t value = 0;
  bool any = false;
  while (!cursor.done()) {
    const char c = cursor.peek();
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    ++cursor.pos;
    any = true;
  }
  if (any) *out = value;
  return any;
}

}  // namespace

bool parse_jsonl_event(std::string_view line, Event* out) {
  Cursor cursor{line};
  if (!cursor.consume('{')) return false;
  Event event;
  bool kind_seen = false;

  bool first = true;
  for (;;) {
    cursor.skip_ws();
    if (cursor.consume('}')) break;
    if (!first && !cursor.consume(',')) return false;
    first = false;

    std::string key;
    if (!parse_string(cursor, &key)) return false;
    if (!cursor.consume(':')) return false;

    cursor.skip_ws();
    if (cursor.peek() == '"') {
      std::string value;
      if (!parse_string(cursor, &value)) return false;
      if (key == "kind") {
        if (!event_kind_from_name(value, &event.kind)) return false;
        kind_seen = true;
      } else if (key == "name") {
        event.name = std::move(value);
      } else if (key == "server") {
        event.server = std::move(value);
      } else if (key == "detail") {
        event.detail = std::move(value);
      }
      // Unknown string keys are tolerated.
    } else {
      std::uint64_t value = 0;
      if (!parse_number(cursor, &value)) return false;
      if (key == "time_us") event.time_us = value;
      else if (key == "span") event.span_id = value;
      else if (key == "parent") event.parent_span_id = value;
      else if (key == "query") event.query_id = value;
      else if (key == "client") event.client = value;
      else if (key == "qtype") event.qtype = static_cast<dns::RRType>(value);
      else if (key == "rcode") event.rcode = static_cast<dns::RCode>(value);
      else if (key == "bytes") event.bytes = value;
      else if (key == "latency_us") event.latency_us = value;
      // Unknown numeric keys are tolerated.
    }
  }
  if (!kind_seen) return false;
  *out = std::move(event);
  return true;
}

std::vector<Event> read_jsonl_events(std::istream& in, TraceReadStats* stats) {
  std::vector<Event> out;
  TraceReadStats local;
  std::string line;
  while (std::getline(in, line)) {
    // getline hitting EOF before a '\n' means the final record was cut off
    // mid-write; if it also fails to parse, flag it as a truncated tail
    // rather than silently lumping it with ordinary garbage.
    const bool tail_without_newline = in.eof();
    if (line.empty()) continue;
    Event event;
    if (parse_jsonl_event(line, &event)) {
      out.push_back(std::move(event));
    } else {
      ++local.malformed;
      if (tail_without_newline) local.truncated_tail = true;
    }
  }
  local.events = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<Event> read_jsonl_events(std::istream& in,
                                     std::size_t* malformed) {
  TraceReadStats stats;
  std::vector<Event> out = read_jsonl_events(in, &stats);
  if (malformed != nullptr) *malformed = stats.malformed;
  return out;
}

std::vector<Event> read_jsonl_file(const std::string& path,
                                   TraceReadStats* stats) {
  std::ifstream in(path);
  if (!in.good()) {
    if (stats != nullptr) *stats = {};
    return {};
  }
  return read_jsonl_events(in, stats);
}

std::vector<Event> read_jsonl_file(const std::string& path,
                                   std::size_t* malformed) {
  TraceReadStats stats;
  std::vector<Event> out = read_jsonl_file(path, &stats);
  if (malformed != nullptr) *malformed = stats.malformed;
  return out;
}

}  // namespace lookaside::obs
