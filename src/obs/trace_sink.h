// Trace sinks: where the event stream goes.
//
// Three consumers cover the repository's needs:
//   RingBufferSink  — bounded in-memory buffer, safe at million-domain
//                     scale (old events are overwritten, never reallocated);
//   JsonlFileSink   — one JSON object per line, the machine-readable export
//                     consumed by examples/trace_inspect;
//   SummarySink     — running aggregation printed as a paper-style table
//                     (per-server query/byte/latency mix, event kind counts).
// MetricsSink (metrics_sink.h) is the fourth, feeding a MetricsRegistry.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "obs/event.h"

namespace lookaside::obs {

/// Receives every emitted event. Implementations must tolerate events of
/// every kind; unknown-to-them kinds are simply ignored.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_event(const Event& event) = 0;

  /// Flushes buffered output (file sinks); default is a no-op.
  virtual void flush() {}
};

/// Bounded ring buffer. Capacity is fixed at construction; once full, the
/// oldest event is overwritten and `dropped()` counts the overwrites.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16);

  void on_event(const Event& event) override;

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events overwritten because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Events ever offered to the sink.
  [[nodiscard]] std::uint64_t total_seen() const { return total_; }

  void clear();

 private:
  std::vector<Event> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

/// Writes one JSONL line per event. `ok()` reports whether the file opened
/// (and stayed) writable; a failed sink swallows events silently so a bad
/// path never aborts a long run.
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);

  void on_event(const Event& event) override;
  void flush() override;

  [[nodiscard]] bool ok() const { return out_.good(); }
  [[nodiscard]] std::uint64_t events_written() const { return written_; }
  /// Events swallowed because the file failed to open or a write failed.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::ofstream out_;
  std::uint64_t written_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Aggregates the stream into the two tables a paper reader wants: the
/// per-server-class query/byte/latency mix (Table 4 / Table 5 shape) and
/// the event kind counts.
class SummarySink : public TraceSink {
 public:
  void on_event(const Event& event) override;

  /// Prints both tables.
  void print(std::ostream& out) const;

  [[nodiscard]] std::uint64_t count(EventKind kind) const;

 private:
  struct ServerStats {
    std::uint64_t queries = 0;
    std::uint64_t query_bytes = 0;
    std::uint64_t response_bytes = 0;
    metrics::Histogram rtt_ms;
  };

  std::array<std::uint64_t, kEventKindCount> kind_counts_{};
  std::map<std::string, ServerStats> per_server_;
  std::map<std::string, std::uint64_t> validations_;
};

}  // namespace lookaside::obs
