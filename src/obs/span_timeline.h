// SpanTimeline: reconstructs per-resolution span trees from the flat event
// stream.
//
// A resolution span opens with a stub_query event, collects every upstream
// hop (upstream_query + response pair against root/TLD/SLD/DLV servers) and
// resolver-internal annotation (cache hits, NSEC suppressions, DLV lookups,
// validation outcome), and closes with the stub-facing response event that
// carries the resolution's total latency. Because the simulated clock only
// advances inside network exchanges, the per-hop round trips of a span sum
// exactly to its reported duration — the invariant examples/trace_inspect
// verifies when printing a timeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace lookaside::obs {

/// One upstream exchange inside a resolution span.
struct SpanHop {
  std::uint64_t time_us = 0;  // query departure time
  std::string server;         // endpoint id
  std::string name;           // qname text
  dns::RRType qtype = dns::RRType::kA;
  dns::RCode rcode = dns::RCode::kNoError;
  std::uint64_t query_bytes = 0;
  std::uint64_t response_bytes = 0;
  std::uint64_t latency_us = 0;  // round trip
  bool answered = false;         // response seen (false = timeout)
};

/// One reconstructed resolution.
struct ResolutionSpan {
  std::uint64_t span_id = 0;
  std::string name;  // the stub's qname
  dns::RRType qtype = dns::RRType::kA;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t reported_latency_us = 0;  // from the stub-facing response
  std::string status;                     // validation outcome
  dns::RCode rcode = dns::RCode::kNoError;
  bool closed = false;
  std::vector<SpanHop> hops;
  std::vector<Event> annotations;  // cache/nsec/dlv/validation events

  /// Sum of hop round trips; equals reported_latency_us for closed spans.
  [[nodiscard]] std::uint64_t hop_latency_total_us() const;

  /// Latency grouped by server class ("root", "tld", "sld", "dlv", ...).
  [[nodiscard]] std::map<std::string, std::uint64_t> phase_durations_us()
      const;
};

/// Streaming span-tree builder. Feed events in emission order (the JSONL
/// file and the ring buffer both preserve it).
class SpanTimeline {
 public:
  void add(const Event& event);

  [[nodiscard]] static SpanTimeline from_events(
      const std::vector<Event>& events);

  [[nodiscard]] const std::vector<ResolutionSpan>& spans() const {
    return spans_;
  }

  /// Spans whose qname matches `name` (with or without trailing dot).
  [[nodiscard]] std::vector<const ResolutionSpan*> find_by_name(
      std::string_view name) const;

  /// Pretty-prints one span as an indented hop timeline with the per-phase
  /// breakdown and the sum-vs-reported latency check.
  static void print(std::ostream& out, const ResolutionSpan& span);

 private:
  std::vector<ResolutionSpan> spans_;
  std::map<std::uint64_t, std::size_t> index_by_id_;

  ResolutionSpan* span_for(std::uint64_t span_id);
};

}  // namespace lookaside::obs
