// SpanTimeline: reconstructs per-resolution span trees from the flat event
// stream.
//
// A resolution span opens with a stub_query event, collects every upstream
// hop (upstream_query + response pair against root/TLD/SLD/DLV servers) and
// resolver-internal annotation (cache hits, NSEC suppressions, DLV lookups,
// validation outcome), and closes with the stub-facing response event that
// carries the resolution's total latency. Because the simulated clock only
// advances inside network exchanges, the per-hop round trips of a span sum
// exactly to its reported duration — the invariant examples/trace_inspect
// verifies when printing a timeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"
#include "obs/trace_sink.h"

namespace lookaside::obs {

/// One upstream exchange inside a resolution span.
struct SpanHop {
  std::uint64_t time_us = 0;  // query departure time
  std::string server;         // endpoint id
  std::string name;           // qname text
  dns::RRType qtype = dns::RRType::kA;
  dns::RCode rcode = dns::RCode::kNoError;
  std::uint64_t query_bytes = 0;
  std::uint64_t response_bytes = 0;
  std::uint64_t latency_us = 0;  // round trip
  bool answered = false;         // response seen (false = timeout)
};

/// One reconstructed resolution.
struct ResolutionSpan {
  std::uint64_t span_id = 0;
  std::uint64_t query_id = 0;  // trace context of the initiating query
  std::uint64_t client = 0;    // 1-based initiator (0 = direct stub)
  std::string name;  // the stub's qname
  dns::RRType qtype = dns::RRType::kA;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t reported_latency_us = 0;  // from the stub-facing response
  std::string status;                     // validation outcome
  dns::RCode rcode = dns::RCode::kNoError;
  bool closed = false;
  std::vector<SpanHop> hops;
  std::vector<Event> annotations;  // cache/nsec/dlv/validation events
  /// Every parent this resolution serves: the initiator's frontend span
  /// first, then one entry per coalesce_join (N waiters => N parents).
  std::vector<std::uint64_t> parent_span_ids;

  /// Sum of hop round trips; equals reported_latency_us for closed spans.
  [[nodiscard]] std::uint64_t hop_latency_total_us() const;

  /// Latency grouped by server class ("root", "tld", "sld", "dlv", ...).
  [[nodiscard]] std::map<std::string, std::uint64_t> phase_durations_us()
      const;
};

/// One frontend-level client query (client_query .. client_response pair).
/// Coalesced waiters share a resolver span with the initiator; the link is
/// `resolver_span_id`.
struct ClientQuerySpan {
  std::uint64_t span_id = 0;   // the frontend span
  std::uint64_t query_id = 0;  // ((client+1)<<32)|seq, minted at intake
  std::uint64_t client = 0;    // 1-based
  std::string name;
  dns::RRType qtype = dns::RRType::kA;
  std::uint64_t arrival_us = 0;
  std::uint64_t completion_us = 0;
  std::uint64_t latency_us = 0;
  dns::RCode rcode = dns::RCode::kNoError;
  std::string result;  // resolved|cache|coalesced|overload|formerr
  bool closed = false;
  std::uint64_t resolver_span_id = 0;  // 0 = never reached the resolver
};

/// Per-query critical-path attribution. Virtual time only advances inside
/// network exchanges, so the honest split is: wait on a shared in-flight
/// resolution (queue), per-server-class network RTT, and everything else
/// (cache probes + crypto verification, instantaneous on the virtual
/// clock — reported as event counts instead of fabricated durations).
struct QueryProfile {
  std::uint64_t query_id = 0;
  std::uint64_t client = 0;  // 1-based (0 = direct stub resolution)
  std::uint64_t span_id = 0;
  std::string name;
  dns::RRType qtype = dns::RRType::kA;
  bool coalesced = false;
  std::uint64_t total_us = 0;
  std::uint64_t queue_wait_us = 0;  // coalesced wait on the shared span
  std::uint64_t network_us = 0;     // sum of this query's own hop RTTs
  std::uint64_t internal_us = 0;    // total - queue - network
  std::map<std::string, std::uint64_t> network_by_class;
  std::uint64_t cache_probes = 0;
  std::uint64_t nsec_suppressions = 0;
  std::uint64_t dlv_lookups = 0;
  std::uint64_t crypto_verifies = 0;
};

/// Fixed-key JSONL serialization of one profile (no trailing newline).
[[nodiscard]] std::string profile_jsonl(const QueryProfile& profile);

/// Streaming span-tree builder. Feed events in emission order (the JSONL
/// file and the ring buffer both preserve it).
class SpanTimeline {
 public:
  void add(const Event& event);

  [[nodiscard]] static SpanTimeline from_events(
      const std::vector<Event>& events);

  [[nodiscard]] const std::vector<ResolutionSpan>& spans() const {
    return spans_;
  }

  /// Frontend-level client query spans, in arrival order (empty for traces
  /// captured without a serve frontend).
  [[nodiscard]] const std::vector<ClientQuerySpan>& client_spans() const {
    return client_spans_;
  }

  /// Spans whose qname matches `name` (with or without trailing dot).
  [[nodiscard]] std::vector<const ResolutionSpan*> find_by_name(
      std::string_view name) const;

  [[nodiscard]] const ResolutionSpan* span_by_id(std::uint64_t span_id) const;
  [[nodiscard]] const ClientQuerySpan* client_span_by_query(
      std::uint64_t query_id) const;
  [[nodiscard]] const ResolutionSpan* span_by_query(
      std::uint64_t query_id) const;

  /// Critical-path attribution for every query, in arrival order. When the
  /// trace has client spans those are profiled (one row per client query);
  /// otherwise each resolver span is profiled directly.
  [[nodiscard]] std::vector<QueryProfile> query_profiles() const;

  /// Pretty-prints one span as an indented hop timeline with the per-phase
  /// breakdown and the sum-vs-reported latency check.
  static void print(std::ostream& out, const ResolutionSpan& span);

  /// Pretty-prints one client query as a tree: the client line, the shared
  /// resolver span (with all recorded parents), its hops and annotations.
  void print_query_tree(std::ostream& out, const ClientQuerySpan& query) const;

 private:
  std::vector<ResolutionSpan> spans_;
  std::vector<ClientQuerySpan> client_spans_;
  std::map<std::uint64_t, std::size_t> index_by_id_;
  std::map<std::uint64_t, std::size_t> client_index_by_span_;

  ResolutionSpan* span_for(std::uint64_t span_id);
  ClientQuerySpan* client_span_for(std::uint64_t span_id);
};

/// TraceSink adapter: feeds every event into a SpanTimeline so bench
/// drivers can reconstruct profiles without buffering the raw stream.
class TimelineSink : public TraceSink {
 public:
  void on_event(const Event& event) override { timeline_.add(event); }

  [[nodiscard]] const SpanTimeline& timeline() const { return timeline_; }

 private:
  SpanTimeline timeline_;
};

}  // namespace lookaside::obs
