// LeakLedger: per-vantage-point observation accounting with leak-cause
// attribution, derived from the trace event stream.
//
// The paper's privacy argument is a ledger question: each vantage point on
// the resolution path (the recursive frontend, the root/TLD/SLD
// authorities, and above all the DLV registry) sees some subset of client
// activity. This sink folds the causal trace into exactly that ledger —
// observations keyed by (vantage class, client) — and tags every Case-2
// DLV observation with *why* the query escaped the resolver's negative
// cache: a cold cache (first contact), an expired proof (ttl-expiry), an
// evicted proof (the byte-cap churned it out early), or a cached NSEC
// chain that simply does not cover the name (nsec-gap). The resolver emits
// the cause as a leak_cause event immediately before the DLV exchange, so
// in stream order the cause always precedes the registry's observation of
// the same query — the pairing used here needs no lookahead.
//
// The ledger is a pure function of the event stream; shard-local ledgers
// merged in shard order equal the single-shard ledger, which is how the
// bench drivers keep ledger output byte-identical across --jobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_sink.h"

namespace lookaside::obs {

class MetricsRegistry;
class SpanTimeline;

/// One Case-2 DLV observation: the registry learned a domain it holds no
/// record for, attributed to the client query that caused it.
struct LeakRecord {
  std::uint64_t time_us = 0;
  std::uint64_t query_id = 0;
  std::uint64_t client = 0;  // 1-based (0 = direct stub resolution)
  std::string domain;        // what the registry learned
  std::string vantage;       // registry endpoint id ("dlv:<apex>")
  std::string cause;         // cold-miss|ttl-expiry|eviction|nsec-gap
};

class LeakLedger : public TraceSink {
 public:
  void on_event(const Event& event) override;

  /// Case-2 records in observation order.
  [[nodiscard]] const std::vector<LeakRecord>& records() const {
    return records_;
  }

  [[nodiscard]] std::uint64_t case1_total() const { return case1_; }
  [[nodiscard]] std::uint64_t case2_total() const { return records_.size(); }

  /// Case-2 count per cause tag (ordered, so iteration is deterministic).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& cause_totals()
      const {
    return cause_totals_;
  }

  /// Observations per (vantage class, 1-based client); vantage is
  /// "recursive", "root", "tld", "sld", "arpa" or "dlv".
  [[nodiscard]] const std::map<std::string,
                               std::map<std::uint64_t, std::uint64_t>>&
  observations() const {
    return observations_;
  }

  /// Folds another shard's ledger in (records append in call order, so
  /// merge shards in index order for deterministic output).
  void merge_from(const LeakLedger& other);

  /// Mirrors the ledger into labeled counters:
  /// ledger_observations{vantage,client}, ledger_case2{cause}, ledger_case1.
  void export_to(MetricsRegistry& registry) const;

  /// One JSONL line per Case-2 record.
  void write_jsonl(std::ostream& out) const;
  [[nodiscard]] bool write_file(const std::string& path) const;

  [[nodiscard]] static std::string record_jsonl(const LeakRecord& record);

 private:
  std::vector<LeakRecord> records_;
  std::uint64_t case1_ = 0;
  std::map<std::string, std::uint64_t> cause_totals_;
  std::map<std::string, std::map<std::uint64_t, std::uint64_t>> observations_;
  std::map<std::uint64_t, std::string> pending_cause_;  // query_id -> cause
};

/// Chain-completeness check for the acceptance contract: every ledger
/// record's query_id must resolve, in `timeline`, to a frontend client
/// span (or a direct resolver span) whose resolution actually reached the
/// DLV registry. Returns the number of records whose chain is broken.
[[nodiscard]] std::size_t broken_leak_chains(
    const SpanTimeline& timeline, const std::vector<LeakRecord>& records);

}  // namespace lookaside::obs
