// Structured observability events — the shared vocabulary for everything the
// simulator can observe about one resolution.
//
// The paper's entire result is an observation problem: the DLV operator's
// log is the adversary's view, and every figure is derived from which
// queries crossed which hop, when, and how many bytes they carried. An
// Event is one such crossing (or resolver-internal decision), tagged with
// the simulation timestamp and the id of the resolution span it belongs to,
// so the adversary's view, the overhead tables and the latency breakdown
// all come from one stream instead of ad-hoc per-layer structures.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dns/rr_type.h"

namespace lookaside::obs {

/// What one event records. The dnstap-style capture kinds (stub_query,
/// upstream_query, response) carry bytes and latency; the resolver-internal
/// kinds (cache_hit, nsec_suppression, validation, dlv_lookup) carry a
/// detail label; dlv_observation is the registry-side adversary view tagged
/// Case-1/Case-2 at the source; authority is the server-side outcome count.
enum class EventKind : std::uint8_t {
  kStubQuery,        // a resolution started on behalf of a stub
  kUpstreamQuery,    // recursive -> authoritative/DLV query packet
  kResponse,         // response packet (upstream or stub-facing)
  kCacheHit,         // positive or negative cache answered a fetch
  kNsecSuppression,  // aggressive NSEC / negative cache saved a DLV query
  kValidation,       // chain-of-trust outcome for one resolution
  kDlvLookup,        // look-aside activity (query sent, found, suppressed)
  kDlvObservation,   // what the DLV operator saw (Case-1 / Case-2)
  kAuthority,        // authoritative-server outcome (answer/referral/...)
  kRetry,            // an exchange attempt failed and will be resent
  kFaultInjected,    // the network's fault injector fired (detail = cause)
  kServerMarkedDead, // retry schedule exhausted; server in holddown
  kClientQuery,      // frontend intake: one wire query from one client
  kClientResponse,   // frontend completion (detail = resolved/coalesced/...)
  kCoalesceJoin,     // a client query joined an in-flight resolver span
  kLeakCause,        // why a DLV query is about to leave the resolver
  kCacheEvicted,     // the byte-cap evicted a cache entry (detail = section)
};

inline constexpr int kEventKindCount = 17;

/// Stable lower-snake name ("upstream_query"); used in JSONL and tables.
[[nodiscard]] const char* event_kind_name(EventKind kind);

/// Reverse mapping; returns false for unknown names.
[[nodiscard]] bool event_kind_from_name(std::string_view name, EventKind* out);

/// One observability event. Fields that do not apply to a kind stay at
/// their defaults (empty string / zero) and are still serialized, keeping
/// the JSONL schema flat and fixed.
struct Event {
  std::uint64_t time_us = 0;   // simulation timestamp
  std::uint64_t span_id = 0;   // resolution span (0 = outside any span)
  std::uint64_t parent_span_id = 0;  // enclosing span (0 = root / none)
  std::uint64_t query_id = 0;  // trace context: originating client query
  std::uint64_t client = 0;    // 1-based client tag (0 = no client context)
  EventKind kind = EventKind::kStubQuery;
  std::string name;            // qname / domain, dotted text
  std::string server;          // endpoint id ("root", "tld:com", "dlv:...")
  dns::RRType qtype = dns::RRType::kA;
  dns::RCode rcode = dns::RCode::kNoError;
  std::uint64_t bytes = 0;       // wire bytes of the packet (capture kinds)
  std::uint64_t latency_us = 0;  // round trip (responses) / span duration
  std::string detail;            // kind-specific label ("secure", "2", ...)
};

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Serializes `event` as one JSONL line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const Event& event);

/// Coarse server classification from an endpoint id, used for per-phase
/// latency grouping and metric labels: "root", "tld", "sld", "dlv",
/// "recursive", "arpa", "stub" or "other".
[[nodiscard]] std::string server_class(std::string_view endpoint_id);

}  // namespace lookaside::obs
