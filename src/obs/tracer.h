// The Tracer: event emission front-end threaded through the stack.
//
// Layers (resolver, DLV registry, zone authorities) hold a nullable
// Tracer*; a null tracer costs one branch per instrumentation point, so
// un-instrumented runs pay nothing. The tracer stamps events with the
// simulation clock, tracks the current resolution span, fans events out to
// every attached sink, and can bridge a sim::Network's packet stream into
// the event model (upstream_query/response events with byte and RTT
// accounting taken from the network's own records — one code path, so the
// trace can never disagree with the counters).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_sink.h"
#include "sim/clock.h"

namespace lookaside::sim {
class Network;
}

namespace lookaside::obs {

class Tracer {
 public:
  /// Adds a sink; every subsequent event is delivered to it.
  void add_sink(std::shared_ptr<TraceSink> sink);

  /// Installs the simulation clock used to stamp events whose time is 0.
  void attach_clock(const sim::SimClock& clock) { clock_ = &clock; }

  /// Installs a packet observer on `network` that converts upstream
  /// exchanges into kUpstreamQuery / kResponse events, and a fault
  /// observer that surfaces every injected fault as a kFaultInjected
  /// event (detail = cause), so chaos runs are visible on timelines.
  /// Packets on the stub side of `resolver_id` are skipped — the resolver
  /// emits richer stub-level events itself.
  void attach_network(sim::Network& network,
                      std::string resolver_id = "recursive");

  /// Opens a new resolution span and makes it current. Spans nest (a
  /// stack); the new span's parent is the previously-current span, and
  /// events emitted while it is current carry that lineage.
  std::uint64_t begin_span();

  /// Closes `span_id`, restoring the previous current span.
  void end_span(std::uint64_t span_id);

  [[nodiscard]] std::uint64_t current_span() const {
    return span_stack_.empty() ? 0 : span_stack_.back().id;
  }

  /// Parent of an *open* span (0 when unknown or root).
  [[nodiscard]] std::uint64_t parent_of(std::uint64_t span_id) const;

  /// Enters a client-query trace context: every event emitted until the
  /// matching pop_query() is stamped with `query_id` and `client` (1-based;
  /// 0 means "no client"). Contexts nest like spans.
  void push_query(std::uint64_t query_id, std::uint64_t client);
  void pop_query();
  [[nodiscard]] bool in_query() const { return !query_stack_.empty(); }
  [[nodiscard]] std::uint64_t current_query_id() const {
    return query_stack_.empty() ? 0 : query_stack_.back().query_id;
  }
  [[nodiscard]] std::uint64_t current_client() const {
    return query_stack_.empty() ? 0 : query_stack_.back().client;
  }

  [[nodiscard]] std::uint64_t now_us() const {
    return clock_ == nullptr ? 0 : clock_->now_us();
  }

  /// Delivers `event` to every sink. A zero time_us is stamped with the
  /// attached clock; a zero span_id inherits the current span; a zero
  /// parent_span_id inherits the open parent of the (possibly inherited)
  /// span; zero query_id/client inherit the current query context.
  void emit(Event event);

  void flush();

  [[nodiscard]] bool has_sinks() const { return !sinks_.empty(); }
  [[nodiscard]] std::uint64_t events_emitted() const { return emitted_; }

 private:
  struct SpanFrame {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
  };
  struct QueryFrame {
    std::uint64_t query_id = 0;
    std::uint64_t client = 0;
  };

  std::vector<std::shared_ptr<TraceSink>> sinks_;
  const sim::SimClock* clock_ = nullptr;
  std::vector<SpanFrame> span_stack_;
  std::vector<QueryFrame> query_stack_;
  std::uint64_t next_span_ = 1;
  std::uint64_t emitted_ = 0;
};

}  // namespace lookaside::obs
