#include "obs/tracer.h"

#include <algorithm>

#include "sim/network.h"

namespace lookaside::obs {

void Tracer::add_sink(std::shared_ptr<TraceSink> sink) {
  if (sink != nullptr) sinks_.push_back(std::move(sink));
}

void Tracer::attach_network(sim::Network& network, std::string resolver_id) {
  network.add_observer(
      [this, resolver_id = std::move(resolver_id)](
          const sim::PacketRecord& packet) {
        if (packet.is_query) {
          // Only the recursive resolver's outbound queries are "upstream";
          // stub-side packets are traced by the resolver itself.
          if (packet.from != resolver_id) return;
          Event event;
          event.kind = EventKind::kUpstreamQuery;
          event.time_us = packet.time_us;
          event.span_id = current_span();
          if (packet.has_question) {
            event.name = packet.qname.to_text();
            event.qtype = packet.qtype;
          }
          event.server = packet.to;
          event.bytes = packet.bytes;
          emit(std::move(event));
        } else {
          if (packet.to != resolver_id) return;
          Event event;
          event.kind = EventKind::kResponse;
          event.time_us = packet.time_us;
          event.span_id = current_span();
          if (packet.has_question) {
            event.name = packet.qname.to_text();
            event.qtype = packet.qtype;
          }
          event.server = packet.from;
          event.bytes = packet.bytes;
          event.rcode = packet.rcode;
          event.latency_us = packet.rtt_us;
          emit(std::move(event));
        }
      });
  network.add_fault_observer([this](const sim::FaultNotice& notice) {
    Event event;
    event.kind = EventKind::kFaultInjected;
    event.time_us = notice.time_us;
    event.span_id = current_span();
    if (notice.has_question) {
      event.name = notice.qname.to_text();
      event.qtype = notice.qtype;
    }
    event.server = notice.endpoint;
    event.detail = notice.cause;
    emit(std::move(event));
  });
}

std::uint64_t Tracer::begin_span() {
  const std::uint64_t id = next_span_++;
  span_stack_.push_back({id, current_span()});
  return id;
}

void Tracer::end_span(std::uint64_t span_id) {
  // Normal case: the span being ended is the innermost one.
  if (!span_stack_.empty() && span_stack_.back().id == span_id) {
    span_stack_.pop_back();
    return;
  }
  span_stack_.erase(
      std::remove_if(span_stack_.begin(), span_stack_.end(),
                     [span_id](const SpanFrame& frame) {
                       return frame.id == span_id;
                     }),
      span_stack_.end());
}

std::uint64_t Tracer::parent_of(std::uint64_t span_id) const {
  for (auto it = span_stack_.rbegin(); it != span_stack_.rend(); ++it) {
    if (it->id == span_id) return it->parent;
  }
  return 0;
}

void Tracer::push_query(std::uint64_t query_id, std::uint64_t client) {
  query_stack_.push_back({query_id, client});
}

void Tracer::pop_query() {
  if (!query_stack_.empty()) query_stack_.pop_back();
}

void Tracer::emit(Event event) {
  if (sinks_.empty()) return;
  if (event.time_us == 0) event.time_us = now_us();
  if (event.span_id == 0) event.span_id = current_span();
  if (event.parent_span_id == 0) {
    event.parent_span_id = parent_of(event.span_id);
  }
  if (event.query_id == 0) event.query_id = current_query_id();
  if (event.client == 0) event.client = current_client();
  ++emitted_;
  for (const std::shared_ptr<TraceSink>& sink : sinks_) {
    sink->on_event(event);
  }
}

void Tracer::flush() {
  for (const std::shared_ptr<TraceSink>& sink : sinks_) sink->flush();
}

}  // namespace lookaside::obs
