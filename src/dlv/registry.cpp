#include "dlv/registry.h"

#include "crypto/sha256.h"
#include "obs/tracer.h"

namespace lookaside::dlv {

namespace {

dns::SoaRdata registry_soa(const dns::Name& apex, std::uint32_t negative_ttl) {
  dns::SoaRdata soa;
  soa.primary_ns = apex.with_prefix_label("ns");
  soa.responsible = apex.with_prefix_label("hostmaster");
  soa.serial = 2026070500;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum_ttl = negative_ttl;
  return soa;
}

zone::Zone make_empty_zone(const DlvRegistry::Options& options) {
  zone::Zone out(options.apex, registry_soa(options.apex, options.negative_ttl),
                 options.record_ttl);
  out.add(dns::ResourceRecord::make(
      options.apex, options.record_ttl,
      dns::NsRdata{options.apex.with_prefix_label("ns")}));
  return out;
}

}  // namespace

DlvRegistry::DlvRegistry(Options options) : options_(std::move(options)) {
  crypto::SplitMix64 rng(options_.seed);
  keys_ = zone::ZoneKeys::generate(options_.key_bits, rng);
  rebuild_zone();
}

void DlvRegistry::rebuild_zone() {
  zone_ = std::make_shared<zone::SignedZone>(make_empty_zone(options_), *keys_);
  if (options_.nsec3_enabled) {
    zone_->enable_nsec3(
        zone::Nsec3Params{options_.nsec3_iterations, options_.nsec3_salt});
  }
  authority_ = std::make_unique<server::ZoneAuthority>(endpoint_id(), zone_);
}

dns::Name clear_dlv_name(const dns::Name& domain, const dns::Name& apex) {
  return domain.concat(apex);
}

dns::Name hashed_dlv_name(const dns::Name& domain, const dns::Name& apex) {
  // One hex label of the truncated SHA-256 digest (128 bits is plenty to
  // avoid collisions and keeps the label under 63 octets).
  const dns::Bytes digest = crypto::Sha256::digest(domain.to_text());
  const dns::Bytes truncated(digest.begin(), digest.begin() + 16);
  return apex.with_prefix_label(crypto::to_hex(truncated));
}

dns::Name DlvRegistry::dlv_name_for(const dns::Name& domain) const {
  return options_.hashed_registration
             ? hashed_dlv_name(domain, options_.apex)
             : clear_dlv_name(domain, options_.apex);
}

void DlvRegistry::deposit(const dns::Name& domain, const dns::DsRdata& ds) {
  const dns::Name owner = dlv_name_for(domain);
  zone_->zone().add(dns::ResourceRecord::make_typed(
      owner, dns::RRType::kDlv, options_.record_ttl, dns::Rdata{ds}));
  zone_->invalidate_signature_cache();
  ++record_count_;
}

bool DlvRegistry::has_record(const dns::Name& domain) const {
  return zone_->zone().find(dlv_name_for(domain), dns::RRType::kDlv) != nullptr;
}

void DlvRegistry::remove_all_records() {
  // Rebuilding keeps the signing keys (and NSEC3 mode) of the original zone.
  rebuild_zone();
  record_count_ = 0;
}

const dns::DnskeyRdata& DlvRegistry::trust_anchor() const {
  return keys_->ksk_record();
}

std::string DlvRegistry::endpoint_id() const {
  return "dlv:" + options_.apex.internal_text();
}

dns::Message DlvRegistry::handle_query(const dns::Message& query) {
  if (!query.questions.empty()) {
    const dns::Question& question = query.question();
    // Record what the operator can see. DNSKEY/SOA queries against the apex
    // are infrastructure, not leakage; everything else is observed.
    if (question.name != options_.apex) {
      Observation observation;
      observation.time_us = clock_ ? clock_->now_us() : 0;
      observation.query_name = question.name;
      observation.qtype = question.type;
      observation.had_record =
          zone_->zone().find(question.name, dns::RRType::kDlv) != nullptr;
      if (!options_.hashed_registration &&
          question.name.is_subdomain_of(options_.apex) &&
          question.name != options_.apex) {
        observation.domain = question.name.without_suffix(options_.apex);
      }
      ++total_queries_;
      if (observation.had_record) ++queries_with_record_;
      if (tracer_ != nullptr) {
        obs::Event event;
        event.time_us = observation.time_us;
        event.kind = obs::EventKind::kDlvObservation;
        event.name = observation.domain.is_root()
                         ? observation.query_name.to_text()
                         : observation.domain.to_text();
        event.server = endpoint_id();
        event.qtype = observation.qtype;
        event.detail = observation.had_record ? "1" : "2";
        tracer_->emit(std::move(event));
      }
      if (observer_) observer_(observation);
      if (store_observations_) observations_.push_back(std::move(observation));
    }
  }
  return authority_->handle_query(query);
}

}  // namespace lookaside::dlv
