// DLV registry server (RFC 5074 / RFC 4431): the third party at the center
// of the paper.
//
// The registry hosts a signed zone under its apex (e.g. dlv.isc.org). Zone
// owners deposit DS-shaped DLV records named <domain>.<apex>; validators
// query type 32769. Every query is recorded in the observation log — that
// log IS the adversary's view, and classifying it into Case-1/Case-2 is the
// paper's leakage measurement.
//
// The registry also implements the paper's §6.2.2 privacy-preserving mode
// (hashed registration) and the ISC phase-out state (empty zone kept
// running, §7.3.2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "server/zone_authority.h"
#include "sim/network.h"
#include "zone/keys.h"
#include "zone/signed_zone.h"

namespace lookaside::obs {
class Tracer;
}

namespace lookaside::dlv {

/// RFC 5074 name mapping: <domain>.<apex> ("example.com.dlv.isc.org").
[[nodiscard]] dns::Name clear_dlv_name(const dns::Name& domain,
                                       const dns::Name& apex);

/// §6.2.2 privacy-preserving mapping: hex(SHA-256(domain))[:32].<apex>.
/// Both the registrar and the validator compute this independently.
[[nodiscard]] dns::Name hashed_dlv_name(const dns::Name& domain,
                                        const dns::Name& apex);

/// One query as seen by the DLV operator.
struct Observation {
  std::uint64_t time_us = 0;
  dns::Name query_name;            // e.g. example.com.dlv.isc.org
  dns::Name domain;                // recovered domain (empty in hashed mode)
  dns::RRType qtype = dns::RRType::kDlv;
  bool had_record = false;         // a DLV RRset existed at the exact name
};

/// The DLV registry: an authoritative server plus deposit/observation APIs.
class DlvRegistry : public sim::Endpoint {
 public:
  struct Options {
    dns::Name apex = dns::Name::parse("dlv.isc.org");
    std::size_t key_bits = 512;
    std::uint64_t seed = 0xD17;
    std::uint32_t record_ttl = 3600;
    std::uint32_t negative_ttl = 3600;
    /// §6.2.2: register and serve crypto_hash(domain) instead of the name.
    bool hashed_registration = false;
    /// RFC 5155: serve NSEC3 hashed denial instead of plain NSEC. The
    /// iteration count is the attacker-relevant CPU knob (RFC 9276 wants 0;
    /// historical zones shipped hundreds).
    bool nsec3_enabled = false;
    std::uint16_t nsec3_iterations = 0;
    crypto::Bytes nsec3_salt;
  };

  explicit DlvRegistry(Options options);

  // -- Registration side (what a zone owner does) --------------------------

  /// Deposits `ds` for `domain`. In hashed mode the owner label becomes
  /// hex(SHA-256(domain)) truncated to 32 hex chars.
  void deposit(const dns::Name& domain, const dns::DsRdata& ds);

  /// True when a DLV record for `domain` is registered.
  [[nodiscard]] bool has_record(const dns::Name& domain) const;

  /// ISC's 2017 phase-out: drop all delegated zones but keep answering
  /// (every subsequent query is Case-2 leakage by construction).
  void remove_all_records();

  [[nodiscard]] std::size_t record_count() const { return record_count_; }

  // -- Query-name mapping (shared with the resolver) -----------------------

  /// DLV owner name a validator should query for `domain`
  /// (clear: domain+apex; hashed: hex digest label + apex).
  [[nodiscard]] dns::Name dlv_name_for(const dns::Name& domain) const;

  [[nodiscard]] const dns::Name& apex() const { return options_.apex; }
  [[nodiscard]] bool hashed_registration() const {
    return options_.hashed_registration;
  }

  /// The registry's KSK record — the "DLV trust anchor" resolvers configure.
  [[nodiscard]] const dns::DnskeyRdata& trust_anchor() const;

  // -- sim::Endpoint --------------------------------------------------------

  [[nodiscard]] std::string endpoint_id() const override;
  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override;

  // -- Adversary's view -----------------------------------------------------

  [[nodiscard]] const std::vector<Observation>& observations() const {
    return observations_;
  }
  void clear_observations() { observations_.clear(); }
  /// Leave accounting on but stop storing per-query observations (for
  /// million-domain runs, where counts are tracked by the analyzer instead).
  void set_store_observations(bool store) { store_observations_ = store; }
  /// Streaming hook invoked for every observation regardless of storage.
  void set_observer(std::function<void(const Observation&)> observer) {
    observer_ = std::move(observer);
  }

  /// Running totals (kept even when storage is off).
  [[nodiscard]] std::uint64_t total_queries() const { return total_queries_; }
  [[nodiscard]] std::uint64_t queries_with_record() const {
    return queries_with_record_;
  }

  /// Needs a clock to timestamp observations; optional.
  void attach_clock(const sim::SimClock& clock) { clock_ = &clock; }

  /// Attaches a structured tracer (nullable). Separate from set_observer —
  /// the analyzer's streaming hook and the trace stream coexist. Every
  /// observation is emitted as a kDlvObservation event tagged Case-1
  /// (record deposited) or Case-2 (leak).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void rebuild_zone();

  Options options_;
  std::optional<zone::ZoneKeys> keys_;  // survives remove_all_records()
  std::shared_ptr<zone::SignedZone> zone_;
  std::unique_ptr<server::ZoneAuthority> authority_;
  std::vector<Observation> observations_;
  bool store_observations_ = true;
  std::function<void(const Observation&)> observer_;
  std::uint64_t total_queries_ = 0;
  std::uint64_t queries_with_record_ = 0;
  std::size_t record_count_ = 0;
  const sim::SimClock* clock_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace lookaside::dlv
