// NSEC3 hashed-denial primitives (RFC 5155).
//
// The hash is the iterated SHA-1 of RFC 5155 §5 over the canonical
// (lowercased, uncompressed) wire form of the owner name:
//
//   IH(salt, x, 0)   = H(x || salt)
//   IH(salt, x, k)   = H(IH(salt, x, k-1) || salt)   for k > 0
//
// so `iterations` counts *additional* hash invocations beyond the first —
// the attacker-controlled CPU knob this PR weaponizes and defends.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/bytes.h"
#include "dns/name.h"

namespace lookaside::zone {

/// Cost accounting helper: hash invocations performed by one nsec3_hash call.
[[nodiscard]] constexpr std::uint64_t nsec3_hash_ops(std::uint16_t iterations) {
  return static_cast<std::uint64_t>(iterations) + 1;
}

/// RFC 5155 §5 iterated hash of `name` (canonical wire form). Returns the raw
/// 20-byte SHA-1 digest.
[[nodiscard]] crypto::Bytes nsec3_hash(const dns::Name& name,
                                       const crypto::Bytes& salt,
                                       std::uint16_t iterations);

/// Base32hex (RFC 4648 §7, lowercase, no padding needed for 20-byte input)
/// used for NSEC3 owner labels: 20 digest bytes become 32 characters.
[[nodiscard]] std::string base32hex_encode(const crypto::Bytes& data);

/// Inverse of base32hex_encode; accepts either case. Throws
/// std::invalid_argument on characters outside the base32hex alphabet or an
/// input length whose bit count does not fall on a byte boundary.
[[nodiscard]] crypto::Bytes base32hex_decode(std::string_view text);

/// The NSEC3 owner name for `name` in the zone rooted at `apex`:
/// base32hex(nsec3_hash(name)) prefixed onto the apex.
[[nodiscard]] dns::Name nsec3_owner(const dns::Name& name,
                                    const dns::Name& apex,
                                    const crypto::Bytes& salt,
                                    std::uint16_t iterations);

}  // namespace lookaside::zone
