#include "zone/signed_zone.h"

#include <algorithm>

#include "crypto/dnssec_algo.h"

namespace lookaside::zone {

SignedZone::SignedZone(Zone zone, ZoneKeys keys, Policy policy)
    : zone_(std::move(zone)),
      keys_(std::move(keys)),
      policy_(policy),
      dnskeys_(zone_.apex(), dns::RRType::kDnskey) {
  dnskeys_.add(dns::ResourceRecord::make(zone_.apex(), 3600,
                                         dns::Rdata{keys_.zsk_record()}));
  dnskeys_.add(dns::ResourceRecord::make(zone_.apex(), 3600,
                                         dns::Rdata{keys_.ksk_record()}));
}

dns::DsRdata SignedZone::ds_for_parent() const {
  return make_ds(zone_.apex(), keys_.ksk_record());
}

dns::ResourceRecord SignedZone::rrsig_for(const dns::RRset& rrset) {
  const bool is_dnskey = rrset.type() == dns::RRType::kDnskey;

  dns::RrsigRdata rrsig;
  rrsig.type_covered = rrset.type();
  rrsig.algorithm = 8;
  rrsig.labels = static_cast<std::uint8_t>(rrset.name().label_count());
  rrsig.original_ttl = rrset.ttl();
  rrsig.expiration = policy_.expiration;
  rrsig.inception = policy_.inception;
  rrsig.key_tag = is_dnskey ? keys_.ksk_tag() : keys_.zsk_tag();
  rrsig.signer = zone_.apex();

  const auto cache_key =
      std::make_pair(owner_arena_.intern(rrset.name()), rrset.type());
  const auto it = corrupt_ ? signature_cache_.end()
                           : signature_cache_.find(cache_key);
  if (it != signature_cache_.end()) {
    rrsig.signature = it->second;
  } else {
    const dns::Bytes signed_data = dns::rrsig_signed_data(rrsig, rrset);
    const crypto::RsaPrivateKey& key =
        is_dnskey ? keys_.ksk_private() : keys_.zsk_private();
    rrsig.signature = crypto::sign_message(key, signed_data);
    if (corrupt_) {
      rrsig.signature[rrsig.signature.size() / 2] ^= 0x01;
    } else {
      signature_cache_.emplace(cache_key, rrsig.signature);
    }
  }
  return dns::ResourceRecord::make(rrset.name(), rrset.ttl(),
                                   dns::Rdata{rrsig});
}

dns::ResourceRecord SignedZone::make_nsec(const dns::Name& owner) {
  dns::NsecRdata nsec;
  nsec.next = zone_.canonical_successor(owner);
  nsec.types = zone_.types_at(owner);
  // The DNSKEY rrset lives beside the zone (dnskeys_), not inside it, so
  // types_at() misses it; an apex NSEC that omits DNSKEY would let an
  // aggressive-synthesis resolver deny the zone's own keys from cache.
  if (owner == zone_.apex() &&
      std::find(nsec.types.begin(), nsec.types.end(), dns::RRType::kDnskey) ==
          nsec.types.end()) {
    nsec.types.push_back(dns::RRType::kDnskey);
  }
  nsec.types.push_back(dns::RRType::kRrsig);
  nsec.types.push_back(dns::RRType::kNsec);
  return dns::ResourceRecord::make(owner, zone_.negative_ttl(),
                                   dns::Rdata{nsec});
}

NsecProof SignedZone::nxdomain_proof(const dns::Name& qname) {
  const dns::Name& predecessor = zone_.canonical_predecessor(qname);
  dns::ResourceRecord nsec = make_nsec(predecessor);

  dns::RRset nsec_set(predecessor, dns::RRType::kNsec);
  nsec_set.add(nsec);
  dns::ResourceRecord rrsig = rrsig_for(nsec_set);
  return NsecProof{std::move(nsec), std::move(rrsig)};
}

NsecProof SignedZone::nodata_proof(const dns::Name& qname) {
  dns::ResourceRecord nsec = make_nsec(qname);
  dns::RRset nsec_set(qname, dns::RRType::kNsec);
  nsec_set.add(nsec);
  dns::ResourceRecord rrsig = rrsig_for(nsec_set);
  return NsecProof{std::move(nsec), std::move(rrsig)};
}

void SignedZone::enable_nsec3(Nsec3Params params) {
  nsec3_params_ = std::move(params);
  nsec3_enabled_ = true;
  nsec3_dirty_ = true;
  if (zone_.find(zone_.apex(), dns::RRType::kNsec3Param) == nullptr) {
    dns::Nsec3ParamRdata param;
    param.iterations = nsec3_params_.iterations;
    param.salt = nsec3_params_.salt;
    zone_.add(dns::ResourceRecord::make(zone_.apex(), zone_.negative_ttl(),
                                        dns::Rdata{param}));
  }
  invalidate_signature_cache();
}

void SignedZone::rebuild_nsec3_chain() {
  nsec3_chain_.clear();
  for (const dns::Name& owner : zone_.owner_names()) {
    crypto::Bytes digest =
        nsec3_hash(owner, nsec3_params_.salt, nsec3_params_.iterations);
    dns::Name hashed_owner =
        zone_.apex().with_prefix_label(base32hex_encode(digest));
    nsec3_chain_.insert_or_assign(
        std::move(digest), Nsec3Entry{owner, std::move(hashed_owner)});
  }
  nsec3_dirty_ = false;
}

SignedZone::Nsec3Chain::const_iterator SignedZone::nsec3_cover(
    const crypto::Bytes& digest) const {
  // Greatest chain hash <= digest; hashes below the first entry are covered
  // by the last-to-first wraparound span (RFC 5155 §3.1.7 last NSEC3).
  auto it = nsec3_chain_.upper_bound(digest);
  if (it == nsec3_chain_.begin()) return std::prev(nsec3_chain_.end());
  return std::prev(it);
}

NsecProof SignedZone::make_nsec3_proof(Nsec3Chain::const_iterator it) {
  auto next = std::next(it);
  if (next == nsec3_chain_.end()) next = nsec3_chain_.begin();

  dns::Nsec3Rdata nsec3;
  nsec3.iterations = nsec3_params_.iterations;
  nsec3.salt = nsec3_params_.salt;
  nsec3.next_hashed = next->first;
  nsec3.types = zone_.types_at(it->second.original);
  nsec3.types.push_back(dns::RRType::kRrsig);

  dns::ResourceRecord record = dns::ResourceRecord::make(
      it->second.hashed_owner, zone_.negative_ttl(), dns::Rdata{nsec3});
  dns::RRset nsec3_set(it->second.hashed_owner, dns::RRType::kNsec3);
  nsec3_set.add(record);
  dns::ResourceRecord rrsig = rrsig_for(nsec3_set);
  return NsecProof{std::move(record), std::move(rrsig)};
}

std::vector<NsecProof> SignedZone::nsec3_nxdomain_proof(
    const dns::Name& qname) {
  if (nsec3_dirty_) rebuild_nsec3_chain();

  // Closest encloser: longest existing ancestor (the apex at worst).
  dns::Name closest = qname;
  while (closest.label_count() > zone_.apex().label_count() &&
         !zone_.has_name(closest)) {
    closest = closest.parent();
  }
  dns::Name next_closer = qname;
  while (next_closer.label_count() > closest.label_count() + 1) {
    next_closer = next_closer.parent();
  }

  const auto& params = nsec3_params_;
  std::vector<NsecProof> proofs;
  std::vector<Nsec3Chain::const_iterator> picks;
  picks.push_back(
      nsec3_cover(nsec3_hash(closest, params.salt, params.iterations)));
  picks.push_back(
      nsec3_cover(nsec3_hash(next_closer, params.salt, params.iterations)));
  picks.push_back(nsec3_cover(nsec3_hash(closest.with_prefix_label("*"),
                                         params.salt, params.iterations)));
  for (auto it : picks) {
    bool seen = false;
    for (const NsecProof& p : proofs) {
      if (p.nsec.name == it->second.hashed_owner) { seen = true; break; }
    }
    if (!seen) proofs.push_back(make_nsec3_proof(it));
  }
  return proofs;
}

std::vector<NsecProof> SignedZone::nsec3_nodata_proof(const dns::Name& qname) {
  if (nsec3_dirty_) rebuild_nsec3_chain();
  std::vector<NsecProof> proofs;
  proofs.push_back(make_nsec3_proof(nsec3_cover(
      nsec3_hash(qname, nsec3_params_.salt, nsec3_params_.iterations))));
  return proofs;
}

}  // namespace lookaside::zone
