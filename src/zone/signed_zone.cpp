#include "zone/signed_zone.h"

#include "crypto/dnssec_algo.h"

namespace lookaside::zone {

SignedZone::SignedZone(Zone zone, ZoneKeys keys, Policy policy)
    : zone_(std::move(zone)),
      keys_(std::move(keys)),
      policy_(policy),
      dnskeys_(zone_.apex(), dns::RRType::kDnskey) {
  dnskeys_.add(dns::ResourceRecord::make(zone_.apex(), 3600,
                                         dns::Rdata{keys_.zsk_record()}));
  dnskeys_.add(dns::ResourceRecord::make(zone_.apex(), 3600,
                                         dns::Rdata{keys_.ksk_record()}));
}

dns::DsRdata SignedZone::ds_for_parent() const {
  return make_ds(zone_.apex(), keys_.ksk_record());
}

dns::ResourceRecord SignedZone::rrsig_for(const dns::RRset& rrset) {
  const bool is_dnskey = rrset.type() == dns::RRType::kDnskey;

  dns::RrsigRdata rrsig;
  rrsig.type_covered = rrset.type();
  rrsig.algorithm = 8;
  rrsig.labels = static_cast<std::uint8_t>(rrset.name().label_count());
  rrsig.original_ttl = rrset.ttl();
  rrsig.expiration = policy_.expiration;
  rrsig.inception = policy_.inception;
  rrsig.key_tag = is_dnskey ? keys_.ksk_tag() : keys_.zsk_tag();
  rrsig.signer = zone_.apex();

  const auto cache_key =
      std::make_pair(rrset.name().internal_text(), rrset.type());
  const auto it = corrupt_ ? signature_cache_.end()
                           : signature_cache_.find(cache_key);
  if (it != signature_cache_.end()) {
    rrsig.signature = it->second;
  } else {
    const dns::Bytes signed_data = dns::rrsig_signed_data(rrsig, rrset);
    const crypto::RsaPrivateKey& key =
        is_dnskey ? keys_.ksk_private() : keys_.zsk_private();
    rrsig.signature = crypto::sign_message(key, signed_data);
    if (corrupt_) {
      rrsig.signature[rrsig.signature.size() / 2] ^= 0x01;
    } else {
      signature_cache_.emplace(cache_key, rrsig.signature);
    }
  }
  return dns::ResourceRecord::make(rrset.name(), rrset.ttl(),
                                   dns::Rdata{rrsig});
}

dns::ResourceRecord SignedZone::make_nsec(const dns::Name& owner) {
  dns::NsecRdata nsec;
  nsec.next = zone_.canonical_successor(owner);
  nsec.types = zone_.types_at(owner);
  nsec.types.push_back(dns::RRType::kRrsig);
  nsec.types.push_back(dns::RRType::kNsec);
  return dns::ResourceRecord::make(owner, zone_.negative_ttl(),
                                   dns::Rdata{nsec});
}

NsecProof SignedZone::nxdomain_proof(const dns::Name& qname) {
  const dns::Name& predecessor = zone_.canonical_predecessor(qname);
  dns::ResourceRecord nsec = make_nsec(predecessor);

  dns::RRset nsec_set(predecessor, dns::RRType::kNsec);
  nsec_set.add(nsec);
  dns::ResourceRecord rrsig = rrsig_for(nsec_set);
  return NsecProof{std::move(nsec), std::move(rrsig)};
}

NsecProof SignedZone::nodata_proof(const dns::Name& qname) {
  dns::ResourceRecord nsec = make_nsec(qname);
  dns::RRset nsec_set(qname, dns::RRType::kNsec);
  nsec_set.add(nsec);
  dns::ResourceRecord rrsig = rrsig_for(nsec_set);
  return NsecProof{std::move(nsec), std::move(rrsig)};
}

}  // namespace lookaside::zone
