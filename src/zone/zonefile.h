// RFC 1035-style master-file parser: turns zone text into a Zone.
//
// Supports the subset the simulator speaks: $ORIGIN, $TTL, relative and
// absolute owner names, '@', blank-owner continuation, comments, and the
// record types A, AAAA, NS, CNAME, PTR, MX, TXT, SOA, DS, DLV. DNSSEC
// records beyond DS (RRSIG/NSEC/DNSKEY) are generated, not parsed: signing
// is SignedZone's job.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "zone/zone.h"

namespace lookaside::zone {

/// One parse diagnostic (1-based line numbers).
struct ZoneFileError {
  int line = 0;
  std::string message;
};

/// Parse outcome: a zone or errors.
struct ZoneFileResult {
  std::optional<Zone> zone;
  std::vector<ZoneFileError> errors;

  [[nodiscard]] bool ok() const { return zone.has_value() && errors.empty(); }
};

/// Parses master-file `text`. The zone apex is taken from the SOA owner
/// (the first SOA record is mandatory). `default_origin` seeds $ORIGIN
/// handling before any $ORIGIN directive appears.
[[nodiscard]] ZoneFileResult parse_zone_file(
    std::string_view text, const dns::Name& default_origin = dns::Name::root());

/// Renders a zone back to master-file text (stable order, absolute names).
[[nodiscard]] std::string render_zone_file(const Zone& zone);

}  // namespace lookaside::zone
