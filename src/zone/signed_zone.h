// DNSSEC-signed zone: lazy RRSIG generation with caching, NSEC denial
// proofs, and failure-injection hooks.
//
// Signatures are computed on first use and cached. This is how the simulator
// affords real RSA signatures at million-domain scale: a zone only ever signs
// the RRsets that queries actually touch (the paper's workloads touch a
// small, heavily-reused set of NSEC ranges thanks to canonical-order
// clustering).
#pragma once

#include <map>
#include <utility>

#include "zone/keys.h"
#include "zone/zone.h"

namespace lookaside::zone {

/// A denial proof: the NSEC record plus its RRSIG.
struct NsecProof {
  dns::ResourceRecord nsec;
  dns::ResourceRecord rrsig;
};

/// Wraps a Zone with signing state.
class SignedZone {
 public:
  /// Signature validity window (absolute sim-seconds).
  struct Policy {
    std::uint32_t inception = 0;
    std::uint32_t expiration = 0x7FFFFFFF;
  };

  SignedZone(Zone zone, ZoneKeys keys) : SignedZone(std::move(zone), std::move(keys), Policy{}) {}
  SignedZone(Zone zone, ZoneKeys keys, Policy policy);

  [[nodiscard]] const Zone& zone() const { return zone_; }
  [[nodiscard]] Zone& zone() { return zone_; }
  [[nodiscard]] const ZoneKeys& keys() const { return keys_; }

  /// The apex DNSKEY RRset (ZSK + KSK).
  [[nodiscard]] const dns::RRset& dnskey_rrset() const { return dnskeys_; }

  /// DS RDATA the parent (or a DLV registry) should publish for this zone.
  [[nodiscard]] dns::DsRdata ds_for_parent() const;

  /// RRSIG record covering `rrset` (which must belong to this zone).
  /// DNSKEY RRsets are signed with the KSK, everything else with the ZSK.
  [[nodiscard]] dns::ResourceRecord rrsig_for(const dns::RRset& rrset);

  /// NSEC proof that `qname` does not exist (covering NSEC from the
  /// canonical predecessor).
  [[nodiscard]] NsecProof nxdomain_proof(const dns::Name& qname);

  /// NSEC proof that `qname` exists but `qtype` does not (exact-match NSEC
  /// whose type bitmap omits the type).
  [[nodiscard]] NsecProof nodata_proof(const dns::Name& qname);

  /// Failure injection: when set, emitted signatures are flipped in one byte
  /// so validators see bogus data (paper §2.2 "bogus" status).
  void set_corrupt_signatures(bool corrupt) { corrupt_ = corrupt; }
  [[nodiscard]] bool corrupt_signatures() const { return corrupt_; }

  /// Drops the signature cache (after zone mutation).
  void invalidate_signature_cache() { signature_cache_.clear(); }

  /// Cache statistics: number of distinct RRsets signed so far.
  [[nodiscard]] std::size_t signatures_computed() const {
    return signature_cache_.size();
  }

 private:
  [[nodiscard]] dns::ResourceRecord make_nsec(const dns::Name& owner);

  Zone zone_;
  ZoneKeys keys_;
  Policy policy_;
  dns::RRset dnskeys_;
  bool corrupt_ = false;
  // Cache key: (owner text, type). Signatures of corrupted zones are not
  // cached so toggling corruption mid-test behaves.
  std::map<std::pair<std::string, dns::RRType>, dns::Bytes> signature_cache_;
};

}  // namespace lookaside::zone
