// DNSSEC-signed zone: lazy RRSIG generation with caching, NSEC denial
// proofs, and failure-injection hooks.
//
// Signatures are computed on first use and cached. This is how the simulator
// affords real RSA signatures at million-domain scale: a zone only ever signs
// the RRsets that queries actually touch (the paper's workloads touch a
// small, heavily-reused set of NSEC ranges thanks to canonical-order
// clustering).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "dns/name_arena.h"
#include "zone/keys.h"
#include "zone/nsec3.h"
#include "zone/zone.h"

namespace lookaside::zone {

/// A denial proof: the NSEC (or NSEC3) record plus its RRSIG.
struct NsecProof {
  dns::ResourceRecord nsec;
  dns::ResourceRecord rrsig;
};

/// NSEC3 chain parameters (RFC 5155 §4). `iterations` is the CPU knob:
/// validators hash every denied qname iterations+1 times.
struct Nsec3Params {
  std::uint16_t iterations = 0;
  crypto::Bytes salt;
};

/// Wraps a Zone with signing state.
class SignedZone {
 public:
  /// Signature validity window (absolute sim-seconds).
  struct Policy {
    std::uint32_t inception = 0;
    std::uint32_t expiration = 0x7FFFFFFF;
  };

  SignedZone(Zone zone, ZoneKeys keys) : SignedZone(std::move(zone), std::move(keys), Policy{}) {}
  SignedZone(Zone zone, ZoneKeys keys, Policy policy);

  [[nodiscard]] const Zone& zone() const { return zone_; }
  [[nodiscard]] Zone& zone() { return zone_; }
  [[nodiscard]] const ZoneKeys& keys() const { return keys_; }

  /// The apex DNSKEY RRset (ZSK + KSK).
  [[nodiscard]] const dns::RRset& dnskey_rrset() const { return dnskeys_; }

  /// DS RDATA the parent (or a DLV registry) should publish for this zone.
  [[nodiscard]] dns::DsRdata ds_for_parent() const;

  /// RRSIG record covering `rrset` (which must belong to this zone).
  /// DNSKEY RRsets are signed with the KSK, everything else with the ZSK.
  [[nodiscard]] dns::ResourceRecord rrsig_for(const dns::RRset& rrset);

  /// NSEC proof that `qname` does not exist (covering NSEC from the
  /// canonical predecessor).
  [[nodiscard]] NsecProof nxdomain_proof(const dns::Name& qname);

  /// NSEC proof that `qname` exists but `qtype` does not (exact-match NSEC
  /// whose type bitmap omits the type).
  [[nodiscard]] NsecProof nodata_proof(const dns::Name& qname);

  /// Switches the zone to NSEC3 hashed denial: adds an NSEC3PARAM record at
  /// the apex and marks the hashed chain for (lazy) construction. Denial
  /// queries are then answered by nsec3_*_proof instead of the NSEC pair.
  void enable_nsec3(Nsec3Params params);
  [[nodiscard]] bool nsec3_enabled() const { return nsec3_enabled_; }
  [[nodiscard]] const Nsec3Params& nsec3_params() const {
    return nsec3_params_;
  }

  /// RFC 5155 §7.2.2 NXDOMAIN proof: matching NSEC3 for the closest
  /// encloser, covering NSEC3 for the next-closer name, covering NSEC3 for
  /// the wildcard at the closest encloser (deduplicated when ranges
  /// coincide).
  [[nodiscard]] std::vector<NsecProof> nsec3_nxdomain_proof(
      const dns::Name& qname);

  /// RFC 5155 §7.2.3/§7.2.4 NODATA proof: matching NSEC3 at `qname`.
  [[nodiscard]] std::vector<NsecProof> nsec3_nodata_proof(
      const dns::Name& qname);

  /// Failure injection: when set, emitted signatures are flipped in one byte
  /// so validators see bogus data (paper §2.2 "bogus" status).
  void set_corrupt_signatures(bool corrupt) { corrupt_ = corrupt; }
  [[nodiscard]] bool corrupt_signatures() const { return corrupt_; }

  /// Drops the signature cache (after zone mutation); the NSEC3 chain is
  /// also marked dirty so the next denial proof rebuilds it, keeping
  /// per-deposit cost O(1) instead of a rebuild per mutation. The owner
  /// arena goes with it — interned ids only live in the cache keys.
  void invalidate_signature_cache() {
    signature_cache_.clear();
    owner_arena_.clear();
    nsec3_dirty_ = true;
  }

  /// Cache statistics: number of distinct RRsets signed so far.
  [[nodiscard]] std::size_t signatures_computed() const {
    return signature_cache_.size();
  }

 private:
  /// One link of the hashed chain: the original owner it denies around.
  struct Nsec3Entry {
    dns::Name original;
    dns::Name hashed_owner;
  };
  // Keyed by raw digest: lexicographic Bytes order == numeric hash order.
  using Nsec3Chain = std::map<crypto::Bytes, Nsec3Entry>;

  [[nodiscard]] dns::ResourceRecord make_nsec(const dns::Name& owner);
  void rebuild_nsec3_chain();
  /// Proof for the chain entry at `it` (matching or covering `digest`).
  [[nodiscard]] NsecProof make_nsec3_proof(Nsec3Chain::const_iterator it);
  /// Chain entry whose span matches or covers `digest` (with wraparound).
  [[nodiscard]] Nsec3Chain::const_iterator nsec3_cover(
      const crypto::Bytes& digest) const;

  Zone zone_;
  ZoneKeys keys_;
  Policy policy_;
  dns::RRset dnskeys_;
  bool corrupt_ = false;
  bool nsec3_enabled_ = false;
  bool nsec3_dirty_ = false;
  Nsec3Params nsec3_params_;
  Nsec3Chain nsec3_chain_;
  // Cache key: (interned owner id, type) — a few hot owners key thousands
  // of signed RRsets, so the owner name is stored once in the arena and the
  // key is 8 bytes instead of a std::string copy per entry (§4k).
  // Signatures of corrupted zones are not cached so toggling corruption
  // mid-test behaves.
  dns::NameArena owner_arena_;
  std::map<std::pair<dns::NameId, dns::RRType>, dns::Bytes> signature_cache_;
};

}  // namespace lookaside::zone
