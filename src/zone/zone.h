// Authoritative zone data: RRsets keyed by (name, type) in RFC 4034
// canonical order, with the lookup semantics an authoritative server needs
// (answers, referrals at zone cuts, NXDOMAIN/NODATA with NSEC neighbors).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/name.h"
#include "dns/record.h"

namespace lookaside::zone {

/// Lookup outcome categories (pre-DNSSEC; the signed layer adds proofs).
enum class LookupKind {
  kAnswer,    // RRsets for (qname, qtype) or a CNAME at qname
  kReferral,  // delegation NS found below the apex
  kNoData,    // qname exists, qtype does not
  kNxDomain,  // qname does not exist
};

/// Result of Zone::lookup.
struct LookupResult {
  LookupKind kind = LookupKind::kNxDomain;
  /// kAnswer: the answer RRset (or CNAME). kReferral: the delegation NS set.
  const dns::RRset* rrset = nullptr;
  /// kReferral: the owner of the delegation (zone cut).
  dns::Name cut;
  /// kReferral: DS RRset at the cut if the child has one registered.
  const dns::RRset* ds = nullptr;
};

/// One DNS zone's contents. Names are stored in canonical order so NSEC
/// chains and denial proofs fall out of map navigation.
class Zone {
 public:
  /// Creates a zone rooted at `apex`; a SOA record is synthesized from
  /// `soa` and stored at the apex.
  Zone(dns::Name apex, dns::SoaRdata soa, std::uint32_t soa_ttl = 3600);

  /// Adds a record; throws std::invalid_argument if the owner is outside
  /// the zone.
  void add(dns::ResourceRecord record);

  [[nodiscard]] const dns::Name& apex() const { return apex_; }
  [[nodiscard]] const dns::SoaRdata& soa() const { return soa_; }
  [[nodiscard]] const dns::RRset& soa_rrset() const;
  [[nodiscard]] std::uint32_t negative_ttl() const {
    return soa_.minimum_ttl;
  }

  /// True if any RRset exists at `name`.
  [[nodiscard]] bool has_name(const dns::Name& name) const;

  /// Exact-match RRset or nullptr.
  [[nodiscard]] const dns::RRset* find(const dns::Name& name,
                                       dns::RRType type) const;

  /// Full authoritative lookup with referral handling.
  [[nodiscard]] LookupResult lookup(const dns::Name& qname,
                                    dns::RRType qtype) const;

  /// Greatest existing owner name canonically <= `qname` (for NSEC denial).
  /// Falls back to the apex (names below the apex always have the apex as a
  /// canonical lower bound inside the zone).
  [[nodiscard]] const dns::Name& canonical_predecessor(
      const dns::Name& qname) const;

  /// Next existing owner name after `name` in canonical order, wrapping to
  /// the apex at the end of the zone (the NSEC chain closure).
  [[nodiscard]] const dns::Name& canonical_successor(
      const dns::Name& name) const;

  /// Types present at `name` (for NSEC type bitmaps); empty if absent.
  [[nodiscard]] std::vector<dns::RRType> types_at(const dns::Name& name) const;

  /// Number of distinct owner names.
  [[nodiscard]] std::size_t name_count() const { return names_.size(); }

  /// Owner names in canonical order (for tests and zone dumps).
  [[nodiscard]] std::vector<dns::Name> owner_names() const;

 private:
  struct CanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      return a.canonical_compare(b) < 0;
    }
  };
  using TypeMap = std::map<dns::RRType, dns::RRset>;
  using NameMap = std::map<dns::Name, TypeMap, CanonicalLess>;

  dns::Name apex_;
  dns::SoaRdata soa_;
  NameMap names_;
};

}  // namespace lookaside::zone
