// Zone key material: ZSK/KSK pairs, DNSKEY records, and DS digests.
//
// Mirrors the paper's Fig. 2: the KSK signs the DNSKEY RRset, the ZSK signs
// everything else, and the parent zone publishes a DS record holding a hash
// of the child's KSK.
#pragma once

#include <memory>
#include <vector>

#include "crypto/rng.h"
#include "crypto/rsa.h"
#include "dns/name.h"
#include "dns/rdata.h"

namespace lookaside::zone {

/// A zone's signing keys. Copyable handle (keys are shared immutable state).
class ZoneKeys {
 public:
  /// Generates a fresh ZSK/KSK pair with `modulus_bits`-bit RSA keys.
  static ZoneKeys generate(std::size_t modulus_bits, crypto::SplitMix64& rng);

  [[nodiscard]] const crypto::RsaPrivateKey& zsk_private() const {
    return keys_->zsk.private_key;
  }
  [[nodiscard]] const crypto::RsaPrivateKey& ksk_private() const {
    return keys_->ksk.private_key;
  }

  /// DNSKEY RDATA for the ZSK (flags 0x0100).
  [[nodiscard]] const dns::DnskeyRdata& zsk_record() const {
    return keys_->zsk_rdata;
  }
  /// DNSKEY RDATA for the KSK (flags 0x0101, SEP set).
  [[nodiscard]] const dns::DnskeyRdata& ksk_record() const {
    return keys_->ksk_rdata;
  }

  [[nodiscard]] std::uint16_t zsk_tag() const { return keys_->zsk_tag; }
  [[nodiscard]] std::uint16_t ksk_tag() const { return keys_->ksk_tag; }

 private:
  struct Shared {
    crypto::RsaKeyPair zsk;
    crypto::RsaKeyPair ksk;
    dns::DnskeyRdata zsk_rdata;
    dns::DnskeyRdata ksk_rdata;
    std::uint16_t zsk_tag = 0;
    std::uint16_t ksk_tag = 0;
  };

  explicit ZoneKeys(std::shared_ptr<const Shared> keys)
      : keys_(std::move(keys)) {}

  std::shared_ptr<const Shared> keys_;
};

/// RFC 4034 §5.1.4 DS digest (type 2 / SHA-256) binding `owner`'s DNSKEY
/// into its parent zone — or into a DLV registry (RFC 4431 uses the same
/// computation).
[[nodiscard]] dns::DsRdata make_ds(const dns::Name& owner,
                                   const dns::DnskeyRdata& dnskey);

/// A pool of pregenerated key pairs. Key generation dominates setup cost at
/// million-domain scale, so synthetic zones draw (deterministically) from a
/// small shared pool instead of generating per-zone keys. Validation
/// semantics are unaffected: the resolver still checks real signatures.
class KeyPool {
 public:
  KeyPool(std::size_t pool_size, std::size_t modulus_bits, std::uint64_t seed);

  /// Deterministic key assignment for a zone index.
  [[nodiscard]] const ZoneKeys& keys_for(std::uint64_t zone_index) const {
    return pool_[zone_index % pool_.size()];
  }

  [[nodiscard]] std::size_t size() const { return pool_.size(); }

 private:
  std::vector<ZoneKeys> pool_;
};

}  // namespace lookaside::zone
