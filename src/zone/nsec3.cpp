#include "zone/nsec3.h"

#include <stdexcept>

#include "crypto/sha1.h"

namespace lookaside::zone {

namespace {

constexpr char kBase32HexAlphabet[] = "0123456789abcdefghijklmnopqrstuv";

[[nodiscard]] int base32hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'v') return c - 'a' + 10;
  if (c >= 'A' && c <= 'V') return c - 'A' + 10;
  return -1;
}

}  // namespace

crypto::Bytes nsec3_hash(const dns::Name& name, const crypto::Bytes& salt,
                         std::uint16_t iterations) {
  // Name::to_wire() is already canonical: labels are lowercased on parse.
  crypto::Sha1 first;
  first.update(name.to_wire());
  first.update(salt);
  crypto::Bytes digest = first.finish();
  for (std::uint16_t k = 0; k < iterations; ++k) {
    crypto::Sha1 round;
    round.update(digest);
    round.update(salt);
    digest = round.finish();
  }
  return digest;
}

std::string base32hex_encode(const crypto::Bytes& data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t byte : data) {
    buffer = (buffer << 8) | byte;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32HexAlphabet[(buffer >> bits) & 0x1F]);
    }
  }
  if (bits > 0) {
    out.push_back(kBase32HexAlphabet[(buffer << (5 - bits)) & 0x1F]);
  }
  return out;
}

crypto::Bytes base32hex_decode(std::string_view text) {
  crypto::Bytes out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    const int value = base32hex_value(c);
    if (value < 0) throw std::invalid_argument("bad base32hex character");
    buffer = (buffer << 5) | static_cast<std::uint32_t>(value);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xFF));
    }
  }
  // Trailing bits must be padding zeros of an exact byte boundary encoding.
  if (bits >= 5 || (buffer & ((1U << bits) - 1)) != 0) {
    throw std::invalid_argument("base32hex input not byte-aligned");
  }
  return out;
}

dns::Name nsec3_owner(const dns::Name& name, const dns::Name& apex,
                      const crypto::Bytes& salt, std::uint16_t iterations) {
  return apex.with_prefix_label(
      base32hex_encode(nsec3_hash(name, salt, iterations)));
}

}  // namespace lookaside::zone
