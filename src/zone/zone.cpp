#include "zone/zone.h"

#include <stdexcept>

namespace lookaside::zone {

Zone::Zone(dns::Name apex, dns::SoaRdata soa, std::uint32_t soa_ttl)
    : apex_(std::move(apex)), soa_(std::move(soa)) {
  add(dns::ResourceRecord::make(apex_, soa_ttl, soa_));
}

void Zone::add(dns::ResourceRecord record) {
  if (!record.name.is_subdomain_of(apex_)) {
    throw std::invalid_argument("record " + record.name.to_text() +
                                " outside zone " + apex_.to_text());
  }
  TypeMap& types = names_[record.name];
  auto [it, inserted] = types.try_emplace(
      record.type, dns::RRset(record.name, record.type));
  it->second.add(std::move(record));
}

const dns::RRset& Zone::soa_rrset() const {
  return *find(apex_, dns::RRType::kSoa);
}

bool Zone::has_name(const dns::Name& name) const {
  return names_.count(name) != 0;
}

const dns::RRset* Zone::find(const dns::Name& name, dns::RRType type) const {
  const auto name_it = names_.find(name);
  if (name_it == names_.end()) return nullptr;
  const auto type_it = name_it->second.find(type);
  return type_it == name_it->second.end() ? nullptr : &type_it->second;
}

LookupResult Zone::lookup(const dns::Name& qname, dns::RRType qtype) const {
  LookupResult result;
  if (!qname.is_subdomain_of(apex_)) {
    result.kind = LookupKind::kNxDomain;
    return result;
  }

  // Check for a zone cut between the apex (exclusive) and qname (inclusive):
  // walk ancestors top-down and stop at the first delegation.
  const std::size_t extra_labels = qname.label_count() - apex_.label_count();
  for (std::size_t depth = 1; depth <= extra_labels; ++depth) {
    // Ancestor with `depth` labels below the apex.
    dns::Name ancestor = qname;
    for (std::size_t strip = extra_labels - depth; strip > 0; --strip) {
      ancestor = ancestor.parent();
    }
    const dns::RRset* ns = find(ancestor, dns::RRType::kNs);
    if (ns != nullptr && !(ancestor == qname && depth == 0)) {
      // Delegation cut — unless the cut owner is the apex (handled above by
      // depth starting at 1). A referral applies even when qname == cut,
      // except when the query asks for DS (the parent is authoritative for
      // DS at the cut).
      if (!(ancestor == qname && qtype == dns::RRType::kDs)) {
        result.kind = LookupKind::kReferral;
        result.rrset = ns;
        result.cut = ancestor;
        result.ds = find(ancestor, dns::RRType::kDs);
        return result;
      }
    }
  }

  const auto name_it = names_.find(qname);
  if (name_it == names_.end()) {
    result.kind = LookupKind::kNxDomain;
    return result;
  }
  const auto type_it = name_it->second.find(qtype);
  if (type_it != name_it->second.end()) {
    result.kind = LookupKind::kAnswer;
    result.rrset = &type_it->second;
    return result;
  }
  // CNAME at qname answers any type (the resolver chases it).
  const auto cname_it = name_it->second.find(dns::RRType::kCname);
  if (cname_it != name_it->second.end() && qtype != dns::RRType::kCname) {
    result.kind = LookupKind::kAnswer;
    result.rrset = &cname_it->second;
    return result;
  }
  result.kind = LookupKind::kNoData;
  return result;
}

const dns::Name& Zone::canonical_predecessor(const dns::Name& qname) const {
  auto it = names_.upper_bound(qname);
  if (it == names_.begin()) return apex_;  // should not happen inside zone
  --it;
  return it->first;
}

const dns::Name& Zone::canonical_successor(const dns::Name& name) const {
  auto it = names_.upper_bound(name);
  if (it == names_.end()) return names_.begin()->first;  // wrap to apex
  return it->first;
}

std::vector<dns::RRType> Zone::types_at(const dns::Name& name) const {
  std::vector<dns::RRType> out;
  const auto it = names_.find(name);
  if (it == names_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [type, rrset] : it->second) out.push_back(type);
  return out;
}

std::vector<dns::Name> Zone::owner_names() const {
  std::vector<dns::Name> out;
  out.reserve(names_.size());
  for (const auto& [name, types] : names_) out.push_back(name);
  return out;
}

}  // namespace lookaside::zone
