#include "zone/zonefile.h"

#include <cctype>
#include <sstream>

#include "crypto/bytes.h"

namespace lookaside::zone {

namespace {

/// Splits a line into whitespace-separated fields, honoring ';' comments
/// and double-quoted strings (for TXT).
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string token;
  bool in_quotes = false;
  bool token_started = false;
  for (char c : line) {
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
        out.push_back(token);
        token.clear();
        token_started = false;
      } else {
        token.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      token_started = true;
      token.clear();
      continue;
    }
    if (c == ';') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (token_started && !token.empty()) {
        out.push_back(token);
        token.clear();
      }
      // Leading whitespace means "same owner as previous record"; encode
      // that as an empty first token exactly once.
      if (!token_started && out.empty()) {
        out.emplace_back();
        token_started = true;
      }
      token_started = !out.empty();
      continue;
    }
    token.push_back(c);
    token_started = true;
  }
  if (!token.empty()) out.push_back(token);
  // Drop the leading empty marker if the line was actually blank.
  if (out.size() == 1 && out[0].empty()) out.clear();
  return out;
}

bool is_number(const std::string& text) {
  return !text.empty() &&
         std::all_of(text.begin(), text.end(),
                     [](char c) { return std::isdigit(static_cast<unsigned char>(c)); });
}

std::optional<dns::Name> resolve_name(const std::string& token,
                                      const dns::Name& origin) {
  try {
    if (token == "@") return origin;
    if (!token.empty() && token.back() == '.') return dns::Name::parse(token);
    return dns::Name::parse(token).concat(origin);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

std::optional<std::uint32_t> parse_ipv4(const std::string& text) {
  std::uint32_t out = 0;
  int octets = 0;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, '.')) {
    if (!is_number(part) || part.size() > 3) return std::nullopt;
    const unsigned long value = std::stoul(part);
    if (value > 255) return std::nullopt;
    out = (out << 8) | static_cast<std::uint32_t>(value);
    ++octets;
  }
  if (octets != 4) return std::nullopt;
  return out;
}

std::optional<dns::AaaaRdata> parse_ipv6(const std::string& text) {
  // Supports full and '::'-compressed forms without embedded IPv4.
  dns::AaaaRdata out{};
  std::vector<std::uint16_t> head, tail;
  bool seen_gap = false;
  std::string token;
  auto flush = [&](std::vector<std::uint16_t>& dst) -> bool {
    if (token.empty()) return false;
    if (token.size() > 4) return false;
    std::uint16_t value = 0;
    for (char c : token) {
      const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      int digit;
      if (lower >= '0' && lower <= '9') digit = lower - '0';
      else if (lower >= 'a' && lower <= 'f') digit = lower - 'a' + 10;
      else return false;
      value = static_cast<std::uint16_t>(value << 4 | digit);
    }
    dst.push_back(value);
    token.clear();
    return true;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == ':') {
      if (i + 1 < text.size() && text[i + 1] == ':') {
        if (seen_gap) return std::nullopt;
        if (!token.empty() && !flush(head)) return std::nullopt;
        seen_gap = true;
        ++i;
        continue;
      }
      if (!token.empty() && !flush(seen_gap ? tail : head)) return std::nullopt;
      continue;
    }
    token.push_back(text[i]);
  }
  if (!token.empty() && !flush(seen_gap ? tail : head)) return std::nullopt;
  const std::size_t groups = head.size() + tail.size();
  if ((!seen_gap && groups != 8) || groups > 8) return std::nullopt;
  std::vector<std::uint16_t> full = head;
  full.insert(full.end(), 8 - groups, 0);
  full.insert(full.end(), tail.begin(), tail.end());
  for (int i = 0; i < 8; ++i) {
    out.address[static_cast<std::size_t>(i * 2)] =
        static_cast<std::uint8_t>(full[static_cast<std::size_t>(i)] >> 8);
    out.address[static_cast<std::size_t>(i * 2 + 1)] =
        static_cast<std::uint8_t>(full[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace

ZoneFileResult parse_zone_file(std::string_view text,
                               const dns::Name& default_origin) {
  ZoneFileResult result;
  dns::Name origin = default_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<dns::Name> last_owner;

  struct PendingRecord {
    int line;
    dns::ResourceRecord record;
  };
  std::vector<PendingRecord> records;
  std::optional<dns::SoaRdata> soa;
  std::optional<dns::Name> apex;
  std::uint32_t soa_ttl = 3600;

  std::istringstream lines{std::string(text)};
  std::string line;
  int line_number = 0;
  auto fail = [&](int at, std::string message) {
    result.errors.push_back({at, std::move(message)});
  };

  while (std::getline(lines, line)) {
    ++line_number;
    std::vector<std::string> fields = tokenize(line);
    if (fields.empty()) continue;

    // Directives.
    if (fields[0] == "$ORIGIN") {
      if (fields.size() < 2) {
        fail(line_number, "$ORIGIN needs a name");
        continue;
      }
      const auto name = resolve_name(fields[1], dns::Name::root());
      if (!name) {
        fail(line_number, "bad $ORIGIN name: " + fields[1]);
        continue;
      }
      origin = *name;
      continue;
    }
    if (fields[0] == "$TTL") {
      if (fields.size() < 2 || !is_number(fields[1])) {
        fail(line_number, "$TTL needs a number");
        continue;
      }
      default_ttl = static_cast<std::uint32_t>(std::stoul(fields[1]));
      continue;
    }

    // Owner handling: empty first field means "previous owner".
    std::size_t index = 0;
    dns::Name owner;
    if (fields[0].empty()) {
      if (!last_owner) {
        fail(line_number, "continuation line before any owner");
        continue;
      }
      owner = *last_owner;
      index = 1;
    } else {
      const auto name = resolve_name(fields[0], origin);
      if (!name) {
        fail(line_number, "bad owner name: " + fields[0]);
        continue;
      }
      owner = *name;
      index = 1;
    }
    last_owner = owner;

    // Optional TTL and class.
    std::uint32_t ttl = default_ttl;
    if (index < fields.size() && is_number(fields[index])) {
      ttl = static_cast<std::uint32_t>(std::stoul(fields[index]));
      ++index;
    }
    if (index < fields.size() && (fields[index] == "IN")) ++index;
    if (index >= fields.size()) {
      fail(line_number, "missing record type");
      continue;
    }
    const std::string type = fields[index++];
    const auto need = [&](std::size_t n) {
      if (fields.size() - index < n) {
        fail(line_number, type + " needs " + std::to_string(n) + " field(s)");
        return false;
      }
      return true;
    };

    if (type == "SOA") {
      if (!need(7)) continue;
      dns::SoaRdata rdata;
      const auto primary = resolve_name(fields[index], origin);
      const auto responsible = resolve_name(fields[index + 1], origin);
      if (!primary || !responsible) {
        fail(line_number, "bad SOA names");
        continue;
      }
      rdata.primary_ns = *primary;
      rdata.responsible = *responsible;
      bool numbers_ok = true;
      std::uint32_t values[5] = {0, 0, 0, 0, 0};
      for (int i = 0; i < 5; ++i) {
        if (!is_number(fields[index + 2 + static_cast<std::size_t>(i)])) {
          numbers_ok = false;
          break;
        }
        values[i] = static_cast<std::uint32_t>(
            std::stoul(fields[index + 2 + static_cast<std::size_t>(i)]));
      }
      if (!numbers_ok) {
        fail(line_number, "bad SOA numeric fields");
        continue;
      }
      rdata.serial = values[0];
      rdata.refresh = values[1];
      rdata.retry = values[2];
      rdata.expire = values[3];
      rdata.minimum_ttl = values[4];
      if (soa.has_value()) {
        fail(line_number, "duplicate SOA");
        continue;
      }
      soa = rdata;
      apex = owner;
      soa_ttl = ttl;
      continue;
    }

    dns::Rdata rdata;
    dns::RRType rr_type = dns::RRType::kA;
    if (type == "A") {
      if (!need(1)) continue;
      const auto address = parse_ipv4(fields[index]);
      if (!address) {
        fail(line_number, "bad IPv4 address: " + fields[index]);
        continue;
      }
      rdata = dns::ARdata{*address};
      rr_type = dns::RRType::kA;
    } else if (type == "AAAA") {
      if (!need(1)) continue;
      const auto address = parse_ipv6(fields[index]);
      if (!address) {
        fail(line_number, "bad IPv6 address: " + fields[index]);
        continue;
      }
      rdata = *address;
      rr_type = dns::RRType::kAaaa;
    } else if (type == "NS" || type == "CNAME" || type == "PTR") {
      if (!need(1)) continue;
      const auto target = resolve_name(fields[index], origin);
      if (!target) {
        fail(line_number, "bad target name: " + fields[index]);
        continue;
      }
      if (type == "NS") {
        rdata = dns::NsRdata{*target};
        rr_type = dns::RRType::kNs;
      } else if (type == "CNAME") {
        rdata = dns::CnameRdata{*target};
        rr_type = dns::RRType::kCname;
      } else {
        rdata = dns::PtrRdata{*target};
        rr_type = dns::RRType::kPtr;
      }
    } else if (type == "MX") {
      if (!need(2)) continue;
      if (!is_number(fields[index])) {
        fail(line_number, "bad MX preference");
        continue;
      }
      const auto exchanger = resolve_name(fields[index + 1], origin);
      if (!exchanger) {
        fail(line_number, "bad MX exchanger");
        continue;
      }
      rdata = dns::MxRdata{
          static_cast<std::uint16_t>(std::stoul(fields[index])), *exchanger};
      rr_type = dns::RRType::kMx;
    } else if (type == "TXT") {
      if (!need(1)) continue;
      dns::TxtRdata txt;
      for (std::size_t i = index; i < fields.size(); ++i) {
        txt.strings.push_back(fields[i]);
      }
      rdata = std::move(txt);
      rr_type = dns::RRType::kTxt;
    } else if (type == "DS" || type == "DLV") {
      if (!need(4)) continue;
      if (!is_number(fields[index]) || !is_number(fields[index + 1]) ||
          !is_number(fields[index + 2])) {
        fail(line_number, "bad " + type + " numeric fields");
        continue;
      }
      dns::DsRdata ds;
      ds.key_tag = static_cast<std::uint16_t>(std::stoul(fields[index]));
      ds.algorithm = static_cast<std::uint8_t>(std::stoul(fields[index + 1]));
      ds.digest_type =
          static_cast<std::uint8_t>(std::stoul(fields[index + 2]));
      try {
        ds.digest = crypto::from_hex(fields[index + 3]);
      } catch (const std::invalid_argument&) {
        fail(line_number, "bad " + type + " digest hex");
        continue;
      }
      rdata = std::move(ds);
      rr_type = type == "DS" ? dns::RRType::kDs : dns::RRType::kDlv;
    } else {
      fail(line_number, "unsupported record type: " + type);
      continue;
    }

    records.push_back(
        {line_number,
         dns::ResourceRecord::make_typed(owner, rr_type, ttl, std::move(rdata))});
  }

  if (!soa.has_value()) {
    fail(1, "zone file has no SOA record");
    return result;
  }
  Zone zone(*apex, *soa, soa_ttl);
  for (PendingRecord& pending : records) {
    try {
      zone.add(std::move(pending.record));
    } catch (const std::invalid_argument& error) {
      fail(pending.line, error.what());
    }
  }
  if (result.errors.empty()) result.zone = std::move(zone);
  return result;
}

std::string render_zone_file(const Zone& zone) {
  std::ostringstream out;
  out << "$ORIGIN " << zone.apex().to_text() << "\n";
  for (const dns::Name& owner : zone.owner_names()) {
    for (dns::RRType type : zone.types_at(owner)) {
      const dns::RRset* rrset = zone.find(owner, type);
      if (rrset == nullptr) continue;
      for (const dns::ResourceRecord& record : rrset->records()) {
        if (record.type == dns::RRType::kSoa) {
          const auto& soa = std::get<dns::SoaRdata>(record.rdata);
          out << record.name.to_text() << " " << record.ttl << " IN SOA "
              << soa.primary_ns.to_text() << " " << soa.responsible.to_text()
              << " " << soa.serial << " " << soa.refresh << " " << soa.retry
              << " " << soa.expire << " " << soa.minimum_ttl << "\n";
        } else {
          out << record.to_text() << "\n";
        }
      }
    }
  }
  return out.str();
}

}  // namespace lookaside::zone
