#include "zone/keys.h"

#include "crypto/sha256.h"
#include "dns/wire_io.h"

namespace lookaside::zone {

ZoneKeys ZoneKeys::generate(std::size_t modulus_bits,
                            crypto::SplitMix64& rng) {
  auto shared = std::make_shared<Shared>(Shared{
      crypto::generate_rsa_keypair(modulus_bits, rng),
      crypto::generate_rsa_keypair(modulus_bits, rng),
      {},
      {},
      0,
      0,
  });
  shared->zsk_rdata = dns::DnskeyRdata{dns::DnskeyRdata::kFlagZoneKey, 3, 8,
                                       shared->zsk.public_key.to_wire()};
  shared->ksk_rdata = dns::DnskeyRdata{
      dns::DnskeyRdata::kFlagZoneKey | dns::DnskeyRdata::kFlagSep, 3, 8,
      shared->ksk.public_key.to_wire()};
  shared->zsk_tag = shared->zsk_rdata.key_tag();
  shared->ksk_tag = shared->ksk_rdata.key_tag();
  return ZoneKeys(std::move(shared));
}

dns::DsRdata make_ds(const dns::Name& owner, const dns::DnskeyRdata& dnskey) {
  dns::ByteWriter writer;
  writer.raw(owner.to_wire());
  dns::encode_rdata(dns::Rdata{dnskey}, writer);
  return dns::DsRdata{dnskey.key_tag(), dnskey.algorithm, 2,
                      crypto::Sha256::digest(writer.bytes())};
}

KeyPool::KeyPool(std::size_t pool_size, std::size_t modulus_bits,
                 std::uint64_t seed) {
  pool_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    crypto::SplitMix64 rng(crypto::derive_seed(seed, i));
    pool_.push_back(ZoneKeys::generate(modulus_bits, rng));
  }
}

}  // namespace lookaside::zone
