// Resolver caches: positive RRset cache, RFC 2308 negative cache, the
// aggressive NSEC cache (RFC 8198 / RFC 5074 §5), and known-zone-cut cache.
//
// The aggressive NSEC cache is load-bearing for the paper: it is the only
// reason leaked-domain counts grow sub-linearly (Figs. 8-9), and shuffling
// the query order changes which domains leak (§5.1 "Order Matters").
//
// Lifecycle (DESIGN.md §4f): every entry is byte-accounted at store time,
// an incremental amortized sweep reclaims expired entries instead of
// leaving them to linger until probed, and an optional byte cap
// (CacheLimits.max_bytes — BIND max-cache-size / Unbound msg-cache-size
// analogue) is enforced by second-chance (clock) eviction across all five
// stores. Evicting aggressive-NSEC proofs under memory pressure re-opens
// the paper's Case-2 leakage channel — bench_cache_churn measures exactly
// that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dns/name.h"
#include "dns/name_map.h"
#include "dns/record.h"
#include "metrics/counters.h"
#include "sim/clock.h"

namespace lookaside::obs {
class Tracer;
}

namespace lookaside::resolver {

class SharedProofStore;

/// Negative-cache lookup outcome.
enum class NegativeEntry {
  kNone,      // nothing cached
  kNoData,    // name exists, type doesn't
  kNxDomain,  // name doesn't exist
};

/// Aggressive NSEC lookup outcome for (zone, qname, qtype).
enum class NsecCoverage {
  kNoProof,       // no cached NSEC speaks to this name
  kNameCovered,   // a cached NSEC proves the name does not exist
  kTypeAbsent,    // NSEC at the exact name proves the type is absent
};

/// Lifecycle limits for one ResolverCache (DESIGN.md §4f).
struct CacheLimits {
  /// Approximate cap on the cache's total footprint in bytes; 0 means
  /// unbounded (the paper-era BIND default).
  std::uint64_t max_bytes = 0;
  /// Slots examined per maintain() tick by the amortized expiry sweep.
  /// 0 disables the background sweep (expired entries are then reclaimed
  /// only when probed or evicted).
  std::size_t sweep_step = 32;
};

/// All resolver-side caches, sharing one virtual clock.
class ResolverCache {
 public:
  explicit ResolverCache(const sim::SimClock& clock) : clock_(&clock) {}

  // -- Positive cache -------------------------------------------------------

  /// A cached RRset together with its DNSSEC state.
  struct Entry {
    const dns::RRset* rrset = nullptr;
    bool validated = false;
    const std::vector<dns::ResourceRecord>* rrsigs = nullptr;
  };

  /// Stores an RRset for its TTL. `validated` marks DNSSEC-validated data;
  /// `rrsigs` keeps covering signatures so cached data can be re-validated.
  void store(const dns::RRset& rrset, bool validated,
             std::vector<dns::ResourceRecord> rrsigs = {});

  /// Unexpired cached RRset or nullptr. Counts hits/misses.
  [[nodiscard]] const dns::RRset* find(const dns::Name& name,
                                       dns::RRType type);

  /// Like find() but exposing validation state and stored signatures.
  [[nodiscard]] std::optional<Entry> find_entry(const dns::Name& name,
                                                dns::RRType type);

  /// Cached RRset only if it was stored as validated.
  [[nodiscard]] const dns::RRset* find_validated(const dns::Name& name,
                                                 dns::RRType type);

  /// Upgrades an existing entry to validated (after post-hoc validation).
  void mark_validated(const dns::Name& name, dns::RRType type);

  // -- Negative cache (RFC 2308) -------------------------------------------

  void store_negative(const dns::Name& name, dns::RRType type,
                      std::uint32_t ttl, bool nxdomain);
  /// On a hit, `*expires_us` (when non-null) receives the proof's
  /// expiry deadline — the leak-cause attribution needs to know *until
  /// when* the denial would have kept suppressing queries.
  [[nodiscard]] NegativeEntry find_negative(const dns::Name& name,
                                            dns::RRType type,
                                            std::uint64_t* expires_us = nullptr);

  // -- SERVFAIL cache (RFC 2308 §7) ------------------------------------------

  /// Remembers that (name, type) recently ended in SERVFAIL so repeated
  /// queries do not re-traverse a failing hierarchy.
  void store_servfail(const dns::Name& name, dns::RRType type,
                      std::uint32_t ttl);
  [[nodiscard]] bool find_servfail(const dns::Name& name, dns::RRType type);

  // -- Aggressive NSEC cache (RFC 8198; required by RFC 5074 validators) ----

  /// Stores a validated NSEC record belonging to `zone_apex`.
  void store_nsec(const dns::Name& zone_apex,
                  const dns::ResourceRecord& nsec_record);

  /// Checks whether cached NSEC records prove (qname, qtype) absent
  /// within `zone_apex`. Expired entries encountered on the predecessor
  /// walk are reclaimed and skipped — a stale closer entry must not shadow
  /// a live covering proof.
  /// On a covering hit, `*expires_us` (when non-null) receives the
  /// covering NSEC entry's expiry deadline.
  [[nodiscard]] NsecCoverage nsec_check(const dns::Name& zone_apex,
                                        const dns::Name& qname,
                                        dns::RRType qtype,
                                        std::uint64_t* expires_us = nullptr);

  /// Number of NSEC entries known for `zone_apex`. With a shared proof
  /// store attached this is the *shared* chain size — the union across all
  /// shards (private entries are written through, so they are a subset) —
  /// which keeps leak-cause attribution ("nsec-gap" vs "cold-miss")
  /// invariant across shard counts.
  [[nodiscard]] std::size_t nsec_count(const dns::Name& zone_apex) const;

  // -- Zone-cut cache ---------------------------------------------------------

  /// Remembers that `apex` is a zone cut (so iteration can start there).
  void store_zone_cut(const dns::Name& apex, std::uint32_t ttl);

  /// Deepest unexpired known cut enclosing `qname`; root when none.
  [[nodiscard]] dns::Name deepest_known_cut(const dns::Name& qname);

  // -- Shared proof store (multi-shard serving, DESIGN.md §4i) ----------------

  /// Attaches a striped shared NSEC/zone-cut store (nullable to detach).
  /// Afterwards this cache consults the store whenever its private NSEC
  /// chain or zone-cut table misses ("cache.nsec_shared_hit" /
  /// "cache.zone_cut_shared_hit"), and writes every validated NSEC span and
  /// zone cut through so sibling shards can suppress the same upstream
  /// queries. `shard_id` labels published entries for the cross-shard
  /// suppressed-leak accounting.
  void attach_shared(SharedProofStore* store, std::uint32_t shard_id = 0) {
    shared_ = store;
    shard_id_ = shard_id;
  }
  [[nodiscard]] SharedProofStore* shared_store() const { return shared_; }
  [[nodiscard]] std::uint32_t shard_id() const { return shard_id_; }

  // -- Lifecycle (accounting / sweep / eviction) ------------------------------

  /// Attaches a tracer (nullable): pressure evictions then emit
  /// cache_evicted events (detail = section), making churn visible on
  /// timelines and attributable in the leak ledger.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs the byte cap and sweep amortization step.
  void set_limits(const CacheLimits& limits) { limits_ = limits; }
  [[nodiscard]] const CacheLimits& limits() const { return limits_; }

  /// Approximate current footprint in bytes across all five stores.
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  /// High-water mark of bytes() since construction (or clear()).
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }

  /// Incremental expiry sweep: visits up to `max_slots` slots, resuming
  /// where the previous sweep stopped and rotating across the five stores,
  /// and reclaims every expired entry found. Counts "cache.expired_swept".
  /// Returns the number of entries reclaimed by this call.
  std::size_t sweep_expired(std::size_t max_slots);

  /// One maintenance tick, called by the resolver at resolution boundaries
  /// (never mid-resolution: eviction frees boxed entries, so handed-out
  /// Entry pointers are only guaranteed stable within one resolution once a
  /// cap is set): an amortized sweep step plus second-chance eviction while
  /// over the byte cap. Counts "cache.evicted" (+ per-store breakdowns).
  void maintain();

  // -- Maintenance ------------------------------------------------------------

  void clear();

  /// Counters: "cache.hit", "cache.miss", "cache.negative_hit",
  /// "cache.nsec_hit", "cache.expired_swept", "cache.evicted",
  /// "cache.evicted.positive|negative|servfail|nsec|zone_cut", ...
  [[nodiscard]] const metrics::CounterSet& counters() const { return counters_; }

 private:
  struct CanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      // canonical_compare short-circuits equal names via the cached hash.
      return a.canonical_compare(b) < 0;
    }
  };
  struct PositiveEntry {
    dns::RRset rrset;
    std::uint64_t expires_us = 0;
    bool validated = false;
    bool referenced = false;  // second-chance bit, set on hit
    std::uint32_t cost = 0;   // accounted bytes
    std::vector<dns::ResourceRecord> rrsigs;
  };
  struct NegativeRecord {
    std::uint64_t expires_us = 0;
    bool nxdomain = false;
    bool referenced = false;
  };
  struct ServfailRecord {
    std::uint64_t expires_us = 0;
    bool referenced = false;
  };
  struct NsecEntry {
    dns::Name next;
    std::vector<dns::RRType> types;
    std::uint64_t expires_us = 0;
    bool referenced = false;
    std::uint32_t cost = 0;
  };
  struct ZoneCutRecord {
    std::uint64_t expires_us = 0;
    bool referenced = false;
  };

  // Per-name slot lists: one hash probe finds every type cached under a
  // name (typically 1-3 entries), so probes do no (Name, RRType) pair-key
  // construction and the NXDOMAIN any-type scan is a tiny linear walk
  // instead of a map range scan. Positive entries are boxed so handed-out
  // Entry pointers survive rehashes, matching std::map pointer stability.
  template <typename V>
  using TypeSlots = std::vector<std::pair<dns::RRType, V>>;
  using PositiveSlots = TypeSlots<std::unique_ptr<PositiveEntry>>;
  // NSEC chains stay ordered: coverage checks need the greatest owner
  // <= qname (predecessor query), which a hash table cannot answer. The
  // wrapper carries the per-zone resume hand for incremental sweeps, so a
  // 100k-entry DLV chain is reclaimed a few entries per tick instead of in
  // one stall.
  using NsecChain = std::map<dns::Name, NsecEntry, CanonicalLess>;
  struct NsecZone {
    NsecChain chain;
    dns::Name hand;  // sweep/eviction resume position (root = begin)
  };

  /// The five stores, as clock-hand / sweep-rotation indices.
  enum Section : std::size_t {
    kPositive = 0,
    kNegative,
    kServfail,
    kNsec,
    kZoneCut,
    kSectionCount,
  };
  static const char* section_name(Section section);

  [[nodiscard]] std::uint64_t now() const { return clock_->now_us(); }
  [[nodiscard]] static std::uint64_t ttl_to_deadline(std::uint64_t now_us,
                                                     std::uint32_t ttl) {
    return now_us + static_cast<std::uint64_t>(ttl) * 1'000'000ULL;
  }

  // -- Byte accounting (approximate, deterministic) --------------------------

  [[nodiscard]] static std::size_t name_cost(const dns::Name& name);
  [[nodiscard]] static std::size_t record_cost(const dns::ResourceRecord& r);
  [[nodiscard]] static std::size_t positive_cost(const PositiveEntry& entry);
  [[nodiscard]] static std::size_t negative_cost(const dns::Name& name);
  [[nodiscard]] static std::size_t servfail_cost(const dns::Name& name);
  [[nodiscard]] static std::size_t nsec_cost(const dns::Name& owner,
                                             const NsecEntry& entry);
  [[nodiscard]] static std::size_t zone_cut_cost(const dns::Name& apex);

  void charge(std::size_t cost);
  void release(std::size_t cost);

  /// L2 NSEC consult when the private chain has no proof: asks the shared
  /// store (when attached) and counts "cache.nsec_shared_hit".
  [[nodiscard]] NsecCoverage shared_nsec_check(const dns::Name& zone_apex,
                                               const dns::Name& qname,
                                               dns::RRType qtype,
                                               std::uint64_t* expires_us);

  // -- Sweep / eviction internals --------------------------------------------

  /// Sweeps up to `budget` slots of `section` for expired entries;
  /// returns entries reclaimed.
  std::size_t sweep_section(Section section, std::size_t budget);
  /// One clock step in `section`: visits up to `budget` slots; gives
  /// referenced entries a second chance (clearing the bit) and evicts the
  /// first unreferenced one. Returns true when something was evicted.
  bool evict_step(Section section, std::size_t budget);
  void count_eviction(Section section, std::size_t entries);
  void trace_eviction(Section section, const dns::Name& owner);

  const sim::SimClock* clock_;
  obs::Tracer* tracer_ = nullptr;
  SharedProofStore* shared_ = nullptr;  // nullable; not owned
  std::uint32_t shard_id_ = 0;
  metrics::CounterSet counters_;
  CacheLimits limits_;
  std::uint64_t bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  dns::NameHashMap<PositiveSlots> positive_;
  dns::NameHashMap<TypeSlots<NegativeRecord>> negative_;
  dns::NameHashMap<TypeSlots<ServfailRecord>> servfail_;
  dns::NameHashMap<NsecZone> nsec_by_zone_;
  dns::NameHashMap<ZoneCutRecord> zone_cuts_;
  // Sweep rotation state: which section the next sweep tick works on, plus
  // one resume cursor per section (slot indices into the hash tables).
  std::size_t sweep_section_index_ = 0;
  std::size_t sweep_cursor_[kSectionCount] = {};
  // Eviction clock state: independent hands so pressure eviction does not
  // perturb the expiry sweep's coverage.
  std::size_t evict_section_index_ = 0;
  std::size_t evict_cursor_[kSectionCount] = {};
};

}  // namespace lookaside::resolver
