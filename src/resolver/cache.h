// Resolver caches: positive RRset cache, RFC 2308 negative cache, the
// aggressive NSEC cache (RFC 8198 / RFC 5074 §5), and known-zone-cut cache.
//
// The aggressive NSEC cache is load-bearing for the paper: it is the only
// reason leaked-domain counts grow sub-linearly (Figs. 8-9), and shuffling
// the query order changes which domains leak (§5.1 "Order Matters").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dns/name.h"
#include "dns/name_map.h"
#include "dns/record.h"
#include "metrics/counters.h"
#include "sim/clock.h"

namespace lookaside::resolver {

/// Negative-cache lookup outcome.
enum class NegativeEntry {
  kNone,      // nothing cached
  kNoData,    // name exists, type doesn't
  kNxDomain,  // name doesn't exist
};

/// Aggressive NSEC lookup outcome for (zone, qname, qtype).
enum class NsecCoverage {
  kNoProof,       // no cached NSEC speaks to this name
  kNameCovered,   // a cached NSEC proves the name does not exist
  kTypeAbsent,    // NSEC at the exact name proves the type is absent
};

/// All resolver-side caches, sharing one virtual clock.
class ResolverCache {
 public:
  explicit ResolverCache(const sim::SimClock& clock) : clock_(&clock) {}

  // -- Positive cache -------------------------------------------------------

  /// A cached RRset together with its DNSSEC state.
  struct Entry {
    const dns::RRset* rrset = nullptr;
    bool validated = false;
    const std::vector<dns::ResourceRecord>* rrsigs = nullptr;
  };

  /// Stores an RRset for its TTL. `validated` marks DNSSEC-validated data;
  /// `rrsigs` keeps covering signatures so cached data can be re-validated.
  void store(const dns::RRset& rrset, bool validated,
             std::vector<dns::ResourceRecord> rrsigs = {});

  /// Unexpired cached RRset or nullptr. Counts hits/misses.
  [[nodiscard]] const dns::RRset* find(const dns::Name& name,
                                       dns::RRType type);

  /// Like find() but exposing validation state and stored signatures.
  [[nodiscard]] std::optional<Entry> find_entry(const dns::Name& name,
                                                dns::RRType type);

  /// Cached RRset only if it was stored as validated.
  [[nodiscard]] const dns::RRset* find_validated(const dns::Name& name,
                                                 dns::RRType type);

  /// Upgrades an existing entry to validated (after post-hoc validation).
  void mark_validated(const dns::Name& name, dns::RRType type);

  // -- Negative cache (RFC 2308) -------------------------------------------

  void store_negative(const dns::Name& name, dns::RRType type,
                      std::uint32_t ttl, bool nxdomain);
  [[nodiscard]] NegativeEntry find_negative(const dns::Name& name,
                                            dns::RRType type);

  // -- SERVFAIL cache (RFC 2308 §7) ------------------------------------------

  /// Remembers that (name, type) recently ended in SERVFAIL so repeated
  /// queries do not re-traverse a failing hierarchy.
  void store_servfail(const dns::Name& name, dns::RRType type,
                      std::uint32_t ttl);
  [[nodiscard]] bool find_servfail(const dns::Name& name, dns::RRType type);

  // -- Aggressive NSEC cache (RFC 8198; required by RFC 5074 validators) ----

  /// Stores a validated NSEC record belonging to `zone_apex`.
  void store_nsec(const dns::Name& zone_apex,
                  const dns::ResourceRecord& nsec_record);

  /// Checks whether cached NSEC records prove (qname, qtype) absent
  /// within `zone_apex`.
  [[nodiscard]] NsecCoverage nsec_check(const dns::Name& zone_apex,
                                        const dns::Name& qname,
                                        dns::RRType qtype);

  /// Number of live NSEC entries cached for `zone_apex`.
  [[nodiscard]] std::size_t nsec_count(const dns::Name& zone_apex) const;

  // -- Zone-cut cache ---------------------------------------------------------

  /// Remembers that `apex` is a zone cut (so iteration can start there).
  void store_zone_cut(const dns::Name& apex, std::uint32_t ttl);

  /// Deepest unexpired known cut enclosing `qname`; root when none.
  [[nodiscard]] dns::Name deepest_known_cut(const dns::Name& qname);

  // -- Maintenance ------------------------------------------------------------

  void clear();

  /// Counters: "cache.hit", "cache.miss", "cache.negative_hit",
  /// "cache.nsec_hit", ...
  [[nodiscard]] const metrics::CounterSet& counters() const { return counters_; }

 private:
  struct CanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      // canonical_compare short-circuits equal names via the cached hash.
      return a.canonical_compare(b) < 0;
    }
  };
  struct PositiveEntry {
    dns::RRset rrset;
    std::uint64_t expires_us = 0;
    bool validated = false;
    std::vector<dns::ResourceRecord> rrsigs;
  };
  struct NegativeRecord {
    std::uint64_t expires_us = 0;
    bool nxdomain = false;
  };
  struct NsecEntry {
    dns::Name next;
    std::vector<dns::RRType> types;
    std::uint64_t expires_us = 0;
  };

  // Per-name slot lists: one hash probe finds every type cached under a
  // name (typically 1-3 entries), so probes do no (Name, RRType) pair-key
  // construction and the NXDOMAIN any-type scan is a tiny linear walk
  // instead of a map range scan. Positive entries are boxed so handed-out
  // Entry pointers survive rehashes, matching std::map pointer stability.
  template <typename V>
  using TypeSlots = std::vector<std::pair<dns::RRType, V>>;
  using PositiveSlots = TypeSlots<std::unique_ptr<PositiveEntry>>;
  // NSEC chains stay ordered: coverage checks need the greatest owner
  // <= qname (predecessor query), which a hash table cannot answer.
  using NsecChain = std::map<dns::Name, NsecEntry, CanonicalLess>;

  [[nodiscard]] std::uint64_t now() const { return clock_->now_us(); }
  [[nodiscard]] static std::uint64_t ttl_to_deadline(std::uint64_t now_us,
                                                     std::uint32_t ttl) {
    return now_us + static_cast<std::uint64_t>(ttl) * 1'000'000ULL;
  }

  const sim::SimClock* clock_;
  metrics::CounterSet counters_;
  dns::NameHashMap<PositiveSlots> positive_;
  dns::NameHashMap<TypeSlots<NegativeRecord>> negative_;
  dns::NameHashMap<TypeSlots<std::uint64_t>> servfail_;
  dns::NameHashMap<NsecChain> nsec_by_zone_;
  dns::NameHashMap<std::uint64_t> zone_cuts_;
};

}  // namespace lookaside::resolver
