// Resolver caches: positive RRset cache, RFC 2308 negative cache, the
// aggressive NSEC cache (RFC 8198 / RFC 5074 §5), and known-zone-cut cache.
//
// The aggressive NSEC cache is load-bearing for the paper: it is the only
// reason leaked-domain counts grow sub-linearly (Figs. 8-9), and shuffling
// the query order changes which domains leak (§5.1 "Order Matters").
//
// Lifecycle (DESIGN.md §4f): every entry is byte-accounted at store time,
// an incremental amortized sweep reclaims expired entries instead of
// leaving them to linger until probed, and an optional byte cap
// (CacheLimits.max_bytes — BIND max-cache-size / Unbound msg-cache-size
// analogue) is enforced by second-chance (clock) eviction across all five
// stores. Evicting aggressive-NSEC proofs under memory pressure re-opens
// the paper's Case-2 leakage channel — bench_cache_churn measures exactly
// that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/bytes.h"
#include "dns/name.h"
#include "dns/name_arena.h"
#include "dns/name_map.h"
#include "dns/record.h"
#include "metrics/counters.h"
#include "resolver/denial.h"
#include "sim/clock.h"

namespace lookaside::obs {
class Tracer;
}

namespace lookaside::resolver {

class SharedProofStore;

/// Negative-cache lookup outcome.
enum class NegativeEntry {
  kNone,      // nothing cached
  kNoData,    // name exists, type doesn't
  kNxDomain,  // name doesn't exist
};

/// Aggressive NSEC lookup outcome for (zone, qname, qtype).
enum class NsecCoverage {
  kNoProof,       // no cached NSEC speaks to this name
  kNameCovered,   // a cached NSEC proves the name does not exist
  kTypeAbsent,    // NSEC at the exact name proves the type is absent
};

/// Lifecycle limits for one ResolverCache (DESIGN.md §4f).
struct CacheLimits {
  /// Approximate cap on the cache's total footprint in bytes; 0 means
  /// unbounded (the paper-era BIND default).
  std::uint64_t max_bytes = 0;
  /// Slots examined per maintain() tick by the amortized expiry sweep.
  /// 0 disables the background sweep (expired entries are then reclaimed
  /// only when probed or evicted).
  std::size_t sweep_step = 32;
  /// Extra clock-eviction chances granted to an NSEC span each time it
  /// proves a denial. 0 keeps the paper-era single second chance. The
  /// RFC 8198 profile sets this > 0: once synthesis elides exact negative
  /// entries, the spans become load-bearing answer material, and losing
  /// one to mid-pressure eviction re-opens a whole range of Case-2 leaks
  /// rather than a single name.
  std::uint8_t nsec_extra_chances = 0;
};

/// All resolver-side caches, sharing one virtual clock.
class ResolverCache : public DenialProofSource {
 public:
  explicit ResolverCache(const sim::SimClock& clock) : clock_(&clock) {}

  // -- Positive cache -------------------------------------------------------

  /// A cached RRset together with its DNSSEC state.
  struct Entry {
    const dns::RRset* rrset = nullptr;
    bool validated = false;
    const std::vector<dns::ResourceRecord>* rrsigs = nullptr;
  };

  /// Stores an RRset for its TTL. `validated` marks DNSSEC-validated data;
  /// `rrsigs` keeps covering signatures so cached data can be re-validated.
  void store(const dns::RRset& rrset, bool validated,
             std::vector<dns::ResourceRecord> rrsigs = {});

  /// Unexpired cached RRset or nullptr. Counts hits/misses.
  [[nodiscard]] const dns::RRset* find(const dns::Name& name,
                                       dns::RRType type);

  /// Like find() but exposing validation state and stored signatures.
  [[nodiscard]] std::optional<Entry> find_entry(const dns::Name& name,
                                                dns::RRType type);

  /// Cached RRset only if it was stored as validated.
  [[nodiscard]] const dns::RRset* find_validated(const dns::Name& name,
                                                 dns::RRType type);

  /// Upgrades an existing entry to validated (after post-hoc validation).
  void mark_validated(const dns::Name& name, dns::RRType type);

  // -- Negative cache (RFC 2308) -------------------------------------------

  void store_negative(const dns::Name& name, dns::RRType type,
                      std::uint32_t ttl, bool nxdomain);
  /// Deprecated shim over find_denial(sources = kNegative); the unified
  /// ProofResult carries the same expiry deadline, so leak-cause
  /// attribution is preserved (see synthesis_test's equivalence test).
  [[deprecated("use find_denial() (DESIGN.md §4j)")]] [[nodiscard]]
  NegativeEntry find_negative(const dns::Name& name, dns::RRType type,
                              std::uint64_t* expires_us = nullptr) {
    return negative_lookup(name, type, expires_us);
  }

  // -- Unified denial lookup (DESIGN.md §4j) ---------------------------------

  /// One entry point over all denial proofs: exact negatives, then the
  /// private NSEC span index, then the shared store, then hash-gated NSEC3
  /// synthesis — whichever classes `sources` enables. Counters:
  /// "cache.negative_hit", "cache.nsec_hit", "cache.nsec_shared_hit",
  /// "cache.synth_nsec3_hit".
  [[nodiscard]] ProofResult find_denial(const dns::Name& zone_apex,
                                        const dns::Name& qname,
                                        dns::RRType qtype,
                                        unsigned sources =
                                            DenialSources::kAll) override;

  // -- SERVFAIL cache (RFC 2308 §7) ------------------------------------------

  /// Remembers that (name, type) recently ended in SERVFAIL so repeated
  /// queries do not re-traverse a failing hierarchy.
  void store_servfail(const dns::Name& name, dns::RRType type,
                      std::uint32_t ttl);
  [[nodiscard]] bool find_servfail(const dns::Name& name, dns::RRType type);

  // -- Aggressive NSEC cache (RFC 8198; required by RFC 5074 validators) ----

  /// Stores a validated NSEC record belonging to `zone_apex`.
  void store_nsec(const dns::Name& zone_apex,
                  const dns::ResourceRecord& nsec_record);

  /// Deprecated shim over find_denial(sources = kSpans): same predecessor
  /// semantics (expired entries met on the walk are reclaimed and skipped),
  /// same expiry out-param, translated back to the legacy enum.
  [[deprecated("use find_denial() (DESIGN.md §4j)")]] [[nodiscard]]
  NsecCoverage nsec_check(const dns::Name& zone_apex, const dns::Name& qname,
                          dns::RRType qtype,
                          std::uint64_t* expires_us = nullptr) {
    return nsec_lookup(zone_apex, qname, qtype, expires_us, nullptr);
  }

  // -- NSEC3 closest-encloser evidence (RFC 8198 over RFC 5155) --------------

  /// Verified material from one NSEC3 denial proof, fed back by the
  /// resolver after validation so later queries can synthesize denials
  /// without contacting authorities: the proven closest encloser (whose
  /// wildcard was also proven absent), the zone's hash parameters, and the
  /// validated hashed spans.
  struct Nsec3Evidence {
    crypto::Bytes salt;
    std::uint16_t iterations = 0;
    dns::Name closest_encloser;
    /// Validated [owner_hash, next_hashed) spans (raw 20-byte digests).
    std::vector<std::pair<crypto::Bytes, crypto::Bytes>> spans;
    std::uint64_t expires_us = 0;
  };

  /// Records evidence for `zone_apex`. A salt/iteration change (parameter
  /// rollover) drops all prior evidence for the zone; per-zone span count
  /// is capped (kMaxNsec3SpansPerZone) so evidence stays bounded metadata
  /// outside the byte-cap eviction loop.
  void store_nsec3_evidence(const dns::Name& zone_apex,
                            const Nsec3Evidence& evidence);

  /// Cached-evidence introspection for tests/benches.
  [[nodiscard]] std::size_t nsec3_evidence_spans(
      const dns::Name& zone_apex) const;

  static constexpr std::size_t kMaxNsec3SpansPerZone = 512;

  /// Number of NSEC entries known for `zone_apex`. With a shared proof
  /// store attached this is the *shared* chain size — the union across all
  /// shards (private entries are written through, so they are a subset) —
  /// which keeps leak-cause attribution ("nsec-gap" vs "cold-miss")
  /// invariant across shard counts.
  [[nodiscard]] std::size_t nsec_count(const dns::Name& zone_apex) const;

  // -- Zone-cut cache ---------------------------------------------------------

  /// Remembers that `apex` is a zone cut (so iteration can start there).
  void store_zone_cut(const dns::Name& apex, std::uint32_t ttl);

  /// Deepest unexpired known cut enclosing `qname`; root when none.
  [[nodiscard]] dns::Name deepest_known_cut(const dns::Name& qname);

  // -- Shared proof store (multi-shard serving, DESIGN.md §4i) ----------------

  /// Attaches a striped shared NSEC/zone-cut store (nullable to detach).
  /// Afterwards this cache consults the store whenever its private NSEC
  /// chain or zone-cut table misses ("cache.nsec_shared_hit" /
  /// "cache.zone_cut_shared_hit"), and writes every validated NSEC span and
  /// zone cut through so sibling shards can suppress the same upstream
  /// queries. `shard_id` labels published entries for the cross-shard
  /// suppressed-leak accounting.
  void attach_shared(SharedProofStore* store, std::uint32_t shard_id = 0) {
    shared_ = store;
    shard_id_ = shard_id;
  }
  [[nodiscard]] SharedProofStore* shared_store() const { return shared_; }
  [[nodiscard]] std::uint32_t shard_id() const { return shard_id_; }

  // -- Lifecycle (accounting / sweep / eviction) ------------------------------

  /// Attaches a tracer (nullable): pressure evictions then emit
  /// cache_evicted events (detail = section), making churn visible on
  /// timelines and attributable in the leak ledger.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs the byte cap and sweep amortization step.
  void set_limits(const CacheLimits& limits) { limits_ = limits; }
  [[nodiscard]] const CacheLimits& limits() const { return limits_; }

  /// Approximate current footprint in bytes across all five stores. The
  /// accounting formulas are frozen (they decide eviction order, which the
  /// PR-5 cap-sweep series pins); interning makes the *real* footprint
  /// smaller than this number, never larger — see arena_bytes().
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  /// High-water mark of bytes() since construction (or clear()).
  [[nodiscard]] std::uint64_t peak_bytes() const { return peak_bytes_; }

  /// The cache's interning arena (DESIGN.md §4k). Ids handed out by it are
  /// stable for the cache's lifetime (until clear()).
  [[nodiscard]] const dns::NameArena& name_arena() const { return arena_; }
  /// True measured footprint of the arena backing the interned sections —
  /// what the duplicate name copies actually cost after interning.
  [[nodiscard]] std::uint64_t arena_bytes() const { return arena_.bytes(); }

  /// Incremental expiry sweep: visits up to `max_slots` slots, resuming
  /// where the previous sweep stopped and rotating across the five stores,
  /// and reclaims every expired entry found. Counts "cache.expired_swept".
  /// Returns the number of entries reclaimed by this call.
  std::size_t sweep_expired(std::size_t max_slots);

  /// One maintenance tick, called by the resolver at resolution boundaries
  /// (never mid-resolution: eviction frees boxed entries, so handed-out
  /// Entry pointers are only guaranteed stable within one resolution once a
  /// cap is set): an amortized sweep step plus second-chance eviction while
  /// over the byte cap. Counts "cache.evicted" (+ per-store breakdowns).
  void maintain();

  // -- Maintenance ------------------------------------------------------------

  void clear();

  /// Counters: "cache.hit", "cache.miss", "cache.negative_hit",
  /// "cache.nsec_hit", "cache.expired_swept", "cache.evicted",
  /// "cache.evicted.positive|negative|servfail|nsec|zone_cut", ...
  [[nodiscard]] const metrics::CounterSet& counters() const { return counters_; }

 private:
  struct CanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      // canonical_compare short-circuits equal names via the cached hash.
      return a.canonical_compare(b) < 0;
    }
  };
  struct PositiveEntry {
    dns::RRset rrset;
    std::uint64_t expires_us = 0;
    bool validated = false;
    bool referenced = false;  // second-chance bit, set on hit
    std::uint32_t cost = 0;   // accounted bytes
    std::vector<dns::ResourceRecord> rrsigs;
  };
  struct NegativeRecord {
    std::uint64_t expires_us = 0;
    bool nxdomain = false;
    bool referenced = false;
  };
  struct ServfailRecord {
    std::uint64_t expires_us = 0;
    bool referenced = false;
  };
  struct NsecEntry {
    /// Interned id of the span's next owner (DESIGN.md §4k): the chain
    /// stores each distinct name once in the cache arena, so this duplicate
    /// of the successor's owner name is pointer-width instead of a full
    /// Name copy. Resolve with arena_.name().
    dns::NameId next = dns::kInvalidNameId;
    std::vector<dns::RRType> types;
    std::uint64_t expires_us = 0;
    bool referenced = false;
    std::uint8_t chances = 0;  // refilled on hit from nsec_extra_chances
    std::uint32_t cost = 0;
  };
  struct ZoneCutRecord {
    std::uint64_t expires_us = 0;
    bool referenced = false;
  };

  // Per-name slot lists: one hash probe finds every type cached under a
  // name (typically 1-3 entries), so probes do no (Name, RRType) pair-key
  // construction and the NXDOMAIN any-type scan is a tiny linear walk
  // instead of a map range scan. Positive entries are boxed so handed-out
  // Entry pointers survive rehashes, matching std::map pointer stability.
  template <typename V>
  using TypeSlots = std::vector<std::pair<dns::RRType, V>>;
  using PositiveSlots = TypeSlots<std::unique_ptr<PositiveEntry>>;
  // NSEC chains stay ordered: coverage checks need the greatest owner
  // <= qname (predecessor query), which a hash table cannot answer. The
  // wrapper carries the per-zone resume hand for incremental sweeps, so a
  // 100k-entry DLV chain is reclaimed a few entries per tick instead of in
  // one stall.
  using NsecChain = std::map<dns::Name, NsecEntry, CanonicalLess>;
  struct NsecZone {
    NsecChain chain;
    dns::Name hand;  // sweep/eviction resume position (root = begin)
    // -- Span index (DESIGN.md §4j) --
    // Lazily rebuilt sorted array of pointers into the chain's (pointer-
    // stable) map nodes, so the predecessor query is one binary search over
    // contiguous memory instead of a node-hopping tree descent — this is
    // what closes the 301ns negative-probe vs 57ns positive-probe gap.
    // `generation` is bumped on every structural chain mutation (insert or
    // erase); a stale `index_generation` invalidates the index.
    std::vector<NsecChain::value_type*> index;
    std::uint64_t generation = 1;
    std::uint64_t index_generation = 0;
  };
  struct Nsec3ZoneEvidence {
    crypto::Bytes salt;
    std::uint16_t iterations = 0;
    /// Proven closest enclosers (wildcard absence included) -> expiry.
    std::map<dns::Name, std::uint64_t, CanonicalLess> enclosers;
    struct HashedSpan {
      crypto::Bytes lo;  // owner hash
      crypto::Bytes hi;  // next_hashed
      std::uint64_t expires_us = 0;
    };
    std::vector<HashedSpan> spans;  // sorted by lo, deduped
  };

  /// The five stores, as clock-hand / sweep-rotation indices.
  enum Section : std::size_t {
    kPositive = 0,
    kNegative,
    kServfail,
    kNsec,
    kZoneCut,
    kSectionCount,
  };
  static const char* section_name(Section section);

  [[nodiscard]] std::uint64_t now() const { return clock_->now_us(); }
  [[nodiscard]] static std::uint64_t ttl_to_deadline(std::uint64_t now_us,
                                                     std::uint32_t ttl) {
    return now_us + static_cast<std::uint64_t>(ttl) * 1'000'000ULL;
  }

  // -- Byte accounting (approximate, deterministic) --------------------------

  [[nodiscard]] static std::size_t name_cost(const dns::Name& name);
  [[nodiscard]] static std::size_t record_cost(const dns::ResourceRecord& r);
  [[nodiscard]] static std::size_t positive_cost(const PositiveEntry& entry);
  [[nodiscard]] static std::size_t negative_cost(const dns::Name& name);
  [[nodiscard]] static std::size_t servfail_cost(const dns::Name& name);
  /// Non-static: dereferences entry.next through the arena. The formula is
  /// unchanged from the pre-interning layout — accounted cost must not move
  /// or the pinned eviction order would.
  [[nodiscard]] std::size_t nsec_cost(const dns::Name& owner,
                                      const NsecEntry& entry) const;
  [[nodiscard]] static std::size_t zone_cut_cost(const dns::Name& apex);

  void charge(std::size_t cost);
  void release(std::size_t cost);

  // -- Unified denial internals (DESIGN.md §4j) ------------------------------
  // The non-deprecated bodies behind find_denial() and the legacy shims.

  [[nodiscard]] NegativeEntry negative_lookup(const dns::Name& name,
                                              dns::RRType type,
                                              std::uint64_t* expires_us);
  /// Span lookup: indexed predecessor probe with a fall-back to the
  /// reclaiming map walk when the index candidate has expired. On a hit,
  /// `*from_shared` (when non-null) reports whether the covering span came
  /// from the shared store rather than the private chain.
  [[nodiscard]] NsecCoverage nsec_lookup(const dns::Name& zone_apex,
                                         const dns::Name& qname,
                                         dns::RRType qtype,
                                         std::uint64_t* expires_us,
                                         bool* from_shared);
  /// Erasing predecessor walk over the ordered chain (the pre-index slow
  /// path); reclaims expired entries met on the walk.
  [[nodiscard]] NsecCoverage nsec_chain_walk(const dns::Name& zone_apex,
                                             NsecZone& zone,
                                             const dns::Name& qname,
                                             dns::RRType qtype,
                                             std::uint64_t* expires_us,
                                             bool* from_shared);
  /// Classifies one live chain entry against (qname, qtype); returns
  /// kNoProof when the entry does not decide the query. `*stop_shared` is
  /// set when an exact entry says the type exists — a sibling's proof
  /// cannot contradict a validated span, so the shared consult is skipped.
  [[nodiscard]] NsecCoverage classify_nsec_entry(const dns::Name& zone_apex,
                                                 const dns::Name& owner,
                                                 NsecEntry& entry,
                                                 const dns::Name& qname,
                                                 dns::RRType qtype,
                                                 std::uint64_t* expires_us,
                                                 bool* stop_shared);
  static void rebuild_span_index(NsecZone& zone);
  /// L2 NSEC consult when the private chain has no proof: asks the shared
  /// store (when attached) and counts "cache.nsec_shared_hit".
  [[nodiscard]] NsecCoverage shared_nsec_check(const dns::Name& zone_apex,
                                               const dns::Name& qname,
                                               dns::RRType qtype,
                                               std::uint64_t* expires_us);
  /// Hash-gated NSEC3 synthesis (RFC 8198 over cached closest-encloser
  /// evidence). Hashes at most one name (the next closer) and only when
  /// qname sits under a proven encloser; hash_ops is reported even on a
  /// miss — the probe burned the CPU either way.
  [[nodiscard]] ProofResult nsec3_synth_lookup(const dns::Name& zone_apex,
                                               const dns::Name& qname);

  // -- Sweep / eviction internals --------------------------------------------

  /// Sweeps up to `budget` slots of `section` for expired entries;
  /// returns entries reclaimed.
  std::size_t sweep_section(Section section, std::size_t budget);
  /// One clock step in `section`: visits up to `budget` slots; gives
  /// referenced entries a second chance (clearing the bit) and evicts the
  /// first unreferenced one. Returns true when something was evicted.
  bool evict_step(Section section, std::size_t budget);
  void count_eviction(Section section, std::size_t entries);
  void trace_eviction(Section section, const dns::Name& owner);

  const sim::SimClock* clock_;
  obs::Tracer* tracer_ = nullptr;
  SharedProofStore* shared_ = nullptr;  // nullable; not owned
  std::uint32_t shard_id_ = 0;
  metrics::CounterSet counters_;
  CacheLimits limits_;
  std::uint64_t bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  dns::NameHashMap<PositiveSlots> positive_;
  dns::NameHashMap<TypeSlots<NegativeRecord>> negative_;
  dns::NameHashMap<TypeSlots<ServfailRecord>> servfail_;
  dns::NameHashMap<NsecZone> nsec_by_zone_;
  dns::NameHashMap<Nsec3ZoneEvidence> nsec3_evidence_;
  dns::NameHashMap<ZoneCutRecord> zone_cuts_;
  // Interning arena for names the cache stores redundantly (NSEC span
  // next-pointers today). Lives alongside the tables; cleared with them.
  dns::NameArena arena_;
  // Sweep rotation state: which section the next sweep tick works on, plus
  // one resume cursor per section. Cursors carry the table generation they
  // were taken under (NameMapSweepCursor), so a rehash between sweep steps
  // restarts that section's walk instead of resuming into a reshuffled
  // slot ordering.
  std::size_t sweep_section_index_ = 0;
  dns::NameMapSweepCursor sweep_cursor_[kSectionCount] = {};
  // Eviction clock state: independent hands so pressure eviction does not
  // perturb the expiry sweep's coverage.
  std::size_t evict_section_index_ = 0;
  dns::NameMapSweepCursor evict_cursor_[kSectionCount] = {};
};

}  // namespace lookaside::resolver
