#include "resolver/validator.h"

#include "crypto/dnssec_algo.h"
#include "zone/keys.h"

namespace lookaside::resolver {

SigCheck Validator::verify_rrset(
    const dns::RRset& rrset, const std::vector<dns::ResourceRecord>& rrsigs,
    const dns::RRset& dnskeys) {
  SigCheck best = SigCheck::kNoSignature;
  auto better = [&best](SigCheck candidate) {
    // kValid short-circuits; otherwise keep the most informative failure.
    if (static_cast<int>(candidate) < static_cast<int>(best) ||
        best == SigCheck::kNoSignature) {
      best = candidate;
    }
  };

  const auto now_seconds =
      static_cast<std::uint32_t>(clock_->now_us() / 1'000'000ULL);

  for (const dns::ResourceRecord& record : rrsigs) {
    const auto* sig = std::get_if<dns::RrsigRdata>(&record.rdata);
    if (sig == nullptr) continue;
    if (record.name != rrset.name()) continue;
    if (sig->type_covered != rrset.type()) continue;

    if (!crypto::algorithm_supported(sig->algorithm)) {
      better(SigCheck::kUnsupported);
      continue;
    }
    if (now_seconds < sig->inception || now_seconds > sig->expiration) {
      better(SigCheck::kExpired);
      continue;
    }

    bool key_found = false;
    for (const dns::ResourceRecord& key_record : dnskeys.records()) {
      const auto* key = std::get_if<dns::DnskeyRdata>(&key_record.rdata);
      if (key == nullptr) continue;
      if (key->algorithm != sig->algorithm) continue;
      if (key->key_tag() != sig->key_tag) continue;
      key_found = true;
      const crypto::RsaPublicKey* rsa = parse_key(*key);
      if (rsa == nullptr) continue;
      const dns::Bytes signed_data = dns::rrsig_signed_data(*sig, rrset);
      if (crypto::verify_message(*rsa, signed_data, sig->signature)) {
        return SigCheck::kValid;
      }
      better(SigCheck::kInvalid);
    }
    if (!key_found) better(SigCheck::kNoMatchingKey);
  }
  return best;
}

bool Validator::key_matches_ds(const dns::Name& owner,
                               const dns::DnskeyRdata& key,
                               const dns::DsRdata& ds) {
  if (key.algorithm != ds.algorithm) return false;
  if (key.key_tag() != ds.key_tag) return false;
  if (ds.digest_type != 2) return false;  // only SHA-256 DS in this library
  return zone::make_ds(owner, key).digest == ds.digest;
}

const dns::DnskeyRdata* Validator::find_ds_endorsed_key(
    const dns::Name& owner, const dns::RRset& dnskeys,
    const dns::DsRdata& ds) {
  for (const dns::ResourceRecord& record : dnskeys.records()) {
    const auto* key = std::get_if<dns::DnskeyRdata>(&record.rdata);
    if (key != nullptr && key_matches_ds(owner, *key, ds)) return key;
  }
  return nullptr;
}

const crypto::RsaPublicKey* Validator::parse_key(const dns::DnskeyRdata& key) {
  const std::string cache_key(key.public_key.begin(), key.public_key.end());
  const auto it = key_cache_.find(cache_key);
  if (it != key_cache_.end()) return it->second.get();
  auto parsed = crypto::RsaPublicKey::from_wire(key.public_key);
  if (!parsed.has_value()) {
    key_cache_.emplace(cache_key, nullptr);
    return nullptr;
  }
  auto owned = std::make_unique<crypto::RsaPublicKey>(std::move(*parsed));
  const crypto::RsaPublicKey* raw = owned.get();
  key_cache_.emplace(cache_key, std::move(owned));
  return raw;
}

GroupedSection group_section(const std::vector<dns::ResourceRecord>& section) {
  GroupedSection out;
  for (const dns::ResourceRecord& record : section) {
    if (record.type == dns::RRType::kRrsig) {
      out.rrsigs.push_back(record);
      continue;
    }
    dns::RRset* target = nullptr;
    for (dns::RRset& existing : out.rrsets) {
      if (existing.name() == record.name && existing.type() == record.type) {
        target = &existing;
        break;
      }
    }
    if (target == nullptr) {
      out.rrsets.emplace_back(record.name, record.type);
      target = &out.rrsets.back();
    }
    target->add(record);
  }
  return out;
}

const dns::RRset* find_rrset(const GroupedSection& section,
                             const dns::Name& name, dns::RRType type) {
  for (const dns::RRset& rrset : section.rrsets) {
    if (rrset.name() == name && rrset.type() == type) return &rrset;
  }
  return nullptr;
}

}  // namespace lookaside::resolver
