#include "resolver/validator.h"

#include <stdexcept>

#include "crypto/dnssec_algo.h"
#include "resolver/shared_store.h"
#include "zone/keys.h"
#include "zone/nsec3.h"

namespace lookaside::resolver {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, const std::uint8_t* data,
                    std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint64_t Validator::verdict_key(const dns::Bytes& signed_data,
                                     const crypto::Bytes& signature,
                                     const dns::DnskeyRdata& key) {
  std::uint64_t hash = fnv1a(kFnvOffset, signed_data.data(),
                             signed_data.size());
  hash = fnv1a(hash, signature.data(), signature.size());
  hash = fnv1a(hash, key.public_key.data(), key.public_key.size());
  const std::uint16_t tag = key.key_tag();
  const std::uint8_t tag_bytes[2] = {static_cast<std::uint8_t>(tag >> 8),
                                     static_cast<std::uint8_t>(tag & 0xFF)};
  return fnv1a(hash, tag_bytes, 2);
}

std::optional<bool> Validator::verdict_probe(std::uint64_t key,
                                             std::uint64_t now_us) {
  const auto it = verdicts_.find(key);
  if (it != verdicts_.end()) {
    if (it->second.expires_us > now_us) {
      counters_.add("verdict.rsa_skipped");
      return it->second.valid;
    }
    verdicts_.erase(it);
  }
  if (shared_ != nullptr) {
    if (const auto shared =
            shared_->check_verdict(key, now_us, shard_id_)) {
      counters_.add("verdict.rsa_skipped");
      counters_.add("verdict.shared_hit");
      return shared;
    }
  }
  counters_.add("verdict.miss");
  return std::nullopt;
}

void Validator::verdict_insert(std::uint64_t key, bool valid,
                               std::uint64_t expires_us) {
  if (verdicts_.size() >= verdict_capacity_ &&
      verdicts_.find(key) == verdicts_.end()) {
    // Deterministic epoch flush: cheaper and replay-stable vs LRU chains.
    verdicts_.clear();
    counters_.add("verdict.flush");
  }
  verdicts_[key] = Verdict{valid, expires_us};
  if (shared_ != nullptr) {
    shared_->store_verdict(key, valid, expires_us, shard_id_);
  }
}

SigCheck Validator::verify_rrset(
    const dns::RRset& rrset, const std::vector<dns::ResourceRecord>& rrsigs,
    const dns::RRset& dnskeys) {
  SigCheck best = SigCheck::kNoSignature;
  auto better = [&best](SigCheck candidate) {
    // kValid short-circuits; otherwise keep the most informative failure.
    if (static_cast<int>(candidate) < static_cast<int>(best) ||
        best == SigCheck::kNoSignature) {
      best = candidate;
    }
  };

  const auto now_seconds =
      static_cast<std::uint32_t>(clock_->now_us() / 1'000'000ULL);

  for (const dns::ResourceRecord& record : rrsigs) {
    const auto* sig = std::get_if<dns::RrsigRdata>(&record.rdata);
    if (sig == nullptr) continue;
    if (record.name != rrset.name()) continue;
    if (sig->type_covered != rrset.type()) continue;

    if (!crypto::algorithm_supported(sig->algorithm)) {
      better(SigCheck::kUnsupported);
      continue;
    }
    if (now_seconds < sig->inception || now_seconds > sig->expiration) {
      better(SigCheck::kExpired);
      continue;
    }

    bool key_found = false;
    for (const dns::ResourceRecord& key_record : dnskeys.records()) {
      const auto* key = std::get_if<dns::DnskeyRdata>(&key_record.rdata);
      if (key == nullptr) continue;
      if (key->algorithm != sig->algorithm) continue;
      if (key->key_tag() != sig->key_tag) continue;
      key_found = true;
      const crypto::RsaPublicKey* rsa = parse_key(*key);
      if (rsa == nullptr) continue;
      const dns::Bytes signed_data = dns::rrsig_signed_data(*sig, rrset);
      const std::uint64_t sig_expires_us =
          static_cast<std::uint64_t>(sig->expiration) * 1'000'000ULL;
      // vState verdict cache (DESIGN.md §4j): a remembered outcome for this
      // exact (signed data, signature, key) tuple skips the RSA verify.
      // Bounded by the RRSIG expiration — the window check above already
      // rejected expired signatures, so a live verdict can never outlast
      // the signature it memoizes. RSA verification is host CPU, not
      // virtual-clock time, so the cache cannot perturb leak determinism.
      const bool batching = batch_enabled_ && batch_.active();
      std::uint64_t vkey = 0;
      if (verdict_capacity_ > 0 || batching) {
        vkey = verdict_key(signed_data, sig->signature, *key);
      }
      if (verdict_capacity_ > 0) {
        if (const auto cached = verdict_probe(vkey, clock_->now_us())) {
          if (*cached) return SigCheck::kValid;
          better(SigCheck::kInvalid);
          continue;
        }
      }
      // Batched verification (DESIGN.md §4k): within one resolve window a
      // tuple that missed the verdict cache still dedups against the
      // verifications this resolution already ran. The repeat feeds its
      // outcome back through verdict_insert — the same write the executed
      // verify would have done — so the verdict.* counters and shared-store
      // contents are identical with batching on or off.
      if (batching) {
        if (const auto memo = batch_.lookup(vkey)) {
          batch_.count_dedup();
          counters_.add("verify.batch_deduped");
          if (verdict_capacity_ > 0) {
            verdict_insert(vkey, *memo, sig_expires_us);
          }
          if (*memo) return SigCheck::kValid;
          better(SigCheck::kInvalid);
          continue;
        }
      }
      const bool verified =
          crypto::verify_message(*rsa, signed_data, sig->signature);
      if (batching) {
        batch_.record(vkey, verified);
        counters_.add("verify.batch_unique");
      }
      if (verdict_capacity_ > 0) {
        verdict_insert(vkey, verified, sig_expires_us);
      }
      if (verified) return SigCheck::kValid;
      better(SigCheck::kInvalid);
    }
    if (!key_found) better(SigCheck::kNoMatchingKey);
  }
  return best;
}

bool Validator::key_matches_ds(const dns::Name& owner,
                               const dns::DnskeyRdata& key,
                               const dns::DsRdata& ds) {
  if (key.algorithm != ds.algorithm) return false;
  if (key.key_tag() != ds.key_tag) return false;
  if (ds.digest_type != 2) return false;  // only SHA-256 DS in this library
  return zone::make_ds(owner, key).digest == ds.digest;
}

const dns::DnskeyRdata* Validator::find_ds_endorsed_key(
    const dns::Name& owner, const dns::RRset& dnskeys,
    const dns::DsRdata& ds) {
  for (const dns::ResourceRecord& record : dnskeys.records()) {
    const auto* key = std::get_if<dns::DnskeyRdata>(&record.rdata);
    if (key != nullptr && key_matches_ds(owner, *key, ds)) return key;
  }
  return nullptr;
}

const crypto::RsaPublicKey* Validator::parse_key(const dns::DnskeyRdata& key) {
  const std::string cache_key(key.public_key.begin(), key.public_key.end());
  const auto it = key_cache_.find(cache_key);
  if (it != key_cache_.end()) return it->second.get();
  auto parsed = crypto::RsaPublicKey::from_wire(key.public_key);
  if (!parsed.has_value()) {
    key_cache_.emplace(cache_key, nullptr);
    return nullptr;
  }
  auto owned = std::make_unique<crypto::RsaPublicKey>(std::move(*parsed));
  const crypto::RsaPublicKey* raw = owned.get();
  key_cache_.emplace(cache_key, std::move(owned));
  return raw;
}

GroupedSection group_section(const std::vector<dns::ResourceRecord>& section) {
  GroupedSection out;
  for (const dns::ResourceRecord& record : section) {
    if (record.type == dns::RRType::kRrsig) {
      out.rrsigs.push_back(record);
      continue;
    }
    dns::RRset* target = nullptr;
    for (dns::RRset& existing : out.rrsets) {
      if (existing.name() == record.name && existing.type() == record.type) {
        target = &existing;
        break;
      }
    }
    if (target == nullptr) {
      out.rrsets.emplace_back(record.name, record.type);
      target = &out.rrsets.back();
    }
    target->add(record);
  }
  return out;
}

const dns::RRset* find_rrset(const GroupedSection& section,
                             const dns::Name& name, dns::RRType type) {
  for (const dns::RRset& rrset : section.rrsets) {
    if (rrset.name() == name && rrset.type() == type) return &rrset;
  }
  return nullptr;
}

const dns::Nsec3Rdata* Validator::first_nsec3(const GroupedSection& authority) {
  for (const dns::RRset& rrset : authority.rrsets) {
    if (rrset.type() != dns::RRType::kNsec3 || rrset.empty()) continue;
    if (const auto* rdata =
            std::get_if<dns::Nsec3Rdata>(&rrset.records().front().rdata)) {
      return rdata;
    }
  }
  return nullptr;
}

Nsec3Check Validator::check_nsec3_denial(const GroupedSection& authority,
                                         const dns::Name& qname,
                                         const dns::Name& zone_apex,
                                         const dns::RRset& dnskeys) {
  Nsec3Check out;
  const dns::Nsec3Rdata* params = first_nsec3(authority);
  if (params == nullptr) return out;
  out.iterations = params->iterations;

  // One hashed span per presented NSEC3 record: [owner_hash, next_hashed).
  struct Span {
    crypto::Bytes owner_hash;
    const dns::Nsec3Rdata* rdata = nullptr;
  };
  std::vector<Span> spans;
  for (const dns::RRset& rrset : authority.rrsets) {
    if (rrset.type() != dns::RRType::kNsec3) continue;
    if (verify_rrset(rrset, authority.rrsigs, dnskeys) != SigCheck::kValid) {
      return out;
    }
    if (rrset.name().label_count() == 0) return out;
    crypto::Bytes owner_hash;
    try {
      owner_hash = zone::base32hex_decode(rrset.name().label(0));
    } catch (const std::invalid_argument&) {
      return out;
    }
    for (const dns::ResourceRecord& record : rrset.records()) {
      const auto* rdata = std::get_if<dns::Nsec3Rdata>(&record.rdata);
      if (rdata == nullptr || rdata->iterations != params->iterations ||
          rdata->salt != params->salt) {
        return out;  // mixed parameters: reject the whole proof
      }
      spans.push_back(Span{owner_hash, rdata});
    }
  }
  if (spans.empty()) return out;

  const auto matches = [&spans](const crypto::Bytes& digest) {
    for (const Span& span : spans) {
      if (span.owner_hash == digest) return true;
    }
    return false;
  };
  const auto covered = [&spans](const crypto::Bytes& digest) {
    for (const Span& span : spans) {
      const crypto::Bytes& lo = span.owner_hash;
      const crypto::Bytes& hi = span.rdata->next_hashed;
      if (lo < hi) {
        if (lo < digest && digest < hi) return true;
      } else {
        // Wraparound span (last NSEC3 points back to the first).
        if (digest > lo || digest < hi) return true;
      }
    }
    return false;
  };
  const auto hash_name = [&](const dns::Name& name) {
    out.hash_ops += zone::nsec3_hash_ops(params->iterations);
    return zone::nsec3_hash(name, params->salt, params->iterations);
  };

  // RFC 5155 §8.4 closest-encloser discovery: hash qname, then each ancestor
  // up to the apex, until a matching NSEC3 is found. Every probe is a full
  // iterated hash — this loop is where the attacker's CPU bill lands.
  if (!qname.is_subdomain_of(zone_apex)) return out;
  const crypto::Bytes qname_hash = hash_name(qname);
  if (matches(qname_hash)) {
    out.proven = true;  // NODATA: qname exists, proof is the matching NSEC3
    return out;
  }
  dns::Name closest = qname;
  crypto::Bytes next_closer_hash = qname_hash;
  bool found_closest = false;
  while (closest.label_count() > zone_apex.label_count()) {
    const dns::Name parent = closest.parent();
    const crypto::Bytes parent_hash = hash_name(parent);
    if (matches(parent_hash)) {
      found_closest = true;
      break;
    }
    closest = parent;
    next_closer_hash = parent_hash;
  }
  if (!found_closest) return out;
  if (!covered(next_closer_hash)) return out;
  const dns::Name closest_encloser = closest.parent();
  const crypto::Bytes wildcard_hash =
      hash_name(closest_encloser.with_prefix_label("*"));
  out.proven = covered(wildcard_hash) || matches(wildcard_hash);
  if (out.proven) {
    // Export synthesis evidence: the encloser is proven to exist with its
    // wildcard proven absent, and every span came from a verified RRset —
    // exactly what hash-gated RFC 8198 synthesis needs later.
    out.has_evidence = true;
    out.closest_encloser = closest_encloser;
    out.salt = params->salt;
    out.spans.reserve(spans.size());
    for (const Span& span : spans) {
      out.spans.emplace_back(span.owner_hash, span.rdata->next_hashed);
    }
  }
  return out;
}

}  // namespace lookaside::resolver
