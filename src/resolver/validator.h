// DNSSEC validation primitives: RRSIG verification against DNSKEY RRsets,
// DS/DNSKEY matching, and RRset grouping of message sections.
//
// Public keys parse into Montgomery-ready RSA contexts, which is expensive;
// the Validator memoizes parsed keys by their wire image so million-domain
// simulations pay the cost once per distinct key.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/rsa.h"
#include "crypto/verify_batch.h"
#include "dns/message.h"
#include "dns/record.h"
#include "metrics/counters.h"
#include "sim/clock.h"

namespace lookaside::resolver {

class SharedProofStore;

/// Outcome of verifying one RRset.
enum class SigCheck {
  kValid,
  kNoSignature,   // no covering RRSIG present
  kNoMatchingKey, // RRSIG names a key tag absent from the DNSKEY set
  kInvalid,       // cryptographic verification failed
  kExpired,       // outside the RRSIG validity window
  kUnsupported,   // unknown algorithm
};

struct GroupedSection;

/// Outcome of checking an NSEC3 denial proof (RFC 5155 §8). `hash_ops` is
/// the number of SHA-1 invocations the check spent — the attacker-controlled
/// CPU bill the resolver charges to the virtual clock.
struct Nsec3Check {
  bool proven = false;
  std::uint16_t iterations = 0;
  std::uint64_t hash_ops = 0;
  /// Synthesis evidence (DESIGN.md §4j), filled on proven NXDOMAIN proofs:
  /// the discovered closest encloser (whose wildcard was proven absent),
  /// the zone's hash parameters, and every signature-verified hashed span
  /// in the proof. The resolver feeds this to
  /// ResolverCache::store_nsec3_evidence so later queries under the same
  /// encloser synthesize denials with a single hash.
  bool has_evidence = false;
  dns::Name closest_encloser;
  crypto::Bytes salt;
  std::vector<std::pair<crypto::Bytes, crypto::Bytes>> spans;
};

/// Stateless checks plus a parsed-key cache and an optional bounded
/// verdict cache (the vState idiom): repeat verifications of the same
/// (signed data, signature, key) tuple skip RSA entirely.
class Validator {
 public:
  explicit Validator(const sim::SimClock& clock) : clock_(&clock) {}

  /// Enables the verdict cache with room for `entries` verdicts (0
  /// disables it). Eviction is a deterministic epoch flush: when full, the
  /// whole table is cleared ("verdict.flush") — no LRU ordering to keep in
  /// sync across replays.
  void set_verdict_cache_entries(std::size_t entries) {
    verdict_capacity_ = entries;
    if (entries == 0) verdicts_.clear();
  }

  /// Attaches a shared store (nullable): verdicts are then written through
  /// and consulted on local misses, so sibling shards skip RSA for
  /// signatures any shard already checked.
  void attach_shared(SharedProofStore* store, std::uint32_t shard_id = 0) {
    shared_ = store;
    shard_id_ = shard_id;
  }

  /// Counters: "verdict.rsa_skipped" (cache hits that skipped an RSA
  /// verify), "verdict.miss", "verdict.shared_hit", "verdict.flush",
  /// "verify.batch_unique" (verifications executed inside a batch window),
  /// "verify.batch_deduped" (in-window repeats answered without RSA).
  [[nodiscard]] const metrics::CounterSet& counters() const {
    return counters_;
  }

  /// The per-resolve-step RSA dedup window (DESIGN.md §4k). The resolver
  /// opens a crypto::VerifyBatchScope over it at resolve() entry; while a
  /// window is open, identical (signed data, signature, key) tuples that
  /// miss the verdict cache run RSA once and answer repeats from the memo.
  [[nodiscard]] crypto::VerifyBatch& verify_batch() { return batch_; }

  /// Disables (or re-enables) batch dedup without touching window scoping —
  /// the A/B knob for tests and bench_micro; output is identical either
  /// way, only the RSA work count changes.
  void set_batch_enabled(bool enabled) { batch_enabled_ = enabled; }

  /// 64-bit content key for one verification: FNV-1a over the signed data,
  /// the signature bytes and the key material. Key rollover invalidates by
  /// construction — a new key (or new signature) hashes to a new verdict.
  [[nodiscard]] static std::uint64_t verdict_key(
      const dns::Bytes& signed_data, const crypto::Bytes& signature,
      const dns::DnskeyRdata& key);

  /// Verifies `rrset` against any covering RRSIG in `rrsigs` using keys from
  /// `dnskeys`. Returns the best outcome across candidate signatures.
  [[nodiscard]] SigCheck verify_rrset(
      const dns::RRset& rrset, const std::vector<dns::ResourceRecord>& rrsigs,
      const dns::RRset& dnskeys);

  /// True when `key` at `owner` hashes to `ds` (RFC 4034 §5.1.4).
  [[nodiscard]] static bool key_matches_ds(const dns::Name& owner,
                                           const dns::DnskeyRdata& key,
                                           const dns::DsRdata& ds);

  /// Finds the DNSKEY in `dnskeys` that `ds` endorses, or nullptr.
  [[nodiscard]] static const dns::DnskeyRdata* find_ds_endorsed_key(
      const dns::Name& owner, const dns::RRset& dnskeys,
      const dns::DsRdata& ds);

  /// Parses (and caches) the RSA public key of a DNSKEY. Returns nullptr for
  /// malformed key material.
  [[nodiscard]] const crypto::RsaPublicKey* parse_key(
      const dns::DnskeyRdata& key);

  /// First NSEC3 RDATA in `authority`, or nullptr — the cheap peek RFC 9276
  /// needs to apply its iteration cap *before* any hashing happens.
  [[nodiscard]] static const dns::Nsec3Rdata* first_nsec3(
      const GroupedSection& authority);

  /// Verifies an NSEC3 denial for `qname` (RFC 5155 §8.4-§8.7): signature
  /// checks over every NSEC3 RRset, closest-encloser discovery by hashing
  /// qname's ancestor chain, a covering span for the next-closer name and
  /// for the wildcard at the closest encloser. NODATA proofs (matching
  /// NSEC3 at qname) are accepted directly.
  [[nodiscard]] Nsec3Check check_nsec3_denial(const GroupedSection& authority,
                                              const dns::Name& qname,
                                              const dns::Name& zone_apex,
                                              const dns::RRset& dnskeys);

 private:
  struct Verdict {
    bool valid = false;
    std::uint64_t expires_us = 0;  // the RRSIG expiration
  };

  /// Cached (or shared) verdict for `key` live at `now_us`, else nullopt.
  [[nodiscard]] std::optional<bool> verdict_probe(std::uint64_t key,
                                                  std::uint64_t now_us);
  void verdict_insert(std::uint64_t key, bool valid, std::uint64_t expires_us);

  const sim::SimClock* clock_;
  std::unordered_map<std::string, std::unique_ptr<crypto::RsaPublicKey>>
      key_cache_;
  std::unordered_map<std::uint64_t, Verdict> verdicts_;
  std::size_t verdict_capacity_ = 0;
  crypto::VerifyBatch batch_;
  bool batch_enabled_ = true;
  SharedProofStore* shared_ = nullptr;  // nullable; not owned
  std::uint32_t shard_id_ = 0;
  metrics::CounterSet counters_;
};

/// Groups a message section into RRsets, preserving section order of first
/// appearance; RRSIG records are returned separately.
struct GroupedSection {
  std::vector<dns::RRset> rrsets;
  std::vector<dns::ResourceRecord> rrsigs;
};
[[nodiscard]] GroupedSection group_section(
    const std::vector<dns::ResourceRecord>& section);

/// First RRset with (name, type) within a grouped section, or nullptr.
[[nodiscard]] const dns::RRset* find_rrset(const GroupedSection& section,
                                           const dns::Name& name,
                                           dns::RRType type);

}  // namespace lookaside::resolver
