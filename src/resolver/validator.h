// DNSSEC validation primitives: RRSIG verification against DNSKEY RRsets,
// DS/DNSKEY matching, and RRset grouping of message sections.
//
// Public keys parse into Montgomery-ready RSA contexts, which is expensive;
// the Validator memoizes parsed keys by their wire image so million-domain
// simulations pay the cost once per distinct key.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/rsa.h"
#include "dns/message.h"
#include "dns/record.h"
#include "sim/clock.h"

namespace lookaside::resolver {

/// Outcome of verifying one RRset.
enum class SigCheck {
  kValid,
  kNoSignature,   // no covering RRSIG present
  kNoMatchingKey, // RRSIG names a key tag absent from the DNSKEY set
  kInvalid,       // cryptographic verification failed
  kExpired,       // outside the RRSIG validity window
  kUnsupported,   // unknown algorithm
};

struct GroupedSection;

/// Outcome of checking an NSEC3 denial proof (RFC 5155 §8). `hash_ops` is
/// the number of SHA-1 invocations the check spent — the attacker-controlled
/// CPU bill the resolver charges to the virtual clock.
struct Nsec3Check {
  bool proven = false;
  std::uint16_t iterations = 0;
  std::uint64_t hash_ops = 0;
};

/// Stateless checks plus a parsed-key cache.
class Validator {
 public:
  explicit Validator(const sim::SimClock& clock) : clock_(&clock) {}

  /// Verifies `rrset` against any covering RRSIG in `rrsigs` using keys from
  /// `dnskeys`. Returns the best outcome across candidate signatures.
  [[nodiscard]] SigCheck verify_rrset(
      const dns::RRset& rrset, const std::vector<dns::ResourceRecord>& rrsigs,
      const dns::RRset& dnskeys);

  /// True when `key` at `owner` hashes to `ds` (RFC 4034 §5.1.4).
  [[nodiscard]] static bool key_matches_ds(const dns::Name& owner,
                                           const dns::DnskeyRdata& key,
                                           const dns::DsRdata& ds);

  /// Finds the DNSKEY in `dnskeys` that `ds` endorses, or nullptr.
  [[nodiscard]] static const dns::DnskeyRdata* find_ds_endorsed_key(
      const dns::Name& owner, const dns::RRset& dnskeys,
      const dns::DsRdata& ds);

  /// Parses (and caches) the RSA public key of a DNSKEY. Returns nullptr for
  /// malformed key material.
  [[nodiscard]] const crypto::RsaPublicKey* parse_key(
      const dns::DnskeyRdata& key);

  /// First NSEC3 RDATA in `authority`, or nullptr — the cheap peek RFC 9276
  /// needs to apply its iteration cap *before* any hashing happens.
  [[nodiscard]] static const dns::Nsec3Rdata* first_nsec3(
      const GroupedSection& authority);

  /// Verifies an NSEC3 denial for `qname` (RFC 5155 §8.4-§8.7): signature
  /// checks over every NSEC3 RRset, closest-encloser discovery by hashing
  /// qname's ancestor chain, a covering span for the next-closer name and
  /// for the wildcard at the closest encloser. NODATA proofs (matching
  /// NSEC3 at qname) are accepted directly.
  [[nodiscard]] Nsec3Check check_nsec3_denial(const GroupedSection& authority,
                                              const dns::Name& qname,
                                              const dns::Name& zone_apex,
                                              const dns::RRset& dnskeys);

 private:
  const sim::SimClock* clock_;
  std::unordered_map<std::string, std::unique_ptr<crypto::RsaPublicKey>>
      key_cache_;
};

/// Groups a message section into RRsets, preserving section order of first
/// appearance; RRSIG records are returned separately.
struct GroupedSection {
  std::vector<dns::RRset> rrsets;
  std::vector<dns::ResourceRecord> rrsigs;
};
[[nodiscard]] GroupedSection group_section(
    const std::vector<dns::ResourceRecord>& section);

/// First RRset with (name, type) within a grouped section, or nullptr.
[[nodiscard]] const dns::RRset* find_rrset(const GroupedSection& section,
                                           const dns::Name& name,
                                           dns::RRType type);

}  // namespace lookaside::resolver
