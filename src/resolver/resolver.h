// The recursive, validating, DLV-capable resolver.
//
// One engine models both BIND and Unbound: the paper found their *protocol*
// behavior identical, with leakage determined entirely by configuration
// (ResolverConfig reproduces the per-installer defaults). The engine
// implements:
//   - iterative resolution from the root with referral/zone-cut caching,
//     glue chasing and CNAME chasing;
//   - RFC 4035 chain-of-trust validation with the four statuses of paper
//     §2.2 (secure / insecure / bogus / indeterminate);
//   - RFC 5074 DLV look-aside: <domain>.<dlv-domain> queries of type 32769,
//     label stripping for enclosing records, and aggressive negative caching
//     of the DLV zone's NSEC records;
//   - the paper's §6.2 remedies (TXT dlv=0/1 signaling, Z-bit signaling,
//     hashed DLV query names).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dlv/registry.h"
#include "resolver/cache.h"
#include "resolver/config.h"
#include "resolver/validator.h"
#include "server/directory.h"
#include "sim/network.h"

namespace lookaside::obs {
class Tracer;
enum class EventKind : std::uint8_t;
}

namespace lookaside::resolver {

/// DNSSEC validation status (paper §2.2).
enum class ValidationStatus {
  kSecure,
  kInsecure,
  kBogus,
  kIndeterminate,
};

[[nodiscard]] const char* status_name(ValidationStatus status);

/// Per-query knobs a caller sets alongside the (name, type) tuple. The
/// defaults reproduce the historical resolve(name, type) behavior: a
/// DNSSEC-aware caller that wants signatures and validation.
struct QueryOptions {
  /// The DO bit. When false the stub-facing response is stripped of
  /// DNSSEC records and never carries AD (paper §2.2's plain-stub view).
  bool dnssec_ok = true;
  /// The CD bit: skip validation (and therefore DLV look-aside) and hand
  /// back whatever the servers said; status stays indeterminate.
  bool checking_disabled = false;

  friend bool operator==(const QueryOptions&, const QueryOptions&) = default;
};

/// The resolve API v2 request: everything that identifies one resolution.
struct Query {
  dns::Name name;
  dns::RRType type = dns::RRType::kA;
  QueryOptions options;

  Query() = default;
  Query(dns::Name name, dns::RRType type = dns::RRType::kA,
        QueryOptions options = {})
      : name(std::move(name)), type(type), options(options) {}

  friend bool operator==(const Query&, const Query&) = default;
};

/// Everything a caller (or experiment harness) wants to know about one
/// resolution.
struct ResolveResult {
  dns::Message response;  // stub-facing response (SERVFAIL on bogus)
  ValidationStatus status = ValidationStatus::kIndeterminate;
  bool from_cache = false;
  int upstream_exchanges = 0;   // counts every attempt, retries included
  /// Trace span of this resolution (0 when tracing is off). The serve
  /// frontend records it so coalesced waiters can join their lineage onto
  /// the shared span.
  std::uint64_t trace_span_id = 0;
  /// Modeled validator CPU charged to the virtual clock by this resolution
  /// (today: NSEC3 iterated hashing). The serve frontend bills it against
  /// the initiating client's CPU budget.
  std::uint64_t validation_cost_us = 0;

  /// Everything the DLV look-aside path did for this resolution, grouped so
  /// callers read one sub-object instead of seven loose fields.
  struct Dlv {
    bool used = false;                    // >= 1 DLV query actually sent
    std::vector<dns::Name> query_names;   // names sent to the DLV server
    bool record_found = false;
    bool suppressed_by_nsec = false;      // aggressive-negative-cache save
    bool suppressed_by_signal = false;    // TXT / Z-bit remedy save
    bool timed_out = false;  // registry unreachable / retries exhausted
    bool secured = false;    // answer validated through the DLV chain
    /// RFC 9276 strict mode rejected an over-cap NSEC3 denial; the
    /// resolution fails closed (SERVFAIL) instead of degrading.
    bool nsec3_rejected = false;
  };
  Dlv dlv;
};

/// The recursive resolver. Also a sim::Endpoint so stubs reach it over the
/// simulated network (1 ms hop) and its stub-side traffic is accounted too.
class RecursiveResolver : public sim::Endpoint {
 public:
  RecursiveResolver(sim::Network& network, server::ServerDirectory& directory,
                    ResolverConfig config);

  /// Installs the root trust-anchor material (the simulated IANA key). The
  /// configuration decides whether it is actually *used* (auto mode or an
  /// explicit include) — providing it here models the key file existing on
  /// disk, which is exactly the distinction the paper's misconfigurations
  /// hinge on.
  void set_root_trust_anchor(const dns::DnskeyRdata& anchor) {
    root_anchor_ = anchor;
  }

  /// Installs the DLV trust anchor (the registry's KSK; BIND ships this as
  /// the built-in anchor behind `dnssec-lookaside auto`).
  void set_dlv_trust_anchor(const dns::DnskeyRdata& anchor) {
    dlv_anchors_[config_.dlv_domain] = anchor;
  }

  /// Installs the trust anchor for one of the additional DLV registries
  /// (config_.additional_dlv_domains).
  void set_dlv_trust_anchor(const dns::Name& apex,
                            const dns::DnskeyRdata& anchor) {
    dlv_anchors_[apex] = anchor;
  }

  /// Resolves `query` on behalf of a stub (resolve API v2, the only
  /// resolve API since PR 9 removed the positional shim).
  [[nodiscard]] ResolveResult resolve(const Query& query);

  // -- sim::Endpoint ---------------------------------------------------------

  [[nodiscard]] std::string endpoint_id() const override { return "recursive"; }
  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override;

  // -- Introspection -----------------------------------------------------------

  [[nodiscard]] ResolverCache& cache() { return cache_; }
  [[nodiscard]] Validator& validator() { return validator_; }
  [[nodiscard]] const ResolverConfig& config() const { return config_; }

  /// Attaches a SharedProofStore (nullable) to every subsystem that can
  /// publish to it: the cache (NSEC spans, zone cuts) and the validator
  /// (signature verdicts). Sibling shards then synthesize denials and skip
  /// RSA from each other's work (DESIGN.md §4i/§4j).
  void attach_shared(SharedProofStore* store, std::uint32_t shard_id = 0) {
    cache_.attach_shared(store, shard_id);
    validator_.attach_shared(store, shard_id);
  }
  [[nodiscard]] metrics::CounterSet& stats() { return stats_; }
  /// Result of the most recent resolve() (valid until the next one).
  [[nodiscard]] const ResolveResult& last_result() const { return last_result_; }

  /// Attaches a structured tracer (nullable; null disables tracing). The
  /// resolver opens one span per resolution and emits stub_query,
  /// cache_hit, nsec_suppression, dlv_lookup, leak_cause, validation and
  /// stub-facing response events into it; the cache shares the tracer for
  /// its eviction events.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    cache_.set_tracer(tracer);
  }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

 private:
  /// What one iterative fetch produced.
  struct Fetched {
    enum class Kind { kAnswer, kNxDomain, kNoData, kFail };
    Kind kind = Kind::kFail;
    GroupedSection answer;
    GroupedSection authority;
    dns::Name auth_zone;   // apex of the zone that produced the outcome
    bool from_cache = false;
    bool cached_validated = false;
    bool z_bit = false;    // Z bit seen on the final answer (remedy §6.2.1)
  };

  Fetched fetch(const dns::Name& qname, dns::RRType qtype, int depth);
  Fetched fetch_from_cache(const dns::Name& qname, dns::RRType qtype);
  /// Translates a unified denial proof into a cache-sourced Fetched.
  [[nodiscard]] static Fetched fetched_denial(const ProofResult& proof);

  // -- Retry / failover (robustness layer) -----------------------------------

  /// One upstream exchange under `policy`: each attempt's timeout is that
  /// attempt's RTO (so a dead server costs exactly policy.total_wait_us()
  /// of virtual time), truncated responses are retried, and exhausting the
  /// schedule puts the server into holddown. Returns nullopt immediately
  /// (no attempt, no clock advance) when the server is already held down.
  std::optional<dns::Message> exchange_with_retry(sim::Endpoint& server,
                                                  const dns::Message& query,
                                                  const RetryPolicy& policy);

  /// exchange_with_retry against every authority for `zone_apex` in
  /// directory order (primary first, then replicas), failing over to the
  /// next server when one is held down or exhausts its retry schedule.
  std::optional<dns::Message> exchange_zone(const dns::Name& zone_apex,
                                            const dns::Message& query,
                                            const RetryPolicy& policy);

  /// True while `server` is inside its holddown window; a lapsed entry is
  /// erased (the virtual clock re-enables servers, never wall time).
  [[nodiscard]] bool server_dead(const std::string& server_id);
  void mark_server_dead(const std::string& server_id,
                        const dns::Question& question);

  /// Validates the chain of trust from the root anchor down to `zone`,
  /// returning the zone's validated DNSKEY RRset in `out_keys` on success.
  ValidationStatus validate_chain(const dns::Name& zone, int depth,
                                  dns::RRset* out_keys);

  /// Walks DS/DNSKEY links from `from_zone` (whose validated keys are
  /// `trusted`) down to `to_zone`; on success `out_keys` holds `to_zone`'s
  /// validated DNSKEY RRset. Shared by root-anchored and DLV-anchored paths.
  ValidationStatus validate_descent(const dns::Name& from_zone,
                                    dns::RRset trusted,
                                    const dns::Name& to_zone, int depth,
                                    dns::RRset* out_keys);

  /// Fetches `zone`'s DNSKEY RRset and verifies it against a DS (or a
  /// configured trust-anchor DNSKEY). On success caches it as validated and
  /// returns it through `out_keys`.
  ValidationStatus validate_zone_keys(const dns::Name& zone,
                                      const dns::DsRdata* ds,
                                      const dns::DnskeyRdata* anchor,
                                      int depth, dns::RRset* out_keys);

  /// Validates a fetched answer end to end.
  ValidationStatus validate_response(const Fetched& fetched,
                                     const dns::Name& qname, int depth);

  /// RFC 5074 look-aside. Returns the DS found (if any); logs every DLV
  /// query into `result`. Consults the primary DLV domain, then each
  /// additional registry in order.
  struct DlvOutcome {
    bool found = false;
    dns::DsRdata ds;
    dns::Name matched_domain;
  };
  DlvOutcome dlv_lookup(const dns::Name& domain, ResolveResult& result,
                        int depth);
  DlvOutcome dlv_lookup_at(const dns::Name& apex, const dns::Name& domain,
                           ResolveResult& result, int depth);

  /// Fetches + validates one DLV zone's DNSKEY RRset (cached). Returns
  /// nullptr when unavailable or failing validation.
  const dns::RRset* dlv_zone_keys(const dns::Name& apex, int depth);

  /// Caches validated NSEC records from `section` into the aggressive store
  /// for `zone` when `keys` verify them.
  void cache_validated_nsecs(const GroupedSection& section,
                             const dns::Name& zone, const dns::RRset& keys);

  /// Outcome of handle_nsec3_denial for the caller's control flow.
  enum class Nsec3Policy {
    kNone,        // no NSEC3 records present; nothing done
    kAccepted,    // proof verified (cost charged)
    kDowngraded,  // over-cap: denial accepted unverified, zone is insecure
    kRejected,    // strict over-cap or unproven denial: do not trust it
  };

  /// NSEC3 leg of denial processing: applies the RFC 9276 iteration cap
  /// *before* hashing, verifies the proof via the validator otherwise, and
  /// charges the modeled hash CPU to the virtual clock.
  Nsec3Policy handle_nsec3_denial(const GroupedSection& authority,
                                  const dns::Name& qname,
                                  const dns::Name& zone_apex,
                                  const dns::RRset* keys);

  /// Advances the virtual clock by the modeled CPU bill for `hash_ops` SHA-1
  /// invocations and accounts it on the in-flight result.
  void charge_nsec3_cost(std::uint64_t hash_ops);

  /// Denial-proof classes the configuration lets lookups consult: exact
  /// negatives always; NSEC spans under aggressive_negative_caching
  /// (RFC 5074 §5); NSEC3 evidence synthesis under aggressive_synthesis
  /// (RFC 8198).
  [[nodiscard]] unsigned denial_sources() const {
    unsigned sources = DenialSources::kNegative;
    if (config_.aggressive_negative_caching) sources |= DenialSources::kSpans;
    if (config_.aggressive_synthesis) sources |= DenialSources::kNsec3;
    return sources;
  }

  /// §6.2.1 TXT remedy: returns the signal for `domain`
  /// (true=deposit exists, false=none, nullopt=no TXT record configured).
  std::optional<bool> fetch_txt_signal(const dns::Name& domain, int depth);

  /// Deterministic per-name coin flip for NS refresh fetches.
  [[nodiscard]] bool ns_fetch_coin(const dns::Name& zone) const;

  /// Emits a trace event when a tracer is attached (no-op otherwise).
  void trace_event(obs::EventKind kind, const dns::Name& name,
                   dns::RRType qtype, std::string detail,
                   std::string server = {}) const;

  sim::Network* network_;
  server::ServerDirectory* directory_;
  ResolverConfig config_;
  std::optional<dns::DnskeyRdata> root_anchor_;
  std::map<dns::Name, dns::DnskeyRdata> dlv_anchors_;
  ResolverCache cache_;
  Validator validator_;
  metrics::CounterSet stats_;
  obs::Tracer* tracer_ = nullptr;
  ResolveResult last_result_;
  ResolveResult* current_ = nullptr;  // in-flight result for nested counting
  std::uint16_t next_id_ = 1;
  // Leak-cause memo: DLV candidate name -> expiry deadline of the last
  // denial proof (negative-cache or NSEC) known to cover it. At DLV send
  // time this discriminates ttl-expiry (deadline passed) from eviction
  // (deadline still in the future but the proof is gone).
  dns::NameHashMap<std::uint64_t> dlv_denial_deadline_;
  // Zone apexes observed serving NSEC3 denial (set on the first NSEC3 proof
  // seen from each). Leak-cause events for later queries against these
  // zones carry an "-nsec3" suffix so the ledger's per-cause accounting
  // distinguishes NSEC from NSEC3 registries.
  dns::NameHashMap<bool> nsec3_apexes_;
  // Lame/dead-server holddown: endpoint id -> virtual time the entry lapses.
  std::unordered_map<std::string, std::uint64_t> dead_until_us_;
};

}  // namespace lookaside::resolver
