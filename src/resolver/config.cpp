#include "resolver/config.h"

namespace lookaside::resolver {

namespace {
const char* mode_name(ValidationMode mode) {
  switch (mode) {
    case ValidationMode::kNo: return "no";
    case ValidationMode::kYes: return "yes";
    case ValidationMode::kAuto: return "auto";
  }
  return "?";
}
}  // namespace

std::string ResolverConfig::summary() const {
  std::string out = "dnssec-enable=";
  out += dnssec_enable ? "yes" : "no";
  out += " dnssec-validation=";
  out += mode_name(dnssec_validation);
  out += " dnssec-lookaside=";
  out += dnssec_lookaside ? "auto" : "no";
  out += " root-anchor=";
  out += root_trust_anchor_included ? "included" : "missing";
  out += " dlv-anchor=";
  out += dlv_trust_anchor_included ? "included" : "missing";
  return out;
}

ResolverConfig ResolverConfig::bind_apt_get() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kAuto;
  config.dnssec_lookaside = false;
  config.root_trust_anchor_included = false;  // auto mode provides it
  return config;
}

ResolverConfig ResolverConfig::bind_apt_get_dagger() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;
  config.root_trust_anchor_included = false;  // the step users miss
  return config;
}

ResolverConfig ResolverConfig::bind_yum() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;              // contradicts the ARM
  config.root_trust_anchor_included = true;    // include "/etc/bind.keys"
  config.dlv_trust_anchor_included = true;
  return config;
}

ResolverConfig ResolverConfig::bind_manual() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;
  config.root_trust_anchor_included = false;  // no include in a fresh config
  return config;
}

ResolverConfig ResolverConfig::bind_manual_correct() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;
  config.root_trust_anchor_included = true;
  config.dlv_trust_anchor_included = true;
  return config;
}

ResolverConfig ResolverConfig::unbound_package() {
  // Unbound enables features by configuring anchors; package installs ship
  // the root anchor but not the DLV anchor.
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.root_trust_anchor_included = true;
  config.dnssec_lookaside = false;
  config.dlv_trust_anchor_included = false;
  return config;
}

ResolverConfig ResolverConfig::unbound_manual() {
  // Fresh unbound.conf: the anchor lines exist but are commented out, so
  // neither validation nor DLV is active.
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kNo;
  config.root_trust_anchor_included = false;
  config.dnssec_lookaside = false;
  return config;
}

ResolverConfig ResolverConfig::unbound_correct() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.root_trust_anchor_included = true;
  config.dlv_trust_anchor_included = true;  // dlv-anchor-file line
  config.dnssec_lookaside = false;          // Unbound has no such option
  return config;
}

}  // namespace lookaside::resolver
