#include "resolver/config.h"

namespace lookaside::resolver {

namespace {
const char* mode_name(ValidationMode mode) {
  switch (mode) {
    case ValidationMode::kNo: return "no";
    case ValidationMode::kYes: return "yes";
    case ValidationMode::kAuto: return "auto";
  }
  return "?";
}

/// Unbound's retransmission shape: ~376 ms initial RTO, one more resend
/// than BIND before giving up on a server.
RetryPolicy unbound_retry_policy() {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_rto_us = 376'000;
  policy.backoff_factor = 2.0;
  policy.max_rto_us = 8'000'000;
  return policy;
}
}  // namespace

std::uint64_t RetryPolicy::rto_for_attempt(int attempt) const {
  double rto = static_cast<double>(initial_rto_us);
  for (int i = 0; i < attempt; ++i) rto *= backoff_factor;
  const double cap = static_cast<double>(max_rto_us);
  return static_cast<std::uint64_t>(rto < cap ? rto : cap);
}

std::uint64_t RetryPolicy::total_wait_us() const {
  std::uint64_t total = 0;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    total += rto_for_attempt(attempt);
  }
  return total;
}

std::string ResolverConfig::summary() const {
  std::string out = "dnssec-enable=";
  out += dnssec_enable ? "yes" : "no";
  out += " dnssec-validation=";
  out += mode_name(dnssec_validation);
  out += " dnssec-lookaside=";
  out += dnssec_lookaside ? "auto" : "no";
  out += " root-anchor=";
  out += root_trust_anchor_included ? "included" : "missing";
  out += " dlv-anchor=";
  out += dlv_trust_anchor_included ? "included" : "missing";
  return out;
}

ResolverConfig ResolverConfig::bind_apt_get() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kAuto;
  config.dnssec_lookaside = false;
  config.root_trust_anchor_included = false;  // auto mode provides it
  return config;
}

ResolverConfig ResolverConfig::bind_apt_get_dagger() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;
  config.root_trust_anchor_included = false;  // the step users miss
  return config;
}

ResolverConfig ResolverConfig::bind_yum() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;              // contradicts the ARM
  config.root_trust_anchor_included = true;    // include "/etc/bind.keys"
  config.dlv_trust_anchor_included = true;
  return config;
}

ResolverConfig ResolverConfig::bind_manual() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;
  config.root_trust_anchor_included = false;  // no include in a fresh config
  return config;
}

ResolverConfig ResolverConfig::bind_manual_correct() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.dnssec_lookaside = true;
  config.root_trust_anchor_included = true;
  config.dlv_trust_anchor_included = true;
  return config;
}

ResolverConfig ResolverConfig::unbound_package() {
  // Unbound enables features by configuring anchors; package installs ship
  // the root anchor but not the DLV anchor.
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.root_trust_anchor_included = true;
  config.dnssec_lookaside = false;
  config.dlv_trust_anchor_included = false;
  config.retry = unbound_retry_policy();
  config.dlv_retry = unbound_retry_policy();
  config.dlv_retry.max_retries = 1;
  return config;
}

ResolverConfig ResolverConfig::unbound_manual() {
  // Fresh unbound.conf: the anchor lines exist but are commented out, so
  // neither validation nor DLV is active.
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kNo;
  config.root_trust_anchor_included = false;
  config.dnssec_lookaside = false;
  config.retry = unbound_retry_policy();
  config.dlv_retry = unbound_retry_policy();
  config.dlv_retry.max_retries = 1;
  return config;
}

ResolverConfig ResolverConfig::unbound_correct() {
  ResolverConfig config;
  config.dnssec_validation = ValidationMode::kYes;
  config.root_trust_anchor_included = true;
  config.dlv_trust_anchor_included = true;  // dlv-anchor-file line
  config.dnssec_lookaside = false;          // Unbound has no such option
  config.retry = unbound_retry_policy();
  config.dlv_retry = unbound_retry_policy();
  config.dlv_retry.max_retries = 1;
  return config;
}

}  // namespace lookaside::resolver
