// Unified denial-of-existence lookup API (DESIGN.md §4j).
//
// Before PR 9 the resolver had three divergent denial entry points —
// ResolverCache::find_negative (RFC 2308 exact negatives),
// ResolverCache::nsec_check (aggressive NSEC spans, RFC 8198 / RFC 5074 §5)
// and the private shared_nsec_check (cross-shard L2) — each with its own
// result enum and out-params. DenialProofSource collapses them: one call,
// one ProofResult carrying everything the caller's policy, accounting and
// leak-cause attribution need (what is denied, where the proof came from,
// until when it holds, and how many NSEC3 hash ops it cost).
//
// Callers express *policy* with the sources bitmask instead of choosing an
// entry point: a paper-era resolver with aggressive_negative_caching off
// passes kNegative only; the production profile passes kAll and also gets
// RFC 8198 synthesis from cached NSEC3 closest-encloser evidence.
#pragma once

#include <cstdint>

#include "dns/name.h"
#include "dns/record.h"

namespace lookaside::resolver {

/// What a denial proof denies.
enum class DenialKind : std::uint8_t {
  kNone,      // no proof speaks to (qname, qtype)
  kNxDomain,  // the name does not exist
  kNoData,    // the name exists but the type is absent
};

/// Where the proof came from — the leak ledger and the synthesis study key
/// their attribution off this.
enum class ProofOrigin : std::uint8_t {
  kNone,         // no proof (coverage == kNone)
  kLocal,        // exact RFC 2308 negative-cache entry in this shard
  kShared,       // a sibling shard's span via the SharedProofStore
  kSynthesized,  // synthesized from a validated span or NSEC3 evidence
                 // (RFC 8198): no exact entry for qname existed
};

/// Result of one unified denial lookup.
struct ProofResult {
  DenialKind coverage = DenialKind::kNone;
  ProofOrigin origin = ProofOrigin::kNone;
  /// Deadline until which the proof keeps suppressing queries; leak-cause
  /// attribution ("ttl-expiry" vs "eviction") needs it on every hit.
  std::uint64_t expires_us = 0;
  /// NSEC3 hash invocations this lookup spent (0 for NSEC/negative paths).
  /// Charged even when coverage == kNone: a gated synthesis probe that
  /// misses still burned the CPU.
  std::uint64_t hash_ops = 0;

  [[nodiscard]] explicit operator bool() const {
    return coverage != DenialKind::kNone;
  }
};

/// Bitmask selecting which proof classes a lookup may consult.
struct DenialSources {
  enum : unsigned {
    kNegative = 1u << 0,  // exact RFC 2308 negative entries
    kSpans = 1u << 1,     // validated NSEC spans, private + shared
    kNsec3 = 1u << 2,     // NSEC3 closest-encloser evidence (hash-gated)
    kAll = kNegative | kSpans | kNsec3,
  };
};

/// Anything that can answer "is (qname, qtype) provably absent in
/// zone_apex?" from already-validated material.
class DenialProofSource {
 public:
  virtual ~DenialProofSource() = default;

  /// Strongest available denial for (qname, qtype) under `zone_apex`,
  /// consulting only the proof classes enabled in `sources`. Precedence on
  /// multiple hits: exact negative entry, then local span, then shared
  /// span, then NSEC3 synthesis (cheapest-to-verify first).
  [[nodiscard]] virtual ProofResult find_denial(
      const dns::Name& zone_apex, const dns::Name& qname, dns::RRType qtype,
      unsigned sources = DenialSources::kAll) = 0;
};

}  // namespace lookaside::resolver
