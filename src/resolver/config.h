// Resolver configuration surface, modeled on BIND's named.conf options and
// Unbound's anchor-file style (paper §2.4, §4.3, §4.4).
//
// The paper's central finding is that *these knobs*, as shipped by different
// installers, decide whether a resolver leaks every query to a DLV server.
// The factory functions reproduce the exact default configurations of
// Figs. 4-7 and Table 2, including the ones that contradict BIND's
// administrator manual.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"

namespace lookaside::resolver {

/// BIND's dnssec-validation option values.
enum class ValidationMode {
  kNo,    // validation disabled
  kYes,   // validate, trust anchor must be configured manually
  kAuto,  // validate with the built-in trust anchor
};

/// Retransmission schedule for upstream exchanges: `max_retries` resends
/// after the first attempt, waiting an exponentially backed-off RTO per
/// attempt. Defaults follow BIND's resolver-query-timeout shape (~800 ms
/// initial, doubling, capped); the Unbound factories use its ~376 ms
/// initial RTO instead. All waits are virtual time.
struct RetryPolicy {
  int max_retries = 2;                    // resends after the first attempt
  std::uint64_t initial_rto_us = 800'000; // attempt 0's timeout
  double backoff_factor = 2.0;            // RTO multiplier per retry
  std::uint64_t max_rto_us = 8'000'000;   // RTO cap

  /// RTO charged for `attempt` (0-based): min(initial*factor^n, cap).
  [[nodiscard]] std::uint64_t rto_for_attempt(int attempt) const;

  /// Closed-form worst case: virtual time burned when every attempt times
  /// out (the §8.4 "added latency" bound for a dead server).
  [[nodiscard]] std::uint64_t total_wait_us() const;

  /// Single attempt, no resends (the pre-resilience fire-once behavior).
  [[nodiscard]] static RetryPolicy none() {
    RetryPolicy policy;
    policy.max_retries = 0;
    return policy;
  }
};

/// A resolver configuration. Field names follow BIND's option names; the
/// Unbound factories map Unbound's implicit style onto the same fields.
struct ResolverConfig {
  /// BIND `dnssec-enable`.
  bool dnssec_enable = true;

  /// BIND `dnssec-validation` (yes requires `root_trust_anchor_included`).
  ValidationMode dnssec_validation = ValidationMode::kYes;

  /// BIND `dnssec-lookaside auto`.
  bool dnssec_lookaside = false;

  /// Whether the configuration file includes the root trust anchor
  /// (`include "/etc/bind.keys"` / Unbound `auto-trust-anchor-file`).
  bool root_trust_anchor_included = false;

  /// Whether the DLV trust anchor is configured
  /// (bind.keys DLV section / Unbound `dlv-anchor-file`).
  bool dlv_trust_anchor_included = false;

  /// The DLV domain to use ("dlv.isc.org" by ISC convention).
  dns::Name dlv_domain = dns::Name::parse("dlv.isc.org");

  /// Additional DLV registries, consulted in order when earlier ones have
  /// no record (RFC 5074 permits several; the paper lists
  /// dlv.secspider.cs.ucla.edu, dlv.trusted-keys.de, dlv.cert.ru, ... and
  /// notes "ISC is only one of many used in the wild", §7.3.2). Every
  /// registry consulted is an additional third party observing the query.
  std::vector<dns::Name> additional_dlv_domains;

  /// RFC 5074 §5: validators implement aggressive negative caching against
  /// the DLV zone's NSEC records. Turn off to model NSEC3/NSEC5 registries
  /// (paper §7.3), where every query hits the DLV server.
  bool aggressive_negative_caching = true;

  /// §6.2.1 remedies: only send a DLV query when the authoritative side
  /// signaled a deposited DLV record.
  bool honor_txt_dlv_signal = false;  // TXT "dlv=1"/"dlv=0"
  bool honor_z_bit_signal = false;    // spare header bit

  /// §6.2.2 remedy: query hash(domain).<dlv_domain> instead of the name.
  bool hashed_dlv_queries = false;

  /// RFC 7816 qname minimization (referenced in the paper's threat model
  /// §3): iterative queries to non-terminal authorities carry only the
  /// label needed for the next referral (qtype NS), so the root and TLDs
  /// never see full names. Note the asymmetry this exposes: minimization
  /// protects against *on-path* observers but does nothing about the DLV
  /// leak — the look-aside query still carries the full domain.
  bool qname_minimization = false;

  /// Probability of refreshing a delegation's NS RRset after resolving
  /// through it (models BIND's NS fetches; contributes Table 4's NS query
  /// counts). Deterministic per-domain hash, not random.
  double ns_fetch_probability = 0.0;

  /// Maximum CNAME chase depth.
  int max_cname_depth = 8;

  // -- Resilience (retry / failover / failure caching) ----------------------

  /// Retransmission schedule for authoritative exchanges. With no faults
  /// injected the first attempt always succeeds, so enabling retries is
  /// behavior-neutral on a healthy network.
  RetryPolicy retry;

  /// Separate, bounded budget for DLV registry exchanges (RFC 5074 gives
  /// the look-aside path no availability guarantee; a dead registry must
  /// degrade, not stall every resolution — §8.4).
  RetryPolicy dlv_retry{.max_retries = 1};

  /// Lame/dead-server holddown: after a server exhausts its retry
  /// schedule it is skipped for this long (virtual time) before being
  /// probed again (BIND's lame-ttl shape). 0 disables tracking.
  std::uint64_t server_holddown_us = 600'000'000;  // 10 min

  /// RFC 2308 §7 SERVFAIL caching: resolutions that fail against dead
  /// servers are cached for this many seconds so repeated queries do not
  /// re-traverse the hierarchy. 0 disables (BIND default is 1 s).
  std::uint32_t servfail_ttl = 1;

  /// BIND's `dnssec-must-be-secure` semantics for the look-aside path:
  /// when the DLV registry is unreachable, answer SERVFAIL instead of
  /// degrading to insecure (§8.4's strict-policy column).
  bool dlv_must_be_secure = false;

  // -- NSEC3 validation policy (RFC 5155 / RFC 9276, DESIGN.md §4h) ---------

  /// RFC 9276 §3.2 iteration limit. NSEC3 proofs whose iteration count
  /// exceeds the cap are not hashed at all: the zone is treated as insecure
  /// (default, matching BIND/Unbound since 2021) or answered SERVFAIL when
  /// `nsec3_strict` is set. 0 means no cap — the pre-RFC-9276 behavior the
  /// exhaustion attack needs.
  std::uint16_t nsec3_iteration_cap = 0;

  /// Over-cap proofs fail hard (SERVFAIL) instead of downgrading the zone
  /// to insecure.
  bool nsec3_strict = false;

  /// Modeled validator CPU cost per SHA-1 invocation while verifying NSEC3
  /// proofs, charged to the virtual clock (so attacker-inflated iteration
  /// counts surface as real latency and queue pressure downstream). The
  /// default approximates one SHA-1 compression on commodity hardware.
  std::uint64_t nsec3_hash_cost_ns = 1000;

  // -- Cache lifecycle (DESIGN.md §4f) --------------------------------------

  /// Approximate cache byte cap (BIND `max-cache-size` / the sum of
  /// Unbound's `msg-cache-size` + `rrset-cache-size`). 0 means unlimited —
  /// the paper-era BIND default, and what every factory ships so the
  /// Table 2 / Figs. 8-9 reproductions are unaffected. Production-style
  /// caps are opt-in via Environment::production_config() or directly.
  std::uint64_t max_cache_bytes = 0;

  /// Unbound's shipped default: 4 MiB message cache + 4 MiB RRset cache.
  static constexpr std::uint64_t kUnboundDefaultCacheBytes = 8ull << 20;

  /// Cache slots examined per resolution by the amortized expiry sweep
  /// (and per eviction clock step under memory pressure). 0 disables the
  /// background sweep; expired entries are then reclaimed only on probe.
  std::uint32_t cache_sweep_step = 32;

  // -- RFC 8198 synthesis + vState verdict caching (DESIGN.md §4j) ----------

  /// Full RFC 8198 aggressive use of validated denial proofs: synthesize
  /// NXDOMAIN/NODATA from cached NSEC spans for *any* query (not just DLV
  /// probes), synthesize NXDOMAIN from cached NSEC3 closest-encloser
  /// evidence (hash-gated), and elide redundant exact negative entries for
  /// DLV candidates already covered by a live span. Off is the paper-era
  /// behavior (RFC 5074 §5 aggressive caching only); production turns it
  /// on via Environment::production_config().
  bool aggressive_synthesis = false;

  /// Capacity of the validator's signature-verdict cache (the vState
  /// idiom): repeat verifications of an identical (signed data, signature,
  /// key) tuple skip RSA entirely. 0 disables it — the paper-era default;
  /// production uses kDefaultVerdictCacheEntries.
  std::size_t verdict_cache_entries = 0;
  static constexpr std::size_t kDefaultVerdictCacheEntries = 1u << 16;

  // -- Effective behavior (what the knobs combine to) -----------------------

  /// Validation is attempted at all.
  [[nodiscard]] bool validation_enabled() const {
    return dnssec_enable && dnssec_validation != ValidationMode::kNo;
  }

  /// A usable root trust anchor is available (auto mode ships one; yes mode
  /// needs the include).
  [[nodiscard]] bool root_anchor_available() const {
    return validation_enabled() &&
           (dnssec_validation == ValidationMode::kAuto ||
            root_trust_anchor_included);
  }

  /// DLV look-aside will be used (the paper's leak precondition). BIND's
  /// `dnssec-lookaside auto` ships a built-in DLV anchor, so either the
  /// option or an explicit DLV anchor (Unbound style) enables it.
  [[nodiscard]] bool dlv_enabled() const {
    return validation_enabled() &&
           (dnssec_lookaside || dlv_trust_anchor_included);
  }

  /// Short human-readable summary for experiment tables.
  [[nodiscard]] std::string summary() const;

  // -- Paper defaults (Figs. 4-7, Table 2) ----------------------------------

  /// Fig. 4: Debian/Ubuntu `apt-get install bind9`. `dnssec-validation
  /// auto`, no DLV, no explicit anchor (auto provides one). Non-compliant
  /// with the ARM (which documents a default of `yes`).
  static ResolverConfig bind_apt_get();

  /// Table 3's "apt-get†": the user read the ARM and changed
  /// dnssec-validation to `yes` — but the anchor include is still missing —
  /// and enabled DLV to use look-aside.
  static ResolverConfig bind_apt_get_dagger();

  /// Fig. 5: CentOS/Fedora `yum install bind`. Validation yes + bind.keys
  /// included + `dnssec-lookaside auto`. Non-compliant with the ARM
  /// (which documents DLV off by default).
  static ResolverConfig bind_yum();

  /// Fig. 6's starting point: manual source install, user-written config
  /// with DLV enabled but no trust-anchor include.
  static ResolverConfig bind_manual();

  /// Fig. 6 done right: anchors included, DLV enabled.
  static ResolverConfig bind_manual_correct();

  /// Unbound via package installer: DNSSEC on via anchor file; DLV off until
  /// the dlv-anchor-file line is added.
  static ResolverConfig unbound_package();

  /// Unbound manual install: everything commented out until the user acts.
  static ResolverConfig unbound_manual();

  /// Fig. 7: Unbound with both anchor files configured.
  static ResolverConfig unbound_correct();
};

}  // namespace lookaside::resolver
