#include "resolver/cache.h"

#include <algorithm>

#include "dns/rdata.h"
#include "obs/tracer.h"
#include "resolver/shared_store.h"
#include "zone/nsec3.h"

namespace lookaside::resolver {

namespace {

/// Slot for `type` in a per-name slot list, or nullptr.
template <typename V>
[[nodiscard]] std::pair<dns::RRType, V>* find_type(
    std::vector<std::pair<dns::RRType, V>>* slots, dns::RRType type) {
  if (slots == nullptr) return nullptr;
  for (auto& slot : *slots) {
    if (slot.first == type) return &slot;
  }
  return nullptr;
}

// Fixed per-entry overhead constants for the approximate accounting model
// (DESIGN.md §4f). They stand in for allocator/node/bookkeeping overhead and
// only need to be deterministic and roughly proportional to real footprint —
// eviction order and the leakage-under-pressure result depend on relative
// cost, not on matching malloc exactly.
constexpr std::size_t kNameOverhead = 32;     // Name object + text header
constexpr std::size_t kRecordOverhead = 48;   // ResourceRecord + rdata variant
constexpr std::size_t kPositiveOverhead = 96; // boxed entry + slot bookkeeping
constexpr std::size_t kNegativeOverhead = 24; // deadline + flags + slot
constexpr std::size_t kServfailOverhead = 16; // deadline + slot
constexpr std::size_t kNsecOverhead = 64;     // map node + entry fields
constexpr std::size_t kZoneCutOverhead = 16;  // deadline + slot

}  // namespace

// -- Byte accounting ---------------------------------------------------------

std::size_t ResolverCache::name_cost(const dns::Name& name) {
  return kNameOverhead + name.internal_text().size();
}

std::size_t ResolverCache::record_cost(const dns::ResourceRecord& r) {
  return kRecordOverhead + name_cost(r.name) + dns::rdata_wire_length(r.rdata);
}

std::size_t ResolverCache::positive_cost(const PositiveEntry& entry) {
  std::size_t cost = kPositiveOverhead + name_cost(entry.rrset.name());
  for (const auto& record : entry.rrset.records()) cost += record_cost(record);
  for (const auto& sig : entry.rrsigs) cost += record_cost(sig);
  return cost;
}

std::size_t ResolverCache::negative_cost(const dns::Name& name) {
  return kNegativeOverhead + name_cost(name);
}

std::size_t ResolverCache::servfail_cost(const dns::Name& name) {
  return kServfailOverhead + name_cost(name);
}

std::size_t ResolverCache::nsec_cost(const dns::Name& owner,
                                     const NsecEntry& entry) const {
  // entry.next is interned; the cost formula still charges for the full
  // name as if it were copied inline. Frozen deliberately: accounted cost
  // drives eviction order, which the PR-5 cap-sweep Case-2 series pins —
  // interning shrinks real memory (see arena_bytes()), not accounted bytes.
  return kNsecOverhead + name_cost(owner) + name_cost(arena_.name(entry.next)) +
         entry.types.size() * sizeof(dns::RRType);
}

std::size_t ResolverCache::zone_cut_cost(const dns::Name& apex) {
  return kZoneCutOverhead + name_cost(apex);
}

void ResolverCache::charge(std::size_t cost) {
  bytes_ += cost;
  if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
}

void ResolverCache::release(std::size_t cost) {
  bytes_ = cost <= bytes_ ? bytes_ - cost : 0;
}

const char* ResolverCache::section_name(Section section) {
  switch (section) {
    case kPositive: return "positive";
    case kNegative: return "negative";
    case kServfail: return "servfail";
    case kNsec: return "nsec";
    case kZoneCut: return "zone_cut";
    default: return "unknown";
  }
}

// -- Positive cache ----------------------------------------------------------

void ResolverCache::store(const dns::RRset& rrset, bool validated,
                          std::vector<dns::ResourceRecord> rrsigs) {
  if (rrset.empty()) return;
  auto entry = std::make_unique<PositiveEntry>();
  entry->rrset = rrset;
  entry->expires_us = ttl_to_deadline(now(), rrset.ttl());
  entry->validated = validated;
  entry->rrsigs = std::move(rrsigs);
  entry->cost = static_cast<std::uint32_t>(positive_cost(*entry));
  charge(entry->cost);
  PositiveSlots& slots = positive_.get_or_insert(rrset.name());
  if (auto* slot = find_type(&slots, rrset.type())) {
    release(slot->second->cost);
    slot->second = std::move(entry);
  } else {
    slots.emplace_back(rrset.type(), std::move(entry));
  }
}

const dns::RRset* ResolverCache::find(const dns::Name& name,
                                      dns::RRType type) {
  const auto entry = find_entry(name, type);
  return entry.has_value() ? entry->rrset : nullptr;
}

std::optional<ResolverCache::Entry> ResolverCache::find_entry(
    const dns::Name& name, dns::RRType type) {
  PositiveSlots* slots = positive_.find(name);
  auto* slot = find_type(slots, type);
  if (slot == nullptr || slot->second->expires_us <= now()) {
    if (slot != nullptr) {
      release(slot->second->cost);
      slots->erase(slots->begin() + (slot - slots->data()));
      if (slots->empty()) positive_.erase(name);
    }
    counters_.add("cache.miss");
    return std::nullopt;
  }
  counters_.add("cache.hit");
  PositiveEntry& entry = *slot->second;
  entry.referenced = true;
  return Entry{&entry.rrset, entry.validated, &entry.rrsigs};
}

const dns::RRset* ResolverCache::find_validated(const dns::Name& name,
                                                dns::RRType type) {
  const auto entry = find_entry(name, type);
  return entry.has_value() && entry->validated ? entry->rrset : nullptr;
}

void ResolverCache::mark_validated(const dns::Name& name, dns::RRType type) {
  if (auto* slot = find_type(positive_.find(name), type)) {
    slot->second->validated = true;
  }
}

// -- Negative cache ----------------------------------------------------------

void ResolverCache::store_negative(const dns::Name& name, dns::RRType type,
                                   std::uint32_t ttl, bool nxdomain) {
  auto& slots = negative_.get_or_insert(name);
  const NegativeRecord record{ttl_to_deadline(now(), ttl), nxdomain, false};
  if (auto* slot = find_type(&slots, type)) {
    slot->second = record;
  } else {
    charge(negative_cost(name));
    slots.emplace_back(type, record);
  }
}

NegativeEntry ResolverCache::negative_lookup(const dns::Name& name,
                                             dns::RRType type,
                                             std::uint64_t* expires_us) {
  auto* slots = negative_.find(name);
  if (slots == nullptr) return NegativeEntry::kNone;
  // One pass answers both questions and purges expired slots in place
  // (mirroring the positive path's erase-on-probe): an unexpired exact
  // (name, type) entry wins; failing that, any unexpired NXDOMAIN entry for
  // the name covers every type.
  const std::uint64_t now_us = now();
  bool nxdomain_hit = false;
  std::size_t write = 0;
  for (std::size_t read = 0; read < slots->size(); ++read) {
    auto& slot = (*slots)[read];
    if (slot.second.expires_us <= now_us) {
      release(negative_cost(name));
      continue;  // expired: drop by not copying it forward
    }
    if (slot.first == type) {
      slot.second.referenced = true;
      const bool nxdomain = slot.second.nxdomain;
      if (expires_us != nullptr) *expires_us = slot.second.expires_us;
      // Finish compacting before returning so the purge is not skipped.
      for (std::size_t rest = read; rest < slots->size(); ++rest) {
        auto& keep = (*slots)[rest];
        if (keep.second.expires_us <= now_us) {
          release(negative_cost(name));
          continue;
        }
        if (write != rest) (*slots)[write] = keep;
        ++write;
      }
      slots->resize(write);
      counters_.add("cache.negative_hit");
      return nxdomain ? NegativeEntry::kNxDomain : NegativeEntry::kNoData;
    }
    if (slot.second.nxdomain) {
      slot.second.referenced = true;
      nxdomain_hit = true;
      if (expires_us != nullptr) *expires_us = slot.second.expires_us;
    }
    if (write != read) (*slots)[write] = slot;
    ++write;
  }
  slots->resize(write);
  if (slots->empty()) negative_.erase(name);
  if (nxdomain_hit) {
    counters_.add("cache.negative_hit");
    return NegativeEntry::kNxDomain;
  }
  return NegativeEntry::kNone;
}

// -- SERVFAIL cache ----------------------------------------------------------

void ResolverCache::store_servfail(const dns::Name& name, dns::RRType type,
                                   std::uint32_t ttl) {
  auto& slots = servfail_.get_or_insert(name);
  const ServfailRecord record{ttl_to_deadline(now(), ttl), false};
  if (auto* slot = find_type(&slots, type)) {
    slot->second = record;
  } else {
    charge(servfail_cost(name));
    slots.emplace_back(type, record);
  }
  counters_.add("cache.servfail_store");
}

bool ResolverCache::find_servfail(const dns::Name& name, dns::RRType type) {
  auto* slots = servfail_.find(name);
  auto* slot = find_type(slots, type);
  if (slot == nullptr) return false;
  if (slot->second.expires_us <= now()) {
    release(servfail_cost(name));
    slots->erase(slots->begin() + (slot - slots->data()));
    if (slots->empty()) servfail_.erase(name);
    return false;
  }
  slot->second.referenced = true;
  counters_.add("cache.servfail_hit");
  return true;
}

// -- Aggressive NSEC cache ---------------------------------------------------

void ResolverCache::store_nsec(const dns::Name& zone_apex,
                               const dns::ResourceRecord& nsec_record) {
  const auto* nsec = std::get_if<dns::NsecRdata>(&nsec_record.rdata);
  if (nsec == nullptr) return;
  NsecEntry entry;
  entry.next = arena_.intern(nsec->next);
  entry.types = nsec->types;
  entry.expires_us = ttl_to_deadline(now(), nsec_record.ttl);
  entry.cost = static_cast<std::uint32_t>(nsec_cost(nsec_record.name, entry));
  charge(entry.cost);
  if (shared_ != nullptr) {
    // Write-through: sibling shards can then suppress the same denial
    // without their own registry round trip (and its Case-2 leak).
    shared_->store_nsec(zone_apex, nsec_record.name,
                        {nsec->next, entry.types, entry.expires_us,
                         shard_id_});
  }
  NsecZone& zone = nsec_by_zone_.get_or_insert(zone_apex);
  NsecEntry& slot = zone.chain[nsec_record.name];
  if (slot.cost != 0) {
    release(slot.cost);  // overwrite of an existing owner: no new node
  } else {
    ++zone.generation;  // structural insert invalidates the span index
  }
  slot = std::move(entry);
}

void ResolverCache::rebuild_span_index(NsecZone& zone) {
  zone.index.clear();
  zone.index.reserve(zone.chain.size());
  // std::map iterates in canonical order, so the array is born sorted;
  // map nodes are pointer-stable, so the pointers outlive rehash-free use.
  for (auto& node : zone.chain) zone.index.push_back(&node);
  zone.index_generation = zone.generation;
}

NsecCoverage ResolverCache::classify_nsec_entry(const dns::Name& zone_apex,
                                                const dns::Name& owner,
                                                NsecEntry& entry,
                                                const dns::Name& qname,
                                                dns::RRType qtype,
                                                std::uint64_t* expires_us,
                                                bool* stop_shared) {
  if (owner == qname) {
    // RFC 6840 §4.4: an ancestor-delegation NSEC (NS set, SOA clear) lives
    // on the parent side of a zone cut and proves nothing about the child
    // zone's data except DS absence. Denying any other type from it would
    // synthesize NODATA for names the child zone actually serves.
    const bool delegation =
        std::find(entry.types.begin(), entry.types.end(), dns::RRType::kNs) !=
            entry.types.end() &&
        std::find(entry.types.begin(), entry.types.end(), dns::RRType::kSoa) ==
            entry.types.end();
    if (delegation && qtype != dns::RRType::kDs) {
      return NsecCoverage::kNoProof;
    }
    // The mirror image (RFC 4035 §2.3): DS lives only on the parent side
    // of a cut, so a child-side NSEC (SOA set) proves nothing about DS —
    // its bitmap legitimately omits DS even for a secure delegation.
    if (qtype == dns::RRType::kDs && !delegation) {
      return NsecCoverage::kNoProof;
    }
    // Exact NSEC: name exists; the bitmap decides the type.
    if (std::find(entry.types.begin(), entry.types.end(), qtype) ==
        entry.types.end()) {
      entry.referenced = true;
      entry.chances = limits_.nsec_extra_chances;
      if (expires_us != nullptr) *expires_us = entry.expires_us;
      counters_.add("cache.nsec_hit");
      return NsecCoverage::kTypeAbsent;
    }
    // The private exact entry says the type exists; a sibling's fresher
    // proof cannot contradict a validated span, so don't consult the store.
    *stop_shared = true;
    return NsecCoverage::kNoProof;
  }

  // Covering NSEC: owner < qname < next proves nonexistence. The chain's
  // last record wraps: next == apex means "everything after owner".
  const dns::Name& next = arena_.name(entry.next);
  const bool wraps = next == zone_apex;
  if (wraps || qname.canonical_compare(next) < 0) {
    // RFC 6840 §4.4 again: names below a delegation-owner NSEC are occluded
    // — the span (net. -> org.) proves nothing about anything *inside* the
    // net. zone, only that no further names exist in the parent between the
    // two delegations. Without this, a cap-evicted zone cut makes
    // deepest_known_cut fall back to the parent and its delegation spans
    // wrongly NXDOMAIN every child-zone query.
    if (qname.is_subdomain_of(owner) && owner != qname) {
      const bool delegation =
          std::find(entry.types.begin(), entry.types.end(),
                    dns::RRType::kNs) != entry.types.end() &&
          std::find(entry.types.begin(), entry.types.end(),
                    dns::RRType::kSoa) == entry.types.end();
      if (delegation) return NsecCoverage::kNoProof;
    }
    entry.referenced = true;
    entry.chances = limits_.nsec_extra_chances;
    if (expires_us != nullptr) *expires_us = entry.expires_us;
    counters_.add("cache.nsec_hit");
    return NsecCoverage::kNameCovered;
  }
  return NsecCoverage::kNoProof;
}

NsecCoverage ResolverCache::nsec_chain_walk(const dns::Name& zone_apex,
                                            NsecZone& zone,
                                            const dns::Name& qname,
                                            dns::RRType qtype,
                                            std::uint64_t* expires_us,
                                            bool* from_shared) {
  NsecChain& chain = zone.chain;
  // Greatest owner <= qname. Expired entries met on the walk are reclaimed
  // and skipped: a stale closer entry must not shadow a live covering proof
  // further left in the chain, so keep stepping to the next predecessor
  // instead of giving up on the first expired hit.
  auto it = chain.upper_bound(qname);
  for (;;) {
    if (it == chain.begin()) {
      if (chain.empty()) nsec_by_zone_.erase(zone_apex);
      const NsecCoverage shared =
          shared_nsec_check(zone_apex, qname, qtype, expires_us);
      if (shared != NsecCoverage::kNoProof && from_shared != nullptr) {
        *from_shared = true;
      }
      return shared;
    }
    --it;
    if (it->second.expires_us > now()) break;
    release(it->second.cost);
    it = chain.erase(it);
    ++zone.generation;
  }
  bool stop_shared = false;
  const NsecCoverage local = classify_nsec_entry(
      zone_apex, it->first, it->second, qname, qtype, expires_us,
      &stop_shared);
  if (local != NsecCoverage::kNoProof || stop_shared) return local;
  const NsecCoverage shared =
      shared_nsec_check(zone_apex, qname, qtype, expires_us);
  if (shared != NsecCoverage::kNoProof && from_shared != nullptr) {
    *from_shared = true;
  }
  return shared;
}

NsecCoverage ResolverCache::nsec_lookup(const dns::Name& zone_apex,
                                        const dns::Name& qname,
                                        dns::RRType qtype,
                                        std::uint64_t* expires_us,
                                        bool* from_shared) {
  if (!qname.is_subdomain_of(zone_apex)) return NsecCoverage::kNoProof;
  NsecZone* zone = nsec_by_zone_.find(zone_apex);
  if (zone == nullptr) {
    const NsecCoverage shared =
        shared_nsec_check(zone_apex, qname, qtype, expires_us);
    if (shared != NsecCoverage::kNoProof && from_shared != nullptr) {
      *from_shared = true;
    }
    return shared;
  }
  // Fast path: binary-search the span index for the greatest owner <=
  // qname. A live candidate answers in one probe; an expired candidate
  // falls back to the reclaiming map walk (which bumps the generation and
  // so invalidates the index).
  if (zone->index_generation != zone->generation) rebuild_span_index(*zone);
  const auto it = std::upper_bound(
      zone->index.begin(), zone->index.end(), qname,
      [](const dns::Name& q, const NsecChain::value_type* node) {
        return q.canonical_compare(node->first) < 0;
      });
  if (it == zone->index.begin()) {
    const NsecCoverage shared =
        shared_nsec_check(zone_apex, qname, qtype, expires_us);
    if (shared != NsecCoverage::kNoProof && from_shared != nullptr) {
      *from_shared = true;
    }
    return shared;
  }
  NsecChain::value_type* node = *(it - 1);
  if (node->second.expires_us <= now()) {
    return nsec_chain_walk(zone_apex, *zone, qname, qtype, expires_us,
                           from_shared);
  }
  bool stop_shared = false;
  const NsecCoverage local = classify_nsec_entry(
      zone_apex, node->first, node->second, qname, qtype, expires_us,
      &stop_shared);
  if (local != NsecCoverage::kNoProof || stop_shared) return local;
  const NsecCoverage shared =
      shared_nsec_check(zone_apex, qname, qtype, expires_us);
  if (shared != NsecCoverage::kNoProof && from_shared != nullptr) {
    *from_shared = true;
  }
  return shared;
}

NsecCoverage ResolverCache::shared_nsec_check(const dns::Name& zone_apex,
                                              const dns::Name& qname,
                                              dns::RRType qtype,
                                              std::uint64_t* expires_us) {
  if (shared_ == nullptr) return NsecCoverage::kNoProof;
  const NsecCoverage coverage =
      shared_->check_nsec(zone_apex, qname, qtype, now(), shard_id_,
                          expires_us);
  if (coverage != NsecCoverage::kNoProof) {
    counters_.add("cache.nsec_shared_hit");
  }
  return coverage;
}

// -- NSEC3 closest-encloser evidence + unified denial lookup (§4j) -----------

void ResolverCache::store_nsec3_evidence(const dns::Name& zone_apex,
                                         const Nsec3Evidence& evidence) {
  Nsec3ZoneEvidence& zone = nsec3_evidence_.get_or_insert(zone_apex);
  if (zone.salt != evidence.salt || zone.iterations != evidence.iterations) {
    // Parameter rollover: hashes under the old salt/iterations are garbage.
    zone.salt = evidence.salt;
    zone.iterations = evidence.iterations;
    zone.enclosers.clear();
    zone.spans.clear();
  }
  std::uint64_t& encloser_expiry = zone.enclosers[evidence.closest_encloser];
  encloser_expiry = std::max(encloser_expiry, evidence.expires_us);
  for (const auto& [lo, hi] : evidence.spans) {
    const auto it = std::lower_bound(
        zone.spans.begin(), zone.spans.end(), lo,
        [](const Nsec3ZoneEvidence::HashedSpan& span,
           const crypto::Bytes& key) { return span.lo < key; });
    if (it != zone.spans.end() && it->lo == lo) {
      it->hi = hi;
      it->expires_us = std::max(it->expires_us, evidence.expires_us);
      continue;
    }
    if (zone.spans.size() >= kMaxNsec3SpansPerZone) continue;  // bounded
    zone.spans.insert(it, {lo, hi, evidence.expires_us});
  }
  counters_.add("cache.nsec3_evidence_store");
}

std::size_t ResolverCache::nsec3_evidence_spans(
    const dns::Name& zone_apex) const {
  const Nsec3ZoneEvidence* zone = nsec3_evidence_.find(zone_apex);
  return zone == nullptr ? 0 : zone->spans.size();
}

ProofResult ResolverCache::nsec3_synth_lookup(const dns::Name& zone_apex,
                                              const dns::Name& qname) {
  ProofResult out;
  Nsec3ZoneEvidence* zone = nsec3_evidence_.find(zone_apex);
  if (zone == nullptr) return out;
  if (!qname.is_subdomain_of(zone_apex) || qname.label_count() == 0) {
    return out;
  }
  // Hash-match gate: only probe when some proper ancestor of qname is a
  // proven closest encloser (whose wildcard is also proven absent). Then a
  // single iterated hash of the next-closer name decides — covered by a
  // validated span means the name provably does not exist (RFC 8198 over
  // RFC 5155 §8.4), not covered means the evidence is silent.
  const std::uint64_t now_us = now();
  dns::Name next_closer = qname;
  const Nsec3ZoneEvidence::HashedSpan* witness = nullptr;
  bool gated = false;
  while (next_closer.label_count() > zone_apex.label_count()) {
    const dns::Name ancestor = next_closer.parent();
    const auto it = zone->enclosers.find(ancestor);
    if (it != zone->enclosers.end() && it->second > now_us) {
      gated = true;
      break;
    }
    next_closer = ancestor;
  }
  if (!gated) return out;
  const crypto::Bytes digest =
      zone::nsec3_hash(next_closer, zone->salt, zone->iterations);
  out.hash_ops = zone::nsec3_hash_ops(zone->iterations);
  for (const Nsec3ZoneEvidence::HashedSpan& span : zone->spans) {
    if (span.expires_us <= now_us) continue;
    const bool wraps = span.hi <= span.lo;
    const bool inside = wraps ? (digest > span.lo || digest < span.hi)
                              : (span.lo < digest && digest < span.hi);
    if (inside) {
      witness = &span;
      break;
    }
  }
  if (witness == nullptr) return out;  // hash missed every validated span
  out.coverage = DenialKind::kNxDomain;
  out.origin = ProofOrigin::kSynthesized;
  out.expires_us = witness->expires_us;
  counters_.add("cache.synth_nsec3_hit");
  return out;
}

ProofResult ResolverCache::find_denial(const dns::Name& zone_apex,
                                       const dns::Name& qname,
                                       dns::RRType qtype, unsigned sources) {
  ProofResult out;
  if ((sources & DenialSources::kNegative) != 0) {
    std::uint64_t expires = 0;
    const NegativeEntry negative = negative_lookup(qname, qtype, &expires);
    if (negative != NegativeEntry::kNone) {
      out.coverage = negative == NegativeEntry::kNxDomain
                         ? DenialKind::kNxDomain
                         : DenialKind::kNoData;
      out.origin = ProofOrigin::kLocal;
      out.expires_us = expires;
      return out;
    }
  }
  if ((sources & DenialSources::kSpans) != 0) {
    std::uint64_t expires = 0;
    bool from_shared = false;
    const NsecCoverage coverage =
        nsec_lookup(zone_apex, qname, qtype, &expires, &from_shared);
    if (coverage != NsecCoverage::kNoProof) {
      out.coverage = coverage == NsecCoverage::kNameCovered
                         ? DenialKind::kNxDomain
                         : DenialKind::kNoData;
      // A span hit with no exact entry *is* RFC 8198 synthesis; the shared
      // origin additionally tells attribution that a sibling proved it.
      out.origin =
          from_shared ? ProofOrigin::kShared : ProofOrigin::kSynthesized;
      out.expires_us = expires;
      return out;
    }
  }
  if ((sources & DenialSources::kNsec3) != 0) {
    return nsec3_synth_lookup(zone_apex, qname);
  }
  return out;
}

std::size_t ResolverCache::nsec_count(const dns::Name& zone_apex) const {
  // With a shared store attached the shared chain is the union across all
  // shards (private stores write through), so it is the authoritative count.
  if (shared_ != nullptr) return shared_->nsec_count(zone_apex);
  const NsecZone* zone = nsec_by_zone_.find(zone_apex);
  return zone == nullptr ? 0 : zone->chain.size();
}

// -- Zone-cut cache ----------------------------------------------------------

void ResolverCache::store_zone_cut(const dns::Name& apex, std::uint32_t ttl) {
  ZoneCutRecord& record = zone_cuts_.get_or_insert(apex);
  if (record.expires_us == 0) charge(zone_cut_cost(apex));
  record.expires_us = ttl_to_deadline(now(), ttl);
  record.referenced = false;
  if (shared_ != nullptr) {
    shared_->store_zone_cut(apex, record.expires_us, shard_id_);
  }
}

dns::Name ResolverCache::deepest_known_cut(const dns::Name& qname) {
  dns::Name candidate = qname;
  for (;;) {
    if (ZoneCutRecord* record = zone_cuts_.find(candidate)) {
      if (record->expires_us > now()) {
        record->referenced = true;
        return candidate;
      }
      release(zone_cut_cost(candidate));
      zone_cuts_.erase(candidate);
    }
    // A sibling's published cut is as good as our own: iteration can start
    // at the deepest cut *any* shard has proven.
    if (shared_ != nullptr &&
        shared_->has_zone_cut(candidate, now(), shard_id_)) {
      counters_.add("cache.zone_cut_shared_hit");
      return candidate;
    }
    if (candidate.is_root()) return candidate;
    candidate = candidate.parent();
  }
}

// -- Lifecycle: sweep + eviction ---------------------------------------------

std::size_t ResolverCache::sweep_section(Section section, std::size_t budget) {
  const std::uint64_t now_us = now();
  std::size_t reclaimed = 0;
  dns::NameMapSweepCursor* cursor = &sweep_cursor_[section];
  switch (section) {
    case kPositive:
      positive_.sweep(cursor, budget, [&](const dns::Name&,
                                          PositiveSlots& slots) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < slots.size(); ++read) {
          auto& slot = slots[read];
          if (slot.second->expires_us <= now_us) {
            release(slot.second->cost);
            ++reclaimed;
            continue;
          }
          if (write != read) slots[write] = std::move(slot);
          ++write;
        }
        slots.resize(write);
        return slots.empty();  // erase the name when nothing survives
      });
      break;
    case kNegative:
      negative_.sweep(cursor, budget, [&](const dns::Name& name,
                                          TypeSlots<NegativeRecord>& slots) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < slots.size(); ++read) {
          auto& slot = slots[read];
          if (slot.second.expires_us <= now_us) {
            release(negative_cost(name));
            ++reclaimed;
            continue;
          }
          if (write != read) slots[write] = slot;
          ++write;
        }
        slots.resize(write);
        return slots.empty();
      });
      break;
    case kServfail:
      servfail_.sweep(cursor, budget, [&](const dns::Name& name,
                                          TypeSlots<ServfailRecord>& slots) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < slots.size(); ++read) {
          auto& slot = slots[read];
          if (slot.second.expires_us <= now_us) {
            release(servfail_cost(name));
            ++reclaimed;
            continue;
          }
          if (write != read) slots[write] = slot;
          ++write;
        }
        slots.resize(write);
        return slots.empty();
      });
      break;
    case kNsec:
      // Budget counts chain entries here, not hash slots: one DLV zone can
      // hold a 100k-entry chain, and visiting a whole chain per tick would
      // defeat the amortization. The per-zone `hand` resumes mid-chain.
      nsec_by_zone_.sweep(cursor, 1, [&](const dns::Name&, NsecZone& zone) {
        auto it = zone.hand.is_root() ? zone.chain.begin()
                                      : zone.chain.lower_bound(zone.hand);
        std::size_t visited = 0;
        while (it != zone.chain.end() && visited < budget) {
          ++visited;
          if (it->second.expires_us <= now_us) {
            release(it->second.cost);
            ++reclaimed;
            it = zone.chain.erase(it);
            ++zone.generation;
          } else {
            ++it;
          }
        }
        zone.hand = it == zone.chain.end() ? dns::Name{} : it->first;
        return zone.chain.empty();
      });
      break;
    case kZoneCut:
      zone_cuts_.sweep(cursor, budget, [&](const dns::Name& apex,
                                           ZoneCutRecord& record) {
        if (record.expires_us > now_us) return false;
        release(zone_cut_cost(apex));
        ++reclaimed;
        return true;
      });
      break;
    default:
      break;
  }
  return reclaimed;
}

std::size_t ResolverCache::sweep_expired(std::size_t max_slots) {
  std::size_t reclaimed = 0;
  // Rotate one section per call; empty sections cost nothing, so skip
  // through them without burning the budget.
  for (std::size_t attempt = 0; attempt < kSectionCount; ++attempt) {
    const auto section = static_cast<Section>(sweep_section_index_);
    sweep_section_index_ = (sweep_section_index_ + 1) % kSectionCount;
    const bool empty =
        (section == kPositive && positive_.empty()) ||
        (section == kNegative && negative_.empty()) ||
        (section == kServfail && servfail_.empty()) ||
        (section == kNsec && nsec_by_zone_.empty()) ||
        (section == kZoneCut && zone_cuts_.empty());
    if (empty) continue;
    reclaimed = sweep_section(section, max_slots);
    break;
  }
  if (reclaimed > 0) counters_.add("cache.expired_swept", reclaimed);
  return reclaimed;
}

void ResolverCache::count_eviction(Section section, std::size_t entries) {
  counters_.add("cache.evicted", entries);
  counters_.add(std::string("cache.evicted.") + section_name(section),
                entries);
}

void ResolverCache::trace_eviction(Section section, const dns::Name& owner) {
  if (tracer_ == nullptr) return;
  obs::Event event;
  event.kind = obs::EventKind::kCacheEvicted;
  event.name = owner.to_text();
  event.detail = section_name(section);
  tracer_->emit(std::move(event));
}

bool ResolverCache::evict_step(Section section, std::size_t budget) {
  dns::NameMapSweepCursor* cursor = &evict_cursor_[section];
  std::size_t evicted = 0;
  switch (section) {
    case kPositive:
      positive_.sweep(cursor, budget, [&](const dns::Name& name,
                                          PositiveSlots& slots) {
        if (evicted > 0) return false;  // one victim per step
        // Second chance is per name-slot: any referenced type entry spares
        // the whole slot this pass (and spends the reference bits).
        bool spared = false;
        for (auto& slot : slots) {
          if (slot.second->referenced) {
            slot.second->referenced = false;
            spared = true;
          }
        }
        if (spared) return false;
        for (auto& slot : slots) release(slot.second->cost);
        evicted = slots.size();
        trace_eviction(kPositive, name);
        return true;
      });
      break;
    case kNegative:
      negative_.sweep(cursor, budget, [&](const dns::Name& name,
                                          TypeSlots<NegativeRecord>& slots) {
        if (evicted > 0) return false;
        bool spared = false;
        for (auto& slot : slots) {
          if (slot.second.referenced) {
            slot.second.referenced = false;
            spared = true;
          }
        }
        if (spared) return false;
        release(negative_cost(name) * slots.size());
        evicted = slots.size();
        trace_eviction(kNegative, name);
        return true;
      });
      break;
    case kServfail:
      servfail_.sweep(cursor, budget, [&](const dns::Name& name,
                                          TypeSlots<ServfailRecord>& slots) {
        if (evicted > 0) return false;
        bool spared = false;
        for (auto& slot : slots) {
          if (slot.second.referenced) {
            slot.second.referenced = false;
            spared = true;
          }
        }
        if (spared) return false;
        release(servfail_cost(name) * slots.size());
        evicted = slots.size();
        trace_eviction(kServfail, name);
        return true;
      });
      break;
    case kNsec:
      nsec_by_zone_.sweep(cursor, 1, [&](const dns::Name&, NsecZone& zone) {
        auto it = zone.hand.is_root() ? zone.chain.begin()
                                      : zone.chain.lower_bound(zone.hand);
        std::size_t visited = 0;
        while (it != zone.chain.end() && visited < budget && evicted == 0) {
          ++visited;
          if (it->second.referenced) {
            it->second.referenced = false;
            ++it;
          } else if (it->second.chances > 0) {
            // Load-bearing span under the RFC 8198 profile: burn one of its
            // earned chances instead of evicting (see CacheLimits).
            --it->second.chances;
            ++it;
          } else {
            release(it->second.cost);
            evicted = 1;
            trace_eviction(kNsec, it->first);
            it = zone.chain.erase(it);
            ++zone.generation;
          }
        }
        zone.hand = it == zone.chain.end() ? dns::Name{} : it->first;
        return zone.chain.empty();
      });
      break;
    case kZoneCut:
      zone_cuts_.sweep(cursor, budget, [&](const dns::Name& apex,
                                           ZoneCutRecord& record) {
        if (evicted > 0) return false;
        if (record.referenced) {
          record.referenced = false;
          return false;
        }
        release(zone_cut_cost(apex));
        evicted = 1;
        trace_eviction(kZoneCut, apex);
        return true;
      });
      break;
    default:
      break;
  }
  if (evicted > 0) count_eviction(section, evicted);
  return evicted > 0;
}

void ResolverCache::maintain() {
  if (limits_.sweep_step > 0) sweep_expired(limits_.sweep_step);
  if (limits_.max_bytes == 0 || bytes_ <= limits_.max_bytes) return;
  // Second-chance eviction until under the cap. The clock hand rotates
  // across sections so pressure lands proportionally on whichever stores
  // hold data; each step scans a bounded window. The pass guard bounds the
  // worst case (every entry referenced ⇒ one full spare-everything pass,
  // then victims on the second) so a cap smaller than one entry cannot spin.
  const std::size_t step_budget =
      limits_.sweep_step > 0 ? limits_.sweep_step : 32;
  const std::size_t total_slots =
      positive_.slot_count() + negative_.slot_count() +
      servfail_.slot_count() + nsec_by_zone_.slot_count() +
      zone_cuts_.slot_count() + nsec_by_zone_.size();
  // The guard bounds consecutive *victimless* work: at most ~4 full table
  // walks (enough to spend every second-chance bit) before concluding no
  // further eviction is possible — which only happens if the accounting
  // says over-cap while the stores are empty. Progress replenishes it, so
  // an arbitrarily deep purge still terminates: every eviction removes at
  // least one entry and entries cannot appear mid-maintain.
  const std::size_t initial_guard = 4 * (total_slots + kSectionCount);
  std::size_t guard = initial_guard;
  while (bytes_ > limits_.max_bytes && guard > 0) {
    const auto section = static_cast<Section>(evict_section_index_);
    evict_section_index_ = (evict_section_index_ + 1) % kSectionCount;
    const bool empty =
        (section == kPositive && positive_.empty()) ||
        (section == kNegative && negative_.empty()) ||
        (section == kServfail && servfail_.empty()) ||
        (section == kNsec && nsec_by_zone_.empty()) ||
        (section == kZoneCut && zone_cuts_.empty());
    if (empty) {
      --guard;
      continue;
    }
    if (evict_step(section, step_budget)) {
      guard = initial_guard;
    } else {
      guard = guard > step_budget ? guard - step_budget : 0;
    }
  }
}

void ResolverCache::clear() {
  positive_.clear();
  negative_.clear();
  servfail_.clear();
  nsec_by_zone_.clear();
  nsec3_evidence_.clear();
  zone_cuts_.clear();
  // Interned ids die with the entries that held them; dropping the arena
  // here is what bounds the "ids stable for cache lifetime" contract.
  arena_.clear();
  bytes_ = 0;
  peak_bytes_ = 0;
  sweep_section_index_ = 0;
  evict_section_index_ = 0;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    sweep_cursor_[i] = dns::NameMapSweepCursor{};
    evict_cursor_[i] = dns::NameMapSweepCursor{};
  }
}

}  // namespace lookaside::resolver
