#include "resolver/cache.h"

#include <algorithm>

namespace lookaside::resolver {

namespace {

/// Slot for `type` in a per-name slot list, or nullptr.
template <typename V>
[[nodiscard]] std::pair<dns::RRType, V>* find_type(
    std::vector<std::pair<dns::RRType, V>>* slots, dns::RRType type) {
  if (slots == nullptr) return nullptr;
  for (auto& slot : *slots) {
    if (slot.first == type) return &slot;
  }
  return nullptr;
}

}  // namespace

void ResolverCache::store(const dns::RRset& rrset, bool validated,
                          std::vector<dns::ResourceRecord> rrsigs) {
  if (rrset.empty()) return;
  auto entry = std::make_unique<PositiveEntry>();
  entry->rrset = rrset;
  entry->expires_us = ttl_to_deadline(now(), rrset.ttl());
  entry->validated = validated;
  entry->rrsigs = std::move(rrsigs);
  PositiveSlots& slots = positive_.get_or_insert(rrset.name());
  if (auto* slot = find_type(&slots, rrset.type())) {
    slot->second = std::move(entry);
  } else {
    slots.emplace_back(rrset.type(), std::move(entry));
  }
}

const dns::RRset* ResolverCache::find(const dns::Name& name,
                                      dns::RRType type) {
  const auto entry = find_entry(name, type);
  return entry.has_value() ? entry->rrset : nullptr;
}

std::optional<ResolverCache::Entry> ResolverCache::find_entry(
    const dns::Name& name, dns::RRType type) {
  PositiveSlots* slots = positive_.find(name);
  auto* slot = find_type(slots, type);
  if (slot == nullptr || slot->second->expires_us <= now()) {
    if (slot != nullptr) {
      slots->erase(slots->begin() + (slot - slots->data()));
      if (slots->empty()) positive_.erase(name);
    }
    counters_.add("cache.miss");
    return std::nullopt;
  }
  counters_.add("cache.hit");
  const PositiveEntry& entry = *slot->second;
  return Entry{&entry.rrset, entry.validated, &entry.rrsigs};
}

const dns::RRset* ResolverCache::find_validated(const dns::Name& name,
                                                dns::RRType type) {
  const auto entry = find_entry(name, type);
  return entry.has_value() && entry->validated ? entry->rrset : nullptr;
}

void ResolverCache::mark_validated(const dns::Name& name, dns::RRType type) {
  if (auto* slot = find_type(positive_.find(name), type)) {
    slot->second->validated = true;
  }
}

void ResolverCache::store_negative(const dns::Name& name, dns::RRType type,
                                   std::uint32_t ttl, bool nxdomain) {
  auto& slots = negative_.get_or_insert(name);
  const NegativeRecord record{ttl_to_deadline(now(), ttl), nxdomain};
  if (auto* slot = find_type(&slots, type)) {
    slot->second = record;
  } else {
    slots.emplace_back(type, record);
  }
}

NegativeEntry ResolverCache::find_negative(const dns::Name& name,
                                           dns::RRType type) {
  auto* slots = negative_.find(name);
  if (slots == nullptr) return NegativeEntry::kNone;
  // Exact (name, type) entry wins when unexpired.
  if (const auto* slot = find_type(slots, type)) {
    if (slot->second.expires_us > now()) {
      counters_.add("cache.negative_hit");
      return slot->second.nxdomain ? NegativeEntry::kNxDomain
                                   : NegativeEntry::kNoData;
    }
  }
  // Any unexpired NXDOMAIN entry for this name covers every type.
  for (const auto& slot : *slots) {
    if (slot.second.nxdomain && slot.second.expires_us > now()) {
      counters_.add("cache.negative_hit");
      return NegativeEntry::kNxDomain;
    }
  }
  return NegativeEntry::kNone;
}

void ResolverCache::store_servfail(const dns::Name& name, dns::RRType type,
                                   std::uint32_t ttl) {
  auto& slots = servfail_.get_or_insert(name);
  const std::uint64_t deadline = ttl_to_deadline(now(), ttl);
  if (auto* slot = find_type(&slots, type)) {
    slot->second = deadline;
  } else {
    slots.emplace_back(type, deadline);
  }
  counters_.add("cache.servfail_store");
}

bool ResolverCache::find_servfail(const dns::Name& name, dns::RRType type) {
  const auto* slot = find_type(servfail_.find(name), type);
  if (slot == nullptr || slot->second <= now()) return false;
  counters_.add("cache.servfail_hit");
  return true;
}

void ResolverCache::store_nsec(const dns::Name& zone_apex,
                               const dns::ResourceRecord& nsec_record) {
  const auto* nsec = std::get_if<dns::NsecRdata>(&nsec_record.rdata);
  if (nsec == nullptr) return;
  NsecEntry entry;
  entry.next = nsec->next;
  entry.types = nsec->types;
  entry.expires_us = ttl_to_deadline(now(), nsec_record.ttl);
  nsec_by_zone_.get_or_insert(zone_apex)[nsec_record.name] = std::move(entry);
}

NsecCoverage ResolverCache::nsec_check(const dns::Name& zone_apex,
                                       const dns::Name& qname,
                                       dns::RRType qtype) {
  NsecChain* chain_ptr = nsec_by_zone_.find(zone_apex);
  if (chain_ptr == nullptr) return NsecCoverage::kNoProof;
  NsecChain& chain = *chain_ptr;
  if (!qname.is_subdomain_of(zone_apex)) return NsecCoverage::kNoProof;

  // Greatest owner <= qname.
  auto it = chain.upper_bound(qname);
  if (it == chain.begin()) return NsecCoverage::kNoProof;
  --it;
  const dns::Name& owner = it->first;
  const NsecEntry& entry = it->second;
  if (entry.expires_us <= now()) {
    chain.erase(it);
    return NsecCoverage::kNoProof;
  }

  if (owner == qname) {
    // Exact NSEC: name exists; the bitmap decides the type.
    if (std::find(entry.types.begin(), entry.types.end(), qtype) ==
        entry.types.end()) {
      counters_.add("cache.nsec_hit");
      return NsecCoverage::kTypeAbsent;
    }
    return NsecCoverage::kNoProof;
  }

  // Covering NSEC: owner < qname < next proves nonexistence. The chain's
  // last record wraps: next == apex means "everything after owner".
  const bool wraps = entry.next == zone_apex;
  if (wraps || qname.canonical_compare(entry.next) < 0) {
    counters_.add("cache.nsec_hit");
    return NsecCoverage::kNameCovered;
  }
  return NsecCoverage::kNoProof;
}

std::size_t ResolverCache::nsec_count(const dns::Name& zone_apex) const {
  const NsecChain* chain = nsec_by_zone_.find(zone_apex);
  return chain == nullptr ? 0 : chain->size();
}

void ResolverCache::store_zone_cut(const dns::Name& apex, std::uint32_t ttl) {
  zone_cuts_.get_or_insert(apex) = ttl_to_deadline(now(), ttl);
}

dns::Name ResolverCache::deepest_known_cut(const dns::Name& qname) {
  dns::Name candidate = qname;
  for (;;) {
    if (const std::uint64_t* deadline = zone_cuts_.find(candidate)) {
      if (*deadline > now()) return candidate;
      zone_cuts_.erase(candidate);
    }
    if (candidate.is_root()) return candidate;
    candidate = candidate.parent();
  }
}

void ResolverCache::clear() {
  positive_.clear();
  negative_.clear();
  servfail_.clear();
  nsec_by_zone_.clear();
  zone_cuts_.clear();
}

}  // namespace lookaside::resolver
