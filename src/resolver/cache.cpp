#include "resolver/cache.h"

#include <algorithm>

namespace lookaside::resolver {

void ResolverCache::store(const dns::RRset& rrset, bool validated,
                          std::vector<dns::ResourceRecord> rrsigs) {
  if (rrset.empty()) return;
  PositiveEntry entry;
  entry.rrset = rrset;
  entry.expires_us = ttl_to_deadline(now(), rrset.ttl());
  entry.validated = validated;
  entry.rrsigs = std::move(rrsigs);
  positive_[{rrset.name(), rrset.type()}] = std::move(entry);
}

const dns::RRset* ResolverCache::find(const dns::Name& name,
                                      dns::RRType type) {
  const auto entry = find_entry(name, type);
  return entry.has_value() ? entry->rrset : nullptr;
}

std::optional<ResolverCache::Entry> ResolverCache::find_entry(
    const dns::Name& name, dns::RRType type) {
  const auto it = positive_.find({name, type});
  if (it == positive_.end() || it->second.expires_us <= now()) {
    if (it != positive_.end()) positive_.erase(it);
    counters_.add("cache.miss");
    return std::nullopt;
  }
  counters_.add("cache.hit");
  return Entry{&it->second.rrset, it->second.validated, &it->second.rrsigs};
}

const dns::RRset* ResolverCache::find_validated(const dns::Name& name,
                                                dns::RRType type) {
  const auto entry = find_entry(name, type);
  return entry.has_value() && entry->validated ? entry->rrset : nullptr;
}

void ResolverCache::mark_validated(const dns::Name& name, dns::RRType type) {
  const auto it = positive_.find({name, type});
  if (it != positive_.end()) it->second.validated = true;
}

void ResolverCache::store_negative(const dns::Name& name, dns::RRType type,
                                   std::uint32_t ttl, bool nxdomain) {
  negative_[{name, type}] = NegativeRecord{ttl_to_deadline(now(), ttl), nxdomain};
}

NegativeEntry ResolverCache::find_negative(const dns::Name& name,
                                           dns::RRType type) {
  // NXDOMAIN entries apply regardless of type, so check the stored type too.
  const auto exact = negative_.find({name, type});
  if (exact != negative_.end() && exact->second.expires_us > now()) {
    counters_.add("cache.negative_hit");
    return exact->second.nxdomain ? NegativeEntry::kNxDomain
                                  : NegativeEntry::kNoData;
  }
  // Any unexpired NXDOMAIN entry for this name covers every type.
  const auto lower = negative_.lower_bound({name, static_cast<dns::RRType>(0)});
  for (auto it = lower; it != negative_.end() && it->first.first == name; ++it) {
    if (it->second.nxdomain && it->second.expires_us > now()) {
      counters_.add("cache.negative_hit");
      return NegativeEntry::kNxDomain;
    }
  }
  return NegativeEntry::kNone;
}

void ResolverCache::store_servfail(const dns::Name& name, dns::RRType type,
                                   std::uint32_t ttl) {
  servfail_[{name, type}] = ttl_to_deadline(now(), ttl);
  counters_.add("cache.servfail_store");
}

bool ResolverCache::find_servfail(const dns::Name& name, dns::RRType type) {
  const auto it = servfail_.find({name, type});
  if (it == servfail_.end() || it->second <= now()) return false;
  counters_.add("cache.servfail_hit");
  return true;
}

void ResolverCache::store_nsec(const dns::Name& zone_apex,
                               const dns::ResourceRecord& nsec_record) {
  const auto* nsec = std::get_if<dns::NsecRdata>(&nsec_record.rdata);
  if (nsec == nullptr) return;
  NsecEntry entry;
  entry.next = nsec->next;
  entry.types = nsec->types;
  entry.expires_us = ttl_to_deadline(now(), nsec_record.ttl);
  nsec_by_zone_[zone_apex][nsec_record.name] = std::move(entry);
}

NsecCoverage ResolverCache::nsec_check(const dns::Name& zone_apex,
                                       const dns::Name& qname,
                                       dns::RRType qtype) {
  const auto zone_it = nsec_by_zone_.find(zone_apex);
  if (zone_it == nsec_by_zone_.end()) return NsecCoverage::kNoProof;
  auto& chain = zone_it->second;
  if (!qname.is_subdomain_of(zone_apex)) return NsecCoverage::kNoProof;

  // Greatest owner <= qname.
  auto it = chain.upper_bound(qname);
  if (it == chain.begin()) return NsecCoverage::kNoProof;
  --it;
  const dns::Name& owner = it->first;
  const NsecEntry& entry = it->second;
  if (entry.expires_us <= now()) {
    chain.erase(it);
    return NsecCoverage::kNoProof;
  }

  if (owner == qname) {
    // Exact NSEC: name exists; the bitmap decides the type.
    if (std::find(entry.types.begin(), entry.types.end(), qtype) ==
        entry.types.end()) {
      counters_.add("cache.nsec_hit");
      return NsecCoverage::kTypeAbsent;
    }
    return NsecCoverage::kNoProof;
  }

  // Covering NSEC: owner < qname < next proves nonexistence. The chain's
  // last record wraps: next == apex means "everything after owner".
  const bool wraps = entry.next == zone_apex;
  if (wraps || qname.canonical_compare(entry.next) < 0) {
    counters_.add("cache.nsec_hit");
    return NsecCoverage::kNameCovered;
  }
  return NsecCoverage::kNoProof;
}

std::size_t ResolverCache::nsec_count(const dns::Name& zone_apex) const {
  const auto it = nsec_by_zone_.find(zone_apex);
  return it == nsec_by_zone_.end() ? 0 : it->second.size();
}

void ResolverCache::store_zone_cut(const dns::Name& apex, std::uint32_t ttl) {
  zone_cuts_[apex] = ttl_to_deadline(now(), ttl);
}

dns::Name ResolverCache::deepest_known_cut(const dns::Name& qname) {
  dns::Name candidate = qname;
  for (;;) {
    const auto it = zone_cuts_.find(candidate);
    if (it != zone_cuts_.end()) {
      if (it->second > now()) return candidate;
      zone_cuts_.erase(it);
    }
    if (candidate.is_root()) return candidate;
    candidate = candidate.parent();
  }
}

void ResolverCache::clear() {
  positive_.clear();
  negative_.clear();
  servfail_.clear();
  nsec_by_zone_.clear();
  zone_cuts_.clear();
}

}  // namespace lookaside::resolver
