// Striped shared proof store for multi-shard serving (DESIGN.md §4i).
//
// In the thread-per-resolver serving model every shard owns a private
// ResolverCache, so two shards that resolve names in the same DLV-covered
// span would each query the registry once — the second query is a fresh
// Case-2 leak the single-resolver deployment never makes. This store lets
// sibling shards share exactly the two proof kinds that suppress upstream
// queries without carrying answer data: validated aggressive-NSEC spans
// (RFC 8198 / RFC 5074 §5) and known zone cuts. A shard that finds a
// sibling's span here skips the registry round trip entirely, restoring the
// aggregation privacy profile of one big shared cache while keeping the hot
// positive/negative paths shard-private and lock-free.
//
// Concurrency: lock striping keyed by name hash. NSEC chains stripe by
// *zone apex* — a coverage check is a predecessor search over one zone's
// ordered chain, so the whole chain must live under a single stripe's lock
// (striping by owner would split the chain and break the walk). Zone cuts
// are point lookups and stripe by the cut name itself, spreading the much
// hotter per-level probes of deepest_known_cut. Each stripe carries a
// std::shared_mutex: checks take shared locks (concurrent readers), stores
// take exclusive locks. dns::Name computes its canonical hash eagerly at
// construction, so concurrently read keys never race on memoization.
//
// Every entry records the shard that published it; a hit whose publisher
// differs from the probing shard is counted as a *sibling* hit — the
// cross-shard suppressed-leak metric BENCH_serve v3 reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "dns/name_arena.h"
#include "dns/rr_type.h"

namespace lookaside::resolver {

enum class NsecCoverage;  // cache.h

/// Tuning for SharedProofStore (a namespace-level type so it is complete —
/// default member initializers included — before the store's constructor
/// declares `= {}` as its default argument).
struct SharedProofStoreOptions {
  /// Lock stripes; rounded up to a power of two, minimum 1.
  std::size_t stripes = 16;
};

/// Thread-safe shared NSEC/zone-cut proof store for N resolver shards.
class SharedProofStore {
 public:
  using Options = SharedProofStoreOptions;

  /// One validated NSEC span: owner (the map key) -> next, plus the type
  /// bitmap and expiry. `shard` is the publisher, for sibling accounting.
  /// This is the *publish* type; internally the store interns `next` into a
  /// shared name arena (§4k) and keeps only its 32-bit id, so N shards
  /// republishing the same chain share one canonical byte string per name.
  struct NsecProof {
    dns::Name next;
    std::vector<dns::RRType> types;
    std::uint64_t expires_us = 0;
    std::uint32_t shard = 0;
  };

  /// Atomic counter snapshot (sums across stripes).
  struct Stats {
    std::uint64_t nsec_stores = 0;
    std::uint64_t nsec_hits = 0;
    std::uint64_t nsec_sibling_hits = 0;  // hits on another shard's proof
    std::uint64_t cut_stores = 0;
    std::uint64_t cut_hits = 0;
    std::uint64_t cut_sibling_hits = 0;
    std::uint64_t verdict_stores = 0;
    std::uint64_t verdict_hits = 0;
    std::uint64_t verdict_sibling_hits = 0;
  };

  explicit SharedProofStore(Options options = {});

  // -- Aggressive NSEC spans -------------------------------------------------

  /// Publishes a validated NSEC span for `zone_apex`. Overwrites any
  /// existing entry at the same owner (refreshed proof wins).
  void store_nsec(const dns::Name& zone_apex, const dns::Name& owner,
                  NsecProof proof);

  /// Whether published spans prove (qname, qtype) absent within
  /// `zone_apex` at `now_us`. Expired entries met on the predecessor walk
  /// are skipped (not reclaimed — reads hold only a shared lock); a stale
  /// closer entry must not shadow a live covering proof. On a hit,
  /// `*expires_us` receives the proof deadline and `*cross_shard` reports
  /// whether a *different* shard published it.
  [[nodiscard]] NsecCoverage check_nsec(const dns::Name& zone_apex,
                                        const dns::Name& qname,
                                        dns::RRType qtype,
                                        std::uint64_t now_us,
                                        std::uint32_t probing_shard,
                                        std::uint64_t* expires_us = nullptr,
                                        bool* cross_shard = nullptr);

  /// Published span count for `zone_apex` (live and expired — the store
  /// reclaims lazily via purge_expired). Used for leak-cause attribution:
  /// "does the resolver know *anything* about this zone's chain".
  [[nodiscard]] std::size_t nsec_count(const dns::Name& zone_apex) const;

  // -- Zone cuts -------------------------------------------------------------

  /// Publishes that `apex` is a zone cut, valid until `expires_us`.
  void store_zone_cut(const dns::Name& apex, std::uint64_t expires_us,
                      std::uint32_t shard);

  /// Whether a live published cut exists at `apex`.
  [[nodiscard]] bool has_zone_cut(const dns::Name& apex, std::uint64_t now_us,
                                  std::uint32_t probing_shard);

  // -- Validation verdicts (vState sharing, DESIGN.md §4j) -------------------

  /// Publishes one signature-verification verdict under its 64-bit content
  /// key (signed data ⊕ signature ⊕ key material — see
  /// Validator::verdict_key), valid until `expires_us` (the RRSIG
  /// expiration). Striped by the key's low bits.
  void store_verdict(std::uint64_t key, bool valid, std::uint64_t expires_us,
                     std::uint32_t shard);

  /// Published verdict for `key` if live at `now_us`; `*cross_shard`
  /// reports whether a *different* shard published it.
  [[nodiscard]] std::optional<bool> check_verdict(
      std::uint64_t key, std::uint64_t now_us, std::uint32_t probing_shard,
      bool* cross_shard = nullptr);

  /// Published verdict count (live and expired).
  [[nodiscard]] std::size_t verdict_count() const;

  // -- Maintenance -----------------------------------------------------------

  /// Reclaims every entry expired at `now_us` (exclusive locks, stripe by
  /// stripe). Returns entries reclaimed. Virtual-clock runs never expire
  /// in-run (TTLs dwarf the makespan), so this is a tool for long-lived
  /// deployments and tests, not the serve hot path.
  std::size_t purge_expired(std::uint64_t now_us);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t stripe_count() const { return stripes_.size(); }
  /// Stripe index a name hashes to (exposed for the contention tests).
  [[nodiscard]] std::size_t stripe_of(const dns::Name& name) const {
    return name.hash() & stripe_mask_;
  }
  /// Distinct canonical names interned across all published spans, and the
  /// arena's true heap footprint (exposed for the intern suite).
  [[nodiscard]] std::size_t arena_size() const { return arena_.size(); }
  [[nodiscard]] std::size_t arena_bytes() const { return arena_.bytes(); }

 private:
  struct CanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      return a.canonical_compare(b) < 0;
    }
  };
  /// Stored form of NsecProof: `next` is an arena id, not a Name copy.
  struct StoredNsec {
    dns::NameId next = dns::kInvalidNameId;
    std::vector<dns::RRType> types;
    std::uint64_t expires_us = 0;
    std::uint32_t shard = 0;
  };
  using NsecChain = std::map<dns::Name, StoredNsec, CanonicalLess>;
  struct CutEntry {
    std::uint64_t expires_us = 0;
    std::uint32_t shard = 0;
  };
  /// One lock stripe. NSEC chains keyed by zone apex live whole in the
  /// apex's stripe; cuts keyed by the cut name live in the name's stripe.
  struct VerdictEntry {
    bool valid = false;
    std::uint64_t expires_us = 0;
    std::uint32_t shard = 0;
  };
  struct Stripe {
    mutable std::shared_mutex mutex;
    std::map<dns::Name, NsecChain, CanonicalLess> nsec;
    std::map<dns::Name, CutEntry, CanonicalLess> cuts;
    std::unordered_map<std::uint64_t, VerdictEntry> verdicts;
  };

  [[nodiscard]] Stripe& stripe_for(const dns::Name& name) {
    return *stripes_[name.hash() & stripe_mask_];
  }
  [[nodiscard]] const Stripe& stripe_for(const dns::Name& name) const {
    return *stripes_[name.hash() & stripe_mask_];
  }
  [[nodiscard]] Stripe& stripe_for_key(std::uint64_t key) {
    return *stripes_[key & stripe_mask_];
  }

  // Stripes are boxed: shared_mutex is immovable and the vector is sized
  // once at construction.
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t stripe_mask_ = 0;
  // Cross-shard intern table for span `next` names. Lock order: store_nsec
  // interns (arena exclusive) *before* taking its stripe lock and holds the
  // two never at once; check_nsec derefs (arena shared) *under* its stripe
  // lock. No path acquires a stripe while holding the arena exclusively,
  // so the order is acyclic. Ids are never reclaimed (the arena only
  // grows), which is what makes the returned Name& stable for readers.
  dns::SharedNameArena arena_;
  std::atomic<std::uint64_t> nsec_stores_{0};
  std::atomic<std::uint64_t> nsec_hits_{0};
  std::atomic<std::uint64_t> nsec_sibling_hits_{0};
  std::atomic<std::uint64_t> cut_stores_{0};
  std::atomic<std::uint64_t> cut_hits_{0};
  std::atomic<std::uint64_t> cut_sibling_hits_{0};
  std::atomic<std::uint64_t> verdict_stores_{0};
  std::atomic<std::uint64_t> verdict_hits_{0};
  std::atomic<std::uint64_t> verdict_sibling_hits_{0};
};

}  // namespace lookaside::resolver
