#include "resolver/resolver.h"

#include <algorithm>

#include "obs/tracer.h"

namespace lookaside::resolver {

namespace {

constexpr int kMaxFetchDepth = 12;
constexpr int kMaxReferralHops = 16;
constexpr std::uint32_t kDefaultNegativeTtl = 3600;

std::uint32_t soa_negative_ttl(const GroupedSection& authority) {
  for (const dns::RRset& rrset : authority.rrsets) {
    if (rrset.type() != dns::RRType::kSoa || rrset.empty()) continue;
    const auto* soa =
        std::get_if<dns::SoaRdata>(&rrset.records().front().rdata);
    if (soa != nullptr) return soa->minimum_ttl;
  }
  return kDefaultNegativeTtl;
}

double hash_unit_interval(const dns::Name& name) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : name.internal_text()) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

}  // namespace

const char* status_name(ValidationStatus status) {
  switch (status) {
    case ValidationStatus::kSecure: return "secure";
    case ValidationStatus::kInsecure: return "insecure";
    case ValidationStatus::kBogus: return "bogus";
    case ValidationStatus::kIndeterminate: return "indeterminate";
  }
  return "?";
}

RecursiveResolver::RecursiveResolver(sim::Network& network,
                                     server::ServerDirectory& directory,
                                     ResolverConfig config)
    : network_(&network),
      directory_(&directory),
      config_(std::move(config)),
      cache_(network.clock()),
      validator_(network.clock()) {
  CacheLimits limits{config_.max_cache_bytes, config_.cache_sweep_step};
  // Under aggressive synthesis the spans answer (and elide) denials, so
  // the replacement policy protects hot spans harder than one clock pass.
  if (config_.aggressive_synthesis) limits.nsec_extra_chances = 2;
  cache_.set_limits(limits);
  validator_.set_verdict_cache_entries(config_.verdict_cache_entries);
}

void RecursiveResolver::trace_event(obs::EventKind kind,
                                    const dns::Name& name, dns::RRType qtype,
                                    std::string detail,
                                    std::string server) const {
  if (tracer_ == nullptr) return;
  obs::Event event;
  event.kind = kind;
  event.name = name.to_text();
  event.qtype = qtype;
  event.detail = std::move(detail);
  event.server = std::move(server);
  tracer_->emit(std::move(event));
}

bool RecursiveResolver::ns_fetch_coin(const dns::Name& zone) const {
  return config_.ns_fetch_probability > 0.0 &&
         hash_unit_interval(zone) < config_.ns_fetch_probability;
}

// ---------------------------------------------------------------------------
// Retry / failover (robustness layer)
// ---------------------------------------------------------------------------

bool RecursiveResolver::server_dead(const std::string& server_id) {
  const auto it = dead_until_us_.find(server_id);
  if (it == dead_until_us_.end()) return false;
  if (it->second <= network_->clock().now_us()) {
    dead_until_us_.erase(it);  // holddown lapsed; probe the server again
    return false;
  }
  return true;
}

void RecursiveResolver::mark_server_dead(const std::string& server_id,
                                         const dns::Question& question) {
  if (config_.server_holddown_us == 0) return;
  dead_until_us_[server_id] =
      network_->clock().now_us() + config_.server_holddown_us;
  stats_.add("servers.marked_dead");
  trace_event(obs::EventKind::kServerMarkedDead, question.name, question.type,
              "holddown", server_id);
}

std::optional<dns::Message> RecursiveResolver::exchange_with_retry(
    sim::Endpoint& server, const dns::Message& query,
    const RetryPolicy& policy) {
  const std::string server_id = server.endpoint_id();
  if (server_dead(server_id)) {
    stats_.add("servers.skipped_dead");
    return std::nullopt;
  }
  const dns::Question& question = query.question();
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    if (attempt > 0) {
      stats_.add("retries");
      network_->counters().add("retries");
      trace_event(obs::EventKind::kRetry, question.name, question.type,
                  "attempt=" + std::to_string(attempt), server_id);
    }
    const auto response = network_->exchange(endpoint_id(), server, query,
                                             policy.rto_for_attempt(attempt));
    if (current_ != nullptr) ++current_->upstream_exchanges;
    if (!response.has_value()) continue;
    // A truncated response is useless over simulated UDP: treat it like a
    // loss and re-ask (models the retry-over-TCP round trip as a re-query).
    if (response->header.tc) {
      stats_.add("truncated_responses");
      continue;
    }
    return response;
  }
  mark_server_dead(server_id, question);
  return std::nullopt;
}

std::optional<dns::Message> RecursiveResolver::exchange_zone(
    const dns::Name& zone_apex, const dns::Message& query,
    const RetryPolicy& policy) {
  const std::vector<sim::Endpoint*> servers =
      directory_->authorities_for_zone(zone_apex);
  bool failed_over = false;
  for (sim::Endpoint* server : servers) {
    if (server == nullptr) continue;
    if (failed_over) stats_.add("failover.used");
    const auto response = exchange_with_retry(*server, query, policy);
    if (response.has_value()) return response;
    failed_over = true;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Iterative fetching
// ---------------------------------------------------------------------------

RecursiveResolver::Fetched RecursiveResolver::fetched_denial(
    const ProofResult& proof) {
  Fetched out;
  out.kind = proof.coverage == DenialKind::kNxDomain ? Fetched::Kind::kNxDomain
                                                     : Fetched::Kind::kNoData;
  out.from_cache = true;
  // A denial synthesized from validated spans (RFC 8198) is itself
  // validated material; an exact negative entry keeps its legacy
  // unvalidated treatment.
  out.cached_validated = proof.origin != ProofOrigin::kLocal;
  return out;
}

RecursiveResolver::Fetched RecursiveResolver::fetch_from_cache(
    const dns::Name& qname, dns::RRType qtype) {
  Fetched out;
  if (config_.aggressive_synthesis) {
    // RFC 8198 for every query class, not just DLV probes: any cached
    // validated span (or NSEC3 evidence) covering qname answers without
    // contacting authorities. The zone scope is the deepest known cut —
    // except for DS, which only the parent side of the cut can deny
    // (mirrors the routing_name logic in fetch()).
    const dns::Name scope_name =
        (qtype == dns::RRType::kDs && !qname.is_root()) ? qname.parent()
                                                        : qname;
    const ProofResult proof = cache_.find_denial(
        cache_.deepest_known_cut(scope_name), qname, qtype, denial_sources());
    if (proof.hash_ops > 0) charge_nsec3_cost(proof.hash_ops);
    if (proof) {
      if (proof.origin != ProofOrigin::kLocal) {
        stats_.add("cache.synth_answer");
      }
      return fetched_denial(proof);
    }
  } else {
    const ProofResult proof = cache_.find_denial(
        qname, qname, qtype, DenialSources::kNegative);
    if (proof) return fetched_denial(proof);
  }
  auto entry = cache_.find_entry(qname, qtype);
  if (!entry.has_value() && qtype != dns::RRType::kCname) {
    // A cached CNAME answers any qtype.
    entry = cache_.find_entry(qname, dns::RRType::kCname);
  }
  if (entry.has_value()) {
    out.kind = Fetched::Kind::kAnswer;
    out.from_cache = true;
    out.cached_validated = entry->validated;
    out.answer.rrsets.push_back(*entry->rrset);
    out.answer.rrsigs = *entry->rrsigs;
    out.auth_zone = cache_.deepest_known_cut(qname);
    return out;
  }
  out.kind = Fetched::Kind::kFail;
  return out;
}

RecursiveResolver::Fetched RecursiveResolver::fetch(const dns::Name& qname,
                                                    dns::RRType qtype,
                                                    int depth) {
  if (depth > kMaxFetchDepth) return Fetched{};

  Fetched cached = fetch_from_cache(qname, qtype);
  if (cached.kind != Fetched::Kind::kFail) {
    trace_event(obs::EventKind::kCacheHit, qname, qtype,
                cached.kind == Fetched::Kind::kAnswer ? "positive"
                                                      : "negative");
    return cached;
  }

  // DS is served by the parent side of a cut; route accordingly.
  const dns::Name routing_name =
      (qtype == dns::RRType::kDs && !qname.is_root()) ? qname.parent() : qname;

  dns::Name zone_apex = cache_.deepest_known_cut(routing_name);
  sim::Endpoint* endpoint = directory_->authority_for_zone(zone_apex);
  if (endpoint == nullptr) {
    zone_apex = dns::Name::root();
    endpoint = directory_->authority_for_zone(zone_apex);
    if (endpoint == nullptr) return Fetched{};
  }

  const bool dnssec_ok =
      config_.validation_enabled() || config_.dlv_enabled();

  Fetched out;
  std::size_t minimize_extra = 0;  // RFC 7816 NODATA extension counter
  for (int hop = 0; hop < kMaxReferralHops; ++hop) {
    // RFC 7816: against non-terminal authorities, ask only for the next
    // zone cut (one label below the current zone, qtype NS). A NODATA
    // reply to a minimized query (empty non-terminal, in-zone host) widens
    // the name by one label and retries.
    dns::Name send_name = qname;
    dns::RRType send_type = qtype;
    const std::size_t min_labels =
        zone_apex.label_count() + 1 + minimize_extra;
    if (config_.qname_minimization && qname.label_count() > min_labels &&
        qname.is_subdomain_of(zone_apex)) {
      while (send_name.label_count() > min_labels) {
        send_name = send_name.parent();
      }
      send_type = dns::RRType::kNs;
    }
    const bool minimized = send_name != qname;
    const dns::Message query = dns::Message::make_query(
        next_id_++, send_name, send_type, /*recursion_desired=*/false,
        dnssec_ok);
    const auto response = exchange_zone(zone_apex, query, config_.retry);
    if (!response.has_value()) return Fetched{};

    out.answer = group_section(response->answers);
    out.authority = group_section(response->authorities);
    out.auth_zone = zone_apex;
    out.z_bit = response->header.z;

    if (response->header.rcode == dns::RCode::kNxDomain) {
      // NXDOMAIN of an ancestor implies NXDOMAIN of the full name.
      out.kind = Fetched::Kind::kNxDomain;
      cache_.store_negative(send_name, send_type,
                            soa_negative_ttl(out.authority),
                            /*nxdomain=*/true);
      if (minimized) {
        cache_.store_negative(qname, qtype, soa_negative_ttl(out.authority),
                              /*nxdomain=*/true);
      }
      return out;
    }
    if (response->header.rcode != dns::RCode::kNoError) {
      out.kind = Fetched::Kind::kFail;
      return out;
    }

    // Minimized NS query answered authoritatively at the cut: step down a
    // zone level and keep going.
    if (minimized) {
      const dns::RRset* cut_ns =
          find_rrset(out.answer, send_name, dns::RRType::kNs);
      if (cut_ns != nullptr) {
        cache_.store(*cut_ns, /*validated=*/false);
        cache_.store_zone_cut(send_name, cut_ns->ttl());
        sim::Endpoint* next = directory_->authority_for_zone(send_name);
        if (next == nullptr) return Fetched{};
        endpoint = next;
        zone_apex = send_name;
        minimize_extra = 0;
        continue;
      }
    }

    // Answer present?
    const dns::RRset* direct = find_rrset(out.answer, qname, qtype);
    const dns::RRset* cname =
        direct == nullptr && qtype != dns::RRType::kCname
            ? find_rrset(out.answer, qname, dns::RRType::kCname)
            : nullptr;
    if (direct != nullptr || cname != nullptr) {
      out.kind = Fetched::Kind::kAnswer;
      const dns::RRset& rrset = direct != nullptr ? *direct : *cname;
      std::vector<dns::ResourceRecord> covering;
      for (const dns::ResourceRecord& sig : out.answer.rrsigs) {
        const auto* rdata = std::get_if<dns::RrsigRdata>(&sig.rdata);
        if (rdata != nullptr && sig.name == rrset.name() &&
            rdata->type_covered == rrset.type()) {
          covering.push_back(sig);
        }
      }
      cache_.store(rrset, /*validated=*/false, std::move(covering));
      return out;
    }

    // Referral? (NS in authority, not at this server's apex)
    const dns::RRset* referral_ns = nullptr;
    for (const dns::RRset& rrset : out.authority.rrsets) {
      if (rrset.type() == dns::RRType::kNs && rrset.name() != zone_apex) {
        referral_ns = &rrset;
        break;
      }
    }
    if (referral_ns != nullptr) {
      const dns::Name cut = referral_ns->name();
      cache_.store(*referral_ns, /*validated=*/false);
      cache_.store_zone_cut(cut, referral_ns->ttl());
      // Cache any glue that rode along.
      GroupedSection additional = group_section(response->additionals);
      for (const dns::RRset& glue : additional.rrsets) {
        if (glue.type() == dns::RRType::kA) {
          cache_.store(glue, /*validated=*/false);
        }
      }
      // Glue chasing: resolve the first NS host we have no address for.
      for (const dns::ResourceRecord& ns : referral_ns->records()) {
        const auto* rdata = std::get_if<dns::NsRdata>(&ns.rdata);
        if (rdata == nullptr) continue;
        const dns::Name& host = rdata->nameserver;
        if (find_rrset(additional, host, dns::RRType::kA) != nullptr) break;
        if (cache_.find(host, dns::RRType::kA) != nullptr) break;
        if (host.is_subdomain_of(cut)) break;  // would be glue if it existed
        (void)fetch(host, dns::RRType::kA, depth + 1);
        break;
      }

      sim::Endpoint* next = directory_->authority_for_zone(cut);
      if (next == nullptr) return Fetched{};
      endpoint = next;
      zone_apex = cut;
      minimize_extra = 0;
      continue;
    }

    // NOERROR without answer or referral: NODATA. For a minimized query
    // this only means the intermediate label is an empty non-terminal or a
    // host — widen the name and retry (RFC 7816 §3).
    if (minimized) {
      ++minimize_extra;
      continue;
    }
    out.kind = Fetched::Kind::kNoData;
    cache_.store_negative(qname, qtype, soa_negative_ttl(out.authority),
                          /*nxdomain=*/false);
    return out;
  }
  return Fetched{};
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

ValidationStatus RecursiveResolver::validate_zone_keys(
    const dns::Name& zone, const dns::DsRdata* ds,
    const dns::DnskeyRdata* anchor, int depth, dns::RRset* out_keys) {
  if (const dns::RRset* cached =
          cache_.find_validated(zone, dns::RRType::kDnskey)) {
    *out_keys = *cached;
    return ValidationStatus::kSecure;
  }
  Fetched keys_fetch = fetch(zone, dns::RRType::kDnskey, depth + 1);
  if (keys_fetch.kind != Fetched::Kind::kAnswer) {
    // DS (or an anchor) says the zone is signed but no DNSKEY is served.
    return ValidationStatus::kBogus;
  }
  const dns::RRset* keys = nullptr;
  for (const dns::RRset& rrset : keys_fetch.answer.rrsets) {
    if (rrset.type() == dns::RRType::kDnskey && rrset.name() == zone) {
      keys = &rrset;
      break;
    }
  }
  if (keys == nullptr) return ValidationStatus::kBogus;

  // The securing key must be endorsed by the DS or equal the trust anchor.
  bool endorsed = false;
  if (ds != nullptr) {
    endorsed = Validator::find_ds_endorsed_key(zone, *keys, *ds) != nullptr;
  } else if (anchor != nullptr) {
    for (const dns::ResourceRecord& record : keys->records()) {
      const auto* key = std::get_if<dns::DnskeyRdata>(&record.rdata);
      if (key != nullptr && *key == *anchor) {
        endorsed = true;
        break;
      }
    }
  }
  if (!endorsed) return ValidationStatus::kBogus;

  if (validator_.verify_rrset(*keys, keys_fetch.answer.rrsigs, *keys) !=
      SigCheck::kValid) {
    return ValidationStatus::kBogus;
  }
  cache_.store(*keys, /*validated=*/true, keys_fetch.answer.rrsigs);
  *out_keys = *keys;
  return ValidationStatus::kSecure;
}

ValidationStatus RecursiveResolver::validate_descent(
    const dns::Name& from_zone, dns::RRset trusted, const dns::Name& to_zone,
    int depth, dns::RRset* out_keys) {
  // Build the list of zones strictly below from_zone down to to_zone,
  // assuming cuts at label boundaries (true throughout this simulator).
  std::vector<dns::Name> descent;
  dns::Name walk = to_zone;
  while (walk != from_zone) {
    descent.push_back(walk);
    if (walk.is_root()) return ValidationStatus::kBogus;  // not an ancestor
    walk = walk.parent();
  }
  std::reverse(descent.begin(), descent.end());

  dns::Name parent = from_zone;
  for (const dns::Name& child : descent) {
    if (const dns::RRset* cached =
            cache_.find_validated(child, dns::RRType::kDnskey)) {
      trusted = *cached;
      parent = child;
      continue;
    }

    Fetched ds_fetch = fetch(child, dns::RRType::kDs, depth + 1);
    if (ds_fetch.kind == Fetched::Kind::kNoData ||
        ds_fetch.kind == Fetched::Kind::kNxDomain) {
      // Proven (or cached) absence of DS: the delegation is insecure.
      if (!ds_fetch.from_cache) {
        cache_validated_nsecs(ds_fetch.authority, parent, trusted);
      }
      return ValidationStatus::kInsecure;
    }
    if (ds_fetch.kind != Fetched::Kind::kAnswer) {
      return ValidationStatus::kIndeterminate;
    }
    const dns::RRset* ds_rrset = nullptr;
    for (const dns::RRset& rrset : ds_fetch.answer.rrsets) {
      if (rrset.type() == dns::RRType::kDs && rrset.name() == child) {
        ds_rrset = &rrset;
        break;
      }
    }
    if (ds_rrset == nullptr) return ValidationStatus::kIndeterminate;
    if (!(ds_fetch.from_cache && ds_fetch.cached_validated)) {
      if (validator_.verify_rrset(*ds_rrset, ds_fetch.answer.rrsigs,
                                  trusted) != SigCheck::kValid) {
        return ValidationStatus::kBogus;
      }
      cache_.store(*ds_rrset, /*validated=*/true, ds_fetch.answer.rrsigs);
    }

    const auto* ds =
        std::get_if<dns::DsRdata>(&ds_rrset->records().front().rdata);
    if (ds == nullptr) return ValidationStatus::kBogus;
    dns::RRset child_keys;
    const ValidationStatus key_status =
        validate_zone_keys(child, ds, nullptr, depth, &child_keys);
    if (key_status != ValidationStatus::kSecure) return key_status;
    trusted = std::move(child_keys);
    parent = child;
  }
  *out_keys = std::move(trusted);
  return ValidationStatus::kSecure;
}

ValidationStatus RecursiveResolver::validate_chain(const dns::Name& zone,
                                                   int depth,
                                                   dns::RRset* out_keys) {
  if (!config_.root_anchor_available() || !root_anchor_.has_value()) {
    return ValidationStatus::kIndeterminate;
  }
  dns::RRset root_keys;
  const ValidationStatus root_status = validate_zone_keys(
      dns::Name::root(), nullptr, &*root_anchor_, depth, &root_keys);
  if (root_status != ValidationStatus::kSecure) return root_status;
  return validate_descent(dns::Name::root(), std::move(root_keys), zone,
                          depth, out_keys);
}

void RecursiveResolver::cache_validated_nsecs(const GroupedSection& section,
                                              const dns::Name& zone,
                                              const dns::RRset& keys) {
  if (!config_.aggressive_negative_caching) return;
  for (const dns::RRset& rrset : section.rrsets) {
    if (rrset.type() != dns::RRType::kNsec) continue;
    if (validator_.verify_rrset(rrset, section.rrsigs, keys) !=
        SigCheck::kValid) {
      continue;
    }
    for (const dns::ResourceRecord& record : rrset.records()) {
      cache_.store_nsec(zone, record);
      stats_.add("nsec.cached");
    }
  }
}

void RecursiveResolver::charge_nsec3_cost(std::uint64_t hash_ops) {
  const std::uint64_t cost_us = hash_ops * config_.nsec3_hash_cost_ns / 1000;
  if (cost_us > 0) network_->clock().advance_us(cost_us);
  stats_.add("nsec3.hash_ops", hash_ops);
  if (current_ != nullptr) current_->validation_cost_us += cost_us;
}

RecursiveResolver::Nsec3Policy RecursiveResolver::handle_nsec3_denial(
    const GroupedSection& authority, const dns::Name& qname,
    const dns::Name& zone_apex, const dns::RRset* keys) {
  const dns::Nsec3Rdata* nsec3 = Validator::first_nsec3(authority);
  if (nsec3 == nullptr) return Nsec3Policy::kNone;
  nsec3_apexes_.get_or_insert(zone_apex) = true;
  stats_.add("nsec3.denials");

  // RFC 9276 §3: the iteration cap is enforced before any hashing, so an
  // attacker-inflated count cannot bill the validator's CPU.
  if (config_.nsec3_iteration_cap > 0 &&
      nsec3->iterations > config_.nsec3_iteration_cap) {
    stats_.add("nsec3.over_cap");
    if (config_.nsec3_strict) {
      stats_.add("nsec3.over_cap.servfail");
      trace_event(obs::EventKind::kValidation, qname, dns::RRType::kNsec3,
                  "nsec3-over-cap-servfail");
      return Nsec3Policy::kRejected;
    }
    // Downgrade-to-insecure: accept the denial without verifying it, the
    // post-2021 BIND/Unbound behavior.
    stats_.add("nsec3.over_cap.insecure");
    trace_event(obs::EventKind::kValidation, qname, dns::RRType::kNsec3,
                "nsec3-over-cap-insecure");
    return Nsec3Policy::kDowngraded;
  }

  if (keys == nullptr) {
    // No validated keys for the zone: the denial cannot be proven, but the
    // hashing bill was never run either. Treat like the plain-NSEC case of
    // an unvalidated zone.
    return Nsec3Policy::kDowngraded;
  }
  const Nsec3Check check =
      validator_.check_nsec3_denial(authority, qname, zone_apex, *keys);
  charge_nsec3_cost(check.hash_ops);
  if (!check.proven) {
    stats_.add("nsec3.unproven");
    return Nsec3Policy::kRejected;
  }
  stats_.add("nsec3.proven");
  if (config_.aggressive_synthesis && check.has_evidence) {
    // Cache the proof's verified material (closest encloser + hashed
    // spans) so later queries under the same encloser synthesize NXDOMAIN
    // with a single hash instead of a registry round trip (DESIGN.md §4j).
    ResolverCache::Nsec3Evidence evidence;
    evidence.salt = check.salt;
    evidence.iterations = check.iterations;
    evidence.closest_encloser = check.closest_encloser;
    evidence.spans = check.spans;
    evidence.expires_us =
        network_->clock().now_us() +
        static_cast<std::uint64_t>(soa_negative_ttl(authority)) * 1'000'000ULL;
    cache_.store_nsec3_evidence(zone_apex, evidence);
  }
  return Nsec3Policy::kAccepted;
}

ValidationStatus RecursiveResolver::validate_response(const Fetched& fetched,
                                                      const dns::Name& qname,
                                                      int depth) {
  if (fetched.from_cache) {
    return fetched.cached_validated ? ValidationStatus::kSecure
                                    : ValidationStatus::kInsecure;
  }
  dns::RRset zone_keys;
  const ValidationStatus chain =
      validate_chain(fetched.auth_zone, depth, &zone_keys);
  if (chain != ValidationStatus::kSecure) return chain;

  for (const dns::RRset& rrset : fetched.answer.rrsets) {
    if (validator_.verify_rrset(rrset, fetched.answer.rrsigs, zone_keys) !=
        SigCheck::kValid) {
      return ValidationStatus::kBogus;
    }
    cache_.mark_validated(rrset.name(), rrset.type());
  }
  // Negative responses: verify the denial (SOA + NSEC/NSEC3) and feed the
  // aggressive cache.
  if (fetched.kind == Fetched::Kind::kNxDomain ||
      fetched.kind == Fetched::Kind::kNoData) {
    for (const dns::RRset& rrset : fetched.authority.rrsets) {
      if (rrset.type() != dns::RRType::kSoa &&
          rrset.type() != dns::RRType::kNsec) {
        continue;
      }
      if (validator_.verify_rrset(rrset, fetched.authority.rrsigs,
                                  zone_keys) != SigCheck::kValid) {
        return ValidationStatus::kBogus;
      }
    }
    // NSEC3 proofs carry their own signature checks plus the iterated-hash
    // verification (and its modeled CPU bill) behind the RFC 9276 cap.
    switch (handle_nsec3_denial(fetched.authority, qname, fetched.auth_zone,
                                &zone_keys)) {
      case Nsec3Policy::kRejected:
        return ValidationStatus::kBogus;
      case Nsec3Policy::kDowngraded:
        return ValidationStatus::kInsecure;
      case Nsec3Policy::kNone:
      case Nsec3Policy::kAccepted:
        break;
    }
    cache_validated_nsecs(fetched.authority, fetched.auth_zone, zone_keys);
  }
  return ValidationStatus::kSecure;
}

// ---------------------------------------------------------------------------
// DLV look-aside (RFC 5074)
// ---------------------------------------------------------------------------

const dns::RRset* RecursiveResolver::dlv_zone_keys(const dns::Name& apex,
                                                   int depth) {
  (void)depth;
  if (const dns::RRset* cached =
          cache_.find_validated(apex, dns::RRType::kDnskey)) {
    return cached;
  }
  const auto anchor_it = dlv_anchors_.find(apex);
  if (anchor_it == dlv_anchors_.end()) return nullptr;
  const dns::DnskeyRdata& anchor = anchor_it->second;
  // The DLV domain is configuration, not referral-discovered: ask the
  // registry directly for its DNSKEY RRset and anchor-validate it.
  sim::Endpoint* registry = directory_->authority_for_zone(apex);
  if (registry == nullptr) return nullptr;
  const dns::Message query = dns::Message::make_query(
      next_id_++, apex, dns::RRType::kDnskey,
      /*recursion_desired=*/false, /*dnssec_ok=*/true);
  // DLV traffic runs on its own bounded retry budget: a dead registry must
  // not cost the full upstream schedule on every resolution (§8.4).
  const auto response = exchange_zone(apex, query, config_.dlv_retry);
  if (!response.has_value()) {
    if (current_ != nullptr) current_->dlv.timed_out = true;
    return nullptr;
  }

  const GroupedSection answer = group_section(response->answers);
  const dns::RRset* keys = find_rrset(answer, apex, dns::RRType::kDnskey);
  if (keys == nullptr) return nullptr;
  bool anchored = false;
  for (const dns::ResourceRecord& record : keys->records()) {
    const auto* key = std::get_if<dns::DnskeyRdata>(&record.rdata);
    if (key != nullptr && *key == anchor) {
      anchored = true;
      break;
    }
  }
  if (!anchored) return nullptr;
  if (validator_.verify_rrset(*keys, answer.rrsigs, *keys) != SigCheck::kValid) {
    return nullptr;
  }
  cache_.store(*keys, /*validated=*/true, answer.rrsigs);
  return cache_.find_validated(apex, dns::RRType::kDnskey);
}

RecursiveResolver::DlvOutcome RecursiveResolver::dlv_lookup(
    const dns::Name& domain, ResolveResult& result, int depth) {
  // Consult registries in configured order; each one contacted is one more
  // third party that observes the query (paper §7.3.2).
  DlvOutcome outcome = dlv_lookup_at(config_.dlv_domain, domain, result, depth);
  for (const dns::Name& apex : config_.additional_dlv_domains) {
    if (outcome.found) break;
    outcome = dlv_lookup_at(apex, domain, result, depth);
  }
  return outcome;
}

RecursiveResolver::DlvOutcome RecursiveResolver::dlv_lookup_at(
    const dns::Name& apex, const dns::Name& domain, ResolveResult& result,
    int depth) {
  DlvOutcome outcome;
  sim::Endpoint* registry = directory_->authority_for_zone(apex);
  if (registry == nullptr) return outcome;

  const dns::RRset* dlv_keys = dlv_zone_keys(apex, depth);

  // Candidate DLV names: RFC 5074 label stripping ("the validator removes
  // the leading label from the query and tries again"). Hashed mode has a
  // single flat candidate (hash labels are not hierarchical).
  std::vector<std::pair<dns::Name, dns::Name>> candidates;  // (dlv name, domain)
  if (config_.hashed_dlv_queries) {
    candidates.emplace_back(dlv::hashed_dlv_name(domain, apex), domain);
  } else {
    dns::Name walk = domain;
    for (;;) {
      candidates.emplace_back(dlv::clear_dlv_name(walk, apex), walk);
      if (walk.label_count() <= 2) break;  // stop at the registrable suffix
      walk = walk.parent();
    }
  }

  for (const auto& [candidate, candidate_domain] : candidates) {
    // One unified lookup replaces the old find_negative + nsec_check pair;
    // the origin keeps the legacy counter/trace vocabulary intact so leak
    // ledgers stay comparable across PRs.
    const ProofResult proof = cache_.find_denial(
        apex, candidate, dns::RRType::kDlv, denial_sources());
    if (proof.hash_ops > 0) charge_nsec3_cost(proof.hash_ops);
    if (proof) {
      result.dlv.suppressed_by_nsec = true;
      dlv_denial_deadline_.get_or_insert(candidate) = proof.expires_us;
      const char* detail = "nsec";
      if (proof.origin == ProofOrigin::kLocal) {
        stats_.add("dlv.suppressed.negative");
        detail = "negative-cache";
      } else {
        stats_.add("dlv.suppressed.nsec");
        if (proof.hash_ops > 0) detail = "nsec3-synthesized";
        if (config_.aggressive_synthesis) {
          // Synthesis metric: denials answered without an exact cached
          // entry (span- or evidence-derived) under the RFC 8198 profile.
          stats_.add("dlv.suppressed.synthesized");
        }
      }
      trace_event(obs::EventKind::kNsecSuppression, candidate,
                  dns::RRType::kDlv, detail, registry->endpoint_id());
      continue;
    }

    // No cached denial covers this candidate, so a DLV query is about to
    // leave the resolver and the registry is about to observe it. Classify
    // *why* the query escaped — the leak ledger pairs this event (emitted
    // before the exchange, so it precedes the registry's observation in
    // stream order) with the Case-1/Case-2 verdict the registry assigns.
    if (tracer_ != nullptr) {
      std::string cause = "cold-miss";
      if (const std::uint64_t* deadline =
              dlv_denial_deadline_.find(candidate)) {
        // The resolver held a denial proof for this exact name before: if
        // its TTL has lapsed this is ordinary expiry; if the deadline is
        // still ahead, the proof can only have been evicted under pressure.
        cause = *deadline <= network_->clock().now_us() ? "ttl-expiry"
                                                        : "eviction";
      } else if (cache_.nsec_count(apex) > 0) {
        // Never proven before, but the zone's NSEC chain is warm — the
        // cached spans simply do not cover this name.
        cause = "nsec-gap";
      }
      // NSEC3 registries get their own cause vocabulary (cold-miss-nsec3,
      // ...) so the ledger's per-cause totals separate hashed denial from
      // plain NSEC while the Case-2 sum stays identical. The very first
      // query against a registry predates the discovery of its denial
      // flavor and stays untagged by construction.
      if (nsec3_apexes_.find(apex) != nullptr) cause += "-nsec3";
      trace_event(obs::EventKind::kLeakCause, candidate, dns::RRType::kDlv,
                  cause, registry->endpoint_id());
    }

    const dns::Message query = dns::Message::make_query(
        next_id_++, candidate, dns::RRType::kDlv,
        /*recursion_desired=*/false, /*dnssec_ok=*/true);
    const auto response = exchange_zone(apex, query, config_.dlv_retry);
    result.dlv.used = true;
    result.dlv.query_names.push_back(candidate);
    stats_.add("dlv.queries");
    // Trace detail distinguishes the three registry outcomes: "timeout"
    // (outage / retries exhausted), "nxdomain" (definitive no-deposit) and
    // "query" (answered, record or NODATA).
    const bool nxdomain =
        response.has_value() &&
        response->header.rcode == dns::RCode::kNxDomain;
    trace_event(obs::EventKind::kDlvLookup, candidate, dns::RRType::kDlv,
                !response.has_value() ? "timeout"
                : nxdomain            ? "nxdomain"
                                      : "query",
                registry->endpoint_id());
    if (!response.has_value()) {  // registry outage (§8.4)
      result.dlv.timed_out = true;
      stats_.add("dlv.timeout");
      continue;
    }

    GroupedSection answer = group_section(response->answers);
    GroupedSection authority = group_section(response->authorities);

    const dns::RRset* dlv_rrset =
        find_rrset(answer, candidate, dns::RRType::kDlv);
    if (response->header.rcode == dns::RCode::kNoError &&
        dlv_rrset != nullptr) {
      // "No error": a record is deposited (Case-1 observation).
      if (dlv_keys != nullptr &&
          validator_.verify_rrset(*dlv_rrset, answer.rrsigs, *dlv_keys) !=
              SigCheck::kValid) {
        stats_.add("dlv.bogus_answer");
        continue;
      }
      const auto* ds =
          std::get_if<dns::DsRdata>(&dlv_rrset->records().front().rdata);
      if (ds == nullptr) continue;
      outcome.found = true;
      outcome.ds = *ds;
      outcome.matched_domain = candidate_domain;
      stats_.add("dlv.found");
      trace_event(obs::EventKind::kDlvLookup, candidate, dns::RRType::kDlv,
                  "found", registry->endpoint_id());
      return outcome;
    }

    // "No such name" (or NODATA): verify the denial proof, cache it, then
    // keep stripping. NSEC3 denial is the attack hot path — the proof check
    // hashes the candidate's ancestor chain at the zone's iteration count
    // and charges that CPU to the virtual clock, unless the RFC 9276 cap
    // already disposed of the proof without hashing.
    switch (handle_nsec3_denial(authority, candidate, apex, dlv_keys)) {
      case Nsec3Policy::kRejected:
        if (config_.nsec3_strict) {
          result.dlv.nsec3_rejected = true;
          return outcome;  // fail closed: no deeper candidates either
        }
        continue;  // unproven denial: do not cache, keep stripping
      case Nsec3Policy::kNone:
      case Nsec3Policy::kAccepted:
      case Nsec3Policy::kDowngraded:
        break;
    }
    const std::uint32_t denial_ttl = soa_negative_ttl(authority);
    const bool nxdomain_denial =
        response->header.rcode == dns::RCode::kNxDomain;
    if (!config_.aggressive_synthesis) {
      // Paper-era order: exact negative entry first, then validated spans.
      cache_.store_negative(candidate, dns::RRType::kDlv, denial_ttl,
                            nxdomain_denial);
      dlv_denial_deadline_.get_or_insert(candidate) =
          network_->clock().now_us() +
          static_cast<std::uint64_t>(denial_ttl) * 1'000'000ULL;
      if (dlv_keys != nullptr) {
        cache_validated_nsecs(authority, apex, *dlv_keys);
      }
    } else {
      // RFC 8198 profile: cache the validated spans first, then skip the
      // redundant exact negative entry when a live span (or NSEC3
      // evidence, cached by handle_nsec3_denial above) already covers the
      // candidate — the span both answers and suppresses, so the exact
      // entry would only add eviction pressure. This is what bends the
      // cap-sweep Case-2 curve down under tight caps.
      if (dlv_keys != nullptr) {
        cache_validated_nsecs(authority, apex, *dlv_keys);
      }
      const ProofResult covered = cache_.find_denial(
          apex, candidate, dns::RRType::kDlv,
          DenialSources::kSpans | DenialSources::kNsec3);
      if (covered.hash_ops > 0) charge_nsec3_cost(covered.hash_ops);
      if (covered) {
        stats_.add("cache.negative_elided");
        dlv_denial_deadline_.get_or_insert(candidate) = covered.expires_us;
      } else {
        cache_.store_negative(candidate, dns::RRType::kDlv, denial_ttl,
                              nxdomain_denial);
        dlv_denial_deadline_.get_or_insert(candidate) =
            network_->clock().now_us() +
            static_cast<std::uint64_t>(denial_ttl) * 1'000'000ULL;
      }
    }
  }
  return outcome;
}

std::optional<bool> RecursiveResolver::fetch_txt_signal(
    const dns::Name& domain, int depth) {
  Fetched fetched = fetch(domain, dns::RRType::kTxt, depth + 1);
  if (fetched.kind != Fetched::Kind::kAnswer) return std::nullopt;
  for (const dns::RRset& rrset : fetched.answer.rrsets) {
    if (rrset.type() != dns::RRType::kTxt) continue;
    for (const dns::ResourceRecord& record : rrset.records()) {
      const auto* txt = std::get_if<dns::TxtRdata>(&record.rdata);
      if (txt == nullptr) continue;
      for (const std::string& s : txt->strings) {
        if (s == "dlv=1") return true;
        if (s == "dlv=0") return false;
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Front door
// ---------------------------------------------------------------------------

ResolveResult RecursiveResolver::resolve(const Query& query) {
  const dns::Name& qname = query.name;
  const dns::RRType qtype = query.type;
  // The CD bit turns off validation (and with it DLV look-aside) for this
  // one resolution; everything else runs unchanged.
  const bool validate =
      config_.validation_enabled() && !query.options.checking_disabled;
  const bool look_aside =
      config_.dlv_enabled() && !query.options.checking_disabled;

  ResolveResult result;
  current_ = &result;

  // One RSA dedup window per resolution (DESIGN.md §4k): every signature
  // check below — trust-chain descent, answer RRsets, denial NSECs, DLV
  // candidates — shares the batch, so identical tuples the verdict cache
  // missed run the modular exponentiation once. RAII keeps the window
  // exception-safe; nested resolves (none today) would stack cleanly.
  crypto::VerifyBatchScope verify_window(validator_.verify_batch());

  std::uint64_t span_id = 0;
  std::uint64_t span_start_us = 0;
  bool pushed_query_context = false;
  if (tracer_ != nullptr) {
    span_id = tracer_->begin_span();
    span_start_us = tracer_->now_us();
    // Direct resolutions (no serve frontend) mint their own trace context
    // from the span id, so every event still carries a usable query_id.
    if (!tracer_->in_query()) {
      tracer_->push_query(span_id, /*client=*/0);
      pushed_query_context = true;
    }
    result.trace_span_id = span_id;
    trace_event(obs::EventKind::kStubQuery, qname, qtype, {});
  }

  result.response.header.qr = true;
  result.response.header.ra = true;
  result.response.questions.push_back(
      dns::Question{qname, qtype, dns::RRClass::kIn});

  dns::Name current_name = qname;
  int chased = 0;
  // RFC 2308 §7: a recent resolution failure for this tuple is answered
  // from the SERVFAIL cache without touching the network again.
  const bool servfail_cached =
      config_.servfail_ttl > 0 && cache_.find_servfail(qname, qtype);
  if (servfail_cached) {
    result.response.header.rcode = dns::RCode::kServFail;
    result.status = ValidationStatus::kIndeterminate;
    result.from_cache = true;
    stats_.add("servfail.cache_hit");
    trace_event(obs::EventKind::kCacheHit, qname, qtype, "servfail");
  }
  while (!servfail_cached) {
    Fetched fetched = fetch(current_name, qtype, 0);
    result.from_cache = fetched.from_cache;

    if (fetched.kind == Fetched::Kind::kFail) {
      result.response.header.rcode = dns::RCode::kServFail;
      result.status = ValidationStatus::kIndeterminate;
      if (config_.servfail_ttl > 0) {
        cache_.store_servfail(current_name, qtype, config_.servfail_ttl);
        stats_.add("servfail.cached");
      }
      break;
    }
    if (fetched.kind == Fetched::Kind::kNxDomain ||
        fetched.kind == Fetched::Kind::kNoData) {
      result.response.header.rcode = fetched.kind == Fetched::Kind::kNxDomain
                                         ? dns::RCode::kNxDomain
                                         : dns::RCode::kNoError;
      result.status = validate ? validate_response(fetched, current_name, 0)
                               : ValidationStatus::kIndeterminate;
      if (result.status == ValidationStatus::kBogus) {
        result.response.header.rcode = dns::RCode::kServFail;
        result.response.answers.clear();
      }
      break;
    }

    // kAnswer.
    ValidationStatus leg_status =
        validate ? validate_response(fetched, current_name, 0)
                 : ValidationStatus::kIndeterminate;

    // RFC 5074: look aside when the chain of trust did not conclude secure.
    if (look_aside && !fetched.from_cache &&
        (leg_status == ValidationStatus::kInsecure ||
         leg_status == ValidationStatus::kIndeterminate)) {
      bool consult_dlv = true;
      if (config_.honor_z_bit_signal && !fetched.z_bit) {
        consult_dlv = false;
        result.dlv.suppressed_by_signal = true;
        stats_.add("dlv.suppressed.zbit");
        trace_event(obs::EventKind::kDlvLookup, current_name, qtype,
                    "suppressed-zbit");
      }
      if (consult_dlv && config_.honor_txt_dlv_signal) {
        const std::optional<bool> signal =
            fetch_txt_signal(current_name, 0);
        if (signal.has_value() && !*signal) {
          consult_dlv = false;
          result.dlv.suppressed_by_signal = true;
          stats_.add("dlv.suppressed.txt");
          trace_event(obs::EventKind::kDlvLookup, current_name, qtype,
                      "suppressed-txt");
        }
      }
      if (consult_dlv) {
        const DlvOutcome dlv = dlv_lookup(current_name, result, 0);
        if (dlv.found) {
          result.dlv.record_found = true;
          dns::RRset anchor_keys;
          ValidationStatus via_dlv = validate_zone_keys(
              dlv.matched_domain, &dlv.ds, nullptr, 0, &anchor_keys);
          if (via_dlv == ValidationStatus::kSecure &&
              dlv.matched_domain != fetched.auth_zone) {
            via_dlv = validate_descent(dlv.matched_domain,
                                       std::move(anchor_keys),
                                       fetched.auth_zone, 0, &anchor_keys);
          }
          if (via_dlv == ValidationStatus::kSecure) {
            bool all_valid = true;
            for (const dns::RRset& rrset : fetched.answer.rrsets) {
              if (validator_.verify_rrset(rrset, fetched.answer.rrsigs,
                                          anchor_keys) != SigCheck::kValid) {
                all_valid = false;
                break;
              }
            }
            leg_status = all_valid ? ValidationStatus::kSecure
                                   : ValidationStatus::kBogus;
            result.dlv.secured = all_valid;
          } else if (via_dlv == ValidationStatus::kBogus) {
            leg_status = ValidationStatus::kBogus;
          }
        } else if (result.dlv.nsec3_rejected) {
          // RFC 9276 strict mode: an over-cap (or unprovable) NSEC3 denial
          // is not trusted, and with strict policy the resolution fails
          // closed instead of degrading to insecure.
          leg_status = ValidationStatus::kBogus;
          stats_.add("nsec3.strict_servfail");
        } else if (result.dlv.timed_out && config_.dlv_must_be_secure) {
          // `dnssec-must-be-secure` semantics: an unreachable registry is
          // not proof of absence, so the resolution fails closed instead of
          // degrading to insecure (§8.4 availability trade-off).
          leg_status = ValidationStatus::kBogus;
          stats_.add("dlv.must_be_secure_fail");
        }
      }
    }

    result.status = leg_status;
    if (leg_status == ValidationStatus::kBogus) {
      result.response.header.rcode = dns::RCode::kServFail;
      result.response.answers.clear();
      break;
    }
    if (leg_status == ValidationStatus::kSecure) {
      for (const dns::RRset& rrset : fetched.answer.rrsets) {
        cache_.mark_validated(rrset.name(), rrset.type());
      }
    }

    // Copy answers out (records first, then covering signatures).
    const dns::RRset* cname_rrset = nullptr;
    for (const dns::RRset& rrset : fetched.answer.rrsets) {
      for (const dns::ResourceRecord& record : rrset.records()) {
        result.response.answers.push_back(record);
      }
      if (rrset.type() == dns::RRType::kCname && qtype != dns::RRType::kCname) {
        cname_rrset = &rrset;
      }
    }
    for (const dns::ResourceRecord& sig : fetched.answer.rrsigs) {
      result.response.answers.push_back(sig);
    }

    if (cname_rrset != nullptr &&
        find_rrset(fetched.answer, current_name, qtype) == nullptr) {
      if (++chased > config_.max_cname_depth) {
        result.response.header.rcode = dns::RCode::kServFail;
        break;
      }
      current_name =
          std::get<dns::CnameRdata>(cname_rrset->records().front().rdata)
              .target;
      continue;
    }

    // Optional NS refresh fetch (models BIND re-querying the child zone's
    // authoritative NS set after resolving through a referral; contributes
    // the paper's Table 4 NS query counts). The parent-side NS set learned
    // from the referral is deliberately not trusted as authoritative.
    if (!fetched.from_cache && !fetched.auth_zone.is_root() &&
        ns_fetch_coin(fetched.auth_zone)) {
      const dns::Message ns_query = dns::Message::make_query(
          next_id_++, fetched.auth_zone, dns::RRType::kNs,
          /*recursion_desired=*/false,
          config_.validation_enabled() || config_.dlv_enabled());
      (void)exchange_zone(fetched.auth_zone, ns_query, config_.retry);
    }
    break;
  }

  result.response.header.ad =
      result.status == ValidationStatus::kSecure;
  if (!query.options.dnssec_ok) {
    // Plain stub (DO=0): no AD bit and no DNSSEC records in the answer
    // (paper §2.2: "If the DO bit is set in the initial query from a stub,
    // AD will be set").
    result.response.header.ad = false;
    std::vector<dns::ResourceRecord> plain;
    for (const dns::ResourceRecord& record : result.response.answers) {
      if (record.type != dns::RRType::kRrsig &&
          record.type != dns::RRType::kNsec &&
          record.type != dns::RRType::kNsec3 &&
          record.type != dns::RRType::kNsec3Param) {
        plain.push_back(record);
      }
    }
    result.response.answers = std::move(plain);
  }
  stats_.add(std::string("resolve.status.") + status_name(result.status));
  if (result.dlv.used) stats_.add("resolve.dlv_used");
  if (result.dlv.suppressed_by_nsec) stats_.add("resolve.dlv_suppressed_nsec");
  if (result.dlv.suppressed_by_signal) {
    stats_.add("resolve.dlv_suppressed_signal");
  }

  if (tracer_ != nullptr) {
    trace_event(obs::EventKind::kValidation, qname, qtype,
                status_name(result.status));
    obs::Event done;
    done.kind = obs::EventKind::kResponse;
    done.name = qname.to_text();
    done.qtype = qtype;
    done.server = "recursive";
    done.rcode = result.response.header.rcode;
    done.latency_us = tracer_->now_us() - span_start_us;
    done.detail = status_name(result.status);
    tracer_->emit(std::move(done));
    tracer_->end_span(span_id);
  }

  last_result_ = std::move(result);
  current_ = nullptr;
  // Cache maintenance runs strictly between resolutions: eviction destroys
  // boxed entries, and last_result_ holds copies, so nothing handed out
  // during this resolution can dangle. The query context stays pushed so
  // eviction events are attributed to the resolution whose tick they ran
  // under, mirroring the serve frontend's still-open context.
  cache_.maintain();
  if (pushed_query_context) tracer_->pop_query();
  return last_result_;
}

dns::Message RecursiveResolver::handle_query(const dns::Message& query) {
  // The wire header maps straight onto the v2 Query: DO becomes
  // options.dnssec_ok (plain stubs get a stripped answer), CD becomes
  // options.checking_disabled.
  const dns::Question& question = query.question();
  const ResolveResult result = resolve(
      Query{question.name, question.type,
            QueryOptions{query.dnssec_ok, query.header.cd}});
  dns::Message response = result.response;
  response.header.id = query.header.id;
  response.header.rd = query.header.rd;
  response.header.cd = query.header.cd;
  response.edns = query.edns;
  response.dnssec_ok = query.dnssec_ok;
  return response;
}

}  // namespace lookaside::resolver
