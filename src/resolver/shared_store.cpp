#include "resolver/shared_store.h"

#include <algorithm>
#include <mutex>

#include "resolver/cache.h"

namespace lookaside::resolver {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SharedProofStore::SharedProofStore(Options options) {
  const std::size_t count =
      round_up_pow2(std::max<std::size_t>(options.stripes, 1));
  stripes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  stripe_mask_ = count - 1;
}

void SharedProofStore::store_nsec(const dns::Name& zone_apex,
                                  const dns::Name& owner, NsecProof proof) {
  // Intern before taking the stripe lock (lock-order note in the header);
  // republished spans from sibling shards dedupe to the same id here.
  const dns::NameId next_id = arena_.intern(proof.next);
  StoredNsec stored;
  stored.next = next_id;
  stored.types = std::move(proof.types);
  stored.expires_us = proof.expires_us;
  stored.shard = proof.shard;
  Stripe& stripe = stripe_for(zone_apex);
  {
    std::unique_lock lock(stripe.mutex);
    stripe.nsec[zone_apex][owner] = std::move(stored);
  }
  nsec_stores_.fetch_add(1, std::memory_order_relaxed);
}

NsecCoverage SharedProofStore::check_nsec(const dns::Name& zone_apex,
                                          const dns::Name& qname,
                                          dns::RRType qtype,
                                          std::uint64_t now_us,
                                          std::uint32_t probing_shard,
                                          std::uint64_t* expires_us,
                                          bool* cross_shard) {
  if (!qname.is_subdomain_of(zone_apex)) return NsecCoverage::kNoProof;
  Stripe& stripe = stripe_for(zone_apex);
  std::shared_lock lock(stripe.mutex);
  const auto zone_it = stripe.nsec.find(zone_apex);
  if (zone_it == stripe.nsec.end()) return NsecCoverage::kNoProof;
  const NsecChain& chain = zone_it->second;

  // Greatest live owner <= qname. Mirrors ResolverCache::nsec_check, except
  // expired entries are skipped rather than erased — the read path holds a
  // shared lock; purge_expired() reclaims under exclusive locks.
  auto it = chain.upper_bound(qname);
  for (;;) {
    if (it == chain.begin()) return NsecCoverage::kNoProof;
    --it;
    if (it->second.expires_us > now_us) break;
  }
  const dns::Name& owner = it->first;
  const StoredNsec& proof = it->second;

  const auto record_hit = [&] {
    if (expires_us != nullptr) *expires_us = proof.expires_us;
    const bool sibling = proof.shard != probing_shard;
    if (cross_shard != nullptr) *cross_shard = sibling;
    nsec_hits_.fetch_add(1, std::memory_order_relaxed);
    if (sibling) nsec_sibling_hits_.fetch_add(1, std::memory_order_relaxed);
  };

  if (owner == qname) {
    // RFC 6840 §4.4 (mirrors ResolverCache::classify_nsec_entry): an
    // ancestor-delegation NSEC proves only DS absence below the cut.
    const bool delegation =
        std::find(proof.types.begin(), proof.types.end(), dns::RRType::kNs) !=
            proof.types.end() &&
        std::find(proof.types.begin(), proof.types.end(), dns::RRType::kSoa) ==
            proof.types.end();
    if (delegation && qtype != dns::RRType::kDs) {
      return NsecCoverage::kNoProof;
    }
    // RFC 4035 §2.3: DS absence is provable only by a parent-side NSEC.
    if (qtype == dns::RRType::kDs && !delegation) {
      return NsecCoverage::kNoProof;
    }
    // Exact NSEC: the name exists; the type bitmap decides.
    if (std::find(proof.types.begin(), proof.types.end(), qtype) ==
        proof.types.end()) {
      record_hit();
      return NsecCoverage::kTypeAbsent;
    }
    return NsecCoverage::kNoProof;
  }
  // Covering span: owner < qname < next; the chain's last record wraps
  // (next == apex means "everything after owner").
  const dns::Name& next = arena_.name(proof.next);
  const bool wraps = next == zone_apex;
  if (wraps || qname.canonical_compare(next) < 0) {
    // RFC 6840 §4.4: names below a delegation-owner NSEC are occluded, so
    // the span proves nothing inside the child zone (mirrors
    // ResolverCache::classify_nsec_entry).
    if (qname.is_subdomain_of(owner)) {
      const bool delegation =
          std::find(proof.types.begin(), proof.types.end(),
                    dns::RRType::kNs) != proof.types.end() &&
          std::find(proof.types.begin(), proof.types.end(),
                    dns::RRType::kSoa) == proof.types.end();
      if (delegation) return NsecCoverage::kNoProof;
    }
    record_hit();
    return NsecCoverage::kNameCovered;
  }
  return NsecCoverage::kNoProof;
}

std::size_t SharedProofStore::nsec_count(const dns::Name& zone_apex) const {
  const Stripe& stripe = stripe_for(zone_apex);
  std::shared_lock lock(stripe.mutex);
  const auto zone_it = stripe.nsec.find(zone_apex);
  return zone_it == stripe.nsec.end() ? 0 : zone_it->second.size();
}

void SharedProofStore::store_zone_cut(const dns::Name& apex,
                                      std::uint64_t expires_us,
                                      std::uint32_t shard) {
  Stripe& stripe = stripe_for(apex);
  {
    std::unique_lock lock(stripe.mutex);
    CutEntry& entry = stripe.cuts[apex];
    entry.expires_us = std::max(entry.expires_us, expires_us);
    entry.shard = shard;
  }
  cut_stores_.fetch_add(1, std::memory_order_relaxed);
}

bool SharedProofStore::has_zone_cut(const dns::Name& apex,
                                    std::uint64_t now_us,
                                    std::uint32_t probing_shard) {
  Stripe& stripe = stripe_for(apex);
  std::shared_lock lock(stripe.mutex);
  const auto it = stripe.cuts.find(apex);
  if (it == stripe.cuts.end() || it->second.expires_us <= now_us) {
    return false;
  }
  cut_hits_.fetch_add(1, std::memory_order_relaxed);
  if (it->second.shard != probing_shard) {
    cut_sibling_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void SharedProofStore::store_verdict(std::uint64_t key, bool valid,
                                     std::uint64_t expires_us,
                                     std::uint32_t shard) {
  Stripe& stripe = stripe_for_key(key);
  {
    std::unique_lock lock(stripe.mutex);
    stripe.verdicts[key] = VerdictEntry{valid, expires_us, shard};
  }
  verdict_stores_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<bool> SharedProofStore::check_verdict(std::uint64_t key,
                                                    std::uint64_t now_us,
                                                    std::uint32_t probing_shard,
                                                    bool* cross_shard) {
  Stripe& stripe = stripe_for_key(key);
  std::shared_lock lock(stripe.mutex);
  const auto it = stripe.verdicts.find(key);
  if (it == stripe.verdicts.end() || it->second.expires_us <= now_us) {
    return std::nullopt;
  }
  const bool sibling = it->second.shard != probing_shard;
  if (cross_shard != nullptr) *cross_shard = sibling;
  verdict_hits_.fetch_add(1, std::memory_order_relaxed);
  if (sibling) verdict_sibling_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.valid;
}

std::size_t SharedProofStore::verdict_count() const {
  std::size_t count = 0;
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe->mutex);
    count += stripe->verdicts.size();
  }
  return count;
}

std::size_t SharedProofStore::purge_expired(std::uint64_t now_us) {
  std::size_t reclaimed = 0;
  for (const auto& stripe : stripes_) {
    std::unique_lock lock(stripe->mutex);
    for (auto zone_it = stripe->nsec.begin(); zone_it != stripe->nsec.end();) {
      NsecChain& chain = zone_it->second;
      for (auto it = chain.begin(); it != chain.end();) {
        if (it->second.expires_us <= now_us) {
          it = chain.erase(it);
          ++reclaimed;
        } else {
          ++it;
        }
      }
      zone_it = chain.empty() ? stripe->nsec.erase(zone_it) : ++zone_it;
    }
    for (auto it = stripe->cuts.begin(); it != stripe->cuts.end();) {
      if (it->second.expires_us <= now_us) {
        it = stripe->cuts.erase(it);
        ++reclaimed;
      } else {
        ++it;
      }
    }
    for (auto it = stripe->verdicts.begin(); it != stripe->verdicts.end();) {
      if (it->second.expires_us <= now_us) {
        it = stripe->verdicts.erase(it);
        ++reclaimed;
      } else {
        ++it;
      }
    }
  }
  return reclaimed;
}

SharedProofStore::Stats SharedProofStore::stats() const {
  Stats stats;
  stats.nsec_stores = nsec_stores_.load(std::memory_order_relaxed);
  stats.nsec_hits = nsec_hits_.load(std::memory_order_relaxed);
  stats.nsec_sibling_hits =
      nsec_sibling_hits_.load(std::memory_order_relaxed);
  stats.cut_stores = cut_stores_.load(std::memory_order_relaxed);
  stats.cut_hits = cut_hits_.load(std::memory_order_relaxed);
  stats.cut_sibling_hits =
      cut_sibling_hits_.load(std::memory_order_relaxed);
  stats.verdict_stores = verdict_stores_.load(std::memory_order_relaxed);
  stats.verdict_hits = verdict_hits_.load(std::memory_order_relaxed);
  stats.verdict_sibling_hits =
      verdict_sibling_hits_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace lookaside::resolver
