// Trace-driven large-scale overhead estimate (paper §6.2.3 Fig. 12).
//
// The paper aggregates a 7-hour DITL capture at per-minute granularity and
// asks: what extra bandwidth would TXT signaling cost a busy recursive?
// We do the same: calibrate per-query byte costs from a sampled simulation,
// then fold them over the synthetic DITL rate series.
#pragma once

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "workload/ditl.h"

namespace lookaside::workload {
struct DitlOptions;
}

namespace lookaside::core {

/// Byte costs per stub query, measured from a calibration run.
struct PerQueryCost {
  double baseline_bytes = 0;  // serving bytes per stub query, no remedy
  double txt_extra_bytes = 0; // additional bytes per stub query under TXT
};

/// Runs one sampled simulation under `remedy` over `sample_domains`
/// top-ranked domains and returns the average serving bytes per stub
/// query. For RemedyMode::kTxt the remedy is signaled by the resolver but
/// not deployed at authorities (the paper's Fig. 12 methodology). Each
/// call owns a private experiment, so the two calibration runs behind
/// calibrate_per_query_cost() can execute on separate engine shards.
[[nodiscard]] double measure_bytes_per_stub_query(
    RemedyMode remedy, std::uint64_t sample_domains,
    UniverseExperiment::Options options);

/// Runs two sampled simulations (baseline and TXT) over `sample_domains`
/// top-ranked domains and derives average per-stub-query byte costs.
[[nodiscard]] PerQueryCost calibrate_per_query_cost(
    std::uint64_t sample_domains, UniverseExperiment::Options options);

/// Combines the two per-mode measurements into the Fig. 12 cost pair
/// (TXT extra cost clamps at zero, as in calibrate_per_query_cost).
[[nodiscard]] PerQueryCost per_query_cost_from_measurements(
    double baseline_bytes, double txt_bytes);

/// One minute of the Fig. 12 series.
struct DitlMinute {
  std::uint32_t minute = 0;
  std::uint64_t queries = 0;            // Fig. 12a
  std::uint64_t cumulative_queries = 0; // Fig. 12b
  double cumulative_baseline_mb = 0;    // Fig. 12c baseline
  double cumulative_overhead_mb = 0;    // Fig. 12c TXT overhead
};

/// Folds the calibrated costs over the DITL rate series.
[[nodiscard]] std::vector<DitlMinute> ditl_overhead_series(
    const workload::DitlOptions& trace, const PerQueryCost& cost);

}  // namespace lookaside::core
